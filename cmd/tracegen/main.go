// Command tracegen writes synthetic benchmark traces to disk, so
// experiments can be replayed from files instead of regenerating workloads
// on the fly. Two formats are supported: the repo's compact BCT1 binary
// format (the default) and the ChampSim instruction-trace format, which
// the realtrace experiment ingests and which interoperates with external
// ChampSim tooling.
//
// Usage:
//
//	tracegen -bench real_gcc -n 1000000 -o real_gcc.bct
//	tracegen -bench real_gcc -format champsim -o real_gcc.champsim
//	tracegen -all -n 1000000 -dir traces/
//	tracegen -describe
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

func main() {
	if err := appMain(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// appMain is the testable entry point.
func appMain(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		bench    = fs.String("bench", "", "benchmark to trace (see workload suite)")
		all      = fs.Bool("all", false, "trace every benchmark in the suite")
		n        = fs.Uint64("n", 0, "dynamic branches to emit (0 = benchmark default)")
		out      = fs.String("o", "", "output file (single benchmark)")
		dir      = fs.String("dir", ".", "output directory (with -all)")
		describe = fs.Bool("describe", false, "print per-benchmark structure and exit")
		format   = fs.String("format", "bct1", "trace file format: bct1 (compact) or champsim (64-byte instruction records)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ext := ".bct"
	switch *format {
	case "bct1":
	case "champsim":
		ext = ".champsim"
	default:
		return fmt.Errorf("-format must be bct1 or champsim, got %q", *format)
	}

	switch {
	case *describe:
		return describeSuite(w)
	case *all:
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return err
		}
		for _, spec := range workload.Suite() {
			path := filepath.Join(*dir, spec.Name+ext)
			if err := writeTrace(spec, *n, path, *format, w); err != nil {
				return err
			}
		}
		return nil
	case *bench != "":
		spec, err := workload.ByName(*bench)
		if err != nil {
			return err
		}
		path := *out
		if path == "" {
			path = spec.Name + ext
		}
		return writeTrace(spec, *n, path, *format, w)
	default:
		return fmt.Errorf("select -bench <name>, -all or -describe (benchmarks: %v)", workload.Names())
	}
}

// describeSuite prints the static structure and a short dynamic summary of
// each benchmark.
func describeSuite(w io.Writer) error {
	fmt.Fprintf(w, "%-12s %9s %9s %10s %10s  %s\n",
		"benchmark", "routines", "sites", "taken%", "backward%", "site classes (biased/periodic/corr/phase/random/loop)")
	for _, spec := range workload.Suite() {
		prog, err := spec.Build()
		if err != nil {
			return err
		}
		src, err := spec.FiniteSource(100_000)
		if err != nil {
			return err
		}
		st, err := trace.Measure(src)
		if err != nil {
			return err
		}
		c := prog.Census()
		fmt.Fprintf(w, "%-12s %9d %9d %9.1f%% %9.1f%%  %d/%d/%d/%d/%d/%d\n",
			spec.Name, prog.Routines(), prog.StaticBranches(),
			100*st.TakenRate(), 100*float64(st.Backward)/float64(st.Branches),
			c.Biased, c.Periodic, c.Correlated, c.Phase, c.Random, c.LoopBranch)
	}
	return nil
}

func writeTrace(spec workload.Spec, n uint64, path, format string, w io.Writer) error {
	src, err := spec.FiniteSource(n)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var count uint64
	if format == "champsim" {
		count, err = trace.NewChampSimWriter(f).WriteAll(src)
	} else {
		var tw *trace.Writer
		tw, err = trace.NewWriter(f)
		if err != nil {
			f.Close()
			return err
		}
		count, err = tw.WriteAll(src)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: %d branches, %d bytes (%.2f bytes/branch)\n",
		path, count, info.Size(), float64(info.Size())/float64(count))
	return nil
}
