package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"branchconf/internal/trace"
)

func TestWriteSingleTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bct")
	var sb strings.Builder
	if err := appMain([]string{"-bench", "groff", "-n", "5000", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Collect(rd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 5000 {
		t.Fatalf("trace has %d records", len(tr))
	}
	if !strings.Contains(sb.String(), "5000 branches") {
		t.Fatalf("summary missing: %s", sb.String())
	}
}

// TestWriteChampSimTrace: -format champsim emits a file the ChampSim
// reader (and so workload.TraceSpec) ingests with every branch intact.
func TestWriteChampSimTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.champsim")
	var sb strings.Builder
	if err := appMain([]string{"-bench", "groff", "-n", "3000", "-format", "champsim", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd := trace.NewChampSimReader(f)
	tr, err := trace.Collect(rd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 3000 {
		t.Fatalf("trace has %d conditional branches, want 3000", len(tr))
	}
	if !strings.Contains(sb.String(), "3000 branches") {
		t.Fatalf("summary missing: %s", sb.String())
	}
}

func TestUnknownFormat(t *testing.T) {
	var sb strings.Builder
	err := appMain([]string{"-bench", "groff", "-format", "nonesuch"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "champsim") {
		t.Fatalf("unknown format accepted: %v", err)
	}
}

func TestWriteAll(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := appMain([]string{"-all", "-n", "500", "-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 9 {
		t.Fatalf("%d trace files, want 9", len(entries))
	}
}

func TestDescribe(t *testing.T) {
	var sb strings.Builder
	if err := appMain([]string{"-describe"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"groff", "real_gcc", "jpeg_play"} {
		if !strings.Contains(out, name) {
			t.Fatalf("describe missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "routines") {
		t.Fatal("describe missing header")
	}
}

func TestUnknownBenchmark(t *testing.T) {
	var sb strings.Builder
	if err := appMain([]string{"-bench", "nonesuch"}, &sb); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestNoModeSelected(t *testing.T) {
	var sb strings.Builder
	if err := appMain(nil, &sb); err == nil {
		t.Fatal("no mode accepted")
	}
}
