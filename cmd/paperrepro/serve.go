package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"branchconf/internal/artifact"
	"branchconf/internal/exp"
	"branchconf/internal/heapwatch"
	"branchconf/internal/serve"
	"branchconf/internal/sim"
)

// serveMain runs the resident confidence daemon: one process keeps every
// cache tier hot — trace memo, annotated streams, bucket streams, model
// stats, curves, the artifact disk store, stream segments, and per-config
// session pass caches — and serves report, stats, health, and pprof
// endpoints to many concurrent clients. SIGTERM/SIGINT drain gracefully:
// readiness flips to 503, queued requests are released, in-flight requests
// finish (bounded by -drain-timeout), then the listener closes.
func serveMain(args []string, stdout, errW io.Writer) error {
	fs := flag.NewFlagSet("paperrepro serve", flag.ContinueOnError)
	fs.SetOutput(errW)
	var (
		listen        = fs.String("listen", "127.0.0.1:8091", "listen address (host:port; port 0 picks a free port, printed on stderr)")
		parallel      = fs.Int("parallel", runtime.NumCPU(), "max concurrent experiments within one request, and the process-wide simulation-unit bound")
		annCacheMB    = fs.Uint64("annotate-cache-mb", 256, "resident bound for the annotated-stream cache in MiB (0 = unbounded)")
		bucketCacheMB = fs.Int64("bucket-cache-mb", -1, "resident bound for the bucket-stream cache in MiB (0 = unbounded, -1 = follow -annotate-cache-mb)")
		noAnnotate    = fs.Bool("no-annotate", false, "disable the two-stage annotated engine (byte-identical, for benchmarking)")
		noTally       = fs.Bool("no-tally", false, "disable the stage-3 tally engine (byte-identical, for benchmarking)")
		noCurveArt    = fs.Bool("no-curve-artifact", false, "disable the curve memo/disk tier (byte-identical, for A/B benchmarking)")
		noModelArt    = fs.Bool("no-model-artifact", false, "disable the cycle-model memo/disk tier (byte-identical, for A/B benchmarking)")
		artifactDir   = fs.String("artifact-dir", "", "persist engine artifacts in this directory for warm starts across restarts (\"auto\" = user cache dir; empty = disabled)")
		artifactMB    = fs.Uint64("artifact-disk-mb", 1024, "disk budget for -artifact-dir in MiB, LRU-evicted by access time (0 = unbounded)")
		noArtifact    = fs.Bool("no-artifact", false, "ignore -artifact-dir (byte-identical, for A/B benchmarking)")
		strictStore   = fs.Bool("artifact-strict", false, "fail requests on any artifact-store I/O error instead of degrading to in-memory-only")
		remoteURL     = fs.String("artifact-remote", "", "layer a remote artifact store (a paperrepro artifactd base URL) under the local disk store: read-through on local misses, write-behind on publishes")
		cacheStats    = fs.Bool("cache-stats", false, "sample per-stage peak heap and include the rows in stats snapshots")
		maxInflight   = fs.Int("max-inflight", runtime.NumCPU(), "max report requests executing at once (the admission controller's slot count)")
		maxQueue      = fs.Int("max-queue", 64, "max report requests waiting for a slot; beyond this requests are shed with 429")
		queueTimeout  = fs.Duration("queue-timeout", 30*time.Second, "max time a request may queue before it is shed with 429 (0 = queue until a slot frees or the client gives up)")
		maxBranches   = fs.Uint64("max-request-branches", 0, "cap on a request's per-benchmark branch budget (0 = uncapped)")
		maxSessions   = fs.Int("max-sessions", 0, "max resident sessions, one per distinct request configuration (0 = default)")
		passCacheMB   = fs.Uint64("pass-cache-mb", 256, "per-session resident bound for memoized suite passes in MiB (0 = unbounded)")
		reportCacheMB = fs.Uint64("report-cache-mb", 64, "resident bound for rendered deterministic reports in MiB")
		memSoftMB     = fs.Uint64("mem-soft-limit-mb", 0, "heap soft limit in MiB: above it, resident sessions and cached reports are released (0 = off)")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be at least 1, got %d", *parallel)
	}
	if *noArtifact && *strictStore {
		return fmt.Errorf("-no-artifact conflicts with -artifact-strict: a disabled store cannot fail hard")
	}
	if *strictStore && *artifactDir == "" {
		return fmt.Errorf("-artifact-strict requires -artifact-dir: there is no store to hold to strict errors")
	}
	if *remoteURL != "" && *noArtifact {
		return fmt.Errorf("-artifact-remote conflicts with -no-artifact: a disabled store cannot layer a remote tier")
	}
	if *remoteURL != "" && *artifactDir == "" {
		return fmt.Errorf("-artifact-remote requires -artifact-dir: the remote tier layers under the local disk store")
	}

	dir := *artifactDir
	if *noArtifact {
		dir = ""
	}
	if dir == "auto" {
		base, err := os.UserCacheDir()
		if err != nil {
			return fmt.Errorf("-artifact-dir auto: %w", err)
		}
		dir = filepath.Join(base, "branchconf", "artifacts")
	}
	if dir != "" {
		var remote *artifact.Remote
		if *remoteURL != "" {
			remote = artifact.NewRemote(*remoteURL, nil)
		}
		store, err := artifact.OpenStore(dir, artifact.Options{Budget: *artifactMB << 20, Strict: *strictStore, Remote: remote})
		if err != nil {
			remote.Close()
			return err
		}
		artifact.SetDefault(store)
		defer artifact.SetDefault(nil)
		defer store.Close()
	}
	sim.SetAnnotatedCacheBound(*annCacheMB << 20)
	sim.SetTallyCacheDefaultBound(*annCacheMB << 20)
	exp.SetCurveCacheDefaultBound(*annCacheMB << 20)
	exp.SetModelCacheDefaultBound(*annCacheMB << 20)
	if *bucketCacheMB >= 0 {
		sim.SetBucketCacheBound(uint64(*bucketCacheMB) << 20)
	}
	sim.SetParallelism(*parallel)
	sim.ResetStreamStats()
	if *cacheStats {
		heapwatch.Reset()
		heapwatch.Enable()
	}

	srv := serve.New(serve.Config{
		Defaults: exp.Config{
			NoAnnotate:      *noAnnotate,
			NoTally:         *noTally,
			NoCurveArtifact: *noCurveArt,
			NoModelArtifact: *noModelArt,
		},
		Parallel:          *parallel,
		MaxSessions:       *maxSessions,
		PassCacheBytes:    *passCacheMB << 20,
		MaxInflight:       *maxInflight,
		MaxQueue:          *maxQueue,
		QueueTimeout:      *queueTimeout,
		MaxBranches:       *maxBranches,
		ReportCacheBytes:  *reportCacheMB << 20,
		MemSoftLimitBytes: *memSoftMB << 20,
		HeapStats:         *cacheStats,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(errW, "paperrepro serve: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case s := <-sig:
		fmt.Fprintf(errW, "paperrepro serve: %v received, draining\n", s)
	case err := <-serveErr:
		srv.Close()
		return fmt.Errorf("serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	shutdownErr := httpSrv.Shutdown(ctx)
	if drainErr != nil {
		return fmt.Errorf("serve: drain: %w", drainErr)
	}
	if shutdownErr != nil {
		return fmt.Errorf("serve: shutdown: %w", shutdownErr)
	}
	fmt.Fprintf(errW, "paperrepro serve: drained cleanly\n")
	return nil
}
