package main

import (
	"fmt"
	"io"
	"sort"

	"branchconf/internal/artifact"
	"branchconf/internal/exp"
	"branchconf/internal/heapwatch"
	"branchconf/internal/serve"
	"branchconf/internal/sim"
)

// reportConfig controls which experiments run and how output is produced.
type reportConfig struct {
	branches         uint64
	skipAblations    bool
	filter           map[string]bool // experiment id filter (nil = all)
	noTimings        bool            // omit per-experiment wall-time lines
	traceFile        string          // recorded ChampSim trace for realtrace ("" = none)
	progress         bool            // emit per-experiment progress to errW
	parallel         int             // max concurrent experiments (<=1 = serial)
	annCacheBytes    uint64          // annotated-cache resident bound (0 = unbounded)
	bucketCacheBytes int64           // bucket-cache resident bound (-1 = follow annCacheBytes)
	noAnnotate       bool            // force the interleaved single-pass engine
	noTally          bool            // disable the stage-3 tally engine
	segmentBranches  uint64          // stream traces in segments of this many branches (0 = monolithic)
	noCurveArtifact  bool            // disable the curve memo/disk tier
	noModelArtifact  bool            // disable the cycle-model memo/disk tier
	cacheStats       bool            // print per-cache counters to errW at exit
	cacheStatsJSON   bool            // print the same counters as JSON to errW at exit
	artifactDir      string          // persistent artifact store directory ("" = disabled)
	artifactBudget   uint64          // artifact store disk budget in bytes (0 = unbounded)
	artifactStrict   bool            // fail hard on store I/O errors instead of degrading
	artifactFS       artifact.FS     // filesystem for the store (nil = real disk; tests inject faults)
	artifactRemote   string          // remote artifact store base URL ("" = no remote tier)
	remoteDoer       artifact.Doer   // transport for the remote tier (nil = real HTTP; tests inject faults)
	shard            string          // "i/n": run one shard and emit a partial report ("" = full report)
}

// writeReport is the one-shot run: it configures the process-wide engine
// state (store, cache bounds, parallelism), builds the report through the
// same serve.BuildReport the daemon renders with — which is what makes a
// daemon-served report byte-identical to this path — and writes it to w.
func writeReport(w, errW io.Writer, cfg reportConfig) error {
	var store *artifact.Store
	if cfg.artifactDir != "" {
		var remote *artifact.Remote
		if cfg.artifactRemote != "" {
			remote = artifact.NewRemote(cfg.artifactRemote, cfg.remoteDoer)
		}
		var err error
		store, err = artifact.OpenStore(cfg.artifactDir, artifact.Options{
			Budget: cfg.artifactBudget,
			Strict: cfg.artifactStrict,
			FS:     cfg.artifactFS,
			Remote: remote,
		})
		if err != nil {
			remote.Close()
			return err
		}
		artifact.SetDefault(store)
		defer artifact.SetDefault(nil)
		// Close drains the remote tier's write-behind queue, so artifacts
		// published near the end of the run (a shard's partial, the last
		// curves) reach the fleet before the process exits.
		defer store.Close()
	}
	sim.SetAnnotatedCacheBound(cfg.annCacheBytes)
	sim.SetTallyCacheDefaultBound(cfg.annCacheBytes)
	exp.SetCurveCacheDefaultBound(cfg.annCacheBytes)
	exp.SetModelCacheDefaultBound(cfg.annCacheBytes)
	if cfg.bucketCacheBytes >= 0 {
		sim.SetBucketCacheBound(uint64(cfg.bucketCacheBytes))
	}
	// Stream counters and heap peaks are per-run observability (unlike the
	// cache tiers, whose contents — and so counters — persist process-wide),
	// so each report starts them from zero.
	sim.ResetStreamStats()
	if cfg.cacheStats || cfg.cacheStatsJSON {
		heapwatch.Reset()
		heapwatch.Enable()
	}
	session := exp.NewSession(exp.Config{
		Branches:        cfg.branches,
		NoAnnotate:      cfg.noAnnotate,
		NoTally:         cfg.noTally,
		NoCurveArtifact: cfg.noCurveArtifact,
		NoModelArtifact: cfg.noModelArtifact,
		SegmentBranches: cfg.segmentBranches,
		TraceFile:       cfg.traceFile,
	})
	var only []string
	if cfg.filter != nil {
		only = make([]string, 0, len(cfg.filter))
		for id := range cfg.filter {
			only = append(only, id)
		}
		sort.Strings(only)
	}
	req := serve.ReportRequest{
		Branches:        cfg.branches,
		Only:            only,
		SkipAblations:   cfg.skipAblations,
		NoTimings:       cfg.noTimings,
		SegmentBranches: cfg.segmentBranches,
		TraceFile:       cfg.traceFile,
	}
	// Pin the trace's content identity before any keying (partial-report
	// artifact keys include the request key), failing up front on an
	// unreadable or malformed trace file.
	if err := req.ResolveTrace(); err != nil {
		return fmt.Errorf("-trace: %w", err)
	}
	opts := serve.BuildOptions{Parallel: cfg.parallel, Now: now}
	if cfg.progress {
		opts.Progress = func(id string, elapsed float64) {
			fmt.Fprintf(errW, "%-20s done in %.1fs\n", id, elapsed)
		}
	}
	var report []byte
	if cfg.shard != "" {
		// Shard mode: run this worker's slice of the selection and emit the
		// partial report — to w for file-based merges, and into the (possibly
		// remote) artifact store for store-based merges.
		sh, err := serve.ParseShard(cfg.shard)
		if err != nil {
			return fmt.Errorf("-shard: %w", err)
		}
		p, err := serve.BuildPartial(session, req, opts, sh)
		if err != nil {
			return err
		}
		serve.PublishPartial(p)
		report = p.Encode()
	} else {
		var err error
		report, err = serve.BuildReport(session, req, opts)
		if err != nil {
			return err
		}
	}

	// A strict store pins its first classified I/O failure; surface it
	// before any report bytes are written, so -artifact-strict yields
	// either a complete correct report or a clean error — never both.
	if store != nil {
		if err := store.Err(); err != nil {
			return err
		}
	}
	if _, err := w.Write(report); err != nil {
		return err
	}

	if cfg.progress {
		tiers := exp.CacheTiers()
		pHits, pMisses := session.Stats()
		fmt.Fprintf(errW, "pass cache: %d hits, %d misses; trace cache: %d hits, %d misses (%.1f MB resident); annotated cache: %d hits, %d misses (%.1f MB resident); bucket cache: %d hits, %d misses; model cache: %d hits, %d misses; curve cache: %d hits, %d misses; artifact disk: %d hits, %d misses\n",
			pHits, pMisses, tiers[0].Stats.Hits, tiers[0].Stats.Misses, float64(tiers[0].Stats.ResidentBytes)/(1<<20),
			tiers[1].Stats.Hits, tiers[1].Stats.Misses, float64(tiers[1].Stats.ResidentBytes)/(1<<20),
			tiers[2].Stats.Hits, tiers[2].Stats.Misses, tiers[3].Stats.Hits, tiers[3].Stats.Misses,
			tiers[4].Stats.Hits, tiers[4].Stats.Misses, tiers[5].Stats.Hits, tiers[5].Stats.Misses)
	}
	if cfg.cacheStats {
		pHits, pMisses := session.Stats()
		printCacheStats(errW, "session-pass", artifact.TierStats{Hits: pHits, Misses: pMisses})
		for _, tier := range exp.CacheTiers() {
			printCacheStats(errW, tier.Name, tier.Stats)
		}
		// Peak-heap rows: HeapAlloc high-water per engine stage, sampled at
		// stage boundaries while -cache-stats had sampling enabled. The
		// streaming memory claim is checked against these (and the
		// stream-segment tier's resident_bytes) rather than a profiler.
		for _, sp := range heapwatch.Report() {
			fmt.Fprintf(errW, "cache-stats heap:%-11s peak_heap_bytes=%d\n", sp.Stage, sp.Peak)
		}
	}
	if cfg.cacheStatsJSON {
		pHits, pMisses := session.Stats()
		if err := serve.WriteCacheStatsJSON(errW, serve.SnapshotCacheStats(pHits, pMisses, true)); err != nil {
			return err
		}
	}
	return nil
}

// printCacheStats renders one cache tier's counters for the -cache-stats
// flag: the uniform hit/miss/eviction/resident quad plus the health columns
// (verify failures, operation errors, the degraded flag), which only the
// checksummed disk tier can move.
func printCacheStats(errW io.Writer, name string, s artifact.TierStats) {
	fmt.Fprintf(errW, "cache-stats %-16s hits=%d misses=%d evictions=%d resident_bytes=%d verify_fails=%d op_errors=%d degraded=%t\n",
		name, s.Hits, s.Misses, s.Evictions, s.ResidentBytes, s.VerifyFails, s.OpErrors, s.Degraded)
}
