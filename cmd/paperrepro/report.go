package main

import (
	"fmt"
	"io"
	"strings"

	"branchconf/internal/exp"
)

// reportConfig controls which experiments run and how output is produced.
type reportConfig struct {
	branches      uint64
	skipAblations bool
	filter        map[string]bool // nil = all
	progress      bool            // emit per-experiment progress to errW
}

// writeReport runs the selected experiments and renders the consolidated
// markdown report.
func writeReport(w, errW io.Writer, cfg reportConfig) error {
	runCfg := exp.Config{Branches: cfg.branches}
	fmt.Fprintf(w, "# Paper reproduction report\n\n")
	fmt.Fprintf(w, "Per-benchmark branch budget: %s\n\n", budget(cfg.branches))
	ran := 0
	for _, e := range exp.All() {
		if cfg.skipAblations && strings.HasPrefix(e.ID, "ablation-") {
			continue
		}
		if cfg.filter != nil && !cfg.filter[e.ID] {
			continue
		}
		start := now()
		o, err := e.Run(runCfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		ran++
		fmt.Fprintf(w, "## %s — %s\n\n", e.ID, e.Title)
		fmt.Fprintf(w, "Paper: %s\n\n", e.Paper)
		fmt.Fprintf(w, "```\n%s```\n", ensureNewline(o.Text))
		if len(o.Scalars) > 0 {
			fmt.Fprintf(w, "\n| metric | value |\n|---|---|\n")
			for _, k := range sortedKeys(o.Scalars) {
				fmt.Fprintf(w, "| %s | %.3f |\n", k, o.Scalars[k])
			}
		}
		elapsed := now().Sub(start).Seconds()
		fmt.Fprintf(w, "\n_(ran in %.1fs)_\n\n", elapsed)
		if cfg.progress {
			fmt.Fprintf(errW, "%-20s done in %.1fs\n", e.ID, elapsed)
		}
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched the filter")
	}
	return nil
}
