package main

import (
	"context"
	"fmt"
	"io"
	"runtime/pprof"
	"strings"
	"sync"

	"branchconf/internal/artifact"
	"branchconf/internal/exp"
	"branchconf/internal/heapwatch"
	"branchconf/internal/sim"
)

// reportConfig controls which experiments run and how output is produced.
type reportConfig struct {
	branches         uint64
	skipAblations    bool
	filter           map[string]bool // nil = all
	progress         bool            // emit per-experiment progress to errW
	parallel         int             // max concurrent experiments (<=1 = serial)
	annCacheBytes    uint64          // annotated-cache resident bound (0 = unbounded)
	bucketCacheBytes int64           // bucket-cache resident bound (-1 = follow annCacheBytes)
	noAnnotate       bool            // force the interleaved single-pass engine
	noTally          bool            // disable the stage-3 tally engine
	segmentBranches  uint64          // stream traces in segments of this many branches (0 = monolithic)
	noCurveArtifact  bool            // disable the curve memo/disk tier
	noModelArtifact  bool            // disable the cycle-model memo/disk tier
	cacheStats       bool            // print per-cache counters to errW at exit
	artifactDir      string          // persistent artifact store directory ("" = disabled)
	artifactBudget   uint64          // artifact store disk budget in bytes (0 = unbounded)
	artifactStrict   bool            // fail hard on store I/O errors instead of degrading
	artifactFS       artifact.FS     // filesystem for the store (nil = real disk; tests inject faults)
}

// writeReport runs the selected experiments against one shared session and
// renders the consolidated markdown report. Experiments execute on a
// bounded worker pool claiming work in registration order; sections are
// assembled in registration order regardless of completion order, so the
// report bytes do not depend on the parallelism level.
func writeReport(w, errW io.Writer, cfg reportConfig) error {
	var store *artifact.Store
	if cfg.artifactDir != "" {
		var err error
		store, err = artifact.OpenStore(cfg.artifactDir, artifact.Options{
			Budget: cfg.artifactBudget,
			Strict: cfg.artifactStrict,
			FS:     cfg.artifactFS,
		})
		if err != nil {
			return err
		}
		artifact.SetDefault(store)
		defer artifact.SetDefault(nil)
	}
	sim.SetAnnotatedCacheBound(cfg.annCacheBytes)
	sim.SetTallyCacheDefaultBound(cfg.annCacheBytes)
	exp.SetCurveCacheDefaultBound(cfg.annCacheBytes)
	exp.SetModelCacheDefaultBound(cfg.annCacheBytes)
	if cfg.bucketCacheBytes >= 0 {
		sim.SetBucketCacheBound(uint64(cfg.bucketCacheBytes))
	}
	// Stream counters and heap peaks are per-run observability (unlike the
	// cache tiers, whose contents — and so counters — persist process-wide),
	// so each report starts them from zero.
	sim.ResetStreamStats()
	if cfg.cacheStats {
		heapwatch.Reset()
		heapwatch.Enable()
	}
	session := exp.NewSession(exp.Config{
		Branches:        cfg.branches,
		NoAnnotate:      cfg.noAnnotate,
		NoTally:         cfg.noTally,
		NoCurveArtifact: cfg.noCurveArtifact,
		NoModelArtifact: cfg.noModelArtifact,
		SegmentBranches: cfg.segmentBranches,
	})
	var selected []exp.Experiment
	for _, e := range exp.All() {
		if cfg.skipAblations && strings.HasPrefix(e.ID, "ablation-") {
			continue
		}
		if cfg.filter != nil && !cfg.filter[e.ID] {
			continue
		}
		// Opt-in experiments (the long-horizon sweep) run only when the
		// filter names them explicitly.
		if e.OptIn && (cfg.filter == nil || !cfg.filter[e.ID]) {
			continue
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		return fmt.Errorf("no experiments matched the filter")
	}

	workers := cfg.parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(selected) {
		workers = len(selected)
	}
	sim.SetParallelism(cfg.parallel)

	type outcome struct {
		out     *exp.Output
		err     error
		elapsed float64
	}
	results := make([]outcome, len(selected))
	work := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				e := selected[idx]
				start := now()
				var o *exp.Output
				var err error
				// Label the experiment's goroutine (and, via propagation,
				// the simulation units it schedules) for CPU profiles.
				pprof.Do(context.Background(), pprof.Labels("experiment", e.ID), func(context.Context) {
					o, err = e.Run(session)
				})
				elapsed := now().Sub(start).Seconds()
				results[idx] = outcome{out: o, err: err, elapsed: elapsed}
				if cfg.progress {
					fmt.Fprintf(errW, "%-20s done in %.1fs\n", e.ID, elapsed)
				}
			}
		}()
	}
	for idx := range selected {
		work <- idx
	}
	close(work)
	wg.Wait()

	// A strict store pins its first classified I/O failure; surface it
	// before any report bytes are written, so -artifact-strict yields
	// either a complete correct report or a clean error — never both.
	if store != nil {
		if err := store.Err(); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "# Paper reproduction report\n\n")
	fmt.Fprintf(w, "Per-benchmark branch budget: %s\n\n", budget(cfg.branches))
	for i, e := range selected {
		r := results[i]
		if r.err != nil {
			return fmt.Errorf("%s: %w", e.ID, r.err)
		}
		fmt.Fprintf(w, "## %s — %s\n\n", e.ID, e.Title)
		fmt.Fprintf(w, "Paper: %s\n\n", e.Paper)
		fmt.Fprintf(w, "```\n%s```\n", ensureNewline(r.out.Text))
		if len(r.out.Scalars) > 0 {
			fmt.Fprintf(w, "\n| metric | value |\n|---|---|\n")
			for _, k := range sortedKeys(r.out.Scalars) {
				fmt.Fprintf(w, "| %s | %.3f |\n", k, r.out.Scalars[k])
			}
		}
		fmt.Fprintf(w, "\n_(ran in %.1fs)_\n\n", r.elapsed)
	}
	if cfg.progress {
		tiers := exp.CacheTiers()
		pHits, pMisses := session.Stats()
		fmt.Fprintf(errW, "pass cache: %d hits, %d misses; trace cache: %d hits, %d misses (%.1f MB resident); annotated cache: %d hits, %d misses (%.1f MB resident); bucket cache: %d hits, %d misses; model cache: %d hits, %d misses; curve cache: %d hits, %d misses; artifact disk: %d hits, %d misses\n",
			pHits, pMisses, tiers[0].Stats.Hits, tiers[0].Stats.Misses, float64(tiers[0].Stats.ResidentBytes)/(1<<20),
			tiers[1].Stats.Hits, tiers[1].Stats.Misses, float64(tiers[1].Stats.ResidentBytes)/(1<<20),
			tiers[2].Stats.Hits, tiers[2].Stats.Misses, tiers[3].Stats.Hits, tiers[3].Stats.Misses,
			tiers[4].Stats.Hits, tiers[4].Stats.Misses, tiers[5].Stats.Hits, tiers[5].Stats.Misses)
	}
	if cfg.cacheStats {
		pHits, pMisses := session.Stats()
		printCacheStats(errW, "session-pass", artifact.TierStats{Hits: pHits, Misses: pMisses})
		for _, tier := range exp.CacheTiers() {
			printCacheStats(errW, tier.Name, tier.Stats)
		}
		// Peak-heap rows: HeapAlloc high-water per engine stage, sampled at
		// stage boundaries while -cache-stats had sampling enabled. The
		// streaming memory claim is checked against these (and the
		// stream-segment tier's resident_bytes) rather than a profiler.
		for _, sp := range heapwatch.Report() {
			fmt.Fprintf(errW, "cache-stats heap:%-11s peak_heap_bytes=%d\n", sp.Stage, sp.Peak)
		}
	}
	return nil
}

// printCacheStats renders one cache tier's counters for the -cache-stats
// flag: the uniform hit/miss/eviction/resident quad plus the health columns
// (verify failures, operation errors, the degraded flag), which only the
// checksummed disk tier can move.
func printCacheStats(errW io.Writer, name string, s artifact.TierStats) {
	fmt.Fprintf(errW, "cache-stats %-16s hits=%d misses=%d evictions=%d resident_bytes=%d verify_fails=%d op_errors=%d degraded=%t\n",
		name, s.Hits, s.Misses, s.Evictions, s.ResidentBytes, s.VerifyFails, s.OpErrors, s.Degraded)
}
