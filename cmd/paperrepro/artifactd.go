package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"branchconf/internal/artifact"
)

// artifactdMain runs the artifact store daemon: a minimal HTTP object store
// serving one artifact directory — with the same content addressing,
// budgeted LRU GC, and atomic publish the local tier uses — to a fleet of
// workers that layer it under their local stores with -artifact-remote.
// SIGTERM/SIGINT shut down gracefully: the listener closes, in-flight
// requests finish (bounded by a 10s drain), and the store's index is left
// consistent (every publish was atomic anyway).
func artifactdMain(args []string, stdout, errW io.Writer) error {
	fs := flag.NewFlagSet("paperrepro artifactd", flag.ContinueOnError)
	fs.SetOutput(errW)
	var (
		listen = fs.String("listen", "127.0.0.1:8092", "listen address (host:port; port 0 picks a free port, printed on stderr)")
		dir    = fs.String("dir", "", "artifact directory to serve (required)")
		diskMB = fs.Uint64("disk-mb", 1024, "disk budget for -dir in MiB, LRU-evicted by access time (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("artifactd: unexpected arguments %v", fs.Args())
	}
	if *dir == "" {
		return fmt.Errorf("artifactd: -dir is required: the daemon serves one artifact directory")
	}
	store, err := artifact.OpenStore(*dir, artifact.Options{Budget: *diskMB << 20})
	if err != nil {
		return err
	}
	srv := artifact.NewRemoteServer(store)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(errW, "paperrepro artifactd: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case s := <-sig:
		fmt.Fprintf(errW, "paperrepro artifactd: %v received, draining\n", s)
	case err := <-serveErr:
		return fmt.Errorf("artifactd: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("artifactd: shutdown: %w", err)
	}
	fmt.Fprintf(errW, "paperrepro artifactd: drained cleanly\n")
	return nil
}
