// Command paperrepro regenerates every table and figure from the paper's
// evaluation in one run and writes a consolidated report, the data behind
// EXPERIMENTS.md.
//
// The run is a single-pass pipeline: benchmark traces are materialized once
// into compact replay buffers, experiments declare their (predictor,
// mechanism) needs against a shared session that batches them into one
// predictor pass per benchmark, and a bounded worker pool executes
// experiments in parallel. Parallelism and sharing never change the report:
// output is byte-identical to a serial, uncached run.
//
// Usage:
//
//	paperrepro [-branches 1000000] [-o report.md] [-skip-ablations]
//	           [-only fig5,table1] [-parallel N] [-no-timings]
//	           [-annotate-cache-mb 256] [-bucket-cache-mb N]
//	           [-artifact-dir DIR|auto] [-artifact-disk-mb 1024] [-no-artifact]
//	           [-artifact-strict] [-artifact-remote URL] [-shard i/n]
//	           [-no-annotate] [-no-tally]
//	           [-no-curve-artifact] [-no-model-artifact] [-cache-stats]
//	           [-cache-stats-json] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	paperrepro serve [-listen 127.0.0.1:8091] [engine flags] [service flags]
//	paperrepro client [-addr http://127.0.0.1:8091] [request flags | -stats]
//	paperrepro artifactd [-listen 127.0.0.1:8092] -dir DIR [-disk-mb 1024]
//	paperrepro fanout -shards N [engine flags]
//	paperrepro merge [-o report.md] partial.json... | merge -from-store -shards N [flags]
//
// The bare invocation is the one-shot run. "serve" starts the resident
// confidence daemon — every cache tier stays hot in one process and many
// concurrent clients are served over HTTP/JSON — and "client" is its thin
// CLI client; see their -h output and README's service-mode section.
//
// "artifactd" serves an artifact directory to a fleet of workers over the
// remote object protocol; workers layer it under their local stores with
// -artifact-remote. "-shard i/n" runs one worker's slice of the experiment
// selection and emits a partial report; "merge" assembles partials —
// from files or, with -from-store, from the (remote) artifact store — into
// a report byte-identical to the single-process run; "fanout" does the
// shard/merge round trip in one coordinating process. See README's
// fan-out section.
//
// With -artifact-dir, the engine's five expensive intermediates —
// materialized traces, annotated streams, bucket streams, cycle-model
// count vectors, and sorted confidence curves — persist in a
// content-addressed store across process runs, so a repeated invocation
// warm-starts past trace generation, every predictor walk, every cycle
// model, and the curve builds on top of them. The report is
// byte-identical either way; corruption in the store is detected, discarded
// and regenerated, and disk faults (ENOSPC, EIO, permission errors) degrade
// the store to in-memory-only rather than failing the run — visible under
// -cache-stats as op_errors/degraded. -artifact-strict inverts that policy:
// the first classified store failure fails the run instead.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"branchconf/internal/serve"
	"branchconf/internal/workload"
)

// The materialization ceiling and auto segment size live in
// internal/serve (shared with the daemon's request validation).
const materializeCeiling = serve.MaterializeCeiling

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "serve":
		err = serveMain(args[1:], os.Stdout, os.Stderr)
	case len(args) > 0 && args[0] == "client":
		err = clientMain(args[1:], os.Stdout, os.Stderr)
	case len(args) > 0 && args[0] == "artifactd":
		err = artifactdMain(args[1:], os.Stdout, os.Stderr)
	case len(args) > 0 && args[0] == "fanout":
		err = fanoutMain(args[1:], os.Stdout, os.Stderr)
	case len(args) > 0 && args[0] == "merge":
		err = mergeMain(args[1:], os.Stdout, os.Stderr)
	default:
		err = appMain(args, os.Stdout, os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
}

// appMain is the testable entry point; progress goes to errW, the report
// to -o or stdout.
func appMain(args []string, stdout, errW io.Writer) error {
	fs := flag.NewFlagSet("paperrepro", flag.ContinueOnError)
	fs.SetOutput(errW)
	var (
		branches      = fs.Uint64("branches", 0, "dynamic branches per benchmark (0 = benchmark default)")
		out           = fs.String("o", "", "write the report to this file instead of stdout")
		skipAblations = fs.Bool("skip-ablations", false, "run only the paper's own artefacts")
		only          = fs.String("only", "", "comma-separated experiment ids to run (default: all)")
		parallel      = fs.Int("parallel", runtime.NumCPU(), "max concurrent experiments, per-benchmark simulation units, and streaming unit pipelines (each pipeline itself overlaps annotate/tally with a bounded segment queue)")
		annCacheMB    = fs.Uint64("annotate-cache-mb", 256, "resident bound for the annotated-stream cache in MiB (0 = unbounded)")
		bucketCacheMB = fs.Int64("bucket-cache-mb", -1, "resident bound for the bucket-stream cache in MiB (0 = unbounded, -1 = follow -annotate-cache-mb)")
		noAnnotate    = fs.Bool("no-annotate", false, "disable the two-stage annotated engine (byte-identical, for benchmarking)")
		noTally       = fs.Bool("no-tally", false, "disable the stage-3 tally engine (byte-identical, for benchmarking)")
		segBranches   = fs.Int64("segment-branches", -1, "stream traces in segments of this many branches with bounded resident memory (byte-identical; -1 = auto: segment only above the materialization ceiling)")
		noStream      = fs.Bool("no-stream", false, "never stream: materialize whole traces even above the ceiling (rejected for budgets that cannot be materialized)")
		noCurveArt    = fs.Bool("no-curve-artifact", false, "disable the curve memo/disk tier (byte-identical, for A/B benchmarking)")
		noModelArt    = fs.Bool("no-model-artifact", false, "disable the cycle-model memo/disk tier (byte-identical, for A/B benchmarking)")
		noTimings     = fs.Bool("no-timings", false, "omit the per-experiment wall-time lines, making the report bytes fully deterministic")
		traceFile     = fs.String("trace", "", "recorded ChampSim trace for the realtrace experiment (generate one with tracegen -format champsim)")
		artifactDir   = fs.String("artifact-dir", "", "persist engine artifacts in this directory for warm starts across runs (\"auto\" = user cache dir; empty = disabled)")
		artifactMB    = fs.Uint64("artifact-disk-mb", 1024, "disk budget for -artifact-dir in MiB, LRU-evicted by access time (0 = unbounded)")
		noArtifact    = fs.Bool("no-artifact", false, "ignore -artifact-dir (byte-identical, for A/B benchmarking)")
		strictStore   = fs.Bool("artifact-strict", false, "fail the run on any artifact-store I/O error instead of degrading to in-memory-only")
		remoteURL     = fs.String("artifact-remote", "", "layer a remote artifact store (a paperrepro artifactd base URL) under the local disk store: read-through on local misses, write-behind on publishes")
		shardSpec     = fs.String("shard", "", "run only shard i of n (\"i/n\") of the experiment selection and emit a partial report (JSON) instead of markdown; merge partials with \"paperrepro merge\"")
		cacheStats    = fs.Bool("cache-stats", false, "print per-cache hit/miss/eviction and resident-bytes counters to stderr at exit")
		cacheStatsJ   = fs.Bool("cache-stats-json", false, "print the same per-cache counters as machine-readable JSON to stderr at exit (the daemon's stats-endpoint encoding)")
		cpuProfile    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile    = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be at least 1, got %d", *parallel)
	}
	if *segBranches == 0 || *segBranches < -1 {
		return fmt.Errorf("-segment-branches must be at least 1 (or -1 for auto), got %d", *segBranches)
	}
	// Mutually exclusive flag combinations fail up front with an error
	// naming both flags — never silent precedence.
	if *noStream && *segBranches > 0 {
		return fmt.Errorf("-no-stream conflicts with -segment-branches %d: streaming cannot be both forced off and configured", *segBranches)
	}
	if *noArtifact && *strictStore {
		return fmt.Errorf("-no-artifact conflicts with -artifact-strict: a disabled store cannot fail hard")
	}
	if *strictStore && *artifactDir == "" {
		return fmt.Errorf("-artifact-strict requires -artifact-dir: there is no store to hold to strict errors")
	}
	if *remoteURL != "" && *noArtifact {
		return fmt.Errorf("-artifact-remote conflicts with -no-artifact: a disabled store cannot layer a remote tier")
	}
	if *remoteURL != "" && *artifactDir == "" {
		return fmt.Errorf("-artifact-remote requires -artifact-dir: the remote tier layers under the local disk store")
	}
	if *shardSpec != "" {
		if _, err := serve.ParseShard(*shardSpec); err != nil {
			return fmt.Errorf("-shard: %w", err)
		}
	}
	effBranches := *branches
	if effBranches == 0 {
		effBranches = workload.DefaultBranches
	}
	var segment uint64
	switch {
	case *noStream:
		if effBranches > materializeCeiling {
			return fmt.Errorf("-no-stream: budget %d exceeds the materialization ceiling (%d branches); drop -no-stream or set -segment-branches", effBranches, uint64(materializeCeiling))
		}
	case *segBranches > 0:
		segment = uint64(*segBranches)
	case effBranches > materializeCeiling:
		segment = serve.AutoSegmentBranches
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	var filter map[string]bool
	if *only != "" {
		var onlyIDs []string
		for _, id := range strings.Split(*only, ",") {
			onlyIDs = append(onlyIDs, strings.TrimSpace(id))
		}
		if _, _, err := (serve.ReportRequest{Only: onlyIDs}).Validate(); err != nil {
			return fmt.Errorf("-only: %w", err)
		}
		filter = map[string]bool{}
		for _, id := range onlyIDs {
			filter[id] = true
		}
	}
	bucketCacheBytes := int64(-1)
	if *bucketCacheMB >= 0 {
		bucketCacheBytes = *bucketCacheMB << 20
	}
	dir := *artifactDir
	if *noArtifact {
		dir = ""
	}
	if dir == "auto" {
		base, err := os.UserCacheDir()
		if err != nil {
			return fmt.Errorf("-artifact-dir auto: %w", err)
		}
		dir = filepath.Join(base, "branchconf", "artifacts")
	}
	err := writeReport(w, errW, reportConfig{
		branches:         *branches,
		skipAblations:    *skipAblations,
		filter:           filter,
		noTimings:        *noTimings,
		traceFile:        *traceFile,
		progress:         *out != "",
		parallel:         *parallel,
		annCacheBytes:    *annCacheMB << 20,
		bucketCacheBytes: bucketCacheBytes,
		noAnnotate:       *noAnnotate,
		noTally:          *noTally,
		segmentBranches:  segment,
		noCurveArtifact:  *noCurveArt,
		noModelArtifact:  *noModelArt,
		cacheStats:       *cacheStats,
		cacheStatsJSON:   *cacheStatsJ,
		artifactDir:      dir,
		artifactBudget:   *artifactMB << 20,
		artifactStrict:   *strictStore,
		artifactRemote:   *remoteURL,
		shard:            *shardSpec,
	})
	if err != nil {
		return err
	}

	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		runtime.GC() // materialized caches and final results, not transients
		if ferr := pprof.WriteHeapProfile(f); ferr != nil {
			return fmt.Errorf("writing heap profile: %w", ferr)
		}
	}
	return nil
}

// now is stubbed in tests for stable timing output.
var now = time.Now
