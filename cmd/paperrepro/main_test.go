package main

import (
	"strings"
	"testing"
)

func TestReportSubset(t *testing.T) {
	var out, errW strings.Builder
	err := appMain([]string{"-branches", "30000", "-only", "fig2,table1"}, &out, &errW)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "## fig2") || !strings.Contains(report, "## table1") {
		t.Fatalf("report missing sections:\n%s", report[:200])
	}
	if strings.Contains(report, "## fig5") {
		t.Fatal("filter leaked fig5")
	}
	if !strings.Contains(report, "| metric | value |") {
		t.Fatal("scalar tables missing")
	}
	if !strings.Contains(report, "Paper:") {
		t.Fatal("paper reference lines missing")
	}
}

func TestReportEmptyFilter(t *testing.T) {
	var out, errW strings.Builder
	if err := appMain([]string{"-only", "nonesuch"}, &out, &errW); err == nil {
		t.Fatal("empty filter accepted")
	}
}

// TestRejectUnknownOnly: an unknown -only id must fail fast — before any
// simulation — with an error naming the offender and listing the valid ids.
func TestRejectUnknownOnly(t *testing.T) {
	var out, errW strings.Builder
	err := appMain([]string{"-only", "fig5,figg6"}, &out, &errW)
	if err == nil {
		t.Fatal("unknown -only id accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"figg6"`) {
		t.Errorf("error does not name the unknown id: %v", err)
	}
	if !strings.Contains(msg, "valid ids:") || !strings.Contains(msg, "fig5") || !strings.Contains(msg, "table1") {
		t.Errorf("error does not list the valid ids: %v", err)
	}
	if out.Len() != 0 {
		t.Error("report output produced despite invalid -only")
	}
}

// TestRejectBadParallel: -parallel below 1 is a configuration error, not a
// silent clamp.
func TestRejectBadParallel(t *testing.T) {
	for _, p := range []string{"0", "-3"} {
		var out, errW strings.Builder
		err := appMain([]string{"-parallel", p, "-only", "fig2"}, &out, &errW)
		if err == nil {
			t.Fatalf("-parallel %s accepted", p)
		}
		if !strings.Contains(err.Error(), "-parallel") {
			t.Errorf("-parallel %s: error does not mention the flag: %v", p, err)
		}
	}
}

// TestCacheStatsFlag: -cache-stats must print one counter line per engine
// cache to stderr, and a run that simulates anything must show the
// counters moving (misses and resident bytes for both caches).
func TestCacheStatsFlag(t *testing.T) {
	var out, errW strings.Builder
	err := appMain([]string{"-branches", "20000", "-only", "fig5", "-cache-stats"}, &out, &errW)
	if err != nil {
		t.Fatal(err)
	}
	progress := errW.String()
	// The table is one row per tier, session pass cache down to disk store.
	lines := map[string]string{}
	for _, line := range strings.Split(progress, "\n") {
		if rest, ok := strings.CutPrefix(line, "cache-stats "); ok {
			lines[strings.Fields(rest)[0]] = line
		}
	}
	heapRows := 0
	for tier := range lines {
		if strings.HasPrefix(tier, "heap:") {
			heapRows++
		}
	}
	for _, tier := range []string{"session-pass", "trace-memo", "annotated-stream", "bucket-stream", "model-stats", "curve", "artifact-disk", "stream-segment", "remote-artifact"} {
		if lines[tier] == "" {
			t.Errorf("cache-stats row for %s missing from stderr:\n%s", tier, progress)
		}
	}
	if len(lines)-heapRows != 9 {
		t.Errorf("cache-stats printed %d tier rows, want 9:\n%s", len(lines)-heapRows, progress)
	}
	// The peak-memory column: per-stage HeapAlloc high-water rows, present
	// for every monolithic engine stage this run exercised.
	for _, stage := range []string{"heap:annotate", "heap:tally", "heap:replay"} {
		if !strings.Contains(lines[stage], "peak_heap_bytes=") || strings.Contains(lines[stage], "peak_heap_bytes=0") {
			t.Errorf("heap row for %s missing or zero:\n%s", stage, progress)
		}
	}
	annLine, bucketLine := lines["annotated-stream"], lines["bucket-stream"]
	for _, line := range []string{annLine, bucketLine} {
		if strings.Contains(line, "misses=0") || strings.Contains(line, "resident_bytes=0") {
			t.Errorf("counters did not move: %s", line)
		}
		for _, field := range []string{"hits=", "misses=", "evictions=", "resident_bytes="} {
			if !strings.Contains(line, field) {
				t.Errorf("line missing %s counter: %s", field, line)
			}
		}
	}
}

func TestReportToFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/r.md"
	var out, errW strings.Builder
	err := appMain([]string{"-branches", "30000", "-only", "fig2", "-o", path}, &out, &errW)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errW.String(), "fig2") {
		t.Fatal("no progress output with -o")
	}
}

func TestSkipAblations(t *testing.T) {
	var out, errW strings.Builder
	err := appMain([]string{"-branches", "30000", "-only", "ablation-index", "-skip-ablations"}, &out, &errW)
	if err == nil {
		t.Fatal("skip-ablations plus ablation-only filter should match nothing")
	}
}

// TestFlagConflictsRejected: mutually exclusive flag combinations fail up
// front with an error naming both flags — silent precedence (one flag
// quietly winning) is a bug. Exercised for the one-shot CLI here and for
// the serve subcommand's shared pairs below.
func TestFlagConflictsRejected(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string // substrings the error must contain
	}{
		{"no-stream+segment-branches", []string{"-no-stream", "-segment-branches", "4096"},
			[]string{"-no-stream conflicts", "-segment-branches"}},
		{"no-artifact+artifact-strict", []string{"-no-artifact", "-artifact-strict", "-artifact-dir", "x"},
			[]string{"-no-artifact conflicts", "-artifact-strict"}},
		{"artifact-strict-without-dir", []string{"-artifact-strict"},
			[]string{"-artifact-strict requires", "-artifact-dir"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errW strings.Builder
			err := appMain(tc.args, &out, &errW)
			if err == nil {
				t.Fatalf("%v accepted", tc.args)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
			if out.Len() != 0 {
				t.Error("report output produced despite conflicting flags")
			}
		})
	}
}

// TestServeFlagConflictsRejected: the serve subcommand validates the same
// store flag pairs before binding a listener.
func TestServeFlagConflictsRejected(t *testing.T) {
	cases := [][]string{
		{"-no-artifact", "-artifact-strict", "-artifact-dir", "x"},
		{"-artifact-strict"},
	}
	for _, args := range cases {
		var out, errW strings.Builder
		if err := serveMain(args, &out, &errW); err == nil {
			t.Fatalf("serve %v accepted", args)
		}
	}
}
