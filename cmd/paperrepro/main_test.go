package main

import (
	"strings"
	"testing"
)

func TestReportSubset(t *testing.T) {
	var out, errW strings.Builder
	err := appMain([]string{"-branches", "30000", "-only", "fig2,table1"}, &out, &errW)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "## fig2") || !strings.Contains(report, "## table1") {
		t.Fatalf("report missing sections:\n%s", report[:200])
	}
	if strings.Contains(report, "## fig5") {
		t.Fatal("filter leaked fig5")
	}
	if !strings.Contains(report, "| metric | value |") {
		t.Fatal("scalar tables missing")
	}
	if !strings.Contains(report, "Paper:") {
		t.Fatal("paper reference lines missing")
	}
}

func TestReportEmptyFilter(t *testing.T) {
	var out, errW strings.Builder
	if err := appMain([]string{"-only", "nonesuch"}, &out, &errW); err == nil {
		t.Fatal("empty filter accepted")
	}
}

func TestReportToFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/r.md"
	var out, errW strings.Builder
	err := appMain([]string{"-branches", "30000", "-only", "fig2", "-o", path}, &out, &errW)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errW.String(), "fig2") {
		t.Fatal("no progress output with -o")
	}
}

func TestSkipAblations(t *testing.T) {
	var out, errW strings.Builder
	err := appMain([]string{"-branches", "30000", "-only", "ablation-index", "-skip-ablations"}, &out, &errW)
	if err == nil {
		t.Fatal("skip-ablations plus ablation-only filter should match nothing")
	}
}

func TestBudgetString(t *testing.T) {
	if budget(0) != "benchmark default (1,000,000)" {
		t.Fatalf("budget(0) = %q", budget(0))
	}
	if budget(42) != "42" {
		t.Fatalf("budget(42) = %q", budget(42))
	}
}

func TestEnsureNewline(t *testing.T) {
	if ensureNewline("x") != "x\n" || ensureNewline("x\n") != "x\n" || ensureNewline("") != "" {
		t.Fatal("ensureNewline broken")
	}
}
