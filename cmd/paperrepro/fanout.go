package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"branchconf/internal/artifact"
	"branchconf/internal/exp"
	"branchconf/internal/serve"
)

// requestFlags declares the report-request flags shared by the fan-out
// coordinator and the store-mode merge — the subset of the one-shot CLI
// that shapes the canonical request every worker must agree on.
type requestFlags struct {
	branches      *uint64
	only          *string
	skipAblations *bool
	noTimings     *bool
	segBranches   *int64
}

func addRequestFlags(fs *flag.FlagSet) requestFlags {
	return requestFlags{
		branches:      fs.Uint64("branches", 0, "dynamic branches per benchmark (0 = benchmark default)"),
		only:          fs.String("only", "", "comma-separated experiment ids to run (default: all)"),
		skipAblations: fs.Bool("skip-ablations", false, "run only the paper's own artefacts"),
		noTimings:     fs.Bool("no-timings", false, "omit the per-experiment wall-time lines, making the report bytes fully deterministic"),
		segBranches:   fs.Int64("segment-branches", -1, "stream traces in segments of this many branches (byte-identical; -1 = auto)"),
	}
}

// request resolves the flags into the canonical request (the same
// validation and auto-segment policy the one-shot path applies).
func (rf requestFlags) request() (serve.ReportRequest, error) {
	if *rf.segBranches == 0 || *rf.segBranches < -1 {
		return serve.ReportRequest{}, fmt.Errorf("-segment-branches must be at least 1 (or -1 for auto), got %d", *rf.segBranches)
	}
	var only []string
	if *rf.only != "" {
		for _, id := range strings.Split(*rf.only, ",") {
			only = append(only, strings.TrimSpace(id))
		}
		sort.Strings(only)
	}
	req := serve.ReportRequest{
		Branches:      *rf.branches,
		Only:          only,
		SkipAblations: *rf.skipAblations,
		NoTimings:     *rf.noTimings,
	}
	if *rf.segBranches > 0 {
		req.SegmentBranches = uint64(*rf.segBranches)
	}
	if _, _, err := req.Validate(); err != nil {
		return serve.ReportRequest{}, err
	}
	return req, nil
}

// storeFlags declares the artifact-store flags shared by fanout and merge.
type storeFlags struct {
	dir    *string
	diskMB *uint64
	remote *string
}

func addStoreFlags(fs *flag.FlagSet) storeFlags {
	return storeFlags{
		dir:    fs.String("artifact-dir", "", "persist engine artifacts in this directory (\"auto\" = user cache dir; empty = disabled)"),
		diskMB: fs.Uint64("artifact-disk-mb", 1024, "disk budget for -artifact-dir in MiB (0 = unbounded)"),
		remote: fs.String("artifact-remote", "", "layer a remote artifact store (a paperrepro artifactd base URL) under the local disk store"),
	}
}

// open installs the configured store as the process default, returning a
// release func (nil store is fine; release is always safe to call).
func (sf storeFlags) open() (func(), error) {
	if *sf.remote != "" && *sf.dir == "" {
		return nil, fmt.Errorf("-artifact-remote requires -artifact-dir: the remote tier layers under the local disk store")
	}
	dir := *sf.dir
	if dir == "auto" {
		base, err := os.UserCacheDir()
		if err != nil {
			return nil, fmt.Errorf("-artifact-dir auto: %w", err)
		}
		dir = filepath.Join(base, "branchconf", "artifacts")
	}
	if dir == "" {
		return func() {}, nil
	}
	var remote *artifact.Remote
	if *sf.remote != "" {
		remote = artifact.NewRemote(*sf.remote, nil)
	}
	store, err := artifact.OpenStore(dir, artifact.Options{Budget: *sf.diskMB << 20, Remote: remote})
	if err != nil {
		remote.Close()
		return nil, err
	}
	artifact.SetDefault(store)
	return func() {
		artifact.SetDefault(nil)
		store.Close()
	}, nil
}

// fanoutMain is the in-process fan-out coordinator: it cuts the request's
// experiment selection into -shards strided slices, runs each slice as a
// worker building a partial report, round-trips every partial through its
// wire encoding (and, when a store is configured, publishes it as a
// KindPartial artifact), and merges them in registry order. The merged
// report is byte-identical to the single-process run of the same request —
// the multi-machine version of this loop is `paperrepro -shard i/n` per
// worker plus `paperrepro merge`.
func fanoutMain(args []string, stdout, errW io.Writer) error {
	fs := flag.NewFlagSet("paperrepro fanout", flag.ContinueOnError)
	fs.SetOutput(errW)
	shards := fs.Int("shards", 2, "number of worker shards to cut the experiment selection into")
	parallel := fs.Int("parallel", runtime.NumCPU(), "max concurrent experiments across all shards")
	out := fs.String("o", "", "write the merged report to this file instead of stdout")
	rf := addRequestFlags(fs)
	sf := addStoreFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("fanout: unexpected arguments %v", fs.Args())
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be at least 1, got %d", *parallel)
	}
	req, err := rf.request()
	if err != nil {
		return err
	}
	if _, err := serve.ValidateShards(req, *shards); err != nil {
		return err
	}
	release, err := sf.open()
	if err != nil {
		return err
	}
	defer release()

	// One shared session: workers are shards of one logical run, so they
	// share every cache tier exactly as one process's worker pool would.
	session := exp.NewSession(exp.Config{Branches: req.Branches, SegmentBranches: req.SegmentBranches})
	// Split the experiment-level parallelism across concurrently running
	// shards; each worker gets at least one slot.
	perShard := *parallel / *shards
	if perShard < 1 {
		perShard = 1
	}
	partials := make([]*serve.PartialReport, *shards)
	errs := make([]error, *shards)
	var wg sync.WaitGroup
	for i := 0; i < *shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := serve.Shard{Index: i, Count: *shards}
			p, err := serve.BuildPartial(session, req, serve.BuildOptions{Parallel: perShard, Now: now}, sh)
			if err != nil {
				errs[i] = fmt.Errorf("shard %s: %w", sh, err)
				return
			}
			// Round-trip through the wire codec, so the merge consumes
			// exactly what a remote worker would have shipped.
			p, err = serve.DecodePartial(p.Encode())
			if err != nil {
				errs[i] = fmt.Errorf("shard %s: %w", sh, err)
				return
			}
			serve.PublishPartial(p)
			partials[i] = p
			fmt.Fprintf(errW, "shard %s done: %d experiments\n", sh, len(p.Sections))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	report, err := serve.MergeReport(req, partials)
	if err != nil {
		return err
	}
	return writeOut(stdout, *out, report)
}

// mergeMain assembles shard partials into the final report. Two sources:
// positional partial files (each worker's -shard output), or -from-store,
// which fetches every shard's KindPartial artifact from the configured
// (possibly remote) store — the coordinator never re-runs an experiment
// either way.
func mergeMain(args []string, stdout, errW io.Writer) error {
	fs := flag.NewFlagSet("paperrepro merge", flag.ContinueOnError)
	fs.SetOutput(errW)
	out := fs.String("o", "", "write the merged report to this file instead of stdout")
	fromStore := fs.Bool("from-store", false, "fetch partials from the artifact store instead of reading partial files")
	shards := fs.Int("shards", 0, "with -from-store: the fan-out's shard count (fetches shards 0/n..n-1/n)")
	rf := addRequestFlags(fs)
	sf := addStoreFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *fromStore {
		if fs.NArg() > 0 {
			return fmt.Errorf("merge: -from-store conflicts with partial files %v: choose one source", fs.Args())
		}
		if *shards < 1 {
			return fmt.Errorf("merge: -from-store requires -shards: the store is probed per shard coordinate")
		}
		if *sf.dir == "" {
			return fmt.Errorf("merge: -from-store requires -artifact-dir: there is no store to fetch partials from")
		}
		req, err := rf.request()
		if err != nil {
			return err
		}
		release, err := sf.open()
		if err != nil {
			return err
		}
		defer release()
		partials := make([]*serve.PartialReport, *shards)
		for i := range partials {
			sh := serve.Shard{Index: i, Count: *shards}
			p, ok := serve.FetchPartial(req, sh)
			if !ok {
				return fmt.Errorf("merge: no partial for shard %s in the artifact store (did that worker run with -artifact-dir and the same request flags?)", sh)
			}
			partials[i] = p
		}
		report, err := serve.MergeReport(req, partials)
		if err != nil {
			return err
		}
		return writeOut(stdout, *out, report)
	}

	// File mode: the partials carry their request; the merge takes it from
	// the first and verifies the rest against its canonical key. Request
	// flags would be silently shadowed, so reject them explicitly.
	var misused []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "branches", "only", "skip-ablations", "no-timings", "segment-branches", "shards":
			misused = append(misused, "-"+f.Name)
		}
	})
	if len(misused) > 0 {
		return fmt.Errorf("merge: %s applies only with -from-store: file partials carry their request", strings.Join(misused, ", "))
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("merge: needs partial report files (or -from-store -shards n)")
	}
	var partials []*serve.PartialReport
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("merge: %w", err)
		}
		p, err := serve.DecodePartial(data)
		if err != nil {
			return fmt.Errorf("merge: %s: %w", path, err)
		}
		partials = append(partials, p)
	}
	report, err := serve.MergeReport(partials[0].Request, partials)
	if err != nil {
		return err
	}
	return writeOut(stdout, *out, report)
}

// writeOut writes the report to the -o file or stdout.
func writeOut(stdout io.Writer, path string, report []byte) error {
	if path == "" {
		_, err := stdout.Write(report)
		return err
	}
	return os.WriteFile(path, report, 0o644)
}
