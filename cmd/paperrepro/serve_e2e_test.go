package main

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"branchconf/internal/serve"
)

// syncBuffer lets the test read the daemon's stderr while serveMain is
// still writing to it from its own goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`paperrepro serve: listening on (\S+)`)

// TestDaemonEndToEnd is the service-mode acceptance test in one sequential
// flow: boot the daemon on an ephemeral port, prove the daemon's report is
// byte-identical to the one-shot CLI's, prove a repeat is served from the
// rendered-report cache, fetch stats through the client, then SIGTERM the
// process and assert a clean drain. One test on purpose — a second daemon
// would race the shared signal.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a daemon and runs reports twice")
	}

	daemonErr := make(chan error, 1)
	var daemonOut, daemonLog syncBuffer
	go func() {
		daemonErr <- serveMain(
			[]string{"-listen", "127.0.0.1:0", "-parallel", "2", "-drain-timeout", "60s"},
			&daemonOut, &daemonLog)
	}()

	var addr string
	for deadline := time.Now().Add(15 * time.Second); addr == ""; {
		if m := listenLine.FindStringSubmatch(daemonLog.String()); m != nil {
			addr = "http://" + m[1]
			break
		}
		select {
		case err := <-daemonErr:
			t.Fatalf("daemon exited before listening: %v\nstderr:\n%s", err, daemonLog.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address:\n%s", daemonLog.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	flags := []string{"-no-timings", "-branches", "30000", "-only", "fig2,table1"}

	// The ground truth: the one-shot CLI's deterministic bytes.
	var oneShot, oneShotLog strings.Builder
	if err := appMain(append([]string{"-parallel", "2"}, flags...), &oneShot, &oneShotLog); err != nil {
		t.Fatalf("one-shot run: %v", err)
	}

	// Cold leg through the daemon.
	var cold, coldLog strings.Builder
	if err := clientMain(append([]string{"-addr", addr}, flags...), &cold, &coldLog); err != nil {
		t.Fatalf("client cold run: %v\nstderr:\n%s", err, coldLog.String())
	}
	if cold.String() != oneShot.String() {
		t.Fatalf("daemon-served report differs from the one-shot CLI's bytes\ndaemon %d bytes, one-shot %d bytes", cold.Len(), oneShot.Len())
	}
	if strings.Contains(coldLog.String(), "report cache") {
		t.Fatal("cold request claimed a report-cache hit")
	}

	// Warm leg: byte-identical again, and announced as a cache hit.
	var warm, warmLog strings.Builder
	if err := clientMain(append([]string{"-addr", addr}, flags...), &warm, &warmLog); err != nil {
		t.Fatalf("client warm run: %v", err)
	}
	if warm.String() != cold.String() {
		t.Fatal("warm report bytes diverged from the cold leg")
	}
	if !strings.Contains(warmLog.String(), "served from the daemon's report cache") {
		t.Fatalf("warm request not served from the report cache:\n%s", warmLog.String())
	}

	// The client's stats path decodes the daemon's snapshot.
	var statsOut, statsLog strings.Builder
	if err := clientMain([]string{"-addr", addr, "-stats"}, &statsOut, &statsLog); err != nil {
		t.Fatalf("client -stats: %v", err)
	}
	var snap serve.CacheStatsJSON
	if err := json.Unmarshal([]byte(statsOut.String()), &snap); err != nil {
		t.Fatalf("stats did not decode: %v\n%s", err, statsOut.String())
	}
	if snap.Server == nil || snap.Server.RequestsOK != 2 {
		t.Fatalf("daemon stats = %+v, want a server section with 2 ok requests", snap.Server)
	}
	if snap.Server.ReportCacheHits != 1 || snap.Server.ReportCacheMisses != 1 {
		t.Fatalf("report cache counters = %d/%d hits/misses, want 1/1",
			snap.Server.ReportCacheHits, snap.Server.ReportCacheMisses)
	}

	// Graceful shutdown: SIGTERM drains and serveMain returns nil.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case err := <-daemonErr:
		if err != nil {
			t.Fatalf("daemon exit: %v\nstderr:\n%s", err, daemonLog.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not drain within 60s:\n%s", daemonLog.String())
	}
	log := daemonLog.String()
	if !strings.Contains(log, "draining") || !strings.Contains(log, "drained cleanly") {
		t.Fatalf("drain messages missing from daemon stderr:\n%s", log)
	}

	// A post-drain client call must fail: nothing is listening.
	var afterOut, afterLog strings.Builder
	if err := clientMain([]string{"-addr", addr, "-ready", "-timeout", "2s"}, &afterOut, &afterLog); err == nil {
		t.Fatal("readiness probe succeeded after the daemon exited")
	}
}
