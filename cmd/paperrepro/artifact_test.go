package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"branchconf/internal/sim"
	"branchconf/internal/workload"
)

// resetEngineCaches empties every in-memory tier so the next writeReport
// behaves like a fresh process and must go through the disk store (or
// regenerate) rather than hitting the memos warmed by a previous run.
func resetEngineCaches() {
	workload.ResetMaterializeCache()
	sim.ResetAnnotatedCache()
	sim.ResetBucketCache()
}

// diskTier extracts the artifact-disk counters from -cache-stats output.
func diskTier(t *testing.T, errOut string) (hits, misses, verifyFails uint64) {
	t.Helper()
	re := regexp.MustCompile(`cache-stats artifact-disk\s+hits=(\d+) misses=(\d+) evictions=\d+ resident_bytes=\d+ verify_fails=(\d+)`)
	m := re.FindStringSubmatch(errOut)
	if m == nil {
		t.Fatalf("no artifact-disk cache-stats line in:\n%s", errOut)
	}
	h, _ := strconv.ParseUint(m[1], 10, 64)
	mi, _ := strconv.ParseUint(m[2], 10, 64)
	v, _ := strconv.ParseUint(m[3], 10, 64)
	return h, mi, v
}

// TestArtifactWarmStart is the persistent tier's core guarantee, asserted
// end to end: cold, warm, store-disabled, and post-corruption runs of the
// same report are byte-identical — the disk store can change cost, never
// results — with disk hits visible on the warm run and corruption both
// detected and survived.
func TestArtifactWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the report subset four times")
	}
	stubClock(t)
	dir := t.TempDir()
	base := reportConfig{
		branches:   20000,
		filter:     map[string]bool{"fig2": true, "fig5": true, "fig9": true},
		parallel:   2,
		cacheStats: true,
	}
	run := func(artifactDir string) (report, errOut string) {
		t.Helper()
		resetEngineCaches()
		var out, errW strings.Builder
		cfg := base
		cfg.artifactDir = artifactDir
		if err := writeReport(&out, &errW, cfg); err != nil {
			t.Fatal(err)
		}
		return out.String(), errW.String()
	}

	cold, coldErr := run(dir)
	if hits, _, vf := diskTier(t, coldErr); hits != 0 || vf != 0 {
		t.Fatalf("cold run saw disk hits=%d verify_fails=%d, want 0/0", hits, vf)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.art"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("cold run persisted no artifacts (err=%v)", err)
	}

	warm, warmErr := run(dir)
	if warm != cold {
		t.Error("warm report differs from cold report")
	}
	hits, misses, vf := diskTier(t, warmErr)
	if hits == 0 || vf != 0 {
		t.Errorf("warm run: disk hits=%d (want >0) verify_fails=%d (want 0)", hits, vf)
	}
	if misses != 0 {
		t.Errorf("warm run still missed the disk tier %d times", misses)
	}

	noStore, _ := run("")
	if noStore != cold {
		t.Error("-no-artifact report differs from cold report")
	}

	// Flip one bit in the middle of every record: the third run must
	// detect every corruption, regenerate, and still produce the same
	// bytes.
	for _, path := range entries {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x01
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	healed, healedErr := run(dir)
	if healed != cold {
		t.Error("post-corruption report differs from cold report")
	}
	if _, _, vf := diskTier(t, healedErr); vf == 0 {
		t.Error("corrupted records were not detected")
	}

	// And the store healed: a fourth run is warm again.
	final, finalErr := run(dir)
	if final != cold {
		t.Error("post-heal report differs from cold report")
	}
	if hits, _, vf := diskTier(t, finalErr); hits == 0 || vf != 0 {
		t.Errorf("post-heal run: disk hits=%d (want >0) verify_fails=%d (want 0)", hits, vf)
	}
}

// TestArtifactDirAuto: "-artifact-dir auto" resolves to the user cache
// directory rather than being taken literally.
func TestArtifactDirAuto(t *testing.T) {
	stubClock(t)
	cacheRoot := t.TempDir()
	t.Setenv("XDG_CACHE_HOME", cacheRoot)
	var out, errW strings.Builder
	err := appMain([]string{"-artifact-dir", "auto", "-only", "fig2", "-branches", "5000"}, &out, &errW)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(cacheRoot, "branchconf", "artifacts", "*.art"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("auto dir persisted no artifacts under %s (err=%v)", cacheRoot, err)
	}
}

// TestNoArtifactFlag: -no-artifact wins over -artifact-dir.
func TestNoArtifactFlag(t *testing.T) {
	stubClock(t)
	dir := t.TempDir()
	var out, errW strings.Builder
	err := appMain([]string{"-artifact-dir", dir, "-no-artifact", "-only", "fig2", "-branches", "5000"}, &out, &errW)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.art"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("-no-artifact still persisted %d artifacts", len(entries))
	}
}
