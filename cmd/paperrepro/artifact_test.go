package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"branchconf/internal/exp"
	"branchconf/internal/sim"
	"branchconf/internal/workload"
)

// resetEngineCaches empties every in-memory tier so the next writeReport
// behaves like a fresh process and must go through the disk store (or
// regenerate) rather than hitting the memos warmed by a previous run.
func resetEngineCaches() {
	workload.ResetMaterializeCache()
	sim.ResetAnnotatedCache()
	sim.ResetBucketCache()
	exp.ResetCurveCache()
	exp.ResetModelCache()
}

// cacheTier extracts one tier's counters from -cache-stats output.
func cacheTier(t *testing.T, errOut, tier string) (hits, misses, verifyFails uint64) {
	t.Helper()
	re := regexp.MustCompile(fmt.Sprintf(`cache-stats %s\s+hits=(\d+) misses=(\d+) evictions=\d+ resident_bytes=\d+ verify_fails=(\d+)`, regexp.QuoteMeta(tier)))
	m := re.FindStringSubmatch(errOut)
	if m == nil {
		t.Fatalf("no %s cache-stats line in:\n%s", tier, errOut)
	}
	h, _ := strconv.ParseUint(m[1], 10, 64)
	mi, _ := strconv.ParseUint(m[2], 10, 64)
	v, _ := strconv.ParseUint(m[3], 10, 64)
	return h, mi, v
}

// diskTier extracts the artifact-disk counters from -cache-stats output.
func diskTier(t *testing.T, errOut string) (hits, misses, verifyFails uint64) {
	t.Helper()
	return cacheTier(t, errOut, "artifact-disk")
}

// TestArtifactWarmStart is the persistent tier's core guarantee, asserted
// end to end: cold, warm, store-disabled, and post-corruption runs of the
// same report are byte-identical — the disk store can change cost, never
// results — with disk hits visible on the warm run and corruption both
// detected and survived.
func TestArtifactWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the report subset four times")
	}
	stubClock(t)
	dir := t.TempDir()
	base := reportConfig{
		branches:   20000,
		filter:     map[string]bool{"fig2": true, "fig5": true, "fig9": true, "gating": true},
		parallel:   2,
		cacheStats: true,
	}
	run := func(artifactDir string, noCurve, noModel bool) (report, errOut string) {
		t.Helper()
		resetEngineCaches()
		var out, errW strings.Builder
		cfg := base
		cfg.artifactDir = artifactDir
		cfg.noCurveArtifact = noCurve
		cfg.noModelArtifact = noModel
		if err := writeReport(&out, &errW, cfg); err != nil {
			t.Fatal(err)
		}
		return out.String(), errW.String()
	}

	cold, coldErr := run(dir, false, false)
	if hits, _, vf := diskTier(t, coldErr); hits != 0 || vf != 0 {
		t.Fatalf("cold run saw disk hits=%d verify_fails=%d, want 0/0", hits, vf)
	}
	if _, misses, _ := cacheTier(t, coldErr, "curve"); misses == 0 {
		t.Error("cold run built no curves through the curve tier")
	}
	if _, misses, _ := cacheTier(t, coldErr, "model-stats"); misses == 0 {
		t.Error("cold run ran no cycle models through the model tier")
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.art"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("cold run persisted no artifacts (err=%v)", err)
	}

	warm, warmErr := run(dir, false, false)
	if warm != cold {
		t.Error("warm report differs from cold report")
	}
	hits, misses, vf := diskTier(t, warmErr)
	if hits == 0 || vf != 0 {
		t.Errorf("warm run: disk hits=%d (want >0) verify_fails=%d (want 0)", hits, vf)
	}
	if misses != 0 {
		t.Errorf("warm run still missed the disk tier %d times", misses)
	}

	noStore, _ := run("", false, false)
	if noStore != cold {
		t.Error("-no-artifact report differs from cold report")
	}

	// The curve tier is byte-transparent too: bypassing it entirely must
	// reproduce the same report.
	noCurve, noCurveErr := run(dir, true, false)
	if noCurve != cold {
		t.Error("-no-curve-artifact report differs from cold report")
	}
	if h, m, _ := cacheTier(t, noCurveErr, "curve"); h != 0 || m != 0 {
		t.Errorf("-no-curve-artifact still moved the curve tier: hits=%d misses=%d", h, m)
	}

	// Same transparency contract for the cycle-model tier.
	noModel, noModelErr := run(dir, false, true)
	if noModel != cold {
		t.Error("-no-model-artifact report differs from cold report")
	}
	if h, m, _ := cacheTier(t, noModelErr, "model-stats"); h != 0 || m != 0 {
		t.Errorf("-no-model-artifact still moved the model tier: hits=%d misses=%d", h, m)
	}

	// Flip one bit in the middle of every record: the third run must
	// detect every corruption, regenerate, and still produce the same
	// bytes.
	for _, path := range entries {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x01
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	healed, healedErr := run(dir, false, false)
	if healed != cold {
		t.Error("post-corruption report differs from cold report")
	}
	if _, _, vf := diskTier(t, healedErr); vf == 0 {
		t.Error("corrupted records were not detected")
	}

	// And the store healed: a fourth run is warm again.
	final, finalErr := run(dir, false, false)
	if final != cold {
		t.Error("post-heal report differs from cold report")
	}
	if hits, _, vf := diskTier(t, finalErr); hits == 0 || vf != 0 {
		t.Errorf("post-heal run: disk hits=%d (want >0) verify_fails=%d (want 0)", hits, vf)
	}
}

// TestArtifactDirAuto: "-artifact-dir auto" resolves to the user cache
// directory rather than being taken literally.
func TestArtifactDirAuto(t *testing.T) {
	stubClock(t)
	cacheRoot := t.TempDir()
	t.Setenv("XDG_CACHE_HOME", cacheRoot)
	var out, errW strings.Builder
	err := appMain([]string{"-artifact-dir", "auto", "-only", "fig2", "-branches", "5000"}, &out, &errW)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(cacheRoot, "branchconf", "artifacts", "*.art"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("auto dir persisted no artifacts under %s (err=%v)", cacheRoot, err)
	}
}

// TestNoArtifactFlag: -no-artifact wins over -artifact-dir.
func TestNoArtifactFlag(t *testing.T) {
	stubClock(t)
	dir := t.TempDir()
	var out, errW strings.Builder
	err := appMain([]string{"-artifact-dir", dir, "-no-artifact", "-only", "fig2", "-branches", "5000"}, &out, &errW)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.art"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("-no-artifact still persisted %d artifacts", len(entries))
	}
}
