package main

import (
	"strings"
	"testing"
	"time"
)

// stubClock freezes the report's timing lines so byte-comparison ignores
// wall-clock noise. now is a package variable read from worker goroutines,
// so the stub must be installed before writeReport starts and be
// race-free; a fixed instant is both.
func stubClock(t *testing.T) {
	t.Helper()
	saved := now
	epoch := time.Unix(1_000_000, 0)
	now = func() time.Time { return epoch }
	t.Cleanup(func() { now = saved })
}

// TestParallelReportMatchesSerial is the scheduler's determinism
// guarantee: the report produced by the bounded worker pool at any
// parallelism level is byte-identical to the serial run.
func TestParallelReportMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment subset at three parallelism levels")
	}
	stubClock(t)
	// A subset spanning batched figures, derived tables, and streaming
	// application models keeps the test quick while exercising the shared
	// session from many goroutines.
	cfg := reportConfig{
		branches: 30000,
		filter: map[string]bool{
			"fig2": true, "fig5": true, "fig8": true, "table1": true,
			"thresholds": true, "multilevel": true, "fig9": true,
		},
	}
	render := func(parallel int) string {
		var out, errW strings.Builder
		c := cfg
		c.parallel = parallel
		if err := writeReport(&out, &errW, c); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return out.String()
	}
	serial := render(1)
	for _, parallel := range []int{2, 8} {
		if got := render(parallel); got != serial {
			t.Errorf("report at -parallel=%d differs from serial output", parallel)
		}
	}

	// The annotated two-stage engine and the interleaved engine must also
	// agree byte for byte, at any worker count.
	renderNoAnnotate := func(parallel int) string {
		var out, errW strings.Builder
		c := cfg
		c.parallel = parallel
		c.noAnnotate = true
		if err := writeReport(&out, &errW, c); err != nil {
			t.Fatalf("no-annotate parallel=%d: %v", parallel, err)
		}
		return out.String()
	}
	for _, parallel := range []int{1, 2, 8} {
		if got := renderNoAnnotate(parallel); got != serial {
			t.Errorf("interleaved-engine report at -parallel=%d differs from annotated serial output", parallel)
		}
	}

	// And the stage-3 tally engine must change nothing: a -no-tally report
	// is byte-identical to the default (tally-enabled) report at any worker
	// count.
	renderNoTally := func(parallel int) string {
		var out, errW strings.Builder
		c := cfg
		c.parallel = parallel
		c.noTally = true
		if err := writeReport(&out, &errW, c); err != nil {
			t.Fatalf("no-tally parallel=%d: %v", parallel, err)
		}
		return out.String()
	}
	for _, parallel := range []int{1, 2, 8} {
		if got := renderNoTally(parallel); got != serial {
			t.Errorf("replay-path report at -parallel=%d differs from tally-path serial output", parallel)
		}
	}
}

// TestReportCacheStats checks the progress stream reports the session's
// cache behaviour when writing to a file (-o mode).
func TestReportCacheStats(t *testing.T) {
	stubClock(t)
	var out, errW strings.Builder
	err := writeReport(&out, &errW, reportConfig{
		branches: 20000,
		filter:   map[string]bool{"fig2": true, "fig5": true},
		progress: true,
		parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	progress := errW.String()
	if !strings.Contains(progress, "pass cache:") || !strings.Contains(progress, "trace cache:") ||
		!strings.Contains(progress, "annotated cache:") {
		t.Fatalf("progress output missing cache stats:\n%s", progress)
	}
}
