package main

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"branchconf/internal/artifact"
	"branchconf/internal/faultfs"
)

// TestSegmentBranchesFlagValidation: -segment-branches must be >= 1 (or -1
// for auto), -no-stream conflicts with an explicit segment size, and
// -no-stream is rejected outright for budgets above the materialization
// ceiling — a monolithic run there would not fit.
func TestSegmentBranchesFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string // substring of the expected error
	}{
		{"zero", []string{"-segment-branches", "0"}, "-segment-branches"},
		{"negative", []string{"-segment-branches", "-2"}, "-segment-branches"},
		{"conflict", []string{"-no-stream", "-segment-branches", "4096"}, "-no-stream conflicts"},
		{"ceiling", []string{"-no-stream", "-branches", "100000000"}, "materialization ceiling"},
		{"ceiling-default-budget", nil, ""}, // placeholder, replaced below
	} {
		if tc.name == "ceiling-default-budget" {
			continue
		}
		var out, errW strings.Builder
		err := appMain(tc.args, &out, &errW)
		if err == nil {
			t.Fatalf("%s: args %v accepted", tc.name, tc.args)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
	// A small -no-stream run is fine: the budget materializes comfortably.
	var out, errW strings.Builder
	if err := appMain([]string{"-no-stream", "-branches", "10000", "-only", "fig2"}, &out, &errW); err != nil {
		t.Fatalf("-no-stream at a small budget rejected: %v", err)
	}
}

// TestStreamingReportMatchesMonolithic is the report-level A/B identity:
// the full figure-mix report must be byte-identical between the segmented
// streaming engine and the monolithic engine, cold and warm.
func TestStreamingReportMatchesMonolithic(t *testing.T) {
	stubClock(t)
	base := reportConfig{
		branches:   10000,
		filter:     map[string]bool{"fig2": true, "fig5": true, "table1": true},
		parallel:   2,
		cacheStats: true,
	}
	run := func(t *testing.T, cfg reportConfig) (report, errOut string) {
		t.Helper()
		resetEngineCaches()
		var out, errW strings.Builder
		if err := writeReport(&out, &errW, cfg); err != nil {
			t.Fatal(err)
		}
		return out.String(), errW.String()
	}

	baseline, _ := run(t, base)

	seg := base
	seg.segmentBranches = 2048
	cold, coldErr := run(t, seg)
	if cold != baseline {
		t.Fatal("cold segmented report diverges from monolithic")
	}
	if _, misses, _ := cacheTier(t, coldErr, "stream-segment"); misses == 0 {
		t.Fatalf("cold segmented run built no live segments:\n%s", coldErr)
	}

	// Warm: same store, second segmented run serves segments from disk.
	dir := t.TempDir()
	seg.artifactDir = dir
	if rep, _ := run(t, seg); rep != baseline {
		t.Fatal("cold segmented report with a store diverges")
	}
	warm, warmErr := run(t, seg)
	if warm != baseline {
		t.Fatal("warm segmented report diverges from monolithic")
	}
	if hits, _, _ := cacheTier(t, warmErr, "stream-segment"); hits == 0 {
		t.Fatalf("warm segmented run served no segments from disk:\n%s", warmErr)
	}
}

// TestStreamSegmentCorruptionHeals: flipping bytes in a third of the
// store's records — segment payloads and boundary checkpoints among them —
// must never change report bytes. Checksums reject the damage, the
// streaming walk rebuilds from the surviving checkpoints (or retries the
// unit live when a boundary checkpoint itself is gone), republishes, and
// leaves no staging files behind.
func TestStreamSegmentCorruptionHeals(t *testing.T) {
	stubClock(t)
	dir := t.TempDir()
	cfg := reportConfig{
		branches:        10000,
		filter:          map[string]bool{"fig5": true},
		parallel:        2,
		cacheStats:      true,
		segmentBranches: 1024,
		artifactDir:     dir,
	}
	run := func(t *testing.T) (report, errOut string) {
		t.Helper()
		resetEngineCaches()
		var out, errW strings.Builder
		if err := writeReport(&out, &errW, cfg); err != nil {
			t.Fatal(err)
		}
		return out.String(), errW.String()
	}
	baseline, _ := run(t)

	names, err := filepath.Glob(filepath.Join(dir, "*.art"))
	if err != nil || len(names) == 0 {
		t.Fatalf("store holds no artifacts (err %v)", err)
	}
	sort.Strings(names)
	corrupted := 0
	for i, name := range names {
		if i%3 != 0 {
			continue
		}
		data, err := os.ReadFile(name)
		if err != nil || len(data) == 0 {
			t.Fatalf("reading %s: %v", name, err)
		}
		data[len(data)-1] ^= 0xFF
		if err := os.WriteFile(name, data, 0o666); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("corrupted nothing")
	}

	healed, errOut := run(t)
	if healed != baseline {
		t.Fatal("report after segment-record corruption diverges")
	}
	if _, _, verifyFails := cacheTier(t, errOut, "artifact-disk"); verifyFails == 0 {
		t.Fatalf("corruption went undetected:\n%s", errOut)
	}
	if temps, _ := filepath.Glob(filepath.Join(dir, ".tmp-*")); len(temps) != 0 {
		t.Errorf("temp files leaked during rebuild: %v", temps)
	}

	// Fully healed: one more run is warm and identical.
	again, _ := run(t)
	if again != baseline {
		t.Fatal("post-heal segmented report diverges")
	}
}

// TestStreamingFaultStorm folds the segment artifacts into the fault
// matrix: a segmented report under a seeded random I/O fault storm — Puts
// of segment payloads and checkpoints failing nondeterministically, reads
// erroring mid-walk — still produces byte-identical output, and recovery
// sweeps every staging file.
func TestStreamingFaultStorm(t *testing.T) {
	stubClock(t)
	base := reportConfig{
		branches:        8000,
		filter:          map[string]bool{"fig5": true},
		parallel:        2,
		cacheStats:      true,
		segmentBranches: 1024,
	}
	resetEngineCaches()
	var baseOut, baseErr strings.Builder
	if err := writeReport(&baseOut, &baseErr, base); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ffs := faultfs.New(artifact.OSFS())
	// Prewarm cleanly so the storm hits live read paths too.
	prewarm := base
	prewarm.artifactDir = dir
	prewarm.artifactFS = ffs
	resetEngineCaches()
	var out, errW strings.Builder
	if err := writeReport(&out, &errW, prewarm); err != nil {
		t.Fatalf("prewarm: %v", err)
	}
	if out.String() != baseOut.String() {
		t.Fatal("prewarm segmented report diverges")
	}

	ffs.SeedRandom(7, 0.3, syscall.EIO, syscall.ENOSPC, syscall.EACCES)
	resetEngineCaches()
	out.Reset()
	errW.Reset()
	if err := writeReport(&out, &errW, prewarm); err != nil {
		t.Fatalf("storm run failed hard: %v", err)
	}
	if out.String() != baseOut.String() {
		t.Error("segmented report under fault storm diverges")
	}
	if ffs.Injected() == 0 {
		t.Fatal("storm injected no faults")
	}

	// The storm can strand staging files whose cleanup Remove also faulted;
	// the store's contract is that the next Open sweeps them once they are
	// older than the orphan TTL. Backdate any survivors past the TTL and
	// verify the sweep.
	ffs.Clear()
	old := time.Now().Add(-2 * time.Hour)
	temps, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	for _, name := range temps {
		if err := os.Chtimes(name, old, old); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := artifact.Open(dir, 0); err != nil {
		t.Fatalf("reopen after storm: %v", err)
	}
	if temps, _ := filepath.Glob(filepath.Join(dir, ".tmp-*")); len(temps) != 0 {
		t.Errorf("temp files leaked past recovery: %v", temps)
	}
}
