package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"branchconf/internal/serve"
)

// clientMain is the daemon's thin CLI client: it maps the familiar
// one-shot flags onto a report request, or fetches the daemon's stats and
// health endpoints.
func clientMain(args []string, stdout, errW io.Writer) error {
	fs := flag.NewFlagSet("paperrepro client", flag.ContinueOnError)
	fs.SetOutput(errW)
	var (
		addr          = fs.String("addr", "http://127.0.0.1:8091", "daemon base URL")
		branches      = fs.Uint64("branches", 0, "dynamic branches per benchmark (0 = benchmark default)")
		only          = fs.String("only", "", "comma-separated experiment ids to run (default: all)")
		skipAblations = fs.Bool("skip-ablations", false, "run only the paper's own artefacts")
		noTimings     = fs.Bool("no-timings", false, "omit per-experiment wall-time lines (deterministic bytes; served from the daemon's report cache when warm)")
		segBranches   = fs.Int64("segment-branches", -1, "stream traces in segments of this many branches (-1 = auto)")
		noStream      = fs.Bool("no-stream", false, "never stream: reject budgets above the materialization ceiling")
		traceFile     = fs.String("trace", "", "recorded ChampSim trace for the realtrace experiment — a path on the daemon's machine; the daemon resolves its content identity")
		out           = fs.String("o", "", "write the report to this file instead of stdout")
		stats         = fs.Bool("stats", false, "fetch the daemon's cache-stats JSON instead of a report")
		ready         = fs.Bool("ready", false, "probe the daemon's readiness endpoint instead of a report")
		timeout       = fs.Duration("timeout", 10*time.Minute, "request timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("client: unexpected arguments %v", fs.Args())
	}
	if *segBranches == 0 || *segBranches < -1 {
		return fmt.Errorf("-segment-branches must be at least 1 (or -1 for auto), got %d", *segBranches)
	}
	if *noStream && *segBranches > 0 {
		return fmt.Errorf("-no-stream conflicts with -segment-branches %d: streaming cannot be both forced off and configured", *segBranches)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := &serve.Client{Base: *addr}

	switch {
	case *ready:
		if err := c.Ready(ctx); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "ready")
		return nil
	case *stats:
		snap, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		return serve.WriteCacheStatsJSON(stdout, snap)
	}

	req := serve.ReportRequest{
		Branches:      *branches,
		SkipAblations: *skipAblations,
		NoTimings:     *noTimings,
		NoStream:      *noStream,
		TraceFile:     *traceFile,
	}
	if *segBranches > 0 {
		req.SegmentBranches = uint64(*segBranches)
	}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			req.Only = append(req.Only, strings.TrimSpace(id))
		}
	}
	report, cached, err := c.Report(ctx, req)
	if err != nil {
		return err
	}
	if cached {
		fmt.Fprintln(errW, "client: served from the daemon's report cache")
	}
	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	_, err = w.Write(report)
	return err
}
