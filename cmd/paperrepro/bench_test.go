package main

import (
	"io"
	"runtime"
	"testing"

	"branchconf/internal/sim"
	"branchconf/internal/workload"
)

// benchReport runs writeReport over a fixed experiment subset at the given
// parallelism with a cold trace cache, the end-to-end unit the single-pass
// engine was built to speed up. The serial sub-benchmark stands in for the
// pre-engine pipeline shape (one experiment at a time); the parallel one is
// the shipped default.
func benchReport(b *testing.B, parallel int) {
	cfg := reportConfig{
		branches: 50000,
		filter: map[string]bool{
			"fig2": true, "fig5": true, "fig6": true, "fig7": true,
			"fig8": true, "table1": true, "fig9": true, "thresholds": true,
		},
		parallel: parallel,
	}
	// One discarded warmup iteration: JIT-ish one-time costs (first GC
	// sizing, page faults on the trace buffers) land outside the timer.
	workload.ResetMaterializeCache()
	if err := writeReport(io.Discard, io.Discard, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		workload.ResetMaterializeCache()
		b.StartTimer()
		if err := writeReport(io.Discard, io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaperreproSerial(b *testing.B) { benchReport(b, 1) }

func BenchmarkPaperreproParallel(b *testing.B) { benchReport(b, runtime.NumCPU()) }

// figureMix is the multi-variant figure set: every experiment whose passes
// sweep mechanism variants over the shared predictor configs.
var figureMix = map[string]bool{
	"fig2": true, "fig5": true, "fig6": true, "fig7": true,
	"fig8": true, "fig9": true, "fig11": true,
}

// fullMix adds the derived tables and predictor-coupled experiments on top
// of the figures — a whole-report shape.
var fullMix = map[string]bool{
	"fig2": true, "fig5": true, "fig6": true, "fig7": true,
	"fig8": true, "table1": true, "fig9": true, "fig11": true,
	"thresholds": true, "multilevel": true, "strength": true,
}

// benchEngines compares the engine stages against each other on the given
// experiment mix. The trace cache is warmed outside the timer (every engine
// replays materialized traces); the annotated and bucket-stream caches are
// reset per iteration unless warmAnnotated, so the cold case measures one
// report run from scratch and the warm case the incremental rerun
// (predictor evolution and bucket-stream builds skipped entirely on cache
// hits). noTally disables stage 3, leaving the PR 2 per-variant replay
// path — the in-binary A/B that isolates the tally stage itself.
func benchEngines(b *testing.B, filter map[string]bool, noAnnotate, noTally, warmAnnotated bool, parallel int) {
	cfg := reportConfig{
		branches:   200000,
		filter:     filter,
		parallel:   parallel,
		noAnnotate: noAnnotate,
		noTally:    noTally,
	}
	resetCaches := func() {
		sim.ResetAnnotatedCache()
		sim.ResetBucketCache()
	}
	// Warm the trace cache so no engine pays the synthetic walk; this also
	// serves as the discarded warmup iteration for one-time process costs.
	resetCaches()
	if err := writeReport(io.Discard, io.Discard, cfg); err != nil {
		b.Fatal(err)
	}
	if !warmAnnotated {
		resetCaches()
	}
	b.Cleanup(resetCaches)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !warmAnnotated {
			b.StopTimer()
			resetCaches()
			b.StartTimer()
		}
		if err := writeReport(io.Discard, io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnginesInterleaved(b *testing.B) { benchEngines(b, figureMix, true, true, false, 2) }

// BenchmarkEnginesAnnotated is the PR 2 shape: annotated streams, every
// mechanism variant on the replay path.
func BenchmarkEnginesAnnotated(b *testing.B) { benchEngines(b, figureMix, false, true, false, 2) }

// BenchmarkEnginesTally adds stage 3: factorable variants served from
// geometry-keyed bucket streams, counter tables still replayed.
func BenchmarkEnginesTally(b *testing.B) { benchEngines(b, figureMix, false, false, false, 2) }

// BenchmarkEnginesAnnotatedWarm reruns the figures against a warm annotated
// cache — the incremental-variant scenario: every predictor pass is a cache
// hit, so only mechanism replay remains.
func BenchmarkEnginesAnnotatedWarm(b *testing.B) {
	benchEngines(b, figureMix, false, true, true, 2)
}

// BenchmarkEnginesTallyWarm is the fully warm stage-3 rerun: annotated
// streams and bucket streams both cached, so factorable variants cost one
// histogram share each.
func BenchmarkEnginesTallyWarm(b *testing.B) { benchEngines(b, figureMix, false, false, true, 2) }

// The Full variants run the whole-report mix, adding the derived tables and
// the predictor-coupled strength experiment.
func BenchmarkEnginesFullInterleaved(b *testing.B) { benchEngines(b, fullMix, true, true, false, 2) }

func BenchmarkEnginesFullAnnotated(b *testing.B) { benchEngines(b, fullMix, false, true, false, 2) }

func BenchmarkEnginesFullTally(b *testing.B) { benchEngines(b, fullMix, false, false, false, 2) }

func BenchmarkEnginesFullTallyWarm(b *testing.B) { benchEngines(b, fullMix, false, false, true, 2) }

// BenchmarkReportWarmFloor measures the warm floor itself: every in-memory
// tier dropped per iteration (a fresh process, in effect), every stage
// artifact — traces, annotated streams, bucket streams, model counts,
// curves — served from a pre-populated disk store. The discarded warmup
// iteration is the cold run that fills the store.
func BenchmarkReportWarmFloor(b *testing.B) {
	cfg := reportConfig{
		branches:    50000,
		filter:      nil, // the whole report — cycle models included
		parallel:    2,
		artifactDir: b.TempDir(),
	}
	resetEngineCaches()
	if err := writeReport(io.Discard, io.Discard, cfg); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(resetEngineCaches)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		resetEngineCaches()
		b.StartTimer()
		if err := writeReport(io.Discard, io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReportStreaming runs the figure mix through the segmented
// streaming engine (segments well below the per-benchmark budget, no
// store), against BenchmarkEnginesTally's monolithic shape on the same mix
// and budget: the price of bounded resident memory when the whole trace
// would in fact have fit. The streaming suite path bypasses the in-memory
// materialize/annotated caches by construction, so only the curve/model
// memos need resetting for a cold iteration.
func BenchmarkReportStreaming(b *testing.B) {
	cfg := reportConfig{
		branches:        200000,
		filter:          figureMix,
		parallel:        2,
		segmentBranches: 32768,
	}
	resetEngineCaches()
	if err := writeReport(io.Discard, io.Discard, cfg); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(resetEngineCaches)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		resetEngineCaches()
		b.StartTimer()
		if err := writeReport(io.Discard, io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
