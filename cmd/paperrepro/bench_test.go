package main

import (
	"io"
	"runtime"
	"testing"

	"branchconf/internal/workload"
)

// benchReport runs writeReport over a fixed experiment subset at the given
// parallelism with a cold trace cache, the end-to-end unit the single-pass
// engine was built to speed up. The serial sub-benchmark stands in for the
// pre-engine pipeline shape (one experiment at a time); the parallel one is
// the shipped default.
func benchReport(b *testing.B, parallel int) {
	cfg := reportConfig{
		branches: 50000,
		filter: map[string]bool{
			"fig2": true, "fig5": true, "fig6": true, "fig7": true,
			"fig8": true, "table1": true, "fig9": true, "thresholds": true,
		},
		parallel: parallel,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		workload.ResetMaterializeCache()
		b.StartTimer()
		if err := writeReport(io.Discard, io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaperreproSerial(b *testing.B) { benchReport(b, 1) }

func BenchmarkPaperreproParallel(b *testing.B) { benchReport(b, runtime.NumCPU()) }
