package main

import (
	"io"
	"runtime"
	"testing"

	"branchconf/internal/sim"
	"branchconf/internal/workload"
)

// benchReport runs writeReport over a fixed experiment subset at the given
// parallelism with a cold trace cache, the end-to-end unit the single-pass
// engine was built to speed up. The serial sub-benchmark stands in for the
// pre-engine pipeline shape (one experiment at a time); the parallel one is
// the shipped default.
func benchReport(b *testing.B, parallel int) {
	cfg := reportConfig{
		branches: 50000,
		filter: map[string]bool{
			"fig2": true, "fig5": true, "fig6": true, "fig7": true,
			"fig8": true, "table1": true, "fig9": true, "thresholds": true,
		},
		parallel: parallel,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		workload.ResetMaterializeCache()
		b.StartTimer()
		if err := writeReport(io.Discard, io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaperreproSerial(b *testing.B) { benchReport(b, 1) }

func BenchmarkPaperreproParallel(b *testing.B) { benchReport(b, runtime.NumCPU()) }

// figureMix is the multi-variant figure set: every experiment whose passes
// sweep mechanism variants over the shared predictor configs.
var figureMix = map[string]bool{
	"fig2": true, "fig5": true, "fig6": true, "fig7": true,
	"fig8": true, "fig9": true, "fig11": true,
}

// fullMix adds the derived tables and predictor-coupled experiments on top
// of the figures — a whole-report shape.
var fullMix = map[string]bool{
	"fig2": true, "fig5": true, "fig6": true, "fig7": true,
	"fig8": true, "table1": true, "fig9": true, "fig11": true,
	"thresholds": true, "multilevel": true, "strength": true,
}

// benchEngines compares the two-stage annotated engine against the
// interleaved single-pass engine on the given experiment mix. The trace
// cache is warmed outside the timer (both engines replay materialized
// traces); the annotated cache is reset per iteration unless warmAnnotated,
// so the cold case measures one report run from scratch and the warm case
// the incremental rerun (predictor evolution skipped entirely on cache
// hits).
func benchEngines(b *testing.B, filter map[string]bool, noAnnotate, warmAnnotated bool, parallel int) {
	cfg := reportConfig{
		branches:   200000,
		filter:     filter,
		parallel:   parallel,
		noAnnotate: noAnnotate,
	}
	// Warm the trace cache so neither engine pays the synthetic walk.
	sim.ResetAnnotatedCache()
	if err := writeReport(io.Discard, io.Discard, cfg); err != nil {
		b.Fatal(err)
	}
	if !warmAnnotated {
		sim.ResetAnnotatedCache()
	}
	b.Cleanup(sim.ResetAnnotatedCache)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !warmAnnotated {
			b.StopTimer()
			sim.ResetAnnotatedCache()
			b.StartTimer()
		}
		if err := writeReport(io.Discard, io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnginesInterleaved(b *testing.B) { benchEngines(b, figureMix, true, false, 2) }

func BenchmarkEnginesAnnotated(b *testing.B) { benchEngines(b, figureMix, false, false, 2) }

// BenchmarkEnginesAnnotatedWarm reruns the figures against a warm annotated
// cache — the incremental-variant scenario: every predictor pass is a cache
// hit, so only mechanism replay remains.
func BenchmarkEnginesAnnotatedWarm(b *testing.B) { benchEngines(b, figureMix, false, true, 2) }

// The Full variants run the whole-report mix, adding the derived tables and
// the predictor-coupled strength experiment.
func BenchmarkEnginesFullInterleaved(b *testing.B) { benchEngines(b, fullMix, true, false, 2) }

func BenchmarkEnginesFullAnnotated(b *testing.B) { benchEngines(b, fullMix, false, false, 2) }

func BenchmarkEnginesFullAnnotatedWarm(b *testing.B) { benchEngines(b, fullMix, false, true, 2) }
