package main

import (
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"

	"branchconf/internal/artifact"
	"branchconf/internal/faultfs"
)

// TestArtifactFaultMatrix is the fail-soft tier's end-to-end invariant:
// under every injected fault class — ENOSPC, EIO, EACCES, partial writes,
// crashes on either side of the publishing rename, and a seeded random
// storm — a report produced through the artifact store is byte-identical
// to a -no-artifact run, and after the outage ends the next Open leaves no
// .tmp-* file in the directory. Faults change cost and health counters,
// never report bytes; -artifact-strict (exercised separately below) is the
// only way a store fault becomes a run failure.
func TestArtifactFaultMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the report subset once per fault class")
	}
	stubClock(t)
	base := reportConfig{
		branches:   10000,
		filter:     map[string]bool{"fig2": true, "fig5": true},
		parallel:   2,
		cacheStats: true,
	}
	run := func(t *testing.T, dir string, fsys artifact.FS) (report, errOut string, err error) {
		t.Helper()
		resetEngineCaches()
		var out, errW strings.Builder
		cfg := base
		cfg.artifactDir = dir
		cfg.artifactFS = fsys
		err = writeReport(&out, &errW, cfg)
		return out.String(), errW.String(), err
	}

	resetEngineCaches()
	var baselineOut, baselineErr strings.Builder
	if err := writeReport(&baselineOut, &baselineErr, base); err != nil { // no artifact dir at all
		t.Fatal(err)
	}
	baseline := baselineOut.String()

	scenarios := []struct {
		name    string
		prewarm bool // populate the store cleanly first, so read paths are live
		arm     func(f *faultfs.FS)
	}{
		{"enospc-every-stage", false, func(f *faultfs.FS) {
			f.Inject(faultfs.Fault{Op: faultfs.OpCreateTemp, Err: syscall.ENOSPC})
		}},
		{"enospc-every-write", false, func(f *faultfs.FS) {
			f.Inject(faultfs.Fault{Op: faultfs.OpWrite, Err: syscall.ENOSPC})
		}},
		{"eio-read-transient", true, func(f *faultfs.FS) {
			f.Inject(faultfs.Fault{Op: faultfs.OpReadFile, Nth: 1, Err: syscall.EIO})
		}},
		{"eio-read-persistent", true, func(f *faultfs.FS) {
			f.Inject(faultfs.Fault{Op: faultfs.OpReadFile, Err: syscall.EIO})
		}},
		{"eacces-every-rename", false, func(f *faultfs.FS) {
			f.Inject(faultfs.Fault{Op: faultfs.OpRename, Err: syscall.EACCES})
		}},
		{"eacces-chtimes", true, func(f *faultfs.FS) {
			f.Inject(faultfs.Fault{Op: faultfs.OpChtimes, Err: syscall.EACCES})
		}},
		{"partial-write", false, func(f *faultfs.FS) {
			f.Inject(faultfs.Fault{Op: faultfs.OpWrite, Nth: 1, Err: syscall.EIO, Mode: faultfs.PartialWrite})
		}},
		{"crash-before-rename", false, func(f *faultfs.FS) {
			f.Inject(faultfs.Fault{Op: faultfs.OpRename, Nth: 1, Err: syscall.EIO, Mode: faultfs.CrashBeforeRename})
		}},
		{"crash-after-rename", false, func(f *faultfs.FS) {
			f.Inject(faultfs.Fault{Op: faultfs.OpRename, Nth: 1, Err: syscall.EIO, Mode: faultfs.CrashAfterRename})
		}},
		{"open-mkdir-eacces", false, func(f *faultfs.FS) {
			f.Inject(faultfs.Fault{Op: faultfs.OpMkdirAll, Err: syscall.EACCES})
		}},
		{"seeded-storm", true, func(f *faultfs.FS) {
			f.SeedRandom(42, 0.3, syscall.EIO, syscall.ENOSPC, syscall.EACCES)
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultfs.New(artifact.OSFS())
			if sc.prewarm {
				if _, _, err := run(t, dir, ffs); err != nil {
					t.Fatalf("prewarm: %v", err)
				}
			}
			sc.arm(ffs)
			report, errOut, err := run(t, dir, ffs)
			if err != nil {
				t.Fatalf("fail-soft run failed hard: %v", err)
			}
			if report != baseline {
				t.Error("report under injected faults diverges from the -no-artifact baseline")
			}
			if !strings.Contains(errOut, "cache-stats artifact-disk") {
				t.Fatalf("no artifact-disk cache-stats line in:\n%s", errOut)
			}
			if ffs.Injected() == 0 && sc.name != "eacces-chtimes" {
				t.Fatal("scenario injected no faults; the matrix proved nothing")
			}

			// The outage ends (process restart on healthy media): the next
			// Open must sweep every orphan the faults left behind.
			ffs.Clear()
			if _, err := artifact.Open(dir, 0); err != nil {
				t.Fatalf("reopen after outage: %v", err)
			}
			if temps, _ := filepath.Glob(filepath.Join(dir, ".tmp-*")); len(temps) != 0 {
				t.Errorf("temp files leaked past recovery: %v", temps)
			}

			// And the store heals: a clean run still matches the baseline.
			healed, _, err := run(t, dir, nil)
			if err != nil {
				t.Fatalf("healed run: %v", err)
			}
			if healed != baseline {
				t.Error("healed report diverges from baseline")
			}
		})
	}
}

// TestArtifactDegradedModeObservable: a run that trips the breaker still
// completes with baseline-identical output, and the degradation is visible
// in -cache-stats (degraded=true with op errors counted).
func TestArtifactDegradedModeObservable(t *testing.T) {
	stubClock(t)
	base := reportConfig{
		branches:   5000,
		filter:     map[string]bool{"fig2": true},
		parallel:   2,
		cacheStats: true,
	}
	resetEngineCaches()
	var baseOut, baseErr strings.Builder
	if err := writeReport(&baseOut, &baseErr, base); err != nil {
		t.Fatal(err)
	}

	ffs := faultfs.New(artifact.OSFS())
	ffs.Inject(faultfs.Fault{Op: faultfs.OpCreateTemp, Err: syscall.ENOSPC})
	resetEngineCaches()
	var out, errW strings.Builder
	cfg := base
	cfg.artifactDir = t.TempDir()
	cfg.artifactFS = ffs
	if err := writeReport(&out, &errW, cfg); err != nil {
		t.Fatalf("degraded run failed hard: %v", err)
	}
	if out.String() != baseOut.String() {
		t.Error("degraded run changed the report bytes")
	}
	re := regexp.MustCompile(`cache-stats artifact-disk\s+.*op_errors=(\d+) degraded=(\w+)`)
	m := re.FindStringSubmatch(errW.String())
	if m == nil {
		t.Fatalf("no artifact-disk health columns in:\n%s", errW.String())
	}
	if m[1] == "0" || m[2] != "true" {
		t.Errorf("breaker trip not observable: op_errors=%s degraded=%s", m[1], m[2])
	}
}

// TestArtifactStrictFailsHard: -artifact-strict turns the first classified
// store failure into a run failure — no report bytes, a classified error —
// where the default policy would have degraded and completed.
func TestArtifactStrictFailsHard(t *testing.T) {
	stubClock(t)
	ffs := faultfs.New(artifact.OSFS())
	ffs.Inject(faultfs.Fault{Op: faultfs.OpCreateTemp, Err: syscall.ENOSPC})
	resetEngineCaches()
	var out, errW strings.Builder
	err := writeReport(&out, &errW, reportConfig{
		branches:       5000,
		filter:         map[string]bool{"fig2": true},
		parallel:       2,
		artifactDir:    t.TempDir(),
		artifactFS:     ffs,
		artifactStrict: true,
	})
	if err == nil {
		t.Fatal("strict run with a full disk succeeded")
	}
	if !strings.Contains(err.Error(), "permanent") {
		t.Errorf("strict error %q does not classify the failure", err)
	}
	if out.Len() != 0 {
		t.Error("strict failure still wrote report bytes")
	}

	// Strict open failure surfaces immediately too.
	ffs = faultfs.New(artifact.OSFS())
	ffs.Inject(faultfs.Fault{Op: faultfs.OpMkdirAll, Err: syscall.EACCES})
	resetEngineCaches()
	out.Reset()
	err = writeReport(&out, &errW, reportConfig{
		branches:       5000,
		filter:         map[string]bool{"fig2": true},
		parallel:       1,
		artifactDir:    filepath.Join(t.TempDir(), "unmakeable"),
		artifactFS:     ffs,
		artifactStrict: true,
	})
	if err == nil {
		t.Fatal("strict run with an uncreatable store directory succeeded")
	}
}
