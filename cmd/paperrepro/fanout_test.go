package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"branchconf/internal/artifact"
	"branchconf/internal/faultnet"
)

// newRemoteStoreServer boots an in-process artifactd equivalent: the remote
// object protocol over a fresh backing directory.
func newRemoteStoreServer(t *testing.T) (string, *artifact.RemoteServer) {
	t.Helper()
	backing, err := artifact.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := artifact.NewRemoteServer(backing)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL, srv
}

// remoteTier extracts the remote-artifact row from -cache-stats output.
func remoteTier(t *testing.T, errOut string) (hits uint64, degraded bool) {
	t.Helper()
	re := regexp.MustCompile(`cache-stats remote-artifact\s+hits=(\d+) misses=\d+ evictions=\d+ resident_bytes=\d+ verify_fails=\d+ op_errors=\d+ degraded=(true|false)`)
	m := re.FindStringSubmatch(errOut)
	if m == nil {
		t.Fatalf("no remote-artifact cache-stats line in:\n%s", errOut)
	}
	h, _, _ := cacheTier(t, errOut, "remote-artifact")
	return h, m[2] == "true"
}

// TestShardAndRemoteFlagValidation: every contradictory flag combination
// around sharding and the remote tier fails up front, naming both sides.
func TestShardAndRemoteFlagValidation(t *testing.T) {
	appCases := []struct {
		name string
		args []string
		want []string
	}{
		{"remote+no-artifact", []string{"-artifact-remote", "http://x", "-no-artifact", "-artifact-dir", "d"},
			[]string{"-artifact-remote conflicts", "-no-artifact"}},
		{"remote-without-dir", []string{"-artifact-remote", "http://x"},
			[]string{"-artifact-remote requires", "-artifact-dir"}},
		{"shard-out-of-range", []string{"-shard", "2/2"},
			[]string{"-shard:", `shard must have the form "i/n"`}},
		{"shard-not-numbers", []string{"-shard", "a/b"},
			[]string{"-shard:", `shard must have the form "i/n"`}},
		{"shard-no-slash", []string{"-shard", "2"},
			[]string{"-shard:", `shard must have the form "i/n"`}},
		{"shard-starved", []string{"-shard", "2/3", "-only", "fig2,fig5", "-branches", "15000"},
			[]string{"selects no experiments"}},
	}
	for _, tc := range appCases {
		t.Run("app/"+tc.name, func(t *testing.T) {
			var out, errW strings.Builder
			err := appMain(tc.args, &out, &errW)
			if err == nil {
				t.Fatalf("%v accepted", tc.args)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
			if out.Len() != 0 {
				t.Error("output produced despite invalid flags")
			}
		})
	}

	fanoutCases := []struct {
		name string
		args []string
		want []string
	}{
		{"zero-shards", []string{"-shards", "0"}, []string{"-shards must be at least 1"}},
		{"too-many-shards", []string{"-shards", "3", "-only", "fig2,fig5"},
			[]string{"3 shards leave shard", "only 2 experiments selected"}},
		{"remote-without-dir", []string{"-shards", "2", "-artifact-remote", "http://x"},
			[]string{"-artifact-remote requires", "-artifact-dir"}},
	}
	for _, tc := range fanoutCases {
		t.Run("fanout/"+tc.name, func(t *testing.T) {
			var out, errW strings.Builder
			err := fanoutMain(tc.args, &out, &errW)
			if err == nil {
				t.Fatalf("%v accepted", tc.args)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}

	mergeCases := []struct {
		name string
		args []string
		want []string
	}{
		{"no-partials", nil, []string{"needs partial report files"}},
		{"from-store-without-shards", []string{"-from-store", "-artifact-dir", "d"},
			[]string{"-from-store requires -shards"}},
		{"from-store-without-dir", []string{"-from-store", "-shards", "2"},
			[]string{"-from-store requires -artifact-dir"}},
		{"request-flags-in-file-mode", []string{"-branches", "100", "p.json"},
			[]string{"-branches applies only with -from-store"}},
	}
	for _, tc := range mergeCases {
		t.Run("merge/"+tc.name, func(t *testing.T) {
			var out, errW strings.Builder
			err := mergeMain(tc.args, &out, &errW)
			if err == nil {
				t.Fatalf("%v accepted", tc.args)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}

// TestShardMergeByteIdentity is the fan-out acceptance gate, end to end
// through the CLI paths: two -shard workers plus a merge reproduce the
// single-process report byte for byte.
func TestShardMergeByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment subset three times")
	}
	base := reportConfig{
		branches:  20000,
		filter:    map[string]bool{"fig2": true, "fig5": true, "table1": true},
		noTimings: true,
		parallel:  2,
	}
	run := func(cfg reportConfig) string {
		t.Helper()
		resetEngineCaches()
		var out, errW strings.Builder
		if err := writeReport(&out, &errW, cfg); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	want := run(base)

	dir := t.TempDir()
	var paths []string
	for i := 0; i < 2; i++ {
		cfg := base
		cfg.shard = fmt.Sprintf("%d/2", i)
		partial := run(cfg)
		if !strings.Contains(partial, `"shard": "`+cfg.shard+`"`) {
			t.Fatalf("shard %s emitted no partial JSON:\n%.200s", cfg.shard, partial)
		}
		p := filepath.Join(dir, fmt.Sprintf("partial%d.json", i))
		if err := os.WriteFile(p, []byte(partial), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	for name, order := range map[string][]string{
		"in-order": {paths[0], paths[1]},
		"reversed": {paths[1], paths[0]},
	} {
		var out, errW strings.Builder
		if err := mergeMain(order, &out, &errW); err != nil {
			t.Fatalf("merge %s: %v", name, err)
		}
		if out.String() != want {
			t.Errorf("merged report (%s) differs from single-process report", name)
		}
	}

	// And through -o, as the CI smoke job drives it.
	merged := filepath.Join(dir, "merged.md")
	var out, errW strings.Builder
	if err := mergeMain([]string{"-o", merged, paths[0], paths[1]}, &out, &errW); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Error("merged -o report differs from single-process report")
	}
}

// TestFanoutCoordinatorByteIdentity: the in-process coordinator — shards,
// wire round trip, merge — reproduces the single-process bytes, and a
// store-backed fan-out leaves partials a store-mode merge can consume.
func TestFanoutCoordinatorByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment subset three times")
	}
	resetEngineCaches()
	var ref, errW strings.Builder
	if err := writeReport(&ref, &errW, reportConfig{
		branches:  20000,
		filter:    map[string]bool{"fig2": true, "fig5": true, "table1": true},
		noTimings: true,
		parallel:  2,
	}); err != nil {
		t.Fatal(err)
	}

	resetEngineCaches()
	dir := t.TempDir()
	var out, fanErr strings.Builder
	args := []string{
		"-shards", "2", "-branches", "20000", "-only", "fig2,fig5,table1",
		"-no-timings", "-parallel", "2", "-artifact-dir", dir,
	}
	if err := fanoutMain(args, &out, &fanErr); err != nil {
		t.Fatal(err)
	}
	if out.String() != ref.String() {
		t.Error("fanout-merged report differs from single-process report")
	}

	// The coordinator published every shard's partial: a store-mode merge
	// needs nothing but the store.
	var merged, mergeErr strings.Builder
	margs := []string{
		"-from-store", "-shards", "2", "-branches", "20000",
		"-only", "fig2,fig5,table1", "-no-timings", "-artifact-dir", dir,
	}
	if err := mergeMain(margs, &merged, &mergeErr); err != nil {
		t.Fatal(err)
	}
	if merged.String() != ref.String() {
		t.Error("store-mode merge differs from single-process report")
	}

	// A store-mode merge for a shard count nobody ran fails loudly.
	var out2, err2 strings.Builder
	margs[2] = "3"
	if err := mergeMain(margs, &out2, &err2); err == nil || !strings.Contains(err.Error(), "no partial for shard") {
		t.Fatalf("merge with missing partials = %v", err)
	}
}

// TestRemoteWarmShareByteIdentity: worker A runs cold against an empty
// remote store; worker B, with an empty local tier, warm-starts purely from
// A's published artifacts — byte-identical report, remote hits visible in
// the ninth cache-stats row.
func TestRemoteWarmShareByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment subset twice")
	}
	base, srv := newRemoteStoreServer(t)
	cfg := reportConfig{
		branches:       20000,
		filter:         map[string]bool{"fig2": true, "fig5": true, "gating": true},
		noTimings:      true,
		parallel:       2,
		cacheStats:     true,
		artifactRemote: base,
	}
	run := func(cfg reportConfig) (string, string) {
		t.Helper()
		resetEngineCaches()
		var out, errW strings.Builder
		if err := writeReport(&out, &errW, cfg); err != nil {
			t.Fatal(err)
		}
		return out.String(), errW.String()
	}

	cold := cfg
	cold.artifactDir = t.TempDir()
	coldReport, coldErr := run(cold)
	if hits, degraded := remoteTier(t, coldErr); hits != 0 || degraded {
		t.Fatalf("cold run remote tier: hits=%d degraded=%t, want 0/false", hits, degraded)
	}
	if st := srv.Stats(); st.Puts == 0 {
		t.Fatal("cold run published nothing to the remote store")
	}

	warm := cfg
	warm.artifactDir = t.TempDir() // empty local tier: only the remote is warm
	warmReport, warmErr := run(warm)
	if warmReport != coldReport {
		t.Error("remote-warmed report differs from cold report")
	}
	hits, degraded := remoteTier(t, warmErr)
	if hits == 0 || degraded {
		t.Fatalf("warm run remote tier: hits=%d degraded=%t, want hits>0", hits, degraded)
	}
	if h, _, vf := diskTier(t, warmErr); h != 0 || vf != 0 {
		t.Errorf("warm run local disk: hits=%d verify_fails=%d, want 0 (fresh dir, remote-fed)", h, vf)
	}
}

// TestRemoteOutageDegradesToBaseline: the remote store going dark — from
// the first byte or mid-run — costs warm starts, never bytes: the breaker
// trips the tier into local-only mode and the report equals the no-remote
// baseline.
func TestRemoteOutageDegradesToBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment subset three times")
	}
	cfg := reportConfig{
		branches:   20000,
		filter:     map[string]bool{"fig2": true, "fig5": true},
		noTimings:  true,
		parallel:   2,
		cacheStats: true,
	}
	run := func(cfg reportConfig) (string, string) {
		t.Helper()
		resetEngineCaches()
		var out, errW strings.Builder
		if err := writeReport(&out, &errW, cfg); err != nil {
			t.Fatal(err)
		}
		return out.String(), errW.String()
	}

	baselineCfg := cfg
	baselineCfg.artifactDir = t.TempDir()
	baseline, _ := run(baselineCfg)

	for name, from := range map[string]uint64{"from-first-byte": 1, "mid-run": 4} {
		t.Run(name, func(t *testing.T) {
			tr := faultnet.New(&http.Client{})
			base, _ := newRemoteStoreServer(t)
			tr.Inject(faultnet.Fault{Op: faultnet.OpAny, From: from, Mode: faultnet.FailConn})
			outage := cfg
			outage.artifactDir = t.TempDir()
			outage.artifactRemote = base
			outage.remoteDoer = tr
			report, errOut := run(outage)
			if report != baseline {
				t.Error("report under remote outage differs from no-remote baseline")
			}
			if _, degraded := remoteTier(t, errOut); !degraded {
				t.Error("remote tier not degraded after the outage")
			}
			if _, _, vf := diskTier(t, errOut); vf != 0 {
				t.Errorf("local disk verify_fails=%d during remote outage, want 0", vf)
			}
		})
	}
}
