package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"branchconf/internal/serve"
)

// TestLoadgenLeg runs one small traffic leg against a real in-process
// server and checks the summary: every request completes, byte-identity
// holds per shape, repeats are announced as report-cache hits, and the
// embedded stats snapshot carries the daemon section.
func TestLoadgenLeg(t *testing.T) {
	srv := serve.New(serve.Config{Parallel: 2, MaxInflight: 4, MaxQueue: 16})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	var out, errW strings.Builder
	err := run([]string{
		"-addr", ts.URL,
		"-clients", "3",
		"-requests", "9",
		"-branches", "12000",
		"-mix", "fig2;table1",
		"-stats",
	}, &out, &errW)
	if err != nil {
		t.Fatalf("loadgen: %v\nstderr:\n%s", err, errW.String())
	}

	var sum summary
	if err := json.Unmarshal([]byte(out.String()), &sum); err != nil {
		t.Fatalf("summary did not decode: %v\n%s", err, out.String())
	}
	if sum.Requests != 9 || sum.Errors != 0 {
		t.Fatalf("requests/errors = %d/%d, want 9/0", sum.Requests, sum.Errors)
	}
	if sum.RPS <= 0 || sum.P50Millis <= 0 || sum.P99Millis < sum.P50Millis {
		t.Fatalf("latency summary implausible: %+v", sum)
	}
	// Two shapes build once each; every other response is a cache (or
	// coalesced single-flight) hit.
	if sum.CacheHitResponses != 7 {
		t.Fatalf("report_cache_hit_responses = %d, want 7", sum.CacheHitResponses)
	}
	if len(sum.Shapes) != 2 {
		t.Fatalf("shapes = %d, want 2", len(sum.Shapes))
	}
	for _, s := range sum.Shapes {
		if s.Responses == 0 || len(s.SHA256) != 64 {
			t.Fatalf("shape %q summary implausible: %+v", s.Only, s)
		}
	}
	if sum.Shapes[0].SHA256 == sum.Shapes[1].SHA256 {
		t.Fatal("distinct shapes produced identical digests")
	}
	if sum.Stats == nil || sum.Stats.Server == nil {
		t.Fatal("summary missing the daemon stats snapshot")
	}
	if sum.Stats.Server.RequestsOK != 9 {
		t.Fatalf("daemon saw %d ok requests, want 9", sum.Stats.Server.RequestsOK)
	}
}

// TestLoadgenRejectsDeadDaemon: a missing daemon fails fast with a clear
// probe error, not a pile of per-request timeouts.
func TestLoadgenRejectsDeadDaemon(t *testing.T) {
	var out, errW strings.Builder
	err := run([]string{"-addr", "http://127.0.0.1:1", "-requests", "1"}, &out, &errW)
	if err == nil || !strings.Contains(err.Error(), "daemon not reachable") {
		t.Fatalf("err = %v, want a daemon-not-reachable probe failure", err)
	}
}

// TestBuildShapes pins the -mix grammar.
func TestBuildShapes(t *testing.T) {
	shapes := buildShapes("fig2,fig5; table1", 500, true)
	if len(shapes) != 2 {
		t.Fatalf("shapes = %d, want 2", len(shapes))
	}
	if got := shapeName(shapes[0]); got != "fig2,fig5" {
		t.Fatalf("shape 0 = %q", got)
	}
	if got := shapeName(shapes[1]); got != "table1" {
		t.Fatalf("shape 1 = %q", got)
	}
	if !shapes[0].NoTimings || shapes[0].Branches != 500 {
		t.Fatalf("shape fields not threaded: %+v", shapes[0])
	}
	if all := buildShapes("", 0, false); len(all) != 1 || shapeName(all[0]) != "(all)" {
		t.Fatalf("empty mix = %+v", all)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(sorted, 50); p != 5 {
		t.Fatalf("p50 = %v", p)
	}
	if p := percentile(sorted, 99); p != 10 {
		t.Fatalf("p99 = %v", p)
	}
	if p := percentile(nil, 50); p != 0 {
		t.Fatalf("p50 of empty = %v", p)
	}
}
