// Command loadgen drives a resident paperrepro daemon with mixed traffic
// and reports sustained throughput and latency percentiles as JSON — the
// measurement half of BENCH_service.json.
//
// One invocation is one traffic leg: -clients concurrent workers issue
// report requests round-robin over the -mix request shapes until -requests
// have completed (or -duration elapses, whichever is configured). Run it
// twice against the same daemon for the cold-then-warm comparison. Every
// response for a given shape must be byte-identical to the first response
// for that shape — the determinism contract — and any divergence is a
// hard error.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8091 -clients 8 -requests 100 \
//	        -branches 50000 -mix "fig2,fig5;fig9" [-timings] [-stats]
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"branchconf/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// summary is the JSON loadgen emits on stdout.
type summary struct {
	Requests     int     `json:"requests"`
	Errors       int     `json:"errors"`
	DurationSecs float64 `json:"duration_s"`
	RPS          float64 `json:"rps"`
	P50Millis    float64 `json:"p50_ms"`
	P90Millis    float64 `json:"p90_ms"`
	P99Millis    float64 `json:"p99_ms"`
	MinMillis    float64 `json:"min_ms"`
	MaxMillis    float64 `json:"max_ms"`
	// CacheHitResponses counts responses the daemon marked as served from
	// its rendered-report cache.
	CacheHitResponses int `json:"report_cache_hit_responses"`
	// Shapes lists each request shape with the hex digest of its response
	// bytes (identical across every response, or loadgen fails).
	Shapes []shapeDigest `json:"shapes"`
	// Stats is the daemon's post-leg cache-stats snapshot (with -stats).
	Stats *serve.CacheStatsJSON `json:"stats,omitempty"`
}

type shapeDigest struct {
	Only      string `json:"only"`
	Responses int    `json:"responses"`
	SHA256    string `json:"sha256"`
}

func run(args []string, stdout, errW io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(errW)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8091", "daemon base URL")
		clients  = fs.Int("clients", 4, "concurrent client workers")
		requests = fs.Int("requests", 0, "total requests to issue (0 = run for -duration)")
		duration = fs.Duration("duration", 10*time.Second, "traffic duration when -requests is 0")
		branches = fs.Uint64("branches", 0, "per-benchmark branch budget for every request (0 = benchmark default)")
		mix      = fs.String("mix", "", "semicolon-separated request shapes, each a comma-separated -only id list (empty = one full-report shape); workers cycle the mix round-robin")
		timings  = fs.Bool("timings", false, "request wall-time lines (disables the daemon's report cache and the byte-identity check)")
		stats    = fs.Bool("stats", false, "fetch the daemon's cache-stats snapshot after the leg and embed it in the summary")
		timeout  = fs.Duration("timeout", 10*time.Minute, "per-request timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *clients < 1 {
		return fmt.Errorf("-clients must be at least 1, got %d", *clients)
	}
	if *requests < 0 {
		return fmt.Errorf("-requests must be non-negative, got %d", *requests)
	}

	shapes := buildShapes(*mix, *branches, !*timings)
	client := &serve.Client{Base: *addr}

	// Fail fast (and without skewing latencies) if the daemon is away.
	probeCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err := client.Health(probeCtx)
	cancel()
	if err != nil {
		return fmt.Errorf("daemon not reachable: %w", err)
	}

	type sample struct {
		shape  int
		millis float64
		cached bool
		sum    [sha256.Size]byte
		err    error
	}
	var (
		mu      sync.Mutex
		samples []sample
	)
	deadline := time.Now().Add(*duration)
	next := make(chan int) // request tickets carrying the shape index
	go func() {
		defer close(next)
		for i := 0; ; i++ {
			if *requests > 0 && i >= *requests {
				return
			}
			if *requests == 0 && time.Now().After(deadline) {
				return
			}
			next <- i % len(shapes)
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for shape := range next {
				ctx, cancel := context.WithTimeout(context.Background(), *timeout)
				t0 := time.Now()
				body, cached, err := client.Report(ctx, shapes[shape])
				elapsed := time.Since(t0)
				cancel()
				s := sample{shape: shape, millis: float64(elapsed.Nanoseconds()) / 1e6, cached: cached, err: err}
				if err == nil {
					s.sum = sha256.Sum256(body)
				}
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	out := summary{DurationSecs: wall.Seconds()}
	var latencies []float64
	digests := make(map[int][sha256.Size]byte)
	counts := make(map[int]int)
	for _, s := range samples {
		out.Requests++
		if s.err != nil {
			out.Errors++
			fmt.Fprintf(errW, "loadgen: request error: %v\n", s.err)
			continue
		}
		latencies = append(latencies, s.millis)
		if s.cached {
			out.CacheHitResponses++
		}
		counts[s.shape]++
		if prev, seen := digests[s.shape]; !seen {
			digests[s.shape] = s.sum
		} else if !*timings && prev != s.sum {
			return fmt.Errorf("shape %q: response bytes diverged across requests — determinism broken", shapeName(shapes[s.shape]))
		}
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		out.MinMillis = latencies[0]
		out.MaxMillis = latencies[len(latencies)-1]
		out.P50Millis = percentile(latencies, 50)
		out.P90Millis = percentile(latencies, 90)
		out.P99Millis = percentile(latencies, 99)
		out.RPS = float64(len(latencies)) / wall.Seconds()
	}
	for i, shape := range shapes {
		if counts[i] == 0 {
			continue
		}
		out.Shapes = append(out.Shapes, shapeDigest{
			Only:      shapeName(shape),
			Responses: counts[i],
			SHA256:    fmt.Sprintf("%x", digests[i]),
		})
	}
	if *stats {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		snap, err := client.Stats(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("fetching stats: %w", err)
		}
		out.Stats = &snap
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// buildShapes parses the -mix spec into report requests.
func buildShapes(mix string, branches uint64, noTimings bool) []serve.ReportRequest {
	var shapes []serve.ReportRequest
	for _, part := range strings.Split(mix, ";") {
		part = strings.TrimSpace(part)
		req := serve.ReportRequest{Branches: branches, NoTimings: noTimings}
		if part != "" {
			for _, id := range strings.Split(part, ",") {
				req.Only = append(req.Only, strings.TrimSpace(id))
			}
		}
		shapes = append(shapes, req)
	}
	return shapes
}

func shapeName(r serve.ReportRequest) string {
	if len(r.Only) == 0 {
		return "(all)"
	}
	return strings.Join(r.Only, ",")
}

// percentile returns the p-th percentile of sorted latencies using
// nearest-rank.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
