// Command confsim runs one confidence experiment from the registry and
// prints the regenerated artefact (figure reference points or table rows).
//
// Usage:
//
//	confsim -list
//	confsim -exp fig5 [-branches 1000000] [-plot] [-json out.json] [-dat out/]
//
// With -dat, each series is also written as a gnuplot-ready .dat file of
// (cumulative %branches, cumulative %mispredictions) points; with -json,
// the whole artefact is written in machine-readable form.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"branchconf/internal/analysis"
	"branchconf/internal/exp"
)

func main() {
	if err := appMain(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "confsim:", err)
		os.Exit(1)
	}
}

// appMain is the testable entry point: it parses args and writes all
// output to w.
func appMain(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("confsim", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		list     = fs.Bool("list", false, "list available experiments and exit")
		expID    = fs.String("exp", "", "experiment to run (see -list)")
		branches = fs.Uint64("branches", 0, "dynamic branches per benchmark (0 = benchmark default)")
		datDir   = fs.String("dat", "", "directory to write per-series .dat curve files")
		jsonPath = fs.String("json", "", "file to write the artefact as JSON ('-' for stdout)")
		plot     = fs.Bool("plot", false, "render the figure as an ASCII plot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Fprintf(w, "%-20s %s\n%-20s paper: %s\n", e.ID, e.Title, "", e.Paper)
		}
		return nil
	}
	if *expID == "" {
		return fmt.Errorf("no experiment selected; use -exp <id> or -list")
	}
	e, err := exp.ByID(*expID)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "running %s: %s\n(paper: %s)\n\n", e.ID, e.Title, e.Paper)
	out, err := e.RunOnce(exp.Config{Branches: *branches})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, out.Text)
	if *plot && len(out.Series) > 0 {
		fmt.Fprintln(w, analysis.Plot(out.Series, analysis.DefaultPlot()))
	}
	if len(out.Scalars) > 0 {
		fmt.Fprintln(w, "scalars:")
		keys := make([]string, 0, len(out.Scalars))
		for k := range out.Scalars {
			keys = append(keys, k)
		}
		sort.Strings(keys) // stable order for scripts diffing the output
		for _, k := range keys {
			fmt.Fprintf(w, "  %-28s %10.4f\n", k, out.Scalars[k])
		}
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, out, w); err != nil {
			return err
		}
	}
	if *datDir != "" {
		if err := writeDats(*datDir, out, w); err != nil {
			return err
		}
	}
	return nil
}

// writeJSON writes the artefact to path ('-' meaning the main writer).
func writeJSON(path string, out *exp.Output, w io.Writer) error {
	if path == "-" {
		return out.WriteJSON(w, 0)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = out.WriteJSON(f, 0.1)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Fprintln(w, "wrote", path)
	return nil
}

// writeDats writes each series as <dir>/<exp>-<label>.dat.
func writeDats(dir string, out *exp.Output, w io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range out.Series {
		name := fmt.Sprintf("%s-%s.dat", out.ID, sanitize(s.Label))
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		// Thin like the paper's plots to keep files readable.
		err = s.Curve.Thin(0.5).WriteDat(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		fmt.Fprintln(w, "wrote", path)
	}
	return nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
