package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var sb strings.Builder
	if err := appMain([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig2", "fig5", "table1", "ctxswitch"} {
		if !strings.Contains(sb.String(), id) {
			t.Fatalf("list missing %s", id)
		}
	}
}

func TestNoExperimentSelected(t *testing.T) {
	var sb strings.Builder
	if err := appMain(nil, &sb); err == nil {
		t.Fatal("no args accepted")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := appMain([]string{"-exp", "fig99"}, &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunFig2WithOutputs(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "fig2.json")
	var sb strings.Builder
	err := appMain([]string{
		"-exp", "fig2", "-branches", "30000",
		"-plot", "-json", jsonPath, "-dat", dir,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "fig2") || !strings.Contains(out, "scalars:") {
		t.Fatalf("missing sections:\n%s", out)
	}
	if !strings.Contains(out, "% of dynamic branches") {
		t.Fatal("plot missing")
	}
	if _, err := os.Stat(jsonPath); err != nil {
		t.Fatalf("json file: %v", err)
	}
	dat := filepath.Join(dir, "fig2-static.dat")
	data, err := os.ReadFile(dat)
	if err != nil {
		t.Fatalf("dat file: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("empty dat file")
	}
	first := strings.SplitN(string(data), "\n", 2)[0]
	if len(strings.Fields(first)) != 2 {
		t.Fatalf("dat line %q not two columns", first)
	}
}

func TestJSONToStdout(t *testing.T) {
	var sb strings.Builder
	if err := appMain([]string{"-exp", "table1", "-branches", "30000", "-json", "-"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"rows\"") {
		t.Fatal("stdout JSON missing rows")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("BHRxorPC (ideal)"); got != "BHRxorPC__ideal_" {
		t.Fatalf("sanitize = %q", got)
	}
}
