// Prediction-reverser example (paper §1, application 4): profile which
// confidence buckets mispredict more than half the time, then invert those
// predictions. The paper's own Table 1 hints the set is usually empty for
// a strong predictor — this example shows it appearing on the small
// predictor and on a loosened threshold.
//
// Run with:
//
//	go run ./examples/reverser
package main

import (
	"fmt"
	"log"

	"branchconf/internal/apps"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

func study(bench string, newPred func() predictor.Predictor, newMech func() core.Mechanism, threshold float64) {
	spec, err := workload.ByName(bench)
	if err != nil {
		log.Fatal(err)
	}
	mk := func() trace.Source {
		src, err := spec.FiniteSource(500_000)
		if err != nil {
			log.Fatal(err)
		}
		return src
	}
	res, setSize, err := apps.ReverserStudy(mk(), mk(), newPred, newMech, threshold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s thr %.2f  set %2d  base %.3f%%  reversed %.3f%%  delta %+.4f%%  (%d reversals, %d fixed)\n",
		bench, threshold, setSize,
		100*float64(res.BaseMisses)/float64(res.Branches),
		100*float64(res.ReversedMisses)/float64(res.Branches),
		100*res.Delta(), res.Reversals, res.GoodReversals)
}

func main() {
	fmt.Println("big predictor (gshare-64K), strict >55% threshold:")
	study("real_gcc",
		func() predictor.Predictor { return predictor.Gshare64K() },
		func() core.Mechanism { return core.PaperResetting() }, 0.55)

	fmt.Println("\nsmall predictor (gshare-4K), small confidence table:")
	for _, bench := range []string{"real_gcc", "sdet", "groff"} {
		study(bench,
			func() predictor.Predictor { return predictor.Gshare4K() },
			func() core.Mechanism { return core.SmallResetting(10) }, 0.55)
	}
	// The historically grounded configuration (Livermore S-1, PowerPC 601,
	// discussed in the paper's related work): a static predictor plus a
	// dynamic "reverse bit". With BTFN as the base predictor, branches
	// whose static guess is wrong sit in >50% buckets and get reversed —
	// the reverser effectively upgrades static to dynamic prediction.
	fmt.Println("\nstatic BTFN predictor + dynamic reverse bits (S-1 style):")
	for _, bench := range []string{"real_gcc", "groff", "jpeg_play"} {
		study(bench,
			func() predictor.Predictor { return predictor.BTFN{} },
			func() core.Mechanism {
				return core.NewCounterTable(core.CounterConfig{
					Kind: core.Resetting, Scheme: core.IndexPC, TableBits: 14, HistoryBits: 14})
			}, 0.5)
	}
	fmt.Println("\nA negative delta means the reverser removed mispredictions; an empty")
	fmt.Println("set reproduces the paper's caveat that no bucket exceeds 50% for the")
	fmt.Println("well-tuned large predictor, while the static-base configuration shows")
	fmt.Println("where reversal pays.")
}
