// Quickstart: pair a branch predictor with the paper's recommended
// confidence estimator (resetting counters, PC xor BHR) and watch it
// isolate mispredictions into a small low-confidence set.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/workload"
)

func main() {
	// A synthetic benchmark standing in for the paper's IBS traces.
	spec, err := workload.ByName("groff")
	if err != nil {
		log.Fatal(err)
	}
	src, err := spec.FiniteSource(500_000)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's main predictor (gshare, 2^16 two-bit counters) and its
	// recommended confidence estimator: a 2^16-entry table of resetting
	// counters; counter < 16 means "low confidence".
	pred := predictor.Gshare64K()
	conf := core.PaperEstimator(16)

	var branches, misses, low, lowMisses uint64
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		confident := conf.Confident(r) // read the signal before training
		incorrect := pred.Predict(r) != r.Taken
		pred.Update(r)
		conf.Update(r, incorrect)

		branches++
		if !confident {
			low++
		}
		if incorrect {
			misses++
			if !confident {
				lowMisses++
			}
		}
	}

	fmt.Printf("benchmark       %s\n", spec.Name)
	fmt.Printf("branches        %d\n", branches)
	fmt.Printf("mispredictions  %d (%.2f%%)\n", misses, 100*float64(misses)/float64(branches))
	fmt.Printf("low-confidence  %.1f%% of branches\n", 100*float64(low)/float64(branches))
	fmt.Printf("coverage        %.1f%% of mispredictions land in the low set\n",
		100*float64(lowMisses)/float64(misses))
	fmt.Printf("enrichment      low set misprediction rate %.1f%% vs %.2f%% overall\n",
		100*float64(lowMisses)/float64(low), 100*float64(misses)/float64(branches))
}
