// Multi-level confidence example: the generalisation §1 of the paper names
// but leaves unexplored — instead of one high/low bit, grade predictions
// into confidence classes and let the machine react proportionally (fork
// at level 0, throttle at level 1, speculate freely above).
//
// Run with:
//
//	go run ./examples/multilevel
package main

import (
	"fmt"
	"io"
	"log"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/workload"
)

func main() {
	spec, err := workload.ByName("sdet")
	if err != nil {
		log.Fatal(err)
	}
	src, err := spec.FiniteSource(500_000)
	if err != nil {
		log.Fatal(err)
	}
	pred := predictor.Gshare64K()
	// Four classes over the resetting-counter table: counts {0}, 1-7,
	// 8-15, and the saturated 16.
	est := core.PaperMultiEstimator()

	type tally struct{ branches, misses uint64 }
	levels := make([]tally, est.Levels())
	var total, totalMiss uint64
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		level := est.Level(r)
		incorrect := pred.Predict(r) != r.Taken
		pred.Update(r)
		est.Update(r, incorrect)
		levels[level].branches++
		total++
		if incorrect {
			levels[level].misses++
			totalMiss++
		}
	}

	desc := []string{
		"0: just mispredicted",
		"1: counts 1-7",
		"2: counts 8-15",
		"3: saturated (zero bucket)",
	}
	policy := []string{
		"fork both paths",
		"throttle fetch",
		"speculate",
		"speculate freely",
	}
	fmt.Printf("benchmark %s: %d branches, %.2f%% mispredicted\n\n", spec.Name,
		total, 100*float64(totalMiss)/float64(total))
	fmt.Println("level                        " + "share-branch  share-miss  miss-rate   suggested policy")
	for i, l := range levels {
		fmt.Printf("%-28s %11.1f%% %9.1f%% %8.2f%%   %s\n", desc[i],
			100*float64(l.branches)/float64(total),
			100*float64(l.misses)/float64(totalMiss),
			100*float64(l.misses)/float64(l.branches),
			policy[i])
	}
	fmt.Println("\nThe graded signal separates a 7x-enriched fork class from a huge")
	fmt.Println("nearly-miss-free class, with two intermediate throttling grades.")
}
