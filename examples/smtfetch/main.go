// SMT fetch-gating example (paper §1, application 2): four hardware
// threads share a fetch unit; the confidence-gated policy deprioritises
// threads whose next prediction is low-confidence, reducing squashed
// fetches.
//
// Run with:
//
//	go run ./examples/smtfetch
package main

import (
	"fmt"
	"log"

	"branchconf/internal/apps"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/workload"
)

const perThread = 400_000

func buildThreads() []*apps.SMTThread {
	names := []string{"groff", "real_gcc", "jpeg_play", "sdet"}
	threads := make([]*apps.SMTThread, 0, len(names))
	for _, name := range names {
		spec, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		src, err := spec.FiniteSource(perThread)
		if err != nil {
			log.Fatal(err)
		}
		threads = append(threads, &apps.SMTThread{
			Name: name,
			Src:  src,
			Pred: predictor.Gshare4K(),
			Est:  core.PaperEstimator(16),
		})
	}
	return threads
}

func main() {
	for _, gated := range []bool{false, true} {
		cfg := apps.SMTConfig{ResolveSlots: 6, Gated: gated}
		res, err := apps.RunSMT(buildThreads(), cfg, 4*perThread)
		if err != nil {
			log.Fatal(err)
		}
		policy := "round-robin       "
		if gated {
			policy = "confidence-gated  "
		}
		fmt.Printf("%s useful %9d  wasted %8d  efficiency %.2f%%  (skips %d)\n",
			policy, res.Useful, res.Wasted, 100*res.Efficiency(), res.GatedSkips)
	}
	fmt.Println("\nGating steers fetch slots away from threads about to mispredict,")
	fmt.Println("recovering part of the bandwidth the baseline burns on wrong paths.")
}
