// Hybrid-selector example (paper §1, application 3): select between a
// bimodal and a gshare predictor by comparing explicit per-component
// confidence estimates, against McFarling's 2-bit tournament chooser.
//
// Run with:
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"log"

	"branchconf/internal/apps"
	"branchconf/internal/predictor"
	"branchconf/internal/workload"
)

func main() {
	fmt.Println("misprediction % per benchmark (2^12-entry components)")
	fmt.Printf("%-12s %8s %8s %10s %12s\n", "benchmark", "bimodal", "gshare", "tournament", "conf-hybrid")
	var sumConf, sumTour, n float64
	for _, spec := range workload.Suite() {
		src, err := spec.FiniteSource(400_000)
		if err != nil {
			log.Fatal(err)
		}
		res, err := apps.CompareHybrids(src,
			func() predictor.Predictor { return predictor.NewBimodal(12) },
			func() predictor.Predictor { return predictor.NewGshare(12, 12) },
			12)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %7.2f%% %7.2f%% %9.2f%% %11.2f%%\n", spec.Name,
			100*res.Rate(res.SoloA), 100*res.Rate(res.SoloB),
			100*res.Rate(res.Tournament), 100*res.Rate(res.ConfHybrid))
		sumConf += res.Rate(res.ConfHybrid)
		sumTour += res.Rate(res.Tournament)
		n++
	}
	fmt.Printf("\ncomposite: tournament %.2f%%, confidence-selected %.2f%%\n",
		100*sumTour/n, 100*sumConf/n)
	fmt.Println("The confidence-based selector is competitive with (here slightly")
	fmt.Println("better than) the ad hoc chooser — the paper's §6 conjecture.")
}
