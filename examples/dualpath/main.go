// Dual-path execution example (paper §1, application 1): fork a second
// fetch path only for low-confidence predictions and measure how many
// misprediction penalties the forks absorb, sweeping the confidence
// threshold to expose the resource/coverage trade-off.
//
// Run with:
//
//	go run ./examples/dualpath
package main

import (
	"fmt"
	"log"

	"branchconf/internal/apps"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/workload"
)

func main() {
	spec, err := workload.ByName("real_gcc") // the hardest benchmark
	if err != nil {
		log.Fatal(err)
	}
	cfg := apps.DefaultDualPath()
	fmt.Printf("benchmark %s, penalty %d cycles, fork cost %d cycle(s), %d thread(s)\n\n",
		spec.Name, cfg.MispredictPenalty, cfg.ForkPenalty, cfg.MaxThreads)
	fmt.Println("threshold | fork (frac of branches) | coverage (frac of misses) | penalty savings")
	for _, thr := range []uint64{1, 4, 8, 16} {
		src, err := spec.FiniteSource(500_000)
		if err != nil {
			log.Fatal(err)
		}
		res, err := apps.RunDualPath(src, predictor.Gshare64K(), core.PaperEstimator(thr), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9d | %22.1f%% | %24.1f%% | %14.1f%%\n",
			thr, 100*res.ForkRate(), 100*res.Coverage(), 100*res.PenaltySavings())
	}
	fmt.Println()
	fmt.Println("Low thresholds fork rarely and cover only the hottest mispredictions;")
	fmt.Println("threshold 16 (the paper's 20 percent-of-branches point) covers most of them.")
}
