// Pipeline-gating example: the follow-on application built directly on
// this paper's confidence estimators (Manne, Klauser & Grunwald, ISCA
// '98). A cycle-driven front end stalls fetch while too many
// low-confidence branches are in flight, trading a little IPC for a large
// cut in wrong-path (wasted) fetch work. The oracle row shows the bound a
// perfect estimator would reach.
//
// Run with:
//
//	go run ./examples/gating
package main

import (
	"fmt"
	"log"

	"branchconf/internal/core"
	"branchconf/internal/pipeline"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

// oracle is a perfect confidence signal: low exactly on mispredictions.
type oracle struct{ pred predictor.Predictor }

func (o oracle) Confident(r trace.Record) bool { return o.pred.Predict(r) == r.Taken }
func (o oracle) Update(trace.Record, bool)     {}

func main() {
	spec, err := workload.ByName("real_gcc")
	if err != nil {
		log.Fatal(err)
	}
	mach := pipeline.Default96()
	fmt.Printf("benchmark %s, %d-wide fetch, depth %d\n\n", spec.Name, mach.FetchWidth, mach.Depth)
	fmt.Println("policy             IPC    wasted fetch    gate stalls")
	type row struct {
		label  string
		gate   int
		thr    uint64
		oracle bool
	}
	for _, p := range []row{
		{"ungated", 0, 0, false},
		{"est8 / gate 4", 4, 8, false},
		{"est4 / gate 2", 2, 4, false},
		{"est2 / gate 1", 1, 2, false},
		{"oracle / gate 1", 1, 0, true},
	} {
		src, err := spec.FiniteSource(400_000)
		if err != nil {
			log.Fatal(err)
		}
		pred := predictor.Gshare4K()
		var est pipeline.ConfidenceSignal
		switch {
		case p.oracle:
			est = oracle{pred: pred}
		case p.gate > 0:
			est = core.PaperEstimator(p.thr)
		}
		cfg := mach
		cfg.GateThreshold = p.gate
		st, err := pipeline.Run(src, pred, est, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %5.2f   %11.1f%%   %10d\n",
			p.label, st.IPC(), 100*st.WasteFrac(), st.GateStalls)
	}
	fmt.Println("\nTighter gates save more wrong-path work but stall correct-path fetch;")
	fmt.Println("the oracle shows that a perfect estimator would cut nearly all waste")
	fmt.Println("for free.")
}
