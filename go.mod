module branchconf

go 1.22
