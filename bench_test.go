package branchconf_test

// The benchmark harness: one testing.B benchmark per table and figure in
// the paper's evaluation, plus the ablations DESIGN.md calls out and
// per-component microbenchmarks. Each artefact benchmark regenerates its
// table/figure through the experiment registry and reports the headline
// metric (misprediction coverage at 20% of dynamic branches, or its
// artefact-specific analogue) via b.ReportMetric, so `go test -bench=.`
// doubles as a reproduction run.
//
// BENCH_BRANCHES environment variable overrides the per-benchmark branch
// budget (default 200000 for tractable bench times; cmd/paperrepro runs
// the full 1M).

import (
	"os"
	"strconv"
	"testing"

	"branchconf/internal/core"
	"branchconf/internal/exp"
	"branchconf/internal/predictor"
	"branchconf/internal/sim"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

// benchBranches resolves the per-benchmark dynamic branch budget.
func benchBranches() uint64 {
	if s := os.Getenv("BENCH_BRANCHES"); s != "" {
		if n, err := strconv.ParseUint(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return 200_000
}

// runExperiment regenerates the artefact once per b.N iteration and
// reports the named scalars.
func runExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := exp.Config{Branches: benchBranches()}
	var out *exp.Output
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err = e.RunOnce(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, m := range metrics {
		if v, ok := out.Scalars[m]; ok {
			b.ReportMetric(v, m)
		} else {
			b.Fatalf("experiment %s produced no scalar %q", id, m)
		}
	}
}

// --- One benchmark per paper artefact -------------------------------------

func BenchmarkFig2StaticConfidence(b *testing.B) {
	runExperiment(b, "fig2", "mispreds@20%")
}

func BenchmarkFig5OneLevel(b *testing.B) {
	runExperiment(b, "fig5", "BHRxorPC@20%", "BHR@20%", "PC@20%", "zeroBucketBranches%")
}

func BenchmarkFig6TwoLevel(b *testing.B) {
	runExperiment(b, "fig6", "BHRxorPC-CIR@20%")
}

func BenchmarkFig7Comparison(b *testing.B) {
	runExperiment(b, "fig7", "static@20%", "1lev@20%", "2lev@20%")
}

func BenchmarkFig8Reductions(b *testing.B) {
	runExperiment(b, "fig8", "ideal@20%", "1Cnt@20%", "Sat@20%", "Reset@20%")
}

func BenchmarkTable1ResettingCounters(b *testing.B) {
	runExperiment(b, "table1", "count0CumMispreds%", "count0-15CumMispreds")
}

func BenchmarkFig9PerBenchmark(b *testing.B) {
	runExperiment(b, "fig9", "jpeg_play@20%", "real_gcc@20%")
}

func BenchmarkFig10SmallTables(b *testing.B) {
	runExperiment(b, "fig10", "4096@20%", "128@20%")
}

func BenchmarkFig11InitState(b *testing.B) {
	runExperiment(b, "fig11", "one@20%", "zero@20%")
}

func BenchmarkBaselinePredictors(b *testing.B) {
	runExperiment(b, "baseline", "gshare-64K", "gshare-4K")
}

func BenchmarkThresholdOperatingPoints(b *testing.B) {
	runExperiment(b, "thresholds", "thr16-coverage%", "thr16-low%")
}

func BenchmarkApplications(b *testing.B) {
	runExperiment(b, "apps", "dualpath-coverage%", "smt-gated-eff%", "hybrid-conf%")
}

// --- Extensions beyond the paper --------------------------------------------

func BenchmarkExtMultilevel(b *testing.B) {
	runExperiment(b, "multilevel", "level0-mispreds%", "level3-branches%")
}

func BenchmarkExtContextSwitch(b *testing.B) {
	runExperiment(b, "ctxswitch", "keep@20%", "mark-oldest@20%", "flush-zeros@20%")
}

func BenchmarkExtPipelineGating(b *testing.B) {
	runExperiment(b, "gating", "throff-wasted%", "thr1-wasted%", "thr1-stalled%")
}

func BenchmarkExtPipelineIPC(b *testing.B) {
	runExperiment(b, "pipeline", "ungated-ipc", "oracle-gate1-waste%")
}

func BenchmarkExtDualPathIPC(b *testing.B) {
	runExperiment(b, "dualpath-ipc", "no-dual-path-ipc", "est4-forks-ipc")
}

func BenchmarkExtPerBenchmark(b *testing.B) {
	runExperiment(b, "perbench", "spread@20%")
}

func BenchmarkExtMultiprogrammedMix(b *testing.B) {
	runExperiment(b, "ctxswitch-mix", "solo@20%", "mix-q1000@20%")
}

func BenchmarkExtCounterStrength(b *testing.B) {
	runExperiment(b, "strength", "strength-coverage%", "resetting@20%")
}

func BenchmarkExtSeedReplication(b *testing.B) {
	runExperiment(b, "replication", "ideal@20%-spread", "miss%-spread")
}

// --- Ablations (design choices called out in DESIGN.md) --------------------

func BenchmarkAblationIndexScheme(b *testing.B) {
	runExperiment(b, "ablation-index", "BHRxorPC@20%", "GCIR@20%", "PCcatBHR@20%")
}

func BenchmarkAblationCIRWidth(b *testing.B) {
	runExperiment(b, "ablation-cirwidth", "cir4@20%", "cir16@20%", "cir32@20%")
}

func BenchmarkAblationL2Index(b *testing.B) {
	runExperiment(b, "ablation-l2index", "CIR@20%", "BHRxorCIRxorPC@20%")
}

func BenchmarkAblationCounterMax(b *testing.B) {
	runExperiment(b, "ablation-countermax", "max4@20%", "max16@20%", "max64@20%")
}

func BenchmarkAblationCostSplit(b *testing.B) {
	runExperiment(b, "ablation-costsplit", "2^16+2^0-miss%", "2^13+2^15-savings%")
}

func BenchmarkAblationWeightedOnes(b *testing.B) {
	runExperiment(b, "ablation-weighted", "plain@20%", "weighted@20%")
}

func BenchmarkExtStaticRealistic(b *testing.B) {
	runExperiment(b, "static-realistic", "optimism-gap@20%")
}

// --- Microbenchmarks: per-branch cost of the moving parts ------------------

// benchTrace materialises a fixed workload prefix once for throughput
// benchmarks.
var benchTraceCache trace.Trace

func benchTrace(b *testing.B) trace.Trace {
	b.Helper()
	if benchTraceCache != nil {
		return benchTraceCache
	}
	spec, err := workload.ByName("groff")
	if err != nil {
		b.Fatal(err)
	}
	src, err := spec.FiniteSource(1 << 17)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Collect(src, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchTraceCache = tr
	return tr
}

func benchPredictor(b *testing.B, p predictor.Predictor) {
	tr := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := tr[i%len(tr)]
		_ = p.Predict(r)
		p.Update(r)
	}
}

func BenchmarkPredictorGshare64K(b *testing.B) { benchPredictor(b, predictor.Gshare64K()) }
func BenchmarkPredictorGshare4K(b *testing.B)  { benchPredictor(b, predictor.Gshare4K()) }
func BenchmarkPredictorBimodal(b *testing.B)   { benchPredictor(b, predictor.NewBimodal(12)) }
func BenchmarkPredictorTournament(b *testing.B) {
	benchPredictor(b, predictor.NewTournament(predictor.NewBimodal(12), predictor.NewGshare(12, 12), 12))
}

func benchMechanism(b *testing.B, m core.Mechanism) {
	tr := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := tr[i%len(tr)]
		_ = m.Bucket(r)
		m.Update(r, i%16 == 0)
	}
}

func BenchmarkMechanismOneLevelCIR(b *testing.B) {
	benchMechanism(b, core.PaperOneLevel(core.IndexPCxorBHR))
}
func BenchmarkMechanismResetting(b *testing.B) { benchMechanism(b, core.PaperResetting()) }
func BenchmarkMechanismTwoLevel(b *testing.B) {
	benchMechanism(b, core.NewTwoLevel(core.TwoLevelConfig{Scheme1: core.IndexPCxorBHR, Scheme2: core.L2CIR}))
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	spec, err := workload.ByName("groff")
	if err != nil {
		b.Fatal(err)
	}
	src, err := spec.NewSource()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceReplay measures per-branch replay cost from a materialized
// buffer — the read path every cached simulation pass rides on (compare
// BenchmarkWorkloadGeneration for the walk it replaces).
func BenchmarkTraceReplay(b *testing.B) {
	spec, err := workload.ByName("groff")
	if err != nil {
		b.Fatal(err)
	}
	buf, err := workload.Materialize(spec, 1<<17)
	if err != nil {
		b.Fatal(err)
	}
	src := buf.Source()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Next(); err != nil {
			src = buf.Source() // wrap around at EOF
		}
	}
}

// BenchmarkRunBatch measures the single-pass fan-out: one trace, one
// predictor, N mechanisms per pass. One op is one dynamic branch through
// the whole batch, so ns/op at width 8 vs 8× the width-1 figure is the
// saving from sharing the predictor and trace walk across mechanisms.
func BenchmarkRunBatch(b *testing.B) {
	tr := benchTrace(b)
	for _, width := range []int{1, 2, 4, 8} {
		b.Run(strconv.Itoa(width)+"mechs", func(b *testing.B) {
			b.ReportAllocs()
			for done := 0; done < b.N; done += len(tr) {
				mechs := make([]core.Mechanism, width)
				for i := range mechs {
					mechs[i] = core.PaperResetting()
				}
				if _, err := sim.RunBatch(tr.Source(), predictor.Gshare64K(), mechs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSeparateRuns is the pre-batching baseline for BenchmarkRunBatch/
// 8mechs: the same eight mechanisms simulated as eight independent passes,
// each regenerating predictor state and re-walking the trace.
func BenchmarkSeparateRuns(b *testing.B) {
	tr := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += len(tr) {
		for i := 0; i < 8; i++ {
			if _, err := sim.RunBatch(tr.Source(), predictor.Gshare64K(),
				[]core.Mechanism{core.PaperResetting()}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
