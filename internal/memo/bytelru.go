// Package memo provides the process-wide cache shape shared by the
// engine's memoized artifacts (flat views, annotated streams, bucket
// streams in internal/sim; confidence curves in internal/exp): a
// claim-or-wait map with a resident-bytes bound and least-recently-used
// eviction.
package memo

import "sync"

// ByteLRU is a claim-or-wait memo map with a resident-bytes bound and
// least-recently-used eviction.
//
//   - The first claimant of a key owns the build; it must publish the entry
//     with Finish exactly once. Later claimants wait on the entry's Done
//     channel and share the result.
//   - A resident-bytes bound evicts completed entries least-recently-used
//     first; in-flight entries are never evicted, and eviction never
//     invalidates a build already holding the value — the pointer keeps the
//     payload alive.
//
// Keys may be any comparable type; one cache can hold several key kinds
// (the annotated cache keeps flat views and annotated streams in one
// instance so they share a single budget).
type ByteLRU struct {
	mu        sync.Mutex
	entries   map[any]*Entry
	bound     uint64 // resident-bytes bound; 0 = unbounded
	clock     uint64
	resident  uint64
	evictions uint64
}

// Entry is one cached artifact. Done is closed when Val/Err are final.
type Entry struct {
	Done    chan struct{}
	Val     any
	Err     error
	key     any    // the claim key, so Finish can drop an errored entry
	built   bool   // Finish ran with Err == nil; false while in flight
	bytes   uint64 // payload size once built (may legitimately be zero)
	lastUse uint64 // LRU clock tick of the most recent claim
}

// SetBound bounds the cache's resident payload bytes; 0 removes the bound.
// A single entry larger than the bound is still admitted (and becomes the
// next eviction candidate).
func (c *ByteLRU) SetBound(bytes uint64) {
	c.mu.Lock()
	c.bound = bytes
	c.evictLocked()
	c.mu.Unlock()
}

// Claim returns the entry for key and whether the caller became its owner.
// An owner must build the value and call Finish; a non-owner must wait on
// e.Done before reading e.Val/e.Err.
func (c *ByteLRU) Claim(key any) (e *Entry, owner bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	if e = c.entries[key]; e != nil {
		e.lastUse = c.clock
		return e, false
	}
	e = &Entry{Done: make(chan struct{}), key: key, lastUse: c.clock}
	if c.entries == nil {
		c.entries = make(map[any]*Entry)
	}
	c.entries[key] = e
	return e, true
}

// Finish publishes a built entry: records its payload size, closes the Done
// channel, and applies the bound. The owner sets e.Val/e.Err before calling.
//
// An errored entry is dropped from the map instead of published: claimants
// already parked on it still observe the error through the entry pointer,
// but the next claim of the key owns a fresh build — a transient failure is
// never negatively cached for the life of the process.
func (c *ByteLRU) Finish(e *Entry, bytes uint64) {
	c.mu.Lock()
	if e.Err == nil {
		e.built = true
		e.bytes = bytes
		c.resident += bytes
	} else if c.entries[e.key] == e {
		// Guard on pointer identity: a reset (or a successor entry under
		// the same key) must not be clobbered by a stale owner finishing.
		delete(c.entries, e.key)
	}
	c.mu.Unlock()
	close(e.Done)
	c.mu.Lock()
	c.evictLocked()
	c.mu.Unlock()
}

// evictLocked drops completed entries, least recently used first, until the
// resident bytes fit the bound. In-flight entries (Done not yet closed) are
// skipped: their size is unknown and a waiter may be parked on them.
func (c *ByteLRU) evictLocked() {
	if c.bound == 0 {
		return
	}
	for c.resident > c.bound {
		var (
			victim any
			found  bool
			oldest uint64
		)
		for k, e := range c.entries {
			if !e.built {
				continue // in flight; a waiter may be parked on it
			}
			if !found || e.lastUse < oldest {
				found, oldest, victim = true, e.lastUse, k
			}
		}
		if !found {
			return // everything resident is in flight; nothing to evict
		}
		c.resident -= c.entries[victim].bytes
		delete(c.entries, victim)
		c.evictions++
	}
}

// Reset drops every entry and zeroes the resident and eviction counters,
// retaining the bound. Intended for tests and batch boundaries.
func (c *ByteLRU) Reset() {
	c.mu.Lock()
	c.entries = nil
	c.resident = 0
	c.evictions = 0
	c.mu.Unlock()
}

// Usage reports the cache's resident payload bytes and evictions so far.
func (c *ByteLRU) Usage() (resident, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident, c.evictions
}
