package memo

import (
	"errors"
	"testing"
)

// TestByteLRUErroredEntryDropped is the regression test for the negative-
// caching bug: an owner whose build fails must not leave the errored entry
// in the map, or every later claim of that key replays the stale error for
// the life of the process. Waiters parked on the failing build still see
// the error; the next claim owns a fresh build.
func TestByteLRUErroredEntryDropped(t *testing.T) {
	var c ByteLRU
	boom := errors.New("transient build failure")

	e, owner := c.Claim("k")
	if !owner {
		t.Fatal("first claim not owner")
	}
	waiter, waiterOwner := c.Claim("k") // parked before the failure publishes
	if waiterOwner {
		t.Fatal("second claim stole ownership")
	}
	e.Err = boom
	c.Finish(e, 0)
	<-waiter.Done
	if waiter.Err != boom {
		t.Fatalf("parked waiter saw err=%v, want the owner's failure", waiter.Err)
	}

	e2, owner2 := c.Claim("k")
	if !owner2 {
		t.Fatalf("claim after failed build not owner: stale err=%v negatively cached", e2.Err)
	}
	e2.Val = "rebuilt"
	c.Finish(e2, 8)

	e3, owner3 := c.Claim("k")
	if owner3 || e3.Err != nil || e3.Val != "rebuilt" {
		t.Fatalf("rebuild not cached: owner=%v err=%v val=%v", owner3, e3.Err, e3.Val)
	}
	if resident, _ := c.Usage(); resident != 8 {
		t.Fatalf("resident = %d, want 8 (failed build must not count)", resident)
	}
}

// TestByteLRUZeroByteEntryEvictable is the regression test for the
// in-flight/empty ambiguity: a successfully built zero-byte payload (an
// empty stream is a legitimate artifact) must be evictable like any other
// completed entry, not mistaken for an in-flight build and pinned forever.
func TestByteLRUZeroByteEntryEvictable(t *testing.T) {
	var c ByteLRU
	c.SetBound(1)

	empty, owner := c.Claim("empty")
	if !owner {
		t.Fatal("claim not owner")
	}
	empty.Val = []byte{}
	c.Finish(empty, 0) // built, legitimately zero bytes

	big, owner := c.Claim("big")
	if !owner {
		t.Fatal("claim not owner")
	}
	big.Val = "bb"
	c.Finish(big, 2) // resident 2 > bound 1: eviction runs LRU-first

	if _, owner := c.Claim("empty"); !owner {
		t.Fatal("zero-byte built entry survived eviction: mistaken for in-flight")
	}
	if _, evictions := c.Usage(); evictions != 2 {
		t.Fatalf("evictions = %d, want 2 (empty then big)", evictions)
	}
}

// TestByteLRUInFlightNeverEvicted pins the guard the zero-byte fix must not
// break: an entry whose build is still running is skipped by eviction even
// when the cache is over budget.
func TestByteLRUInFlightNeverEvicted(t *testing.T) {
	var c ByteLRU
	c.SetBound(1)

	inflight, owner := c.Claim("inflight")
	if !owner {
		t.Fatal("claim not owner")
	}

	done, owner := c.Claim("done")
	if !owner {
		t.Fatal("claim not owner")
	}
	done.Val = "dd"
	c.Finish(done, 2) // over budget; only "done" is evictable

	if _, owner := c.Claim("inflight"); owner {
		t.Fatal("in-flight entry evicted out from under its waiters")
	}
	inflight.Val = "v"
	c.Finish(inflight, 1)
}
