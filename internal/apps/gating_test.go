package apps

import (
	"testing"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
)

func TestGatingBaselineHasNoStalls(t *testing.T) {
	src := benchSource(t, "real_gcc", 100000)
	res, err := RunGating(src, predictor.Gshare4K(), core.PaperEstimator(8), GateConfig{ResolveDistance: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled != 0 {
		t.Fatalf("ungated run stalled %d", res.Stalled)
	}
	if res.Wasted == 0 {
		t.Fatal("ungated run wasted nothing; wrong-path model inert")
	}
	if res.Branches != 100000 {
		t.Fatalf("branches %d", res.Branches)
	}
}

func TestGatingReducesWrongPathWork(t *testing.T) {
	base, err := RunGating(benchSource(t, "real_gcc", 200000), predictor.Gshare4K(), core.PaperEstimator(8),
		GateConfig{ResolveDistance: 4})
	if err != nil {
		t.Fatal(err)
	}
	gated, err := RunGating(benchSource(t, "real_gcc", 200000), predictor.Gshare4K(), core.PaperEstimator(8),
		GateConfig{ResolveDistance: 4, Threshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if gated.Wasted >= base.Wasted {
		t.Fatalf("gating did not cut wrong-path work: %d vs %d", gated.Wasted, base.Wasted)
	}
	if gated.Stalled == 0 {
		t.Fatal("gated run never stalled")
	}
	// The performance cost must stay well below the work saved for this
	// configuration (the pipeline-gating selling point).
	saved := base.Wasted - gated.Wasted
	if gated.Stalled > 6*saved {
		t.Fatalf("stall cost %d dwarfs saved work %d", gated.Stalled, saved)
	}
}

func TestGatingThresholdMonotone(t *testing.T) {
	// Lower thresholds gate more aggressively: stalls grow, waste shrinks.
	prevStall, prevWaste := uint64(0), ^uint64(0)
	for _, thr := range []int{4, 2, 1} {
		res, err := RunGating(benchSource(t, "real_gcc", 150000), predictor.Gshare4K(), core.PaperEstimator(8),
			GateConfig{ResolveDistance: 4, Threshold: thr})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stalled < prevStall {
			t.Fatalf("threshold %d stalled less (%d) than looser threshold (%d)", thr, res.Stalled, prevStall)
		}
		if res.Wasted > prevWaste {
			t.Fatalf("threshold %d wasted more (%d) than looser threshold (%d)", thr, res.Wasted, prevWaste)
		}
		prevStall, prevWaste = res.Stalled, res.Wasted
	}
}

func TestGatingRejectsBadConfig(t *testing.T) {
	if _, err := RunGating(benchSource(t, "groff", 10), predictor.Gshare4K(), core.PaperEstimator(8),
		GateConfig{}); err == nil {
		t.Fatal("zero ResolveDistance accepted")
	}
	if _, err := RunGating(benchSource(t, "groff", 10), predictor.Gshare4K(), core.PaperEstimator(8),
		GateConfig{ResolveDistance: 4, Threshold: -1}); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestGateResultFractions(t *testing.T) {
	r := GateResult{Useful: 80, Wasted: 20, Stalled: 10}
	if got := r.WastedFrac(); got != 0.2 {
		t.Fatalf("WastedFrac %v", got)
	}
	if got := r.StallFrac(); got < 0.09 || got > 0.091 {
		t.Fatalf("StallFrac %v", got)
	}
	if (GateResult{}).WastedFrac() != 0 || (GateResult{}).StallFrac() != 0 {
		t.Fatal("empty result fractions nonzero")
	}
}
