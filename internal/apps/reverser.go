package apps

import (
	"fmt"
	"io"

	"branchconf/internal/analysis"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
)

// The branch prediction reverser (§1, application 4): if the confidence in
// a prediction can be determined to be below 50%, the prediction should be
// inverted. Whether any bucket actually exceeds 50% misprediction rate is
// an empirical question — the paper's Table 1 shows the hottest resetting-
// counter bucket at 37.6%, so a naive "reverse the lowest bucket" hurts.
// ProfileReverser therefore derives the reversal set from a profiling pass:
// only buckets measured above the threshold get reversed.

// ReverserResult compares a predictor with and without reversal.
type ReverserResult struct {
	Branches       uint64
	BaseMisses     uint64 // plain predictor
	ReversedMisses uint64 // with reversal applied
	Reversals      uint64 // predictions inverted
	GoodReversals  uint64 // inversions that fixed a misprediction
}

// Delta returns the change in misprediction rate (negative = improvement).
func (r ReverserResult) Delta() float64 {
	if r.Branches == 0 {
		return 0
	}
	return (float64(r.ReversedMisses) - float64(r.BaseMisses)) / float64(r.Branches)
}

// ProfileReverseSet runs a profiling pass and returns the mechanism buckets
// whose misprediction rate exceeds threshold (0.5 for a true reverser).
// The returned set may be empty — the paper's data suggests it often is
// for well-tuned predictors, which is itself a reproducible finding.
func ProfileReverseSet(src trace.Source, pred predictor.Predictor, mech core.Mechanism, threshold float64) ([]uint64, error) {
	stats := make(analysis.BucketStats)
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		incorrect := pred.Predict(r) != r.Taken
		stats.Add(mech.Bucket(r), incorrect)
		pred.Update(r)
		mech.Update(r, incorrect)
	}
	var set []uint64
	for b, t := range stats {
		// Require a minimum population so a handful of unlucky events
		// cannot nominate a bucket.
		if t.Events >= 64 && t.Rate() > threshold {
			set = append(set, b)
		}
	}
	return set, nil
}

// RunReverser replays src, inverting every prediction whose confidence
// bucket is in reverseSet, and reports both baselines. The predictor and
// mechanism must be fresh instances (the profiling pass has its own).
func RunReverser(src trace.Source, pred predictor.Predictor, mech core.Mechanism, reverseSet []uint64) (ReverserResult, error) {
	rev := make(map[uint64]struct{}, len(reverseSet))
	for _, b := range reverseSet {
		rev[b] = struct{}{}
	}
	var res ReverserResult
	for {
		r, err := src.Next()
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return res, err
		}
		p := pred.Predict(r)
		_, reverse := rev[mech.Bucket(r)]
		finalPred := p
		if reverse {
			finalPred = !p
			res.Reversals++
		}
		baseIncorrect := p != r.Taken
		finalIncorrect := finalPred != r.Taken
		if reverse && baseIncorrect && !finalIncorrect {
			res.GoodReversals++
		}
		// Tables train on the original prediction's correctness: the
		// reverser is a consumer of the confidence signal, not part of
		// the training loop (§1's architecture, Fig. 1).
		pred.Update(r)
		mech.Update(r, baseIncorrect)
		res.Branches++
		if baseIncorrect {
			res.BaseMisses++
		}
		if finalIncorrect {
			res.ReversedMisses++
		}
	}
}

// ReverserStudy profiles on one seed of a benchmark and evaluates on the
// benchmark itself, returning the result and the reversal set size.
func ReverserStudy(profileSrc, evalSrc trace.Source, newPred func() predictor.Predictor, newMech func() core.Mechanism, threshold float64) (ReverserResult, int, error) {
	set, err := ProfileReverseSet(profileSrc, newPred(), newMech(), threshold)
	if err != nil {
		return ReverserResult{}, 0, fmt.Errorf("apps: profiling reverser: %w", err)
	}
	res, err := RunReverser(evalSrc, newPred(), newMech(), set)
	if err != nil {
		return ReverserResult{}, 0, fmt.Errorf("apps: evaluating reverser: %w", err)
	}
	return res, len(set), nil
}
