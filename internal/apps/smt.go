package apps

import (
	"fmt"
	"io"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
)

// The SMT fetch-gating model (§1, application 2): several hardware threads
// share one fetch unit. Fetching down a thread whose pending branch is
// mispredicted wastes every instruction until the branch resolves. A
// confidence signal lets the fetch policy deprioritise threads whose next
// prediction is low-confidence, steering bandwidth toward threads likely
// on a correct path — the intuition behind Tullsen et al.'s fetch-policy
// findings that the paper cites.
//
// The model advances branch by branch: each "fetch slot" picks a thread,
// consumes that thread's next branch record plus its Gap instructions, and
// counts the instructions as useful or wasted according to whether the
// branch was mispredicted (everything fetched past a misprediction until
// it resolves is squashed; resolution takes ResolveSlots further slots).

// SMTConfig configures the fetch-gating model.
type SMTConfig struct {
	// ResolveSlots is how many fetch slots pass before a misprediction is
	// discovered and the thread squashed/redirected.
	ResolveSlots int
	// Gated selects the confidence-gated policy: skip threads whose next
	// prediction is low-confidence unless every thread is low-confidence.
	Gated bool
}

// SMTThread is one hardware thread's workload: a trace source with its own
// predictor and confidence estimator (private tables per context).
type SMTThread struct {
	Name string
	Src  trace.Source
	Pred predictor.Predictor
	Est  *core.Estimator

	next     *trace.Record // lookahead record
	done     bool
	squash   int // slots until a pending misprediction resolves
	wastedIn bool
}

// SMTResult summarises a fetch-gating run.
type SMTResult struct {
	Slots        uint64 // fetch slots consumed
	Useful       uint64 // instructions fetched on correct paths
	Wasted       uint64 // instructions squashed after mispredictions
	GatedSkips   uint64 // times the policy skipped a low-confidence thread
	PerThreadUse []uint64
}

// Efficiency returns useful / (useful + wasted) fetch bandwidth.
func (r SMTResult) Efficiency() float64 {
	total := r.Useful + r.Wasted
	if total == 0 {
		return 0
	}
	return float64(r.Useful) / float64(total)
}

// RunSMT drives the threads until any thread's trace ends (keeping thread
// loads comparable) or maxSlots fetch slots elapse.
func RunSMT(threads []*SMTThread, cfg SMTConfig, maxSlots uint64) (SMTResult, error) {
	if len(threads) == 0 {
		return SMTResult{}, fmt.Errorf("apps: RunSMT needs at least one thread")
	}
	if cfg.ResolveSlots < 1 {
		return SMTResult{}, fmt.Errorf("apps: ResolveSlots must be >= 1")
	}
	res := SMTResult{PerThreadUse: make([]uint64, len(threads))}
	// Prime lookaheads.
	for _, th := range threads {
		if err := th.advance(); err != nil {
			return res, err
		}
	}
	rr := 0
	for res.Slots < maxSlots {
		// Retire squash windows.
		for _, th := range threads {
			if th.squash > 0 {
				th.squash--
			}
		}
		pick := -1
		// Round-robin scan; the gated policy passes over threads whose
		// next prediction is low confidence (or which are mid-squash).
		for scan := 0; scan < len(threads); scan++ {
			i := (rr + scan) % len(threads)
			th := threads[i]
			if th.done || th.squash > 0 {
				continue
			}
			if cfg.Gated && !th.confident() {
				res.GatedSkips++
				continue
			}
			pick = i
			break
		}
		if pick < 0 {
			// All gated or squashed: fall back to any runnable thread so
			// the machine never idles on a full workload.
			for scan := 0; scan < len(threads); scan++ {
				i := (rr + scan) % len(threads)
				if !threads[i].done && threads[i].squash == 0 {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			// Everything mid-squash: burn a slot.
			res.Slots++
			continue
		}
		th := threads[pick]
		rr = (pick + 1) % len(threads)
		r := *th.next

		incorrect := th.Pred.Predict(r) != r.Taken
		th.Pred.Update(r)
		th.Est.Update(r, incorrect)

		fetched := uint64(r.Gap) + 1
		if incorrect {
			// The branch itself is useful; what follows until resolution
			// is wasted. Approximate the squashed run as the next
			// ResolveSlots slots of this thread's fetch.
			res.Useful += 1
			res.Wasted += fetched - 1
			th.squash = cfg.ResolveSlots
		} else {
			res.Useful += fetched
			res.PerThreadUse[pick] += fetched
		}
		res.Slots++
		if err := th.advance(); err != nil {
			return res, err
		}
		if th.done {
			return res, nil // stop at first exhausted thread
		}
	}
	return res, nil
}

// advance pulls the thread's next record into the lookahead.
func (t *SMTThread) advance() error {
	r, err := t.Src.Next()
	if err == io.EOF {
		t.done = true
		t.next = nil
		return nil
	}
	if err != nil {
		return err
	}
	t.next = &r
	return nil
}

// confident reports the estimator's signal for the lookahead branch.
func (t *SMTThread) confident() bool {
	if t.next == nil {
		return false
	}
	return t.Est.Confident(*t.next)
}
