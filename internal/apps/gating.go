package apps

import (
	"fmt"
	"io"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
)

// Pipeline gating: the best-known follow-on use of this paper's
// confidence estimators (Manne, Klauser & Grunwald, ISCA '98). When
// several unresolved low-confidence branches are in flight, the
// probability that fetch is already on a wrong path is high, so the
// front-end stalls ("gates") instead of fetching instructions that will
// likely be squashed. The trade-off: gating saves wrong-path work
// (energy) at a small performance cost from stalling on paths that turn
// out correct.
//
// The model advances branch by branch. Every fetched branch carries
// Gap+1 instructions. Instructions fetched while a mispredicted branch is
// unresolved are wrong-path work; instructions not fetched because the
// gate was closed are stall slots. Branches resolve a fixed number of
// branch-fetches after they enter the window.

// GateConfig configures the pipeline-gating model.
type GateConfig struct {
	// ResolveDistance is how many subsequent branch fetches pass before a
	// branch resolves (mispredictions squash; gates reopen).
	ResolveDistance int
	// Threshold is the number of in-flight low-confidence branches at
	// which fetch gates. 0 disables gating (the baseline machine).
	Threshold int
}

// GateResult summarises one gating run.
type GateResult struct {
	Branches uint64
	Misses   uint64
	Useful   uint64 // instructions fetched on the correct path
	Wasted   uint64 // wrong-path instructions fetched (squashed work)
	Stalled  uint64 // instructions whose fetch the gate deferred
}

// WastedFrac returns wrong-path work as a fraction of all fetched work.
func (r GateResult) WastedFrac() float64 {
	total := r.Useful + r.Wasted
	if total == 0 {
		return 0
	}
	return float64(r.Wasted) / float64(total)
}

// StallFrac returns deferred fetch as a fraction of all fetch demand.
func (r GateResult) StallFrac() float64 {
	total := r.Useful + r.Wasted + r.Stalled
	if total == 0 {
		return 0
	}
	return float64(r.Stalled) / float64(total)
}

// pendingBranch tracks one unresolved branch in the model's window.
type pendingBranch struct {
	remaining int
	lowConf   bool
	mispred   bool
}

// RunGating replays src through pred and est under the gating policy.
func RunGating(src trace.Source, pred predictor.Predictor, est *core.Estimator, cfg GateConfig) (GateResult, error) {
	if cfg.ResolveDistance < 1 {
		return GateResult{}, fmt.Errorf("apps: ResolveDistance must be >= 1, got %d", cfg.ResolveDistance)
	}
	if cfg.Threshold < 0 {
		return GateResult{}, fmt.Errorf("apps: Threshold must be >= 0, got %d", cfg.Threshold)
	}
	var res GateResult
	var window []pendingBranch
	lowInFlight, wrongPathDepth := 0, 0
	for {
		r, err := src.Next()
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return res, err
		}
		// Resolve aged branches.
		kept := window[:0]
		for _, p := range window {
			p.remaining--
			if p.remaining <= 0 {
				if p.lowConf {
					lowInFlight--
				}
				if p.mispred {
					wrongPathDepth--
				}
				continue
			}
			kept = append(kept, p)
		}
		window = kept

		confident := est.Confident(r)
		incorrect := pred.Predict(r) != r.Taken
		pred.Update(r)
		est.Update(r, incorrect)

		work := uint64(r.Gap) + 1
		gated := cfg.Threshold > 0 && lowInFlight >= cfg.Threshold
		switch {
		case gated:
			// Fetch deferred: neither useful nor wasted work this slot.
			res.Stalled += work
		case wrongPathDepth > 0:
			// Fetching past an unresolved misprediction: squashed later.
			res.Wasted += work
		default:
			res.Useful += work
		}

		res.Branches++
		if incorrect {
			res.Misses++
		}
		p := pendingBranch{remaining: cfg.ResolveDistance, lowConf: !confident, mispred: incorrect && !gated}
		if p.lowConf {
			lowInFlight++
		}
		if p.mispred {
			wrongPathDepth++
		}
		window = append(window, p)
	}
}

// gateState is one threshold's private bookkeeping in a batched run.
type gateState struct {
	cfg            GateConfig
	res            GateResult
	window         []pendingBranch
	lowInFlight    int
	wrongPathDepth int
}

// RunGatingBatch evaluates several gate configurations over a single trace
// walk through one shared predictor and estimator. The gate only defers
// fetch — it never alters what the predictor or estimator observe — so the
// (confident, incorrect) stream is the same for every threshold and each
// configuration's result is byte-identical to its solo RunGating run.
func RunGatingBatch(src trace.Source, pred predictor.Predictor, est *core.Estimator, cfgs []GateConfig) ([]GateResult, error) {
	states := make([]gateState, len(cfgs))
	for i, cfg := range cfgs {
		if cfg.ResolveDistance < 1 {
			return nil, fmt.Errorf("apps: ResolveDistance must be >= 1, got %d", cfg.ResolveDistance)
		}
		if cfg.Threshold < 0 {
			return nil, fmt.Errorf("apps: Threshold must be >= 0, got %d", cfg.Threshold)
		}
		states[i].cfg = cfg
	}
	finish := func() []GateResult {
		out := make([]GateResult, len(states))
		for i := range states {
			out[i] = states[i].res
		}
		return out
	}
	for {
		r, err := src.Next()
		if err == io.EOF {
			return finish(), nil
		}
		if err != nil {
			return finish(), err
		}
		confident := est.Confident(r)
		incorrect := pred.Predict(r) != r.Taken
		pred.Update(r)
		est.Update(r, incorrect)
		work := uint64(r.Gap) + 1

		for i := range states {
			st := &states[i]
			kept := st.window[:0]
			for _, p := range st.window {
				p.remaining--
				if p.remaining <= 0 {
					if p.lowConf {
						st.lowInFlight--
					}
					if p.mispred {
						st.wrongPathDepth--
					}
					continue
				}
				kept = append(kept, p)
			}
			st.window = kept

			gated := st.cfg.Threshold > 0 && st.lowInFlight >= st.cfg.Threshold
			switch {
			case gated:
				st.res.Stalled += work
			case st.wrongPathDepth > 0:
				st.res.Wasted += work
			default:
				st.res.Useful += work
			}

			st.res.Branches++
			if incorrect {
				st.res.Misses++
			}
			p := pendingBranch{remaining: st.cfg.ResolveDistance, lowConf: !confident, mispred: incorrect && !gated}
			if p.lowConf {
				st.lowInFlight++
			}
			if p.mispred {
				st.wrongPathDepth++
			}
			st.window = append(st.window, p)
		}
	}
}
