// Package apps implements the four applications that motivate the paper
// (§1): selective dual-path execution, SMT fetch gating, a confidence-based
// hybrid-predictor selector, and a branch prediction reverser. Each is a
// simulation model quantifying what the confidence signal buys; the models
// are deliberately simple — branch-granularity cost models, not cycle
// simulators — because the paper's claims are about misprediction coverage
// per unit of resource, which these models measure directly.
package apps

import (
	"fmt"
	"io"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
)

// DualPathConfig configures the selective dual-path execution model.
type DualPathConfig struct {
	// MispredictPenalty is the pipeline refill cost of an uncovered
	// misprediction, in cycles (typical mid-90s depth: ~5-15).
	MispredictPenalty uint64
	// ForkPenalty is the per-fork cost in cycles: fetch bandwidth stolen
	// from the primary path while both paths are followed.
	ForkPenalty uint64
	// MaxThreads bounds simultaneous paths; 2 means one extra path may be
	// live at a time (the paper's "limit of two threads").
	MaxThreads int
	// ResolveDistance is how many subsequent branches resolve before a
	// forked branch retires its second path, modelling the window during
	// which the fork occupies the spare thread.
	ResolveDistance int
}

// DefaultDualPath returns a mid-1990s-flavoured configuration.
func DefaultDualPath() DualPathConfig {
	return DualPathConfig{MispredictPenalty: 10, ForkPenalty: 1, MaxThreads: 2, ResolveDistance: 2}
}

// DualPathResult summarises one dual-path run.
type DualPathResult struct {
	Branches    uint64
	Misses      uint64
	Forks       uint64 // second paths spawned
	CoveredMiss uint64 // mispredictions whose penalty a fork absorbed
	DeniedForks uint64 // low-confidence branches that found no free thread
	BaseCycles  uint64 // penalty cycles without dual-path execution
	DualCycles  uint64 // penalty + fork cycles with selective dual-path
}

// ForkRate returns forks per dynamic branch.
func (r DualPathResult) ForkRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Forks) / float64(r.Branches)
}

// Coverage returns the fraction of mispredictions absorbed by forks.
func (r DualPathResult) Coverage() float64 {
	if r.Misses == 0 {
		return 0
	}
	return float64(r.CoveredMiss) / float64(r.Misses)
}

// PenaltySavings returns the fraction of baseline penalty cycles removed.
func (r DualPathResult) PenaltySavings() float64 {
	if r.BaseCycles == 0 {
		return 0
	}
	return 1 - float64(r.DualCycles)/float64(r.BaseCycles)
}

// RunDualPath replays src through pred and est, forking a second path for
// every low-confidence prediction when a thread slot is free. A covered
// misprediction costs nothing beyond its fork; an uncovered one pays the
// full penalty.
func RunDualPath(src trace.Source, pred predictor.Predictor, est *core.Estimator, cfg DualPathConfig) (DualPathResult, error) {
	if cfg.MaxThreads < 1 {
		return DualPathResult{}, fmt.Errorf("apps: MaxThreads must be >= 1, got %d", cfg.MaxThreads)
	}
	var res DualPathResult
	// busy[i] counts remaining branches until the occupying fork resolves.
	busy := make([]int, cfg.MaxThreads-1)
	for {
		r, err := src.Next()
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return res, err
		}
		// Age outstanding forks.
		for i := range busy {
			if busy[i] > 0 {
				busy[i]--
			}
		}
		confident := est.Confident(r)
		incorrect := pred.Predict(r) != r.Taken
		pred.Update(r)
		est.Update(r, incorrect)

		res.Branches++
		forked := false
		if !confident {
			for i := range busy {
				if busy[i] == 0 {
					busy[i] = cfg.ResolveDistance
					forked = true
					break
				}
			}
			if !forked {
				res.DeniedForks++
			}
		}
		if forked {
			res.Forks++
			res.DualCycles += cfg.ForkPenalty
		}
		if incorrect {
			res.Misses++
			res.BaseCycles += cfg.MispredictPenalty
			if forked {
				res.CoveredMiss++
			} else {
				res.DualCycles += cfg.MispredictPenalty
			}
		}
	}
}
