package apps

import (
	"io"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
)

// The hybrid-predictor selector (§1, application 3): a combining predictor
// needs to pick which component to believe for each branch. McFarling's
// chooser is a 2-bit counter trained on relative correctness; the paper
// suggests comparing explicit per-component confidence estimates instead.
// ConfidenceHybrid does exactly that: each component predictor carries its
// own resetting-counter confidence table (trained on that component's
// correctness), and the prediction comes from the component whose current
// confidence bucket is higher.

// ConfidenceHybrid combines two predictors with confidence-based selection.
type ConfidenceHybrid struct {
	a, b       predictor.Predictor
	estA, estB core.Mechanism
	// preferB breaks confidence ties (the historically stronger
	// component should win ties; gshare usually goes in slot b).
	preferB bool
}

// NewConfidenceHybrid builds a confidence-selected hybrid. estA and estB
// must be fresh mechanisms of comparable geometry; preferB selects the
// tie-break winner.
func NewConfidenceHybrid(a, b predictor.Predictor, estA, estB core.Mechanism, preferB bool) *ConfidenceHybrid {
	return &ConfidenceHybrid{a: a, b: b, estA: estA, estB: estB, preferB: preferB}
}

// DefaultConfidenceHybrid pairs a bimodal and a gshare predictor with
// 2^12-entry resetting-counter confidence tables.
func DefaultConfidenceHybrid() *ConfidenceHybrid {
	mk := func() core.Mechanism {
		return core.NewCounterTable(core.CounterConfig{Kind: core.Resetting, Scheme: core.IndexPCxorBHR, TableBits: 12, HistoryBits: 12})
	}
	return NewConfidenceHybrid(predictor.NewBimodal(12), predictor.NewGshare(12, 12), mk(), mk(), true)
}

// Predict selects the component with the higher confidence bucket.
func (h *ConfidenceHybrid) Predict(r trace.Record) bool {
	ca, cb := h.estA.Bucket(r), h.estB.Bucket(r)
	if ca > cb || (ca == cb && !h.preferB) {
		return h.a.Predict(r)
	}
	return h.b.Predict(r)
}

// Update trains both components and both confidence tables with their own
// correctness.
func (h *ConfidenceHybrid) Update(r trace.Record) {
	incA := h.a.Predict(r) != r.Taken
	incB := h.b.Predict(r) != r.Taken
	h.a.Update(r)
	h.b.Update(r)
	h.estA.Update(r, incA)
	h.estB.Update(r, incB)
}

// Reset restores all four structures.
func (h *ConfidenceHybrid) Reset() {
	h.a.Reset()
	h.b.Reset()
	h.estA.Reset()
	h.estB.Reset()
}

// Name implements predictor.Predictor.
func (h *ConfidenceHybrid) Name() string {
	return "conf-hybrid(" + h.a.Name() + "," + h.b.Name() + ")"
}

// HybridComparison reports misprediction rates for the confidence-selected
// hybrid, a McFarling tournament of the same components, and both solo
// components, on the same trace.
type HybridComparison struct {
	Branches   uint64
	ConfHybrid uint64 // misses
	Tournament uint64
	SoloA      uint64
	SoloB      uint64
}

// Rate converts a miss count to a rate over the comparison's branches.
func (h HybridComparison) Rate(misses uint64) float64 {
	if h.Branches == 0 {
		return 0
	}
	return float64(misses) / float64(h.Branches)
}

// CompareHybrids replays src through all four predictors in lockstep.
// newA/newB build the component predictors; the same constructors feed the
// tournament and the solo baselines so every structure sees identical
// geometry.
func CompareHybrids(src trace.Source, newA, newB func() predictor.Predictor, chooserBits uint) (HybridComparison, error) {
	mkEst := func() core.Mechanism {
		return core.NewCounterTable(core.CounterConfig{Kind: core.Resetting, Scheme: core.IndexPCxorBHR, TableBits: 12, HistoryBits: 12})
	}
	conf := NewConfidenceHybrid(newA(), newB(), mkEst(), mkEst(), true)
	tour := predictor.NewTournament(newA(), newB(), chooserBits)
	soloA, soloB := newA(), newB()

	var res HybridComparison
	for {
		r, err := src.Next()
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return res, err
		}
		res.Branches++
		if conf.Predict(r) != r.Taken {
			res.ConfHybrid++
		}
		if tour.Predict(r) != r.Taken {
			res.Tournament++
		}
		if soloA.Predict(r) != r.Taken {
			res.SoloA++
		}
		if soloB.Predict(r) != r.Taken {
			res.SoloB++
		}
		conf.Update(r)
		tour.Update(r)
		soloA.Update(r)
		soloB.Update(r)
	}
}
