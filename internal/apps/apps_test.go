package apps

import (
	"testing"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

func benchSource(t *testing.T, name string, n uint64) trace.Source {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.FiniteSource(n)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestDualPathAccounting(t *testing.T) {
	src := benchSource(t, "groff", 100000)
	res, err := RunDualPath(src, predictor.Gshare64K(), core.PaperEstimator(16), DefaultDualPath())
	if err != nil {
		t.Fatal(err)
	}
	if res.Branches != 100000 {
		t.Fatalf("branches %d", res.Branches)
	}
	if res.CoveredMiss > res.Misses || res.Forks > res.Branches {
		t.Fatalf("inconsistent accounting %+v", res)
	}
	if res.BaseCycles != res.Misses*DefaultDualPath().MispredictPenalty {
		t.Fatalf("base cycles %d for %d misses", res.BaseCycles, res.Misses)
	}
}

func TestDualPathCoverageClaim(t *testing.T) {
	// §6: forking on ~20% of predictions captures over 80% of
	// mispredictions. Threshold 16 puts ~20% of branches in the low set.
	src := benchSource(t, "groff", 300000)
	res, err := RunDualPath(src, predictor.Gshare64K(), core.PaperEstimator(16), DefaultDualPath())
	if err != nil {
		t.Fatal(err)
	}
	// The thread limit denies some forks, so coverage lands below the raw
	// confidence coverage; it must still be substantial.
	if res.Coverage() < 0.5 {
		t.Fatalf("dual-path coverage %.2f too low", res.Coverage())
	}
	if res.PenaltySavings() <= 0 {
		t.Fatalf("dual-path saved nothing (%.3f)", res.PenaltySavings())
	}
	if res.ForkRate() > 0.35 {
		t.Fatalf("fork rate %.2f implausibly high", res.ForkRate())
	}
}

func TestDualPathSelectiveBeatsGreedy(t *testing.T) {
	// Forking indiscriminately (threshold max+1: everything low
	// confidence) must waste more cycles than confidence-guided forking
	// under the same thread limit.
	cfg := DefaultDualPath()
	sel, err := RunDualPath(benchSource(t, "groff", 200000), predictor.Gshare64K(), core.PaperEstimator(16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := RunDualPath(benchSource(t, "groff", 200000), predictor.Gshare64K(), core.PaperEstimator(17), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.ForkRate() <= sel.ForkRate() {
		t.Fatalf("greedy forked less (%.2f) than selective (%.2f)", greedy.ForkRate(), sel.ForkRate())
	}
	if sel.DualCycles >= greedy.DualCycles {
		t.Fatalf("selective (%d cycles) no better than greedy (%d)", sel.DualCycles, greedy.DualCycles)
	}
}

func TestDualPathRejectsBadConfig(t *testing.T) {
	cfg := DefaultDualPath()
	cfg.MaxThreads = 0
	if _, err := RunDualPath(benchSource(t, "groff", 10), predictor.Gshare64K(), core.PaperEstimator(16), cfg); err == nil {
		t.Fatal("MaxThreads 0 accepted")
	}
}

func newSMTThread(t *testing.T, name string, n uint64) *SMTThread {
	return &SMTThread{
		Name: name,
		Src:  benchSource(t, name, n),
		Pred: predictor.Gshare4K(),
		Est:  core.PaperEstimator(16),
	}
}

func TestSMTGatingImprovesEfficiency(t *testing.T) {
	mk := func() []*SMTThread {
		return []*SMTThread{
			newSMTThread(t, "groff", 200000),
			newSMTThread(t, "real_gcc", 200000),
			newSMTThread(t, "jpeg_play", 200000),
			newSMTThread(t, "sdet", 200000),
		}
	}
	base, err := RunSMT(mk(), SMTConfig{ResolveSlots: 6, Gated: false}, 400000)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := RunSMT(mk(), SMTConfig{ResolveSlots: 6, Gated: true}, 400000)
	if err != nil {
		t.Fatal(err)
	}
	if gated.GatedSkips == 0 {
		t.Fatal("gated policy never skipped")
	}
	if gated.Efficiency() <= base.Efficiency() {
		t.Fatalf("gating did not help: %.4f vs %.4f", gated.Efficiency(), base.Efficiency())
	}
}

func TestSMTAccounting(t *testing.T) {
	th := []*SMTThread{newSMTThread(t, "groff", 5000), newSMTThread(t, "gs", 5000)}
	res, err := RunSMT(th, SMTConfig{ResolveSlots: 4, Gated: true}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots == 0 || res.Useful == 0 {
		t.Fatalf("degenerate run %+v", res)
	}
	if res.Efficiency() <= 0 || res.Efficiency() > 1 {
		t.Fatalf("efficiency %v", res.Efficiency())
	}
}

func TestSMTRejectsBadConfig(t *testing.T) {
	if _, err := RunSMT(nil, SMTConfig{ResolveSlots: 4}, 10); err == nil {
		t.Fatal("empty threads accepted")
	}
	if _, err := RunSMT([]*SMTThread{newSMTThread(t, "groff", 10)}, SMTConfig{}, 10); err == nil {
		t.Fatal("zero ResolveSlots accepted")
	}
}

func TestReverserNeverHurtsOnProfiledData(t *testing.T) {
	// DESIGN.md invariant: with threshold > 0.5, reversal tuned on the
	// profiling run cannot increase mispredictions when evaluated on the
	// same data (each reversed bucket had majority-wrong predictions).
	spec, _ := workload.ByName("real_gcc")
	mkSrc := func() trace.Source {
		src, err := spec.FiniteSource(150000)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	newPred := func() predictor.Predictor { return predictor.Gshare4K() }
	newMech := func() core.Mechanism { return core.SmallResetting(12) }
	res, setSize, err := ReverserStudy(mkSrc(), mkSrc(), newPred, newMech, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReversedMisses > res.BaseMisses {
		t.Fatalf("reverser hurt on its own profile data: %d -> %d (set %d)",
			res.BaseMisses, res.ReversedMisses, setSize)
	}
}

func TestReverserEmptySetIsIdentity(t *testing.T) {
	src := benchSource(t, "groff", 20000)
	res, err := RunReverser(src, predictor.Gshare64K(), core.PaperResetting(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reversals != 0 || res.ReversedMisses != res.BaseMisses {
		t.Fatalf("empty set changed behaviour %+v", res)
	}
}

func TestReverserPaperFinding(t *testing.T) {
	// Table 1's hottest bucket is ~37.6% mispredicted — below 50% — so a
	// strict >50% threshold should normally produce a small or empty
	// reversal set on the big predictor. This reproduces the paper's
	// implicit caveat for the reverser application.
	src := benchSource(t, "groff", 300000)
	set, err := ProfileReverseSet(src, predictor.Gshare64K(), core.PaperResetting(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) > 2 {
		t.Fatalf("reversal set unexpectedly large: %v", set)
	}
}

func TestHybridComparison(t *testing.T) {
	src := benchSource(t, "verilog", 300000)
	cmpRes, err := CompareHybrids(src,
		func() predictor.Predictor { return predictor.NewBimodal(12) },
		func() predictor.Predictor { return predictor.NewGshare(12, 12) },
		12)
	if err != nil {
		t.Fatal(err)
	}
	if cmpRes.Branches != 300000 {
		t.Fatalf("branches %d", cmpRes.Branches)
	}
	worst := cmpRes.SoloA
	if cmpRes.SoloB > worst {
		worst = cmpRes.SoloB
	}
	if cmpRes.ConfHybrid > worst {
		t.Fatalf("confidence hybrid (%d) worse than worst component (%d)", cmpRes.ConfHybrid, worst)
	}
	// The confidence selector should be competitive with the tournament
	// chooser (within 20% relative).
	if float64(cmpRes.ConfHybrid) > 1.2*float64(cmpRes.Tournament) {
		t.Fatalf("confidence hybrid (%d) far behind tournament (%d)", cmpRes.ConfHybrid, cmpRes.Tournament)
	}
}

func TestConfidenceHybridInterface(t *testing.T) {
	h := DefaultConfidenceHybrid()
	r := trace.Record{PC: 0x1000, Target: 0x1040, Taken: true}
	h.Predict(r)
	h.Update(r)
	h.Reset()
	if h.Name() == "" {
		t.Fatal("empty name")
	}
	// Satisfies the predictor interface.
	var _ predictor.Predictor = h
}

func TestSMTPerThreadAccounting(t *testing.T) {
	th := []*SMTThread{newSMTThread(t, "groff", 20000), newSMTThread(t, "jpeg_play", 20000)}
	res, err := RunSMT(th, SMTConfig{ResolveSlots: 4, Gated: false}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerThreadUse) != 2 {
		t.Fatalf("%d per-thread entries", len(res.PerThreadUse))
	}
	var sum uint64
	for _, u := range res.PerThreadUse {
		if u == 0 {
			t.Fatal("a thread fetched nothing useful under round-robin")
		}
		sum += u
	}
	if sum > res.Useful {
		t.Fatalf("per-thread useful %d exceeds total %d", sum, res.Useful)
	}
}

func TestDualPathThreadLimitMatters(t *testing.T) {
	// More spare threads grant more forks at the same threshold.
	cfgTwo := DefaultDualPath()
	cfgFour := DefaultDualPath()
	cfgFour.MaxThreads = 4
	two, err := RunDualPath(benchSource(t, "real_gcc", 150000), predictor.Gshare64K(), core.PaperEstimator(16), cfgTwo)
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunDualPath(benchSource(t, "real_gcc", 150000), predictor.Gshare64K(), core.PaperEstimator(16), cfgFour)
	if err != nil {
		t.Fatal(err)
	}
	if four.Forks <= two.Forks {
		t.Fatalf("4 threads forked %d, 2 threads %d", four.Forks, two.Forks)
	}
	if four.DeniedForks >= two.DeniedForks {
		t.Fatalf("4 threads denied %d, 2 threads %d", four.DeniedForks, two.DeniedForks)
	}
}

func TestHybridRateHelper(t *testing.T) {
	h := HybridComparison{Branches: 200, ConfHybrid: 20}
	if h.Rate(h.ConfHybrid) != 0.1 {
		t.Fatalf("rate %v", h.Rate(h.ConfHybrid))
	}
	if (HybridComparison{}).Rate(5) != 0 {
		t.Fatal("zero-branch rate nonzero")
	}
}

func TestReverserDeltaHelper(t *testing.T) {
	r := ReverserResult{Branches: 1000, BaseMisses: 100, ReversedMisses: 80}
	if got := r.Delta(); got != -0.02 {
		t.Fatalf("delta %v", got)
	}
	if (ReverserResult{}).Delta() != 0 {
		t.Fatal("zero-branch delta nonzero")
	}
}
