package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestReseedRestartsSequence(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("draw %d after reseed: got %d want %d", i, got, first[i])
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct seeds produced %d/64 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("two Split children produced identical first draws")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 10, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	// Chi-square-ish sanity check over a small modulus.
	r := New(6)
	const n, draws = 10, 1000000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("bucket %d: %d draws, want ~%v", i, c, want)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(8)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("Bool(%v) hit rate %v", p, got)
		}
	}
}

func TestBoolClamps(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		r := New(seed)
		m := int(n%64) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(11)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d want %d", got, sum)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(12)
	const n = 200000
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	p := 0.25
	const n = 200000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // mean of geometric on {0,1,...}
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("geometric mean %v, want ~%v", mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(14)
	for i := 0; i < 100; i++ {
		if r.Geometric(1) != 0 {
			t.Fatal("Geometric(1) != 0")
		}
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(15)
	z := NewZipf(r, 50, 1.1)
	if z.N() != 50 {
		t.Fatalf("N = %d", z.N())
	}
	for i := 0; i < 100000; i++ {
		v := z.Draw()
		if v < 0 || v >= 50 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(16)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	// Rank 0 must dominate rank 50 heavily under s=1.2.
	if counts[0] < counts[50]*10 {
		t.Fatalf("Zipf insufficiently skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// Monotone-ish decrease between far-apart ranks.
	if counts[0] <= counts[99] {
		t.Fatalf("Zipf not decreasing: rank0=%d rank99=%d", counts[0], counts[99])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(17)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	want := float64(n) / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d: %d, want ~%v", i, c, want)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	r := New(18)
	for _, fn := range []func(){
		func() { NewZipf(r, 0, 1) },
		func() { NewZipf(r, 10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkZipfDraw(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 1024, 1.1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= z.Draw()
	}
	_ = sink
}

func TestUint32Range(t *testing.T) {
	r := New(20)
	var hi, lo int
	for i := 0; i < 100000; i++ {
		v := r.Uint32()
		if v >= 1<<31 {
			hi++
		} else {
			lo++
		}
	}
	// Top bit should be set about half the time.
	if hi < 45000 || hi > 55000 {
		t.Fatalf("Uint32 top-bit bias: %d/%d", hi, lo)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(7).Split()
	b := New(7).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split children from equal parents diverged")
		}
	}
}

// TestThresholdBoolMatchesBool: the integer-threshold path must be a
// drop-in for Bool — same outcome AND same RNG stream consumption — for
// every probability, across draws. The suite calibration depends on this
// equivalence being exact, not statistical.
func TestThresholdBoolMatchesBool(t *testing.T) {
	ps := []float64{
		1e-300, 1e-18, 1.0 / (1 << 53), 3.0 / (1 << 53), 0.005, 0.01, 0.05,
		0.25, 0.3, 0.48, 0.5, 0.52, 2.0 / 3.0, 0.75, 0.96, 0.995,
		1 - 1.0/(1<<52), math.Nextafter(1, 0),
	}
	for _, p := range ps {
		thr, ok := BoolThreshold(p)
		if !ok {
			t.Fatalf("BoolThreshold(%g) rejected an in-range probability", p)
		}
		a, b := New(41), New(41)
		for i := 0; i < 20000; i++ {
			want := a.Bool(p)
			got := b.ThresholdBool(thr)
			if want != got {
				t.Fatalf("p=%g draw %d: Bool=%v ThresholdBool=%v", p, i, want, got)
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("p=%g: the two paths consumed different draw counts", p)
		}
	}
}

// TestBoolThresholdDegenerate: probabilities where Bool consumes no draw
// must be rejected, so callers keep the clamped no-draw path and streams
// stay aligned.
func TestBoolThresholdDegenerate(t *testing.T) {
	for _, p := range []float64{0, -1, 1, 1.5, math.Inf(1), math.Inf(-1), math.NaN()} {
		if _, ok := BoolThreshold(p); ok {
			t.Errorf("BoolThreshold(%v) accepted a degenerate probability", p)
		}
	}
}
