package xrand

import "math"

// Zipf draws integers in [0, n) with probability proportional to
// 1/(i+1)^s. It precomputes the cumulative distribution, so sampling is a
// binary search: O(log n) per draw with zero allocation. This matches the
// empirical observation that a small set of routines/branches dominates
// dynamic execution in real programs, which the workload generator uses to
// reproduce realistic branch locality.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s >= 0 (s == 0
// degenerates to the uniform distribution) driven by rng. It panics if
// n <= 0 or s < 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf called with n <= 0")
	}
	if s < 0 {
		panic("xrand: NewZipf called with s < 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against floating point shortfall
	return &Zipf{cdf: cdf, rng: rng}
}

// N returns the size of the sampler's support.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw returns the next Zipf-distributed index.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
