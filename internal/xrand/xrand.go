// Package xrand provides small, fast, deterministic pseudo-random number
// generators and distributions used throughout the simulator.
//
// The standard library's math/rand is avoided deliberately: experiment
// reproducibility requires generators whose sequences are stable across Go
// releases and platforms, and the simulator draws billions of variates, so
// the generators here are minimal and allocation-free. All generators are
// seeded explicitly; the same seed always yields the same sequence.
package xrand

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 is used to expand user seeds into full-entropy internal state,
// following the recommendation of Vigna for seeding xorshift-family PRNGs.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xorshift128+ pseudo-random generator. The zero value is not
// usable; construct with New. RNG is not safe for concurrent use; each
// goroutine should own its generator (see Split).
type RNG struct {
	s0, s1 uint64
}

// New returns a generator deterministically derived from seed. Distinct
// seeds give independent-looking streams; the same seed always gives the
// same stream.
func New(seed uint64) *RNG {
	var r RNG
	r.Reseed(seed)
	return &r
}

// Reseed resets the generator to the state derived from seed.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	r.s0 = splitMix64(&sm)
	r.s1 = splitMix64(&sm)
	// xorshift128+ requires a nonzero state; splitMix64 of any seed is
	// astronomically unlikely to produce two zeros, but guard anyway.
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

// Split derives a new independent generator from r's current state. The
// parent stream is advanced, so successive Split calls give distinct
// children. Useful for handing sub-generators to benchmark components so
// that adding draws in one component does not perturb another.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits.
	threshold := -n % n // (2^64 - n) mod n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p. Values of p outside [0,1] clamp to
// always-false / always-true respectively.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// BoolThreshold precomputes the integer form of a Bool(p) comparison: it
// returns the threshold t such that, for the 53-bit variate v = Uint64()>>11
// of a single draw, v < t exactly when Float64() < p for that same draw.
// The equivalence is exact: v and p·2⁵³ are both exactly representable
// (multiplying a float64 in (0,1) by 2⁵³ only shifts its exponent), so
// float64(v)·2⁻⁵³ < p ⇔ v < p·2⁵³ ⇔ v < ⌈p·2⁵³⌉ over the integers.
//
// ok reports whether p is in (0,1); degenerate probabilities — where Bool
// consumes no draw at all — must keep taking the clamped path, or the
// caller's RNG stream would diverge from Bool's.
func BoolThreshold(p float64) (t uint64, ok bool) {
	if !(p > 0 && p < 1) { // NaN lands here too
		return 0, false
	}
	return uint64(math.Ceil(p * (1 << 53))), true
}

// ThresholdBool draws one variate and compares it against a BoolThreshold
// value, replacing Bool's float conversion, multiply and compare with a
// shift and an integer compare on the hot path. For t = BoolThreshold(p) it
// consumes exactly one Uint64 and returns exactly what Bool(p) would.
func (r *RNG) ThresholdBool(t uint64) bool {
	return r.Uint64()>>11 < t
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		// Box-Muller polar transform.
		m := math.Sqrt(-2 * math.Log(s) / s)
		return u * m
	}
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success, i.e. a geometric variate with support {0, 1, 2, ...}. p must be
// in (0, 1]; p >= 1 always returns 0.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("xrand: Geometric called with p <= 0")
	}
	// Inversion: floor(ln(U) / ln(1-p)).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Log(u) / math.Log(1-p))
}
