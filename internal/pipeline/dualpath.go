package pipeline

import (
	"fmt"

	"branchconf/internal/predictor"
	"branchconf/internal/trace"
)

// Cycle-level selective dual-path execution (§1, application 1): when a
// low-confidence branch is fetched and the spare path context is free, the
// machine fetches both targets. The price is bandwidth — while a fork is
// live, half the fetch width feeds the alternate path — and the reward is
// that a covered misprediction causes no wrong-path window: the correct
// continuation was being fetched all along.
//
// This is the time-domain counterpart of apps.RunDualPath (which counts
// penalty cycles at branch granularity): here the effect shows up directly
// in IPC.

// DualPathConfig describes the dual-path machine.
type DualPathConfig struct {
	// FetchWidth and Depth as in Config.
	FetchWidth int
	Depth      int
	// ForkWidth is the number of fetch slots the alternate path consumes
	// per cycle while a fork is live (taken from the primary path).
	ForkWidth int
}

// DefaultDualPath96 returns the 4-wide, 8-deep machine with a 2-slot
// alternate path.
func DefaultDualPath96() DualPathConfig {
	return DualPathConfig{FetchWidth: 4, Depth: 8, ForkWidth: 2}
}

// DualPathStats reports a dual-path run.
type DualPathStats struct {
	Stats
	Forks       uint64 // second paths spawned
	CoveredMiss uint64 // mispredictions whose wrong-path window a fork removed
	ForkSlots   uint64 // fetch slots diverted to alternate paths
}

// RunDualPath drives the dual-path machine over src. The estimator
// selects fork candidates; only one fork may be live at a time (the
// paper's two-thread limit).
func RunDualPath(src trace.Source, pred predictor.Predictor, est ConfidenceSignal, cfg DualPathConfig) (DualPathStats, error) {
	if cfg.FetchWidth < 1 {
		return DualPathStats{}, fmt.Errorf("pipeline: FetchWidth must be >= 1, got %d", cfg.FetchWidth)
	}
	if cfg.Depth < 1 {
		return DualPathStats{}, fmt.Errorf("pipeline: Depth must be >= 1, got %d", cfg.Depth)
	}
	if cfg.ForkWidth < 1 || cfg.ForkWidth >= cfg.FetchWidth {
		return DualPathStats{}, fmt.Errorf("pipeline: ForkWidth %d must be in [1, FetchWidth)", cfg.ForkWidth)
	}
	if est == nil {
		return DualPathStats{}, fmt.Errorf("pipeline: dual-path execution requires a confidence estimator")
	}
	var st DualPathStats
	stream := &instrStream{src: src}
	// Consumed from head, appended at the tail; compacted when drained so
	// the hot loop stays allocation-free (see Run).
	var window []outBranch
	head := 0
	// forkUntil is the resolve cycle of the live fork (0 = no live fork);
	// forkCovers reports whether the forked branch was mispredicted.
	var forkUntil uint64
	forkCovers := false
	wrongPath := false
	streamDone := false

	for cycle := uint64(0); ; cycle++ {
		for head < len(window) && window[head].resolveAt <= cycle {
			b := window[head]
			head++
			if b.mispred {
				wrongPath = false
			}
		}
		if head == len(window) {
			window, head = window[:0], 0
		}
		if forkUntil != 0 && forkUntil <= cycle {
			// Fork resolves: a covered misprediction redirects instantly
			// (the alternate path is already flowing), so no wrong-path
			// window ever opened for it.
			forkUntil = 0
			forkCovers = false
		}

		if streamDone && head == len(window) && forkUntil == 0 {
			st.Cycles = cycle
			return st, nil
		}

		width := cfg.FetchWidth
		if forkUntil != 0 {
			width -= cfg.ForkWidth
			st.ForkSlots += uint64(cfg.ForkWidth)
		}
		for slot := 0; slot < width; {
			if wrongPath {
				st.WrongPath += uint64(width - slot)
				break
			}
			if streamDone {
				break
			}
			gap, isBranch, rec, ok, err := stream.nextBulk(width - slot)
			if err != nil {
				return st, err
			}
			if !ok {
				streamDone = true
				break
			}
			if !isBranch {
				st.Retired += uint64(gap)
				slot += gap
				continue
			}
			st.Retired++
			slot++
			st.Branches++
			confident := est.Confident(rec)
			incorrect := pred.Predict(rec) != rec.Taken
			pred.Update(rec)
			est.Update(rec, incorrect)

			forked := false
			if !confident && forkUntil == 0 {
				// Spare context free: follow both paths for this branch.
				forkUntil = cycle + uint64(cfg.Depth)
				forkCovers = incorrect
				forked = true
				st.Forks++
			}
			if incorrect {
				st.Misses++
				if forked && forkCovers {
					// Covered: the alternate path carries the correct
					// continuation; no wrong-path window.
					st.CoveredMiss++
				} else {
					wrongPath = true
				}
			}
			window = append(window, outBranch{resolveAt: cycle + uint64(cfg.Depth), mispred: incorrect && !(forked && forkCovers)})
		}
	}
}
