package pipeline

import (
	"errors"
	"testing"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

func benchSource(t *testing.T, name string, n uint64) trace.Source {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.FiniteSource(n)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestPerfectPredictionHitsFullWidth(t *testing.T) {
	// With an oracle predictor every fetch slot retires: IPC == width for
	// a stream long enough to amortise the drain.
	tr := make(trace.Trace, 1000)
	for i := range tr {
		pc := uint64(0x1000 + 8*(i%8))
		tr[i] = trace.Record{PC: pc, Target: pc + 64, Taken: true, Gap: 3}
	}
	st, err := Run(tr.Source(), predictor.AlwaysTaken{}, nil, Config{FetchWidth: 4, Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses != 0 || st.WrongPath != 0 {
		t.Fatalf("oracle run missed %d, wasted %d", st.Misses, st.WrongPath)
	}
	if st.Retired != 4000 { // 1000 branches + 3000 gap instructions
		t.Fatalf("retired %d", st.Retired)
	}
	if ipc := st.IPC(); ipc < 3.8 || ipc > 4.0 {
		t.Fatalf("IPC %v, want ~4", ipc)
	}
}

func TestMispredictionCostsDepth(t *testing.T) {
	// A single always-mispredicted branch stream: each misprediction puts
	// fetch on the wrong path for ~Depth cycles.
	tr := make(trace.Trace, 100)
	for i := range tr {
		tr[i] = trace.Record{PC: 0x1000, Target: 0x1040, Taken: true, Gap: 0}
	}
	st, err := Run(tr.Source(), predictor.NeverTaken{}, nil, Config{FetchWidth: 2, Depth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses != 100 {
		t.Fatalf("misses %d", st.Misses)
	}
	if st.WrongPath == 0 {
		t.Fatal("no wrong-path fetch recorded")
	}
	// IPC collapses: ~1 useful instruction per Depth cycles.
	if ipc := st.IPC(); ipc > 0.5 {
		t.Fatalf("IPC %v too high for an always-mispredicting stream", ipc)
	}
}

func TestStatsConsistency(t *testing.T) {
	src := benchSource(t, "groff", 50000)
	st, err := Run(src, predictor.Gshare4K(), nil, Default96())
	if err != nil {
		t.Fatal(err)
	}
	if st.Branches != 50000 {
		t.Fatalf("branches %d", st.Branches)
	}
	if st.Retired == 0 || st.Cycles == 0 {
		t.Fatalf("degenerate run %+v", st)
	}
	if st.IPC() <= 0 || st.IPC() > 4 {
		t.Fatalf("IPC %v", st.IPC())
	}
	if st.GateStalls != 0 {
		t.Fatal("ungated run stalled")
	}
}

func TestBetterPredictorMeansHigherIPC(t *testing.T) {
	big, err := Run(benchSource(t, "sdet", 100000), predictor.Gshare64K(), nil, Default96())
	if err != nil {
		t.Fatal(err)
	}
	weak, err := Run(benchSource(t, "sdet", 100000), predictor.NewBimodal(8), nil, Default96())
	if err != nil {
		t.Fatal(err)
	}
	if big.IPC() <= weak.IPC() {
		t.Fatalf("gshare-64K IPC %.3f not above weak bimodal %.3f", big.IPC(), weak.IPC())
	}
}

func TestGatingTradeOff(t *testing.T) {
	cfg := Default96()
	base, err := Run(benchSource(t, "real_gcc", 150000), predictor.Gshare4K(), core.PaperEstimator(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.GateThreshold = 2
	gated, err := Run(benchSource(t, "real_gcc", 150000), predictor.Gshare4K(), core.PaperEstimator(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gated.WrongPath >= base.WrongPath {
		t.Fatalf("gating did not reduce wrong-path fetch: %d vs %d", gated.WrongPath, base.WrongPath)
	}
	if gated.GateStalls == 0 {
		t.Fatal("gated run never stalled")
	}
	if gated.IPC() > base.IPC() {
		t.Fatalf("gating increased IPC (%.3f > %.3f); model should trade time for work", gated.IPC(), base.IPC())
	}
	// The pipeline-gating selling point: large waste reduction for a
	// modest IPC cost.
	ipcLoss := 1 - gated.IPC()/base.IPC()
	wasteCut := 1 - float64(gated.WrongPath)/float64(base.WrongPath)
	if wasteCut < 0.2 {
		t.Fatalf("waste cut only %.1f%%", 100*wasteCut)
	}
	if ipcLoss > 0.25 {
		t.Fatalf("IPC loss %.1f%% too large", 100*ipcLoss)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	src := benchSource(t, "groff", 10)
	for name, cfg := range map[string]Config{
		"width0":  {FetchWidth: 0, Depth: 4},
		"depth0":  {FetchWidth: 2, Depth: 0},
		"negGate": {FetchWidth: 2, Depth: 4, GateThreshold: -1},
	} {
		if _, err := Run(src, predictor.Gshare4K(), nil, cfg); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	if _, err := Run(src, predictor.Gshare4K(), nil, Config{FetchWidth: 2, Depth: 4, GateThreshold: 1}); err == nil {
		t.Fatal("gating without estimator accepted")
	}
}

func TestStatsZeroValues(t *testing.T) {
	var st Stats
	if st.IPC() != 0 || st.WasteFrac() != 0 {
		t.Fatal("zero stats nonzero metrics")
	}
}

// errSource fails after n records, for fault-injection coverage.
type errSource struct {
	n   int
	err error
}

func (e *errSource) Next() (trace.Record, error) {
	if e.n == 0 {
		return trace.Record{}, e.err
	}
	e.n--
	return trace.Record{PC: 0x1000, Target: 0x1040, Taken: true, Gap: 2}, nil
}

func TestRunPropagatesStreamError(t *testing.T) {
	boom := errors.New("trace truncated")
	_, err := Run(&errSource{n: 10, err: boom}, predictor.Gshare4K(), nil, Default96())
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap stream error", err)
	}
}

func TestRunEmptyStream(t *testing.T) {
	st, err := Run(trace.Trace{}.Source(), predictor.Gshare4K(), nil, Default96())
	if err != nil {
		t.Fatal(err)
	}
	if st.Retired != 0 || st.Branches != 0 {
		t.Fatalf("empty stream produced work %+v", st)
	}
}
