package pipeline

import (
	"testing"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
)

func TestDualPathAccountingConsistent(t *testing.T) {
	st, err := RunDualPath(benchSource(t, "real_gcc", 100000), predictor.Gshare4K(),
		core.PaperEstimator(4), DefaultDualPath96())
	if err != nil {
		t.Fatal(err)
	}
	if st.Branches != 100000 {
		t.Fatalf("branches %d", st.Branches)
	}
	if st.CoveredMiss > st.Misses || st.CoveredMiss > st.Forks {
		t.Fatalf("inconsistent coverage %+v", st)
	}
	if st.Forks == 0 || st.ForkSlots == 0 {
		t.Fatal("dual-path machine never forked")
	}
}

func TestDualPathBeatsBaselineOnHardCode(t *testing.T) {
	// On a hard benchmark with a deep pipeline, covering mispredictions
	// should buy more cycles than the diverted fetch slots cost.
	base, err := Run(benchSource(t, "real_gcc", 200000), predictor.Gshare4K(), nil,
		Config{FetchWidth: 4, Depth: 12})
	if err != nil {
		t.Fatal(err)
	}
	dual, err := RunDualPath(benchSource(t, "real_gcc", 200000), predictor.Gshare4K(),
		core.PaperEstimator(4), DualPathConfig{FetchWidth: 4, Depth: 12, ForkWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dual.IPC() <= base.IPC() {
		t.Fatalf("dual-path IPC %.3f not above baseline %.3f (covered %d/%d misses)",
			dual.IPC(), base.IPC(), dual.CoveredMiss, dual.Misses)
	}
}

func TestDualPathOracleCoversEveryFork(t *testing.T) {
	pred := predictor.Gshare4K()
	st, err := RunDualPath(benchSource(t, "sdet", 100000), pred,
		oracleFor(pred), DefaultDualPath96())
	if err != nil {
		t.Fatal(err)
	}
	// The oracle forks exactly on mispredictions; every fork that fires on
	// a miss covers it (only contention with a live fork leaks misses).
	if st.CoveredMiss != st.Forks {
		t.Fatalf("oracle forked %d but covered %d", st.Forks, st.CoveredMiss)
	}
	if st.CoveredMiss == 0 {
		t.Fatal("oracle never covered")
	}
}

// oracleFor builds a perfect confidence signal over p for upper-bound
// tests.
func oracleFor(p predictor.Predictor) ConfidenceSignal { return oracleImpl{p} }

type oracleImpl struct{ pred predictor.Predictor }

func (o oracleImpl) Confident(r trace.Record) bool { return o.pred.Predict(r) == r.Taken }
func (o oracleImpl) Update(trace.Record, bool)     {}

func TestDualPathRejectsBadConfig(t *testing.T) {
	src := benchSource(t, "groff", 10)
	est := core.PaperEstimator(4)
	for name, cfg := range map[string]DualPathConfig{
		"width0":     {FetchWidth: 0, Depth: 4, ForkWidth: 1},
		"depth0":     {FetchWidth: 4, Depth: 0, ForkWidth: 1},
		"fork0":      {FetchWidth: 4, Depth: 4, ForkWidth: 0},
		"fork=width": {FetchWidth: 4, Depth: 4, ForkWidth: 4},
	} {
		if _, err := RunDualPath(src, predictor.Gshare4K(), est, cfg); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	if _, err := RunDualPath(src, predictor.Gshare4K(), nil, DefaultDualPath96()); err == nil {
		t.Fatal("nil estimator accepted")
	}
}
