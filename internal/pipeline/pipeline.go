// Package pipeline is a cycle-driven front-end model for evaluating
// confidence-directed fetch policies at IPC level. It complements the
// branch-granularity models in internal/apps: here fetch bandwidth, branch
// resolution latency and wrong-path fetch are accounted per cycle, so
// policies report both performance (IPC) and wasted work.
//
// The machine is a W-wide in-order front end. Instructions stream from a
// branch trace (each record is Gap non-branch instructions followed by one
// conditional branch). A branch resolves Depth cycles after it is fetched;
// a mispredicted branch puts fetch on the wrong path until it resolves —
// those fetch slots are wasted work, and the time cost of a misprediction
// is the Depth-cycle refill this implies. Confidence-based gating stalls
// fetch while too many low-confidence branches are unresolved, saving
// wrong-path slots at the price of stalling correct-path fetch when the
// estimator was overly pessimistic.
package pipeline

import (
	"fmt"
	"io"

	"branchconf/internal/predictor"
	"branchconf/internal/trace"
)

// ConfidenceSignal is the estimator interface the front end consumes:
// core.Estimator satisfies it, and tests/experiments may substitute an
// oracle for upper-bound studies.
type ConfidenceSignal interface {
	// Confident reports the high/low signal for the upcoming prediction.
	Confident(r trace.Record) bool
	// Update trains the estimator with the prediction's correctness.
	Update(r trace.Record, incorrect bool)
}

// Config describes the modelled machine.
type Config struct {
	// FetchWidth is the number of instructions fetched per cycle.
	FetchWidth int
	// Depth is the number of cycles between fetching a branch and
	// resolving it (the misprediction penalty).
	Depth int
	// GateThreshold stalls fetch while at least this many low-confidence
	// branches are unresolved; 0 disables gating.
	GateThreshold int
}

// Default96 returns a mid-1990s-flavoured 4-wide, 8-deep machine.
func Default96() Config { return Config{FetchWidth: 4, Depth: 8} }

// Stats is the outcome of one pipeline run.
type Stats struct {
	Cycles     uint64 // total cycles until the stream drains
	Retired    uint64 // correct-path instructions fetched (eventually retired)
	WrongPath  uint64 // wrong-path instructions fetched (squashed work)
	GateStalls uint64 // fetch slots unused because the gate was closed
	Branches   uint64 // conditional branches retired
	Misses     uint64 // mispredicted branches
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// WasteFrac returns wrong-path work as a fraction of all fetched work.
func (s Stats) WasteFrac() float64 {
	total := s.Retired + s.WrongPath
	if total == 0 {
		return 0
	}
	return float64(s.WrongPath) / float64(total)
}

// outBranch tracks an unresolved branch in flight.
type outBranch struct {
	resolveAt uint64
	mispred   bool
	lowConf   bool
}

// instrStream expands a branch trace into an instruction-granularity
// stream: Gap non-branch instructions precede each branch.
type instrStream struct {
	src     trace.Source
	cur     trace.Record
	gapLeft int
	loaded  bool
	done    bool
}

// nextBulk returns the next fetch group from the stream: either gap > 0
// non-branch instructions (at most max of them — the remaining fetch slots
// this cycle), or the next conditional branch (gap == 0, rec valid). ok is
// false once the stream is exhausted. Consuming gap instructions in bulk
// instead of one call per instruction keeps the per-cycle cost at O(fetch
// groups), not O(instructions); the counts produced are identical.
func (s *instrStream) nextBulk(max int) (gap int, isBranch bool, rec trace.Record, ok bool, err error) {
	if s.done {
		return 0, false, trace.Record{}, false, nil
	}
	if !s.loaded {
		r, err := s.src.Next()
		if err == io.EOF {
			s.done = true
			return 0, false, trace.Record{}, false, nil
		}
		if err != nil {
			return 0, false, trace.Record{}, false, err
		}
		s.cur = r
		s.gapLeft = int(r.Gap)
		s.loaded = true
	}
	if s.gapLeft > 0 {
		k := s.gapLeft
		if k > max {
			k = max
		}
		s.gapLeft -= k
		return k, false, trace.Record{}, true, nil
	}
	s.loaded = false
	return 0, true, s.cur, true, nil
}

// Run drives the machine over src. The estimator may be nil when gating is
// disabled; with gating enabled it must be non-nil.
func Run(src trace.Source, pred predictor.Predictor, est ConfidenceSignal, cfg Config) (Stats, error) {
	if cfg.FetchWidth < 1 {
		return Stats{}, fmt.Errorf("pipeline: FetchWidth must be >= 1, got %d", cfg.FetchWidth)
	}
	if cfg.Depth < 1 {
		return Stats{}, fmt.Errorf("pipeline: Depth must be >= 1, got %d", cfg.Depth)
	}
	if cfg.GateThreshold < 0 {
		return Stats{}, fmt.Errorf("pipeline: GateThreshold must be >= 0, got %d", cfg.GateThreshold)
	}
	if cfg.GateThreshold > 0 && est == nil {
		return Stats{}, fmt.Errorf("pipeline: gating requires a confidence estimator")
	}
	var st Stats
	stream := &instrStream{src: src}
	// window is consumed from head and appended at the tail; compacting once
	// drained (instead of re-slicing) reuses its capacity, keeping the hot
	// loop allocation-free.
	var window []outBranch
	head := 0
	lowInFlight := 0
	wrongPath := false
	streamDone := false

	for cycle := uint64(0); ; cycle++ {
		// Resolve branches due this cycle (in fetch order).
		for head < len(window) && window[head].resolveAt <= cycle {
			b := window[head]
			head++
			if b.lowConf {
				lowInFlight--
			}
			if b.mispred {
				// Redirect: younger in-flight branches were wrong-path
				// bookkeeping only (none were real — fetch stopped
				// consuming the stream), so simply leave wrong-path mode.
				wrongPath = false
			}
		}
		if head == len(window) {
			window, head = window[:0], 0
		}

		if streamDone && head == len(window) {
			st.Cycles = cycle
			return st, nil
		}

		// Gate check: a closed gate idles the whole fetch group.
		if cfg.GateThreshold > 0 && lowInFlight >= cfg.GateThreshold {
			st.GateStalls += uint64(cfg.FetchWidth)
			continue
		}

		// Fetch up to FetchWidth instructions.
		for slot := 0; slot < cfg.FetchWidth; {
			if wrongPath {
				// Fetching down the mispredicted path: pure waste for the
				// rest of the group.
				st.WrongPath += uint64(cfg.FetchWidth - slot)
				break
			}
			if streamDone {
				break
			}
			gap, isBranch, rec, ok, err := stream.nextBulk(cfg.FetchWidth - slot)
			if err != nil {
				return st, err
			}
			if !ok {
				streamDone = true
				break
			}
			if !isBranch {
				st.Retired += uint64(gap)
				slot += gap
				continue
			}
			st.Retired++
			slot++
			st.Branches++
			confident := true
			if est != nil {
				confident = est.Confident(rec)
			}
			incorrect := pred.Predict(rec) != rec.Taken
			pred.Update(rec)
			if est != nil {
				est.Update(rec, incorrect)
			}
			if incorrect {
				st.Misses++
				wrongPath = true
			}
			b := outBranch{resolveAt: cycle + uint64(cfg.Depth), mispred: incorrect, lowConf: !confident}
			if b.lowConf {
				lowInFlight++
			}
			window = append(window, b)
			if incorrect {
				// Remaining slots this cycle go down the wrong path.
				continue
			}
		}
	}
}
