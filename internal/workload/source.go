package workload

import (
	"branchconf/internal/trace"
	"branchconf/internal/xrand"
)

// walker executes a Program, emitting an unbounded branch-record stream.
// It implements trace.Source (Next never returns io.EOF; wrap with
// trace.Limit for a finite trace).
type walker struct {
	prog    *Program
	rng     *xrand.RNG
	zipf    *xrand.Zipf
	ctx     Ctx
	visits  []uint64 // per-routine visit counts, feeding Ctx.Visit
	current int      // routine the Markov walk sits in
	// queue holds records pending emission from the current routine
	// expansion; head tracks the read position to avoid re-slicing.
	queue []trace.Record
	head  int
}

// newWalker returns a walker over prog using walk randomness derived from
// seed (independent of the Spec's structural seed).
func newWalker(prog *Program, seed uint64) *walker {
	rng := xrand.New(seed)
	return &walker{
		prog:   prog,
		rng:    rng,
		zipf:   xrand.NewZipf(rng.Split(), len(prog.routines), prog.zipfSkew),
		ctx:    Ctx{RNG: rng},
		visits: make([]uint64, len(prog.routines)),
	}
}

// Next implements trace.Source; it never ends.
func (w *walker) Next() (trace.Record, error) {
	for w.head >= len(w.queue) {
		w.expandRoutine()
	}
	r := w.queue[w.head]
	w.head++
	return r, nil
}

// step advances the Markov walk: usually one of the current routine's
// preferred successors, occasionally a popularity-weighted global jump.
func (w *walker) step() int {
	if w.rng.Bool(globalJumpProb) {
		w.current = w.zipf.Draw()
		return w.current
	}
	u := w.rng.Float64()
	for i, c := range succCumWeights {
		if u < c {
			w.current = w.prog.succs[w.current][i]
			return w.current
		}
	}
	w.current = w.prog.succs[w.current][numSuccessors-1]
	return w.current
}

// expandRoutine appends one full routine execution to the queue.
func (w *walker) expandRoutine() {
	w.queue = w.queue[:0]
	w.head = 0
	ri := w.step()
	rt := &w.prog.routines[ri]
	w.ctx.Visit = w.visits[ri]
	w.visits[ri]++
	for i := range rt.elems {
		e := &rt.elems[i]
		if e.body == nil {
			w.ctx.LoopIter = 0
			w.emitPlain(e.site)
			continue
		}
		trips := e.trip.Draw(w.rng)
		for it := 0; it < trips; it++ {
			w.ctx.LoopIter = it
			for _, b := range e.body {
				w.emitPlain(b)
			}
			w.emitLoopBranch(e.site, it < trips-1)
		}
	}
}

// emitPlain resolves and enqueues one plain branch site.
func (w *walker) emitPlain(site int) {
	s := &w.prog.sites[site]
	w.emit(s, s.Behavior.Outcome(&w.ctx))
}

// emitLoopBranch enqueues the loop-closing branch with a forced direction.
func (w *walker) emitLoopBranch(site int, taken bool) {
	w.emit(&w.prog.sites[site], taken)
}

func (w *walker) emit(s *Site, taken bool) {
	w.ctx.Hist <<= 1
	if taken {
		w.ctx.Hist |= 1
	}
	w.queue = append(w.queue, trace.Record{
		PC:     s.PC,
		Target: s.Target,
		Taken:  taken,
		Gap:    uint32(2 + w.rng.Intn(9)), // 2-10 non-branch instructions
	})
}
