// Package workload synthesises the benchmark suite driving all experiments.
//
// The paper uses the IBS benchmark traces (Uhlig et al., ISCA '95), which
// are not distributable. This package replaces them with nine deterministic
// synthetic benchmarks carrying the same names. Each benchmark is a program
// model: a set of routines containing static branch sites, where every site
// follows one of several behaviour classes observed in real code (strongly
// biased branches, loop exits, short repeating patterns, history-correlated
// branches, data-dependent random branches, phase-changing branches). The
// walker executes routines with Zipf-distributed popularity, producing a
// branch trace with realistic locality and history structure.
//
// The suite is calibrated against the paper's two anchor measurements: the
// composite misprediction rate of a 64K-entry gshare (paper: 3.85%) and of
// a 4K-entry gshare (paper: 8.6%). See suite_test.go for the calibration
// checks.
package workload

import (
	"math/bits"

	"branchconf/internal/xrand"
)

// Ctx carries the execution state a behaviour may consult when resolving a
// branch: the benchmark's private random stream, the global history of
// recent branch outcomes (bit 0 = most recent, 1 = taken), the executing
// routine's visit count, and the current loop iteration index (0 outside
// loops). Visit and LoopIter let pattern behaviours stay phase-locked to
// control flow the way real data-driven branches are, instead of drifting
// independently.
type Ctx struct {
	RNG      *xrand.RNG
	Hist     uint64
	Visit    uint64
	LoopIter int
}

// Behavior resolves successive dynamic outcomes of one static branch site.
// Implementations may keep per-site state (pattern position, phase counter);
// each site owns a private instance.
type Behavior interface {
	Outcome(ctx *Ctx) bool
}

// Biased resolves taken with fixed probability P, independent of history —
// the bread-and-butter conditional guarding an uncommon case. It is by far
// the most executed behaviour class (roughly half of every suite mix), so
// its draw is the integer-threshold form of RNG.Bool: the float64
// comparison folds into a precomputed uint64 threshold against the raw RNG
// word, exactly draw- and outcome-equivalent to Bool(P) (see
// xrand.BoolThreshold; the calibration suite pins the anchors).
type Biased struct {
	P float64

	thr    uint64 // xrand.BoolThreshold(P), precomputed on first use
	inOpen bool   // P in (0,1): the threshold path draws; clamps do not
	init   bool
}

// Outcome implements Behavior.
func (b *Biased) Outcome(ctx *Ctx) bool {
	if !b.init {
		b.thr, b.inOpen = xrand.BoolThreshold(b.P)
		b.init = true
	}
	if !b.inOpen {
		return b.P >= 1
	}
	return ctx.RNG.ThresholdBool(b.thr)
}

// Periodic cycles through a fixed direction pattern — switch-like and
// unrolled-loop-like branches that a global-history predictor learns
// perfectly once warmed up. The pattern position advances once per
// execution.
type Periodic struct {
	Pattern []bool
	pos     int
}

// Outcome implements Behavior.
func (p *Periodic) Outcome(*Ctx) bool {
	out := p.Pattern[p.pos]
	p.pos++
	if p.pos == len(p.Pattern) {
		p.pos = 0
	}
	return out
}

// VisitPattern resolves from the routine's visit count: every execution in
// the same routine visit takes the same direction, cycling across visits.
// Models branches guarding per-call modes (argument flags, state machines).
// Sites sharing a pattern differ only by Invert, keeping them mutually
// predictable from history.
// An Epoch > 1 slows the pattern: the direction holds for Epoch
// consecutive visits before stepping, modelling modes that change rarely
// (configuration rechecks, buffer refills) versus every call (Epoch == 1).
type VisitPattern struct {
	Pattern []bool
	Invert  bool
	Epoch   uint64
}

// Outcome implements Behavior.
func (v *VisitPattern) Outcome(ctx *Ctx) bool {
	e := v.Epoch
	if e == 0 {
		e = 1
	}
	out := v.Pattern[int((ctx.Visit/e)%uint64(len(v.Pattern)))]
	if v.Invert {
		out = !out
	}
	return out
}

// IterPattern resolves from the current loop iteration index, replaying the
// same direction sequence every loop visit. Models branches driven by the
// loop induction variable (stride tests, unroll tails).
type IterPattern struct {
	Pattern []bool
}

// Outcome implements Behavior.
func (p *IterPattern) Outcome(ctx *Ctx) bool {
	return p.Pattern[ctx.LoopIter%len(p.Pattern)]
}

// Correlated resolves as the parity of recent global outcomes selected by
// Mask, optionally inverted, with independent noise flips at rate Noise.
// This is the branch-correlation structure (Pan, So & Rahmeh) that makes
// global-history predictors win; the noise bounds how well any predictor
// can do.
type Correlated struct {
	Mask   uint64
	Invert bool
	Noise  float64
}

// Outcome implements Behavior.
func (c *Correlated) Outcome(ctx *Ctx) bool {
	out := bits.OnesCount64(ctx.Hist&c.Mask)%2 == 1
	if c.Invert {
		out = !out
	}
	if c.Noise > 0 && ctx.RNG.Bool(c.Noise) {
		out = !out
	}
	return out
}

// PhaseBiased alternates between two biases every PhaseLen executions,
// modelling branches whose behaviour tracks program phases (input buffers,
// allocation epochs). The transitions defeat profile-based prediction and
// stress confidence tables.
type PhaseBiased struct {
	PHigh, PLow float64
	PhaseLen    int
	count       int
	low         bool
}

// Outcome implements Behavior.
func (p *PhaseBiased) Outcome(ctx *Ctx) bool {
	if p.count >= p.PhaseLen {
		p.count = 0
		p.low = !p.low
	}
	p.count++
	if p.low {
		return ctx.RNG.Bool(p.PLow)
	}
	return ctx.RNG.Bool(p.PHigh)
}

// TripCount models a loop's iteration count distribution. Fixed-trip loops
// are fully predictable by a history register at least as long as the trip
// count; variable-trip loops force roughly one misprediction per loop
// visit (the exit).
type TripCount struct {
	// Mean is the average trip count; must be >= 1.
	Mean int
	// Jitter is the maximum +/- uniform variation applied per loop entry.
	// Zero makes the loop fixed-trip.
	Jitter int
}

// Draw returns the trip count for one loop entry (always >= 1).
func (t TripCount) Draw(rng *xrand.RNG) int {
	n := t.Mean
	if t.Jitter > 0 {
		n += rng.Intn(2*t.Jitter+1) - t.Jitter
	}
	if n < 1 {
		n = 1
	}
	return n
}
