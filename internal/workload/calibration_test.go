package workload

import (
	"io"
	"testing"

	"branchconf/internal/predictor"
)

// mispredictRate replays n branches of spec s through p.
func mispredictRate(t *testing.T, s Spec, p predictor.Predictor, n uint64) float64 {
	t.Helper()
	src, err := s.FiniteSource(n)
	if err != nil {
		t.Fatal(err)
	}
	var branches, miss uint64
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if p.Predict(r) != r.Taken {
			miss++
		}
		p.Update(r)
		branches++
	}
	return float64(miss) / float64(branches)
}

const calibrationBranches = 400_000

// TestCalibrationGshare64K checks the suite's primary anchor: the paper's
// composite misprediction rate for the 64K gshare is 3.85%. The synthetic
// suite must land near it (the exact value is recorded in EXPERIMENTS.md).
func TestCalibrationGshare64K(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs full-length runs")
	}
	sum := 0.0
	rates := map[string]float64{}
	for _, s := range Suite() {
		r := mispredictRate(t, s, predictor.Gshare64K(), calibrationBranches)
		rates[s.Name] = r
		sum += r
	}
	composite := sum / float64(len(Suite()))
	t.Logf("gshare-64K composite misprediction: %.2f%% (paper: 3.85%%) per-benchmark: %v", 100*composite, rates)
	if composite < 0.030 || composite > 0.048 {
		t.Fatalf("composite %.2f%% outside calibration band [3.0%%, 4.8%%]", 100*composite)
	}
}

// TestCalibrationGshare4K checks the Section 5.3 anchor: 8.6% composite
// misprediction for the 4K gshare.
func TestCalibrationGshare4K(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs full-length runs")
	}
	sum := 0.0
	for _, s := range Suite() {
		sum += mispredictRate(t, s, predictor.Gshare4K(), calibrationBranches)
	}
	composite := sum / float64(len(Suite()))
	t.Logf("gshare-4K composite misprediction: %.2f%% (paper: 8.6%%)", 100*composite)
	if composite < 0.065 || composite > 0.105 {
		t.Fatalf("composite %.2f%% outside calibration band [6.5%%, 10.5%%]", 100*composite)
	}
}

// TestCalibrationExtremes pins the Fig. 9 structure: jpeg_play is the
// best-predicted benchmark and real_gcc the worst.
func TestCalibrationExtremes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs full-length runs")
	}
	rates := map[string]float64{}
	for _, s := range Suite() {
		rates[s.Name] = mispredictRate(t, s, predictor.Gshare64K(), calibrationBranches)
	}
	for name, r := range rates {
		if name != "jpeg_play" && r <= rates["jpeg_play"] {
			t.Errorf("%s (%.2f%%) predicted no worse than jpeg_play (%.2f%%)", name, 100*r, 100*rates["jpeg_play"])
		}
		if name != "real_gcc" && r >= rates["real_gcc"] {
			t.Errorf("%s (%.2f%%) predicted no better than real_gcc (%.2f%%)", name, 100*r, 100*rates["real_gcc"])
		}
	}
}
