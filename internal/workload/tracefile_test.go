package workload

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"branchconf/internal/trace"
)

// writeTestTrace converts a synthetic benchmark's first n records to a
// ChampSim trace on disk and returns the path plus the records the
// ChampSim target-recovery rule will reproduce.
func writeTestTrace(t *testing.T, dir string, n uint64) string {
	t.Helper()
	spec, err := ByName("groff")
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.FiniteSource(n)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "groff.champsim.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewChampSimWriter(f)
	if _, err := w.WriteAll(src); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTraceSpecRoundTrip(t *testing.T) {
	const n = 5000
	path := writeTestTrace(t, t.TempDir(), n)
	spec, err := TraceSpec("groff-trace", path)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.IsTrace() {
		t.Fatal("TraceSpec did not mark the spec trace-backed")
	}
	if spec.TraceCount != n {
		t.Fatalf("TraceCount = %d, want %d", spec.TraceCount, n)
	}
	if spec.DefaultBranches != n {
		t.Fatalf("DefaultBranches = %d, want %d", spec.DefaultBranches, n)
	}
	// The full replay must emit exactly the scanned records, twice over
	// (replays are deterministic).
	var first []trace.Record
	for replay := 0; replay < 2; replay++ {
		src, err := spec.FiniteSource(0)
		if err != nil {
			t.Fatal(err)
		}
		var got []trace.Record
		for {
			r, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, r)
		}
		if len(got) != n {
			t.Fatalf("replay %d emitted %d records, want %d", replay, len(got), n)
		}
		if replay == 0 {
			first = got
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("replay divergence at record %d: %+v vs %+v", i, got[i], first[i])
				}
			}
		}
	}
	// Budgets above the trace's count clamp instead of starving artifact
	// validation.
	buf, err := Materialize(spec, n*10)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(buf.Len()) != n {
		t.Fatalf("Materialize over-budget: %d records, want clamp to %d", buf.Len(), n)
	}
	// Synthetic-only affordances reject trace specs loudly.
	if _, err := spec.Build(); err == nil {
		t.Error("Build on a trace-backed spec should fail")
	}
	if _, err := spec.NewSourceSeeded(1); err == nil {
		t.Error("NewSourceSeeded on a trace-backed spec should fail")
	}
}

// TestTraceSpecCacheKeyIsContentAddressed pins the identity rule: same
// bytes under a different path share a key; different bytes differ; the
// path never appears in the key.
func TestTraceSpecCacheKeyIsContentAddressed(t *testing.T) {
	dir := t.TempDir()
	path := writeTestTrace(t, dir, 1000)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(dir, "renamed.trace")
	if err := os.WriteFile(other, data, 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := TraceSpec("bench", path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TraceSpec("bench", other)
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheKey() != b.CacheKey() {
		t.Errorf("same bytes, different keys:\n%s\n%s", a.CacheKey(), b.CacheKey())
	}
	if strings.Contains(a.CacheKey(), path) || strings.Contains(a.CacheKey(), dir) {
		t.Errorf("cache key leaks the path: %s", a.CacheKey())
	}
	smaller := writeTestTrace(t, t.TempDir(), 900)
	c, err := TraceSpec("bench", smaller)
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheKey() == c.CacheKey() {
		t.Error("different trace bytes share a cache key")
	}
}

// TestTraceSpecFailClosed pins the hardening contract end to end: corrupt
// files never become specs, and a file changed after its scan fails its
// replay rather than feeding a different workload under the old identity.
func TestTraceSpecFailClosed(t *testing.T) {
	dir := t.TempDir()
	path := writeTestTrace(t, dir, 500)

	// Truncated mid-record: rejected at scan time.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.trace")
	if err := os.WriteFile(trunc, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := TraceSpec("x", trunc); err == nil || !strings.Contains(err.Error(), "truncated record") {
		t.Errorf("truncated trace: err = %v, want truncated-record scan failure", err)
	}

	// No conditional branches at all: rejected.
	empty := filepath.Join(dir, "empty.trace")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := TraceSpec("x", empty); err == nil || !strings.Contains(err.Error(), "no conditional branches") {
		t.Errorf("empty trace: err = %v, want no-branches failure", err)
	}

	// File shrinks after the scan: the replay fails, not silently shortens.
	spec, err := TraceSpec("x", path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/128*64], 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := spec.FiniteSource(0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err = src.Next()
		if err != nil {
			break
		}
	}
	if err == io.EOF || !strings.Contains(err.Error(), "file changed since its scan") {
		t.Errorf("shrunken trace replay: err = %v, want changed-since-scan failure", err)
	}

	// Same length, different bytes: caught by the digest on a full read.
	mut := append([]byte(nil), data...)
	mut[0] ^= 0x10 // perturb the first ip byte; still a valid record
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	src, err = spec.FiniteSource(0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err = src.Next()
		if err != nil {
			break
		}
	}
	if err == io.EOF || !strings.Contains(err.Error(), "changed since its scan") {
		t.Errorf("mutated trace replay: err = %v, want digest failure", err)
	}
}
