package workload

import (
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"strings"

	"branchconf/internal/trace"
)

// Trace-backed benchmarks. A Spec whose TraceFile is set draws its records
// from a ChampSim instruction trace on disk instead of a synthetic program
// walk: TraceSpec scans the file once — validating every record the way
// the codec demands, counting conditional branches, and hashing the file
// bytes — and the resulting Spec routes NewSource/FiniteSource through a
// ChampSimReader. The scan's digest and count, not the path, form the
// spec's cache identity, so artifacts warm across machines and temp
// directories that hold the same trace bytes under different names.

// IsTrace reports whether the spec is trace-backed.
func (s Spec) IsTrace() bool { return s.TraceFile != "" }

// traceCacheKey is the canonical identity of a trace-backed spec: the
// benchmark name and the scanned content digest and branch count. The
// on-disk path is deliberately excluded — identity is the bytes.
func (s Spec) traceCacheKey() string {
	return fmt.Sprintf("trace{Name:%s Sha256:%s Count:%d}", s.Name, s.TraceDigest, s.TraceCount)
}

// openTrace opens the trace file, hashing the raw stored bytes as they are
// read and transparently decompressing a ".gz" payload.
func openTrace(path string) (f *os.File, h hash.Hash, in io.Reader, err error) {
	f, err = os.Open(path)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("workload: opening trace: %w", err)
	}
	h = sha256.New()
	in = io.TeeReader(f, h)
	if strings.HasSuffix(path, ".gz") {
		zr, zerr := gzip.NewReader(in)
		if zerr != nil {
			f.Close()
			return nil, nil, nil, fmt.Errorf("workload: opening trace %s: %w", path, zerr)
		}
		in = zr
	}
	return f, h, in, nil
}

// TraceSpec scans a ChampSim instruction trace and returns a Spec backed
// by it. The scan is fail-closed: any malformed record rejects the whole
// file here, before a spec exists that could reach materialization. The
// spec's DefaultBranches is the trace's conditional-branch count, and its
// cache identity is content-addressed (digest + count), never the path.
// An empty name defaults to the file's base name without extensions.
func TraceSpec(name, path string) (Spec, error) {
	if name == "" {
		name = filepath.Base(path)
		for {
			ext := filepath.Ext(name)
			if ext == "" || ext == name {
				break
			}
			name = strings.TrimSuffix(name, ext)
		}
	}
	f, h, in, err := openTrace(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	r := trace.NewChampSimReader(in)
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			return Spec{}, fmt.Errorf("workload: scanning trace %s: %w", path, err)
		}
	}
	if r.Count() == 0 {
		return Spec{}, fmt.Errorf("workload: trace %s holds no conditional branches (%d instructions)", path, r.Instructions())
	}
	return Spec{
		Name:            name,
		TraceFile:       path,
		TraceDigest:     hex.EncodeToString(h.Sum(nil)),
		TraceCount:      r.Count(),
		DefaultBranches: r.Count(),
	}, nil
}

// traceFileSource replays up to n records from the spec's trace file. It
// owns the file handle, closing it at the limit, at end of stream, or on
// the first error; when the whole file is consumed, the stored bytes are
// re-verified against the spec's scan digest, so a trace that changed on
// disk since TraceSpec ran fails closed instead of silently feeding a
// different workload under the old cache identity.
type traceFileSource struct {
	spec      Spec
	f         *os.File
	hash      hash.Hash
	src       *trace.ChampSimReader
	remaining uint64
	err       error // sticky terminal state (io.EOF or a failure)
}

func (s Spec) newTraceSource(n uint64) (trace.Source, error) {
	f, h, in, err := openTrace(s.TraceFile)
	if err != nil {
		return nil, err
	}
	return &traceFileSource{
		spec:      s,
		f:         f,
		hash:      h,
		src:       trace.NewChampSimReader(in),
		remaining: n,
	}, nil
}

// finish records the terminal state and releases the file.
func (t *traceFileSource) finish(err error) error {
	t.err = err
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
	return err
}

// verifyDigest compares the bytes read so far against the scan digest.
// Only meaningful once the underlying reader has reached end of stream.
func (t *traceFileSource) verifyDigest() error {
	if got := hex.EncodeToString(t.hash.Sum(nil)); got != t.spec.TraceDigest {
		return fmt.Errorf("workload: trace %s changed since its scan: digest %s, spec pins %s",
			t.spec.TraceFile, got, t.spec.TraceDigest)
	}
	return nil
}

func (t *traceFileSource) Next() (trace.Record, error) {
	if t.err != nil {
		return trace.Record{}, t.err
	}
	if t.remaining == 0 {
		// Limit reached. If the file is in fact exhausted too, drain the
		// reader's clean EOF so the digest can be verified; a genuine
		// early stop (budget below the trace's count) skips verification.
		if _, err := t.src.Next(); err == io.EOF {
			if verr := t.verifyDigest(); verr != nil {
				return trace.Record{}, t.finish(verr)
			}
		}
		return trace.Record{}, t.finish(io.EOF)
	}
	rec, err := t.src.Next()
	if err == io.EOF {
		// FiniteSource clamps the budget to the scanned count, so running
		// dry early means the file shrank or changed since the scan.
		return trace.Record{}, t.finish(fmt.Errorf(
			"workload: trace %s ended after %d records, spec pins %d (file changed since its scan?)",
			t.spec.TraceFile, t.src.Count(), t.spec.TraceCount))
	}
	if err != nil {
		return trace.Record{}, t.finish(err)
	}
	t.remaining--
	return rec, nil
}
