package workload

import (
	"fmt"
	"sync"
	"sync/atomic"

	"branchconf/internal/artifact"
	"branchconf/internal/trace"
)

// Process-wide materialized-trace cache. Every experiment over a given
// (benchmark, seed, branch budget) consumes the identical record stream, so
// the walk is generated once and replayed from a compact ReplayBuffer
// thereafter. Entries are keyed by the full Spec (which embeds the
// benchmark name and seed) plus the resolved budget; a Spec is a pure value
// type, so equal keys guarantee byte-identical traces.

type memoKey struct {
	spec Spec
	n    uint64
}

type memoEntry struct {
	once sync.Once
	buf  *trace.ReplayBuffer
	err  error
}

var memo struct {
	mu sync.Mutex
	m  map[memoKey]*memoEntry
}

// Cache observability counters (atomic: bumped on the Materialize fast
// path).
var memoHits, memoMisses atomic.Uint64

// Materialize returns the shared replay buffer for spec's finite trace of n
// records (DefaultBranches when n == 0), generating it on first use. It is
// safe for concurrent use: callers racing on the same key block on a single
// generation and share its result, including any error.
//
// Buffers stay cached for the life of the process (about 4-5 bytes per
// branch; ~5 MB for a default one-million-branch benchmark). Callers
// needing a one-shot materialization without retention should use
// trace.Materialize directly.
func Materialize(spec Spec, n uint64) (*trace.ReplayBuffer, error) {
	if n == 0 {
		n = spec.DefaultBranches
	}
	if spec.IsTrace() && n > spec.TraceCount {
		// The file holds what it holds; resolving the budget here keeps
		// the memo key, the artifact key, and the buffer's record count
		// agreeing with what the source can actually emit.
		n = spec.TraceCount
	}
	key := memoKey{spec: spec, n: n}
	memo.mu.Lock()
	e := memo.m[key]
	if e == nil {
		if memo.m == nil {
			memo.m = make(map[memoKey]*memoEntry)
		}
		e = &memoEntry{}
		memo.m[key] = e
		memoMisses.Add(1)
	} else {
		memoHits.Add(1)
	}
	memo.mu.Unlock()
	e.once.Do(func() {
		diskKey := replayArtifactKey(spec, n)
		if s := artifact.Default(); s != nil {
			if payload, ok := s.Get(artifact.KindReplayBuffer, diskKey); ok {
				buf, err := trace.UnmarshalReplayBuffer(payload)
				if err == nil && uint64(buf.Len()) == n {
					e.buf = buf
					return
				}
				// The record passed checksum verification but its payload
				// does not decode to this trace; fail closed and regenerate.
				s.Drop(artifact.KindReplayBuffer, diskKey)
			}
		}
		src, err := spec.FiniteSource(n)
		if err != nil {
			e.err = err
			return
		}
		e.buf, e.err = trace.Materialize(src, 0)
		if e.err == nil {
			if s := artifact.Default(); s != nil {
				if payload, perr := e.buf.MarshalBinary(); perr == nil {
					// Best effort: a full disk or unwritable store only
					// costs the next process a cold start. The store owns
					// retry and degradation, so the error is ignored here.
					_ = s.Put(artifact.KindReplayBuffer, diskKey, payload)
				}
			}
		}
	})
	return e.buf, e.err
}

// replayArtifactKey is the canonical disk-store key for one materialized
// trace: the payload codec version, the full spec identity, and the
// resolved branch budget.
func replayArtifactKey(spec Spec, n uint64) string {
	return fmt.Sprintf("replay|v%d|%s|n=%d", artifact.FormatVersion, spec.CacheKey(), n)
}

// MaterializeStats reports cache hits and misses since process start (or
// the last ResetMaterializeCache).
func MaterializeStats() (hits, misses uint64) {
	return memoHits.Load(), memoMisses.Load()
}

// MaterializeReport returns the memo's counters in the uniform per-tier
// quad every engine cache reports (see artifact.TierStats). The memo never
// evicts — buffers live for the process — so evictions are always zero.
func MaterializeReport() artifact.TierStats {
	return artifact.TierStats{
		Hits:          memoHits.Load(),
		Misses:        memoMisses.Load(),
		ResidentBytes: MaterializeFootprint(),
	}
}

// MaterializeFootprint returns the total payload bytes held by cached
// replay buffers.
func MaterializeFootprint() uint64 {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	var total uint64
	for _, e := range memo.m {
		if e.buf != nil {
			total += e.buf.Footprint()
		}
	}
	return total
}

// ResetMaterializeCache drops every cached buffer and zeroes the counters.
// Intended for tests and long-lived processes that want to bound memory
// between experiment batches.
func ResetMaterializeCache() {
	memo.mu.Lock()
	memo.m = nil
	memo.mu.Unlock()
	memoHits.Store(0)
	memoMisses.Store(0)
}
