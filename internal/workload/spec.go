package workload

import (
	"fmt"
	"sort"

	"branchconf/internal/trace"
)

// DefaultBranches is the standard per-benchmark dynamic branch budget:
// every suite benchmark defaults to one million branches, as in the paper.
const DefaultBranches uint64 = 1_000_000

// Mix gives the relative weights of the plain-site behaviour classes when a
// program is built. Weights need not sum to 1; they are normalised.
type Mix struct {
	Biased     float64 // fixed-probability branches
	Periodic   float64 // short repeating patterns
	Correlated float64 // functions of recent global history (plus noise)
	Phase      float64 // bias flips between program phases
	Random     float64 // 50/50 data-dependent branches
}

// Spec describes one synthetic benchmark: its structural shape (code
// footprint, loop structure, routine popularity skew) and its hardness
// (behaviour mixture, correlation noise, trip-count variability). Programs
// and traces are pure functions of the Spec, so experiments are exactly
// reproducible.
type Spec struct {
	// Name identifies the benchmark (IBS names are used for the standard
	// suite).
	Name string
	// Seed drives both program construction and the walk.
	Seed uint64
	// Routines is the number of routines (address-space regions); larger
	// values mean a bigger static branch footprint and more table aliasing.
	Routines int
	// PlainSites is the mean number of straight-line branch sites per
	// routine.
	PlainSites int
	// Loops is the number of loops per routine.
	Loops int
	// LoopBody is the mean number of branch sites inside each loop body.
	LoopBody int
	// TripMean is the mean loop trip count (per-loop counts are drawn
	// around it at build time).
	TripMean int
	// TripJitter bounds per-entry trip variation for variable-trip loops.
	TripJitter int
	// VariableTripFrac is the fraction of loops with per-entry variable
	// trip counts (their exits are inherently mispredicted).
	VariableTripFrac float64
	// ZipfSkew sets routine popularity skew (0 = uniform).
	ZipfSkew float64
	// Mix weights the plain-site behaviour classes.
	Mix Mix
	// NoiseLo and NoiseHi bound the per-site noise of correlated branches.
	NoiseLo, NoiseHi float64
	// DefaultBranches is the dynamic branch budget experiments use for
	// this benchmark unless overridden.
	DefaultBranches uint64
	// TraceFile, when set, makes the benchmark trace-backed: records come
	// from this ChampSim instruction trace instead of a synthetic walk.
	// Construct trace-backed specs with TraceSpec, which fills the
	// companion identity fields from a validating scan of the file.
	TraceFile string
	// TraceDigest is the SHA-256 (hex) of the trace file's stored bytes;
	// with TraceCount it forms the spec's content-addressed cache
	// identity, replays re-verify against it.
	TraceDigest string
	// TraceCount is the trace's conditional-branch count; budgets clamp
	// to it.
	TraceCount uint64
}

// Build constructs the benchmark's program. Trace-backed specs have no
// synthetic program to build.
func (s Spec) Build() (*Program, error) {
	if s.IsTrace() {
		return nil, fmt.Errorf("workload: %s is trace-backed (%s); it has no synthetic program", s.Name, s.TraceFile)
	}
	return build(s)
}

// CacheKey returns a canonical string identity for the spec, covering every
// field (traces are pure functions of the Spec, so equal keys guarantee
// byte-identical traces). It keys the persistent artifact store
// (internal/artifact); a Spec shape change alters the key and simply
// cold-starts affected entries. Trace-backed specs key on their scanned
// content digest, not their path, so the same trace bytes warm-start from
// any location.
func (s Spec) CacheKey() string {
	if s.IsTrace() {
		return s.traceCacheKey()
	}
	return fmt.Sprintf("%+v", s)
}

// NewSource builds the program and returns an unbounded trace source
// walking it. The walk seed is derived from the Spec seed, so the full
// trace is reproducible from the Spec alone. For a trace-backed spec the
// source replays the file, bounded by its record count.
func (s Spec) NewSource() (trace.Source, error) {
	if s.IsTrace() {
		return s.newTraceSource(s.TraceCount)
	}
	p, err := s.Build()
	if err != nil {
		return nil, err
	}
	return newWalker(p, s.Seed^0x57a1_c0de_b00b_5eed), nil
}

// NewSourceSeeded returns an unbounded source over the same program but
// with an explicit walk seed, so train/test splits can exercise one
// program along disjoint dynamic paths (out-of-sample profile evaluation).
// Trace-backed specs have exactly one dynamic path — the recorded one —
// so reseeding them is an error, not a silently identical replay.
func (s Spec) NewSourceSeeded(walkSeed uint64) (trace.Source, error) {
	if s.IsTrace() {
		return nil, fmt.Errorf("workload: %s is trace-backed; its recorded path cannot be reseeded", s.Name)
	}
	p, err := s.Build()
	if err != nil {
		return nil, err
	}
	return newWalker(p, walkSeed), nil
}

// FiniteSourceSeeded returns a seeded source limited to n records
// (DefaultBranches when n == 0).
func (s Spec) FiniteSourceSeeded(n, walkSeed uint64) (trace.Source, error) {
	src, err := s.NewSourceSeeded(walkSeed)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		n = s.DefaultBranches
	}
	return trace.Limit(src, n), nil
}

// FiniteSource returns a source limited to n records (DefaultBranches when
// n == 0). Trace-backed budgets additionally clamp to the trace's record
// count: the file holds what it holds, and a budget the file cannot fill
// would otherwise poison count-validated artifacts.
func (s Spec) FiniteSource(n uint64) (trace.Source, error) {
	if n == 0 {
		n = s.DefaultBranches
	}
	if s.IsTrace() {
		if n > s.TraceCount {
			n = s.TraceCount
		}
		return s.newTraceSource(n)
	}
	src, err := s.NewSource()
	if err != nil {
		return nil, err
	}
	return trace.Limit(src, n), nil
}

// suite is the standard nine-benchmark suite mirroring the IBS names used
// by the paper. Hardness varies: jpeg_play is built to be the
// best-predicted benchmark and real_gcc the worst, matching Fig. 9's
// extremes, with composite gshare-64K misprediction calibrated near the
// paper's 3.85%.
var suite = []Spec{
	{
		Name: "groff", Seed: 0x1B51, Routines: 70, PlainSites: 11, Loops: 2,
		LoopBody: 2, TripMean: 4, TripJitter: 3, VariableTripFrac: 0.14,
		ZipfSkew: 1.4,
		Mix:      Mix{Biased: 0.48, Periodic: 0.08, Correlated: 0.24, Phase: 0.06, Random: 0.005},
		NoiseLo:  0.00, NoiseHi: 0.02, DefaultBranches: 1_000_000,
	},
	{
		Name: "gs", Seed: 0x1B52, Routines: 90, PlainSites: 12, Loops: 2,
		LoopBody: 2, TripMean: 4, TripJitter: 3, VariableTripFrac: 0.1,
		ZipfSkew: 1.3,
		Mix:      Mix{Biased: 0.46, Periodic: 0.1, Correlated: 0.24, Phase: 0.07, Random: 0.005},
		NoiseLo:  0.00, NoiseHi: 0.02, DefaultBranches: 1_000_000,
	},
	{
		Name: "jpeg_play", Seed: 0x1B53, Routines: 35, PlainSites: 9, Loops: 3,
		LoopBody: 2, TripMean: 3, TripJitter: 2, VariableTripFrac: 0.06,
		ZipfSkew: 1.6,
		Mix:      Mix{Biased: 0.55, Periodic: 0.24, Correlated: 0.20, Phase: 0.01, Random: 0.001},
		NoiseLo:  0.00, NoiseHi: 0.01, DefaultBranches: 1_000_000,
	},
	{
		Name: "mpeg_play", Seed: 0x1B54, Routines: 45, PlainSites: 10, Loops: 3,
		LoopBody: 2, TripMean: 3, TripJitter: 2, VariableTripFrac: 0.05,
		ZipfSkew: 1.5,
		Mix:      Mix{Biased: 0.50, Periodic: 0.14, Correlated: 0.22, Phase: 0.02, Random: 0.002},
		NoiseLo:  0.00, NoiseHi: 0.015, DefaultBranches: 1_000_000,
	},
	{
		Name: "nroff", Seed: 0x1B55, Routines: 60, PlainSites: 11, Loops: 2,
		LoopBody: 2, TripMean: 4, TripJitter: 3, VariableTripFrac: 0.12,
		ZipfSkew: 1.4,
		Mix:      Mix{Biased: 0.48, Periodic: 0.1, Correlated: 0.23, Phase: 0.05, Random: 0.004},
		NoiseLo:  0.00, NoiseHi: 0.02, DefaultBranches: 1_000_000,
	},
	{
		Name: "real_gcc", Seed: 0x1B56, Routines: 160, PlainSites: 14, Loops: 2,
		LoopBody: 2, TripMean: 4, TripJitter: 4, VariableTripFrac: 0.35,
		ZipfSkew: 1.1,
		Mix:      Mix{Biased: 0.40, Periodic: 0.12, Correlated: 0.24, Phase: 0.1, Random: 0.015},
		NoiseLo:  0.02, NoiseHi: 0.035, DefaultBranches: 1_000_000,
	},
	{
		Name: "sdet", Seed: 0x1B57, Routines: 110, PlainSites: 12, Loops: 2,
		LoopBody: 2, TripMean: 4, TripJitter: 3, VariableTripFrac: 0.12,
		ZipfSkew: 1.2,
		Mix:      Mix{Biased: 0.44, Periodic: 0.1, Correlated: 0.24, Phase: 0.07, Random: 0.008},
		NoiseLo:  0.01, NoiseHi: 0.015, DefaultBranches: 1_000_000,
	},
	{
		Name: "verilog", Seed: 0x1B58, Routines: 85, PlainSites: 12, Loops: 2,
		LoopBody: 2, TripMean: 4, TripJitter: 3, VariableTripFrac: 0.12,
		ZipfSkew: 1.3,
		Mix:      Mix{Biased: 0.45, Periodic: 0.12, Correlated: 0.24, Phase: 0.06, Random: 0.006},
		NoiseLo:  0.00, NoiseHi: 0.02, DefaultBranches: 1_000_000,
	},
	{
		Name: "video_play", Seed: 0x1B59, Routines: 40, PlainSites: 10, Loops: 3,
		LoopBody: 2, TripMean: 3, TripJitter: 2, VariableTripFrac: 0.08,
		ZipfSkew: 1.5,
		Mix:      Mix{Biased: 0.52, Periodic: 0.22, Correlated: 0.21, Phase: 0.015, Random: 0.002},
		NoiseLo:  0.00, NoiseHi: 0.012, DefaultBranches: 1_000_000,
	},
}

// Suite returns the standard benchmark suite in a fresh slice (callers may
// reorder or modify their copy).
func Suite() []Spec {
	out := make([]Spec, len(suite))
	copy(out, suite)
	return out
}

// Names returns the sorted benchmark names of the standard suite.
func Names() []string {
	names := make([]string, len(suite))
	for i, s := range suite {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// ByName returns the named standard benchmark.
func ByName(name string) (Spec, error) {
	for _, s := range suite {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q (available: %v)", name, Names())
}
