package workload

import (
	"sync"
	"testing"

	"branchconf/internal/trace"
)

func TestMaterializeMatchesFiniteSource(t *testing.T) {
	defer ResetMaterializeCache()
	spec, err := ByName("groff")
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	buf, err := Materialize(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Fatalf("materialized %d records, want %d", buf.Len(), n)
	}
	src, err := spec.FiniteSource(n)
	if err != nil {
		t.Fatal(err)
	}
	want, err := trace.Collect(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.Collect(buf.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: replay %+v, direct %+v", i, got[i], want[i])
		}
	}
}

func TestMaterializeDefaultBudget(t *testing.T) {
	// n == 0 resolves to the spec's DefaultBranches, so the zero budget
	// shares a cache entry with the explicit default.
	defer ResetMaterializeCache()
	spec, err := ByName("jpeg_play")
	if err != nil {
		t.Fatal(err)
	}
	spec.DefaultBranches = 5000 // keep the test fast
	a, err := Materialize(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 5000 {
		t.Fatalf("default budget materialized %d records", a.Len())
	}
	b, err := Materialize(spec, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("zero and explicit default budgets did not share a cache entry")
	}
}

// TestMaterializeConcurrent hammers one key from many goroutines: exactly
// one generation must happen and every caller must see the same buffer.
// Run under -race this also checks the memo's synchronisation.
func TestMaterializeConcurrent(t *testing.T) {
	ResetMaterializeCache()
	defer ResetMaterializeCache()
	spec, err := ByName("gs")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	bufs := make([]*trace.ReplayBuffer, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf, err := Materialize(spec, 10000)
			if err != nil {
				t.Error(err)
				return
			}
			bufs[i] = buf
		}()
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if bufs[i] != bufs[0] {
			t.Fatal("concurrent callers saw different buffers")
		}
	}
	hits, misses := MaterializeStats()
	if misses != 1 {
		t.Fatalf("misses = %d, want exactly one generation", misses)
	}
	if hits != workers-1 {
		t.Fatalf("hits = %d, want %d", hits, workers-1)
	}
	if MaterializeFootprint() == 0 {
		t.Fatal("footprint not accounted")
	}
}

func TestMaterializeDistinctKeys(t *testing.T) {
	ResetMaterializeCache()
	defer ResetMaterializeCache()
	spec, err := ByName("nroff")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Materialize(spec, 1000)
	if err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Seed++
	b, err := Materialize(other, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different seeds shared a cache entry")
	}
	if _, misses := MaterializeStats(); misses != 2 {
		t.Fatalf("misses = %d, want 2", misses)
	}
}
