package workload

import (
	"fmt"

	"branchconf/internal/xrand"
)

// Site is one static conditional branch in a synthetic program.
type Site struct {
	PC       uint64
	Target   uint64
	Behavior Behavior
}

// element is one control-flow step within a routine: either a plain branch
// site or a loop (body of plain sites closed by a backward loop branch).
type element struct {
	site int   // index into Program.sites: the branch itself
	body []int // loop body site indices; nil for plain elements
	trip TripCount
}

// routine is a straight-line sequence of elements executed in order.
type routine struct {
	elems []element
}

// Program is a fully constructed synthetic program: an address-laid-out set
// of branch sites organised into routines. Programs are built
// deterministically from a Spec; the same Spec always yields the same
// program and, with the same walk seed, the same trace.
//
// Control flow between routines follows a first-order Markov chain: each
// routine has a few preferred successors (drawn popularity-weighted at
// build time) with an occasional global jump. Uniformly random routine
// hopping would give every branch dozens of distinct history contexts —
// real call graphs repeat caller/callee pairs heavily, and history-based
// predictors depend on that recurrence.
type Program struct {
	sites    []Site
	routines []routine
	succs    [][]int // per-routine preferred successors
	zipfSkew float64
}

// StaticBranches returns the number of static branch sites in the program.
func (p *Program) StaticBranches() int { return len(p.sites) }

// Census counts the program's static branch sites per behaviour class,
// documenting what a benchmark is made of (tracegen -describe prints it).
type Census struct {
	Biased     int
	Periodic   int // visit- and iteration-locked patterns
	Correlated int
	Phase      int
	Random     int
	LoopBranch int
}

// Census classifies every static site.
func (p *Program) Census() Census {
	var c Census
	for _, s := range p.sites {
		switch b := s.Behavior.(type) {
		case *Biased:
			if b.P == 0.5 {
				c.Random++
			} else {
				c.Biased++
			}
		case *VisitPattern, *IterPattern, *Periodic:
			c.Periodic++
		case *Correlated:
			c.Correlated++
		case *PhaseBiased:
			c.Phase++
		case nil:
			c.LoopBranch++
		}
	}
	return c
}

// Routines returns the number of routines.
func (p *Program) Routines() int { return len(p.routines) }

// programBase is where synthetic code is laid out; routineStride separates
// routine address ranges so PC bits carry routine identity like real code.
const (
	programBase   = 0x0040_0000
	routineStride = 0x1000
	siteStride    = 8
)

// build constructs the program for a Spec. All structural randomness comes
// from the Spec seed, so the program is a pure function of the Spec.
func build(s Spec) (*Program, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(s.Seed)
	p := &Program{zipfSkew: s.ZipfSkew}
	for r := 0; r < s.Routines; r++ {
		base := uint64(programBase + r*routineStride)
		slot := 0
		nextPC := func() uint64 {
			pc := base + uint64(slot*siteStride)
			slot++
			return pc
		}
		var rt routine

		// All visit-locked sites within one routine share a single pattern
		// (up to per-site inversion) so the routine has one mode phase per
		// visit: the first patterned branch reveals the phase, and the rest
		// follow from history — exactly how repeated tests of the same mode
		// flag behave. Independent per-site phases would make the global
		// history wander through a state space no predictor could warm up
		// on; real branches co-evolve because the same data drives them.
		period := 2 + rng.Intn(7)
		visitPat := make([]bool, period)
		allSame := true
		for i := range visitPat {
			visitPat[i] = rng.Bool(0.5)
			if i > 0 && visitPat[i] != visitPat[0] {
				allSame = false
			}
		}
		if allSame {
			visitPat[period-1] = !visitPat[0]
		}

		addPlain := func() {
			pc := nextPC()
			p.sites = append(p.sites, Site{
				PC:       pc,
				Target:   pc + uint64(siteStride*(2+rng.Intn(30))),
				Behavior: s.newBehavior(rng, visitPat, false),
			})
			rt.elems = append(rt.elems, element{site: len(p.sites) - 1})
		}

		addLoop := func() {
			bodyN := 1 + rng.Intn(2*s.LoopBody-1) // mean s.LoopBody
			body := make([]int, 0, bodyN)
			var bodyStart uint64
			for i := 0; i < bodyN; i++ {
				pc := nextPC()
				if i == 0 {
					bodyStart = pc
				}
				p.sites = append(p.sites, Site{
					PC:       pc,
					Target:   pc + uint64(siteStride*(2+rng.Intn(30))),
					Behavior: s.newBehavior(rng, visitPat, true),
				})
				body = append(body, len(p.sites)-1)
			}
			pc := nextPC()
			p.sites = append(p.sites, Site{
				PC:     pc,
				Target: bodyStart, // backward: loop-closing branch
			})
			jitter := 0
			if s.TripJitter > 0 && rng.Bool(s.VariableTripFrac) {
				jitter = 1 + rng.Intn(s.TripJitter)
			}
			trip := TripCount{Mean: 2 + rng.Intn(2*s.TripMean-3), Jitter: jitter}
			rt.elems = append(rt.elems, element{
				site: len(p.sites) - 1,
				body: body,
				trip: trip,
			})
		}

		// Interleave plain sites and loops in a deterministic shuffle.
		plains := 1 + rng.Intn(2*s.PlainSites-1)
		loops := s.Loops
		for plains > 0 || loops > 0 {
			if loops > 0 && (plains == 0 || rng.Bool(float64(loops)/float64(loops+plains))) {
				addLoop()
				loops--
			} else {
				addPlain()
				plains--
			}
		}
		p.routines = append(p.routines, rt)
	}
	// Successor graph: three preferred successors per routine, drawn
	// popularity-weighted so hot routines appear in many successor lists.
	zipf := xrand.NewZipf(rng, s.Routines, s.ZipfSkew)
	p.succs = make([][]int, s.Routines)
	for r := range p.succs {
		succ := make([]int, numSuccessors)
		for i := range succ {
			succ[i] = zipf.Draw()
		}
		p.succs[r] = succ
	}
	return p, nil
}

// Markov-walk shape constants: successor count, per-rank selection
// weights (cumulative), and the probability of an unstructured global jump.
const (
	numSuccessors  = 3
	globalJumpProb = 0.05
)

var succCumWeights = [numSuccessors]float64{0.55, 0.85, 1.0}

// newBehavior draws one site behaviour from the Spec's mixture. visitPat
// is the routine's shared visit pattern; inLoop selects iteration-locked
// patterns for loop-body sites.
func (s Spec) newBehavior(rng *xrand.RNG, visitPat []bool, inLoop bool) Behavior {
	total := s.Mix.Biased + s.Mix.Periodic + s.Mix.Correlated + s.Mix.Phase + s.Mix.Random
	u := rng.Float64() * total
	switch {
	case u < s.Mix.Biased:
		return s.newBiased(rng)
	case u < s.Mix.Biased+s.Mix.Periodic:
		return s.newPeriodic(rng, visitPat, inLoop)
	case u < s.Mix.Biased+s.Mix.Periodic+s.Mix.Correlated:
		return s.newCorrelated(rng)
	case u < s.Mix.Biased+s.Mix.Periodic+s.Mix.Correlated+s.Mix.Phase:
		// Near-deterministic within each phase: the phase transition is
		// the hard event, not every execution.
		return &PhaseBiased{
			PHigh:    0.975 + 0.02*rng.Float64(),
			PLow:     0.005 + 0.02*rng.Float64(),
			PhaseLen: 500 + rng.Intn(4500),
		}
	default:
		return &Biased{P: 0.5}
	}
}

// biasLevels are the strong-to-weak bias magnitudes assigned to biased
// branches, weighted heavily toward the strong end: most dynamic
// conditional branches in profiled real code are nearly always one way,
// and every mid-strength bias injects history entropy that no predictor
// can absorb.
var biasLevels = []float64{0.998, 0.995, 0.99, 0.97, 0.90}
var biasWeights = []float64{0.45, 0.30, 0.15, 0.07, 0.03}

// takenBiasedFrac is the fraction of biased branches whose common direction
// is taken. Real conditional-branch profiles skew taken (~60-70%), which is
// why predictor tables initialise to weakly taken; mirroring that keeps
// cold-counter behaviour realistic.
const takenBiasedFrac = 0.70

func (s Spec) newBiased(rng *xrand.RNG) Behavior {
	u := rng.Float64()
	p := biasLevels[len(biasLevels)-1]
	acc := 0.0
	for i, w := range biasWeights {
		acc += w
		if u < acc {
			p = biasLevels[i]
			break
		}
	}
	if !rng.Bool(takenBiasedFrac) {
		p = 1 - p
	}
	return &Biased{P: p}
}

func (s Spec) newPeriodic(rng *xrand.RNG, visitPat []bool, inLoop bool) Behavior {
	if inLoop {
		// Iteration-locked patterns replay identically every loop visit, so
		// each body site may have its own pattern without entropy cost.
		n := 2 + rng.Intn(7)
		pat := make([]bool, n)
		same := true
		for i := range pat {
			pat[i] = rng.Bool(0.5)
			if i > 0 && pat[i] != pat[0] {
				same = false
			}
		}
		if same {
			pat[n-1] = !pat[0] // degenerate constant patterns become biased
		}
		return &IterPattern{Pattern: pat}
	}
	return &VisitPattern{Pattern: visitPat, Invert: rng.Bool(0.5), Epoch: drawEpoch(rng)}
}

// visitEpochs weights mode-change cadence toward slow: most mode branches
// hold their direction for many visits; a quarter re-decide every visit.
var visitEpochs = []uint64{1, 8, 32, 128}
var epochCumWeights = []float64{0.05, 0.20, 0.50, 1.0}

func drawEpoch(rng *xrand.RNG) uint64 {
	u := rng.Float64()
	for i, c := range epochCumWeights {
		if u < c {
			return visitEpochs[i]
		}
	}
	return visitEpochs[len(visitEpochs)-1]
}

func (s Spec) newCorrelated(rng *xrand.RNG) Behavior {
	// Select 1-3 of the last 6 global outcomes.
	var mask uint64
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		mask |= 1 << uint(rng.Intn(6))
	}
	noise := s.NoiseLo + (s.NoiseHi-s.NoiseLo)*rng.Float64()
	return &Correlated{Mask: mask, Invert: rng.Bool(0.5), Noise: noise}
}

func (s Spec) validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: spec has empty name")
	case s.Routines <= 0:
		return fmt.Errorf("workload %s: Routines must be positive, got %d", s.Name, s.Routines)
	case s.PlainSites <= 0:
		return fmt.Errorf("workload %s: PlainSites must be positive, got %d", s.Name, s.PlainSites)
	case s.Loops < 0:
		return fmt.Errorf("workload %s: Loops must be non-negative, got %d", s.Name, s.Loops)
	case s.Loops > 0 && s.LoopBody <= 0:
		return fmt.Errorf("workload %s: LoopBody must be positive with loops, got %d", s.Name, s.LoopBody)
	case s.Loops > 0 && s.TripMean < 2:
		return fmt.Errorf("workload %s: TripMean must be >= 2, got %d", s.Name, s.TripMean)
	case s.ZipfSkew < 0:
		return fmt.Errorf("workload %s: ZipfSkew must be non-negative, got %v", s.Name, s.ZipfSkew)
	case s.NoiseLo < 0 || s.NoiseHi < s.NoiseLo || s.NoiseHi > 1:
		return fmt.Errorf("workload %s: noise range [%v,%v] invalid", s.Name, s.NoiseLo, s.NoiseHi)
	case s.VariableTripFrac < 0 || s.VariableTripFrac > 1:
		return fmt.Errorf("workload %s: VariableTripFrac %v outside [0,1]", s.Name, s.VariableTripFrac)
	}
	m := s.Mix
	if m.Biased < 0 || m.Periodic < 0 || m.Correlated < 0 || m.Phase < 0 || m.Random < 0 {
		return fmt.Errorf("workload %s: negative mixture weight", s.Name)
	}
	if m.Biased+m.Periodic+m.Correlated+m.Phase+m.Random <= 0 {
		return fmt.Errorf("workload %s: mixture weights sum to zero", s.Name)
	}
	return nil
}
