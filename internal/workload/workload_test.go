package workload

import (
	"testing"

	"branchconf/internal/trace"
)

func testSpec() Spec {
	s, err := ByName("groff")
	if err != nil {
		panic(err)
	}
	return s
}

func TestBuildDeterministic(t *testing.T) {
	s := testSpec()
	p1, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p1.StaticBranches() != p2.StaticBranches() || p1.Routines() != p2.Routines() {
		t.Fatalf("rebuild differs: %d/%d vs %d/%d sites/routines",
			p1.StaticBranches(), p1.Routines(), p2.StaticBranches(), p2.Routines())
	}
	for i := range p1.sites {
		if p1.sites[i].PC != p2.sites[i].PC || p1.sites[i].Target != p2.sites[i].Target {
			t.Fatalf("site %d differs", i)
		}
	}
}

func TestSourceDeterministic(t *testing.T) {
	s := testSpec()
	src1, err := s.FiniteSource(20000)
	if err != nil {
		t.Fatal(err)
	}
	src2, err := s.FiniteSource(20000)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := trace.Collect(src1, 0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := trace.Collect(src2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != 20000 || len(t2) != 20000 {
		t.Fatalf("lengths %d %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, t1[i], t2[i])
		}
	}
}

func TestRecordsWellFormed(t *testing.T) {
	s := testSpec()
	src, err := s.FiniteSource(50000)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Collect(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr {
		if r.PC < programBase {
			t.Fatalf("record %d: PC %x below program base", i, r.PC)
		}
		if r.PC%siteStride != 0 {
			t.Fatalf("record %d: PC %x misaligned", i, r.PC)
		}
		if r.Target == r.PC {
			t.Fatalf("record %d: self-targeting branch", i)
		}
		if r.Gap < 2 || r.Gap > 10 {
			t.Fatalf("record %d: gap %d outside [2,10]", i, r.Gap)
		}
	}
}

func TestLoopBranchesAreBackwardAndMostlyTaken(t *testing.T) {
	s := testSpec()
	src, err := s.FiniteSource(100000)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Collect(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	var back, backTaken uint64
	for _, r := range tr {
		if r.Backward() {
			back++
			if r.Taken {
				backTaken++
			}
		}
	}
	if back == 0 {
		t.Fatal("no backward branches in a loopy workload")
	}
	rate := float64(backTaken) / float64(back)
	// Loops with mean trip ~7 should have their closing branch taken at
	// roughly (trip-1)/trip.
	if rate < 0.6 || rate > 0.98 {
		t.Fatalf("backward-branch taken rate %v outside [0.6, 0.98]", rate)
	}
}

func TestStaticFootprint(t *testing.T) {
	for _, s := range Suite() {
		p, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if p.StaticBranches() < 200 {
			t.Fatalf("%s: only %d static branches; too small to exercise tables", s.Name, p.StaticBranches())
		}
		if p.StaticBranches() > 50000 {
			t.Fatalf("%s: %d static branches; unrealistically large", s.Name, p.StaticBranches())
		}
	}
}

func TestDynamicCoverage(t *testing.T) {
	// The walk must actually visit a sizeable share of the static sites.
	s := testSpec()
	src, err := s.FiniteSource(200000)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.Measure(src)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := s.Build()
	frac := float64(st.StaticPCs) / float64(p.StaticBranches())
	if frac < 0.5 {
		t.Fatalf("walk covered only %.0f%% of static sites", 100*frac)
	}
}

func TestSuiteIntegrity(t *testing.T) {
	specs := Suite()
	if len(specs) != 9 {
		t.Fatalf("suite has %d benchmarks, want 9", len(specs))
	}
	seenName := map[string]bool{}
	seenSeed := map[uint64]bool{}
	for _, s := range specs {
		if seenName[s.Name] {
			t.Fatalf("duplicate name %s", s.Name)
		}
		if seenSeed[s.Seed] {
			t.Fatalf("duplicate seed %x", s.Seed)
		}
		seenName[s.Name] = true
		seenSeed[s.Seed] = true
		if s.DefaultBranches == 0 {
			t.Fatalf("%s: zero DefaultBranches", s.Name)
		}
	}
	// Fig. 9's named extremes must be present.
	for _, want := range []string{"jpeg_play", "real_gcc"} {
		if !seenName[want] {
			t.Fatalf("suite missing %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("real_gcc"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("unknown benchmark found")
	}
}

func TestSuiteReturnsCopy(t *testing.T) {
	a := Suite()
	a[0].Name = "mutated"
	b := Suite()
	if b[0].Name == "mutated" {
		t.Fatal("Suite exposes shared backing array")
	}
}

func TestValidation(t *testing.T) {
	bad := []Spec{
		{},
		{Name: "x"},
		{Name: "x", Routines: 1},
		{Name: "x", Routines: 1, PlainSites: 2, Loops: 1},
		{Name: "x", Routines: 1, PlainSites: 2, Loops: 1, LoopBody: 2, TripMean: 1},
		{Name: "x", Routines: 1, PlainSites: 2, ZipfSkew: -1},
		{Name: "x", Routines: 1, PlainSites: 2, NoiseLo: -0.1},
		{Name: "x", Routines: 1, PlainSites: 2, NoiseHi: 1.5, NoiseLo: 0.2},
		{Name: "x", Routines: 1, PlainSites: 2, VariableTripFrac: 2},
		{Name: "x", Routines: 1, PlainSites: 2, Mix: Mix{Biased: -1}},
		{Name: "x", Routines: 1, PlainSites: 2, Mix: Mix{}},
	}
	for i, s := range bad {
		if _, err := s.Build(); err == nil {
			t.Fatalf("case %d: invalid spec built successfully: %+v", i, s)
		}
	}
}

func TestSpecialisedSeedsIndependent(t *testing.T) {
	// Different seeds on the same structure yield different traces.
	a := testSpec()
	b := a
	b.Seed++
	sa, _ := a.FiniteSource(1000)
	sb, _ := b.FiniteSource(1000)
	ta, _ := trace.Collect(sa, 0)
	tb, _ := trace.Collect(sb, 0)
	same := 0
	for i := range ta {
		if ta[i].Taken == tb[i].Taken {
			same++
		}
	}
	if same > 950 {
		t.Fatalf("seed change left %d/1000 outcomes identical", same)
	}
}

func TestCensusCoversEverySite(t *testing.T) {
	for _, s := range Suite() {
		p, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		c := p.Census()
		total := c.Biased + c.Periodic + c.Correlated + c.Phase + c.Random + c.LoopBranch
		if total != p.StaticBranches() {
			t.Fatalf("%s: census %d sites, program has %d", s.Name, total, p.StaticBranches())
		}
		if c.LoopBranch == 0 && s.Loops > 0 {
			t.Fatalf("%s: no loop branches counted", s.Name)
		}
		if c.Biased == 0 {
			t.Fatalf("%s: no biased sites", s.Name)
		}
	}
}
