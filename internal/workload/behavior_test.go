package workload

import (
	"math"
	"testing"

	"branchconf/internal/xrand"
)

func TestBiasedRate(t *testing.T) {
	ctx := &Ctx{RNG: xrand.New(1)}
	b := &Biased{P: 0.9}
	taken := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if b.Outcome(ctx) {
			taken++
		}
	}
	if got := float64(taken) / n; math.Abs(got-0.9) > 0.01 {
		t.Fatalf("biased rate %v, want ~0.9", got)
	}
}

func TestPeriodicCycles(t *testing.T) {
	ctx := &Ctx{RNG: xrand.New(2)}
	pat := []bool{true, true, false}
	p := &Periodic{Pattern: pat}
	for i := 0; i < 30; i++ {
		if got := p.Outcome(ctx); got != pat[i%3] {
			t.Fatalf("position %d: got %v", i, got)
		}
	}
}

func TestCorrelatedFollowsHistoryParity(t *testing.T) {
	ctx := &Ctx{RNG: xrand.New(3)}
	c := &Correlated{Mask: 0b101, Noise: 0}
	cases := []struct {
		hist uint64
		want bool
	}{
		{0b000, false},
		{0b001, true},
		{0b100, true},
		{0b101, false},
		{0b111, false},
		{0b011, true},
	}
	for _, tc := range cases {
		ctx.Hist = tc.hist
		if got := c.Outcome(ctx); got != tc.want {
			t.Fatalf("hist %03b: got %v want %v", tc.hist, got, tc.want)
		}
	}
	inv := &Correlated{Mask: 0b101, Invert: true, Noise: 0}
	ctx.Hist = 0b001
	if inv.Outcome(ctx) {
		t.Fatal("inverted correlation did not invert")
	}
}

func TestCorrelatedNoiseRate(t *testing.T) {
	ctx := &Ctx{RNG: xrand.New(4), Hist: 0}
	c := &Correlated{Mask: 1, Noise: 0.2}
	flips := 0
	const n = 100000
	for i := 0; i < n; i++ {
		// hist parity is 0 → noiseless outcome false; any true is a flip.
		if c.Outcome(ctx) {
			flips++
		}
	}
	if got := float64(flips) / n; math.Abs(got-0.2) > 0.01 {
		t.Fatalf("noise rate %v, want ~0.2", got)
	}
}

func TestPhaseBiasedAlternates(t *testing.T) {
	ctx := &Ctx{RNG: xrand.New(5)}
	p := &PhaseBiased{PHigh: 1.0, PLow: 0.0, PhaseLen: 10}
	for phase := 0; phase < 4; phase++ {
		want := phase%2 == 0 // starts in high phase
		for i := 0; i < 10; i++ {
			if got := p.Outcome(ctx); got != want {
				t.Fatalf("phase %d step %d: got %v want %v", phase, i, got, want)
			}
		}
	}
}

func TestTripCountFixed(t *testing.T) {
	rng := xrand.New(6)
	tc := TripCount{Mean: 8}
	for i := 0; i < 100; i++ {
		if got := tc.Draw(rng); got != 8 {
			t.Fatalf("fixed trip drew %d", got)
		}
	}
}

func TestTripCountJitterBounds(t *testing.T) {
	rng := xrand.New(7)
	tc := TripCount{Mean: 5, Jitter: 3}
	seenLow, seenHigh := false, false
	for i := 0; i < 10000; i++ {
		got := tc.Draw(rng)
		if got < 2 || got > 8 {
			t.Fatalf("jittered trip %d outside [2,8]", got)
		}
		if got == 2 {
			seenLow = true
		}
		if got == 8 {
			seenHigh = true
		}
	}
	if !seenLow || !seenHigh {
		t.Fatal("jitter never reached its bounds")
	}
}

func TestTripCountFloorsAtOne(t *testing.T) {
	rng := xrand.New(8)
	tc := TripCount{Mean: 1, Jitter: 5}
	for i := 0; i < 1000; i++ {
		if tc.Draw(rng) < 1 {
			t.Fatal("trip count below 1")
		}
	}
}

// TestBiasedMatchesBool: the threshold fast path must reproduce
// ctx.RNG.Bool(P) exactly — same outcomes, same draw consumption — for
// open and clamped probabilities alike, or the calibration anchors move.
func TestBiasedMatchesBool(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1e-9, 0.01, 0.3, 0.5, 0.9, 0.999, 1, 1.5} {
		b := &Biased{P: p}
		ctx := &Ctx{RNG: xrand.New(7)}
		ref := xrand.New(7)
		for i := 0; i < 5000; i++ {
			if got, want := b.Outcome(ctx), ref.Bool(p); got != want {
				t.Fatalf("P=%g draw %d: Outcome=%v Bool=%v", p, i, got, want)
			}
		}
		if ctx.RNG.Uint64() != ref.Uint64() {
			t.Fatalf("P=%g: Outcome and Bool consumed different draw counts", p)
		}
	}
}
