package core

import (
	"fmt"
	"math/bits"

	"branchconf/internal/trace"
)

// Reducer is the combinational reduction function of Fig. 3: it collapses
// a bucket (CIR pattern or counter value) to the one-bit confidence
// signal. Confident == true means high confidence.
type Reducer interface {
	Confident(bucket uint64) bool
	Name() string
}

// OnesCountReducer implements §5.1's ones-counting reduction: a prediction
// is high-confidence when its CIR records fewer than Threshold
// mispredictions.
type OnesCountReducer struct {
	// Threshold is the minimum ones-count classified low-confidence.
	Threshold int
}

// Confident reports popcount(bucket) < Threshold.
func (o OnesCountReducer) Confident(bucket uint64) bool {
	return bits.OnesCount64(bucket) < o.Threshold
}

// Name implements Reducer.
func (o OnesCountReducer) Name() string { return fmt.Sprintf("1Cnt<%d", o.Threshold) }

// WeightedOnesReducer is the recency-weighted refinement §5.1's analysis
// of ones counting points at: "recent mispredictions, e.g. the most
// recent, correlate better than the older ones ... Yet, with ones
// counting, they are all given equal weight." Bit i of the CIR (i = 0
// newest) contributes weight Width-i, so a just-seen misprediction counts
// Width times more than one about to age out. A prediction is
// high-confidence when the weighted sum stays below Threshold.
type WeightedOnesReducer struct {
	// Width is the CIR width in bits (weights run Width..1).
	Width uint
	// Threshold is the minimum weighted sum classified low-confidence.
	Threshold int
}

// Score returns the recency-weighted misprediction sum of the pattern.
func (w WeightedOnesReducer) Score(bucket uint64) int {
	score := 0
	for i := uint(0); i < w.Width; i++ {
		if bucket>>i&1 == 1 {
			score += int(w.Width - i)
		}
	}
	return score
}

// Confident reports Score(bucket) < Threshold.
func (w WeightedOnesReducer) Confident(bucket uint64) bool {
	return w.Score(bucket) < w.Threshold
}

// Name implements Reducer.
func (w WeightedOnesReducer) Name() string { return fmt.Sprintf("w1Cnt<%d", w.Threshold) }

// CounterReducer thresholds a counter-valued bucket: a prediction is
// high-confidence when the counter is at least Threshold. With resetting
// counters this reads "at least Threshold consecutive correct
// predictions"; Table 1's rows correspond to thresholds 1..16.
type CounterReducer struct {
	// Threshold is the minimum counter value classified high-confidence.
	Threshold uint64
}

// Confident reports bucket >= Threshold.
func (c CounterReducer) Confident(bucket uint64) bool { return bucket >= c.Threshold }

// Name implements Reducer.
func (c CounterReducer) Name() string { return fmt.Sprintf("cnt>=%d", c.Threshold) }

// SetReducer classifies an explicit set of buckets as low-confidence —
// the general minterm form the paper's ideal reduction takes. Analysis
// code derives the set from sorted per-bucket statistics (see
// internal/analysis; LowSet there builds one from a curve).
type SetReducer struct {
	low  map[uint64]struct{}
	name string
}

// NewSetReducer returns a reducer whose low-confidence set is lowBuckets.
func NewSetReducer(name string, lowBuckets []uint64) *SetReducer {
	low := make(map[uint64]struct{}, len(lowBuckets))
	for _, b := range lowBuckets {
		low[b] = struct{}{}
	}
	return &SetReducer{low: low, name: name}
}

// Confident reports that the bucket is not in the low-confidence set.
func (s *SetReducer) Confident(bucket uint64) bool {
	_, lo := s.low[bucket]
	return !lo
}

// Name implements Reducer.
func (s *SetReducer) Name() string { return s.name }

// Estimator pairs a Mechanism with a Reducer to form the complete online
// confidence unit of Fig. 1: for every dynamic branch it emits the
// high/low confidence signal alongside the branch prediction, then is
// trained with the prediction's correctness.
type Estimator struct {
	mech   Mechanism
	reduce Reducer
}

// NewEstimator combines a mechanism and a reduction function.
func NewEstimator(mech Mechanism, reduce Reducer) *Estimator {
	return &Estimator{mech: mech, reduce: reduce}
}

// PaperEstimator returns the paper's recommended practical configuration:
// a 2^16-entry resetting-counter table indexed by PC xor BHR, classifying
// counter values below threshold as low confidence. Table 1 maps
// thresholds to coverage: threshold 1 isolates ~42% of mispredictions in
// ~4% of branches; threshold 16 isolates ~89% in ~20%.
func PaperEstimator(threshold uint64) *Estimator {
	return NewEstimator(PaperResetting(), CounterReducer{Threshold: threshold})
}

// Confident returns the high/low confidence signal for the upcoming
// prediction of r. Call before Update.
func (e *Estimator) Confident(r trace.Record) bool {
	return e.reduce.Confident(e.mech.Bucket(r))
}

// Update trains the underlying mechanism.
func (e *Estimator) Update(r trace.Record, incorrect bool) { e.mech.Update(r, incorrect) }

// Reset restores the mechanism's initial state.
func (e *Estimator) Reset() { e.mech.Reset() }

// Name identifies the estimator configuration.
func (e *Estimator) Name() string {
	return fmt.Sprintf("%s.%s", e.mech.Name(), e.reduce.Name())
}
