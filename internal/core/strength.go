package core

import (
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
)

// CounterStrength is the zero-cost confidence heuristic from the paper's
// related work (§1.1, citing Smith '81): read confidence straight from the
// saturation of the predictor's own 2-bit counter — strong states
// (strongly taken / strongly not-taken) are "confident", weak states are
// not. It needs no table of its own, making it the natural cost floor any
// dedicated confidence mechanism must beat.
//
// The bucket is the counter's distance from its nearest rail: 0 for weak
// states (counter 1 or 2), 1 for strong states (0 or 3), so per-bucket
// analysis and the CounterReducer threshold (>= 1) work unchanged.
type CounterStrength struct {
	pred *predictor.Gshare
}

// NewCounterStrength wraps the gshare predictor whose counters supply the
// confidence signal. The wrapped predictor must be the one making the
// predictions, and is trained by the caller as usual — Update here is a
// no-op because the mechanism has no private state.
func NewCounterStrength(pred *predictor.Gshare) *CounterStrength {
	return &CounterStrength{pred: pred}
}

// Bucket returns 1 when the counter the prediction will come from is in a
// strong state, 0 when weak.
func (c *CounterStrength) Bucket(r trace.Record) uint64 {
	switch c.pred.CounterState(r.PC) {
	case 0, 3:
		return 1
	default:
		return 0
	}
}

// Update is a no-op: the signal lives entirely in the predictor's tables.
func (c *CounterStrength) Update(trace.Record, bool) {}

// Reset is a no-op for the same reason (reset the predictor instead).
func (c *CounterStrength) Reset() {}

// Name implements Mechanism.
func (c *CounterStrength) Name() string { return "counter-strength" }

// StrengthEstimator pairs the strength mechanism with the >=1 threshold:
// confident exactly in strong counter states.
func StrengthEstimator(pred *predictor.Gshare) *Estimator {
	return NewEstimator(NewCounterStrength(pred), CounterReducer{Threshold: 1})
}
