package core

import (
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
)

// StateCoupled is implemented by mechanisms whose confidence signal is read
// from live predictor state rather than private tables. Such mechanisms
// cannot share an independent-observer pass through Bucket alone; instead
// the simulation engine captures the predictor's annotation state
// (predictor.StateAnnotator) before each update and feeds it to
// BucketWithState. This keeps predictor-coupled mechanisms batchable and —
// via annotated streams — replayable with no predictor in the loop.
type StateCoupled interface {
	Mechanism
	// BucketWithState returns the bucket for this branch given the
	// pre-update predictor state captured by the annotation hook. It must
	// agree with Bucket whenever the mechanism also holds a live reference
	// to the predictor that produced the state.
	BucketWithState(r trace.Record, state uint8) uint64
}

// CounterStrength is the zero-cost confidence heuristic from the paper's
// related work (§1.1, citing Smith '81): read confidence straight from the
// saturation of the predictor's own 2-bit counter — strong states
// (strongly taken / strongly not-taken) are "confident", weak states are
// not. It needs no table of its own, making it the natural cost floor any
// dedicated confidence mechanism must beat.
//
// The bucket is the counter's distance from its nearest rail: 0 for weak
// states (counter 1 or 2), 1 for strong states (0 or 3), so per-bucket
// analysis and the CounterReducer threshold (>= 1) work unchanged.
//
// CounterStrength implements StateCoupled: under the batched and annotated
// engines the counter value is captured by the predictor's annotation hook
// and delivered through BucketWithState, so the mechanism needs no live
// predictor reference at all (NewAnnotatedStrength).
type CounterStrength struct {
	pred *predictor.Gshare
}

// NewCounterStrength wraps the gshare predictor whose counters supply the
// confidence signal. The wrapped predictor must be the one making the
// predictions, and is trained by the caller as usual — Update here is a
// no-op because the mechanism has no private state.
func NewCounterStrength(pred *predictor.Gshare) *CounterStrength {
	return &CounterStrength{pred: pred}
}

// NewAnnotatedStrength returns a counter-strength mechanism with no live
// predictor reference, usable only through BucketWithState — i.e. under
// sim.RunBatch with a state-annotating predictor, or annotated replay.
func NewAnnotatedStrength() *CounterStrength {
	return &CounterStrength{}
}

// strengthBucket maps a 2-bit counter value to the strength bucket.
func strengthBucket(state uint8) uint64 {
	switch state {
	case 0, 3:
		return 1
	default:
		return 0
	}
}

// Bucket returns 1 when the counter the prediction will come from is in a
// strong state, 0 when weak. It requires a live predictor reference; the
// annotated form answers only through BucketWithState.
func (c *CounterStrength) Bucket(r trace.Record) uint64 {
	if c.pred == nil {
		panic("core: annotated CounterStrength has no live predictor; run it under the batched or annotated engine")
	}
	return strengthBucket(c.pred.CounterState(r.PC))
}

// BucketWithState implements StateCoupled from the captured counter value.
func (c *CounterStrength) BucketWithState(_ trace.Record, state uint8) uint64 {
	return strengthBucket(state)
}

// Update is a no-op: the signal lives entirely in the predictor's tables.
func (c *CounterStrength) Update(trace.Record, bool) {}

// Reset is a no-op for the same reason (reset the predictor instead).
func (c *CounterStrength) Reset() {}

// Name implements Mechanism.
func (c *CounterStrength) Name() string { return "counter-strength" }

// StrengthEstimator pairs the strength mechanism with the >=1 threshold:
// confident exactly in strong counter states.
func StrengthEstimator(pred *predictor.Gshare) *Estimator {
	return NewEstimator(NewCounterStrength(pred), CounterReducer{Threshold: 1})
}
