package core

import (
	"fmt"

	"branchconf/internal/bitvec"
	"branchconf/internal/trace"
)

// CounterKind selects the compressed table-entry representation of §5.1:
// full CIRs can be replaced in the CT by small counters at a logarithmic
// storage saving, with the counter value doubling as the reduction output.
type CounterKind int

const (
	// Saturating counts up on correct predictions and down on incorrect
	// ones, saturating at [0, Max].
	Saturating CounterKind = iota
	// Resetting counts up on correct predictions and resets to zero on any
	// incorrect one — the paper's recommended practical mechanism.
	Resetting
)

// String returns the kind's name as used in Figure 8's legend.
func (k CounterKind) String() string {
	switch k {
	case Saturating:
		return "Sat"
	case Resetting:
		return "Reset"
	default:
		return fmt.Sprintf("CounterKind(%d)", int(k))
	}
}

// CounterTable is a one-level confidence mechanism whose CT holds
// compressed counters instead of full CIRs. Bucket returns the counter
// value (0..Max), so per-bucket analysis yields exactly the paper's 17
// data points for Max == 16 (Table 1).
type CounterTable struct {
	kind      CounterKind
	scheme    IndexScheme
	tableBits uint
	max       uint8
	initVal   uint8
	table     []uint8
	bhr       bitvec.BHR
	gcir      bitvec.CIR

	// Index memo: valid from Bucket until the histories advance in Update.
	cachePC  uint64
	cacheIdx uint64
	cacheOK  bool
}

// CounterConfig configures a CounterTable. Zero geometry values select the
// paper's defaults: 2^16 entries, Max 16, initial value 0 (the counter
// analogue of all-ones CIRs — a counter of 0 means "misprediction just
// seen", i.e. low confidence). Kind and Scheme zero values are the valid
// choices Saturating and IndexPC; set them explicitly.
type CounterConfig struct {
	// Kind selects saturating or resetting counters.
	Kind CounterKind
	// Scheme selects the table index.
	Scheme IndexScheme
	// TableBits is log2 of the entry count (default 16).
	TableBits uint
	// Max is the saturation ceiling (default 16, aligning the counter's
	// 17 values with the ones-counts of a 16-bit CIR).
	Max uint8
	// Init is the initial counter value (default 0).
	Init uint8
	// HistoryBits is the global BHR length (default = TableBits).
	HistoryBits uint
}

// NewCounterTable returns a compressed-counter confidence mechanism. It
// panics on out-of-range geometry.
func NewCounterTable(cfg CounterConfig) *CounterTable {
	if cfg.TableBits == 0 {
		cfg.TableBits = 16
	}
	if cfg.Max == 0 {
		cfg.Max = 16
	}
	if cfg.HistoryBits == 0 {
		cfg.HistoryBits = cfg.TableBits
	}
	if cfg.TableBits > 30 {
		panic(fmt.Sprintf("core: counter table bits %d out of range [1,30]", cfg.TableBits))
	}
	if cfg.Init > cfg.Max {
		panic(fmt.Sprintf("core: counter init %d exceeds max %d", cfg.Init, cfg.Max))
	}
	m := &CounterTable{
		kind:      cfg.Kind,
		scheme:    cfg.Scheme,
		tableBits: cfg.TableBits,
		max:       cfg.Max,
		initVal:   cfg.Init,
		table:     make([]uint8, 1<<cfg.TableBits),
		bhr:       bitvec.NewBHR(cfg.HistoryBits),
		gcir:      bitvec.NewCIR(cfg.HistoryBits),
	}
	m.Reset()
	return m
}

// PaperResetting returns the paper's recommended implementation: resetting
// counters 0..16 in a 2^16-entry table indexed by PC xor BHR (§5.1-5.2).
func PaperResetting() *CounterTable {
	return NewCounterTable(CounterConfig{Kind: Resetting, Scheme: IndexPCxorBHR})
}

// SmallResetting returns the §5.3 cost-study variant: a 2^bits-entry
// resetting-counter table indexed PCxorBHR with 12 history bits, matching
// the 4K gshare predictor it pairs with.
func SmallResetting(bits uint) *CounterTable {
	return NewCounterTable(CounterConfig{Kind: Resetting, Scheme: IndexPCxorBHR, TableBits: bits, HistoryBits: 12})
}

func (m *CounterTable) index(pc uint64) uint64 {
	if m.cacheOK && m.cachePC == pc {
		return m.cacheIdx
	}
	i := schemeIndex(m.scheme, m.tableBits, pc, m.bhr.Bits(), m.gcir.Bits())
	m.cachePC, m.cacheIdx, m.cacheOK = pc, i, true
	return i
}

// Bucket returns the counter value read for this branch (0..Max).
func (m *CounterTable) Bucket(r trace.Record) uint64 {
	return uint64(m.table[m.index(r.PC)])
}

// BucketUpdate implements Fused: one index computation serves both the
// read and the train, with no memo traffic.
func (m *CounterTable) BucketUpdate(r trace.Record, incorrect bool) uint64 {
	i := schemeIndex(m.scheme, m.tableBits, r.PC, m.bhr.Bits(), m.gcir.Bits())
	v := m.table[i]
	b := uint64(v)
	switch m.kind {
	case Resetting:
		if incorrect {
			v = 0
		} else if v < m.max {
			v++
		}
	case Saturating:
		if incorrect {
			if v > 0 {
				v--
			}
		} else if v < m.max {
			v++
		}
	}
	m.table[i] = v
	m.bhr.Record(r.Taken)
	m.gcir.Record(incorrect)
	m.cacheOK = false
	return b
}

// Update trains the indexed counter and advances the histories.
func (m *CounterTable) Update(r trace.Record, incorrect bool) {
	i := m.index(r.PC)
	v := m.table[i]
	switch m.kind {
	case Resetting:
		if incorrect {
			v = 0
		} else if v < m.max {
			v++
		}
	case Saturating:
		if incorrect {
			if v > 0 {
				v--
			}
		} else if v < m.max {
			v++
		}
	}
	m.table[i] = v
	m.bhr.Record(r.Taken)
	m.gcir.Record(incorrect)
	m.cacheOK = false
}

// Reset restores counters to the initial value and clears histories.
func (m *CounterTable) Reset() {
	for i := range m.table {
		m.table[i] = m.initVal
	}
	m.bhr.Set(0)
	m.gcir.Set(0)
	m.cacheOK = false
}

// Max returns the saturation ceiling (buckets are 0..Max).
func (m *CounterTable) Max() uint8 { return m.max }

// TableBits returns log2 of the table size.
func (m *CounterTable) TableBits() uint { return m.tableBits }

// Name implements Mechanism.
func (m *CounterTable) Name() string {
	return fmt.Sprintf("1lev-%s.%s%d-2^%d", m.scheme, m.kind, m.max, m.tableBits)
}
