package core

import (
	"branchconf/internal/trace"
)

// Confidencer is implemented by predictors that carry a native confidence
// estimate for each prediction — TAGE's provider-counter strength, the
// perceptron's output margin. The value is the same few-bit level the
// predictor exposes through its annotation hook
// (predictor.StateAnnotator), so the mechanism below works identically
// live and from annotated streams.
type Confidencer interface {
	// Confidence returns the pre-update confidence level (0 = none) the
	// prediction for this PC carries.
	Confidence(pc uint64) uint8
}

// NativeConfidence surfaces a modern predictor's own confidence estimate
// as a confidence mechanism, for head-to-head comparison against the
// paper's CIR tables on the same trace (the realtrace experiment). The
// bucket is the predictor's confidence level itself, so CounterReducer
// thresholds and per-bucket analysis apply unchanged.
//
// Like CounterStrength, the mechanism holds no tables of its own — the
// signal lives entirely in the predictor — so it cannot be factored into
// geometry-keyed bucket lanes (core.Factorable): its buckets depend on
// predictor internals, not on an index scheme. It implements StateCoupled
// instead and rides the annotated path, where the engine has already
// captured the confidence level next to each mispredict bit; the CIR
// mechanisms it is compared against remain factorable and keep their
// stage-3 counter-factoring kernels.
type NativeConfidence struct {
	pred Confidencer
}

// NewNativeConfidence wraps the live predictor whose native estimate
// supplies the signal. The wrapped predictor must be the one making the
// predictions and is trained by the caller as usual.
func NewNativeConfidence(pred Confidencer) *NativeConfidence {
	return &NativeConfidence{pred: pred}
}

// NewAnnotatedConfidence returns a native-confidence mechanism with no
// live predictor reference, usable only through BucketWithState — i.e.
// under the batched engine with a state-annotating predictor, or
// annotated replay.
func NewAnnotatedConfidence() *NativeConfidence {
	return &NativeConfidence{}
}

// Bucket returns the predictor's confidence level for this branch. It
// requires a live predictor reference; the annotated form answers only
// through BucketWithState.
func (c *NativeConfidence) Bucket(r trace.Record) uint64 {
	if c.pred == nil {
		panic("core: annotated NativeConfidence has no live predictor; run it under the batched or annotated engine")
	}
	return uint64(c.pred.Confidence(r.PC))
}

// BucketWithState implements StateCoupled from the captured confidence
// level.
func (c *NativeConfidence) BucketWithState(_ trace.Record, state uint8) uint64 {
	return uint64(state)
}

// Update is a no-op: the signal lives entirely in the predictor.
func (c *NativeConfidence) Update(trace.Record, bool) {}

// Reset is a no-op for the same reason (reset the predictor instead).
func (c *NativeConfidence) Reset() {}

// Name implements Mechanism.
func (c *NativeConfidence) Name() string { return "native-confidence" }
