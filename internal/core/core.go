// Package core implements the paper's contribution: hardware mechanisms
// that assign a high/low confidence level to each conditional branch
// prediction (Jacobsen, Rotenberg & Smith, "Assigning Confidence to
// Conditional Branch Predictions", MICRO-29, 1996).
//
// A confidence mechanism is split in two stages, mirroring the paper's
// Figure 3:
//
//   - A Mechanism owns the Correct/Incorrect Register (CIR) tables. For
//     every dynamic branch it returns the Bucket read from the table — the
//     raw CIR pattern, or the compressed counter value when counters are
//     embedded in the table — and is then trained with the prediction's
//     correctness.
//
//   - A reduction turns the bucket into the one-bit high/low confidence
//     signal. The idealised reduction of Sections 2-4 sorts buckets by
//     their measured misprediction rates offline (see internal/analysis);
//     the practical reductions of Section 5 (ones counting, saturating
//     counters, resetting counters) are simple threshold functions
//     available here as Reducers.
//
// Mechanisms follow the same contract as predictors: for each branch call
// Bucket first, then Update. They are deterministic and not safe for
// concurrent use.
package core

import (
	"fmt"

	"branchconf/internal/trace"
	"branchconf/internal/xrand"
)

// Mechanism reads a confidence bucket for each dynamic branch and is
// trained with prediction correctness.
type Mechanism interface {
	// Bucket returns the table value the mechanism reads for this branch,
	// before any update. Equal buckets are statistically equivalent: the
	// analysis layer accumulates per-bucket misprediction statistics.
	Bucket(r trace.Record) uint64
	// Update trains the mechanism: incorrect reports whether the
	// underlying branch prediction was wrong.
	Update(r trace.Record, incorrect bool)
	// Reset restores the initial table state.
	Reset()
	// Name identifies the configuration (e.g. "1lev-BHRxorPC-cir16-64K").
	Name() string
}

// Fused is an optional Mechanism fast path for replay loops that always
// pair the two calls: BucketUpdate must behave exactly like Bucket(r)
// immediately followed by Update(r, incorrect), returning Bucket's value.
// Implementations can skip the cross-call index memo the split protocol
// needs, saving a dynamic dispatch and an index recomputation per branch.
type Fused interface {
	Mechanism
	BucketUpdate(r trace.Record, incorrect bool) uint64
}

// IndexScheme selects how a confidence table is addressed, the axis
// explored in Section 3.1 and Figure 5.
type IndexScheme int

// Index schemes. The paper reports results for PC, BHR and PCxorBHR, finds
// the global CIR of little value, and found xor better than concatenation;
// the dismissed schemes are implemented so those claims can be reproduced.
const (
	// IndexPC addresses the table with branch PC bits alone.
	IndexPC IndexScheme = iota
	// IndexBHR addresses with the global branch history register alone.
	IndexBHR
	// IndexPCxorBHR addresses with PC xor BHR (the paper's best).
	IndexPCxorBHR
	// IndexGCIR addresses with a global correct/incorrect register.
	IndexGCIR
	// IndexPCxorGCIR addresses with PC xor the global CIR.
	IndexPCxorGCIR
	// IndexPCconcatBHR concatenates half-width PC and BHR fields (the
	// concatenation alternative the paper's preliminary studies rejected).
	IndexPCconcatBHR
)

// String returns the scheme's conventional name as used in the paper's
// figure legends.
func (s IndexScheme) String() string {
	switch s {
	case IndexPC:
		return "PC"
	case IndexBHR:
		return "BHR"
	case IndexPCxorBHR:
		return "BHRxorPC"
	case IndexGCIR:
		return "GCIR"
	case IndexPCxorGCIR:
		return "GCIRxorPC"
	case IndexPCconcatBHR:
		return "PCcatBHR"
	default:
		return fmt.Sprintf("IndexScheme(%d)", int(s))
	}
}

// OneLevelSchemes returns the three index schemes evaluated in Figure 5.
func OneLevelSchemes() []IndexScheme {
	return []IndexScheme{IndexPC, IndexBHR, IndexPCxorBHR}
}

// InitPolicy selects the initial CIR table contents, the axis studied in
// Section 5.4 and Figure 11.
type InitPolicy int

// Initialisation policies. The paper finds all-ones (and anything nonzero)
// clearly better than all-zeros, and proposes "lastbit" — only the oldest
// bit set — as a cheap nonzero alternative.
const (
	// InitOnes fills every CIR with ones (the paper's default, §4).
	InitOnes InitPolicy = iota
	// InitZeros fills every CIR with zeros.
	InitZeros
	// InitLastBit sets only the oldest bit of each CIR.
	InitLastBit
	// InitRandom fills CIRs with deterministic pseudo-random bits.
	InitRandom
)

// String returns the policy name as used in Figure 11's legend.
func (p InitPolicy) String() string {
	switch p {
	case InitOnes:
		return "one"
	case InitZeros:
		return "zero"
	case InitLastBit:
		return "lastbit"
	case InitRandom:
		return "random"
	default:
		return fmt.Sprintf("InitPolicy(%d)", int(p))
	}
}

// InitPolicies returns the four policies compared in Figure 11.
func InitPolicies() []InitPolicy {
	return []InitPolicy{InitOnes, InitZeros, InitLastBit, InitRandom}
}

// initValue returns the initial contents for the table entry at index i
// under policy p, for a width-bit CIR. rng drives InitRandom and must be
// non-nil for that policy.
func (p InitPolicy) initValue(width uint, rng *xrand.RNG) uint64 {
	switch p {
	case InitOnes:
		if width == 64 {
			return ^uint64(0)
		}
		return (uint64(1) << width) - 1
	case InitZeros:
		return 0
	case InitLastBit:
		return uint64(1) << (width - 1)
	case InitRandom:
		if width == 64 {
			return rng.Uint64()
		}
		return rng.Uint64() & ((uint64(1) << width) - 1)
	default:
		panic(fmt.Sprintf("core: unknown init policy %d", int(p)))
	}
}
