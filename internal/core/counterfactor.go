package core

import (
	"fmt"
	"math/bits"

	"branchconf/internal/bitvec"
	"branchconf/internal/trace"
)

// Factorable support for the compressed-counter tables of §5.1. A counter
// table's per-branch bucket is the counter value read before training, and
// the counter state is a pure fold of the (index, mispredict) stream from a
// constant initial value — the saturating/resetting step consumes only the
// prediction-correctness bit, never anything a reduction or threshold can
// influence. So the counter variants factor exactly like the CIR tables:
// one lane build per geometry, every Max/threshold variant served from the
// shared histogram at O(1) marginal cost.

// counterStep monomorphizes the fill kernel over the two update policies:
// each policy is a zero-size type whose step inlines into the walk, so the
// per-branch cost carries no kind switch.
type counterStep interface {
	resettingStep | saturatingStep
	step(v, max uint8, inc uint64) uint8
}

// resettingStep is the §5.1 resetting policy: any misprediction zeroes the
// counter, a correct prediction counts up to the ceiling.
type resettingStep struct{}

func (resettingStep) step(v, max uint8, inc uint64) uint8 {
	if inc != 0 {
		return 0
	}
	if v < max {
		v++
	}
	return v
}

// saturatingStep counts down on mispredictions with a floor of zero.
type saturatingStep struct{}

func (saturatingStep) step(v, max uint8, inc uint64) uint8 {
	if inc != 0 {
		if v > 0 {
			v--
		}
		return v
	}
	if v < max {
		v++
	}
	return v
}

// GeometryKey implements Factorable. The key covers every input the counter
// sequence depends on: update policy, index scheme, table size, saturation
// ceiling, initial value, and history length. There is no seed component —
// counter tables initialise to a constant, never randomly.
func (m *CounterTable) GeometryKey() string {
	return fmt.Sprintf("ctr|%s|%s|t%d|m%d|i%d|h%d",
		m.kind, m.scheme, m.tableBits, m.max, m.initVal, m.bhr.Width())
}

// BucketWidth implements Factorable: buckets are counter values 0..Max.
func (m *CounterTable) BucketWidth() uint { return uint(bits.Len8(m.max)) }

// FillBucketLane implements Factorable, mirroring CounterTable.BucketUpdate
// over a raw []uint8 table: read the indexed counter, emit it, apply the
// policy step, and advance the global histories. Like the CIR kernels the
// index scheme is hoisted to selector constants and lane words flush in
// batches; the policy dispatch is hoisted out of the walk entirely by
// monomorphization. Equivalence with the split Bucket/Update protocol is
// pinned by TestFillBucketLaneMatchesSplit and the tally==replay suite.
func (m *CounterTable) FillBucketLane(recs []trace.Record, miss []uint64, lane *bitvec.Dense, counts []uint32) {
	m.FillBucketLaneResume(m.NewFactorState(), recs, miss, lane, counts)
}

// fillCounter is the counter walk, monomorphized per update policy. It
// continues from cs (table in place, histories written back at exit), so
// segmented walks reuse the same kernel.
func fillCounter[S counterStep](m *CounterTable, cs *counterState, recs []trace.Record, miss []uint64, lane *bitvec.Dense, counts []uint32) {
	counts, bucketSel := countSlice(counts)
	var (
		st        S
		table     = cs.table
		sel       = selectorsFor(m.scheme, m.tableBits)
		max       = m.max
		bhrMask   = widthMask(m.bhr.Width())
		gcirMask  = widthMask(m.gcir.Width())
		width     = m.BucketWidth()
		perWord   = lane.PerWord()
		buf       = make([]uint64, 0, laneBufWords)
		bhr, gcir = cs.bhr, cs.gcir
		missWd    uint64
		cur       uint64 // lane word under construction
		curSh     uint   // bit offset of the next bucket within cur
		inWord    uint   // buckets packed into cur so far
	)
	for i := range recs {
		sh := uint(i) & 63
		if sh == 0 {
			missWd = miss[i>>6]
		}
		inc := missWd >> sh & 1
		idx := (recs[i].PC>>2&sel.pcMask ^ (bhr&sel.bhrSel)<<sel.bhrShift ^ gcir&sel.gcirSel) & sel.tblMask
		v := table[idx]
		b := uint64(v)
		cur |= b << curSh
		curSh += width
		if inWord++; inWord == perWord {
			if buf = append(buf, cur); len(buf) == laneBufWords {
				lane.AppendWords(buf, laneBufWords*int(perWord))
				buf = buf[:0]
			}
			cur, curSh, inWord = 0, 0, 0
		}
		ci := (b & bucketSel) << 1
		counts[ci]++
		counts[ci+1] += uint32(inc)
		table[idx] = st.step(v, max, inc)
		bhr = bhr << 1 & bhrMask
		if recs[i].Taken {
			bhr |= 1
		}
		gcir = (gcir<<1 | inc) & gcirMask
	}
	flushLane(lane, buf, perWord, inWord, cur)
	cs.bhr, cs.gcir = bhr, gcir
}
