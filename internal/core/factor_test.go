package core

import (
	"fmt"
	"testing"

	"branchconf/internal/bitvec"
	"branchconf/internal/trace"
	"branchconf/internal/xrand"
)

// factorableBuilders spans every factorable paper geometry: all one-level
// index schemes, every init policy, every two-level second-index variant,
// and both counter-table kinds over the scheme/Max/init/history space the
// §5 studies sweep, plus non-default geometries exercising distinct table,
// CIR and history widths.
func factorableBuilders() map[string]func() Factorable {
	builders := map[string]func() Factorable{}
	for _, scheme := range []IndexScheme{IndexPC, IndexBHR, IndexPCxorBHR, IndexGCIR, IndexPCxorGCIR, IndexPCconcatBHR} {
		scheme := scheme
		builders["onelevel-"+scheme.String()] = func() Factorable { return PaperOneLevel(scheme) }
	}
	for _, init := range []InitPolicy{InitOnes, InitZeros, InitLastBit, InitRandom} {
		init := init
		builders["onelevel-init-"+init.String()] = func() Factorable {
			return NewOneLevel(OneLevelConfig{Scheme: IndexPCxorBHR, TableBits: 10, CIRBits: 8, Init: init, InitSeed: 7})
		}
	}
	for _, s2 := range []SecondIndex{L2CIR, L2CIRxorPC, L2CIRxorBHR, L2CIRxorPCxorBHR} {
		s2 := s2
		builders["twolevel-"+s2.String()] = func() Factorable {
			return NewTwoLevel(TwoLevelConfig{Scheme1: IndexPCxorBHR, Scheme2: s2})
		}
	}
	builders["twolevel-small"] = func() Factorable {
		return NewTwoLevel(TwoLevelConfig{Scheme1: IndexPC, Scheme2: L2CIRxorPC,
			L1Bits: 6, L1CIRBits: 6, L2CIRBits: 10, HistoryBits: 5, Init: InitRandom, InitSeed: 11})
	}
	for _, kind := range []CounterKind{Saturating, Resetting} {
		kind := kind
		builders["counter-"+kind.String()] = func() Factorable { return NewCounterTable(CounterConfig{Kind: kind, Scheme: IndexPCxorBHR}) }
		for _, scheme := range []IndexScheme{IndexPC, IndexGCIR, IndexPCconcatBHR} {
			kind, scheme := kind, scheme
			builders["counter-"+kind.String()+"-"+scheme.String()] = func() Factorable {
				return NewCounterTable(CounterConfig{Kind: kind, Scheme: scheme, TableBits: 10})
			}
		}
		for _, max := range []uint8{4, 8, 32, 64} {
			kind, max := kind, max
			builders[fmt.Sprintf("counter-%s-max%d", kind, max)] = func() Factorable {
				return NewCounterTable(CounterConfig{Kind: kind, Scheme: IndexPCxorBHR, TableBits: 10, Max: max})
			}
		}
	}
	builders["counter-init-hist"] = func() Factorable {
		return NewCounterTable(CounterConfig{Kind: Resetting, Scheme: IndexPCxorBHR, TableBits: 10, Max: 16, Init: 7, HistoryBits: 12})
	}
	builders["counter-smallreset"] = func() Factorable { return SmallResetting(8) }
	return builders
}

// factorStream builds a deterministic pseudo-random branch stream with its
// packed mispredict bits.
func factorStream(n int) (recs []trace.Record, miss []uint64) {
	rng := xrand.New(0xFAC702)
	recs = make([]trace.Record, n)
	miss = make([]uint64, (n+63)/64)
	for i := range recs {
		recs[i] = rec(0x1000+16*(rng.Uint64()%512), rng.Uint64()%3 != 0)
		if rng.Uint64()%5 == 0 {
			miss[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return recs, miss
}

// TestFillBucketLaneMatchesSplit is the factorability proof the stage-3
// tally engine rests on: for every factorable paper geometry, the
// monomorphic lane kernel must emit exactly the bucket sequence the split
// Bucket-then-Update protocol observes over the same stream. The kernel
// runs against the *trained* instance, pinning the other half of the
// contract — FillBucketLane replays a private copy of the initial state
// and is indifferent to (and must not perturb) the receiver's live tables.
func TestFillBucketLaneMatchesSplit(t *testing.T) {
	const n = 20000
	recs, miss := factorStream(n)
	for name, build := range factorableBuilders() {
		t.Run(name, func(t *testing.T) {
			m := build()
			want := make([]uint64, n)
			for i := range recs {
				incorrect := miss[i>>6]>>(uint(i)&63)&1 == 1
				want[i] = m.Bucket(recs[i])
				m.Update(recs[i], incorrect)
			}
			// m's tables are now fully trained; the kernel must be blind to
			// that and reproduce the from-initial-state sequence.
			lane := bitvec.NewDense(m.BucketWidth(), n)
			counts := make([]uint32, 2<<m.BucketWidth())
			m.FillBucketLane(recs, miss, lane, counts)
			if lane.Len() != n {
				t.Fatalf("lane holds %d buckets, want %d", lane.Len(), n)
			}
			wantCounts := make([]uint32, len(counts))
			for i := range want {
				if got := lane.At(i); got != want[i] {
					t.Fatalf("branch %d: lane bucket %#x, split protocol %#x", i, got, want[i])
				}
				wantCounts[2*want[i]]++
				wantCounts[2*want[i]+1] += uint32(miss[i>>6] >> (uint(i) & 63) & 1)
			}
			// The fused histogram must count exactly what the lane records.
			for b := range counts {
				if counts[b] != wantCounts[b] {
					t.Fatalf("fused histogram slot %d: got %d, want %d", b, counts[b], wantCounts[b])
				}
			}
			// A nil histogram must not change the lane.
			lane2 := bitvec.NewDense(m.BucketWidth(), n)
			m.FillBucketLane(recs, miss, lane2, nil)
			for i := range want {
				if got := lane2.At(i); got != want[i] {
					t.Fatalf("nil-counts branch %d: lane bucket %#x, want %#x", i, got, want[i])
				}
			}
			// Training must also leave the replay-facing protocol intact:
			// after Reset the split walk reproduces the same sequence.
			m.Reset()
			for i := range recs[:1000] {
				if got := m.Bucket(recs[i]); got != want[i] {
					t.Fatalf("post-Reset branch %d: bucket %#x, want %#x", i, got, want[i])
				}
				m.Update(recs[i], miss[i>>6]>>(uint(i)&63)&1 == 1)
			}
		})
	}
}

// TestGeometryKeyDistinguishesConfigs: geometry keys must separate every
// configuration whose bucket sequences can differ — equal keys are a
// license to share one bucket stream.
func TestGeometryKeyDistinguishesConfigs(t *testing.T) {
	mechs := []Factorable{
		PaperOneLevel(IndexPC),
		PaperOneLevel(IndexPCxorBHR),
		NewOneLevel(OneLevelConfig{Scheme: IndexPCxorBHR, TableBits: 10, CIRBits: 8, Init: InitOnes}),
		NewOneLevel(OneLevelConfig{Scheme: IndexPCxorBHR, TableBits: 10, CIRBits: 8, Init: InitZeros}),
		NewOneLevel(OneLevelConfig{Scheme: IndexPCxorBHR, TableBits: 10, CIRBits: 8, Init: InitRandom, InitSeed: 1}),
		NewOneLevel(OneLevelConfig{Scheme: IndexPCxorBHR, TableBits: 10, CIRBits: 8, Init: InitRandom, InitSeed: 2}),
		NewOneLevel(OneLevelConfig{Scheme: IndexPCxorBHR, TableBits: 11, CIRBits: 8, Init: InitOnes}),
		NewOneLevel(OneLevelConfig{Scheme: IndexPCxorBHR, TableBits: 10, CIRBits: 9, Init: InitOnes}),
		NewTwoLevel(TwoLevelConfig{Scheme1: IndexPC, Scheme2: L2CIR}),
		NewTwoLevel(TwoLevelConfig{Scheme1: IndexPCxorBHR, Scheme2: L2CIR}),
		NewTwoLevel(TwoLevelConfig{Scheme1: IndexPCxorBHR, Scheme2: L2CIRxorPCxorBHR}),
		PaperResetting(),
		NewCounterTable(CounterConfig{Kind: Saturating, Scheme: IndexPCxorBHR}),
		NewCounterTable(CounterConfig{Kind: Resetting, Scheme: IndexPC}),
		NewCounterTable(CounterConfig{Kind: Resetting, Scheme: IndexPCxorBHR, TableBits: 10}),
		NewCounterTable(CounterConfig{Kind: Resetting, Scheme: IndexPCxorBHR, Max: 8}),
		NewCounterTable(CounterConfig{Kind: Resetting, Scheme: IndexPCxorBHR, Init: 3}),
		SmallResetting(16),
	}
	seen := map[string]int{}
	for i, m := range mechs {
		key := m.GeometryKey()
		if j, dup := seen[key]; dup {
			t.Errorf("configs %d and %d share geometry key %q", j, i, key)
		}
		seen[key] = i
	}
	// Identical configurations must converge on one key: that is what lets
	// the cache serve a second variant from the first variant's stream.
	if a, b := PaperOneLevel(IndexPCxorBHR).GeometryKey(), PaperOneLevel(IndexPCxorBHR).GeometryKey(); a != b {
		t.Errorf("identical configs produced distinct keys %q and %q", a, b)
	}
}
