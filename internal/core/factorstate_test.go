package core

import (
	"strings"
	"testing"

	"branchconf/internal/bitvec"
	"branchconf/internal/trace"
)

// resumableBuilders is factorableBuilders plus the wide-register geometries
// that exercise the uint64 kernel paths, asserted up front to Resumable —
// every factorable mechanism in the package must support pause-and-resume.
func resumableBuilders(t *testing.T) map[string]func() Resumable {
	t.Helper()
	out := map[string]func() Resumable{}
	for name, build := range factorableBuilders() {
		build := build
		if _, ok := build().(Resumable); !ok {
			t.Fatalf("%s: factorable mechanism does not implement Resumable", name)
		}
		out[name] = func() Resumable { return build().(Resumable) }
	}
	out["onelevel-wide"] = func() Resumable {
		return NewOneLevel(OneLevelConfig{Scheme: IndexPCxorGCIR, TableBits: 8, CIRBits: 20, Init: InitRandom, InitSeed: 3})
	}
	out["twolevel-wide"] = func() Resumable {
		return NewTwoLevel(TwoLevelConfig{Scheme1: IndexPCxorBHR, Scheme2: L2CIRxorPC,
			L1Bits: 7, L1CIRBits: 6, L2CIRBits: 18, HistoryBits: 9, Init: InitRandom, InitSeed: 5})
	}
	return out
}

// sliceMiss repacks the mispredict bits for recs[start:start+n] so a
// segment's bit 0 lines up with its first record, exactly as the streaming
// engine's per-segment annotation does.
func sliceMiss(miss []uint64, start, n int) []uint64 {
	out := make([]uint64, (n+63)/64)
	for i := 0; i < n; i++ {
		j := start + i
		if miss[j>>6]>>(uint(j)&63)&1 == 1 {
			out[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return out
}

// laneCounts runs one whole-stream FillBucketLane and returns its lane and
// fused histogram (histogram only for widths where the tally engine would
// fuse one).
func laneCounts(m Resumable, recs []trace.Record, miss []uint64) (*bitvec.Dense, []uint32) {
	lane := bitvec.NewDense(m.BucketWidth(), len(recs))
	var counts []uint32
	if m.BucketWidth() <= 16 {
		counts = make([]uint32, 2<<m.BucketWidth())
	}
	m.FillBucketLane(recs, miss, lane, counts)
	return lane, counts
}

// TestFactorStateResumeMatchesWhole is the resumability proof the streaming
// engine rests on: cutting the stream at any boundary and feeding the parts
// through one FactorState must emit exactly the whole-stream lane and
// tallies — including cuts at 1, mid-word offsets, and n-1. Each segment
// fills its own lane, exactly as the streaming engine builds per-segment
// bucket streams, while the fused histogram accumulates across segments.
func TestFactorStateResumeMatchesWhole(t *testing.T) {
	const n = 8000
	recs, miss := factorStream(n)
	for name, build := range resumableBuilders(t) {
		t.Run(name, func(t *testing.T) {
			m := build()
			wantLane, wantCounts := laneCounts(m, recs, miss)
			for _, cuts := range [][]int{{1}, {977}, {n / 2}, {n - 1}, {63, 64, 65, 997, n / 2}} {
				st := m.NewFactorState()
				var counts []uint32
				if wantCounts != nil {
					counts = make([]uint32, len(wantCounts))
				}
				prev := 0
				for _, cut := range append(append([]int{}, cuts...), n) {
					lane := bitvec.NewDense(m.BucketWidth(), cut-prev)
					m.FillBucketLaneResume(st, recs[prev:cut], sliceMiss(miss, prev, cut-prev), lane, counts)
					if lane.Len() != cut-prev {
						t.Fatalf("segment [%d,%d): lane holds %d buckets", prev, cut, lane.Len())
					}
					for j := 0; j < lane.Len(); j++ {
						if got, want := lane.At(j), wantLane.At(prev+j); got != want {
							t.Fatalf("segment [%d,%d): branch %d bucket %#x, want %#x", prev, cut, prev+j, got, want)
						}
					}
					prev = cut
				}
				for b := range wantCounts {
					if counts[b] != wantCounts[b] {
						t.Fatalf("cuts %v: histogram slot %d = %d, want %d", cuts, b, counts[b], wantCounts[b])
					}
				}
			}
		})
	}
}

// TestFactorStateRoundTrip: serializing the state at a boundary and
// continuing from the restored copy must finish the walk identically, and
// the restored state must re-serialize to the same canonical bytes.
func TestFactorStateRoundTrip(t *testing.T) {
	const n = 6000
	recs, miss := factorStream(n)
	for name, build := range resumableBuilders(t) {
		t.Run(name, func(t *testing.T) {
			m := build()
			wantLane, wantCounts := laneCounts(m, recs, miss)
			for _, cut := range []int{0, 1, 2500, n} {
				st := m.NewFactorState()
				head := bitvec.NewDense(m.BucketWidth(), cut)
				var counts []uint32
				if wantCounts != nil {
					counts = make([]uint32, len(wantCounts))
				}
				m.FillBucketLaneResume(st, recs[:cut], sliceMiss(miss, 0, cut), head, counts)
				blob := st.MarshalState()
				restored, err := m.RestoreFactorState(blob)
				if err != nil {
					t.Fatalf("cut %d: restore: %v", cut, err)
				}
				if got := restored.MarshalState(); string(got) != string(blob) {
					t.Fatalf("cut %d: restored state re-serializes differently (%d vs %d bytes)", cut, len(got), len(blob))
				}
				tail := bitvec.NewDense(m.BucketWidth(), n-cut)
				m.FillBucketLaneResume(restored, recs[cut:], sliceMiss(miss, cut, n-cut), tail, counts)
				for i := 0; i < n; i++ {
					got := uint64(0)
					if i < cut {
						got = head.At(i)
					} else {
						got = tail.At(i - cut)
					}
					if want := wantLane.At(i); got != want {
						t.Fatalf("cut %d: branch %d bucket %#x, want %#x", cut, i, got, want)
					}
				}
				for b := range wantCounts {
					if counts[b] != wantCounts[b] {
						t.Fatalf("cut %d: histogram slot %d = %d, want %d", cut, b, counts[b], wantCounts[b])
					}
				}
			}
		})
	}
}

// TestFactorStateRejects: every structural corruption of a serialized state
// must fail restore — truncations, trailing bytes, foreign tags, oversized
// table entries, and histories outside their windows.
func TestFactorStateRejects(t *testing.T) {
	recs, miss := factorStream(3000)
	for name, build := range resumableBuilders(t) {
		t.Run(name, func(t *testing.T) {
			m := build()
			st := m.NewFactorState()
			lane := bitvec.NewDense(m.BucketWidth(), len(recs))
			m.FillBucketLaneResume(st, recs, miss, lane, nil)
			blob := st.MarshalState()

			reject := func(what string, data []byte) {
				t.Helper()
				if _, err := m.RestoreFactorState(data); err == nil {
					t.Errorf("%s: corrupt state accepted", what)
				}
			}
			reject("empty", nil)
			for _, cut := range []int{1, 5, 9, len(blob) / 2, len(blob) - 17, len(blob) - 1} {
				if cut < len(blob) {
					reject("truncated", blob[:cut])
				}
			}
			reject("trailing byte", append(append([]byte{}, blob...), 0))
			badTag := append([]byte{}, blob...)
			badTag[0] ^= 0xFF
			reject("foreign tag", badTag)
			badElem := append([]byte{}, blob...)
			badElem[9] ^= 0xFF // entry-width byte of the first table header
			reject("entry width", badElem)
			badLen := append([]byte{}, blob...)
			badLen[1] ^= 0xFF // low byte of the first table length
			reject("table length", badLen)
			// Histories live in the trailing 16 bytes; a set top byte puts
			// them far outside any paper-scale window.
			badBHR := append([]byte{}, blob...)
			badBHR[len(badBHR)-9] = 0xFF
			reject("BHR window", badBHR)
			badGCIR := append([]byte{}, blob...)
			badGCIR[len(badGCIR)-1] = 0xFF
			reject("GCIR window", badGCIR)
		})
	}
}

// TestFactorStateRejectsOversizedEntries pins the entry-range checks with
// hand-placed corruption per state layout: a table entry above its width
// mask (or counter ceiling) must fail restore even though lengths parse.
func TestFactorStateRejectsOversizedEntries(t *testing.T) {
	cases := map[string]struct {
		m   Resumable
		fix func(blob []byte) // sets one entry out of range
	}{
		"onelevel-uint16": {
			m: NewOneLevel(OneLevelConfig{Scheme: IndexPC, TableBits: 4, CIRBits: 8}),
			// first table entry's high byte: value ≥ 0x100 > 8-bit mask
			fix: func(b []byte) { b[1+9+1] = 0xFF },
		},
		"onelevel-uint64": {
			m: NewOneLevel(OneLevelConfig{Scheme: IndexPC, TableBits: 4, CIRBits: 20}),
			fix: func(b []byte) { b[1+9+7] = 0xFF },
		},
		"twolevel-second": {
			m: NewTwoLevel(TwoLevelConfig{Scheme1: IndexPC, Scheme2: L2CIR,
				L1Bits: 4, L1CIRBits: 4, L2CIRBits: 6, HistoryBits: 4}),
			// second table starts after tag + header + 16 uint16 entries
			fix: func(b []byte) { b[1+9+32+9+1] = 0xFF },
		},
		"counter-ceiling": {
			m: NewCounterTable(CounterConfig{Kind: Resetting, Scheme: IndexPC, TableBits: 4, Max: 16}),
			fix: func(b []byte) { b[1+9] = 17 },
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			blob := tc.m.NewFactorState().MarshalState()
			if _, err := tc.m.RestoreFactorState(blob); err != nil {
				t.Fatalf("pristine state rejected: %v", err)
			}
			tc.fix(blob)
			_, err := tc.m.RestoreFactorState(blob)
			if err == nil {
				t.Fatal("oversized entry accepted")
			}
			if !strings.Contains(err.Error(), "exceeds") {
				t.Fatalf("unexpected rejection: %v", err)
			}
		})
	}
}

// TestFactorStateCrossMechanism: a state restores only into its own kind,
// and handing a foreign state to FillBucketLaneResume is a programming
// error that panics.
func TestFactorStateCrossMechanism(t *testing.T) {
	one := PaperOneLevel(IndexPCxorBHR)
	ctr := PaperResetting()
	if _, err := one.RestoreFactorState(ctr.NewFactorState().MarshalState()); err == nil {
		t.Fatal("one-level restored a counter state")
	}
	if _, err := ctr.RestoreFactorState(one.NewFactorState().MarshalState()); err == nil {
		t.Fatal("counter restored a one-level state")
	}
	// Geometry mismatch within a kind: different table size.
	small := NewCounterTable(CounterConfig{Kind: Resetting, Scheme: IndexPCxorBHR, TableBits: 8})
	if _, err := ctr.RestoreFactorState(small.NewFactorState().MarshalState()); err == nil {
		t.Fatal("counter restored a state with the wrong table size")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("foreign state did not panic FillBucketLaneResume")
		}
	}()
	recs, miss := factorStream(64)
	one.FillBucketLaneResume(ctr.NewFactorState(), recs, miss, bitvec.NewDense(one.BucketWidth(), 64), nil)
}
