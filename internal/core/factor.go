package core

import (
	"fmt"

	"branchconf/internal/bitvec"
	"branchconf/internal/trace"
	"branchconf/internal/xrand"
)

// Factorable marks a mechanism whose per-branch bucket sequence is a pure
// function of the branch stream — (PC, Taken) per branch plus the
// prediction-correctness bit — and the mechanism's fixed table geometry.
// The sequence is independent of any reduction function, threshold, or
// other downstream consumer, so the stage-3 tally engine (internal/sim)
// can replay a stream through a geometry exactly once, memoize the packed
// bucket lane, and serve every variant sharing the geometry from a
// histogram of it.
//
// CIR-table mechanisms qualify: the table contents are shift registers of
// the correctness stream, addressed by hashes of PC and the global
// histories, none of which a reduction function can perturb. Counter-table
// mechanisms qualify on the same grounds: saturating and resetting counters
// fold the stream nonlinearly, but the fold consumes only the per-branch
// correctness bit from a constant initial value, so the counter read is
// still a pure function of (stream, geometry) — see counterfactor.go. Only
// predictor-state-coupled mechanisms (core.StateCoupled) stay on the
// stage-2 replay path.
type Factorable interface {
	Mechanism
	// GeometryKey uniquely identifies the bucket-determining configuration:
	// two mechanisms with equal keys must emit identical bucket sequences
	// over any stream. It keys the process-wide bucket-stream cache.
	GeometryKey() string
	// BucketWidth returns the lane width in bits sufficient to hold any
	// bucket the mechanism can emit.
	BucketWidth() uint
	// FillBucketLane replays the branch stream through a private copy of
	// the mechanism's initial state, appending one bucket per branch to
	// lane. miss holds the packed per-branch mispredict bits (bit i of
	// miss[i/64]). The receiver is not mutated and the walk must emit
	// exactly the bucket sequence Bucket/BucketUpdate would observe over
	// the same stream.
	//
	// counts, when non-nil, fuses the base-histogram tally into the walk:
	// for each branch landing in bucket b, counts[2b] is incremented and
	// counts[2b+1] is incremented when the branch mispredicted. The caller
	// must size counts to 2<<BucketWidth() entries (so it only passes
	// counts for widths where a dense histogram is practical) and zero it
	// beforehand. A nil counts skips the tally: the bucket value is already
	// in a register and the table's cache miss already paid, so counting
	// here costs two adjacent increments where a separate lane pass would
	// pay a second full walk.
	FillBucketLane(recs []trace.Record, miss []uint64, lane *bitvec.Dense, counts []uint32)
}

// widthMask returns the low-width-bits mask for shift-register emulation in
// the lane kernels (the bitvec mask helper is package-private).
func widthMask(width uint) uint64 {
	if width == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// missBit extracts the packed mispredict bit for branch i.
func missBit(miss []uint64, i int) uint64 {
	return miss[i>>6] >> (uint(i) & 63) & 1
}

// indexSelectors reduces schemeIndex's per-branch switch to straight-line
// arithmetic: every index scheme — including the concatenation, whose
// fields occupy disjoint bit ranges so xor and or coincide — is
//
//	((pc>>2)&pcMask ^ (bhr&bhrSel)<<bhrShift ^ gcir&gcirSel) & tblMask
//
// for constants fixed by (scheme, tableBits). Hoisting the dispatch out of
// the walk is worth ~3 ns/branch on the build kernels.
type indexSelectors struct {
	pcMask   uint64
	bhrSel   uint64
	bhrShift uint
	gcirSel  uint64
	tblMask  uint64
}

func selectorsFor(scheme IndexScheme, tableBits uint) indexSelectors {
	s := indexSelectors{tblMask: widthMask(tableBits)}
	switch scheme {
	case IndexPC:
		s.pcMask = s.tblMask
	case IndexBHR:
		s.bhrSel = ^uint64(0)
	case IndexPCxorBHR:
		s.pcMask = s.tblMask
		s.bhrSel = ^uint64(0)
	case IndexGCIR:
		s.gcirSel = ^uint64(0)
	case IndexPCxorGCIR:
		s.pcMask = s.tblMask
		s.gcirSel = ^uint64(0)
	case IndexPCconcatBHR:
		half := tableBits / 2
		s.pcMask = widthMask(half)
		s.bhrSel = widthMask(tableBits - half)
		s.bhrShift = half
	default:
		panic(fmt.Sprintf("core: unknown index scheme %d", int(scheme)))
	}
	return s
}

// laneBufWords sizes the kernels' local word buffer: packed lane words
// collect here (a bounds-checked slice append, inlined) and flush to the
// Dense in 4 KB batches, so the non-inlinable AppendWord call is paid once
// per few thousand branches instead of once per word.
const laneBufWords = 512

// flushLane drains the word buffer plus any partial word into the lane.
// Called once per batch and once at end-of-stream — never per branch.
func flushLane(lane *bitvec.Dense, buf []uint64, perWord, inWord uint, cur uint64) []uint64 {
	if inWord > 0 {
		buf = append(buf, cur)
		lane.AppendWords(buf, (len(buf)-1)*int(perWord)+int(inWord))
	} else if len(buf) > 0 {
		lane.AppendWords(buf, len(buf)*int(perWord))
	}
	return buf[:0]
}

// countSlice returns the histogram slice and bucket selector for a fused
// walk: with a nil counts every tally lands in a two-element dummy (bucket
// masked to zero), keeping the inner loop branch-free either way.
func countSlice(counts []uint32) ([]uint32, uint64) {
	if counts == nil {
		return make([]uint32, 2), 0
	}
	return counts, ^uint64(0)
}

// tableWord parameterizes the lane kernels over the CIR table's element
// width: registers up to 16 bits — every paper geometry — pack into a
// uint16 table a quarter the footprint of a []uint64, keeping the randomly
// indexed table L2-resident next to the fused histogram.
type tableWord interface {
	uint16 | uint64
}

// initTable fills a CIR table with its configured initial contents. Only
// InitRandom consumes the RNG (one draw per entry, in index order — the
// stream Reset replays); the other policies fill a constant without paying
// a call per entry.
func initTable[T tableWord](table []T, p InitPolicy, width uint, rng *xrand.RNG) {
	if p == InitRandom {
		for i := range table {
			table[i] = T(p.initValue(width, rng))
		}
		return
	}
	v := T(p.initValue(width, nil))
	for i := range table {
		table[i] = v
	}
}

// GeometryKey implements Factorable. The key covers every input the bucket
// sequence depends on: index scheme, table and CIR geometry, history
// length, and the initial table contents (policy plus seed).
func (m *OneLevel) GeometryKey() string {
	return fmt.Sprintf("1lev|%s|t%d|c%d|h%d|%s|s%d",
		m.scheme, m.tableBits, m.cirBits, m.bhr.Width(), m.init, m.initSeed)
}

// BucketWidth implements Factorable: buckets are cirBits-wide CIR patterns.
func (m *OneLevel) BucketWidth() uint { return m.cirBits }

// FillBucketLane implements Factorable. The walk is the monomorphic twin of
// BucketUpdate over a raw uint64 table: read the indexed CIR, emit it,
// shift in the outcome, and advance the global histories — no interface
// dispatch, no per-entry register structs, no record copies, no per-branch
// scheme switch (selectorsFor), and lane words flushed whole instead of one
// Append per branch. Equivalence with the split Bucket/Update protocol is
// pinned by TestFillBucketLane*. The whole-stream walk is a single resumed
// segment from the initial state.
func (m *OneLevel) FillBucketLane(recs []trace.Record, miss []uint64, lane *bitvec.Dense, counts []uint32) {
	m.FillBucketLaneResume(m.NewFactorState(), recs, miss, lane, counts)
}

// fillOneLevel is the one-level walk, monomorphized per table element
// width. It continues from st — table in place, histories loaded into
// locals at entry and stored back at exit — so a segment boundary costs two
// stores, not a kernel change.
func fillOneLevel[T tableWord](m *OneLevel, st *oneLevelState[T], recs []trace.Record, miss []uint64, lane *bitvec.Dense, counts []uint32) {
	counts, bucketSel := countSlice(counts)
	var (
		table     = st.table
		sel       = selectorsFor(m.scheme, m.tableBits)
		cirMask   = widthMask(m.cirBits)
		bhrMask   = widthMask(m.bhr.Width())
		gcirMask  = widthMask(m.gcir.Width())
		width     = m.cirBits
		perWord   = lane.PerWord()
		buf       = make([]uint64, 0, laneBufWords)
		bhr, gcir = st.bhr, st.gcir
		missWd    uint64
		cur       uint64 // lane word under construction
		curSh     uint   // bit offset of the next bucket within cur
		inWord    uint   // buckets packed into cur so far
	)
	for i := range recs {
		sh := uint(i) & 63
		if sh == 0 {
			missWd = miss[i>>6]
		}
		inc := missWd >> sh & 1
		idx := (recs[i].PC>>2&sel.pcMask ^ (bhr&sel.bhrSel)<<sel.bhrShift ^ gcir&sel.gcirSel) & sel.tblMask
		b := uint64(table[idx])
		cur |= b << curSh
		curSh += width
		if inWord++; inWord == perWord {
			if buf = append(buf, cur); len(buf) == laneBufWords {
				lane.AppendWords(buf, laneBufWords*int(perWord))
				buf = buf[:0]
			}
			cur, curSh, inWord = 0, 0, 0
		}
		ci := (b & bucketSel) << 1
		counts[ci]++
		counts[ci+1] += uint32(inc)
		table[idx] = T((b<<1 | inc) & cirMask)
		bhr = bhr << 1 & bhrMask
		if recs[i].Taken {
			bhr |= 1
		}
		gcir = (gcir<<1 | inc) & gcirMask
	}
	flushLane(lane, buf, perWord, inWord, cur)
	st.bhr, st.gcir = bhr, gcir
}

// GeometryKey implements Factorable for the two-level mechanism; both
// levels' geometry and the shared initialisation stream feed the key.
func (m *TwoLevel) GeometryKey() string {
	return fmt.Sprintf("2lev|%s|%s|t%d|c%d|c%d|h%d|%s|s%d",
		m.scheme1, m.scheme2, m.l1Bits, m.l1CIRBits, m.l2CIRBits,
		m.bhr.Width(), m.init, m.initSeed)
}

// BucketWidth implements Factorable: buckets are second-level CIR patterns.
func (m *TwoLevel) BucketWidth() uint { return m.l2CIRBits }

// FillBucketLane implements Factorable, mirroring TwoLevel.BucketUpdate:
// the second-level index is computed from the first-level CIR before
// either level trains, and both tables are initialised from one RNG stream
// in Reset order (first level, then second). Like the one-level kernel,
// both index schemes are hoisted to selector constants — the second index
// is (cir ^ pc-part ^ bhr-part) & mask for every L2 scheme.
func (m *TwoLevel) FillBucketLane(recs []trace.Record, miss []uint64, lane *bitvec.Dense, counts []uint32) {
	m.FillBucketLaneResume(m.NewFactorState(), recs, miss, lane, counts)
}

// fillTwoLevel is the two-level walk, monomorphized per table element
// width. Like fillOneLevel it continues from st and stores the histories
// back at exit.
func fillTwoLevel[T tableWord](m *TwoLevel, st *twoLevelState[T], recs []trace.Record, miss []uint64, lane *bitvec.Dense, counts []uint32) {
	counts, bucketSel := countSlice(counts)
	var pcSel2, bhrSel2 uint64
	switch m.scheme2 {
	case L2CIR:
	case L2CIRxorPC:
		pcSel2 = widthMask(m.l1CIRBits)
	case L2CIRxorBHR:
		bhrSel2 = ^uint64(0)
	case L2CIRxorPCxorBHR:
		pcSel2 = widthMask(m.l1CIRBits)
		bhrSel2 = ^uint64(0)
	default:
		panic(fmt.Sprintf("core: unknown second index %d", int(m.scheme2)))
	}
	var (
		t1, t2    = st.t1, st.t2
		sel       = selectorsFor(m.scheme1, m.l1Bits)
		l1Mask    = widthMask(m.l1CIRBits)
		l2Mask    = widthMask(m.l2CIRBits)
		idx2Mask  = widthMask(m.l1CIRBits)
		bhrMask   = widthMask(m.bhr.Width())
		gcirMask  = widthMask(m.gcir.Width())
		width     = m.l2CIRBits
		perWord   = lane.PerWord()
		buf       = make([]uint64, 0, laneBufWords)
		bhr, gcir = st.bhr, st.gcir
		missWd    uint64
		cur       uint64
		curSh     uint
		inWord    uint
	)
	for i := range recs {
		sh := uint(i) & 63
		if sh == 0 {
			missWd = miss[i>>6]
		}
		inc := missWd >> sh & 1
		pc := recs[i].PC
		i1 := (pc>>2&sel.pcMask ^ (bhr&sel.bhrSel)<<sel.bhrShift ^ gcir&sel.gcirSel) & sel.tblMask
		cir := uint64(t1[i1])
		i2 := (cir ^ pc>>2&pcSel2 ^ bhr&bhrSel2) & idx2Mask
		b := uint64(t2[i2])
		cur |= b << curSh
		curSh += width
		if inWord++; inWord == perWord {
			if buf = append(buf, cur); len(buf) == laneBufWords {
				lane.AppendWords(buf, laneBufWords*int(perWord))
				buf = buf[:0]
			}
			cur, curSh, inWord = 0, 0, 0
		}
		ci := (b & bucketSel) << 1
		counts[ci]++
		counts[ci+1] += uint32(inc)
		t1[i1] = T((cir<<1 | inc) & l1Mask)
		t2[i2] = T((b<<1 | inc) & l2Mask)
		bhr = bhr << 1 & bhrMask
		if recs[i].Taken {
			bhr |= 1
		}
		gcir = (gcir<<1 | inc) & gcirMask
	}
	flushLane(lane, buf, perWord, inWord, cur)
	st.bhr, st.gcir = bhr, gcir
}
