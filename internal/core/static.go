package core

import "branchconf/internal/trace"

// StaticProfile is the idealised static confidence method of Section 2:
// every dynamic prediction of the same static branch lands in the same
// bucket (keyed by branch PC), so sorting buckets by misprediction rate
// reproduces the profile-and-sort procedure behind Figure 2. The method is
// "perfectly profiled" by construction — the statistics are collected on
// the same run they are sorted over — making it the optimistic baseline
// the dynamic mechanisms are compared against.
//
// StaticProfile keeps no tables: the mechanism is stateless and the whole
// method lives in the offline analysis.
type StaticProfile struct{}

// NewStaticProfile returns the static profile mechanism.
func NewStaticProfile() StaticProfile { return StaticProfile{} }

// Bucket keys every prediction by its static branch address.
func (StaticProfile) Bucket(r trace.Record) uint64 { return r.PC }

// BucketUpdate implements Fused.
func (StaticProfile) BucketUpdate(r trace.Record, _ bool) uint64 { return r.PC }

// Update is a no-op: the static method has no dynamic state.
func (StaticProfile) Update(trace.Record, bool) {}

// Reset is a no-op.
func (StaticProfile) Reset() {}

// Name implements Mechanism.
func (StaticProfile) Name() string { return "static" }
