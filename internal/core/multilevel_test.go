package core

import (
	"testing"

	"branchconf/internal/trace"
)

func TestMultiEstimatorLevels(t *testing.T) {
	m := NewMultiEstimator(
		NewCounterTable(CounterConfig{Kind: Resetting, Scheme: IndexPC, TableBits: 8, Max: 16}),
		[]uint64{1, 8, 16})
	if m.Levels() != 4 {
		t.Fatalf("Levels = %d", m.Levels())
	}
	r := trace.Record{PC: 0x1000, Target: 0x1040, Taken: true}
	// Fresh counter = 0 → level 0.
	if got := m.Level(r); got != 0 {
		t.Fatalf("fresh level %d", got)
	}
	// After 1 correct: counter 1 → level 1 (1 <= 1 < 8).
	m.Update(r, false)
	if got := m.Level(r); got != 1 {
		t.Fatalf("counter 1 level %d", got)
	}
	// Drive to 8: level 2.
	for i := 0; i < 7; i++ {
		m.Update(r, false)
	}
	if got := m.Level(r); got != 2 {
		t.Fatalf("counter 8 level %d", got)
	}
	// Saturate: level 3.
	for i := 0; i < 10; i++ {
		m.Update(r, false)
	}
	if got := m.Level(r); got != 3 {
		t.Fatalf("saturated level %d", got)
	}
	// A misprediction drops straight back to level 0.
	m.Update(r, true)
	if got := m.Level(r); got != 0 {
		t.Fatalf("post-miss level %d", got)
	}
	m.Reset()
	if got := m.Level(r); got != 0 {
		t.Fatalf("post-reset level %d", got)
	}
	if m.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestMultiEstimatorPanics(t *testing.T) {
	mech := PaperResetting()
	for name, ladder := range map[string][]uint64{
		"empty":          {},
		"non-increasing": {4, 4},
		"decreasing":     {8, 2},
	} {
		ladder := ladder
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s ladder did not panic", name)
				}
			}()
			NewMultiEstimator(mech, ladder)
		}()
	}
}

func TestMultiEstimatorLadderIsCopied(t *testing.T) {
	ladder := []uint64{1, 8}
	m := NewMultiEstimator(
		NewCounterTable(CounterConfig{Kind: Resetting, Scheme: IndexPC, TableBits: 8, Max: 16}),
		ladder)
	ladder[0] = 99 // caller mutation must not corrupt the estimator
	r := trace.Record{PC: 0x1000, Target: 0x1040, Taken: true}
	m.Update(r, false) // counter 1
	if got := m.Level(r); got != 1 {
		t.Fatalf("level %d after external ladder mutation", got)
	}
}

func TestPaperMultiEstimator(t *testing.T) {
	m := PaperMultiEstimator()
	if m.Levels() != 4 {
		t.Fatalf("levels %d", m.Levels())
	}
}

func TestMarkOldest(t *testing.T) {
	m := NewOneLevel(OneLevelConfig{Scheme: IndexPC, TableBits: 4, CIRBits: 8, Init: InitZeros})
	r := rec(0x1000, true)
	// Build some history: 2 mispredicts at one entry.
	m.Update(r, true)
	m.Update(r, true)
	before := m.Bucket(r)
	m.MarkOldest()
	after := m.Bucket(r)
	if after != before|0x80 {
		t.Fatalf("MarkOldest: %08b -> %08b", before, after)
	}
	// Every other entry went from 0 to just the top bit.
	other := rec(0x1008, true)
	if m.Bucket(other) != 0x80 {
		t.Fatalf("untouched entry %08b, want 10000000", m.Bucket(other))
	}
	// Idempotent.
	m.MarkOldest()
	if m.Bucket(other) != 0x80 {
		t.Fatal("MarkOldest not idempotent")
	}
}
