package core

import (
	"testing"
	"testing/quick"
)

func TestCounterTableDefaults(t *testing.T) {
	m := PaperResetting()
	if m.TableBits() != 16 || m.Max() != 16 {
		t.Fatalf("defaults %d/%d", m.TableBits(), m.Max())
	}
	if m.Name() != "1lev-BHRxorPC.Reset16-2^16" {
		t.Fatalf("name %q", m.Name())
	}
	// Counter init 0 = the low-confidence analogue of all-ones CIRs.
	if m.Bucket(rec(0x1000, true)) != 0 {
		t.Fatal("initial counter not 0")
	}
}

func TestResettingTableSemantics(t *testing.T) {
	m := NewCounterTable(CounterConfig{Kind: Resetting, Scheme: IndexPC, TableBits: 8, Max: 16})
	r := rec(0x1000, true)
	for i := 1; i <= 20; i++ {
		m.Update(r, false)
		want := uint64(i)
		if i > 16 {
			want = 16
		}
		if got := m.Bucket(r); got != want {
			t.Fatalf("after %d correct: bucket %d want %d", i, got, want)
		}
	}
	m.Update(r, true)
	if got := m.Bucket(r); got != 0 {
		t.Fatalf("after incorrect: bucket %d want 0", got)
	}
}

func TestSaturatingTableSemantics(t *testing.T) {
	m := NewCounterTable(CounterConfig{Kind: Saturating, Scheme: IndexPC, TableBits: 8, Max: 16})
	r := rec(0x1000, true)
	for i := 0; i < 20; i++ {
		m.Update(r, false)
	}
	if got := m.Bucket(r); got != 16 {
		t.Fatalf("saturated bucket %d", got)
	}
	m.Update(r, true)
	if got := m.Bucket(r); got != 15 {
		t.Fatalf("after one incorrect: %d, want 15 (decrement, not reset)", got)
	}
}

// Property: with PC indexing and a single PC, the resetting-table bucket
// always equals min(max, run of correct updates since last incorrect).
func TestResettingTableTracksRun(t *testing.T) {
	check := func(ops uint64) bool {
		m := NewCounterTable(CounterConfig{Kind: Resetting, Scheme: IndexPC, TableBits: 4, Max: 16})
		r := rec(0x1000, true)
		run := 0
		for i := 0; i < 64; i++ {
			incorrect := ops>>uint(i)&1 == 1
			m.Update(r, incorrect)
			if incorrect {
				run = 0
			} else {
				run++
			}
			want := run
			if want > 16 {
				want = 16
			}
			if int(m.Bucket(r)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterTableAliasing(t *testing.T) {
	// Two PCs colliding in a tiny table share a counter: a misprediction
	// by either resets it — the §5.3 aliasing effect.
	m := NewCounterTable(CounterConfig{Kind: Resetting, Scheme: IndexPC, TableBits: 1, Max: 16, HistoryBits: 1})
	a, b := rec(0x1000, true), rec(0x1010, true)
	// With 1 table bit, PCIndexBits(pc,1) = (pc>>2)&1: 0x1000→0, 0x1010→0.
	for i := 0; i < 5; i++ {
		m.Update(a, false)
	}
	if m.Bucket(a) != 5 {
		t.Fatalf("bucket %d", m.Bucket(a))
	}
	m.Update(b, true) // aliased partner mispredicts
	if m.Bucket(a) != 0 {
		t.Fatalf("aliased reset did not propagate: bucket %d", m.Bucket(a))
	}
}

func TestCounterTableReset(t *testing.T) {
	m := NewCounterTable(CounterConfig{Kind: Resetting, Scheme: IndexPC, TableBits: 4, Max: 8, Init: 3})
	r := rec(0x1000, true)
	if m.Bucket(r) != 3 {
		t.Fatalf("init bucket %d", m.Bucket(r))
	}
	for i := 0; i < 5; i++ {
		m.Update(r, false)
	}
	m.Reset()
	if m.Bucket(r) != 3 {
		t.Fatalf("bucket after Reset %d, want 3", m.Bucket(r))
	}
}

func TestSmallResetting(t *testing.T) {
	m := SmallResetting(12)
	if m.TableBits() != 12 {
		t.Fatalf("table bits %d", m.TableBits())
	}
}

func TestCounterTablePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"table-31": func() { NewCounterTable(CounterConfig{TableBits: 31}) },
		"init>max": func() { NewCounterTable(CounterConfig{Max: 4, Init: 5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStaticProfileMechanism(t *testing.T) {
	m := NewStaticProfile()
	if m.Bucket(rec(0x1234, true)) != 0x1234 {
		t.Fatal("static bucket is not the PC")
	}
	m.Update(rec(0x1234, true), true) // no-op
	m.Reset()
	if m.Name() != "static" {
		t.Fatalf("name %q", m.Name())
	}
}

func TestTwoLevelDefaults(t *testing.T) {
	m := NewTwoLevel(TwoLevelConfig{})
	if m.Name() != "2lev-PC-CIR" {
		t.Fatalf("name %q", m.Name())
	}
	if got := m.Bucket(rec(0x1000, true)); got != 0xFFFF {
		t.Fatalf("initial bucket %x", got)
	}
}

func TestTwoLevelVariants(t *testing.T) {
	vs := PaperTwoLevels()
	if len(vs) != 3 {
		t.Fatalf("%d variants", len(vs))
	}
	names := []string{"2lev-PC-CIR", "2lev-BHRxorPC-CIR", "2lev-BHRxorPC-BHRxorCIRxorPC"}
	for i, v := range vs {
		if v.Name() != names[i] {
			t.Fatalf("variant %d name %q want %q", i, v.Name(), names[i])
		}
	}
}

func TestTwoLevelUpdatePropagates(t *testing.T) {
	m := NewTwoLevel(TwoLevelConfig{Scheme1: IndexPC, Scheme2: L2CIR, L1Bits: 4, L1CIRBits: 4, L2CIRBits: 4, Init: InitZeros, HistoryBits: 4})
	r := rec(0x1000, true)
	// Initially both levels zero: bucket = t2[0] = 0.
	if m.Bucket(r) != 0 {
		t.Fatal("initial bucket nonzero")
	}
	// One incorrect: t1[pc] becomes 0001, t2[0] becomes 0001.
	m.Update(r, true)
	// Now index2 = t1 CIR = 0001 → t2[1], still zero.
	if got := m.Bucket(r); got != 0 {
		t.Fatalf("bucket %04b, want 0 (fresh second-level entry)", got)
	}
	// Correct update: t1 → 0010, t2[1] → 0000<<1|0 = 0.
	m.Update(r, false)
	// index2 = 0010 → t2[2] zero.
	if got := m.Bucket(r); got != 0 {
		t.Fatalf("bucket %04b", got)
	}
	// Drive the same first-level pattern twice to see second-level history.
	// Pattern cycle: after (incorrect, correct) t1 = 0b10. Another
	// (incorrect, correct): t1 goes 0b101 → 0b1010; second-level entry for
	// 0b10 saw "incorrect" the last time t1 read 0b10.
	m.Update(r, true)
	m.Update(r, false)
	// t1 now 1010; bucket = t2[1010 & 0xF].
	_ = m.Bucket(r)
}

func TestTwoLevelSecondIndexVariants(t *testing.T) {
	for _, s2 := range []SecondIndex{L2CIR, L2CIRxorPC, L2CIRxorBHR, L2CIRxorPCxorBHR} {
		m := NewTwoLevel(TwoLevelConfig{Scheme1: IndexPCxorBHR, Scheme2: s2, L1Bits: 6, L1CIRBits: 6, L2CIRBits: 6, HistoryBits: 6})
		r := rec(0x1000, true)
		m.Bucket(r)
		m.Update(r, true)
		m.Update(r, false)
		if m.Name() == "" {
			t.Fatal("empty name")
		}
	}
}

func TestTwoLevelReset(t *testing.T) {
	m := NewTwoLevel(TwoLevelConfig{L1Bits: 6, L1CIRBits: 6, L2CIRBits: 6, HistoryBits: 6})
	r := rec(0x1000, true)
	for i := 0; i < 50; i++ {
		m.Update(r, i%5 == 0)
	}
	m.Reset()
	if got := m.Bucket(r); got != 0x3F {
		t.Fatalf("bucket after reset %x, want 3f", got)
	}
}

func TestTwoLevelPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"l1-31":    func() { NewTwoLevel(TwoLevelConfig{L1Bits: 31}) },
		"l1cir-27": func() { NewTwoLevel(TwoLevelConfig{L1CIRBits: 27}) },
		"l2cir-65": func() { NewTwoLevel(TwoLevelConfig{L2CIRBits: 65}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
