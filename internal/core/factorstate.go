package core

import (
	"encoding/binary"
	"fmt"

	"branchconf/internal/bitvec"
	"branchconf/internal/trace"
	"branchconf/internal/xrand"
)

// Resumable walks for the streaming engine. A Factorable mechanism's bucket
// sequence is a pure fold of the branch stream over its table state, so the
// fold can pause at any branch and resume later — all it needs is the walk
// state (tables plus the global BHR/GCIR windows) carried across the cut.
// FactorState captures exactly that state; the streaming engine
// (internal/sim) checkpoints it at segment boundaries so a later process
// can tally segment k+1 without replaying segments 0..k.
//
// The contract mirrors FillBucketLane's: feeding segments through
// FillBucketLaneResume with one state emits, in concatenation, exactly the
// lane and tallies a single FillBucketLane call over the whole stream
// would (pinned by TestFactorStateResumeMatchesWhole).

// FactorState is the resumable walk state of one Resumable mechanism. A
// state is bound to the geometry that created it; passing it to a different
// mechanism is a programming error. MarshalState serializes the state for a
// segment-boundary checkpoint; the owning mechanism's RestoreFactorState
// validates and revives it.
type FactorState interface {
	// MarshalState returns the canonical serialized state. Equal states
	// always serialize to equal bytes (the payload feeds content-addressed
	// checkpoint records).
	MarshalState() []byte
}

// Resumable extends Factorable with pause-and-resume walks. Every concrete
// Factorable in this package implements it; the interface exists so the
// streaming engine can degrade gracefully if one ever does not.
type Resumable interface {
	Factorable
	// NewFactorState returns the walk state FillBucketLane would start
	// from: freshly initialised tables (burning the same RNG draws, in the
	// same order) and zeroed histories.
	NewFactorState() FactorState
	// RestoreFactorState validates and revives a MarshalState payload. It
	// fails on any structural mismatch with the receiver's geometry —
	// lengths, entry ranges, history windows, trailing bytes — so a payload
	// either revives the exact serialized state or is rejected.
	RestoreFactorState(data []byte) (FactorState, error)
	// FillBucketLaneResume is FillBucketLane continuing from st: it replays
	// recs through st (mutating it in place), appending one bucket per
	// branch to lane and fusing tallies into counts exactly like
	// FillBucketLane. st must come from the receiver's NewFactorState or
	// RestoreFactorState.
	FillBucketLaneResume(st FactorState, recs []trace.Record, miss []uint64, lane *bitvec.Dense, counts []uint32)
}

// State serialization. Each state kind has a one-byte tag, fixed-width
// little-endian table entries, and the two history windows; decoders
// validate every field against the owning mechanism's geometry and reject
// trailing bytes, so corrupt or mismatched checkpoints fail closed.
const (
	stateTagOneLevel = 0x11
	stateTagTwoLevel = 0x12
	stateTagCounter  = 0x13
)

// appendTable appends a length-prefixed table of fixed-width entries.
func appendTable[T tableWord](out []byte, table []T) []byte {
	out = binary.LittleEndian.AppendUint64(out, uint64(len(table)))
	switch any(table).(type) {
	case []uint16:
		out = append(out, 2)
		for _, v := range table {
			out = binary.LittleEndian.AppendUint16(out, uint16(v))
		}
	default:
		out = append(out, 8)
		for _, v := range table {
			out = binary.LittleEndian.AppendUint64(out, uint64(v))
		}
	}
	return out
}

// readTable consumes a length-prefixed table, validating the entry width,
// the expected length, and that every entry fits in width bits.
func readTable[T tableWord](rd []byte, wantLen int, width uint, what string) ([]T, []byte, error) {
	if len(rd) < 9 {
		return nil, nil, fmt.Errorf("core: factor state truncated before %s header", what)
	}
	count := binary.LittleEndian.Uint64(rd)
	elem := rd[8]
	rd = rd[9:]
	var wantElem byte = 8
	if _, is16 := any([]T(nil)).([]uint16); is16 {
		wantElem = 2
	}
	if elem != wantElem {
		return nil, nil, fmt.Errorf("core: factor state %s entry width %d, want %d", what, elem, wantElem)
	}
	if count != uint64(wantLen) {
		return nil, nil, fmt.Errorf("core: factor state %s has %d entries, want %d", what, count, wantLen)
	}
	need := int(count) * int(wantElem)
	if len(rd) < need {
		return nil, nil, fmt.Errorf("core: factor state %s truncated (%d of %d bytes)", what, len(rd), need)
	}
	mask := widthMask(width)
	table := make([]T, count)
	for i := range table {
		var v uint64
		if wantElem == 2 {
			v = uint64(binary.LittleEndian.Uint16(rd[2*i:]))
		} else {
			v = binary.LittleEndian.Uint64(rd[8*i:])
		}
		if v&^mask != 0 {
			return nil, nil, fmt.Errorf("core: factor state %s entry %d = %#x exceeds %d-bit width", what, i, v, width)
		}
		table[i] = T(v)
	}
	return table, rd[need:], nil
}

// readHistories consumes the trailing (bhr, gcir) pair, validating both
// against their window masks and rejecting trailing bytes.
func readHistories(rd []byte, bhrMask, gcirMask uint64) (bhr, gcir uint64, err error) {
	if len(rd) != 16 {
		return 0, 0, fmt.Errorf("core: factor state has %d bytes at histories, want 16", len(rd))
	}
	bhr = binary.LittleEndian.Uint64(rd)
	gcir = binary.LittleEndian.Uint64(rd[8:])
	if bhr&^bhrMask != 0 {
		return 0, 0, fmt.Errorf("core: factor state BHR %#x exceeds its window", bhr)
	}
	if gcir&^gcirMask != 0 {
		return 0, 0, fmt.Errorf("core: factor state GCIR %#x exceeds its window", gcir)
	}
	return bhr, gcir, nil
}

func appendHistories(out []byte, bhr, gcir uint64) []byte {
	out = binary.LittleEndian.AppendUint64(out, bhr)
	return binary.LittleEndian.AppendUint64(out, gcir)
}

// checkTag consumes and validates the leading state tag.
func checkTag(data []byte, want byte, what string) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty %s factor state", what)
	}
	if data[0] != want {
		return nil, fmt.Errorf("core: %s factor state tag %#x, want %#x", what, data[0], want)
	}
	return data[1:], nil
}

// oneLevelState is the OneLevel walk state, monomorphized per table element
// width like the kernel itself.
type oneLevelState[T tableWord] struct {
	table     []T
	bhr, gcir uint64
}

func (s *oneLevelState[T]) MarshalState() []byte {
	out := make([]byte, 0, 1+9+len(s.table)*8+16)
	out = append(out, stateTagOneLevel)
	out = appendTable(out, s.table)
	return appendHistories(out, s.bhr, s.gcir)
}

// NewFactorState implements Resumable: the initial table (same RNG stream
// as FillBucketLane) with zeroed histories.
func (m *OneLevel) NewFactorState() FactorState {
	rng := xrand.New(m.initSeed ^ 0xC12_5EED)
	if m.cirBits <= 16 {
		table := make([]uint16, 1<<m.tableBits)
		initTable(table, m.init, m.cirBits, rng)
		return &oneLevelState[uint16]{table: table}
	}
	table := make([]uint64, 1<<m.tableBits)
	initTable(table, m.init, m.cirBits, rng)
	return &oneLevelState[uint64]{table: table}
}

// RestoreFactorState implements Resumable.
func (m *OneLevel) RestoreFactorState(data []byte) (FactorState, error) {
	rd, err := checkTag(data, stateTagOneLevel, "one-level")
	if err != nil {
		return nil, err
	}
	if m.cirBits <= 16 {
		table, rest, err := readTable[uint16](rd, 1<<m.tableBits, m.cirBits, "CIR table")
		if err != nil {
			return nil, err
		}
		bhr, gcir, err := readHistories(rest, widthMask(m.bhr.Width()), widthMask(m.gcir.Width()))
		if err != nil {
			return nil, err
		}
		return &oneLevelState[uint16]{table: table, bhr: bhr, gcir: gcir}, nil
	}
	table, rest, err := readTable[uint64](rd, 1<<m.tableBits, m.cirBits, "CIR table")
	if err != nil {
		return nil, err
	}
	bhr, gcir, err := readHistories(rest, widthMask(m.bhr.Width()), widthMask(m.gcir.Width()))
	if err != nil {
		return nil, err
	}
	return &oneLevelState[uint64]{table: table, bhr: bhr, gcir: gcir}, nil
}

// FillBucketLaneResume implements Resumable.
func (m *OneLevel) FillBucketLaneResume(st FactorState, recs []trace.Record, miss []uint64, lane *bitvec.Dense, counts []uint32) {
	switch s := st.(type) {
	case *oneLevelState[uint16]:
		fillOneLevel(m, s, recs, miss, lane, counts)
	case *oneLevelState[uint64]:
		fillOneLevel(m, s, recs, miss, lane, counts)
	default:
		panic(fmt.Sprintf("core: foreign factor state %T for one-level mechanism", st))
	}
}

// twoLevelState is the TwoLevel walk state.
type twoLevelState[T tableWord] struct {
	t1, t2    []T
	bhr, gcir uint64
}

func (s *twoLevelState[T]) MarshalState() []byte {
	out := make([]byte, 0, 1+18+(len(s.t1)+len(s.t2))*8+16)
	out = append(out, stateTagTwoLevel)
	out = appendTable(out, s.t1)
	out = appendTable(out, s.t2)
	return appendHistories(out, s.bhr, s.gcir)
}

// NewFactorState implements Resumable, initialising both levels from one
// RNG stream in Reset order (first level, then second) exactly like
// FillBucketLane.
func (m *TwoLevel) NewFactorState() FactorState {
	rng := xrand.New(m.initSeed ^ 0x2C12_5EED)
	if m.l1CIRBits <= 16 && m.l2CIRBits <= 16 {
		s := &twoLevelState[uint16]{
			t1: make([]uint16, 1<<m.l1Bits),
			t2: make([]uint16, 1<<m.l1CIRBits),
		}
		initTable(s.t1, m.init, m.l1CIRBits, rng)
		initTable(s.t2, m.init, m.l2CIRBits, rng)
		return s
	}
	s := &twoLevelState[uint64]{
		t1: make([]uint64, 1<<m.l1Bits),
		t2: make([]uint64, 1<<m.l1CIRBits),
	}
	initTable(s.t1, m.init, m.l1CIRBits, rng)
	initTable(s.t2, m.init, m.l2CIRBits, rng)
	return s
}

// RestoreFactorState implements Resumable.
func (m *TwoLevel) RestoreFactorState(data []byte) (FactorState, error) {
	rd, err := checkTag(data, stateTagTwoLevel, "two-level")
	if err != nil {
		return nil, err
	}
	if m.l1CIRBits <= 16 && m.l2CIRBits <= 16 {
		t1, rest, err := readTable[uint16](rd, 1<<m.l1Bits, m.l1CIRBits, "first-level table")
		if err != nil {
			return nil, err
		}
		t2, rest, err := readTable[uint16](rest, 1<<m.l1CIRBits, m.l2CIRBits, "second-level table")
		if err != nil {
			return nil, err
		}
		bhr, gcir, err := readHistories(rest, widthMask(m.bhr.Width()), widthMask(m.gcir.Width()))
		if err != nil {
			return nil, err
		}
		return &twoLevelState[uint16]{t1: t1, t2: t2, bhr: bhr, gcir: gcir}, nil
	}
	t1, rest, err := readTable[uint64](rd, 1<<m.l1Bits, m.l1CIRBits, "first-level table")
	if err != nil {
		return nil, err
	}
	t2, rest, err := readTable[uint64](rest, 1<<m.l1CIRBits, m.l2CIRBits, "second-level table")
	if err != nil {
		return nil, err
	}
	bhr, gcir, err := readHistories(rest, widthMask(m.bhr.Width()), widthMask(m.gcir.Width()))
	if err != nil {
		return nil, err
	}
	return &twoLevelState[uint64]{t1: t1, t2: t2, bhr: bhr, gcir: gcir}, nil
}

// FillBucketLaneResume implements Resumable.
func (m *TwoLevel) FillBucketLaneResume(st FactorState, recs []trace.Record, miss []uint64, lane *bitvec.Dense, counts []uint32) {
	switch s := st.(type) {
	case *twoLevelState[uint16]:
		fillTwoLevel(m, s, recs, miss, lane, counts)
	case *twoLevelState[uint64]:
		fillTwoLevel(m, s, recs, miss, lane, counts)
	default:
		panic(fmt.Sprintf("core: foreign factor state %T for two-level mechanism", st))
	}
}

// counterState is the CounterTable walk state.
type counterState struct {
	table     []uint8
	bhr, gcir uint64
}

func (s *counterState) MarshalState() []byte {
	out := make([]byte, 0, 1+9+len(s.table)+16)
	out = append(out, stateTagCounter)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(s.table)))
	out = append(out, 1)
	out = append(out, s.table...)
	return appendHistories(out, s.bhr, s.gcir)
}

// NewFactorState implements Resumable.
func (m *CounterTable) NewFactorState() FactorState {
	table := make([]uint8, 1<<m.tableBits)
	if m.initVal != 0 {
		for i := range table {
			table[i] = m.initVal
		}
	}
	return &counterState{table: table}
}

// RestoreFactorState implements Resumable: counter entries must not exceed
// the saturation ceiling.
func (m *CounterTable) RestoreFactorState(data []byte) (FactorState, error) {
	rd, err := checkTag(data, stateTagCounter, "counter")
	if err != nil {
		return nil, err
	}
	if len(rd) < 9 {
		return nil, fmt.Errorf("core: factor state truncated before counter table header")
	}
	count := binary.LittleEndian.Uint64(rd)
	elem := rd[8]
	rd = rd[9:]
	if elem != 1 {
		return nil, fmt.Errorf("core: factor state counter entry width %d, want 1", elem)
	}
	if count != uint64(1)<<m.tableBits {
		return nil, fmt.Errorf("core: factor state counter table has %d entries, want %d", count, uint64(1)<<m.tableBits)
	}
	if uint64(len(rd)) < count {
		return nil, fmt.Errorf("core: factor state counter table truncated (%d of %d bytes)", len(rd), count)
	}
	table := make([]uint8, count)
	copy(table, rd[:count])
	for i, v := range table {
		if v > m.max {
			return nil, fmt.Errorf("core: factor state counter %d = %d exceeds ceiling %d", i, v, m.max)
		}
	}
	bhr, gcir, err := readHistories(rd[count:], widthMask(m.bhr.Width()), widthMask(m.gcir.Width()))
	if err != nil {
		return nil, err
	}
	return &counterState{table: table, bhr: bhr, gcir: gcir}, nil
}

// FillBucketLaneResume implements Resumable.
func (m *CounterTable) FillBucketLaneResume(st FactorState, recs []trace.Record, miss []uint64, lane *bitvec.Dense, counts []uint32) {
	s, ok := st.(*counterState)
	if !ok {
		panic(fmt.Sprintf("core: foreign factor state %T for counter mechanism", st))
	}
	if m.kind == Resetting {
		fillCounter[resettingStep](m, s, recs, miss, lane, counts)
		return
	}
	fillCounter[saturatingStep](m, s, recs, miss, lane, counts)
}
