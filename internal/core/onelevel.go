package core

import (
	"fmt"

	"branchconf/internal/bitvec"
	"branchconf/internal/trace"
	"branchconf/internal/xrand"
)

// OneLevel is the paper's one-level dynamic confidence mechanism (§3.1,
// Fig. 3): a single CIR table (CT) of 2^tableBits entries, each an
// n-bit correct/incorrect shift register, addressed by an IndexScheme over
// the branch PC, the global branch history and/or the global CIR.
type OneLevel struct {
	scheme    IndexScheme
	tableBits uint
	cirBits   uint
	init      InitPolicy
	table     []bitvec.CIR
	bhr       bitvec.BHR
	gcir      bitvec.CIR
	initSeed  uint64

	// Index memo: valid from Bucket until the histories advance in Update.
	cachePC  uint64
	cacheIdx uint64
	cacheOK  bool

	// tableDirty defers the table fill to first use; see ensureTable.
	tableDirty bool
}

// OneLevelConfig configures a one-level mechanism. Zero values select the
// paper's defaults where meaningful.
type OneLevelConfig struct {
	// Scheme selects the table index (default IndexPCxorBHR, the paper's
	// best one-level method).
	Scheme IndexScheme
	// TableBits is log2 of the CT entry count (default 16, matching the
	// paper's 2^16-entry tables).
	TableBits uint
	// CIRBits is the shift-register width (default 16).
	CIRBits uint
	// Init selects initial table contents (default InitOnes, §4).
	Init InitPolicy
	// InitSeed drives InitRandom (ignored otherwise).
	InitSeed uint64
	// HistoryBits is the global BHR length used for history-based index
	// schemes (default = TableBits).
	HistoryBits uint
}

// NewOneLevel returns a one-level CIR-table mechanism. It panics on
// geometry outside [1,30] table bits or [1,64] CIR bits: mechanism
// geometry is fixed structural configuration.
func NewOneLevel(cfg OneLevelConfig) *OneLevel {
	if cfg.TableBits == 0 {
		cfg.TableBits = 16
	}
	if cfg.CIRBits == 0 {
		cfg.CIRBits = 16
	}
	if cfg.HistoryBits == 0 {
		cfg.HistoryBits = cfg.TableBits
	}
	if cfg.TableBits > 30 {
		panic(fmt.Sprintf("core: one-level table bits %d out of range [1,30]", cfg.TableBits))
	}
	if cfg.CIRBits > bitvec.MaxShiftWidth {
		panic(fmt.Sprintf("core: CIR bits %d out of range [1,64]", cfg.CIRBits))
	}
	m := &OneLevel{
		scheme:    cfg.Scheme,
		tableBits: cfg.TableBits,
		cirBits:   cfg.CIRBits,
		init:      cfg.Init,
		initSeed:  cfg.InitSeed,
	}
	m.bhr = bitvec.NewBHR(cfg.HistoryBits)
	m.gcir = bitvec.NewCIR(cfg.HistoryBits)
	m.Reset()
	return m
}

// PaperOneLevel returns the paper's main one-level configuration for the
// given index scheme: 2^16 entries of 16-bit CIRs initialised to all ones.
func PaperOneLevel(scheme IndexScheme) *OneLevel {
	return NewOneLevel(OneLevelConfig{Scheme: scheme})
}

// index computes the CT index for the current state. It must be called
// with identical state from Bucket and Update (the Bucket-then-Update
// contract guarantees this).
func (m *OneLevel) index(pc uint64) uint64 {
	if m.cacheOK && m.cachePC == pc {
		return m.cacheIdx
	}
	i := schemeIndex(m.scheme, m.tableBits, pc, m.bhr.Bits(), m.gcir.Bits())
	m.cachePC, m.cacheIdx, m.cacheOK = pc, i, true
	return i
}

// schemeIndex maps (pc, bhr, gcir) to a table index under scheme.
func schemeIndex(scheme IndexScheme, tableBits uint, pc, bhr, gcir uint64) uint64 {
	switch scheme {
	case IndexPC:
		return bitvec.PCIndexBits(pc, tableBits)
	case IndexBHR:
		return bitvec.XORIndex(tableBits, bhr)
	case IndexPCxorBHR:
		return bitvec.XORIndex(tableBits, bitvec.PCIndexBits(pc, tableBits), bhr)
	case IndexGCIR:
		return bitvec.XORIndex(tableBits, gcir)
	case IndexPCxorGCIR:
		return bitvec.XORIndex(tableBits, bitvec.PCIndexBits(pc, tableBits), gcir)
	case IndexPCconcatBHR:
		half := tableBits / 2
		return bitvec.ConcatIndex(tableBits,
			[]uint64{bitvec.PCIndexBits(pc, half), bhr},
			[]uint{half, tableBits - half})
	default:
		panic(fmt.Sprintf("core: unknown index scheme %d", int(scheme)))
	}
}

// ensureTable materializes the CIR table on first use after a Reset.
// Construction and Reset only mark the table dirty: a mechanism whose
// per-branch walk is served by the stage-3 tally engine (internal/sim)
// never touches its instance table, and eagerly filling 2^tableBits
// registers per benchmark was a measurable share of those passes.
func (m *OneLevel) ensureTable() {
	if !m.tableDirty {
		return
	}
	if m.table == nil {
		m.table = make([]bitvec.CIR, 1<<m.tableBits)
	}
	rng := xrand.New(m.initSeed ^ 0xC12_5EED)
	for i := range m.table {
		c := bitvec.NewCIR(m.cirBits)
		c.Set(m.init.initValue(m.cirBits, rng))
		m.table[i] = c
	}
	m.tableDirty = false
}

// Bucket returns the CIR pattern read from the table for this branch.
func (m *OneLevel) Bucket(r trace.Record) uint64 {
	m.ensureTable()
	return m.table[m.index(r.PC)].Bits()
}

// BucketUpdate implements Fused: one index computation serves both the
// read and the train, with no memo traffic.
func (m *OneLevel) BucketUpdate(r trace.Record, incorrect bool) uint64 {
	m.ensureTable()
	i := schemeIndex(m.scheme, m.tableBits, r.PC, m.bhr.Bits(), m.gcir.Bits())
	b := m.table[i].Bits()
	m.table[i].Record(incorrect)
	m.bhr.Record(r.Taken)
	m.gcir.Record(incorrect)
	m.cacheOK = false
	return b
}

// Update shifts the prediction outcome into the indexed CIR and advances
// the global history registers.
func (m *OneLevel) Update(r trace.Record, incorrect bool) {
	m.ensureTable()
	i := m.index(r.PC)
	m.table[i].Record(incorrect)
	m.bhr.Record(r.Taken)
	m.gcir.Record(incorrect)
	m.cacheOK = false
}

// Reset restores the configured initial table state and clears histories.
// The table fill itself is deferred to the next access (ensureTable).
func (m *OneLevel) Reset() {
	m.tableDirty = true
	m.bhr.Set(0)
	m.gcir.Set(0)
	m.cacheOK = false
}

// MarkOldest sets the oldest bit of every CIR in the table, leaving the
// rest of each window intact — the cheap context-switch treatment §5.4
// conjectures ("leave the CIRs at their current values at the time of a
// context switch, except the oldest bit which should be initialized at
// 1"). Histories are left untouched.
func (m *OneLevel) MarkOldest() {
	m.ensureTable()
	top := uint64(1) << (m.cirBits - 1)
	for i := range m.table {
		m.table[i].Set(m.table[i].Bits() | top)
	}
}

// CIRBits returns the shift-register width (Fig. 8's reduction functions
// depend on it: a width-n CIR has n+1 possible ones-counts).
func (m *OneLevel) CIRBits() uint { return m.cirBits }

// TableBits returns log2 of the table size.
func (m *OneLevel) TableBits() uint { return m.tableBits }

// Scheme returns the index scheme.
func (m *OneLevel) Scheme() IndexScheme { return m.scheme }

// Name implements Mechanism.
func (m *OneLevel) Name() string {
	return fmt.Sprintf("1lev-%s-cir%d-2^%d-%s", m.scheme, m.cirBits, m.tableBits, m.init)
}
