package core

import (
	"testing"

	"branchconf/internal/trace"
)

func TestOnesCountReducer(t *testing.T) {
	r := OnesCountReducer{Threshold: 3}
	cases := map[uint64]bool{
		0b0000: true,  // 0 ones < 3
		0b0101: true,  // 2 ones < 3
		0b0111: false, // 3 ones
		0xFFFF: false,
	}
	for b, want := range cases {
		if got := r.Confident(b); got != want {
			t.Fatalf("Confident(%b) = %v, want %v", b, got, want)
		}
	}
	if r.Name() != "1Cnt<3" {
		t.Fatalf("name %q", r.Name())
	}
}

func TestCounterReducer(t *testing.T) {
	r := CounterReducer{Threshold: 16}
	if r.Confident(15) {
		t.Fatal("15 >= 16 claimed")
	}
	if !r.Confident(16) {
		t.Fatal("16 not confident")
	}
	if (CounterReducer{Threshold: 0}).Confident(0) != true {
		t.Fatal("threshold 0 must always be confident")
	}
}

func TestSetReducer(t *testing.T) {
	r := NewSetReducer("ideal", []uint64{1, 5, 0xFFFF})
	for _, low := range []uint64{1, 5, 0xFFFF} {
		if r.Confident(low) {
			t.Fatalf("low bucket %x classified confident", low)
		}
	}
	for _, hi := range []uint64{0, 2, 100} {
		if !r.Confident(hi) {
			t.Fatalf("bucket %x classified low", hi)
		}
	}
	if r.Name() != "ideal" {
		t.Fatalf("name %q", r.Name())
	}
}

func TestEstimatorEndToEnd(t *testing.T) {
	// A resetting estimator with threshold 2: low confidence until two
	// consecutive correct predictions at the same table entry.
	e := NewEstimator(
		NewCounterTable(CounterConfig{Kind: Resetting, Scheme: IndexPC, TableBits: 8, Max: 16}),
		CounterReducer{Threshold: 2},
	)
	r := trace.Record{PC: 0x1000, Target: 0x1040, Taken: true}
	if e.Confident(r) {
		t.Fatal("fresh entry (counter 0) classified confident")
	}
	e.Update(r, false)
	if e.Confident(r) {
		t.Fatal("counter 1 classified confident at threshold 2")
	}
	e.Update(r, false)
	if !e.Confident(r) {
		t.Fatal("counter 2 not confident")
	}
	e.Update(r, true)
	if e.Confident(r) {
		t.Fatal("confidence survived a misprediction")
	}
	e.Reset()
	if e.Confident(r) {
		t.Fatal("Reset did not restore low confidence")
	}
}

func TestPaperEstimatorName(t *testing.T) {
	e := PaperEstimator(16)
	if e.Name() != "1lev-BHRxorPC.Reset16-2^16.cnt>=16" {
		t.Fatalf("name %q", e.Name())
	}
}

func TestEstimatorWithOnesCount(t *testing.T) {
	e := NewEstimator(
		NewOneLevel(OneLevelConfig{Scheme: IndexPC, TableBits: 8, CIRBits: 8, Init: InitOnes}),
		OnesCountReducer{Threshold: 1},
	)
	r := trace.Record{PC: 0x1000, Target: 0x1040, Taken: true}
	// All-ones init: 8 ones ≥ 1 → low confidence.
	if e.Confident(r) {
		t.Fatal("all-ones CIR classified confident")
	}
	for i := 0; i < 8; i++ {
		e.Update(r, false)
	}
	// CIR now all zeros: 0 ones < 1 → confident.
	if !e.Confident(r) {
		t.Fatal("all-zeros CIR not confident")
	}
}

func TestWeightedOnesReducer(t *testing.T) {
	w := WeightedOnesReducer{Width: 4, Threshold: 4}
	// Newest bit (position 0) weighs 4; oldest (position 3) weighs 1.
	if got := w.Score(0b0001); got != 4 {
		t.Fatalf("newest-bit score %d, want 4", got)
	}
	if got := w.Score(0b1000); got != 1 {
		t.Fatalf("oldest-bit score %d, want 1", got)
	}
	if got := w.Score(0b1111); got != 10 {
		t.Fatalf("full score %d, want 10", got)
	}
	if !w.Confident(0b1000) { // score 1 < 4
		t.Fatal("old lone misprediction classified low confidence")
	}
	if w.Confident(0b0001) { // score 4 >= 4
		t.Fatal("fresh misprediction classified confident")
	}
	if w.Name() != "w1Cnt<4" {
		t.Fatalf("name %q", w.Name())
	}
}

func TestWeightedOnesVsPlainOrdering(t *testing.T) {
	// A fresh misprediction must outscore the same misprediction aged:
	// the whole point of the weighting.
	w := WeightedOnesReducer{Width: 16}
	if w.Score(1) <= w.Score(1<<15) {
		t.Fatal("recency weighting inverted")
	}
}
