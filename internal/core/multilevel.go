package core

import (
	"fmt"
	"sort"

	"branchconf/internal/trace"
)

// MultiEstimator generalises the binary confidence signal to a range of
// confidence levels — the extension §1 of the paper notes ("one could
// divide the branches into multiple sets with a range of confidence
// levels. To date, we have not pursued this generalization"). It
// partitions counter-valued buckets by an ascending threshold ladder:
// level 0 collects buckets below the first threshold (lowest confidence),
// level len(thresholds) collects buckets at or above the last (highest).
//
// Applications grade their response by level: a dual-path engine might
// fork at level 0, fetch-throttle at level 1, and speculate freely above.
type MultiEstimator struct {
	mech       Mechanism
	thresholds []uint64
}

// NewMultiEstimator builds a multi-level estimator over mech. thresholds
// must be non-empty and strictly increasing; the estimator has
// len(thresholds)+1 levels. It panics otherwise: the ladder is fixed
// configuration.
func NewMultiEstimator(mech Mechanism, thresholds []uint64) *MultiEstimator {
	if len(thresholds) == 0 {
		panic("core: MultiEstimator needs at least one threshold")
	}
	if !sort.SliceIsSorted(thresholds, func(i, j int) bool { return thresholds[i] < thresholds[j] }) {
		panic(fmt.Sprintf("core: MultiEstimator thresholds %v not strictly increasing", thresholds))
	}
	for i := 1; i < len(thresholds); i++ {
		if thresholds[i] == thresholds[i-1] {
			panic(fmt.Sprintf("core: MultiEstimator thresholds %v not strictly increasing", thresholds))
		}
	}
	ladder := make([]uint64, len(thresholds))
	copy(ladder, thresholds)
	return &MultiEstimator{mech: mech, thresholds: ladder}
}

// PaperMultiEstimator returns a four-level ladder over the recommended
// resetting-counter table, splitting at counts 1, 8 and 16: level 0 is
// "mispredicted last time", level 3 is the saturated zero-bucket analogue.
func PaperMultiEstimator() *MultiEstimator {
	return NewMultiEstimator(PaperResetting(), []uint64{1, 8, 16})
}

// Levels returns the number of confidence levels.
func (m *MultiEstimator) Levels() int { return len(m.thresholds) + 1 }

// Level returns the confidence level (0 = lowest) for the upcoming
// prediction of r. Call before Update.
func (m *MultiEstimator) Level(r trace.Record) int {
	b := m.mech.Bucket(r)
	// The ladder is short (a handful of levels); linear scan beats a
	// binary search at these sizes.
	for i, t := range m.thresholds {
		if b < t {
			return i
		}
	}
	return len(m.thresholds)
}

// Update trains the underlying mechanism.
func (m *MultiEstimator) Update(r trace.Record, incorrect bool) { m.mech.Update(r, incorrect) }

// Reset restores the underlying mechanism.
func (m *MultiEstimator) Reset() { m.mech.Reset() }

// Name identifies the configuration.
func (m *MultiEstimator) Name() string {
	return fmt.Sprintf("%s.levels%v", m.mech.Name(), m.thresholds)
}
