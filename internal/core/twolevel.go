package core

import (
	"fmt"

	"branchconf/internal/bitvec"
	"branchconf/internal/trace"
	"branchconf/internal/xrand"
)

// SecondIndex selects how the second-level table of a two-level mechanism
// is addressed (§3.2, Fig. 4): always from the CIR read out of the first
// level, optionally xored with PC and/or BHR.
type SecondIndex int

const (
	// L2CIR indexes the second level with the first-level CIR alone.
	L2CIR SecondIndex = iota
	// L2CIRxorPC xors the first-level CIR with PC bits.
	L2CIRxorPC
	// L2CIRxorBHR xors the first-level CIR with the global history.
	L2CIRxorBHR
	// L2CIRxorPCxorBHR xors the first-level CIR with both.
	L2CIRxorPCxorBHR
)

// String returns the index's name in the style of Figure 6's legends.
func (s SecondIndex) String() string {
	switch s {
	case L2CIR:
		return "CIR"
	case L2CIRxorPC:
		return "CIRxorPC"
	case L2CIRxorBHR:
		return "BHRxorCIR"
	case L2CIRxorPCxorBHR:
		return "BHRxorCIRxorPC"
	default:
		return fmt.Sprintf("SecondIndex(%d)", int(s))
	}
}

// TwoLevel is the paper's two-level dynamic confidence mechanism: a first
// CIR table indexed like a one-level mechanism, whose read-out CIR (with
// optional PC/BHR hashing) indexes a second CIR table; the second-level
// CIR is the mechanism's bucket.
type TwoLevel struct {
	scheme1   IndexScheme
	scheme2   SecondIndex
	l1Bits    uint // log2 first-level entries
	l1CIRBits uint // first-level CIR width; also log2 second-level entries
	l2CIRBits uint // second-level CIR width
	init      InitPolicy
	initSeed  uint64
	t1        []bitvec.CIR
	t2        []bitvec.CIR
	bhr       bitvec.BHR
	gcir      bitvec.CIR

	// Index memo: both levels' indices are pure functions of (PC,
	// histories, first-level table), all of which only change in Update, so
	// the pair computed by Bucket is still valid for the Update that
	// follows it.
	cachePC uint64
	cacheI1 uint64
	cacheI2 uint64
	cacheOK bool

	// tableDirty defers the table fills to first use; see ensureTables.
	tableDirty bool
}

// TwoLevelConfig configures a two-level mechanism. Zero geometry values
// select the paper's defaults: 2^16-entry first level of 16-bit CIRs (so a
// 2^16-entry second level), 16-bit second-level CIRs, all-ones
// initialisation. The Scheme1/Scheme2 zero values are the valid choices
// IndexPC/L2CIR; set them explicitly.
type TwoLevelConfig struct {
	// Scheme1 indexes the first-level table.
	Scheme1 IndexScheme
	// Scheme2 indexes the second-level table.
	Scheme2 SecondIndex
	// L1Bits is log2 of the first-level entry count (default 16).
	L1Bits uint
	// L1CIRBits is the first-level CIR width; the second level has
	// 2^L1CIRBits entries (default 16).
	L1CIRBits uint
	// L2CIRBits is the second-level CIR width (default 16).
	L2CIRBits uint
	// Init selects initial contents for both tables (default InitOnes).
	Init InitPolicy
	// InitSeed drives InitRandom.
	InitSeed uint64
	// HistoryBits is the global BHR length (default = L1Bits).
	HistoryBits uint
}

// NewTwoLevel returns a two-level CIR-table mechanism. It panics on
// out-of-range geometry (first-level CIR width is capped at 26 because it
// sizes the second-level table).
func NewTwoLevel(cfg TwoLevelConfig) *TwoLevel {
	if cfg.L1Bits == 0 {
		cfg.L1Bits = 16
	}
	if cfg.L1CIRBits == 0 {
		cfg.L1CIRBits = 16
	}
	if cfg.L2CIRBits == 0 {
		cfg.L2CIRBits = 16
	}
	if cfg.HistoryBits == 0 {
		cfg.HistoryBits = cfg.L1Bits
	}
	if cfg.L1Bits > 30 {
		panic(fmt.Sprintf("core: two-level L1 bits %d out of range [1,30]", cfg.L1Bits))
	}
	if cfg.L1CIRBits > 26 {
		panic(fmt.Sprintf("core: two-level L1 CIR bits %d out of range [1,26]", cfg.L1CIRBits))
	}
	if cfg.L2CIRBits > bitvec.MaxShiftWidth {
		panic(fmt.Sprintf("core: two-level L2 CIR bits %d out of range [1,64]", cfg.L2CIRBits))
	}
	m := &TwoLevel{
		scheme1:   cfg.Scheme1,
		scheme2:   cfg.Scheme2,
		l1Bits:    cfg.L1Bits,
		l1CIRBits: cfg.L1CIRBits,
		l2CIRBits: cfg.L2CIRBits,
		init:      cfg.Init,
		initSeed:  cfg.InitSeed,
		bhr:       bitvec.NewBHR(cfg.HistoryBits),
		gcir:      bitvec.NewCIR(cfg.HistoryBits),
	}
	m.Reset()
	return m
}

// PaperTwoLevels returns the three two-level variants evaluated in
// Figure 6: PC→CIR, PCxorBHR→CIR, and PCxorBHR→CIRxorPCxorBHR.
func PaperTwoLevels() []*TwoLevel {
	return []*TwoLevel{
		NewTwoLevel(TwoLevelConfig{Scheme1: IndexPC, Scheme2: L2CIR}),
		NewTwoLevel(TwoLevelConfig{Scheme1: IndexPCxorBHR, Scheme2: L2CIR}),
		NewTwoLevel(TwoLevelConfig{Scheme1: IndexPCxorBHR, Scheme2: L2CIRxorPCxorBHR}),
	}
}

// index1 computes the first-level index for the current state.
func (m *TwoLevel) index1(pc uint64) uint64 {
	return schemeIndex(m.scheme1, m.l1Bits, pc, m.bhr.Bits(), m.gcir.Bits())
}

// index2 computes the second-level index from the first-level CIR.
func (m *TwoLevel) index2(pc, cir uint64) uint64 {
	switch m.scheme2 {
	case L2CIR:
		return bitvec.XORIndex(m.l1CIRBits, cir)
	case L2CIRxorPC:
		return bitvec.XORIndex(m.l1CIRBits, cir, bitvec.PCIndexBits(pc, m.l1CIRBits))
	case L2CIRxorBHR:
		return bitvec.XORIndex(m.l1CIRBits, cir, m.bhr.Bits())
	case L2CIRxorPCxorBHR:
		return bitvec.XORIndex(m.l1CIRBits, cir, bitvec.PCIndexBits(pc, m.l1CIRBits), m.bhr.Bits())
	default:
		panic(fmt.Sprintf("core: unknown second index %d", int(m.scheme2)))
	}
}

// ensureTables materializes both CIR tables on first use after a Reset;
// see OneLevel.ensureTable for why the fill is deferred.
func (m *TwoLevel) ensureTables() {
	if !m.tableDirty {
		return
	}
	if m.t1 == nil {
		m.t1 = make([]bitvec.CIR, 1<<m.l1Bits)
		m.t2 = make([]bitvec.CIR, 1<<m.l1CIRBits)
	}
	rng := xrand.New(m.initSeed ^ 0x2C12_5EED)
	for i := range m.t1 {
		c := bitvec.NewCIR(m.l1CIRBits)
		c.Set(m.init.initValue(m.l1CIRBits, rng))
		m.t1[i] = c
	}
	for i := range m.t2 {
		c := bitvec.NewCIR(m.l2CIRBits)
		c.Set(m.init.initValue(m.l2CIRBits, rng))
		m.t2[i] = c
	}
	m.tableDirty = false
}

// Bucket returns the second-level CIR pattern read for this branch.
func (m *TwoLevel) Bucket(r trace.Record) uint64 {
	m.ensureTables()
	i1 := m.index1(r.PC)
	cir := m.t1[i1].Bits()
	i2 := m.index2(r.PC, cir)
	m.cachePC, m.cacheI1, m.cacheI2, m.cacheOK = r.PC, i1, i2, true
	return m.t2[i2].Bits()
}

// BucketUpdate implements Fused: both indices are computed once, the
// second-level index from the first-level CIR before either level trains,
// exactly as the split Bucket/Update pair would.
func (m *TwoLevel) BucketUpdate(r trace.Record, incorrect bool) uint64 {
	m.ensureTables()
	i1 := m.index1(r.PC)
	i2 := m.index2(r.PC, m.t1[i1].Bits())
	b := m.t2[i2].Bits()
	m.t1[i1].Record(incorrect)
	m.t2[i2].Record(incorrect)
	m.bhr.Record(r.Taken)
	m.gcir.Record(incorrect)
	m.cacheOK = false
	return b
}

// Update shifts the outcome into both levels and advances the histories.
// The second-level index is computed from the first-level CIR before it is
// updated, consistent with Bucket.
func (m *TwoLevel) Update(r trace.Record, incorrect bool) {
	m.ensureTables()
	var i1, i2 uint64
	if m.cacheOK && m.cachePC == r.PC {
		i1, i2 = m.cacheI1, m.cacheI2
	} else {
		i1 = m.index1(r.PC)
		i2 = m.index2(r.PC, m.t1[i1].Bits())
	}
	m.cacheOK = false
	m.t1[i1].Record(incorrect)
	m.t2[i2].Record(incorrect)
	m.bhr.Record(r.Taken)
	m.gcir.Record(incorrect)
}

// Reset restores both tables to the configured initial state. The table
// fills are deferred to the next access (ensureTables).
func (m *TwoLevel) Reset() {
	m.tableDirty = true
	m.bhr.Set(0)
	m.gcir.Set(0)
	m.cacheOK = false
}

// Name implements Mechanism, matching Figure 6's legend style
// (e.g. "2lev-BHRxorPC-CIR").
func (m *TwoLevel) Name() string {
	return fmt.Sprintf("2lev-%s-%s", m.scheme1, m.scheme2)
}
