package core

import (
	"testing"

	"branchconf/internal/xrand"
)

// TestFusedMatchesSplit drives each Fused implementation and a twin
// instance of the same configuration through an identical pseudo-random
// branch stream, one via BucketUpdate and one via the split
// Bucket-then-Update protocol. Every bucket must agree at every step —
// the replay kernel relies on the fused path being observably identical.
func TestFusedMatchesSplit(t *testing.T) {
	builders := map[string]func() Mechanism{
		"static":            func() Mechanism { return NewStaticProfile() },
		"onelevel-pcxorbhr": func() Mechanism { return PaperOneLevel(IndexPCxorBHR) },
		"onelevel-gcir": func() Mechanism {
			return NewOneLevel(OneLevelConfig{Scheme: IndexPCxorGCIR, TableBits: 10, CIRBits: 8, Init: InitRandom, InitSeed: 7})
		},
		"twolevel": func() Mechanism {
			return NewTwoLevel(TwoLevelConfig{Scheme1: IndexPCxorBHR, Scheme2: L2CIRxorPCxorBHR})
		},
		"resetting": func() Mechanism { return PaperResetting() },
		"saturating": func() Mechanism {
			return NewCounterTable(CounterConfig{Kind: Saturating, Scheme: IndexPCxorBHR, TableBits: 12})
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			split := build()
			fused, ok := build().(Fused)
			if !ok {
				t.Fatalf("%s does not implement Fused", split.Name())
			}
			rng := xrand.New(0xF05ED)
			for i := 0; i < 20000; i++ {
				r := rec(0x1000+16*(rng.Uint64()%512), rng.Uint64()%3 != 0)
				incorrect := rng.Uint64()%5 == 0
				want := split.Bucket(r)
				split.Update(r, incorrect)
				if got := fused.BucketUpdate(r, incorrect); got != want {
					t.Fatalf("step %d: BucketUpdate=%d, Bucket-then-Update=%d", i, got, want)
				}
			}
		})
	}
}
