package core

import (
	"testing"

	"branchconf/internal/predictor"
	"branchconf/internal/trace"
)

func TestCounterStrengthBuckets(t *testing.T) {
	g := predictor.NewGshare(8, 0) // no history: PC-indexed, easy to steer
	m := NewCounterStrength(g)
	r := trace.Record{PC: 0x1000, Target: 0x1040, Taken: true}
	// Fresh counters are weakly taken (state 2): weak → bucket 0.
	if m.Bucket(r) != 0 {
		t.Fatalf("fresh bucket %d, want 0 (weak)", m.Bucket(r))
	}
	// One taken outcome: state 3, strong.
	g.Update(r)
	if m.Bucket(r) != 1 {
		t.Fatalf("saturated bucket %d, want 1 (strong)", m.Bucket(r))
	}
	// Two not-taken outcomes: state 1, weak again.
	nt := r
	nt.Taken = false
	g.Update(nt)
	g.Update(nt)
	if m.Bucket(r) != 0 {
		t.Fatalf("descending bucket %d, want 0", m.Bucket(r))
	}
	// Third not-taken: state 0, strong not-taken.
	g.Update(nt)
	if m.Bucket(r) != 1 {
		t.Fatalf("floor bucket %d, want 1", m.Bucket(r))
	}
	m.Update(r, true) // no-op
	m.Reset()         // no-op
	if m.Name() != "counter-strength" {
		t.Fatalf("name %q", m.Name())
	}
}

func TestStrengthEstimatorSignal(t *testing.T) {
	g := predictor.NewGshare(8, 0)
	e := StrengthEstimator(g)
	r := trace.Record{PC: 0x2000, Target: 0x2040, Taken: true}
	if e.Confident(r) {
		t.Fatal("weak state classified confident")
	}
	g.Update(r)
	if !e.Confident(r) {
		t.Fatal("strong state not confident")
	}
}
