package core

import (
	"strings"
	"testing"

	"branchconf/internal/trace"
)

func rec(pc uint64, taken bool) trace.Record {
	return trace.Record{PC: pc, Target: pc + 32, Taken: taken}
}

func TestIndexSchemeStrings(t *testing.T) {
	want := map[IndexScheme]string{
		IndexPC: "PC", IndexBHR: "BHR", IndexPCxorBHR: "BHRxorPC",
		IndexGCIR: "GCIR", IndexPCxorGCIR: "GCIRxorPC", IndexPCconcatBHR: "PCcatBHR",
	}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
	if !strings.Contains(IndexScheme(99).String(), "99") {
		t.Fatal("unknown scheme string")
	}
}

func TestInitPolicyValues(t *testing.T) {
	if got := InitOnes.initValue(8, nil); got != 0xFF {
		t.Fatalf("ones(8) = %x", got)
	}
	if got := InitOnes.initValue(64, nil); got != ^uint64(0) {
		t.Fatalf("ones(64) = %x", got)
	}
	if got := InitZeros.initValue(16, nil); got != 0 {
		t.Fatalf("zeros = %x", got)
	}
	if got := InitLastBit.initValue(16, nil); got != 0x8000 {
		t.Fatalf("lastbit(16) = %x, want 8000", got)
	}
}

func TestInitPolicyStrings(t *testing.T) {
	for p, w := range map[InitPolicy]string{InitOnes: "one", InitZeros: "zero", InitLastBit: "lastbit", InitRandom: "random"} {
		if p.String() != w {
			t.Fatalf("policy %d string %q want %q", int(p), p.String(), w)
		}
	}
}

func TestOneLevelDefaults(t *testing.T) {
	m := PaperOneLevel(IndexPCxorBHR)
	if m.TableBits() != 16 || m.CIRBits() != 16 || m.Scheme() != IndexPCxorBHR {
		t.Fatalf("defaults: %d/%d/%v", m.TableBits(), m.CIRBits(), m.Scheme())
	}
	// All-ones init: first bucket read must be the all-ones pattern.
	if got := m.Bucket(rec(0x1000, true)); got != 0xFFFF {
		t.Fatalf("initial bucket %x, want ffff", got)
	}
}

func TestOneLevelShiftSemantics(t *testing.T) {
	m := NewOneLevel(OneLevelConfig{Scheme: IndexPC, TableBits: 8, CIRBits: 8, Init: InitZeros})
	r := rec(0x1000, true)
	// Three correct, one incorrect, four correct → 00010000 (paper §3.1).
	seq := []bool{false, false, false, true, false, false, false, false}
	for _, inc := range seq {
		m.Update(r, inc)
	}
	if got := m.Bucket(r); got != 0b00010000 {
		t.Fatalf("bucket %08b, want 00010000", got)
	}
}

func TestOneLevelPCIndexingSeparates(t *testing.T) {
	m := NewOneLevel(OneLevelConfig{Scheme: IndexPC, TableBits: 8, CIRBits: 4, Init: InitZeros})
	a, b := rec(0x1000, true), rec(0x1008, true)
	m.Update(a, true)
	if m.Bucket(a) == m.Bucket(b) {
		t.Fatal("distinct PCs aliased in a table with room")
	}
}

func TestOneLevelBHRIndexingIgnoresPC(t *testing.T) {
	m := NewOneLevel(OneLevelConfig{Scheme: IndexBHR, TableBits: 8, CIRBits: 4, Init: InitZeros})
	a, b := rec(0x1000, true), rec(0x2000, true)
	// Identical history ⇒ identical bucket regardless of PC.
	if m.Bucket(a) != m.Bucket(b) {
		t.Fatal("BHR indexing distinguished PCs")
	}
}

func TestOneLevelXORUsesBoth(t *testing.T) {
	m := NewOneLevel(OneLevelConfig{Scheme: IndexPCxorBHR, TableBits: 8, CIRBits: 4, Init: InitZeros})
	// Mark the entry for (PC=0x1000, empty history).
	m.Update(rec(0x1000, false), true) // also shifts BHR with not-taken (0)
	// Same PC, same history (still zero) → same entry, nonzero CIR.
	if m.Bucket(rec(0x1000, true)) == 0 {
		t.Fatal("expected marked entry for same context")
	}
	// Different PC with same history → different entry.
	if m.Bucket(rec(0x1040, true)) != 0 {
		t.Fatal("different PC hit the marked entry")
	}
}

func TestOneLevelHistoryAffectsIndex(t *testing.T) {
	m := NewOneLevel(OneLevelConfig{Scheme: IndexPCxorBHR, TableBits: 8, CIRBits: 4, Init: InitZeros})
	m.Update(rec(0x1000, true), true) // history now 1, entry for history-0 marked
	// Same PC but history changed → different entry (still zero).
	if m.Bucket(rec(0x1000, true)) != 0 {
		t.Fatal("history change did not move the index")
	}
}

func TestOneLevelGCIRIndexing(t *testing.T) {
	m := NewOneLevel(OneLevelConfig{Scheme: IndexGCIR, TableBits: 8, CIRBits: 4, Init: InitZeros})
	m.Update(rec(0x1000, true), true) // GCIR now 1
	m.Update(rec(0x2000, true), false)
	// Bucket depends only on correctness history, not on the record.
	if m.Bucket(rec(0x3000, false)) != m.Bucket(rec(0x4000, true)) {
		t.Fatal("GCIR indexing distinguished records")
	}
}

func TestOneLevelConcatIndexing(t *testing.T) {
	m := NewOneLevel(OneLevelConfig{Scheme: IndexPCconcatBHR, TableBits: 8, CIRBits: 4, Init: InitZeros})
	m.Update(rec(0x1000, false), true)
	if m.Bucket(rec(0x1000, true)) == 0 {
		t.Fatal("same context missed marked concat entry")
	}
}

func TestOneLevelReset(t *testing.T) {
	m := PaperOneLevel(IndexPCxorBHR)
	r := rec(0x1000, true)
	for i := 0; i < 20; i++ {
		m.Update(r, false)
	}
	m.Reset()
	if got := m.Bucket(r); got != 0xFFFF {
		t.Fatalf("bucket after reset %x, want ffff", got)
	}
}

func TestOneLevelInitPolicies(t *testing.T) {
	r := rec(0x1000, true)
	ones := NewOneLevel(OneLevelConfig{TableBits: 8, CIRBits: 8, Init: InitOnes})
	if ones.Bucket(r) != 0xFF {
		t.Fatalf("InitOnes bucket %x", ones.Bucket(r))
	}
	zeros := NewOneLevel(OneLevelConfig{TableBits: 8, CIRBits: 8, Init: InitZeros})
	if zeros.Bucket(r) != 0 {
		t.Fatalf("InitZeros bucket %x", zeros.Bucket(r))
	}
	last := NewOneLevel(OneLevelConfig{TableBits: 8, CIRBits: 8, Init: InitLastBit})
	if last.Bucket(r) != 0x80 {
		t.Fatalf("InitLastBit bucket %x", last.Bucket(r))
	}
}

func TestOneLevelRandomInitDeterministic(t *testing.T) {
	a := NewOneLevel(OneLevelConfig{TableBits: 8, CIRBits: 8, Init: InitRandom, InitSeed: 7})
	b := NewOneLevel(OneLevelConfig{TableBits: 8, CIRBits: 8, Init: InitRandom, InitSeed: 7})
	c := NewOneLevel(OneLevelConfig{TableBits: 8, CIRBits: 8, Init: InitRandom, InitSeed: 8})
	same, diff := 0, 0
	for pc := uint64(0x1000); pc < 0x1800; pc += 8 {
		r := rec(pc, true)
		if a.Bucket(r) == b.Bucket(r) {
			same++
		}
		if a.Bucket(r) != c.Bucket(r) {
			diff++
		}
	}
	if same != 256 {
		t.Fatalf("same seed agreed on %d/256 entries", same)
	}
	if diff < 200 {
		t.Fatalf("different seeds agreed too often (%d/256 differ)", diff)
	}
}

func TestOneLevelPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"table-31": func() { NewOneLevel(OneLevelConfig{TableBits: 31}) },
		"cir-65":   func() { NewOneLevel(OneLevelConfig{CIRBits: 65}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestOneLevelName(t *testing.T) {
	m := PaperOneLevel(IndexPCxorBHR)
	if m.Name() != "1lev-BHRxorPC-cir16-2^16-one" {
		t.Fatalf("name %q", m.Name())
	}
}
