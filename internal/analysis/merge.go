package analysis

// TallyMerger folds per-segment bucket statistics into one running
// BucketStats for the streaming tally engine (internal/sim). Tallies are
// exact integer sums, so merging segment histograms in stream order yields
// bit-for-bit the statistics a monolithic walk would have produced — the
// invariant every downstream artefact (HashRuns-keyed curves, model-stats
// vectors) rests on.
type TallyMerger struct {
	stats BucketStats
}

// NewTallyMerger returns a merger with empty statistics.
func NewTallyMerger() *TallyMerger {
	return &TallyMerger{stats: BucketStats{}}
}

// Merge folds one segment's statistics into the running totals. The input
// is read, never retained or mutated, so callers may merge a shared
// read-only histogram (a cached BucketStream's) directly.
func (m *TallyMerger) Merge(bs BucketStats) {
	for b, t := range bs {
		acc := m.stats[b]
		if acc == nil {
			acc = &Tally{}
			m.stats[b] = acc
		}
		acc.Events += t.Events
		acc.Misses += t.Misses
	}
}

// Stats returns the merged statistics. The map is the merger's live
// accumulator: callers must treat it as read-only once handed out, and
// Merge must not be called after Stats escapes to a reader.
func (m *TallyMerger) Stats() BucketStats {
	return m.stats
}

// Totals returns the merged totals, for boundary cross-checks against a
// unit's own running counts.
func (m *TallyMerger) Totals() (events, misses uint64) {
	return m.stats.Totals()
}
