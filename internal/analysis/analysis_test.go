package analysis

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestTallyRate(t *testing.T) {
	if (Tally{}).Rate() != 0 {
		t.Fatal("empty tally rate")
	}
	if got := (Tally{Events: 4, Misses: 1}).Rate(); got != 0.25 {
		t.Fatalf("rate %v", got)
	}
}

func TestBucketStatsAdd(t *testing.T) {
	bs := make(BucketStats)
	bs.Add(1, true)
	bs.Add(1, false)
	bs.Add(2, false)
	e, m := bs.Totals()
	if e != 3 || m != 1 {
		t.Fatalf("totals %d/%d", e, m)
	}
	if bs[1].Events != 2 || bs[1].Misses != 1 {
		t.Fatalf("bucket 1 %+v", bs[1])
	}
	if got := bs.MissRate(); !approx(got, 1.0/3, 1e-12) {
		t.Fatalf("miss rate %v", got)
	}
}

func TestCompositePooledEqualWeight(t *testing.T) {
	// Run A: 100 events; Run B: 1000 events. After compositing each must
	// contribute exactly 1.0 event mass.
	a, b := make(BucketStats), make(BucketStats)
	for i := 0; i < 100; i++ {
		a.Add(7, i < 10) // 10% misses
	}
	for i := 0; i < 1000; i++ {
		b.Add(7, i < 500) // 50% misses
	}
	ws := CompositePooled([]BucketStats{a, b})
	if len(ws) != 1 {
		t.Fatalf("%d buckets, want pooled 1", len(ws))
	}
	e, m := ws.Totals()
	if !approx(e, 2, 1e-9) {
		t.Fatalf("event mass %v, want 2", e)
	}
	// Pooled rate must be the equal-weight average of 10% and 50%.
	if !approx(m/e, 0.3, 1e-9) {
		t.Fatalf("pooled rate %v, want 0.3", m/e)
	}
}

func TestCompositeDistinctKeepsRunsApart(t *testing.T) {
	a, b := make(BucketStats), make(BucketStats)
	a.Add(7, true)
	b.Add(7, false)
	ws := CompositeDistinct([]BucketStats{a, b})
	if len(ws) != 2 {
		t.Fatalf("%d buckets, want 2 distinct", len(ws))
	}
	if ws[Key{Run: 0, Bucket: 7}].Rate() != 1 || ws[Key{Run: 1, Bucket: 7}].Rate() != 0 {
		t.Fatal("runs merged")
	}
}

func TestSingleKeepsRawCounts(t *testing.T) {
	bs := make(BucketStats)
	for i := 0; i < 10; i++ {
		bs.Add(3, i == 0)
	}
	ws := Single(bs)
	e, m := ws.Totals()
	if e != 10 || m != 1 {
		t.Fatalf("totals %v/%v", e, m)
	}
}

func mkStats(pairs ...[2]uint64) BucketStats {
	// pairs of (events, misses) assigned to buckets 0,1,2,...
	bs := make(BucketStats)
	for i, p := range pairs {
		for e := uint64(0); e < p[0]; e++ {
			bs.Add(uint64(i), e < p[1])
		}
	}
	return bs
}

func TestBuildCurveOrdering(t *testing.T) {
	// bucket 0: rate 0.5, bucket 1: rate 0.1, bucket 2: rate 0.9.
	bs := mkStats([2]uint64{10, 5}, [2]uint64{10, 1}, [2]uint64{10, 9})
	c := BuildCurve(Single(bs))
	if len(c) != 3 {
		t.Fatalf("%d points", len(c))
	}
	if c[0].Key.Bucket != 2 || c[1].Key.Bucket != 0 || c[2].Key.Bucket != 1 {
		t.Fatalf("order %v %v %v", c[0].Key, c[1].Key, c[2].Key)
	}
	// Terminal point is (100, 100).
	last := c[len(c)-1]
	if !approx(last.CumEventsPct, 100, 1e-9) || !approx(last.CumMissesPct, 100, 1e-9) {
		t.Fatalf("terminal point (%v, %v)", last.CumEventsPct, last.CumMissesPct)
	}
}

func TestCurveMonotone(t *testing.T) {
	check := func(events []uint16, missBits []uint16) bool {
		n := len(events)
		if len(missBits) < n {
			n = len(missBits)
		}
		if n == 0 {
			return true
		}
		bs := make(BucketStats)
		for i := 0; i < n; i++ {
			e := uint64(events[i]%50) + 1
			m := uint64(missBits[i]) % (e + 1)
			for j := uint64(0); j < e; j++ {
				bs.Add(uint64(i), j < m)
			}
		}
		c := BuildCurve(Single(bs))
		prevX, prevY, prevRate := 0.0, 0.0, math.Inf(1)
		for _, p := range c {
			if p.CumEventsPct < prevX-1e-9 || p.CumMissesPct < prevY-1e-9 {
				return false
			}
			if p.Rate > prevRate+1e-9 {
				return false // sorted by rate desc
			}
			prevX, prevY, prevRate = p.CumEventsPct, p.CumMissesPct, p.Rate
		}
		return approx(prevX, 100, 1e-6) && (prevY == 0 || approx(prevY, 100, 1e-6))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property (optimality of the ideal reduction): sorting buckets by
// misprediction rate dominates any other ordering — at every prefix event
// mass, the sorted curve captures at least as many mispredictions.
func TestSortedOrderingDominates(t *testing.T) {
	check := func(events []uint16, missBits []uint16, shuffleSeed uint16) bool {
		n := len(events)
		if len(missBits) < n {
			n = len(missBits)
		}
		if n < 2 {
			return true
		}
		bs := make(BucketStats)
		for i := 0; i < n; i++ {
			e := uint64(events[i]%50) + 1
			m := uint64(missBits[i]) % (e + 1)
			for j := uint64(0); j < e; j++ {
				bs.Add(uint64(i), j < m)
			}
		}
		ws := Single(bs)
		sorted := BuildCurve(ws)
		// An arbitrary alternative ordering: by bucket id, rotated.
		keys := make([]Key, 0, len(ws))
		for k := range ws {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Bucket < keys[j].Bucket })
		rot := int(shuffleSeed) % len(keys)
		keys = append(keys[rot:], keys[:rot]...)
		totalE, totalM := ws.Totals()
		var cumE, cumM float64
		for _, k := range keys {
			cumE += ws[k].Events
			cumM += ws[k].Misses
			x := 100 * cumE / totalE
			y := 0.0
			if totalM > 0 {
				y = 100 * cumM / totalM
			}
			if sorted.MispredsAt(x) < y-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMispredsAtInterpolation(t *testing.T) {
	// Two buckets: first covers 50% of events and 100% of misses.
	bs := mkStats([2]uint64{10, 10}, [2]uint64{10, 0})
	c := BuildCurve(Single(bs))
	if got := c.MispredsAt(25); !approx(got, 50, 1e-9) {
		t.Fatalf("MispredsAt(25) = %v, want 50 (linear)", got)
	}
	if got := c.MispredsAt(50); !approx(got, 100, 1e-9) {
		t.Fatalf("MispredsAt(50) = %v", got)
	}
	if got := c.MispredsAt(75); !approx(got, 100, 1e-9) {
		t.Fatalf("MispredsAt(75) = %v", got)
	}
	if got := c.MispredsAt(0); got != 0 {
		t.Fatalf("MispredsAt(0) = %v", got)
	}
	if got := c.MispredsAt(200); got != 100 {
		t.Fatalf("MispredsAt(200) = %v", got)
	}
}

func TestBranchesForInverse(t *testing.T) {
	bs := mkStats([2]uint64{10, 10}, [2]uint64{10, 0})
	c := BuildCurve(Single(bs))
	if got := c.BranchesFor(50); !approx(got, 25, 1e-9) {
		t.Fatalf("BranchesFor(50) = %v, want 25", got)
	}
	if got := c.BranchesFor(100); !approx(got, 50, 1e-9) {
		t.Fatalf("BranchesFor(100) = %v, want 50", got)
	}
}

func TestLowSet(t *testing.T) {
	// buckets by rate: 2 (0.9, 25% events), 0 (0.5, 25%), 1 (0.1, 50%).
	bs := mkStats([2]uint64{10, 5}, [2]uint64{20, 2}, [2]uint64{10, 9})
	c := BuildCurve(Single(bs))
	set := c.LowSet(50)
	if len(set) != 2 || set[0] != 2 || set[1] != 0 {
		t.Fatalf("LowSet(50) = %v, want [2 0]", set)
	}
	if got := c.LowSet(10); len(got) != 0 {
		t.Fatalf("LowSet(10) = %v, want empty (first bucket is 25%%)", got)
	}
}

func TestThin(t *testing.T) {
	// 100 buckets of 1% each, equal rates ⇒ thinning at 10 keeps ~10 points.
	bs := make(BucketStats)
	for i := 0; i < 100; i++ {
		bs.Add(uint64(i), i%2 == 0)
		bs.Add(uint64(i), false)
	}
	c := BuildCurve(Single(bs))
	thin := c.Thin(10)
	// First half of the curve advances misses 2%/point (kept every 5th),
	// second half advances events 1%/point (kept every 10th): ~15 points.
	if len(thin) < 12 || len(thin) > 17 {
		t.Fatalf("thinned to %d points", len(thin))
	}
	// Final point preserved.
	if thin[len(thin)-1].CumEventsPct != c[len(c)-1].CumEventsPct {
		t.Fatal("thinning dropped the terminal point")
	}
}

func TestWriteDat(t *testing.T) {
	bs := mkStats([2]uint64{10, 5}, [2]uint64{10, 1})
	c := BuildCurve(Single(bs))
	var sb strings.Builder
	if err := c.WriteDat(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.Contains(lines[1], "100.0000 100.0000") {
		t.Fatalf("last line %q", lines[1])
	}
}

func TestCounterRows(t *testing.T) {
	// Counter values 0..2: value 0 rare but hot, value 2 huge and cold —
	// a miniature Table 1.
	bs := make(BucketStats)
	for i := 0; i < 10; i++ {
		bs.Add(0, i < 4) // 40% miss
	}
	for i := 0; i < 30; i++ {
		bs.Add(1, i < 3) // 10% miss
	}
	for i := 0; i < 60; i++ {
		bs.Add(2, i < 3) // 5% miss
	}
	rows := CounterRows(CompositePooled([]BucketStats{bs}), 2)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Count != 0 || !approx(rows[0].MissRate, 0.4, 1e-9) {
		t.Fatalf("row0 %+v", rows[0])
	}
	if !approx(rows[0].RefsPct, 10, 1e-9) || !approx(rows[0].MissesPct, 40, 1e-9) {
		t.Fatalf("row0 pct %+v", rows[0])
	}
	if !approx(rows[2].CumRefsPct, 100, 1e-9) || !approx(rows[2].CumMissesPct, 100, 1e-9) {
		t.Fatalf("cumulative end %+v", rows[2])
	}
	// Cumulative columns are monotone.
	for i := 1; i < len(rows); i++ {
		if rows[i].CumRefsPct < rows[i-1].CumRefsPct || rows[i].CumMissesPct < rows[i-1].CumMissesPct {
			t.Fatalf("non-monotone cumulative at row %d", i)
		}
	}
}

func TestCounterRowsMissingBuckets(t *testing.T) {
	bs := make(BucketStats)
	bs.Add(0, true)
	rows := CounterRows(CompositePooled([]BucketStats{bs}), 4)
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[3].RefsPct != 0 || rows[3].CumRefsPct != 100 {
		t.Fatalf("empty bucket row %+v", rows[3])
	}
}

func TestFormatters(t *testing.T) {
	bs := mkStats([2]uint64{10, 5}, [2]uint64{10, 1})
	c := BuildCurve(Single(bs))
	fig := FormatFigure("Fig X", []Series{{Label: "test", Curve: c}}, []float64{20, 50})
	if !strings.Contains(fig, "Fig X") || !strings.Contains(fig, "test") {
		t.Fatalf("figure format:\n%s", fig)
	}
	rows := CounterRows(CompositePooled([]BucketStats{bs}), 1)
	tbl := FormatCounterTable(rows)
	if !strings.Contains(tbl, "Count") || len(strings.Split(strings.TrimSpace(tbl), "\n")) != 3 {
		t.Fatalf("table format:\n%s", tbl)
	}
	if c.String() == "" || (WeightedStats{}).String() == "" {
		t.Fatal("empty summaries")
	}
}

func TestBuildCurveEmpty(t *testing.T) {
	if BuildCurve(WeightedStats{}) != nil {
		t.Fatal("empty stats produced a curve")
	}
	var c Curve
	if c.MispredsAt(20) != 0 {
		t.Fatal("empty curve MispredsAt")
	}
}
