package analysis

import (
	"fmt"
	"strings"
)

// TableRow is one row of the paper's Table 1: statistics for a single
// counter value of a resetting- (or saturating-) counter confidence table.
// Rows run from count 0 (most recently mispredicted, lowest confidence) to
// the saturation ceiling; cumulative columns accumulate from count 0 down,
// matching the table's "from the top" convention.
type TableRow struct {
	Count        int     // counter value
	MissRate     float64 // misprediction rate at this counter value
	RefsPct      float64 // percent of dynamic branches seeing this value
	MissesPct    float64 // percent of mispredictions at this value
	CumRefsPct   float64 // cumulative percent of branches, counts 0..Count
	CumMissesPct float64 // cumulative percent of mispredictions
}

// CounterRows builds Table 1 from a composite of counter-valued bucket
// statistics with values in [0, max]. Buckets outside the range are
// ignored (there are none for a well-formed counter mechanism).
func CounterRows(ws WeightedStats, max int) []TableRow {
	totalE, totalM := ws.Totals()
	rows := make([]TableRow, max+1)
	var cumE, cumM float64
	for v := 0; v <= max; v++ {
		t := ws[Key{Bucket: uint64(v)}]
		if t == nil {
			t = &WTally{}
		}
		cumE += t.Events
		cumM += t.Misses
		row := TableRow{Count: v, MissRate: t.Rate()}
		if totalE > 0 {
			row.RefsPct = 100 * t.Events / totalE
			row.CumRefsPct = 100 * cumE / totalE
		}
		if totalM > 0 {
			row.MissesPct = 100 * t.Misses / totalM
			row.CumMissesPct = 100 * cumM / totalM
		}
		rows[v] = row
	}
	return rows
}

// FormatCounterTable renders rows in the layout of the paper's Table 1.
func FormatCounterTable(rows []TableRow) string {
	var b strings.Builder
	b.WriteString("Count  Mis%pred.  %Refs  %Mispreds  Cum.%Refs  Cum.%Mispreds\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5d  %9.3f  %5.2f  %9.2f  %9.2f  %13.1f\n",
			r.Count, 100*r.MissRate, r.RefsPct, r.MissesPct, r.CumRefsPct, r.CumMissesPct)
	}
	return b.String()
}

// Series is a named curve, the unit figures are assembled from.
type Series struct {
	Label string
	Curve Curve
}

// FormatFigure renders a set of series as aligned reference points — the
// textual equivalent of one of the paper's figures. The xs are cumulative
// dynamic-branch percentages; each cell is the percentage of mispredictions
// captured there.
func FormatFigure(title string, series []Series, xs []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-34s", "series \\ %branches")
	for _, x := range xs {
		fmt.Fprintf(&b, "%8.0f", x)
	}
	b.WriteByte('\n')
	for _, s := range series {
		fmt.Fprintf(&b, "%-34s", s.Label)
		for _, x := range xs {
			fmt.Fprintf(&b, "%8.1f", s.Curve.MispredsAt(x))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
