package analysis

import (
	"strings"
	"testing"
)

func plotCurve() Curve {
	bs := make(BucketStats)
	// Hot bucket: 10% of events, 70% of misses.
	for i := 0; i < 100; i++ {
		bs.Add(0, i < 70)
	}
	for i := 0; i < 900; i++ {
		bs.Add(1, i < 30)
	}
	return BuildCurve(Single(bs))
}

func TestPlotBasics(t *testing.T) {
	out := Plot([]Series{{Label: "alpha", Curve: plotCurve()}}, DefaultPlot())
	if !strings.Contains(out, "alpha") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "100 ┤") || !strings.Contains(out, "    └") {
		t.Fatal("axes missing")
	}
	if !strings.Contains(out, "% of dynamic branches") {
		t.Fatal("x label missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no curve marks drawn")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// height grid rows + bottom axis + x label + 1 legend line
	if len(lines) != DefaultPlot().Height+3 {
		t.Fatalf("%d lines", len(lines))
	}
}

func TestPlotMultipleSeries(t *testing.T) {
	out := Plot([]Series{
		{Label: "a", Curve: plotCurve()},
		{Label: "b", Curve: plotCurve()},
	}, PlotConfig{Width: 40, Height: 12})
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatal("legend entries missing")
	}
	// Second series mark '+' must be present (it overdraws '*').
	if !strings.Contains(out, "+") {
		t.Fatal("second series mark missing")
	}
}

func TestPlotTinyConfigFallsBack(t *testing.T) {
	out := Plot([]Series{{Label: "x", Curve: plotCurve()}}, PlotConfig{Width: 1, Height: 1})
	if len(out) == 0 {
		t.Fatal("empty plot")
	}
}

func TestPlotCurveTopRight(t *testing.T) {
	// Every curve ends at (100,100): the top-right cell must be drawn.
	out := Plot([]Series{{Label: "x", Curve: plotCurve()}}, PlotConfig{Width: 30, Height: 10})
	first := strings.SplitN(out, "\n", 2)[0]
	if !strings.HasSuffix(first, "*") {
		t.Fatalf("top row does not reach the right edge: %q", first)
	}
}

func TestConfusionAccounting(t *testing.T) {
	var c Confusion
	c.Add(true, false)  // high correct
	c.Add(true, false)  // high correct
	c.Add(true, true)   // escape
	c.Add(false, false) // false alarm
	c.Add(false, true)  // capture
	c.Add(false, true)  // capture
	if c.Total() != 6 || c.Misses() != 3 {
		t.Fatalf("totals %d/%d", c.Total(), c.Misses())
	}
	if got := c.Sens(); got < 0.66 || got > 0.67 {
		t.Fatalf("Sens %v", got)
	}
	if got := c.Spec(); got < 0.66 || got > 0.67 {
		t.Fatalf("Spec %v", got)
	}
	if got := c.PVP(); got < 0.66 || got > 0.67 {
		t.Fatalf("PVP %v", got)
	}
	if got := c.PVN(); got < 0.66 || got > 0.67 {
		t.Fatalf("PVN %v", got)
	}
	if got := c.LowFrac(); got != 0.5 {
		t.Fatalf("LowFrac %v", got)
	}
	if !strings.Contains(c.String(), "SENS") {
		t.Fatal("String missing metrics")
	}
}

func TestConfusionEmpty(t *testing.T) {
	var c Confusion
	if c.Sens() != 0 || c.Spec() != 0 || c.PVP() != 0 || c.PVN() != 0 || c.LowFrac() != 0 {
		t.Fatal("empty confusion nonzero metrics")
	}
}
