package analysis

import (
	"crypto/sha256"
	"encoding/binary"
	"slices"
)

// HashRuns returns the canonical content hash of a set of per-run bucket
// tallies: per run, the (bucket, events, misses) triples in ascending
// bucket order, length-framed so run boundaries and empty runs are
// unambiguous. Two run sets hash equal iff they carry identical integer
// statistics, so the hash keys any artefact that is a pure function of the
// tallies — notably the sorted confidence curves the experiment layer
// persists. Hashing is O(buckets log buckets) per run, orders of magnitude
// cheaper than the composite+sort build it lets warm runs skip.
func HashRuns(runs []BucketStats) [sha256.Size]byte {
	h := sha256.New()
	var word [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(word[:], v)
		h.Write(word[:])
	}
	writeU64(uint64(len(runs)))
	var buckets []uint64
	// One triple-sized chunk buffer amortises the hash-write call overhead.
	buf := make([]byte, 0, 24*1024)
	for _, bs := range runs {
		writeU64(uint64(len(bs)))
		buckets = buckets[:0]
		for b := range bs {
			buckets = append(buckets, b)
		}
		slices.Sort(buckets)
		buf = buf[:0]
		for _, b := range buckets {
			t := bs[b]
			buf = binary.LittleEndian.AppendUint64(buf, b)
			buf = binary.LittleEndian.AppendUint64(buf, t.Events)
			buf = binary.LittleEndian.AppendUint64(buf, t.Misses)
			if len(buf) >= 24*1024 {
				h.Write(buf)
				buf = buf[:0]
			}
		}
		h.Write(buf)
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
