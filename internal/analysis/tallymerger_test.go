package analysis

import (
	"reflect"
	"testing"
)

// TestTallyMergerMatchesMonolithic: merging per-segment histograms at any
// segmentation must reproduce the monolithic statistics exactly.
func TestTallyMergerMatchesMonolithic(t *testing.T) {
	// A deterministic (bucket, incorrect) stream with hot and cold buckets.
	type ev struct {
		bucket    uint64
		incorrect bool
	}
	stream := make([]ev, 10000)
	for i := range stream {
		stream[i] = ev{bucket: uint64(i*i) % 37, incorrect: i%3 == 0}
	}
	whole := BucketStats{}
	for _, e := range stream {
		whole.Add(e.bucket, e.incorrect)
	}
	for _, size := range []int{1, 997, 5000, len(stream), len(stream) + 1} {
		m := NewTallyMerger()
		for start := 0; start < len(stream); start += size {
			end := min(start+size, len(stream))
			seg := BucketStats{}
			for _, e := range stream[start:end] {
				seg.Add(e.bucket, e.incorrect)
			}
			m.Merge(seg)
		}
		if !reflect.DeepEqual(m.Stats(), whole) {
			t.Fatalf("size %d: merged stats diverge from monolithic", size)
		}
		e, miss := m.Totals()
		we, wm := whole.Totals()
		if e != we || miss != wm {
			t.Fatalf("size %d: totals (%d,%d), want (%d,%d)", size, e, miss, we, wm)
		}
	}
}

// TestTallyMergerLeavesInputIntact: merging must not retain or mutate the
// segment histogram — it may be a cached stream's shared read-only map.
func TestTallyMergerLeavesInputIntact(t *testing.T) {
	seg := BucketStats{3: {Events: 10, Misses: 4}}
	m := NewTallyMerger()
	m.Merge(seg)
	m.Merge(seg)
	if got := seg[3]; *got != (Tally{Events: 10, Misses: 4}) {
		t.Fatalf("input mutated: %+v", *got)
	}
	if got := m.Stats()[3]; *got != (Tally{Events: 20, Misses: 8}) {
		t.Fatalf("double merge: %+v", *got)
	}
	if m.Stats()[3] == seg[3] {
		t.Fatal("merger aliases the input tally")
	}
}

// TestTallyMergerEmpty: a fresh merger reports empty, non-nil statistics.
func TestTallyMergerEmpty(t *testing.T) {
	m := NewTallyMerger()
	if s := m.Stats(); s == nil || len(s) != 0 {
		t.Fatalf("fresh merger stats = %v", s)
	}
}
