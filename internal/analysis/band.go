package analysis

import (
	"fmt"
	"strings"
)

// Band summarises per-benchmark variation of a confidence method: for each
// reference X (cumulative % of dynamic branches) it holds the minimum,
// equal-weight mean, and maximum captured-misprediction percentage across
// the per-benchmark curves. Figure 9 shows the paper's two extremes; a
// Band quantifies the whole spread.
type Band struct {
	Xs             []float64
	Min, Mean, Max []float64
	// ArgMin and ArgMax name the benchmark attaining the extreme at each X.
	ArgMin, ArgMax []int
}

// BuildBand evaluates each per-benchmark curve at xs.
func BuildBand(curves []Curve, xs []float64) Band {
	b := Band{
		Xs:     append([]float64(nil), xs...),
		Min:    make([]float64, len(xs)),
		Mean:   make([]float64, len(xs)),
		Max:    make([]float64, len(xs)),
		ArgMin: make([]int, len(xs)),
		ArgMax: make([]int, len(xs)),
	}
	if len(curves) == 0 {
		return b
	}
	for i, x := range xs {
		lo, hi, sum := 1e18, -1e18, 0.0
		for ci, c := range curves {
			y := c.MispredsAt(x)
			sum += y
			if y < lo {
				lo, b.ArgMin[i] = y, ci
			}
			if y > hi {
				hi, b.ArgMax[i] = y, ci
			}
		}
		b.Min[i], b.Max[i] = lo, hi
		b.Mean[i] = sum / float64(len(curves))
	}
	return b
}

// Spread returns max-min at the reference X closest to x.
func (b Band) Spread(x float64) float64 {
	if len(b.Xs) == 0 {
		return 0
	}
	best, dist := 0, 1e18
	for i, xi := range b.Xs {
		d := xi - x
		if d < 0 {
			d = -d
		}
		if d < dist {
			best, dist = i, d
		}
	}
	return b.Max[best] - b.Min[best]
}

// Format renders the band with benchmark names resolving ArgMin/ArgMax.
func (b Band) Format(names []string) string {
	var sb strings.Builder
	sb.WriteString("   %branches      min     mean      max   (min / max benchmark)\n")
	for i, x := range b.Xs {
		lo, hi := "?", "?"
		if b.ArgMin[i] < len(names) {
			lo = names[b.ArgMin[i]]
		}
		if b.ArgMax[i] < len(names) {
			hi = names[b.ArgMax[i]]
		}
		fmt.Fprintf(&sb, "%12.0f %8.1f %8.1f %8.1f   (%s / %s)\n",
			x, b.Min[i], b.Mean[i], b.Max[i], lo, hi)
	}
	return sb.String()
}
