package analysis

import (
	"fmt"
	"math"
	"strings"
)

// ASCII rendering of cumulative-misprediction curves, so `confsim -plot`
// can show the paper's figures directly in a terminal. The plot carries
// the same axes as the paper's graphs: X = cumulative % of dynamic
// branches, Y = cumulative % of mispredictions, both 0-100.

// PlotConfig sizes the ASCII canvas.
type PlotConfig struct {
	// Width and Height are the interior plot dimensions in characters.
	Width, Height int
}

// DefaultPlot returns a terminal-friendly canvas size.
func DefaultPlot() PlotConfig { return PlotConfig{Width: 72, Height: 24} }

// seriesMarks assigns one mark per series, cycling if there are many.
var seriesMarks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Plot renders the series onto one ASCII canvas with a legend. Curves are
// drawn as staircase paths through their cumulative points; later series
// overdraw earlier ones where they collide.
func Plot(series []Series, cfg PlotConfig) string {
	if cfg.Width < 10 || cfg.Height < 5 {
		cfg = DefaultPlot()
	}
	w, h := cfg.Width, cfg.Height
	grid := make([][]byte, h)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", w))
	}
	// row maps y∈[0,100] to a canvas row (row 0 is the top = 100%).
	row := func(y float64) int {
		r := (h - 1) - int(math.Round(y/100*float64(h-1)))
		if r < 0 {
			r = 0
		}
		if r >= h {
			r = h - 1
		}
		return r
	}
	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		// Sample the curve at every column for a continuous staircase.
		for c := 0; c < w; c++ {
			x := float64(c) / float64(w-1) * 100
			y := s.Curve.MispredsAt(x)
			grid[row(y)][c] = mark
		}
	}
	var b strings.Builder
	b.WriteString("100 ┤")
	b.Write(grid[0])
	b.WriteByte('\n')
	for y := 1; y < h; y++ {
		label := "    "
		switch y {
		case row(75):
			label = " 75 "
		case row(50):
			label = " 50 "
		case row(25):
			label = " 25 "
		case h - 1:
			label = "  0 "
		}
		b.WriteString(label)
		b.WriteString("┤")
		b.Write(grid[y])
		b.WriteByte('\n')
	}
	b.WriteString("    └")
	b.WriteString(strings.Repeat("─", w))
	b.WriteByte('\n')
	b.WriteString("     0")
	pad := w - 10
	if pad < 1 {
		pad = 1
	}
	b.WriteString(strings.Repeat(" ", pad/2))
	b.WriteString("% of dynamic branches")
	b.WriteByte('\n')
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", seriesMarks[si%len(seriesMarks)], s.Label)
	}
	return b.String()
}
