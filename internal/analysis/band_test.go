package analysis

import (
	"strings"
	"testing"
)

func bandCurves() []Curve {
	mk := func(hotMisses uint64) Curve {
		bs := make(BucketStats)
		for i := uint64(0); i < 100; i++ {
			bs.Add(0, i < hotMisses) // hot bucket, 10% of events
		}
		for i := 0; i < 900; i++ {
			bs.Add(1, i < 10)
		}
		return BuildCurve(Single(bs))
	}
	return []Curve{mk(90), mk(50), mk(20)}
}

func TestBuildBand(t *testing.T) {
	curves := bandCurves()
	b := BuildBand(curves, []float64{10, 20, 50})
	if len(b.Min) != 3 || len(b.Max) != 3 || len(b.Mean) != 3 {
		t.Fatal("band lengths")
	}
	for i := range b.Xs {
		if b.Min[i] > b.Mean[i] || b.Mean[i] > b.Max[i] {
			t.Fatalf("x=%v: min %.1f mean %.1f max %.1f not ordered",
				b.Xs[i], b.Min[i], b.Mean[i], b.Max[i])
		}
	}
	// Curve 0 (most concentrated) should attain the max at x=10.
	if b.ArgMax[0] != 0 {
		t.Fatalf("ArgMax[0] = %d", b.ArgMax[0])
	}
	if b.ArgMin[0] != 2 {
		t.Fatalf("ArgMin[0] = %d", b.ArgMin[0])
	}
	if b.Spread(10) <= 0 {
		t.Fatalf("spread %v", b.Spread(10))
	}
}

func TestBandFormat(t *testing.T) {
	b := BuildBand(bandCurves(), []float64{20})
	out := b.Format([]string{"alpha", "beta", "gamma"})
	if !strings.Contains(out, "alpha") && !strings.Contains(out, "gamma") {
		t.Fatalf("format lacks benchmark names:\n%s", out)
	}
	if !strings.Contains(out, "min") {
		t.Fatal("missing header")
	}
}

func TestBandEmpty(t *testing.T) {
	b := BuildBand(nil, []float64{20})
	if b.Spread(20) != 0 {
		t.Fatal("empty band spread nonzero")
	}
	bNoXs := BuildBand(bandCurves(), nil)
	if bNoXs.Spread(20) != 0 {
		t.Fatal("no-xs band spread nonzero")
	}
}
