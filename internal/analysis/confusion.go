package analysis

import (
	"fmt"
	"strings"
)

// Confusion is the 2x2 joint outcome table of a confidence estimator run:
// predictions split by (confidence signal, prediction correctness). These
// are the standard follow-on metrics for confidence estimation (used by
// the later literature to compare estimators at an operating point):
//
//	SENS — sensitivity: fraction of mispredictions flagged low confidence
//	SPEC — specificity: fraction of correct predictions flagged high
//	PVP  — predictive value of a positive (high-confidence) signal
//	PVN  — predictive value of a negative (low-confidence) signal
type Confusion struct {
	HighCorrect   uint64 // confident and correct
	HighIncorrect uint64 // confident but mispredicted (escapes)
	LowCorrect    uint64 // flagged low but correct (false alarms)
	LowIncorrect  uint64 // flagged low and mispredicted (captures)
}

// Total returns all classified predictions.
func (c Confusion) Total() uint64 {
	return c.HighCorrect + c.HighIncorrect + c.LowCorrect + c.LowIncorrect
}

// Misses returns the total mispredictions.
func (c Confusion) Misses() uint64 { return c.HighIncorrect + c.LowIncorrect }

// Add records one prediction outcome.
func (c *Confusion) Add(confident, incorrect bool) {
	switch {
	case confident && !incorrect:
		c.HighCorrect++
	case confident && incorrect:
		c.HighIncorrect++
	case !confident && !incorrect:
		c.LowCorrect++
	default:
		c.LowIncorrect++
	}
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Sens returns the sensitivity: captured mispredictions over all
// mispredictions (the paper's coverage metric).
func (c Confusion) Sens() float64 { return ratio(c.LowIncorrect, c.Misses()) }

// Spec returns the specificity: correct predictions kept high-confidence.
func (c Confusion) Spec() float64 {
	return ratio(c.HighCorrect, c.HighCorrect+c.LowCorrect)
}

// PVP returns the accuracy within the high-confidence set.
func (c Confusion) PVP() float64 {
	return ratio(c.HighCorrect, c.HighCorrect+c.HighIncorrect)
}

// PVN returns the misprediction rate within the low-confidence set — must
// exceed 50% for a profitable prediction reverser (§1, application 4).
func (c Confusion) PVN() float64 {
	return ratio(c.LowIncorrect, c.LowCorrect+c.LowIncorrect)
}

// LowFrac returns the fraction of predictions flagged low confidence.
func (c Confusion) LowFrac() float64 {
	return ratio(c.LowCorrect+c.LowIncorrect, c.Total())
}

// String renders the quadrant and derived metrics.
func (c Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "           correct  incorrect\n")
	fmt.Fprintf(&b, "high  %12d %10d\n", c.HighCorrect, c.HighIncorrect)
	fmt.Fprintf(&b, "low   %12d %10d\n", c.LowCorrect, c.LowIncorrect)
	fmt.Fprintf(&b, "SENS %.4f  SPEC %.4f  PVP %.4f  PVN %.4f  low %.4f",
		c.Sens(), c.Spec(), c.PVP(), c.PVN(), c.LowFrac())
	return b.String()
}
