package analysis

import (
	"fmt"
	"io"
	"math"
	"slices"
	"strings"
)

// Point is one bucket on a cumulative-misprediction curve. Points are
// ordered worst bucket first, so any prefix of the curve defines a
// low-confidence set: the first CumEventsPct percent of dynamic branches
// capture CumMissesPct percent of all mispredictions.
type Point struct {
	Key          Key     // the bucket
	Rate         float64 // bucket misprediction rate
	EventsPct    float64 // bucket share of dynamic branches (0-100)
	MissesPct    float64 // bucket share of mispredictions (0-100)
	CumEventsPct float64 // cumulative branch share including this bucket
	CumMissesPct float64 // cumulative misprediction share
}

// Curve is a sorted cumulative-misprediction curve: the paper's standard
// presentation of confidence-mechanism quality.
type Curve []Point

// BuildCurve sorts the composite's buckets by misprediction rate (highest
// first, ties broken by bucket identity for determinism) and accumulates
// the cumulative percentages. Buckets with zero weighted events are
// dropped.
func BuildCurve(ws WeightedStats) Curve {
	// Work on a flat (key, tally, rate) view: comparator map lookups on the
	// 128-bit Key are the hot spot otherwise.
	type entry struct {
		key  Key
		t    WTally
		rate float64
	}
	entries := make([]entry, 0, len(ws))
	allRunZero := true
	for k, t := range ws {
		if t.Events > 0 {
			entries = append(entries, entry{key: k, t: *t, rate: t.Rate()})
			allRunZero = allRunZero && k.Run == 0
		}
	}
	if len(entries) == 0 {
		return nil
	}
	// Totals must accumulate in canonical key order to reproduce
	// ws.Totals() bit for bit (float addition is order-sensitive), so sort
	// canonically and sum. The zero-event buckets excluded above each
	// contribute exactly +0.0 to two nonnegative running sums — dropping
	// them cannot change either total's bits. Summing the entries here
	// saves a second map iteration and a probe per key.
	// smallBucketLimit bounds the counting-placement path below: canonical
	// order for a pooled composite over a small bucket space (CIR patterns,
	// counter values — up to 2^16) is recovered in O(n + maxBucket) with a
	// bucket-indexed slot array instead of a comparison sort over the
	// entries. The placement emits exactly ascending-bucket order, so the
	// float accumulation — and every downstream byte — is unchanged.
	// Both orderings below go through an index permutation instead of
	// physically reordering entries: curves over full-CIR composites reach
	// 2^16 48-byte entries, and each avoided reorder is a multi-megabyte
	// copy.
	const smallBucketLimit = 1 << 16
	maxBucket := uint64(0)
	for i := range entries {
		if b := entries[i].key.Bucket; b > maxBucket {
			maxBucket = b
		}
	}
	perm := make([]int32, 0, len(entries)) // canonical rank → entries index
	if allRunZero && maxBucket < smallBucketLimit {
		slots := make([]int32, maxBucket+1) // entry index + 1; 0 = absent
		for i := range entries {
			slots[entries[i].key.Bucket] = int32(i) + 1
		}
		for _, s := range slots {
			if s != 0 {
				perm = append(perm, s-1)
			}
		}
	} else if allRunZero {
		// Pooled composite: Run is uniformly zero, order by bucket alone.
		for i := range entries {
			perm = append(perm, int32(i))
		}
		slices.SortFunc(perm, func(a, b int32) int {
			if entries[a].key.Bucket != entries[b].key.Bucket {
				if entries[a].key.Bucket < entries[b].key.Bucket {
					return -1
				}
				return 1
			}
			return 0
		})
	} else {
		for i := range entries {
			perm = append(perm, int32(i))
		}
		slices.SortFunc(perm, func(a, b int32) int {
			ka, kb := entries[a].key, entries[b].key
			if ka.Run != kb.Run {
				if ka.Run < kb.Run {
					return -1
				}
				return 1
			}
			if ka.Bucket != kb.Bucket {
				if ka.Bucket < kb.Bucket {
					return -1
				}
				return 1
			}
			return 0
		})
	}
	var totalE, totalM float64
	for _, p := range perm {
		totalE += entries[p].t.Events
		totalM += entries[p].t.Misses
	}
	if totalE == 0 {
		return nil
	}
	// Now order worst bucket first. (rate, Run, Bucket) is a unique total
	// order; perm is ascending (Run, Bucket), so the tie-break collapses to
	// ascending canonical rank. Sorting 16-byte (rate-bits, rank) keys
	// compares integers instead of floats: rates are nonnegative (and never
	// NaN — zero-event buckets were dropped), where IEEE 754 order
	// coincides with unsigned order on the bit patterns.
	type rateKey struct {
		bits uint64
		pos  int32 // canonical rank, i.e. index into perm
	}
	keys := make([]rateKey, len(perm))
	for r, p := range perm {
		keys[r] = rateKey{bits: math.Float64bits(entries[p].rate), pos: int32(r)}
	}
	slices.SortFunc(keys, func(a, b rateKey) int {
		if a.bits != b.bits {
			if a.bits > b.bits {
				return -1
			}
			return 1
		}
		if a.pos != b.pos {
			if a.pos < b.pos {
				return -1
			}
			return 1
		}
		return 0
	})
	curve := make(Curve, len(keys))
	var cumE, cumM float64
	for i, rk := range keys {
		e := &entries[perm[rk.pos]]
		k, t := e.key, e.t
		cumE += t.Events
		cumM += t.Misses
		missesPct := 0.0
		if totalM > 0 {
			missesPct = 100 * t.Misses / totalM
		}
		cumMissesPct := 0.0
		if totalM > 0 {
			cumMissesPct = 100 * cumM / totalM
		}
		curve[i] = Point{
			Key:          k,
			Rate:         t.Rate(),
			EventsPct:    100 * t.Events / totalE,
			MissesPct:    missesPct,
			CumEventsPct: 100 * cumE / totalE,
			CumMissesPct: cumMissesPct,
		}
	}
	return curve
}

// BuildCurveOrdered accumulates the composite along a caller-supplied
// bucket order instead of sorting by measured rate. This is how a
// *realistic* (non-optimistic) method is evaluated: the order comes from a
// training run, the statistics from a disjoint evaluation run, so the
// curve shows what a deployed profile actually buys (§2 notes the paper's
// own static curve is optimistic for exactly this reason). Keys absent
// from the composite are skipped; composite keys absent from the order are
// appended afterwards in canonical order (an honest deployment must still
// classify branches the profile never saw — they default to the high
// -confidence tail here).
func BuildCurveOrdered(ws WeightedStats, order []Key) Curve {
	totalE, totalM := ws.Totals()
	if totalE == 0 {
		return nil
	}
	seen := make(map[Key]bool, len(order))
	keys := make([]Key, 0, len(ws))
	for _, k := range order {
		if t := ws[k]; t != nil && t.Events > 0 && !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	for _, k := range ws.sortedKeys() {
		if !seen[k] && ws[k].Events > 0 {
			keys = append(keys, k)
		}
	}
	curve := make(Curve, len(keys))
	var cumE, cumM float64
	for i, k := range keys {
		t := ws[k]
		cumE += t.Events
		cumM += t.Misses
		missesPct, cumMissesPct := 0.0, 0.0
		if totalM > 0 {
			missesPct = 100 * t.Misses / totalM
			cumMissesPct = 100 * cumM / totalM
		}
		curve[i] = Point{
			Key:          k,
			Rate:         t.Rate(),
			EventsPct:    100 * t.Events / totalE,
			MissesPct:    missesPct,
			CumEventsPct: 100 * cumE / totalE,
			CumMissesPct: cumMissesPct,
		}
	}
	return curve
}

// MispredsAt returns the percentage of mispredictions captured by a
// low-confidence set containing pctBranches percent of dynamic branches,
// interpolating linearly between curve points (the paper quotes values
// "at 20 percent of dynamic branches" this way).
func (c Curve) MispredsAt(pctBranches float64) float64 {
	if len(c) == 0 {
		return 0
	}
	if pctBranches <= 0 {
		return 0
	}
	prevX, prevY := 0.0, 0.0
	for _, p := range c {
		if p.CumEventsPct >= pctBranches {
			dx := p.CumEventsPct - prevX
			if dx == 0 {
				return p.CumMissesPct
			}
			f := (pctBranches - prevX) / dx
			return prevY + f*(p.CumMissesPct-prevY)
		}
		prevX, prevY = p.CumEventsPct, p.CumMissesPct
	}
	return 100
}

// BranchesFor returns the smallest cumulative branch percentage whose
// low-confidence set captures at least pctMisses percent of
// mispredictions — the inverse query of MispredsAt.
func (c Curve) BranchesFor(pctMisses float64) float64 {
	prevX, prevY := 0.0, 0.0
	for _, p := range c {
		if p.CumMissesPct >= pctMisses {
			dy := p.CumMissesPct - prevY
			if dy == 0 {
				return p.CumEventsPct
			}
			f := (pctMisses - prevY) / dy
			return prevX + f*(p.CumEventsPct-prevX)
		}
		prevX, prevY = p.CumEventsPct, p.CumMissesPct
	}
	return 100
}

// Keys returns the curve's bucket keys in curve order (worst first) —
// the ranking a training run hands to BuildCurveOrdered for out-of-sample
// evaluation.
func (c Curve) Keys() []Key {
	keys := make([]Key, len(c))
	for i, p := range c {
		keys[i] = p.Key
	}
	return keys
}

// LowSet returns the bucket identities of the low-confidence prefix
// containing at most pctBranches percent of dynamic branches. For pooled
// composites the keys' Run components are all zero and the buckets can
// seed a core.SetReducer, yielding the ideal reduction function tuned on
// this data (§4's idealised method).
func (c Curve) LowSet(pctBranches float64) []uint64 {
	var out []uint64
	for _, p := range c {
		if p.CumEventsPct > pctBranches {
			break
		}
		out = append(out, p.Key.Bucket)
	}
	return out
}

// Thin returns a subsampled curve keeping only points that advance either
// axis by at least minDelta percentage points (plus the final point),
// mirroring the paper's plotting of Figs. 5-7 ("we only plot those points
// that differ from a previous point by 2.5 percent").
func (c Curve) Thin(minDelta float64) Curve {
	if len(c) == 0 {
		return nil
	}
	out := Curve{}
	lastX, lastY := 0.0, 0.0
	for i, p := range c {
		if i == len(c)-1 || p.CumEventsPct-lastX >= minDelta || p.CumMissesPct-lastY >= minDelta {
			out = append(out, p)
			lastX, lastY = p.CumEventsPct, p.CumMissesPct
		}
	}
	return out
}

// WriteDat writes the curve as two-column data (cumulative %branches,
// cumulative %mispredictions) suitable for gnuplot, one point per line.
func (c Curve) WriteDat(w io.Writer) error {
	for _, p := range c {
		if _, err := fmt.Fprintf(w, "%.4f %.4f\n", p.CumEventsPct, p.CumMissesPct); err != nil {
			return err
		}
	}
	return nil
}

// String renders a compact summary with the paper's reference X values.
func (c Curve) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d points;", len(c))
	for _, x := range []float64{5, 10, 20, 40} {
		fmt.Fprintf(&b, " @%g%%→%.1f%%", x, c.MispredsAt(x))
	}
	return b.String()
}
