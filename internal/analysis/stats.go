// Package analysis turns raw per-bucket confidence statistics into the
// paper's artefacts: sorted cumulative-misprediction curves (Figures 2 and
// 5-11), threshold tables (Table 1), and low-confidence bucket sets for
// deriving ideal reduction functions.
//
// The method, following Sections 2 and 4: collect (events, mispredictions)
// per bucket — a static branch PC, a CIR pattern, or a counter value —
// weight benchmarks so each contributes the same number of dynamic
// branches, sort buckets by misprediction rate (highest first), and plot
// cumulative mispredictions against cumulative dynamic branches.
package analysis

import (
	"fmt"
	"sort"
)

// Tally counts dynamic branches and mispredictions for one bucket.
type Tally struct {
	Events uint64
	Misses uint64
}

// Rate returns the bucket's misprediction rate.
func (t Tally) Rate() float64 {
	if t.Events == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Events)
}

// BucketStats accumulates per-bucket tallies over one simulation run.
type BucketStats map[uint64]*Tally

// Add records one dynamic branch landing in bucket, with its prediction
// correctness.
func (bs BucketStats) Add(bucket uint64, incorrect bool) {
	t := bs[bucket]
	if t == nil {
		t = &Tally{}
		bs[bucket] = t
	}
	t.Events++
	if incorrect {
		t.Misses++
	}
}

// Totals returns the run's total events and mispredictions.
func (bs BucketStats) Totals() (events, misses uint64) {
	for _, t := range bs {
		events += t.Events
		misses += t.Misses
	}
	return events, misses
}

// MissRate returns the run's overall misprediction rate.
func (bs BucketStats) MissRate() float64 {
	e, m := bs.Totals()
	if e == 0 {
		return 0
	}
	return float64(m) / float64(e)
}

// Key identifies a bucket within a composite: Run disambiguates buckets
// from different benchmarks when their identities must stay distinct (the
// static method, where PC spaces overlap across benchmarks); pooled
// composites use Run == 0 for every bucket.
type Key struct {
	Run    int
	Bucket uint64
}

// WTally is a weighted tally: fractional events and misses after
// equal-weight benchmark compositing.
type WTally struct {
	Events float64
	Misses float64
}

// Rate returns the weighted misprediction rate.
func (t WTally) Rate() float64 {
	if t.Events == 0 {
		return 0
	}
	return t.Misses / t.Events
}

// WeightedStats is a composite of per-benchmark bucket statistics.
type WeightedStats map[Key]*WTally

// compositeWeight returns the per-event weight that makes run bs contribute
// exactly 1.0 total event mass.
func compositeWeight(bs BucketStats) float64 {
	events, _ := bs.Totals()
	if events == 0 {
		return 0
	}
	return 1 / float64(events)
}

// CompositePooled combines runs with equal dynamic-branch weight, pooling
// identical buckets across runs — the paper's treatment of dynamic
// mechanisms, where a CIR pattern means the same thing in every benchmark
// (§1.2, §4).
func CompositePooled(runs []BucketStats) WeightedStats {
	ws := make(WeightedStats)
	for _, bs := range runs {
		w := compositeWeight(bs)
		for b, t := range bs {
			k := Key{Bucket: b}
			wt := ws[k]
			if wt == nil {
				wt = &WTally{}
				ws[k] = wt
			}
			wt.Events += w * float64(t.Events)
			wt.Misses += w * float64(t.Misses)
		}
	}
	return ws
}

// CompositeDistinct combines runs with equal weight while keeping each
// run's buckets distinct — required for the static method, where bucket
// identity is a branch address private to one benchmark (§2).
func CompositeDistinct(runs []BucketStats) WeightedStats {
	ws := make(WeightedStats, len(runs)*16)
	for i, bs := range runs {
		w := compositeWeight(bs)
		for b, t := range bs {
			ws[Key{Run: i, Bucket: b}] = &WTally{
				Events: w * float64(t.Events),
				Misses: w * float64(t.Misses),
			}
		}
	}
	return ws
}

// Single wraps one run as a WeightedStats without reweighting, for
// per-benchmark curves (Figure 9).
func Single(bs BucketStats) WeightedStats {
	ws := make(WeightedStats, len(bs))
	for b, t := range bs {
		ws[Key{Bucket: b}] = &WTally{Events: float64(t.Events), Misses: float64(t.Misses)}
	}
	return ws
}

// sortedKeys returns the composite's keys in canonical order. Floating
// point addition is not associative, so every float accumulation over a
// WeightedStats must run in this order to keep experiment outputs
// byte-reproducible across runs (Go randomises map iteration).
func (ws WeightedStats) sortedKeys() []Key {
	keys := make([]Key, 0, len(ws))
	for k := range ws {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Run != keys[j].Run {
			return keys[i].Run < keys[j].Run
		}
		return keys[i].Bucket < keys[j].Bucket
	})
	return keys
}

// MergeBuckets rewrites bucket identities through fn, merging tallies that
// map to the same value. Because a reduction function is a pure function
// of the bucket, this derives a reduced mechanism's statistics from the
// full-CIR run — e.g. fn = popcount turns per-pattern statistics into
// ones-count statistics (§5.1) without re-simulating.
func (ws WeightedStats) MergeBuckets(fn func(uint64) uint64) WeightedStats {
	out := make(WeightedStats)
	for _, k := range ws.sortedKeys() {
		t := ws[k]
		nk := Key{Run: k.Run, Bucket: fn(k.Bucket)}
		wt := out[nk]
		if wt == nil {
			wt = &WTally{}
			out[nk] = wt
		}
		wt.Events += t.Events
		wt.Misses += t.Misses
	}
	return out
}

// Totals returns the composite's total weighted events and misses.
func (ws WeightedStats) Totals() (events, misses float64) {
	for _, k := range ws.sortedKeys() {
		events += ws[k].Events
		misses += ws[k].Misses
	}
	return events, misses
}

// MissRate returns the composite's overall misprediction rate.
func (ws WeightedStats) MissRate() float64 {
	e, m := ws.Totals()
	if e == 0 {
		return 0
	}
	return m / e
}

// String summarises the composite.
func (ws WeightedStats) String() string {
	e, m := ws.Totals()
	return fmt.Sprintf("%d buckets, %.3f events, miss rate %.4f", len(ws), e, m/e)
}
