// Package analysis turns raw per-bucket confidence statistics into the
// paper's artefacts: sorted cumulative-misprediction curves (Figures 2 and
// 5-11), threshold tables (Table 1), and low-confidence bucket sets for
// deriving ideal reduction functions.
//
// The method, following Sections 2 and 4: collect (events, mispredictions)
// per bucket — a static branch PC, a CIR pattern, or a counter value —
// weight benchmarks so each contributes the same number of dynamic
// branches, sort buckets by misprediction rate (highest first), and plot
// cumulative mispredictions against cumulative dynamic branches.
package analysis

import (
	"fmt"
	"slices"
	"sync"
)

// Tally counts dynamic branches and mispredictions for one bucket.
type Tally struct {
	Events uint64
	Misses uint64
}

// Rate returns the bucket's misprediction rate.
func (t Tally) Rate() float64 {
	if t.Events == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Events)
}

// BucketStats accumulates per-bucket tallies over one simulation run.
type BucketStats map[uint64]*Tally

// Add records one dynamic branch landing in bucket, with its prediction
// correctness.
func (bs BucketStats) Add(bucket uint64, incorrect bool) {
	t := bs[bucket]
	if t == nil {
		t = &Tally{}
		bs[bucket] = t
	}
	t.Events++
	if incorrect {
		t.Misses++
	}
}

// Clone returns a deep copy of the statistics, backed by one contiguous
// tally block. The tally engine (internal/sim) hands each variant sharing
// a bucket stream its own copy of the base histogram, so the per-variant
// cost is one O(buckets) copy rather than an O(branches) replay.
func (bs BucketStats) Clone() BucketStats {
	out := make(BucketStats, len(bs))
	block := make([]Tally, 0, len(bs))
	for b, t := range bs {
		block = append(block, *t)
		out[b] = &block[len(block)-1]
	}
	return out
}

// Totals returns the run's total events and mispredictions.
func (bs BucketStats) Totals() (events, misses uint64) {
	for _, t := range bs {
		events += t.Events
		misses += t.Misses
	}
	return events, misses
}

// MissRate returns the run's overall misprediction rate.
func (bs BucketStats) MissRate() float64 {
	e, m := bs.Totals()
	if e == 0 {
		return 0
	}
	return float64(m) / float64(e)
}

// Key identifies a bucket within a composite: Run disambiguates buckets
// from different benchmarks when their identities must stay distinct (the
// static method, where PC spaces overlap across benchmarks); pooled
// composites use Run == 0 for every bucket.
type Key struct {
	Run    int
	Bucket uint64
}

// WTally is a weighted tally: fractional events and misses after
// equal-weight benchmark compositing.
type WTally struct {
	Events float64
	Misses float64
}

// Rate returns the weighted misprediction rate.
func (t WTally) Rate() float64 {
	if t.Events == 0 {
		return 0
	}
	return t.Misses / t.Events
}

// WeightedStats is a composite of per-benchmark bucket statistics.
type WeightedStats map[Key]*WTally

// compositeWeight returns the per-event weight that makes run bs contribute
// exactly 1.0 total event mass.
func compositeWeight(bs BucketStats) float64 {
	events, _ := bs.Totals()
	if events == 0 {
		return 0
	}
	return 1 / float64(events)
}

// wtallyArena hands out WTally slots from chunked blocks, replacing one
// heap allocation per bucket with one per chunk. Compositors over wide-CIR
// runs create tens of thousands of buckets per call, and the per-object
// allocations dominated their profile.
type wtallyArena []WTally

func (a *wtallyArena) get() *WTally {
	if len(*a) == 0 {
		*a = make([]WTally, 1024)
	}
	wt := &(*a)[0]
	*a = (*a)[1:]
	return wt
}

// pooledDenseLimit bounds CompositePooled's dense fast path: bucket spaces
// up to 16 bits (counter values, ones counts, CIR patterns) accumulate into
// a flat array indexed by bucket instead of probing a 128-bit-keyed map per
// (run, bucket). Contributions to each bucket still arrive in run order, so
// the float accumulation — and hence every downstream byte — is unchanged.
const pooledDenseLimit = 1 << 16

// compositeDensePool recycles CompositePooled's 1 MiB accumulation arrays.
// Invariant: every pooled array is fully zero — New allocates zeroed, and
// the drain loop re-zeroes exactly the nonzero slots before Put, so Get
// never pays a fresh alloc-plus-memclr (which showed up as a measurable
// share of figure-mix CPU).
var compositeDensePool = sync.Pool{
	New: func() any { return make([]WTally, pooledDenseLimit) },
}

// CompositePooled combines runs with equal dynamic-branch weight, pooling
// identical buckets across runs — the paper's treatment of dynamic
// mechanisms, where a CIR pattern means the same thing in every benchmark
// (§1.2, §4).
func CompositePooled(runs []BucketStats) WeightedStats {
	size := 0
	for _, bs := range runs {
		if len(bs) > size {
			size = len(bs)
		}
	}
	ws := make(WeightedStats, size)
	var arena wtallyArena
	// Small buckets accumulate into a pooled dense array in one pass;
	// maxSmall tracks the occupied prefix.
	dense := compositeDensePool.Get().([]WTally)
	maxSmall := -1
	for _, bs := range runs {
		w := compositeWeight(bs)
		for b, t := range bs {
			if b < pooledDenseLimit {
				dense[b].Events += w * float64(t.Events)
				dense[b].Misses += w * float64(t.Misses)
				if int(b) > maxSmall {
					maxSmall = int(b)
				}
				continue
			}
			k := Key{Bucket: b}
			wt := ws[k]
			if wt == nil {
				wt = arena.get()
				ws[k] = wt
			}
			wt.Events += w * float64(t.Events)
			wt.Misses += w * float64(t.Misses)
		}
	}
	// Drain the dense prefix into a right-sized contiguous block (the
	// returned composite must not alias the pooled array), restoring the
	// all-zero pool invariant as each occupied slot is copied out. The
	// block preserves ascending-bucket insertion order, so downstream
	// float accumulation is unchanged.
	occupied := 0
	for b := 0; b <= maxSmall; b++ {
		if dense[b].Events != 0 || dense[b].Misses != 0 {
			occupied++
		}
	}
	block := make([]WTally, 0, occupied)
	for b := 0; b <= maxSmall; b++ {
		if dense[b].Events != 0 || dense[b].Misses != 0 {
			block = append(block, dense[b])
			ws[Key{Bucket: uint64(b)}] = &block[len(block)-1]
			dense[b] = WTally{}
		}
	}
	compositeDensePool.Put(dense)
	return ws
}

// CompositeDistinct combines runs with equal weight while keeping each
// run's buckets distinct — required for the static method, where bucket
// identity is a branch address private to one benchmark (§2).
func CompositeDistinct(runs []BucketStats) WeightedStats {
	total := 0
	for _, bs := range runs {
		total += len(bs)
	}
	ws := make(WeightedStats, total)
	block := make([]WTally, 0, total)
	for i, bs := range runs {
		w := compositeWeight(bs)
		for b, t := range bs {
			block = append(block, WTally{
				Events: w * float64(t.Events),
				Misses: w * float64(t.Misses),
			})
			ws[Key{Run: i, Bucket: b}] = &block[len(block)-1]
		}
	}
	return ws
}

// Single wraps one run as a WeightedStats without reweighting, for
// per-benchmark curves (Figure 9).
func Single(bs BucketStats) WeightedStats {
	ws := make(WeightedStats, len(bs))
	block := make([]WTally, 0, len(bs))
	for b, t := range bs {
		block = append(block, WTally{Events: float64(t.Events), Misses: float64(t.Misses)})
		ws[Key{Bucket: b}] = &block[len(block)-1]
	}
	return ws
}

// sortedKeys returns the composite's keys in canonical order. Floating
// point addition is not associative, so every float accumulation over a
// WeightedStats must run in this order to keep experiment outputs
// byte-reproducible across runs (Go randomises map iteration).
func (ws WeightedStats) sortedKeys() []Key {
	keys := make([]Key, 0, len(ws))
	allRunZero := true
	for k := range ws {
		keys = append(keys, k)
		allRunZero = allRunZero && k.Run == 0
	}
	// (Run, Bucket) is unique per key, so the canonical total order is the
	// same whatever sort implements it. Pooled composites (every Run zero —
	// the common and largest case, up to 2^16 CIR patterns) order by bucket
	// alone, where the specialized uint64 sort beats the comparator one.
	if allRunZero {
		buckets := make([]uint64, len(keys))
		for i, k := range keys {
			buckets[i] = k.Bucket
		}
		slices.Sort(buckets)
		for i, b := range buckets {
			keys[i] = Key{Bucket: b}
		}
		return keys
	}
	slices.SortFunc(keys, func(a, b Key) int {
		if a.Run != b.Run {
			if a.Run < b.Run {
				return -1
			}
			return 1
		}
		if a.Bucket != b.Bucket {
			if a.Bucket < b.Bucket {
				return -1
			}
			return 1
		}
		return 0
	})
	return keys
}

// MergeBuckets rewrites bucket identities through fn, merging tallies that
// map to the same value. Because a reduction function is a pure function
// of the bucket, this derives a reduced mechanism's statistics from the
// full-CIR run — e.g. fn = popcount turns per-pattern statistics into
// ones-count statistics (§5.1) without re-simulating.
func (ws WeightedStats) MergeBuckets(fn func(uint64) uint64) WeightedStats {
	out := make(WeightedStats)
	var arena wtallyArena
	for _, k := range ws.sortedKeys() {
		t := ws[k]
		nk := Key{Run: k.Run, Bucket: fn(k.Bucket)}
		wt := out[nk]
		if wt == nil {
			wt = arena.get()
			out[nk] = wt
		}
		wt.Events += t.Events
		wt.Misses += t.Misses
	}
	return out
}

// Totals returns the composite's total weighted events and misses.
func (ws WeightedStats) Totals() (events, misses float64) {
	for _, k := range ws.sortedKeys() {
		events += ws[k].Events
		misses += ws[k].Misses
	}
	return events, misses
}

// MissRate returns the composite's overall misprediction rate.
func (ws WeightedStats) MissRate() float64 {
	e, m := ws.Totals()
	if e == 0 {
		return 0
	}
	return m / e
}

// String summarises the composite.
func (ws WeightedStats) String() string {
	e, m := ws.Totals()
	return fmt.Sprintf("%d buckets, %.3f events, miss rate %.4f", len(ws), e, m/e)
}
