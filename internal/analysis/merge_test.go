package analysis

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestMergeBucketsByPopcount(t *testing.T) {
	bs := make(BucketStats)
	// Patterns 0b0011 and 0b0101 both have two set bits; 0b0001 has one.
	for i := 0; i < 10; i++ {
		bs.Add(0b0011, i < 4)
		bs.Add(0b0101, i < 2)
		bs.Add(0b0001, i < 1)
	}
	ws := CompositePooled([]BucketStats{bs}).MergeBuckets(func(b uint64) uint64 {
		return uint64(bits.OnesCount64(b))
	})
	if len(ws) != 2 {
		t.Fatalf("%d merged buckets, want 2", len(ws))
	}
	two := ws[Key{Bucket: 2}]
	if two == nil {
		t.Fatal("popcount-2 bucket missing")
	}
	// 20 events of 30 total, 6 misses of 7 total, weight 1/30 each.
	if got := two.Rate(); got < 0.299 || got > 0.301 {
		t.Fatalf("merged rate %v, want 0.3", got)
	}
}

// Property: merging preserves total event and miss mass.
func TestMergeBucketsPreservesMass(t *testing.T) {
	check := func(events []uint8, missBits []uint8, mod uint8) bool {
		n := len(events)
		if len(missBits) < n {
			n = len(missBits)
		}
		if n == 0 {
			return true
		}
		m := uint64(mod%7) + 1
		bs := make(BucketStats)
		for i := 0; i < n; i++ {
			e := uint64(events[i]%20) + 1
			miss := uint64(missBits[i]) % (e + 1)
			for j := uint64(0); j < e; j++ {
				bs.Add(uint64(i), j < miss)
			}
		}
		ws := Single(bs)
		e0, m0 := ws.Totals()
		merged := ws.MergeBuckets(func(b uint64) uint64 { return b % m })
		e1, m1 := merged.Totals()
		return abs(e0-e1) < 1e-9 && abs(m0-m1) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Property: merging through the identity function is a no-op.
func TestMergeBucketsIdentity(t *testing.T) {
	bs := make(BucketStats)
	for i := uint64(0); i < 20; i++ {
		bs.Add(i, i%3 == 0)
		bs.Add(i, false)
	}
	ws := Single(bs)
	merged := ws.MergeBuckets(func(b uint64) uint64 { return b })
	if len(merged) != len(ws) {
		t.Fatalf("identity merge changed bucket count: %d vs %d", len(merged), len(ws))
	}
	for k, v := range ws {
		mv := merged[k]
		if mv == nil || abs(mv.Events-v.Events) > 1e-12 || abs(mv.Misses-v.Misses) > 1e-12 {
			t.Fatalf("bucket %v changed", k)
		}
	}
}

func TestCompositePooledEmpty(t *testing.T) {
	if ws := CompositePooled(nil); len(ws) != 0 {
		t.Fatal("empty composite nonempty")
	}
	// A run with zero events contributes nothing.
	ws := CompositePooled([]BucketStats{{}, mkStats([2]uint64{4, 1})})
	e, _ := ws.Totals()
	if abs(e-1) > 1e-9 {
		t.Fatalf("event mass %v, want 1", e)
	}
}

func TestBuildCurveDeterministicTieBreak(t *testing.T) {
	// Equal-rate buckets must order deterministically (by bucket id).
	bs := make(BucketStats)
	for _, b := range []uint64{5, 3, 9, 1} {
		bs.Add(b, true)
		bs.Add(b, false)
	}
	c1 := BuildCurve(Single(bs))
	c2 := BuildCurve(Single(bs))
	for i := range c1 {
		if c1[i].Key != c2[i].Key {
			t.Fatalf("nondeterministic ordering at %d", i)
		}
	}
	for i := 1; i < len(c1); i++ {
		if c1[i].Key.Bucket < c1[i-1].Key.Bucket {
			t.Fatalf("tie-break not by bucket id: %v before %v", c1[i-1].Key, c1[i].Key)
		}
	}
}
