package predictor

import (
	"strings"
	"testing"

	"branchconf/internal/trace"
)

func TestPerceptronLearnsBias(t *testing.T) {
	p := NewPerceptron(8, 4, 4)
	tr := repeat(0x1000, []bool{true}, 400)
	if correct := run(p, tr); correct < 390 {
		t.Fatalf("perceptron on constant branch: %d/400 correct", correct)
	}
}

func TestPerceptronLearnsAlternation(t *testing.T) {
	p := NewPerceptron(8, 4, 4)
	tr := repeat(0x2000, []bool{true, false}, 300)
	if correct := run(p, tr); correct < 520 {
		t.Fatalf("perceptron on alternation: %d/600 correct", correct)
	}
}

func TestPerceptronConfidenceTracksMargin(t *testing.T) {
	p := NewPerceptron(8, 4, 4)
	r := trace.Record{PC: 0x3000, Target: 0x3040, Taken: true}
	if c := p.Confidence(r.PC); c != 0 {
		t.Fatalf("untrained confidence = %d, want 0", c)
	}
	// Train far past theta: every contributing weight rails at +127, so
	// the margin saturates the confidence scale.
	for i := 0; i < 400; i++ {
		p.Predict(r)
		p.Update(r)
	}
	if c := p.Confidence(r.PC); c != 3 {
		t.Fatalf("saturated confidence = %d, want 3", c)
	}
	if p.AnnotationState(r) != p.Confidence(r.PC) {
		t.Fatal("AnnotationState disagrees with Confidence")
	}
	if p.AnnotationBits() != 2 {
		t.Fatalf("AnnotationBits = %d, want 2", p.AnnotationBits())
	}
}

func TestPerceptronResetClearsState(t *testing.T) {
	p := NewPerceptron(8, 4, 4)
	run(p, ckptTrace(4000))
	trained := string(p.MarshalState())
	p.Reset()
	fresh := NewPerceptron(8, 4, 4)
	if got := string(p.MarshalState()); got != string(fresh.MarshalState()) {
		t.Fatal("Reset did not restore the initial state")
	} else if got == trained {
		t.Fatal("training left no trace in the state (test is vacuous)")
	}
}

// TestPerceptronCheckpointRoundTrip covers the satellite contract at odd
// history widths, including totals that straddle a word boundary.
func TestPerceptronCheckpointRoundTrip(t *testing.T) {
	geoms := []struct{ table, tables, seg uint }{
		{10, 8, 8},  // registry geometry, h=64
		{9, 3, 7},   // h=21, odd everywhere
		{8, 5, 13},  // h=65: two history words, one live top bit
		{7, 11, 11}, // h=121, odd top
	}
	tr := ckptTrace(30000)
	for _, g := range geoms {
		for _, cut := range []int{0, 1, 12345, len(tr)} {
			live := NewPerceptron(g.table, g.tables, g.seg)
			run(live, tr[:cut])
			blob := live.MarshalState()

			revived := NewPerceptron(g.table, g.tables, g.seg)
			run(revived, tr[:100]) // stale training the restore must erase
			if err := revived.RestoreState(blob); err != nil {
				t.Fatalf("t%d/n%d/s%d cut %d: restore: %v", g.table, g.tables, g.seg, cut, err)
			}
			if got := revived.MarshalState(); string(got) != string(blob) {
				t.Fatalf("t%d/n%d/s%d cut %d: restored state re-serializes differently", g.table, g.tables, g.seg, cut)
			}
			for i, r := range tr[cut:] {
				if live.Predict(r) != revived.Predict(r) || live.Confidence(r.PC) != revived.Confidence(r.PC) {
					t.Fatalf("t%d/n%d/s%d cut %d: branch %d diverged", g.table, g.tables, g.seg, cut, cut+i)
				}
				live.Update(r)
				revived.Update(r)
			}
		}
	}
}

// TestPerceptronCheckpointRejects: structural mismatches fail restore
// before any mutation.
func TestPerceptronCheckpointRejects(t *testing.T) {
	p := NewPerceptron(8, 5, 13) // h=65: exercises the top-bit window check
	run(p, ckptTrace(5000))
	blob := p.MarshalState()
	before := string(p.MarshalState())

	reject := func(name string, data []byte, want string) {
		t.Helper()
		err := p.RestoreState(data)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("%s: err = %v, want substring %q", name, err, want)
		}
		if string(p.MarshalState()) != before {
			t.Fatalf("%s: failed restore mutated the receiver", name)
		}
	}
	mut := func(i int, v byte) []byte {
		d := append([]byte(nil), blob...)
		d[i] = v
		return d
	}
	reject("version drift", mut(0, 99), "version 99")
	reject("geometry drift", mut(1, 12), "geometry")
	reject("table count drift", mut(2, 2), "geometry")
	reject("segment drift", mut(3, 9), "geometry")
	reject("truncated", blob[:3], "truncated")
	reject("short body", blob[:len(blob)-1], "bytes")
	reject("trailing bytes", append(append([]byte(nil), blob...), 0), "bytes")
	// Second history word may only use its low bit (h=65).
	reject("history window", mut(4+8+1, 0x80), "window")
	if err := p.RestoreState(blob); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
}

func TestPerceptronGeometryPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"table bits zero": func() { NewPerceptron(0, 4, 4) },
		"tables zero":     func() { NewPerceptron(8, 0, 4) },
		"tables over 64":  func() { NewPerceptron(8, 65, 4) },
		"segment zero":    func() { NewPerceptron(8, 4, 0) },
		"segment over 64": func() { NewPerceptron(8, 4, 65) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
