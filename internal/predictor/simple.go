package predictor

import (
	"io"

	"branchconf/internal/trace"
)

func init() {
	Register("always-taken", func() Predictor { return AlwaysTaken{} })
	Register("never-taken", func() Predictor { return NeverTaken{} })
	Register("btfn", func() Predictor { return BTFN{} })
}

// AlwaysTaken statically predicts every branch taken.
type AlwaysTaken struct{}

// Predict always returns true.
func (AlwaysTaken) Predict(trace.Record) bool { return true }

// Update is a no-op: the predictor is stateless.
func (AlwaysTaken) Update(trace.Record) {}

// Reset is a no-op.
func (AlwaysTaken) Reset() {}

// Name implements Predictor.
func (AlwaysTaken) Name() string { return "always-taken" }

// NeverTaken statically predicts every branch not taken.
type NeverTaken struct{}

// Predict always returns false.
func (NeverTaken) Predict(trace.Record) bool { return false }

// Update is a no-op.
func (NeverTaken) Update(trace.Record) {}

// Reset is a no-op.
func (NeverTaken) Reset() {}

// Name implements Predictor.
func (NeverTaken) Name() string { return "never-taken" }

// BTFN predicts backward branches taken and forward branches not taken —
// the classic static heuristic exploiting that backward branches close
// loops.
type BTFN struct{}

// Predict returns true exactly for backward branches.
func (BTFN) Predict(r trace.Record) bool { return r.Backward() }

// Update is a no-op.
func (BTFN) Update(trace.Record) {}

// Reset is a no-op.
func (BTFN) Reset() {}

// Name implements Predictor.
func (BTFN) Name() string { return "btfn" }

// Profile is a profile-based static predictor: a training pass records each
// static branch's majority direction, and prediction replays it. Branches
// never seen during training fall back to the BTFN heuristic. It models the
// compiler-hint predictors (e.g. PowerPC 601 reverse bits) discussed in the
// paper's related work.
type Profile struct {
	bias     map[uint64]int64 // taken count minus not-taken count per PC
	training bool
}

// NewProfile returns a Profile in training mode: Update accumulates
// direction counts. Call Freeze to switch to prediction mode.
func NewProfile() *Profile {
	return &Profile{bias: make(map[uint64]int64), training: true}
}

// Freeze ends the training phase; subsequent Updates no longer change the
// profile, matching a compile-time hint baked into the binary.
func (p *Profile) Freeze() { p.training = false }

// Train runs src through the profile and freezes it.
func (p *Profile) Train(src trace.Source) error {
	for {
		r, err := src.Next()
		if err == io.EOF {
			p.Freeze()
			return nil
		}
		if err != nil {
			return err
		}
		p.Update(r)
	}
}

// Predict returns the majority training direction, or the BTFN heuristic
// for unseen branches.
func (p *Profile) Predict(r trace.Record) bool {
	b, ok := p.bias[r.PC]
	if !ok || b == 0 {
		return r.Backward()
	}
	return b > 0
}

// Update accumulates direction counts while training; after Freeze it is a
// no-op.
func (p *Profile) Update(r trace.Record) {
	if !p.training {
		return
	}
	if r.Taken {
		p.bias[r.PC]++
	} else {
		p.bias[r.PC]--
	}
}

// Reset clears the profile and re-enters training mode.
func (p *Profile) Reset() {
	p.bias = make(map[uint64]int64)
	p.training = true
}

// Name implements Predictor.
func (p *Profile) Name() string { return "profile-static" }
