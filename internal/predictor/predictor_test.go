package predictor

import (
	"testing"

	"branchconf/internal/trace"
	"branchconf/internal/xrand"
)

// run feeds a trace through p with the predict-then-update contract and
// returns the number of correct predictions.
func run(p Predictor, tr trace.Trace) int {
	correct := 0
	for _, r := range tr {
		if p.Predict(r) == r.Taken {
			correct++
		}
		p.Update(r)
	}
	return correct
}

// repeat builds a trace of n iterations of the given direction pattern at a
// single branch PC.
func repeat(pc uint64, pattern []bool, n int) trace.Trace {
	tr := make(trace.Trace, 0, n*len(pattern))
	for i := 0; i < n; i++ {
		for _, taken := range pattern {
			tr = append(tr, trace.Record{PC: pc, Target: pc + 64, Taken: taken})
		}
	}
	return tr
}

func TestRegistryBuildsEverything(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("registry has only %d predictors: %v", len(names), names)
	}
	for _, n := range names {
		p, err := Build(n)
		if err != nil {
			t.Fatalf("Build(%q): %v", n, err)
		}
		// Exercise the full interface on a tiny trace.
		tr := repeat(0x1000, []bool{true, false, true}, 4)
		run(p, tr)
		p.Reset()
		if got := p.Name(); got == "" {
			t.Fatalf("predictor %q has empty Name", n)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("no-such-predictor"); err == nil {
		t.Fatal("unknown name built successfully")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("gshare-64K", func() Predictor { return AlwaysTaken{} })
}

func TestAlwaysNeverTaken(t *testing.T) {
	r := trace.Record{PC: 4, Target: 8}
	if !(AlwaysTaken{}).Predict(r) {
		t.Fatal("AlwaysTaken predicted not-taken")
	}
	if (NeverTaken{}).Predict(r) {
		t.Fatal("NeverTaken predicted taken")
	}
	if (AlwaysTaken{}).Name() != "always-taken" || (NeverTaken{}).Name() != "never-taken" {
		t.Fatal("wrong names")
	}
}

func TestBTFN(t *testing.T) {
	if !(BTFN{}).Predict(trace.Record{PC: 100, Target: 50}) {
		t.Fatal("backward branch predicted not-taken")
	}
	if (BTFN{}).Predict(trace.Record{PC: 100, Target: 200}) {
		t.Fatal("forward branch predicted taken")
	}
}

func TestProfilePredictor(t *testing.T) {
	p := NewProfile()
	tr := trace.Trace{
		{PC: 0x10, Target: 0x40, Taken: true},
		{PC: 0x10, Target: 0x40, Taken: true},
		{PC: 0x10, Target: 0x40, Taken: false},
		{PC: 0x20, Target: 0x60, Taken: false},
	}
	if err := p.Train(tr.Source()); err != nil {
		t.Fatal(err)
	}
	if !p.Predict(trace.Record{PC: 0x10}) {
		t.Fatal("majority-taken branch predicted not-taken")
	}
	if p.Predict(trace.Record{PC: 0x20}) {
		t.Fatal("majority-not-taken branch predicted taken")
	}
	// Unseen branch falls back to BTFN.
	if !p.Predict(trace.Record{PC: 0x99, Target: 0x10}) {
		t.Fatal("unseen backward branch predicted not-taken")
	}
	// Frozen profile ignores further updates.
	for i := 0; i < 10; i++ {
		p.Update(trace.Record{PC: 0x10, Taken: false})
	}
	if !p.Predict(trace.Record{PC: 0x10}) {
		t.Fatal("frozen profile changed prediction")
	}
	p.Reset()
	if p.Predict(trace.Record{PC: 0x10, Target: 0x100}) {
		t.Fatal("reset profile kept old bias (forward unseen should be not-taken)")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(10)
	tr := repeat(0x1000, []bool{true}, 100)
	correct := run(b, tr)
	// Initialised weakly-taken, so an always-taken branch is correct from
	// the first prediction.
	if correct != 100 {
		t.Fatalf("always-taken branch: %d/100 correct", correct)
	}
	b.Reset()
	tr = repeat(0x1000, []bool{false}, 100)
	correct = run(b, tr)
	// Two wrong predictions while the counter descends from weakly-taken.
	if correct < 98 {
		t.Fatalf("never-taken branch: %d/100 correct", correct)
	}
}

func TestBimodalHysteresisSurvivesGlitch(t *testing.T) {
	b := NewBimodal(10)
	// Saturate taken, inject one not-taken, next prediction must stay taken.
	for i := 0; i < 4; i++ {
		b.Update(trace.Record{PC: 0x40, Taken: true})
	}
	b.Update(trace.Record{PC: 0x40, Taken: false})
	if !b.Predict(trace.Record{PC: 0x40}) {
		t.Fatal("single glitch flipped saturated bimodal counter")
	}
}

func TestBimodalSeparatesPCs(t *testing.T) {
	b := NewBimodal(10)
	for i := 0; i < 10; i++ {
		b.Update(trace.Record{PC: 0x100, Taken: true})
		b.Update(trace.Record{PC: 0x104, Taken: false})
	}
	if !b.Predict(trace.Record{PC: 0x100}) || b.Predict(trace.Record{PC: 0x104}) {
		t.Fatal("adjacent branches aliased in bimodal table")
	}
}

func TestGshareLearnsAlternation(t *testing.T) {
	// A strict T,N,T,N pattern defeats bimodal but is perfectly separable
	// with >= 1 history bit.
	g := NewGshare(10, 4)
	tr := repeat(0x1000, []bool{true, false}, 200)
	correct := run(g, tr)
	if correct < 380 { // allow warmup losses
		t.Fatalf("gshare on alternation: %d/400 correct", correct)
	}
	b := NewBimodal(10)
	bc := run(b, tr)
	if bc > 300 {
		t.Fatalf("bimodal unexpectedly good on alternation: %d/400", bc)
	}
}

func TestGshareZeroHistoryEqualsBimodal(t *testing.T) {
	// Invariant from DESIGN.md: gshare with zero history bits is bimodal.
	g := NewGshare(8, 0)
	b := NewBimodal(8)
	rng := xrand.New(77)
	tr := make(trace.Trace, 5000)
	for i := range tr {
		pc := uint64(0x2000 + 4*rng.Intn(512))
		tr[i] = trace.Record{PC: pc, Target: pc + 32, Taken: rng.Bool(0.6)}
	}
	for _, r := range tr {
		if g.Predict(r) != b.Predict(r) {
			t.Fatalf("divergence at PC %x", r.PC)
		}
		g.Update(r)
		b.Update(r)
	}
}

func TestGshareHistoryExposed(t *testing.T) {
	g := NewGshare(10, 4)
	g.Update(trace.Record{PC: 0x10, Taken: true})
	g.Update(trace.Record{PC: 0x10, Taken: false})
	g.Update(trace.Record{PC: 0x10, Taken: true})
	if g.History() != 0b101 {
		t.Fatalf("History = %04b, want 101", g.History())
	}
}

func TestGshareResetClearsState(t *testing.T) {
	g := NewGshare(10, 8)
	tr := repeat(0x500, []bool{true, true, false}, 50)
	run(g, tr)
	g.Reset()
	if g.History() != 0 {
		t.Fatalf("history after reset = %x", g.History())
	}
	// First prediction after reset is weakly taken.
	if !g.Predict(trace.Record{PC: 0x500}) {
		t.Fatal("reset table did not predict weakly taken")
	}
}

func TestGsharePaperGeometries(t *testing.T) {
	big := Gshare64K().(*Gshare)
	if big.TableBits() != 16 || big.HistoryBits() != 16 {
		t.Fatalf("Gshare64K geometry %d/%d", big.TableBits(), big.HistoryBits())
	}
	if big.Name() != "gshare-64K" {
		t.Fatalf("name %q", big.Name())
	}
	small := Gshare4K().(*Gshare)
	if small.TableBits() != 12 || small.HistoryBits() != 12 {
		t.Fatalf("Gshare4K geometry %d/%d", small.TableBits(), small.HistoryBits())
	}
	if small.Name() != "gshare-4K" {
		t.Fatalf("name %q", small.Name())
	}
}

func TestGselectLearnsAlternation(t *testing.T) {
	g := NewGselect(10, 5, 5)
	tr := repeat(0x1000, []bool{true, false}, 200)
	if correct := run(g, tr); correct < 380 {
		t.Fatalf("gselect on alternation: %d/400 correct", correct)
	}
}

func TestGAgLearnsGlobalPattern(t *testing.T) {
	g := NewGAg(8)
	// Period-4 global pattern across two branches.
	tr := make(trace.Trace, 0, 400)
	for i := 0; i < 100; i++ {
		tr = append(tr,
			trace.Record{PC: 0x100, Taken: i%2 == 0},
			trace.Record{PC: 0x200, Taken: i%2 == 1},
		)
	}
	if correct := run(g, tr); correct < 180 {
		t.Fatalf("GAg on periodic global pattern: %d/200 correct", correct)
	}
}

func TestPAgLearnsPerBranchPattern(t *testing.T) {
	p := NewPAg(8, 8)
	// Two interleaved branches with opposite period-2 patterns: global
	// history alone confuses them less than per-address history.
	tr := make(trace.Trace, 0, 800)
	for i := 0; i < 200; i++ {
		tr = append(tr,
			trace.Record{PC: 0x100, Taken: i%2 == 0},
			trace.Record{PC: 0x200, Taken: i%3 == 0},
		)
	}
	if correct := run(p, tr); correct < 350 {
		t.Fatalf("PAg: %d/400 correct", correct)
	}
}

func TestPAsSeparatesSets(t *testing.T) {
	p := NewPAs(8, 6, 4)
	tr := make(trace.Trace, 0, 800)
	for i := 0; i < 200; i++ {
		tr = append(tr,
			trace.Record{PC: 0x100, Taken: i%2 == 0},
			trace.Record{PC: 0x104, Taken: i%2 == 1},
		)
	}
	if correct := run(p, tr); correct < 380 {
		t.Fatalf("PAs on anti-correlated branches: %d/400 correct", correct)
	}
}

func TestTournamentBeatsWorstComponent(t *testing.T) {
	mk := func() (*Tournament, Predictor, Predictor) {
		a := NewBimodal(10)
		b := NewGshare(10, 8)
		return NewTournament(a, b, 10), NewBimodal(10), NewGshare(10, 8)
	}
	tour, soloA, soloB := mk()
	rng := xrand.New(5)
	// Mixed workload: some strongly biased branches (bimodal-friendly) and
	// some alternating branches (gshare-friendly).
	tr := make(trace.Trace, 0, 20000)
	phase := 0
	for i := 0; i < 10000; i++ {
		pcBias := uint64(0x1000 + 4*uint64(rng.Intn(16)))
		tr = append(tr, trace.Record{PC: pcBias, Taken: rng.Bool(0.95)})
		pcAlt := uint64(0x8000 + 4*uint64(rng.Intn(4)))
		tr = append(tr, trace.Record{PC: pcAlt, Taken: phase%2 == 0})
		phase++
	}
	tc := run(tour, tr)
	ac := run(soloA, tr)
	bc := run(soloB, tr)
	worst := ac
	if bc < worst {
		worst = bc
	}
	if tc < worst {
		t.Fatalf("tournament (%d) below worst component (bimodal %d, gshare %d)", tc, ac, bc)
	}
}

func TestTournamentResetAndName(t *testing.T) {
	tour := NewTournament(NewBimodal(8), NewGshare(8, 8), 8)
	run(tour, repeat(0x100, []bool{true, false}, 20))
	tour.Reset()
	a, b := tour.Components()
	if a.Name() != "bimodal-256" || b.Name() != "gshare-256" {
		t.Fatalf("component names %q %q", a.Name(), b.Name())
	}
	if tour.Name() != "tournament(bimodal-256,gshare-256)" {
		t.Fatalf("name %q", tour.Name())
	}
}

func TestSizeName(t *testing.T) {
	for bits, want := range map[uint]string{8: "256", 10: "1K", 12: "4K", 16: "64K", 20: "1M"} {
		if got := sizeName(bits); got != want {
			t.Fatalf("sizeName(%d) = %q, want %q", bits, got, want)
		}
	}
}

func TestGeometryPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bimodal-0":      func() { NewBimodal(0) },
		"bimodal-31":     func() { NewBimodal(31) },
		"gshare-0":       func() { NewGshare(0, 8) },
		"gshare-hist-65": func() { NewGshare(10, 65) },
		"gag-0":          func() { NewGAg(0) },
		"pag-0":          func() { NewPAg(0, 8) },
		"pas-bad":        func() { NewPAs(8, 20, 20) },
		"tournament-0":   func() { NewTournament(AlwaysTaken{}, NeverTaken{}, 0) },
		"gselect-0":      func() { NewGselect(0, 4, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
