// Package predictor implements the dynamic branch predictors underlying the
// confidence study, plus the wider predictor zoo used by baselines and the
// hybrid-selector application.
//
// The paper's primary configuration is a gshare predictor with 2^16 two-bit
// saturating counters indexed by the exclusive-OR of PC bits 17..2 and a
// 16-bit global branch history register; Section 5.3 uses a 2^12-entry
// gshare with 12 history bits. Both are available via Gshare64K and
// Gshare4K.
//
// Usage contract: for each dynamic branch, call Predict first and then
// Update with the resolved direction. Update maintains both the counter
// tables and any history registers. Predictors are deterministic and not
// safe for concurrent use.
package predictor

import (
	"fmt"
	"sort"

	"branchconf/internal/trace"
)

// Predictor predicts conditional branch directions from a dynamic branch
// record. Implementations may use any field of the record (PC, target for
// BTFN-style static prediction) but must not use the Taken field in
// Predict.
type Predictor interface {
	// Predict returns the predicted direction for the branch.
	Predict(r trace.Record) bool
	// Update trains the predictor with the resolved direction.
	Update(r trace.Record)
	// Reset restores the predictor to its initial state (tables to their
	// configured initial values, histories to zero).
	Reset()
	// Name identifies the predictor configuration, e.g. "gshare-64K".
	Name() string
}

// StateAnnotator is the annotation capture hook on a predictor: it exposes
// the few bits of pre-update predictor state that predictor-coupled
// confidence mechanisms read for a branch (for gshare, the 2-bit value of
// the counter the prediction comes from).
//
// The two-stage simulation engine (internal/sim) records these bits next
// to the mispredict bit while walking the predictor, so mechanisms like
// core.CounterStrength can later replay the stream with no predictor in
// the loop. AnnotationState must be called before Update for the same
// record, mirroring the Predict-then-Update contract, and must not perturb
// predictor state.
type StateAnnotator interface {
	Predictor
	// AnnotationState returns the pre-update state bits for this branch.
	AnnotationState(r trace.Record) uint8
	// AnnotationBits returns how many low bits of AnnotationState are
	// meaningful — the packed width of the recorded state lane.
	AnnotationBits() uint
}

// Gshare64K returns the paper's main predictor: 2^16 two-bit counters,
// 16 bits of global history XORed with PC bits 17..2 (§1.2).
func Gshare64K() Predictor { return NewGshare(16, 16) }

// Gshare4K returns the paper's Section 5.3 small predictor: 2^12 two-bit
// counters, PC bits 13..2 XORed with 12 history bits.
func Gshare4K() Predictor { return NewGshare(12, 12) }

// builders maps registry names to constructors, letting CLI tools select a
// predictor by flag. Populated in init functions beside each predictor.
var builders = map[string]func() Predictor{}

// Register adds a named constructor to the registry. It panics on a
// duplicate name: registrations happen in init and a collision is a
// programming error.
func Register(name string, build func() Predictor) {
	if _, dup := builders[name]; dup {
		panic(fmt.Sprintf("predictor: duplicate registration %q", name))
	}
	builders[name] = build
}

// Build constructs the named predictor, or an error listing the available
// names when the name is unknown.
func Build(name string) (Predictor, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("predictor: unknown predictor %q (available: %v)", name, Names())
	}
	return b(), nil
}

// Names returns the sorted registry names.
func Names() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
