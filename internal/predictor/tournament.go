package predictor

import (
	"fmt"

	"branchconf/internal/bitvec"
	"branchconf/internal/trace"
)

func init() {
	Register("tournament-64K", func() Predictor {
		return NewTournament(NewBimodal(14), NewGshare(14, 14), 14)
	})
}

// Tournament is McFarling's combining predictor: two component predictors
// and a chooser table of 2-bit counters indexed by PC. The chooser trains
// toward whichever component was correct when they disagree. The paper's
// hybrid-selector application (§1, application 3) replaces this ad hoc
// chooser with an explicit confidence comparison; see internal/apps.
type Tournament struct {
	a, b    Predictor
	chooser []bitvec.SatCounter
	bits    uint
}

// NewTournament combines predictors a and b with a 2^bits-entry chooser.
// Chooser state >= 2 selects b.
func NewTournament(a, b Predictor, bits uint) *Tournament {
	if bits == 0 || bits > 24 {
		panic(fmt.Sprintf("predictor: tournament chooser bits %d out of range [1,24]", bits))
	}
	t := &Tournament{a: a, b: b, chooser: make([]bitvec.SatCounter, 1<<bits), bits: bits}
	t.resetChooser()
	return t
}

func (t *Tournament) resetChooser() {
	for i := range t.chooser {
		t.chooser[i] = bitvec.TwoBit(bitvec.WeaklyTaken) // weakly prefer b
	}
}

// Components returns the two combined predictors (a, b).
func (t *Tournament) Components() (Predictor, Predictor) { return t.a, t.b }

// Predict selects between the component predictions using the chooser.
func (t *Tournament) Predict(r trace.Record) bool {
	if t.chooser[bitvec.PCIndexBits(r.PC, t.bits)].PredictTaken() {
		return t.b.Predict(r)
	}
	return t.a.Predict(r)
}

// Update trains both components and, when exactly one was correct, moves
// the chooser toward it.
func (t *Tournament) Update(r trace.Record) {
	pa := t.a.Predict(r) == r.Taken
	pb := t.b.Predict(r) == r.Taken
	i := bitvec.PCIndexBits(r.PC, t.bits)
	switch {
	case pb && !pa:
		t.chooser[i] = t.chooser[i].Inc()
	case pa && !pb:
		t.chooser[i] = t.chooser[i].Dec()
	}
	t.a.Update(r)
	t.b.Update(r)
}

// Reset restores both components and the chooser.
func (t *Tournament) Reset() {
	t.a.Reset()
	t.b.Reset()
	t.resetChooser()
}

// Name implements Predictor.
func (t *Tournament) Name() string {
	return fmt.Sprintf("tournament(%s,%s)", t.a.Name(), t.b.Name())
}
