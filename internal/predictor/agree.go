package predictor

import (
	"fmt"

	"branchconf/internal/bitvec"
	"branchconf/internal/trace"
)

func init() {
	Register("agree-4K", func() Predictor { return NewAgree(12, 12, 12) })
}

// Agree is the agree predictor (Sprangle et al., ISCA '97), a close
// relative of confidence estimation included in the zoo for baselines:
// instead of predicting taken/not-taken, the dynamic table predicts
// whether the branch will *agree* with a per-branch bias bit. Because
// most branches agree with their bias most of the time, two branches
// aliasing onto the same counter usually want the same "agree" state,
// converting destructive interference into neutral or constructive
// interference.
//
// The bias bit here is set on first encounter from the branch's first
// outcome — the hardware-only variant of the original compiler-set bias.
// The global history records actual branch directions (not agreement),
// exactly like gshare.
type Agree struct {
	table       []bitvec.SatCounter // agree(>=2) / disagree(<2) counters
	bhr         bitvec.BHR
	bias        []uint8 // 0 = unset, 1 = bias not-taken, 2 = bias taken
	tableBits   uint
	historyBits uint
	biasBits    uint
}

// NewAgree returns an agree predictor with 2^tableBits agree counters
// indexed by PC xor BHR (historyBits of global history) and a
// 2^biasBits-entry bias-bit table indexed by PC. Counters initialise to
// "weakly agree". It panics on out-of-range geometry.
func NewAgree(tableBits, historyBits, biasBits uint) *Agree {
	if tableBits == 0 || tableBits > 30 {
		panic(fmt.Sprintf("predictor: agree table bits %d out of range [1,30]", tableBits))
	}
	if historyBits == 0 || historyBits > bitvec.MaxShiftWidth {
		panic(fmt.Sprintf("predictor: agree history bits %d out of range [1,64]", historyBits))
	}
	if biasBits == 0 || biasBits > 24 {
		panic(fmt.Sprintf("predictor: agree bias bits %d out of range [1,24]", biasBits))
	}
	a := &Agree{
		table:       make([]bitvec.SatCounter, 1<<tableBits),
		bias:        make([]uint8, 1<<biasBits),
		tableBits:   tableBits,
		historyBits: historyBits,
		biasBits:    biasBits,
	}
	a.Reset()
	return a
}

func (a *Agree) index(pc uint64) uint64 {
	return bitvec.XORIndex(a.tableBits, bitvec.PCIndexBits(pc, a.tableBits), a.bhr.Bits())
}

// biasOf returns the branch's bias direction, falling back to the
// backward-taken heuristic when the bias bit is unset.
func (a *Agree) biasOf(r trace.Record) bool {
	switch a.bias[bitvec.PCIndexBits(r.PC, a.biasBits)] {
	case 2:
		return true
	case 1:
		return false
	default:
		return r.Backward()
	}
}

// Predict returns the bias direction when the agree counter predicts
// agreement, the opposite otherwise.
func (a *Agree) Predict(r trace.Record) bool {
	if a.table[a.index(r.PC)].PredictTaken() { // "taken" half = agree
		return a.biasOf(r)
	}
	return !a.biasOf(r)
}

// Update sets the bias bit on first encounter, trains the agree counter
// toward whether the outcome agreed with the bias, and records the actual
// direction in the history.
func (a *Agree) Update(r trace.Record) {
	bi := bitvec.PCIndexBits(r.PC, a.biasBits)
	if a.bias[bi] == 0 {
		if r.Taken {
			a.bias[bi] = 2
		} else {
			a.bias[bi] = 1
		}
	}
	agreed := r.Taken == (a.bias[bi] == 2)
	i := a.index(r.PC)
	if agreed {
		a.table[i] = a.table[i].Inc()
	} else {
		a.table[i] = a.table[i].Dec()
	}
	a.bhr.Record(r.Taken)
}

// Reset clears the bias table, counters (to weakly agree) and history.
func (a *Agree) Reset() {
	for i := range a.table {
		a.table[i] = bitvec.TwoBit(bitvec.WeaklyTaken)
	}
	for i := range a.bias {
		a.bias[i] = 0
	}
	a.bhr = bitvec.NewBHR(a.historyBits)
}

// Name implements Predictor.
func (a *Agree) Name() string {
	return fmt.Sprintf("agree-%s", sizeName(a.tableBits))
}
