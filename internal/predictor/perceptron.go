package predictor

import (
	"encoding/binary"
	"fmt"

	"branchconf/internal/bitvec"
	"branchconf/internal/trace"
)

func init() {
	Register("perceptron", func() Predictor { return NewPerceptron(10, 8, 8) })
}

// Perceptron is a hashed perceptron predictor: a bias table indexed by PC
// plus several weight tables, each indexed by a hash of the PC with one
// segment of global history. The prediction is the sign of the summed
// weights, and the magnitude of that sum is the predictor's *native*
// confidence — the margin by which the perceptron made up its mind —
// which the realtrace experiment compares against the paper's CIR tables.
//
// Training follows the standard rule: adjust every contributing weight
// toward the outcome when the prediction was wrong or the margin was
// within the threshold θ ≈ 1.93·h + 14.
type Perceptron struct {
	bias      []int8
	weights   [][]int8 // [table][row]
	hist      []uint64 // global history, newest outcome in bit 0 of word 0
	tableBits uint
	segBits   uint // history bits hashed into each table's index
	histBits  uint // total history = tables * segBits
	theta     int32

	// Sum memo mirroring the other predictors' index memos: the sum
	// depends only on PC and history, which advance only in Update.
	cachePC  uint64
	cacheSum int32
	cacheOK  bool
}

// NewPerceptron returns a hashed perceptron with 2^tableBits rows per
// table, `tables` history-hashed weight tables, and segBits history bits
// per table. It panics on out-of-range geometry.
func NewPerceptron(tableBits, tables, segBits uint) *Perceptron {
	if tableBits == 0 || tableBits > 30 {
		panic(fmt.Sprintf("predictor: perceptron table bits %d out of range [1,30]", tableBits))
	}
	if tables == 0 || tables > 64 {
		panic(fmt.Sprintf("predictor: perceptron wants 1..64 tables, got %d", tables))
	}
	if segBits == 0 || segBits > bitvec.MaxShiftWidth {
		panic(fmt.Sprintf("predictor: perceptron segment bits %d out of range [1,64]", segBits))
	}
	h := tables * segBits
	p := &Perceptron{
		bias:      make([]int8, 1<<tableBits),
		weights:   make([][]int8, tables),
		hist:      make([]uint64, (h+63)/64),
		tableBits: tableBits,
		segBits:   segBits,
		histBits:  h,
		theta:     int32(193*h+1400) / 100,
	}
	for i := range p.weights {
		p.weights[i] = make([]int8, 1<<tableBits)
	}
	p.Reset()
	return p
}

// segment extracts history bits [i*segBits, (i+1)*segBits) from the
// multi-word shift register.
func (p *Perceptron) segment(i uint) uint64 {
	lo := i * p.segBits
	word, off := lo/64, lo%64
	v := p.hist[word] >> off
	if off+p.segBits > 64 && int(word+1) < len(p.hist) {
		v |= p.hist[word+1] << (64 - off)
	}
	return v & (uint64(1)<<p.segBits - 1)
}

// sum computes the perceptron output for pc, memoizing until the next
// Update.
func (p *Perceptron) sum(pc uint64) int32 {
	if p.cacheOK && p.cachePC == pc {
		return p.cacheSum
	}
	s := int32(p.bias[bitvec.PCIndexBits(pc, p.tableBits)])
	for i := range p.weights {
		s += int32(p.weights[i][p.row(pc, uint(i))])
	}
	p.cachePC, p.cacheSum, p.cacheOK = pc, s, true
	return s
}

// row hashes the PC with table i's history segment into a table row. The
// table number is salted in so identical segments map to different rows.
func (p *Perceptron) row(pc uint64, i uint) uint64 {
	return bitvec.XORIndex(p.tableBits,
		bitvec.PCIndexBits(pc, p.tableBits),
		p.segment(i)^uint64(i)*0x9e37_79b9)
}

// Predict implements Predictor: taken when the summed weights are
// non-negative.
func (p *Perceptron) Predict(r trace.Record) bool { return p.sum(r.PC) >= 0 }

// saturate steps a weight toward the outcome, clamping to int8 range.
func saturate(w int8, up bool) int8 {
	if up {
		if w == 127 {
			return w
		}
		return w + 1
	}
	if w == -128 {
		return w
	}
	return w - 1
}

// Update trains on a mispredict or a below-threshold margin, then shifts
// the resolved outcome into the history.
func (p *Perceptron) Update(r trace.Record) {
	s := p.sum(r.PC)
	pred := s >= 0
	margin := s
	if margin < 0 {
		margin = -margin
	}
	if pred != r.Taken || margin <= p.theta {
		bi := bitvec.PCIndexBits(r.PC, p.tableBits)
		p.bias[bi] = saturate(p.bias[bi], r.Taken)
		for i := range p.weights {
			row := p.row(r.PC, uint(i))
			p.weights[i][row] = saturate(p.weights[i][row], r.Taken)
		}
	}
	// Shift the multi-word history left one bit, inserting the outcome.
	carry := uint64(0)
	if r.Taken {
		carry = 1
	}
	for i := range p.hist {
		next := p.hist[i] >> 63
		p.hist[i] = p.hist[i]<<1 | carry
		carry = next
	}
	if top := p.histBits % 64; top != 0 {
		p.hist[len(p.hist)-1] &= uint64(1)<<top - 1
	}
	p.cacheOK = false
}

// Reset zeroes every weight and the history.
func (p *Perceptron) Reset() {
	for i := range p.bias {
		p.bias[i] = 0
	}
	for _, w := range p.weights {
		for i := range w {
			w[i] = 0
		}
	}
	for i := range p.hist {
		p.hist[i] = 0
	}
	p.cacheOK = false
}

// Confidence quantizes the native margin |sum| against the training
// threshold θ into the 2-bit confidence lane: min(3, 4·|sum|/(θ+1)).
// Training stops reinforcing once the margin clears θ, so margins live in
// [0, θ+ε] — quartering that range uses all four levels, with 3 meaning
// "the perceptron stopped needing to learn this branch".
func (p *Perceptron) Confidence(pc uint64) uint8 {
	s := p.sum(pc)
	if s < 0 {
		s = -s
	}
	level := int32(4) * s / (p.theta + 1)
	if level > 3 {
		level = 3
	}
	return uint8(level)
}

// AnnotationState implements StateAnnotator: the pre-update native
// confidence level for this branch.
func (p *Perceptron) AnnotationState(r trace.Record) uint8 { return p.Confidence(r.PC) }

// AnnotationBits implements StateAnnotator: a 2-bit confidence lane.
func (p *Perceptron) AnnotationBits() uint { return 2 }

// Name implements Predictor.
func (p *Perceptron) Name() string { return "perceptron" }

// perceptronStateVersion guards the perceptron checkpoint layout.
const perceptronStateVersion = 1

// MarshalState implements Checkpointer. Layout: version, tableBits, table
// count, segBits (one byte each); the history words little-endian; the
// bias table; then each weight table in order, weights as raw int8 bytes.
func (p *Perceptron) MarshalState() []byte {
	n := 4 + 8*len(p.hist) + (1+len(p.weights))*(1<<p.tableBits)
	out := make([]byte, 0, n)
	out = append(out, perceptronStateVersion, byte(p.tableBits), byte(len(p.weights)), byte(p.segBits))
	for _, w := range p.hist {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	for _, b := range p.bias {
		out = append(out, byte(b))
	}
	for _, tbl := range p.weights {
		for _, w := range tbl {
			out = append(out, byte(w))
		}
	}
	return out
}

// RestoreState implements Checkpointer, rejecting version or geometry
// drift, history bits beyond the window, and truncated or trailing bytes
// before mutating the receiver. Weights are raw int8 bytes, inherently in
// range.
func (p *Perceptron) RestoreState(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("predictor: perceptron state truncated at %d bytes", len(data))
	}
	if data[0] != perceptronStateVersion {
		return fmt.Errorf("predictor: perceptron state version %d, want %d", data[0], perceptronStateVersion)
	}
	if uint(data[1]) != p.tableBits || int(data[2]) != len(p.weights) || uint(data[3]) != p.segBits {
		return fmt.Errorf("predictor: perceptron state geometry t%d/n%d/s%d, want t%d/n%d/s%d",
			data[1], data[2], data[3], p.tableBits, len(p.weights), p.segBits)
	}
	want := 4 + 8*len(p.hist) + (1+len(p.weights))*(1<<p.tableBits)
	if len(data) != want {
		return fmt.Errorf("predictor: perceptron state %d bytes, want %d", len(data), want)
	}
	histRegion := data[4 : 4+8*len(p.hist)]
	hist := make([]uint64, len(p.hist))
	for i := range hist {
		hist[i] = binary.LittleEndian.Uint64(histRegion[8*i:])
	}
	if top := p.histBits % 64; top != 0 {
		if hist[len(hist)-1]&^(uint64(1)<<top-1) != 0 {
			return fmt.Errorf("predictor: perceptron state history exceeds %d-bit window", p.histBits)
		}
	}
	// Validated; install.
	body := data[4+8*len(p.hist):]
	copy(p.hist, hist)
	rows := 1 << p.tableBits
	for i := range p.bias {
		p.bias[i] = int8(body[i])
	}
	for t := range p.weights {
		region := body[(1+t)*rows:]
		for i := range p.weights[t] {
			p.weights[t][i] = int8(region[i])
		}
	}
	p.cacheOK = false
	return nil
}
