package predictor

import (
	"fmt"

	"branchconf/internal/bitvec"
	"branchconf/internal/trace"
)

func init() {
	Register("gag-64K", func() Predictor { return NewGAg(16) })
	Register("pag-64K", func() Predictor { return NewPAg(10, 12) })
	Register("pas-64K", func() Predictor { return NewPAs(10, 10, 6) })
}

// GAg is Yeh & Patt's global two-level adaptive predictor: a single global
// branch history register indexes a global pattern table of 2-bit counters.
// Equivalent to gshare with zero PC bits — the confidence study's "BHR
// alone" indexing uses the same structure for its CIR table.
type GAg struct {
	table       []bitvec.SatCounter
	bhr         bitvec.BHR
	historyBits uint
}

// NewGAg returns a GAg predictor with 2^historyBits pattern-table entries.
func NewGAg(historyBits uint) *GAg {
	if historyBits == 0 || historyBits > 30 {
		panic(fmt.Sprintf("predictor: GAg history bits %d out of range [1,30]", historyBits))
	}
	g := &GAg{table: make([]bitvec.SatCounter, 1<<historyBits), historyBits: historyBits}
	g.Reset()
	return g
}

// Predict reads the pattern-table counter selected by the global history.
func (g *GAg) Predict(trace.Record) bool {
	return g.table[g.bhr.Bits()].PredictTaken()
}

// Update trains the counter and shifts in the outcome.
func (g *GAg) Update(r trace.Record) {
	i := g.bhr.Bits()
	if r.Taken {
		g.table[i] = g.table[i].Inc()
	} else {
		g.table[i] = g.table[i].Dec()
	}
	g.bhr.Record(r.Taken)
}

// Reset restores counters to weakly taken and clears the history.
func (g *GAg) Reset() {
	for i := range g.table {
		g.table[i] = bitvec.TwoBit(bitvec.WeaklyTaken)
	}
	g.bhr = bitvec.NewBHR(g.historyBits)
}

// Name implements Predictor.
func (g *GAg) Name() string { return fmt.Sprintf("gag-%s", sizeName(g.historyBits)) }

// PAg keeps per-address branch history: a table of history registers
// indexed by PC feeds one shared global pattern table.
type PAg struct {
	histories   []bitvec.BHR
	pattern     []bitvec.SatCounter
	bhtBits     uint
	historyBits uint
}

// NewPAg returns a PAg predictor with 2^bhtBits history registers of
// historyBits bits each and a 2^historyBits-entry pattern table.
func NewPAg(bhtBits, historyBits uint) *PAg {
	if bhtBits == 0 || bhtBits > 24 {
		panic(fmt.Sprintf("predictor: PAg BHT bits %d out of range [1,24]", bhtBits))
	}
	if historyBits == 0 || historyBits > 24 {
		panic(fmt.Sprintf("predictor: PAg history bits %d out of range [1,24]", historyBits))
	}
	p := &PAg{
		histories:   make([]bitvec.BHR, 1<<bhtBits),
		pattern:     make([]bitvec.SatCounter, 1<<historyBits),
		bhtBits:     bhtBits,
		historyBits: historyBits,
	}
	p.Reset()
	return p
}

// Predict uses the branch's own history to select a shared pattern counter.
func (p *PAg) Predict(r trace.Record) bool {
	h := p.histories[bitvec.PCIndexBits(r.PC, p.bhtBits)]
	return p.pattern[h.Bits()].PredictTaken()
}

// Update trains the pattern counter and the branch's history register.
func (p *PAg) Update(r trace.Record) {
	hi := bitvec.PCIndexBits(r.PC, p.bhtBits)
	pi := p.histories[hi].Bits()
	if r.Taken {
		p.pattern[pi] = p.pattern[pi].Inc()
	} else {
		p.pattern[pi] = p.pattern[pi].Dec()
	}
	p.histories[hi].Record(r.Taken)
}

// Reset clears histories and restores counters to weakly taken.
func (p *PAg) Reset() {
	for i := range p.histories {
		p.histories[i] = bitvec.NewBHR(p.historyBits)
	}
	for i := range p.pattern {
		p.pattern[i] = bitvec.TwoBit(bitvec.WeaklyTaken)
	}
}

// Name implements Predictor.
func (p *PAg) Name() string { return fmt.Sprintf("pag-%s", sizeName(p.historyBits)) }

// PAs keeps per-address history and per-set pattern tables: the pattern
// index concatenates the branch's history with low PC bits, so different
// branch sets train disjoint counters.
type PAs struct {
	histories   []bitvec.BHR
	pattern     []bitvec.SatCounter
	bhtBits     uint
	historyBits uint
	setBits     uint
}

// NewPAs returns a PAs predictor with 2^bhtBits history registers of
// historyBits bits and a pattern table of 2^(historyBits+setBits) counters.
func NewPAs(bhtBits, historyBits, setBits uint) *PAs {
	if bhtBits == 0 || bhtBits > 24 {
		panic(fmt.Sprintf("predictor: PAs BHT bits %d out of range [1,24]", bhtBits))
	}
	if historyBits == 0 || historyBits+setBits > 26 {
		panic(fmt.Sprintf("predictor: PAs pattern bits %d out of range", historyBits+setBits))
	}
	p := &PAs{
		histories:   make([]bitvec.BHR, 1<<bhtBits),
		pattern:     make([]bitvec.SatCounter, 1<<(historyBits+setBits)),
		bhtBits:     bhtBits,
		historyBits: historyBits,
		setBits:     setBits,
	}
	p.Reset()
	return p
}

func (p *PAs) patternIndex(pc uint64) uint64 {
	h := p.histories[bitvec.PCIndexBits(pc, p.bhtBits)]
	return bitvec.ConcatIndex(p.historyBits+p.setBits,
		[]uint64{h.Bits(), bitvec.PCIndexBits(pc, p.setBits)},
		[]uint{p.historyBits, p.setBits})
}

// Predict uses the branch's history and set to select a pattern counter.
func (p *PAs) Predict(r trace.Record) bool {
	return p.pattern[p.patternIndex(r.PC)].PredictTaken()
}

// Update trains the pattern counter and the branch's history register.
func (p *PAs) Update(r trace.Record) {
	pi := p.patternIndex(r.PC)
	if r.Taken {
		p.pattern[pi] = p.pattern[pi].Inc()
	} else {
		p.pattern[pi] = p.pattern[pi].Dec()
	}
	p.histories[bitvec.PCIndexBits(r.PC, p.bhtBits)].Record(r.Taken)
}

// Reset clears histories and restores counters to weakly taken.
func (p *PAs) Reset() {
	for i := range p.histories {
		p.histories[i] = bitvec.NewBHR(p.historyBits)
	}
	for i := range p.pattern {
		p.pattern[i] = bitvec.TwoBit(bitvec.WeaklyTaken)
	}
}

// Name implements Predictor.
func (p *PAs) Name() string { return fmt.Sprintf("pas-%s", sizeName(p.historyBits+p.setBits)) }
