package predictor

import (
	"encoding/binary"
	"fmt"

	"branchconf/internal/bitvec"
	"branchconf/internal/trace"
)

func init() {
	Register("tage", func() Predictor { return NewTage(12, 10, 9, []uint{5, 11, 25, 55}) })
}

// Tage is a TAGE-style tagged-geometric-history predictor: a bimodal base
// table backed by tagged banks indexed with geometrically increasing
// slices of global history. The longest-history bank whose tag matches
// provides the prediction; a signed counter per tagged entry both decides
// the direction and carries a *native* confidence estimate — the
// counter's distance from its weak midpoint — which is what the realtrace
// experiment compares against the paper's CIR tables.
//
// The implementation is deterministic end to end: allocation on a
// mispredict takes the first longer bank whose useful counter is zero
// (decrementing all candidates when none is free) instead of the
// literature's randomized choice, so equal traces produce equal tables,
// annotations, and checkpoints.
type Tage struct {
	base     []bitvec.SatCounter // 2-bit bimodal fallback
	banks    []tageBank
	bhr      bitvec.BHR
	baseBits uint
	bankBits uint
	tagBits  uint

	// Lookup memo for the predict-then-annotate-then-update protocol:
	// provider selection depends only on PC and history, which advance
	// only in Update.
	cachePC uint64
	cacheOK bool
	cacheLk tageLookup
}

// tageBank is one tagged table with its history length.
type tageBank struct {
	length uint // history bits folded into this bank's index and tag
	tags   []uint16
	ctrs   []bitvec.SatCounter // 3-bit signed-style counters, taken when >= 4
	useful []bitvec.SatCounter // 2-bit usefulness counters
}

// tageLookup is one branch's resolved provider chain.
type tageLookup struct {
	idx      []uint64 // per-bank indices
	tags     []uint16 // per-bank tags
	provider int      // bank index of the provider, -1 for base
	altpred  bool     // prediction of the next-longest match (or base)
	pred     bool
	baseIdx  uint64
}

// NewTage returns a TAGE predictor with a 2^baseBits bimodal base,
// len(lengths) tagged banks of 2^bankBits entries carrying tagBits-bit
// tags, and the given (strictly increasing, <= 64) history lengths. It
// panics on out-of-range geometry, like the other constructors.
func NewTage(baseBits, bankBits, tagBits uint, lengths []uint) *Tage {
	if baseBits == 0 || baseBits > 30 {
		panic(fmt.Sprintf("predictor: tage base bits %d out of range [1,30]", baseBits))
	}
	if bankBits == 0 || bankBits > 30 {
		panic(fmt.Sprintf("predictor: tage bank bits %d out of range [1,30]", bankBits))
	}
	if tagBits == 0 || tagBits > 16 {
		panic(fmt.Sprintf("predictor: tage tag bits %d out of range [1,16]", tagBits))
	}
	if len(lengths) == 0 || len(lengths) > 15 {
		panic(fmt.Sprintf("predictor: tage wants 1..15 banks, got %d", len(lengths)))
	}
	prev := uint(0)
	for _, l := range lengths {
		if l == 0 || l > bitvec.MaxShiftWidth {
			panic(fmt.Sprintf("predictor: tage history length %d out of range [1,64]", l))
		}
		if l <= prev {
			panic(fmt.Sprintf("predictor: tage history lengths must strictly increase, got %v", lengths))
		}
		prev = l
	}
	t := &Tage{
		base:     make([]bitvec.SatCounter, 1<<baseBits),
		banks:    make([]tageBank, len(lengths)),
		baseBits: baseBits,
		bankBits: bankBits,
		tagBits:  tagBits,
	}
	for i, l := range lengths {
		t.banks[i] = tageBank{
			length: l,
			tags:   make([]uint16, 1<<bankBits),
			ctrs:   make([]bitvec.SatCounter, 1<<bankBits),
			useful: make([]bitvec.SatCounter, 1<<bankBits),
		}
	}
	t.Reset()
	return t
}

// foldBits XOR-folds the low `from` bits of v into `to` bits.
func foldBits(v uint64, from, to uint) uint64 {
	if from < 64 {
		v &= uint64(1)<<from - 1
	}
	var out uint64
	for ; v != 0; v >>= to {
		out ^= v & (uint64(1)<<to - 1)
	}
	return out
}

// lookup resolves indices, tags, and the provider chain for pc,
// memoizing until the next Update.
func (t *Tage) lookup(pc uint64) tageLookup {
	if t.cacheOK && t.cachePC == pc {
		return t.cacheLk
	}
	lk := tageLookup{
		idx:      make([]uint64, len(t.banks)),
		tags:     make([]uint16, len(t.banks)),
		provider: -1,
		baseIdx:  bitvec.PCIndexBits(pc, t.baseBits),
	}
	hist := t.bhr.Bits()
	for i, b := range t.banks {
		// Bank number is salted in so equal history slices land banks on
		// different rows; the double-folded tag decorrelates from the index.
		lk.idx[i] = (bitvec.PCIndexBits(pc, t.bankBits) ^
			foldBits(hist, b.length, t.bankBits) ^
			uint64(i)*0x9e37_79b9) & (uint64(1)<<t.bankBits - 1)
		lk.tags[i] = uint16((bitvec.PCIndexBits(pc, t.tagBits) ^
			foldBits(hist, b.length, t.tagBits) ^
			foldBits(hist, b.length, t.tagBits-1)<<1) & (uint64(1)<<t.tagBits - 1))
	}
	// The provider is the longest-history match; altpred is the next
	// match below it, falling back to the base prediction.
	basePred := t.base[lk.baseIdx].PredictTaken()
	lk.pred, lk.altpred = basePred, basePred
	for i := len(t.banks) - 1; i >= 0; i-- {
		if t.banks[i].tags[lk.idx[i]] == lk.tags[i] {
			if lk.provider < 0 {
				lk.provider = i
				lk.pred = t.banks[i].ctrs[lk.idx[i]].PredictTaken()
			} else {
				lk.altpred = t.banks[i].ctrs[lk.idx[i]].PredictTaken()
				break
			}
		}
	}
	t.cachePC, t.cacheLk, t.cacheOK = pc, lk, true
	return lk
}

// Predict implements Predictor.
func (t *Tage) Predict(r trace.Record) bool { return t.lookup(r.PC).pred }

// Update trains the provider (and the base when it provided), maintains
// usefulness, allocates a longer-history entry on a mispredict, and
// advances the global history with the resolved outcome.
func (t *Tage) Update(r trace.Record) {
	lk := t.lookup(r.PC)
	correct := lk.pred == r.Taken
	if lk.provider >= 0 {
		b := &t.banks[lk.provider]
		i := lk.idx[lk.provider]
		if r.Taken {
			b.ctrs[i] = b.ctrs[i].Inc()
		} else {
			b.ctrs[i] = b.ctrs[i].Dec()
		}
		// Usefulness tracks "provider beat the alternative".
		if lk.pred != lk.altpred {
			if correct {
				b.useful[i] = b.useful[i].Inc()
			} else {
				b.useful[i] = b.useful[i].Dec()
			}
		}
	} else {
		if r.Taken {
			t.base[lk.baseIdx] = t.base[lk.baseIdx].Inc()
		} else {
			t.base[lk.baseIdx] = t.base[lk.baseIdx].Dec()
		}
	}
	if !correct && lk.provider < len(t.banks)-1 {
		t.allocate(lk, r.Taken)
	}
	t.bhr.Record(r.Taken)
	t.cacheOK = false
}

// allocate claims an entry in the first longer-history bank whose useful
// counter is zero, seeding it weak toward the resolved outcome; when all
// candidates are protected, their useful counters decay instead (the
// standard TAGE aging rule, made deterministic by the fixed scan order).
func (t *Tage) allocate(lk tageLookup, taken bool) {
	for i := lk.provider + 1; i < len(t.banks); i++ {
		b := &t.banks[i]
		if b.useful[lk.idx[i]].Value() == 0 {
			b.tags[lk.idx[i]] = lk.tags[i]
			seed := uint8(3) // weakly not-taken
			if taken {
				seed = 4 // weakly taken
			}
			b.ctrs[lk.idx[i]] = bitvec.NewSatCounter(7, seed)
			b.useful[lk.idx[i]] = bitvec.NewSatCounter(3, 0)
			return
		}
	}
	for i := lk.provider + 1; i < len(t.banks); i++ {
		b := &t.banks[i]
		b.useful[lk.idx[i]] = b.useful[lk.idx[i]].Dec()
	}
}

// Reset restores every table to its initial state: base weakly taken,
// banks empty (tag 0, weak counters, useless), history clear.
func (t *Tage) Reset() {
	for i := range t.base {
		t.base[i] = bitvec.TwoBit(bitvec.WeaklyTaken)
	}
	for bi := range t.banks {
		b := &t.banks[bi]
		for i := range b.tags {
			b.tags[i] = 0
			b.ctrs[i] = bitvec.NewSatCounter(7, 3)
			b.useful[i] = bitvec.NewSatCounter(3, 0)
		}
	}
	t.bhr = bitvec.NewBHR(t.banks[len(t.banks)-1].length)
	t.cacheOK = false
}

// Confidence returns the native 2-bit confidence level for this branch:
// the providing counter's distance from its weak midpoint. A tagged
// provider's 3-bit counter gives the full 0..3 scale; a base-table
// prediction reports 3 when the 2-bit counter is saturated and 0 when
// weak — the bimodal table has no middle grades to offer.
func (t *Tage) Confidence(pc uint64) uint8 {
	lk := t.lookup(pc)
	if lk.provider >= 0 {
		c := t.banks[lk.provider].ctrs[lk.idx[lk.provider]].Value()
		if c >= 4 {
			return c - 4
		}
		return 3 - c
	}
	if c := t.base[lk.baseIdx]; c.Value() == 0 || c.Saturated() {
		return 3
	}
	return 0
}

// AnnotationState implements StateAnnotator: the pre-update native
// confidence level the prediction for this branch carries.
func (t *Tage) AnnotationState(r trace.Record) uint8 { return t.Confidence(r.PC) }

// AnnotationBits implements StateAnnotator: a 2-bit confidence lane.
func (t *Tage) AnnotationBits() uint { return 2 }

// Name implements Predictor.
func (t *Tage) Name() string { return "tage" }

// tageStateVersion guards the TAGE checkpoint layout.
const tageStateVersion = 1

// MarshalState implements Checkpointer. Layout: version, baseBits,
// bankBits, tagBits, bank count, then each bank's history length (one
// byte each); the BHR bits as a little-endian uint64; the base counters
// packed four per byte; then per bank, entries in index order as
// tag (uint16 LE), counter byte, useful byte.
func (t *Tage) MarshalState() []byte {
	n := 5 + len(t.banks) + 8 + (len(t.base)+3)/4 + len(t.banks)*(1<<t.bankBits)*4
	out := make([]byte, 0, n)
	out = append(out, tageStateVersion, byte(t.baseBits), byte(t.bankBits), byte(t.tagBits), byte(len(t.banks)))
	for _, b := range t.banks {
		out = append(out, byte(b.length))
	}
	out = binary.LittleEndian.AppendUint64(out, t.bhr.Bits())
	var packed byte
	for i, c := range t.base {
		packed |= c.Value() << (2 * (uint(i) & 3))
		if i&3 == 3 {
			out = append(out, packed)
			packed = 0
		}
	}
	if len(t.base)&3 != 0 {
		out = append(out, packed)
	}
	for _, b := range t.banks {
		for i := range b.tags {
			out = binary.LittleEndian.AppendUint16(out, b.tags[i])
			out = append(out, b.ctrs[i].Value(), b.useful[i].Value())
		}
	}
	return out
}

// RestoreState implements Checkpointer, rejecting any structural mismatch
// before mutating the receiver: version or geometry drift, history bits
// outside the register window, out-of-range tag/counter/useful values,
// and truncated or trailing bytes.
func (t *Tage) RestoreState(data []byte) error {
	header := 5 + len(t.banks)
	if len(data) < header+8 {
		return fmt.Errorf("predictor: tage state truncated at %d bytes", len(data))
	}
	if data[0] != tageStateVersion {
		return fmt.Errorf("predictor: tage state version %d, want %d", data[0], tageStateVersion)
	}
	if uint(data[1]) != t.baseBits || uint(data[2]) != t.bankBits || uint(data[3]) != t.tagBits || int(data[4]) != len(t.banks) {
		return fmt.Errorf("predictor: tage state geometry b%d/k%d/t%d/n%d, want b%d/k%d/t%d/n%d",
			data[1], data[2], data[3], data[4], t.baseBits, t.bankBits, t.tagBits, len(t.banks))
	}
	for i, b := range t.banks {
		if uint(data[5+i]) != b.length {
			return fmt.Errorf("predictor: tage state bank %d history %d, want %d", i, data[5+i], b.length)
		}
	}
	bhr := binary.LittleEndian.Uint64(data[header:])
	maxLen := t.banks[len(t.banks)-1].length
	window := ^uint64(0)
	if maxLen < 64 {
		window = uint64(1)<<maxLen - 1
	}
	if bhr&^window != 0 {
		return fmt.Errorf("predictor: tage state history %#x exceeds %d-bit window", bhr, maxLen)
	}
	rest := data[header+8:]
	baseLen := (len(t.base) + 3) / 4
	bankLen := len(t.banks) * (1 << t.bankBits) * 4
	if len(rest) != baseLen+bankLen {
		return fmt.Errorf("predictor: tage state body %d bytes, want %d", len(rest), baseLen+bankLen)
	}
	baseRegion, bankRegion := rest[:baseLen], rest[baseLen:]
	if pad := len(t.base) & 3; pad != 0 {
		if baseRegion[len(baseRegion)-1]>>(2*uint(pad)) != 0 {
			return fmt.Errorf("predictor: tage state has bits beyond the final base counter")
		}
	}
	tagWindow := uint16(1)<<t.tagBits - 1
	for e := 0; e < len(t.banks)*(1<<t.bankBits); e++ {
		rec := bankRegion[e*4:]
		if tag := binary.LittleEndian.Uint16(rec); tag&^tagWindow != 0 {
			return fmt.Errorf("predictor: tage state tag %#x exceeds %d bits", tag, t.tagBits)
		}
		if rec[2] > 7 {
			return fmt.Errorf("predictor: tage state counter %d out of range [0,7]", rec[2])
		}
		if rec[3] > 3 {
			return fmt.Errorf("predictor: tage state useful %d out of range [0,3]", rec[3])
		}
	}
	// Validated; install.
	for i := range t.base {
		t.base[i] = bitvec.TwoBit(baseRegion[i/4] >> (2 * (uint(i) & 3)) & 3)
	}
	for bi := range t.banks {
		b := &t.banks[bi]
		for i := range b.tags {
			rec := bankRegion[(bi*(1<<t.bankBits)+i)*4:]
			b.tags[i] = binary.LittleEndian.Uint16(rec)
			b.ctrs[i] = bitvec.NewSatCounter(7, rec[2])
			b.useful[i] = bitvec.NewSatCounter(3, rec[3])
		}
	}
	t.bhr.Set(bhr)
	t.cacheOK = false
	return nil
}
