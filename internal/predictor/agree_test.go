package predictor

import (
	"testing"

	"branchconf/internal/trace"
	"branchconf/internal/workload"
	"branchconf/internal/xrand"
)

func TestAgreeLearnsBias(t *testing.T) {
	a := NewAgree(10, 8, 10)
	// A strongly taken branch: bias set taken on first update, counters
	// stay in agree; predictions should be correct throughout.
	correct := run(a, repeat(0x1000, []bool{true}, 100))
	if correct < 99 {
		t.Fatalf("always-taken branch: %d/100 correct", correct)
	}
}

func TestAgreeHandlesDisagreement(t *testing.T) {
	a := NewAgree(10, 4, 10)
	// Alternating branch: bias fixed at the first outcome; the agree
	// table must learn the alternation via history, like gshare.
	correct := run(a, repeat(0x1000, []bool{true, false}, 200))
	if correct < 380 {
		t.Fatalf("alternating branch: %d/400 correct", correct)
	}
}

func TestAgreeBiasFallbackBTFN(t *testing.T) {
	a := NewAgree(8, 4, 8)
	// First prediction of an unseen backward branch: bias unknown →
	// BTFN says taken; counters initialise to weakly-agree → predict taken.
	if !a.Predict(trace.Record{PC: 0x2000, Target: 0x1000}) {
		t.Fatal("unseen backward branch predicted not-taken")
	}
	if a.Predict(trace.Record{PC: 0x2000, Target: 0x3000}) {
		t.Fatal("unseen forward branch predicted taken")
	}
}

func TestAgreeResistsAliasing(t *testing.T) {
	// Two heavily biased branches forced onto the same counter entry: a
	// plain gshare counter thrashes when their directions differ, but the
	// agree counter is stable because both agree with their own bias.
	mk := func(n int) (agreeCorrect, gshareCorrect int) {
		a := NewAgree(1, 1, 10) // 2-entry table: guaranteed collisions
		g := NewGshare(1, 1)
		rng := xrand.New(321)
		tr := make(trace.Trace, 0, n)
		for i := 0; i < n; i++ {
			// Random interleaving so short history cannot separate the
			// two conflicting branches.
			if rng.Bool(0.5) {
				tr = append(tr, trace.Record{PC: 0x1000, Target: 0x1040, Taken: true})
			} else {
				tr = append(tr, trace.Record{PC: 0x1008, Target: 0x1048, Taken: false})
			}
		}
		return run(a, tr), run(g, tr)
	}
	ac, gc := mk(1000)
	if ac <= gc {
		t.Fatalf("agree (%d) not better than gshare (%d) under forced aliasing", ac, gc)
	}
	if ac < 900 {
		t.Fatalf("agree only %d/1000 under aliasing", ac)
	}
}

func TestAgreeOnSuite(t *testing.T) {
	// Same-size agree should be in the same accuracy class as gshare on a
	// real workload (typically slightly better under aliasing pressure).
	spec, err := workload.ByName("sdet")
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.FiniteSource(200000)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Collect(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	ac := run(NewAgree(12, 12, 12), tr)
	gc := run(NewGshare(12, 12), tr)
	ratio := float64(ac) / float64(gc)
	if ratio < 0.97 {
		t.Fatalf("agree far behind gshare: %d vs %d correct", ac, gc)
	}
}

func TestAgreeReset(t *testing.T) {
	a := NewAgree(8, 4, 8)
	run(a, repeat(0x1000, []bool{false}, 50))
	a.Reset()
	// Bias forgotten: an unseen forward branch goes back to BTFN.
	if a.Predict(trace.Record{PC: 0x1000, Target: 0x2000}) {
		t.Fatal("reset did not clear bias")
	}
	if a.Name() != "agree-256" {
		t.Fatalf("name %q", a.Name())
	}
}

func TestAgreePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"table-0":  func() { NewAgree(0, 4, 8) },
		"hist-65":  func() { NewAgree(8, 65, 8) },
		"bias-0":   func() { NewAgree(8, 4, 0) },
		"bias-25":  func() { NewAgree(8, 4, 25) },
		"table-31": func() { NewAgree(31, 4, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
