package predictor

import (
	"testing"

	"branchconf/internal/trace"
	"branchconf/internal/xrand"
)

// ckptTrace builds a deterministic multi-PC trace that trains counters
// across the table and fills the history register.
func ckptTrace(n int) trace.Trace {
	rng := xrand.New(0xC4E2)
	tr := make(trace.Trace, n)
	for i := range tr {
		pc := 0x4000 + 4*(rng.Uint64()%4096)
		tr[i] = trace.Record{PC: pc, Target: pc + 64, Taken: rng.Uint64()%3 != 0}
	}
	return tr
}

// TestGshareCheckpointRoundTrip is the streaming-annotation contract: a
// predictor restored from a mid-trace checkpoint must predict the remainder
// of the trace exactly like the continuously trained original, and the
// restored state must re-serialize to the same canonical bytes.
func TestGshareCheckpointRoundTrip(t *testing.T) {
	for _, geom := range []struct{ table, hist uint }{{16, 16}, {12, 12}, {10, 0}, {8, 5}} {
		tr := ckptTrace(30000)
		for _, cut := range []int{0, 1, 12345, len(tr)} {
			live := NewGshare(geom.table, geom.hist)
			run(live, tr[:cut])
			blob := live.MarshalState()

			revived := NewGshare(geom.table, geom.hist)
			run(revived, tr[:100]) // arbitrary stale training the restore must erase
			if err := revived.RestoreState(blob); err != nil {
				t.Fatalf("t%d/h%d cut %d: restore: %v", geom.table, geom.hist, cut, err)
			}
			if got := revived.MarshalState(); string(got) != string(blob) {
				t.Fatalf("t%d/h%d cut %d: restored state re-serializes differently", geom.table, geom.hist, cut)
			}
			for i, r := range tr[cut:] {
				if live.Predict(r) != revived.Predict(r) {
					t.Fatalf("t%d/h%d cut %d: branch %d diverged", geom.table, geom.hist, cut, cut+i)
				}
				live.Update(r)
				revived.Update(r)
			}
		}
	}
}

// TestGshareCheckpointRejects: geometry drift, version drift, history bits
// outside the window, truncation, and trailing bytes all fail restore, and
// a failed restore leaves the receiver's state untouched.
func TestGshareCheckpointRejects(t *testing.T) {
	g := NewGshare(10, 8)
	run(g, ckptTrace(5000))
	blob := g.MarshalState()
	before := string(g.MarshalState())

	reject := func(what string, data []byte) {
		t.Helper()
		if err := g.RestoreState(data); err == nil {
			t.Errorf("%s: corrupt state accepted", what)
		}
		if string(g.MarshalState()) != before {
			t.Fatalf("%s: failed restore mutated the predictor", what)
		}
	}
	reject("empty", nil)
	for _, cut := range []int{1, 3, 10, len(blob) - 1} {
		reject("truncated", blob[:cut])
	}
	reject("trailing byte", append(append([]byte{}, blob...), 0))
	badVer := append([]byte{}, blob...)
	badVer[0] = gshareStateVersion + 1
	reject("version", badVer)
	badTable := append([]byte{}, blob...)
	badTable[1] = 11
	reject("table geometry", badTable)
	badHist := append([]byte{}, blob...)
	badHist[2] = 9
	reject("history geometry", badHist)
	badBHR := append([]byte{}, blob...)
	badBHR[10] = 0xFF // top byte of the BHR word: ≥ 2^56, far above an 8-bit window
	reject("history window", badBHR)

	// Cross-geometry: a 12-bit predictor must refuse a 10-bit state.
	other := NewGshare(12, 8)
	if err := other.RestoreState(blob); err == nil {
		t.Fatal("cross-geometry state accepted")
	}
	// The zero-history degenerate form rejects any nonzero history bits.
	flat := NewGshare(10, 0)
	flatBlob := flat.MarshalState()
	flatBlob[3] = 1
	if err := flat.RestoreState(flatBlob); err == nil {
		t.Fatal("nonzero history accepted by zero-history predictor")
	}
}

// TestGshareCheckpointPadding: a table size that is not a multiple of four
// packs a partial final byte whose unused bits must be zero — and must be
// rejected when set.
func TestGshareCheckpointPadding(t *testing.T) {
	g := NewGshare(1, 2) // 2 counters: one packed byte with 4 unused bits
	run(g, ckptTrace(200))
	blob := g.MarshalState()
	if err := g.RestoreState(blob); err != nil {
		t.Fatalf("pristine state rejected: %v", err)
	}
	blob[len(blob)-1] |= 0xF0
	if err := g.RestoreState(blob); err == nil {
		t.Fatal("set padding bits accepted")
	}
}
