package predictor

import (
	"fmt"

	"branchconf/internal/bitvec"
	"branchconf/internal/trace"
)

func init() {
	Register("gshare-64K", func() Predictor { return Gshare64K() })
	Register("gshare-4K", func() Predictor { return Gshare4K() })
	Register("gselect-64K", func() Predictor { return NewGselect(16, 8, 8) })
}

// Gshare is McFarling's global-history predictor: a table of 2-bit counters
// indexed by the exclusive-OR of low PC bits and a global branch history
// register. The paper's underlying predictor for all confidence experiments.
type Gshare struct {
	table       []bitvec.SatCounter
	bhr         bitvec.BHR
	tableBits   uint
	historyBits uint

	// Index memo for the predict-then-train protocol: the index depends
	// only on PC and history, and history advances only in Update, so the
	// index computed by Predict is still valid for the Update that follows.
	cachePC  uint64
	cacheIdx uint64
	cacheOK  bool
}

// NewGshare returns a gshare predictor with 2^tableBits counters and
// historyBits bits of global history. Counters initialise weakly taken
// (§4). With historyBits == 0 the index degenerates to the PC alone and
// the predictor behaves exactly like a bimodal table of the same size.
// It panics on out-of-range geometry.
func NewGshare(tableBits, historyBits uint) *Gshare {
	if tableBits == 0 || tableBits > 30 {
		panic(fmt.Sprintf("predictor: gshare table bits %d out of range [1,30]", tableBits))
	}
	if historyBits > bitvec.MaxShiftWidth {
		panic(fmt.Sprintf("predictor: gshare history bits %d out of range [0,64]", historyBits))
	}
	g := &Gshare{
		table:       make([]bitvec.SatCounter, 1<<tableBits),
		tableBits:   tableBits,
		historyBits: historyBits,
	}
	g.Reset()
	return g
}

// index computes the table index for the current history and branch PC,
// memoizing it until the history next advances.
func (g *Gshare) index(pc uint64) uint64 {
	if g.cacheOK && g.cachePC == pc {
		return g.cacheIdx
	}
	i := bitvec.XORIndex(g.tableBits, bitvec.PCIndexBits(pc, g.tableBits), g.bhr.Bits())
	g.cachePC, g.cacheIdx, g.cacheOK = pc, i, true
	return i
}

// Predict reads the counter selected by PC xor BHR.
func (g *Gshare) Predict(r trace.Record) bool {
	return g.table[g.index(r.PC)].PredictTaken()
}

// Update trains the selected counter and shifts the resolved direction into
// the global history register. Histories are updated with resolved (not
// speculative) outcomes, as in the paper's trace-driven methodology.
func (g *Gshare) Update(r trace.Record) {
	i := g.index(r.PC)
	if r.Taken {
		g.table[i] = g.table[i].Inc()
	} else {
		g.table[i] = g.table[i].Dec()
	}
	if g.historyBits > 0 {
		g.bhr.Record(r.Taken)
	}
	g.cacheOK = false
}

// Reset restores counters to weakly taken and clears the history.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = bitvec.TwoBit(bitvec.WeaklyTaken)
	}
	w := g.historyBits
	if w == 0 {
		w = 1 // zero-width registers are unsupported; an unrecorded 1-bit BHR stays zero
	}
	g.bhr = bitvec.NewBHR(w)
	g.cacheOK = false
}

// History exposes the current global history bits; confidence mechanisms
// share the BHR with the predictor when indexing their own tables.
func (g *Gshare) History() uint64 { return g.bhr.Bits() }

// CounterState returns the raw 2-bit counter state (0..3) the predictor
// would consult for this branch. Strength-based confidence estimation
// (Smith '81, the paper's §1.1 precursor) reads confidence directly from
// how saturated this counter is.
func (g *Gshare) CounterState(pc uint64) uint8 {
	return g.table[g.index(pc)].Value()
}

// AnnotationState implements StateAnnotator: the pre-update 2-bit counter
// value the prediction for this branch reads, the state counter-strength
// confidence estimation consumes.
func (g *Gshare) AnnotationState(r trace.Record) uint8 { return g.CounterState(r.PC) }

// AnnotationBits implements StateAnnotator: gshare annotations are the
// 2-bit counter value.
func (g *Gshare) AnnotationBits() uint { return 2 }

// TableBits returns log2 of the table size.
func (g *Gshare) TableBits() uint { return g.tableBits }

// HistoryBits returns the global history length.
func (g *Gshare) HistoryBits() uint { return g.historyBits }

// Name implements Predictor.
func (g *Gshare) Name() string { return fmt.Sprintf("gshare-%s", sizeName(g.tableBits)) }

// Gselect concatenates PC bits and history bits instead of XORing them
// (McFarling's gselect). Included for baseline comparisons: gshare usually
// wins at equal table sizes because XOR uses all index bits for both
// components.
type Gselect struct {
	table       []bitvec.SatCounter
	bhr         bitvec.BHR
	tableBits   uint
	pcBits      uint
	historyBits uint
}

// NewGselect returns a gselect predictor with 2^tableBits counters indexed
// by the concatenation of pcBits PC bits (low) and historyBits history bits
// (high). pcBits+historyBits should equal tableBits; excess is masked.
func NewGselect(tableBits, pcBits, historyBits uint) *Gselect {
	if tableBits == 0 || tableBits > 30 {
		panic(fmt.Sprintf("predictor: gselect table bits %d out of range [1,30]", tableBits))
	}
	if historyBits == 0 || historyBits > bitvec.MaxShiftWidth {
		panic(fmt.Sprintf("predictor: gselect history bits %d out of range [1,64]", historyBits))
	}
	g := &Gselect{
		table:       make([]bitvec.SatCounter, 1<<tableBits),
		tableBits:   tableBits,
		pcBits:      pcBits,
		historyBits: historyBits,
	}
	g.Reset()
	return g
}

func (g *Gselect) index(pc uint64) uint64 {
	return bitvec.ConcatIndex(g.tableBits,
		[]uint64{bitvec.PCIndexBits(pc, g.pcBits), g.bhr.Bits()},
		[]uint{g.pcBits, g.historyBits})
}

// Predict reads the counter selected by the concatenated index.
func (g *Gselect) Predict(r trace.Record) bool {
	return g.table[g.index(r.PC)].PredictTaken()
}

// Update trains the counter and history.
func (g *Gselect) Update(r trace.Record) {
	i := g.index(r.PC)
	if r.Taken {
		g.table[i] = g.table[i].Inc()
	} else {
		g.table[i] = g.table[i].Dec()
	}
	g.bhr.Record(r.Taken)
}

// Reset restores counters to weakly taken and clears the history.
func (g *Gselect) Reset() {
	for i := range g.table {
		g.table[i] = bitvec.TwoBit(bitvec.WeaklyTaken)
	}
	g.bhr = bitvec.NewBHR(g.historyBits)
}

// Name implements Predictor.
func (g *Gselect) Name() string { return fmt.Sprintf("gselect-%s", sizeName(g.tableBits)) }
