package predictor

import (
	"encoding/binary"
	"fmt"

	"branchconf/internal/bitvec"
)

// Checkpointer marks a predictor whose full training state can be captured
// and revived at a branch boundary. The streaming engine (internal/sim)
// checkpoints the predictor at every segment boundary so a warm-started run
// can annotate segment k without replaying segments 0..k-1.
//
// A predictor without this interface still streams — the engine simply
// annotates every segment live from the start of the trace within one run,
// and never serves warm per-segment annotations for it.
type Checkpointer interface {
	Predictor
	// MarshalState returns the canonical serialized training state. Equal
	// states serialize to equal bytes.
	MarshalState() []byte
	// RestoreState validates a MarshalState payload against the receiver's
	// geometry and installs it. Validation completes before any mutation,
	// so on error the receiver is unchanged.
	RestoreState(data []byte) error
}

// gshareStateVersion guards the gshare checkpoint layout: bumping it
// orphans persisted checkpoints instead of misreading them.
const gshareStateVersion = 1

// MarshalState implements Checkpointer. Layout: version, tableBits,
// historyBits (one byte each), the BHR bits as a little-endian uint64, then
// the 2-bit counters packed four per byte in index order (counter i in bits
// [2(i%4), 2(i%4)+2) of byte i/4). A 64K-counter gshare checkpoints in
// 16 KB — two orders of magnitude under one annotated segment.
func (g *Gshare) MarshalState() []byte {
	out := make([]byte, 0, 3+8+(len(g.table)+3)/4)
	out = append(out, gshareStateVersion, byte(g.tableBits), byte(g.historyBits))
	out = binary.LittleEndian.AppendUint64(out, g.bhr.Bits())
	var packed byte
	for i, c := range g.table {
		packed |= c.Value() << (2 * (uint(i) & 3))
		if i&3 == 3 {
			out = append(out, packed)
			packed = 0
		}
	}
	if len(g.table)&3 != 0 {
		out = append(out, packed)
	}
	return out
}

// RestoreState implements Checkpointer, rejecting any structural mismatch:
// version or geometry drift, history bits outside the register window, and
// truncated or trailing bytes. Packed 2-bit counter values are inherently
// in range, so the table region needs only its exact length. On success the
// index memo is dropped — the restored history invalidates it.
func (g *Gshare) RestoreState(data []byte) error {
	if len(data) < 11 {
		return fmt.Errorf("predictor: gshare state truncated at %d bytes", len(data))
	}
	if data[0] != gshareStateVersion {
		return fmt.Errorf("predictor: gshare state version %d, want %d", data[0], gshareStateVersion)
	}
	if uint(data[1]) != g.tableBits || uint(data[2]) != g.historyBits {
		return fmt.Errorf("predictor: gshare state geometry t%d/h%d, want t%d/h%d",
			data[1], data[2], g.tableBits, g.historyBits)
	}
	bhr := binary.LittleEndian.Uint64(data[3:])
	var window uint64
	if g.historyBits > 0 {
		if g.historyBits < 64 {
			window = uint64(1)<<g.historyBits - 1
		} else {
			window = ^uint64(0)
		}
	}
	if bhr&^window != 0 {
		return fmt.Errorf("predictor: gshare state history %#x exceeds %d-bit window", bhr, g.historyBits)
	}
	table := data[11:]
	if want := (len(g.table) + 3) / 4; len(table) != want {
		return fmt.Errorf("predictor: gshare state table region %d bytes, want %d", len(table), want)
	}
	if pad := len(g.table) & 3; pad != 0 {
		if table[len(table)-1]>>(2*uint(pad)) != 0 {
			return fmt.Errorf("predictor: gshare state has bits beyond the final counter")
		}
	}
	for i := range g.table {
		g.table[i] = bitvec.TwoBit(table[i/4] >> (2 * (uint(i) & 3)) & 3)
	}
	g.bhr.Set(bhr)
	g.cacheOK = false
	return nil
}
