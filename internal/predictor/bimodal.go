package predictor

import (
	"fmt"

	"branchconf/internal/bitvec"
	"branchconf/internal/trace"
)

func init() {
	Register("bimodal-4K", func() Predictor { return NewBimodal(12) })
	Register("bimodal-64K", func() Predictor { return NewBimodal(16) })
}

// Bimodal is J. E. Smith's classic predictor: a direct-mapped table of
// 2-bit saturating counters indexed by branch PC.
type Bimodal struct {
	table []bitvec.SatCounter
	bits  uint
}

// NewBimodal returns a bimodal predictor with 2^bits counters initialised
// weakly taken. It panics if bits is outside [1, 30]: table geometry is
// fixed configuration.
func NewBimodal(bits uint) *Bimodal {
	if bits == 0 || bits > 30 {
		panic(fmt.Sprintf("predictor: bimodal table bits %d out of range [1,30]", bits))
	}
	b := &Bimodal{table: make([]bitvec.SatCounter, 1<<bits), bits: bits}
	b.Reset()
	return b
}

// Predict reads the counter selected by the branch PC.
func (b *Bimodal) Predict(r trace.Record) bool {
	return b.table[bitvec.PCIndexBits(r.PC, b.bits)].PredictTaken()
}

// Update trains the selected counter toward the resolved direction.
func (b *Bimodal) Update(r trace.Record) {
	i := bitvec.PCIndexBits(r.PC, b.bits)
	if r.Taken {
		b.table[i] = b.table[i].Inc()
	} else {
		b.table[i] = b.table[i].Dec()
	}
}

// Reset restores every counter to weakly taken.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = bitvec.TwoBit(bitvec.WeaklyTaken)
	}
}

// TableBits returns log2 of the table size.
func (b *Bimodal) TableBits() uint { return b.bits }

// Name implements Predictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal-%s", sizeName(b.bits)) }

// sizeName renders 2^bits as a human-readable entry count ("4K", "64K").
func sizeName(bits uint) string {
	n := uint64(1) << bits
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}
