package predictor

import (
	"strings"
	"testing"

	"branchconf/internal/trace"
)

func TestTageLearnsAlternation(t *testing.T) {
	// T,N,T,N defeats bimodal; any history-indexed bank separates it.
	p := NewTage(8, 6, 7, []uint{4, 9})
	tr := repeat(0x1000, []bool{true, false}, 300)
	if correct := run(p, tr); correct < 520 {
		t.Fatalf("tage on alternation: %d/600 correct", correct)
	}
}

func TestTageLearnsLongPattern(t *testing.T) {
	// A period-9 pattern needs more history than a short-history predictor
	// tracks; the longer banks should capture it.
	pattern := []bool{true, true, true, false, true, true, false, false, true}
	p := NewTage(8, 7, 9, []uint{4, 9, 18})
	tr := repeat(0x2040, pattern, 400)
	correct := run(p, tr)
	if frac := float64(correct) / float64(len(tr)); frac < 0.85 {
		t.Fatalf("tage on period-9 pattern: %d/%d correct (%.2f)", correct, len(tr), frac)
	}
}

func TestTageConfidenceTracksTraining(t *testing.T) {
	p := NewTage(8, 6, 7, []uint{4, 9})
	r := trace.Record{PC: 0x3000, Target: 0x3040, Taken: true}
	// Untrained: weakly-taken base, confidence 0.
	if c := p.Confidence(r.PC); c != 0 {
		t.Fatalf("untrained confidence = %d, want 0", c)
	}
	for i := 0; i < 64; i++ {
		p.Predict(r)
		p.Update(r)
	}
	// A long monotone run saturates whichever counter provides.
	if c := p.Confidence(r.PC); c != 3 {
		t.Fatalf("saturated confidence = %d, want 3", c)
	}
	if p.AnnotationState(r) != p.Confidence(r.PC) {
		t.Fatal("AnnotationState disagrees with Confidence")
	}
	if p.AnnotationBits() != 2 {
		t.Fatalf("AnnotationBits = %d, want 2", p.AnnotationBits())
	}
}

func TestTageResetClearsState(t *testing.T) {
	p := NewTage(8, 6, 7, []uint{4, 9})
	tr := ckptTrace(4000)
	run(p, tr)
	trained := string(p.MarshalState())
	p.Reset()
	fresh := NewTage(8, 6, 7, []uint{4, 9})
	if got := string(p.MarshalState()); got != string(fresh.MarshalState()) {
		t.Fatal("Reset did not restore the initial state")
	} else if got == trained {
		t.Fatal("training left no trace in the state (test is vacuous)")
	}
}

// TestTageCheckpointRoundTrip covers the satellite contract at odd history
// widths: a predictor revived from a mid-trace checkpoint predicts the
// remainder exactly like the continuously trained original, and the
// restored state re-serializes byte-identically.
func TestTageCheckpointRoundTrip(t *testing.T) {
	geoms := []struct {
		base, bank, tag uint
		lengths         []uint
	}{
		{12, 10, 9, []uint{5, 11, 25, 55}}, // registry geometry
		{9, 7, 7, []uint{3, 7, 13, 27}},    // odd widths throughout
		{8, 6, 5, []uint{5}},               // single bank
		{10, 8, 11, []uint{7, 19, 41, 63}}, // near the register ceiling
	}
	tr := ckptTrace(30000)
	for _, g := range geoms {
		for _, cut := range []int{0, 1, 12345, len(tr)} {
			live := NewTage(g.base, g.bank, g.tag, g.lengths)
			run(live, tr[:cut])
			blob := live.MarshalState()

			revived := NewTage(g.base, g.bank, g.tag, g.lengths)
			run(revived, tr[:100]) // stale training the restore must erase
			if err := revived.RestoreState(blob); err != nil {
				t.Fatalf("%v cut %d: restore: %v", g.lengths, cut, err)
			}
			if got := revived.MarshalState(); string(got) != string(blob) {
				t.Fatalf("%v cut %d: restored state re-serializes differently", g.lengths, cut)
			}
			for i, r := range tr[cut:] {
				if live.Predict(r) != revived.Predict(r) || live.Confidence(r.PC) != revived.Confidence(r.PC) {
					t.Fatalf("%v cut %d: branch %d diverged", g.lengths, cut, cut+i)
				}
				live.Update(r)
				revived.Update(r)
			}
		}
	}
}

// TestTageCheckpointRejects: structural mismatches fail restore before any
// mutation.
func TestTageCheckpointRejects(t *testing.T) {
	p := NewTage(8, 6, 7, []uint{4, 9})
	run(p, ckptTrace(5000))
	blob := p.MarshalState()
	before := string(p.MarshalState())

	reject := func(name string, data []byte, want string) {
		t.Helper()
		err := p.RestoreState(data)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("%s: err = %v, want substring %q", name, err, want)
		}
		if string(p.MarshalState()) != before {
			t.Fatalf("%s: failed restore mutated the receiver", name)
		}
	}
	mut := func(i int, v byte) []byte {
		d := append([]byte(nil), blob...)
		d[i] = v
		return d
	}
	reject("version drift", mut(0, 99), "version 99")
	reject("geometry drift", mut(1, 12), "geometry")
	reject("bank count drift", mut(4, 3), "geometry")
	reject("length drift", mut(5, 6), "bank 0 history 6")
	reject("truncated", blob[:8], "truncated")
	reject("short body", blob[:len(blob)-1], "body")
	reject("trailing bytes", append(append([]byte(nil), blob...), 0), "body")
	// History beyond the 9-bit window.
	bad := append([]byte(nil), blob...)
	bad[7+2] = 0xff // header is 5+2 bytes; BHR bytes follow
	reject("history window", bad, "window")
	// Out-of-range counter in the first bank entry: tag u16, ctr, useful.
	bankOff := 7 + 8 + (1<<8+3)/4
	reject("counter range", mut(bankOff+2, 9), "counter 9")
	reject("useful range", mut(bankOff+3, 5), "useful 5")
	if err := p.RestoreState(blob); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
}

func TestTageGeometryPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero banks":        func() { NewTage(8, 6, 7, nil) },
		"length zero":       func() { NewTage(8, 6, 7, []uint{0, 5}) },
		"length over 64":    func() { NewTage(8, 6, 7, []uint{5, 65}) },
		"non-increasing":    func() { NewTage(8, 6, 7, []uint{5, 5}) },
		"tag bits zero":     func() { NewTage(8, 6, 0, []uint{5}) },
		"base bits over 30": func() { NewTage(31, 6, 7, []uint{5}) },
		"bank bits zero":    func() { NewTage(8, 0, 7, []uint{5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
