// Package faultnet is a deterministic fault-injecting implementation of
// the remote artifact tier's transport seam (artifact.Doer), the network
// sibling of internal/faultfs: it exercises the remote tier's degradation
// paths — retry, the health breaker, fail-closed record verification,
// local-only fallback — without a real failing network.
//
// A Transport wraps an inner Doer (normally an *http.Client aimed at a
// test server) and consults a fault plan before delegating each request.
// Two plan styles compose, exactly as in faultfs:
//
//   - explicit schedules: Inject(Fault{Op, Nth, From, Mode, ...}) fails the
//     Nth invocation of one operation, every invocation from the From-th
//     onward (a mid-run outage), or every invocation (both zero);
//   - seeded storms: SeedRandom(seed, rate, modes...) fails each request
//     with probability rate, drawing the fault mode from the pool via a
//     private PRNG — deterministic for a fixed seed and call sequence.
//
// Beyond clean connection failures, the modes model the messier realities
// of a distributed store: Timeout returns a net.Error with Timeout() true,
// as a deadlined round trip would; StatusCode answers with a synthesized
// HTTP error status (5xx storms, 4xx rejections) without touching the
// inner transport; TruncateBody performs the real request but delivers
// only the first half of the response body (a torn response — the client's
// CRC verification must fail closed); CrossWire replays the body of the
// last successful GET for a different address (a split-brain store serving
// desynced replica bytes — the client's embedded-key check must fail
// closed). Clear ends the simulated outage.
package faultnet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"

	"branchconf/internal/artifact"
)

// Op identifies one operation of the remote object protocol, by method.
type Op uint8

const (
	OpGet Op = iota
	OpPut
	OpHead
	// OpAny matches every operation (outage faults).
	OpAny
	numOps = int(OpAny)
)

// opNames is indexed by Op.
var opNames = [...]string{"get", "put", "head", "any"}

// String names the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// opOf maps an HTTP method onto its protocol op.
func opOf(method string) Op {
	switch method {
	case http.MethodPut:
		return OpPut
	case http.MethodHead:
		return OpHead
	default:
		return OpGet
	}
}

// Mode selects what an injected fault does.
type Mode uint8

const (
	// FailConn returns a connection-level error: the request never reaches
	// the inner transport.
	FailConn Mode = iota
	// Timeout returns an error whose net.Error Timeout() is true, as a
	// deadlined or hung round trip surfaces through http.Client.
	Timeout
	// StatusCode answers with the fault's Status (503 storms, 500s) and a
	// short body, without touching the inner transport.
	StatusCode
	// TruncateBody performs the real request but returns only the first
	// half of the response body — a torn response the client's record
	// verification must fail closed on.
	TruncateBody
	// CrossWire replays the body of the last successful (untampered) GET
	// in place of this response — a split-brain store serving another
	// address's bytes. Before any GET has succeeded it degrades to
	// TruncateBody.
	CrossWire
)

// Fault schedules one injection.
type Fault struct {
	// Op is the operation to fault (OpAny = all).
	Op Op
	// Nth faults only the Nth invocation of Op (1-based, counted from the
	// fault's installation). Zero with From zero faults every invocation.
	Nth uint64
	// From faults every invocation from the From-th onward (1-based,
	// counted from installation) — a mid-run outage that starts and never
	// ends until Clear.
	From uint64
	// Mode is the fault's shape.
	Mode Mode
	// Status is the synthesized response status for StatusCode mode.
	Status int
	// Err overrides the injected error for FailConn (nil = a generic
	// connection-refused error).
	Err error
}

// timeoutError satisfies net.Error with Timeout() true.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faultnet: injected timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// ErrInjected is the default connection-level error FailConn returns.
var ErrInjected = errors.New("faultnet: injected connection failure")

// Transport is a fault-injecting artifact.Doer. The zero value is not
// usable; wrap an inner transport with New.
type Transport struct {
	inner artifact.Doer

	mu       sync.Mutex
	calls    [numOps]uint64
	injected uint64
	faults   []fault
	rng      *rand.Rand
	rate     float64
	pool     []Mode
	lastBody []byte // last clean GET body, for CrossWire
}

type fault struct {
	Fault
	base  uint64
	spent bool
}

// New wraps inner with an initially fault-free injector.
func New(inner artifact.Doer) *Transport {
	return &Transport{inner: inner}
}

// Inject installs explicit fault schedules. Faults accumulate; each
// Nth-scheduled fault fires once, From- and every-call faults fire until
// Clear.
func (t *Transport) Inject(faults ...Fault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, fl := range faults {
		base := uint64(0)
		if fl.Op != OpAny {
			base = t.calls[fl.Op]
		} else {
			base = t.totalLocked()
		}
		t.faults = append(t.faults, fault{Fault: fl, base: base})
	}
}

// SeedRandom arms probabilistic injection: every request fails with
// probability rate, with the mode drawn from pool. Deterministic for a
// fixed seed and request sequence. Explicit faults are consulted first.
func (t *Transport) SeedRandom(seed int64, rate float64, pool ...Mode) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rng = rand.New(rand.NewSource(seed))
	t.rate = rate
	t.pool = pool
}

// Clear ends the outage: schedules, the random plan, and the cross-wire
// capture are dropped. Call counters are retained.
func (t *Transport) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.faults = nil
	t.rng = nil
	t.rate = 0
	t.pool = nil
	t.lastBody = nil
}

// Calls reports how many times op has been invoked (faulted or not).
func (t *Transport) Calls(op Op) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if op == OpAny {
		return t.totalLocked()
	}
	return t.calls[op]
}

func (t *Transport) totalLocked() uint64 {
	var n uint64
	for _, c := range t.calls {
		n += c
	}
	return n
}

// Injected reports how many faults have fired.
func (t *Transport) Injected() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}

// check advances op's call counter and returns the fault to fire, if any.
func (t *Transport) check(op Op) (Mode, int, error, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.calls[op]++
	for i := range t.faults {
		fl := &t.faults[i]
		if fl.spent || (fl.Op != OpAny && fl.Op != op) {
			continue
		}
		var n uint64
		if fl.Op == OpAny {
			n = t.totalLocked() - fl.base
		} else {
			n = t.calls[op] - fl.base
		}
		switch {
		case fl.Nth != 0:
			if n != fl.Nth {
				continue
			}
			fl.spent = true
		case fl.From != 0:
			if n < fl.From {
				continue
			}
		}
		t.injected++
		return fl.Mode, fl.Status, fl.Err, true
	}
	if t.rng != nil && len(t.pool) > 0 && t.rng.Float64() < t.rate {
		t.injected++
		return t.pool[t.rng.Intn(len(t.pool))], http.StatusInternalServerError, nil, true
	}
	return FailConn, 0, nil, false
}

// Do implements artifact.Doer.
func (t *Transport) Do(req *http.Request) (*http.Response, error) {
	op := opOf(req.Method)
	mode, status, errOverride, fire := t.check(op)
	if !fire {
		resp, err := t.inner.Do(req)
		if err == nil && op == OpGet && resp.StatusCode == http.StatusOK {
			// Capture a clean GET body for later CrossWire replay, leaving
			// the response readable by the caller.
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				return nil, rerr
			}
			t.mu.Lock()
			t.lastBody = append([]byte(nil), body...)
			t.mu.Unlock()
			resp.Body = io.NopCloser(bytes.NewReader(body))
		}
		return resp, err
	}
	switch mode {
	case Timeout:
		return nil, timeoutError{}
	case StatusCode:
		if status == 0 {
			status = http.StatusInternalServerError
		}
		return synthesized(req, status, []byte(fmt.Sprintf("faultnet: injected %d\n", status))), nil
	case TruncateBody, CrossWire:
		resp, err := t.inner.Do(req)
		if err != nil {
			return nil, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if mode == CrossWire {
			t.mu.Lock()
			if t.lastBody != nil {
				body = append([]byte(nil), t.lastBody...)
			} else {
				body = body[:len(body)/2]
			}
			t.mu.Unlock()
		} else {
			body = body[:len(body)/2]
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		resp.Header.Del("Content-Length")
		return resp, nil
	default: // FailConn
		if errOverride != nil {
			return nil, errOverride
		}
		return nil, ErrInjected
	}
}

// synthesized builds an in-memory HTTP response for StatusCode faults.
func synthesized(req *http.Request, status int, body []byte) *http.Response {
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        make(http.Header),
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
