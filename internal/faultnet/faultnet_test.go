package faultnet

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"branchconf/internal/artifact"
)

// fixture boots an in-process remote store and a worker store whose remote
// tier runs through a fault-injecting transport.
func fixture(t *testing.T) (*Transport, *artifact.Store, string) {
	t.Helper()
	backing, err := artifact.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(artifact.NewRemoteServer(backing).Handler())
	t.Cleanup(ts.Close)
	tr := New(&http.Client{})
	s, err := artifact.OpenStore(t.TempDir(), artifact.Options{Remote: artifact.NewRemote(ts.URL, tr)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return tr, s, ts.URL
}

// seed publishes one record through a clean store and returns its payload.
func seed(t *testing.T, base, key string) []byte {
	t.Helper()
	payload := []byte("payload for " + key)
	s, err := artifact.OpenStore(t.TempDir(), artifact.Options{Remote: artifact.NewRemote(base, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(artifact.KindCurve, key, payload); err != nil {
		t.Fatal(err)
	}
	s.Close()
	return payload
}

// TestTransientFaultRetriedWithinOp: a single connection failure or timeout
// is absorbed by the remote tier's retry — the logical Get still hits.
func TestTransientFaultRetriedWithinOp(t *testing.T) {
	for _, mode := range []Mode{FailConn, Timeout} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			tr, s, base := fixture(t)
			want := seed(t, base, "k")
			tr.Inject(Fault{Op: OpGet, Nth: 1, Mode: mode})
			got, ok := s.Get(artifact.KindCurve, "k")
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("Get through one transient fault: ok=%v %q", ok, got)
			}
			if tr.Injected() != 1 {
				t.Fatalf("injected = %d, want 1", tr.Injected())
			}
			if rs := s.RemoteStats(); rs.Hits != 1 || rs.Degraded {
				t.Fatalf("remote stats = %+v, want a clean retried hit", rs)
			}
		})
	}
}

// TestServerErrorStormRetriedThenCounted: 5xx responses are transient and
// retried; a storm that outlasts the retry budget fails the op.
func TestServerErrorStormRetriedThenCounted(t *testing.T) {
	tr, s, base := fixture(t)
	seed(t, base, "k")
	tr.Inject(Fault{Op: OpGet, From: 1, Mode: StatusCode, Status: http.StatusServiceUnavailable})
	if _, ok := s.Get(artifact.KindCurve, "k"); ok {
		t.Fatal("hit through a 503 storm")
	}
	rs := s.RemoteStats()
	if rs.OpErrors != 1 || rs.Hits != 0 {
		t.Fatalf("remote stats = %+v, want 1 failed op", rs)
	}
	if tr.Calls(OpGet) < 2 {
		t.Fatalf("get calls = %d, want retries within the op", tr.Calls(OpGet))
	}
	tr.Clear()
	if got, ok := s.Get(artifact.KindCurve, "k"); !ok || got == nil {
		t.Fatal("Get after the storm cleared")
	}
}

// TestTruncatedResponseFailsClosed: a torn response body fails record
// verification; the caller sees a miss and regenerates, never bad bytes.
func TestTruncatedResponseFailsClosed(t *testing.T) {
	tr, s, base := fixture(t)
	seed(t, base, "k")
	tr.Inject(Fault{Op: OpGet, From: 1, Mode: TruncateBody})
	if _, ok := s.Get(artifact.KindCurve, "k"); ok {
		t.Fatal("a truncated record was served as a hit")
	}
	if rs := s.RemoteStats(); rs.VerifyFails != 1 {
		t.Fatalf("remote stats = %+v, want 1 verify fail", rs)
	}
}

// TestCrossWiredResponseFailsClosed: a split-brain store replaying another
// address's (valid!) record is caught by the embedded-identity check.
func TestCrossWiredResponseFailsClosed(t *testing.T) {
	tr, s, base := fixture(t)
	wantA := seed(t, base, "a")
	seed(t, base, "b")
	// A clean GET of "a" arms the capture...
	if got, ok := s.Get(artifact.KindCurve, "a"); !ok || !bytes.Equal(got, wantA) {
		t.Fatalf("clean get: ok=%v %q", ok, got)
	}
	// ...then "b"'s response carries "a"'s bytes.
	tr.Inject(Fault{Op: OpGet, From: 1, Mode: CrossWire})
	if _, ok := s.Get(artifact.KindCurve, "b"); ok {
		t.Fatal("a cross-wired record was served as a hit")
	}
	if rs := s.RemoteStats(); rs.VerifyFails == 0 {
		t.Fatalf("remote stats = %+v, want the verify fail counted", rs)
	}
}

// TestMidRunOutageDegradesToLocalOnly: the remote goes dark mid-run (From
// fault on every op); the breaker trips and the store keeps serving from
// its local tier — the run continues.
func TestMidRunOutageDegradesToLocalOnly(t *testing.T) {
	tr, s, _ := fixture(t)
	if err := s.Put(artifact.KindCurve, "warm", []byte("local copy")); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	tr.Inject(Fault{Op: OpAny, From: 1, Mode: FailConn})
	// Remote misses on cold keys now fail; after enough consecutive failed
	// logical ops the breaker trips.
	for i := 0; i < 10 && !s.RemoteStats().Degraded; i++ {
		s.Get(artifact.KindCurve, fmt.Sprintf("cold-%d", i))
	}
	rs := s.RemoteStats()
	if !rs.Degraded {
		t.Fatalf("remote stats = %+v, want degraded after the outage", rs)
	}
	// Local tier unaffected: the warm record still serves, and no further
	// network calls happen.
	calls := tr.Calls(OpAny)
	if got, ok := s.Get(artifact.KindCurve, "warm"); !ok || !bytes.Equal(got, []byte("local copy")) {
		t.Fatalf("local get during outage: ok=%v %q", ok, got)
	}
	if _, ok := s.Get(artifact.KindCurve, "still-cold"); ok {
		t.Fatal("phantom hit during outage")
	}
	if tr.Calls(OpAny) != calls {
		t.Fatal("degraded remote tier still touching the network")
	}
	if st := s.Stats(); st.Degraded {
		t.Fatalf("local stats = %+v: remote outage must not degrade the disk tier", st)
	}
}

// TestSeededStormIsDeterministic: the same seed over the same request
// sequence injects the same faults.
func TestSeededStormIsDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		tr, s, base := fixture(t)
		seed(t, base, "k")
		tr.SeedRandom(42, 0.5, FailConn, Timeout, StatusCode)
		for i := 0; i < 20; i++ {
			s.Get(artifact.KindCurve, "k")
			s.Get(artifact.KindCurve, fmt.Sprintf("miss-%d", i))
		}
		return tr.Injected(), tr.Calls(OpAny)
	}
	i1, c1 := run()
	i2, c2 := run()
	if i1 != i2 || c1 != c2 {
		t.Fatalf("storm not deterministic: (%d/%d) vs (%d/%d)", i1, c1, i2, c2)
	}
	if i1 == 0 {
		t.Fatal("storm injected nothing at rate 0.5")
	}
}

// TestNthFaultCountsPerOp: Nth schedules count per operation from
// installation time, so a fault armed late still lands on the right call.
func TestNthFaultCountsPerOp(t *testing.T) {
	tr, s, base := fixture(t)
	seed(t, base, "k")
	if _, ok := s.Get(artifact.KindCurve, "k"); !ok {
		t.Fatal("clean get")
	}
	tr.Inject(Fault{Op: OpHead, Nth: 1, Mode: FailConn})
	// The GET fault space is untouched; the scheduled fault waits for the
	// next HEAD.
	if got, ok := s.Get(artifact.KindCurve, "k"); !ok || got == nil {
		t.Fatal("get perturbed by a head fault")
	}
	if tr.Injected() != 0 {
		t.Fatalf("injected = %d before any head", tr.Injected())
	}
	// One-shot: the faulted attempt is absorbed by the op-level retry, so
	// the logical HEAD still answers — and exactly one fault fired.
	if !s.Remote().Head(artifact.KindCurve, "k") {
		t.Fatal("head not retried through its one-shot fault")
	}
	if tr.Injected() != 1 {
		t.Fatalf("injected = %d, want exactly the one-shot fault", tr.Injected())
	}
	if tr.Calls(OpHead) != 2 {
		t.Fatalf("head calls = %d, want 2 (fault + retry)", tr.Calls(OpHead))
	}
}
