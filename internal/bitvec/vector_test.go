package bitvec

import "testing"

func TestVectorRoundTrip(t *testing.T) {
	v := NewVector(1000)
	bits := make([]bool, 1000)
	for i := range bits {
		bits[i] = i%3 == 0 || i%7 == 2
		v.Append(bits[i])
	}
	if v.Len() != len(bits) {
		t.Fatalf("Len = %d, want %d", v.Len(), len(bits))
	}
	for i, want := range bits {
		if v.Bit(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, v.Bit(i), want)
		}
	}
}

func TestVectorZeroValue(t *testing.T) {
	var v Vector
	v.Append(true)
	v.Append(false)
	if !v.Bit(0) || v.Bit(1) {
		t.Fatalf("zero-value vector misread: %v %v", v.Bit(0), v.Bit(1))
	}
}

func TestVectorWordBoundaries(t *testing.T) {
	v := NewVector(0)
	for i := 0; i < 130; i++ {
		v.Append(i == 63 || i == 64 || i == 127 || i == 128)
	}
	for i := 0; i < 130; i++ {
		want := i == 63 || i == 64 || i == 127 || i == 128
		if v.Bit(i) != want {
			t.Fatalf("bit %d across word boundary = %v, want %v", i, v.Bit(i), want)
		}
	}
	if v.Bytes() != 3*8 {
		t.Fatalf("Bytes = %d, want 24 (three words)", v.Bytes())
	}
}

func TestVectorOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Bit did not panic")
		}
	}()
	NewVector(4).Bit(0)
}
