package bitvec

import "testing"

func TestDenseRoundTrip(t *testing.T) {
	for _, width := range []uint{1, 2, 3, 7, 8, 13, 32} {
		d := NewDense(width, 10)
		mask := (uint64(1) << width) - 1
		const n = 1000
		for i := 0; i < n; i++ {
			d.Append(uint64(i) * 0x9E3779B97F4A7C15)
		}
		if d.Len() != n {
			t.Fatalf("width %d: Len = %d, want %d", width, d.Len(), n)
		}
		for i := 0; i < n; i++ {
			want := uint64(i) * 0x9E3779B97F4A7C15 & mask
			if got := d.At(i); got != want {
				t.Fatalf("width %d: At(%d) = %#x, want %#x", width, i, got, want)
			}
		}
	}
}

func TestDenseTruncatesToWidth(t *testing.T) {
	d := NewDense(2, 0)
	d.Append(0xFF) // only the low 2 bits survive
	if got := d.At(0); got != 3 {
		t.Fatalf("At(0) = %d, want 3", got)
	}
}

func TestDensePacking(t *testing.T) {
	// 2-bit values: 32 per word, so 64 values must occupy exactly 2 words.
	d := NewDense(2, 64)
	for i := 0; i < 64; i++ {
		d.Append(uint64(i))
	}
	if d.Bytes() != 16 {
		t.Fatalf("Bytes = %d, want 16", d.Bytes())
	}
}

func TestDenseOutOfRangePanics(t *testing.T) {
	d := NewDense(4, 0)
	d.Append(1)
	for _, i := range []int{-1, 1} {
		i := i
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			d.At(i)
		}()
	}
}

func TestDenseBadWidthPanics(t *testing.T) {
	for _, w := range []uint{0, 33} {
		w := w
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDense(%d) did not panic", w)
				}
			}()
			NewDense(w, 0)
		}()
	}
}
