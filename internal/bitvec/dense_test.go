package bitvec

import "testing"

func TestDenseRoundTrip(t *testing.T) {
	for _, width := range []uint{1, 2, 3, 7, 8, 12, 13, 16, 17, 31, 32, 33, 48, 64} {
		d := NewDense(width, 10)
		mask := (uint64(1) << width) - 1
		const n = 1000
		for i := 0; i < n; i++ {
			d.Append(uint64(i) * 0x9E3779B97F4A7C15)
		}
		if d.Len() != n {
			t.Fatalf("width %d: Len = %d, want %d", width, d.Len(), n)
		}
		for i := 0; i < n; i++ {
			want := uint64(i) * 0x9E3779B97F4A7C15 & mask
			if got := d.At(i); got != want {
				t.Fatalf("width %d: At(%d) = %#x, want %#x", width, i, got, want)
			}
		}
	}
}

func TestDenseTruncatesToWidth(t *testing.T) {
	d := NewDense(2, 0)
	d.Append(0xFF) // only the low 2 bits survive
	if got := d.At(0); got != 3 {
		t.Fatalf("At(0) = %d, want 3", got)
	}
}

func TestDensePacking(t *testing.T) {
	// 2-bit values: 32 per word, so 64 values must occupy exactly 2 words.
	d := NewDense(2, 64)
	for i := 0; i < 64; i++ {
		d.Append(uint64(i))
	}
	if d.Bytes() != 16 {
		t.Fatalf("Bytes = %d, want 16", d.Bytes())
	}
}

func TestDenseOutOfRangePanics(t *testing.T) {
	d := NewDense(4, 0)
	d.Append(1)
	for _, i := range []int{-1, 1} {
		i := i
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			d.At(i)
		}()
	}
}

// TestDenseAppendWordsMatchesAppend checks the bulk word paths against the
// per-value path at non-power-of-two widths, including a partial final word
// followed by further Appends (the lane kernels' flush pattern).
func TestDenseAppendWordsMatchesAppend(t *testing.T) {
	for _, width := range []uint{1, 3, 5, 12, 13, 16, 21, 33, 64} {
		const n = 1000
		mask := maskOf(width)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(i) * 0x9E3779B97F4A7C15 & mask
		}

		want := NewDense(width, n)
		for _, v := range vals {
			want.Append(v)
		}

		// Pack the first cut values through AppendWord/AppendWords (cut
		// chosen so the final word is partial when width permits), then
		// finish with plain Appends.
		got := NewDense(width, n)
		perWord := int(got.PerWord())
		cut := n/2 + 1
		var words []uint64
		var cur uint64
		inWord := 0
		for _, v := range vals[:cut] {
			cur |= v << (uint(inWord) * width)
			if inWord++; inWord == perWord {
				words = append(words, cur)
				cur, inWord = 0, 0
			}
		}
		if inWord > 0 {
			got.AppendWords(append(words, cur), (len(words))*perWord+inWord)
		} else if len(words) > 0 {
			last := words[len(words)-1]
			for _, w := range words[:len(words)-1] {
				got.AppendWord(w, uint(perWord))
			}
			got.AppendWords([]uint64{last}, perWord)
		}
		for _, v := range vals[cut:] {
			got.Append(v)
		}

		if got.Len() != want.Len() {
			t.Fatalf("width %d: Len = %d, want %d", width, got.Len(), want.Len())
		}
		for i := 0; i < n; i++ {
			if got.At(i) != want.At(i) {
				t.Fatalf("width %d: At(%d) = %#x, want %#x", width, i, got.At(i), want.At(i))
			}
		}
	}
}

func TestDenseAppendWordsMisalignedPanics(t *testing.T) {
	d := NewDense(3, 4)
	d.Append(1) // shift now non-zero: word-aligned bulk appends must refuse
	for _, fn := range []func(){
		func() { d.AppendWord(0, 1) },
		func() { d.AppendWords([]uint64{0}, 1) },
	} {
		fn := fn
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bulk append on misaligned Dense did not panic")
				}
			}()
			fn()
		}()
	}
	// Word-count mismatch must also refuse.
	d2 := NewDense(32, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AppendWords with wrong word count did not panic")
			}
		}()
		d2.AppendWords([]uint64{0, 0}, 2) // 2 values of 32 bits fit one word
	}()
}

func TestDenseBadWidthPanics(t *testing.T) {
	for _, w := range []uint{0, 65} {
		w := w
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDense(%d) did not panic", w)
				}
			}()
			NewDense(w, 0)
		}()
	}
}
