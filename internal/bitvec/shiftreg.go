// Package bitvec provides the bit-level building blocks of the confidence
// simulator: shift registers (branch history registers and correct/incorrect
// registers), saturating and resetting counters, and the index-hashing
// helpers used to address prediction and confidence tables.
//
// Conventions follow the paper (Jacobsen, Rotenberg & Smith, MICRO 1996):
// in a Correct/Incorrect Register (CIR) a 1 bit records an incorrect
// prediction and a 0 bit a correct one; new outcomes shift in at the least
// significant bit, so the most significant bit of the window is the oldest.
// After "correct x3, incorrect, correct x4" an 8-bit CIR reads 00010000.
package bitvec

import (
	"fmt"
	"math/bits"
)

// MaxShiftWidth is the widest supported shift register, bounded by the
// uint64 backing word.
const MaxShiftWidth = 64

// ShiftReg is a fixed-width shift register over single-bit events. It backs
// both branch history registers (1 = taken) and correct/incorrect registers
// (1 = incorrect). The zero value is unusable; construct with NewShiftReg.
type ShiftReg struct {
	bits  uint64
	mask  uint64
	width uint
}

// NewShiftReg returns a register of the given width (1..64) with all bits
// clear. It panics on an out-of-range width: register widths are structural
// configuration fixed at table-construction time, so a bad width is a
// programming error, not a runtime condition.
func NewShiftReg(width uint) ShiftReg {
	if width == 0 || width > MaxShiftWidth {
		panic(fmt.Sprintf("bitvec: shift register width %d out of range [1,%d]", width, MaxShiftWidth))
	}
	return ShiftReg{mask: maskOf(width), width: width}
}

func maskOf(width uint) uint64 {
	if width == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// Width returns the register width in bits.
func (s ShiftReg) Width() uint { return s.width }

// Bits returns the current window contents, oldest event in the most
// significant bit of the window.
func (s ShiftReg) Bits() uint64 { return s.bits }

// Shift records one event: b=true shifts in a 1, b=false a 0. The oldest
// bit falls off the top of the window. Returns the updated register (value
// semantics keep table entries compact and copies cheap).
func (s ShiftReg) Shift(b bool) ShiftReg {
	s.bits = (s.bits << 1) & s.mask
	if b {
		s.bits |= 1
	}
	return s
}

// Set replaces the window contents, truncating v to the register width.
func (s ShiftReg) Set(v uint64) ShiftReg {
	s.bits = v & s.mask
	return s
}

// OnesCount returns the number of 1 bits in the window.
func (s ShiftReg) OnesCount() int { return bits.OnesCount64(s.bits) }

// IsZero reports whether every bit in the window is 0.
func (s ShiftReg) IsZero() bool { return s.bits == 0 }

// Newest reports the most recently shifted-in bit.
func (s ShiftReg) Newest() bool { return s.bits&1 == 1 }

// Oldest reports the oldest bit still in the window.
func (s ShiftReg) Oldest() bool { return s.bits>>(s.width-1)&1 == 1 }

// String renders the window as a binary string, oldest bit first, matching
// the paper's presentation (e.g. "00010000").
func (s ShiftReg) String() string {
	out := make([]byte, s.width)
	for i := uint(0); i < s.width; i++ {
		if s.bits>>(s.width-1-i)&1 == 1 {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// BHR is a global or per-address branch history register: a shift register
// of branch outcomes where 1 records a taken branch.
type BHR struct {
	reg ShiftReg
}

// NewBHR returns a branch history register of the given width, all zeros.
func NewBHR(width uint) BHR { return BHR{reg: NewShiftReg(width)} }

// Record shifts in one branch outcome.
func (b *BHR) Record(taken bool) { b.reg = b.reg.Shift(taken) }

// Bits returns the history window for use in table indexing.
func (b BHR) Bits() uint64 { return b.reg.Bits() }

// Width returns the history length.
func (b BHR) Width() uint { return b.reg.Width() }

// Set overwrites the history window (used by tests and checkpointing).
func (b *BHR) Set(v uint64) { b.reg = b.reg.Set(v) }

// String renders the history window, oldest outcome first.
func (b BHR) String() string { return b.reg.String() }

// CIR is a correct/incorrect register: a shift register of prediction
// correctness where 1 records an incorrect prediction.
type CIR struct {
	reg ShiftReg
}

// NewCIR returns a CIR of the given width with all bits clear (history of
// all-correct predictions).
func NewCIR(width uint) CIR { return CIR{reg: NewShiftReg(width)} }

// Record shifts in one prediction outcome; incorrect=true records a 1.
func (c *CIR) Record(incorrect bool) { c.reg = c.reg.Shift(incorrect) }

// Bits returns the CIR pattern. Patterns index second-level tables and key
// the ideal-reduction statistics.
func (c CIR) Bits() uint64 { return c.reg.Bits() }

// Width returns the CIR length in bits.
func (c CIR) Width() uint { return c.reg.Width() }

// OnesCount returns the number of recorded mispredictions in the window.
func (c CIR) OnesCount() int { return c.reg.OnesCount() }

// IsZero reports whether the window records no mispredictions (the paper's
// "zero bucket" entry state).
func (c CIR) IsZero() bool { return c.reg.IsZero() }

// Set overwrites the window contents (used by initialisation policies).
func (c *CIR) Set(v uint64) { c.reg = c.reg.Set(v) }

// String renders the pattern, oldest prediction first.
func (c CIR) String() string { return c.reg.String() }
