package bitvec

import "fmt"

// Dense is a growable array of fixed-width unsigned integers packed into
// 64-bit words. It backs the predictor-state lane of annotated simulation
// streams and the per-branch bucket lanes of factored bucket streams
// (internal/sim): a 2-bit-wide Dense stores a one-million-branch
// annotation in 250 KB instead of the 1 MB of a []uint8, and a 16-bit
// CIR-pattern lane costs 2 B/branch instead of 8.
//
// Values never straddle word boundaries: each word holds ⌊64/width⌋
// values, so At is one shift-and-mask and readers can stream whole words
// (see Words). Dense is append-only; a fully built array may be read from
// many goroutines concurrently.
type Dense struct {
	words   []uint64
	width   uint
	perWord uint
	mask    uint64
	shift   uint // bit offset of the next Append within the current word
	n       int
}

// NewDense returns an empty packed array of width-bit values with capacity
// for n values preallocated. It panics on widths outside [1,64]: annotation
// lanes are a few bits, bucket lanes at most a full 64-bit CIR pattern.
func NewDense(width uint, n int) *Dense {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("bitvec: Dense width %d out of range [1,64]", width))
	}
	perWord := 64 / width
	if n < 0 {
		n = 0
	}
	return &Dense{
		words:   make([]uint64, 0, (n+int(perWord)-1)/int(perWord)),
		width:   width,
		perWord: perWord,
		mask:    maskOf(width),
	}
}

// DenseFromWords reconstructs a packed array of n width-bit values from its
// backing words, in the layout Words returns (value j of word i in bits
// [j*width, (j+1)*width), unused high bits zero). It is the inverse of
// Words + Len + Width, used by the persistence codecs (internal/sim) to
// revive lanes from verified artifact payloads. Unlike NewDense it returns
// errors instead of panicking: the input is a decoded file, not caller
// code, and a malformed shape must surface as artifact corruption.
func DenseFromWords(width uint, words []uint64, n int) (*Dense, error) {
	if width == 0 || width > 64 {
		return nil, fmt.Errorf("bitvec: DenseFromWords width %d out of range [1,64]", width)
	}
	if n < 0 {
		return nil, fmt.Errorf("bitvec: DenseFromWords with negative length %d", n)
	}
	perWord := 64 / width
	need := (n + int(perWord) - 1) / int(perWord)
	if len(words) != need {
		return nil, fmt.Errorf("bitvec: DenseFromWords got %d words for %d values of width %d (want %d)", len(words), n, width, need)
	}
	if used := perWord * width; used < 64 {
		for i, w := range words {
			if w>>used != 0 {
				return nil, fmt.Errorf("bitvec: DenseFromWords word %d has nonzero bits above slot %d", i, perWord)
			}
		}
	}
	slot := uint(n) % perWord
	if slot != 0 && words[len(words)-1]>>(slot*width) != 0 {
		return nil, fmt.Errorf("bitvec: DenseFromWords has nonzero bits beyond length %d", n)
	}
	return &Dense{
		words:   words,
		width:   width,
		perWord: perWord,
		mask:    maskOf(width),
		shift:   slot * width,
		n:       n,
	}, nil
}

// Reset truncates the array to empty, keeping its word storage — and its
// width — for reuse. Like Vector.Reset, it restarts the append-only
// contract: the array must not be reset while readers hold it.
func (d *Dense) Reset() {
	d.words = d.words[:0]
	d.shift = 0
	d.n = 0
}

// Append adds one value at index Len(). Bits above the configured width are
// discarded, matching the hardware register the lane models.
func (d *Dense) Append(v uint64) {
	if d.shift == 0 {
		d.words = append(d.words, 0)
	}
	d.words[len(d.words)-1] |= (v & d.mask) << d.shift
	d.shift += d.width
	if d.shift+d.width > 64 {
		d.shift = 0
	}
	d.n++
}

// AppendWord appends count values at once from a pre-packed word: value j
// (0 ≤ j < count) occupies bits [j*Width(), (j+1)*Width()) of word, and all
// bits above count*Width() must be zero. The receiver must be word-aligned
// (Len() a multiple of PerWord()), which holds whenever the array has only
// been filled by AppendWord calls — the bulk lane kernels (internal/core)
// pack a register and flush it here once per PerWord() branches instead of
// paying an Append call each. A final partial word (count < PerWord()) may
// be followed by further Appends, which continue packing into it.
func (d *Dense) AppendWord(word uint64, count uint) {
	if d.shift != 0 {
		panic("bitvec: AppendWord on non-word-aligned Dense")
	}
	if count == 0 || count > d.perWord {
		panic(fmt.Sprintf("bitvec: AppendWord count %d out of range [1,%d]", count, d.perWord))
	}
	d.words = append(d.words, word)
	d.n += int(count)
	if count < d.perWord {
		d.shift = count * d.width
	}
}

// AppendWords bulk-appends count values packed into words (the layout
// AppendWord documents; only the final word may be partial, and its bits
// above the packed values must be zero). The receiver must be word-aligned
// like AppendWord. The lane kernels buffer a few hundred packed words and
// flush them here, amortising the per-word call overhead away.
func (d *Dense) AppendWords(words []uint64, count int) {
	if d.shift != 0 {
		panic("bitvec: AppendWords on non-word-aligned Dense")
	}
	need := (count + int(d.perWord) - 1) / int(d.perWord)
	if count <= 0 || need != len(words) {
		panic(fmt.Sprintf("bitvec: AppendWords got %d words for %d values (want %d)", len(words), count, need))
	}
	d.words = append(d.words, words...)
	d.n += count
	if rem := uint(count) % d.perWord; rem != 0 {
		d.shift = rem * d.width
	}
}

// At returns the value at index i. It panics when i is out of range, like a
// slice access: replay offsets are maintained by the caller.
func (d *Dense) At(i int) uint64 {
	if i < 0 || i >= d.n {
		panic(fmt.Sprintf("bitvec: Dense index %d out of range [0,%d)", i, d.n))
	}
	slot := uint(i) % d.perWord
	return d.words[uint(i)/d.perWord] >> (slot * d.width) & d.mask
}

// Len returns the number of values appended.
func (d *Dense) Len() int { return d.n }

// Width returns the per-value bit width.
func (d *Dense) Width() uint { return d.width }

// PerWord returns how many values each packed word holds.
func (d *Dense) PerWord() uint { return d.perWord }

// Words returns the packed backing words. Word i holds values
// [i*PerWord(), (i+1)*PerWord()), each Width() bits, least significant
// first; any trailing bits of the last word are zero. The slice is the
// live backing store and must not be mutated — it exists so streaming
// readers (the tally kernel in internal/sim) can consume one word per
// PerWord() values instead of calling At per index.
func (d *Dense) Words() []uint64 { return d.words }

// Bytes returns the memory footprint of the packed words in bytes.
func (d *Dense) Bytes() uint64 { return uint64(len(d.words)) * 8 }
