package bitvec

import "fmt"

// Dense is a growable array of fixed-width unsigned integers packed into
// 64-bit words. It backs the predictor-state lane of annotated simulation
// streams (internal/sim), where a few bits of pre-update predictor state —
// e.g. the 2-bit saturating-counter value — are recorded per dynamic
// branch; a 2-bit-wide Dense stores a one-million-branch annotation in
// 250 KB instead of the 1 MB of a []uint8.
//
// Values never straddle word boundaries: each word holds ⌊64/width⌋
// values, so At is one shift-and-mask. Dense is append-only; a fully built
// array may be read from many goroutines concurrently.
type Dense struct {
	words   []uint64
	width   uint
	perWord uint
	mask    uint64
	n       int
}

// NewDense returns an empty packed array of width-bit values with capacity
// for n values preallocated. It panics on widths outside [1,32]: annotation
// lanes are a few bits by design, and 32 already allows full counters.
func NewDense(width uint, n int) *Dense {
	if width == 0 || width > 32 {
		panic(fmt.Sprintf("bitvec: Dense width %d out of range [1,32]", width))
	}
	perWord := 64 / width
	if n < 0 {
		n = 0
	}
	return &Dense{
		words:   make([]uint64, 0, (n+int(perWord)-1)/int(perWord)),
		width:   width,
		perWord: perWord,
		mask:    (uint64(1) << width) - 1,
	}
}

// Append adds one value at index Len(). Bits above the configured width are
// discarded, matching the hardware register the lane models.
func (d *Dense) Append(v uint64) {
	slot := uint(d.n) % d.perWord
	if slot == 0 {
		d.words = append(d.words, 0)
	}
	d.words[len(d.words)-1] |= (v & d.mask) << (slot * d.width)
	d.n++
}

// At returns the value at index i. It panics when i is out of range, like a
// slice access: replay offsets are maintained by the caller.
func (d *Dense) At(i int) uint64 {
	if i < 0 || i >= d.n {
		panic(fmt.Sprintf("bitvec: Dense index %d out of range [0,%d)", i, d.n))
	}
	slot := uint(i) % d.perWord
	return d.words[uint(i)/d.perWord] >> (slot * d.width) & d.mask
}

// Len returns the number of values appended.
func (d *Dense) Len() int { return d.n }

// Width returns the per-value bit width.
func (d *Dense) Width() uint { return d.width }

// Bytes returns the memory footprint of the packed words in bytes.
func (d *Dense) Bytes() uint64 { return uint64(len(d.words)) * 8 }
