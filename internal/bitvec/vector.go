package bitvec

import "fmt"

// Vector is a growable bit array packed into 64-bit words. It backs the
// outcome bitvector of materialized replay buffers (internal/trace), where
// one bit per dynamic branch records the resolved direction, and is general
// enough for any dense boolean-per-event store.
//
// The zero value is an empty vector ready for use. Vector is append-only:
// bits are added with Append and read back with Bit; there is no in-place
// mutation, so a fully built vector may be read from many goroutines
// concurrently.
type Vector struct {
	words []uint64
	n     int
}

// NewVector returns an empty vector with capacity for n bits preallocated.
func NewVector(n int) *Vector {
	if n < 0 {
		n = 0
	}
	return &Vector{words: make([]uint64, 0, (n+63)/64)}
}

// MakeVector reconstructs a vector of n bits from its packed words, in the
// layout Words returns: bit i lives at bit i&63 of word i>>6, and every bit
// of the final word at or above n&63 is zero. It is the inverse of Words +
// Len, used by the persistence codecs (internal/trace, internal/sim) to
// revive vectors from verified artifact payloads; the shape checks make a
// structurally inconsistent payload an error rather than a vector whose
// readers disagree about its length.
func MakeVector(words []uint64, n int) (Vector, error) {
	if n < 0 {
		return Vector{}, fmt.Errorf("bitvec: MakeVector with negative length %d", n)
	}
	if need := (n + 63) / 64; len(words) != need {
		return Vector{}, fmt.Errorf("bitvec: MakeVector got %d words for %d bits (want %d)", len(words), n, need)
	}
	if rem := uint(n) & 63; rem != 0 && words[len(words)-1]>>rem != 0 {
		return Vector{}, fmt.Errorf("bitvec: MakeVector has nonzero bits beyond length %d", n)
	}
	return Vector{words: words, n: n}, nil
}

// Reset truncates the vector to empty, keeping its word storage for
// reuse. The append-only concurrency contract restarts: a reset vector is
// a fresh vector, and must not be reset while readers hold it.
func (v *Vector) Reset() {
	v.words = v.words[:0]
	v.n = 0
}

// Append adds one bit at index Len().
func (v *Vector) Append(bit bool) {
	if v.n&63 == 0 {
		v.words = append(v.words, 0)
	}
	if bit {
		v.words[v.n>>6] |= 1 << uint(v.n&63)
	}
	v.n++
}

// Bit returns the bit at index i. It panics when i is out of range, like a
// slice access: replay offsets are maintained by the caller and an
// out-of-range read is a programming error.
func (v *Vector) Bit(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: Vector index %d out of range [0,%d)", i, v.n))
	}
	return v.words[i>>6]>>uint(i&63)&1 == 1
}

// Word returns the i-th 64-bit word of the packed bit array (bits
// [64i, 64i+64), low bit first). Readers iterating long runs can fetch one
// word per 64 bits instead of calling Bit per index. It panics when the
// word index is out of range.
func (v *Vector) Word(i int) uint64 { return v.words[i] }

// Words returns the packed backing words, low bit of word 0 first; any
// trailing bits of the last word are zero. The slice is the live backing
// store and must not be mutated — it exists so bulk kernels (the factored
// bucket-stream builders in internal/core and internal/sim) can stream the
// bit array without a method call per bit.
func (v *Vector) Words() []uint64 { return v.words }

// Len returns the number of bits appended.
func (v *Vector) Len() int { return v.n }

// Bytes returns the memory footprint of the packed words in bytes.
func (v *Vector) Bytes() uint64 { return uint64(len(v.words)) * 8 }
