package bitvec

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestPaperCIRExample(t *testing.T) {
	// Paper §3.1: correct x3, incorrect, correct x4 in an 8-bit CIR reads
	// 00010000.
	c := NewCIR(8)
	seq := []bool{false, false, false, true, false, false, false, false}
	for _, inc := range seq {
		c.Record(inc)
	}
	if got := c.String(); got != "00010000" {
		t.Fatalf("CIR = %s, want 00010000", got)
	}
	if c.OnesCount() != 1 {
		t.Fatalf("OnesCount = %d, want 1", c.OnesCount())
	}
	if c.IsZero() {
		t.Fatal("CIR with one misprediction reported zero")
	}
}

func TestShiftRegWindowing(t *testing.T) {
	s := NewShiftReg(4)
	// Shift in 1,1,1,1 then 0,0,0,0: the ones must fall out.
	for i := 0; i < 4; i++ {
		s = s.Shift(true)
	}
	if s.Bits() != 0xF {
		t.Fatalf("bits = %x, want f", s.Bits())
	}
	for i := 0; i < 4; i++ {
		s = s.Shift(false)
	}
	if !s.IsZero() {
		t.Fatalf("bits = %x after window of zeros, want 0", s.Bits())
	}
}

func TestShiftRegNewestOldest(t *testing.T) {
	s := NewShiftReg(3)
	s = s.Shift(true).Shift(false).Shift(false) // window 100: oldest=1 newest=0
	if !s.Oldest() || s.Newest() {
		t.Fatalf("oldest=%v newest=%v, want true false (window %s)", s.Oldest(), s.Newest(), s)
	}
	s = s.Shift(true) // window 001
	if s.Oldest() || !s.Newest() {
		t.Fatalf("oldest=%v newest=%v, want false true (window %s)", s.Oldest(), s.Newest(), s)
	}
}

func TestShiftRegWidth64(t *testing.T) {
	s := NewShiftReg(64)
	for i := 0; i < 64; i++ {
		s = s.Shift(true)
	}
	if s.Bits() != ^uint64(0) {
		t.Fatalf("64-bit register of ones = %x", s.Bits())
	}
	s = s.Shift(false)
	allOnes := ^uint64(0)
	if s.Bits() != allOnes-1 {
		t.Fatalf("after one zero: %x", s.Bits())
	}
}

func TestShiftRegSetTruncates(t *testing.T) {
	s := NewShiftReg(5).Set(0xFFFF)
	if s.Bits() != 0x1F {
		t.Fatalf("Set did not truncate: %x", s.Bits())
	}
}

func TestShiftRegPanicsOnBadWidth(t *testing.T) {
	for _, w := range []uint{0, 65, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("width %d did not panic", w)
				}
			}()
			NewShiftReg(w)
		}()
	}
}

func TestShiftRegString(t *testing.T) {
	s := NewShiftReg(6)
	s = s.Shift(true).Shift(false).Shift(true).Shift(true).Shift(false).Shift(false)
	// Events oldest→newest: 1,0,1,1,0,0 → string "101100".
	if got := s.String(); got != "101100" {
		t.Fatalf("String = %s, want 101100", got)
	}
}

// Property: after n correct updates, any CIR of width <= n is all zeros.
func TestCIRAllCorrectClears(t *testing.T) {
	check := func(widthSeed uint8, pre uint64) bool {
		width := uint(widthSeed%32) + 1
		c := NewCIR(width)
		c.Set(pre)
		for i := uint(0); i < width; i++ {
			c.Record(false)
		}
		return c.IsZero()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: OnesCount equals popcount of the window contents.
func TestCIROnesCountMatchesPopcount(t *testing.T) {
	check := func(widthSeed uint8, v uint64) bool {
		width := uint(widthSeed%32) + 1
		c := NewCIR(width)
		c.Set(v)
		return c.OnesCount() == bits.OnesCount64(c.Bits())
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a shift register replays the last `width` events exactly.
func TestShiftRegReplaysWindow(t *testing.T) {
	check := func(widthSeed uint8, events uint64) bool {
		width := uint(widthSeed%16) + 1
		s := NewShiftReg(width)
		const total = 40
		var history [total]bool
		for i := 0; i < total; i++ {
			b := events>>(uint(i)%64)&1 == 1
			history[i] = b
			s = s.Shift(b)
		}
		// Reconstruct expected window: last `width` events, oldest at MSB.
		var want uint64
		for i := total - int(width); i < total; i++ {
			want <<= 1
			if history[i] {
				want |= 1
			}
		}
		return s.Bits() == want
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBHRRecord(t *testing.T) {
	b := NewBHR(4)
	b.Record(true)
	b.Record(true)
	b.Record(false)
	b.Record(true)
	if b.Bits() != 0b1101 {
		t.Fatalf("BHR = %04b, want 1101", b.Bits())
	}
	if b.Width() != 4 {
		t.Fatalf("Width = %d", b.Width())
	}
	if b.String() != "1101" {
		t.Fatalf("String = %s", b.String())
	}
}

func TestBHRSet(t *testing.T) {
	b := NewBHR(8)
	b.Set(0xAB)
	if b.Bits() != 0xAB {
		t.Fatalf("Bits = %x", b.Bits())
	}
}
