package bitvec

import "testing"

// FuzzDenseRoundTrip drives Append/At round-trips at fuzzer-chosen lane
// widths — the bucket lanes of the stage-3 tally engine use whatever width
// a mechanism's CIR geometry dictates, so non-power-of-two widths whose
// slack bits sit at every word boundary (3, 17, 31, 33...) must round-trip
// as exactly as the friendly ones. The value stream is derived from two
// fuzzed seeds, long enough to cross several word boundaries at any width.
func FuzzDenseRoundTrip(f *testing.F) {
	f.Add(uint(1), uint64(0), uint64(1))
	f.Add(uint(3), uint64(0x9E3779B97F4A7C15), uint64(7))
	f.Add(uint(12), uint64(0xFFFF_FFFF_FFFF_FFFF), uint64(1))
	f.Add(uint(17), uint64(0x0123_4567_89AB_CDEF), uint64(3))
	f.Add(uint(31), uint64(42), uint64(0x5DEECE66D))
	f.Add(uint(33), uint64(1)<<62, uint64(11))
	f.Add(uint(48), uint64(0xDEAD_BEEF), uint64(13))
	f.Add(uint(64), uint64(0xCAFE), uint64(17))
	f.Fuzz(func(t *testing.T, width uint, seed, stride uint64) {
		if width < 1 || width > 64 {
			t.Skip()
		}
		const n = 300
		d := NewDense(width, n/2) // undersized hint: growth must be seamless
		mask := maskOf(width)
		v := seed
		for i := 0; i < n; i++ {
			d.Append(v)
			v += stride
		}
		if d.Len() != n {
			t.Fatalf("width %d: Len = %d, want %d", width, d.Len(), n)
		}
		// Words() and At() must agree on the packing.
		words := d.Words()
		perWord := int(d.PerWord())
		if want := (n + perWord - 1) / perWord; len(words) != want {
			t.Fatalf("width %d: %d backing words, want %d", width, len(words), want)
		}
		v = seed
		for i := 0; i < n; i++ {
			if got := d.At(i); got != v&mask {
				t.Fatalf("width %d: At(%d) = %#x, want %#x", width, i, got, v&mask)
			}
			fromWord := words[i/perWord] >> (uint(i%perWord) * width) & mask
			if fromWord != v&mask {
				t.Fatalf("width %d: word-stream read at %d = %#x, want %#x", width, i, fromWord, v&mask)
			}
			v += stride
		}
		// Slack bits above the last value must be zero — the tally kernel
		// streams whole words and relies on clean upper bits.
		last := words[len(words)-1]
		used := uint(((n - 1) % perWord) + 1)
		if used*width < 64 && last>>(used*width) != 0 {
			t.Fatalf("width %d: slack bits of final word not zero: %#x", width, last)
		}
	})
}
