package bitvec

import "fmt"

// Table index hashing. Prediction and confidence tables are direct-mapped
// arrays of 2^bits entries; these helpers build indices from combinations
// of program counter and history bits, matching the paper's Section 3.1
// schemes (PC alone, BHR alone, PC xor BHR, concatenations).

// PCIndexBits extracts an index from a branch program counter. Conditional
// branch instructions are word-aligned on the simulated ISA, so the two low
// PC bits carry no information; the paper's gshare uses "bits 17 through 2"
// of the PC. PCIndexBits therefore drops the two low bits before masking.
func PCIndexBits(pc uint64, bits uint) uint64 {
	return (pc >> 2) & maskOf(bits)
}

// XORIndex folds any number of bit fields together with exclusive-OR and
// masks to the table width. The paper's preliminary studies found xor more
// effective than concatenation at equal table sizes.
func XORIndex(bits uint, fields ...uint64) uint64 {
	var v uint64
	for _, f := range fields {
		v ^= f
	}
	return v & maskOf(bits)
}

// ConcatIndex builds an index by concatenating fields, least significant
// field first. widths gives the bit width allotted to each field; the total
// must not exceed 64. Fields are truncated to their width. The result is
// masked to tableBits, dropping high-order concatenated bits if the table
// is smaller than the concatenation.
func ConcatIndex(tableBits uint, fields []uint64, widths []uint) uint64 {
	if len(fields) != len(widths) {
		panic(fmt.Sprintf("bitvec: ConcatIndex got %d fields but %d widths", len(fields), len(widths)))
	}
	var v uint64
	var shift uint
	for i, f := range fields {
		w := widths[i]
		if shift+w > 64 {
			panic("bitvec: ConcatIndex total width exceeds 64")
		}
		v |= (f & maskOf(w)) << shift
		shift += w
	}
	return v & maskOf(tableBits)
}

// FoldIndex reduces a wide value to tableBits by xor-folding successive
// tableBits-wide chunks. Used to hash long CIR patterns into small
// second-level tables without discarding high-order history.
func FoldIndex(v uint64, tableBits uint) uint64 {
	if tableBits == 0 || tableBits > 63 {
		panic(fmt.Sprintf("bitvec: FoldIndex width %d out of range [1,63]", tableBits))
	}
	m := maskOf(tableBits)
	var out uint64
	for v != 0 {
		out ^= v & m
		v >>= tableBits
	}
	return out
}
