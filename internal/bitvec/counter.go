package bitvec

import "fmt"

// SatCounter is an n-state saturating up/down counter in [0, Max]. It is
// the workhorse of both the bimodal/gshare prediction tables (2-bit
// counters) and the saturating-count reduction function of Section 5.1
// (0..16 counters). The zero value counts in [0,0]; construct with
// NewSatCounter.
type SatCounter struct {
	value uint8
	max   uint8
}

// NewSatCounter returns a counter saturating at max, initialised to init.
// It panics if init > max: counter geometry is fixed configuration.
func NewSatCounter(max, init uint8) SatCounter {
	if init > max {
		panic(fmt.Sprintf("bitvec: counter init %d exceeds max %d", init, max))
	}
	return SatCounter{value: init, max: max}
}

// Value returns the current count.
func (c SatCounter) Value() uint8 { return c.value }

// Max returns the saturation ceiling.
func (c SatCounter) Max() uint8 { return c.max }

// Inc increments, saturating at Max.
func (c SatCounter) Inc() SatCounter {
	if c.value < c.max {
		c.value++
	}
	return c
}

// Dec decrements, saturating at 0.
func (c SatCounter) Dec() SatCounter {
	if c.value > 0 {
		c.value--
	}
	return c
}

// Reset returns the counter forced to zero.
func (c SatCounter) Reset() SatCounter {
	c.value = 0
	return c
}

// Saturated reports whether the counter sits at its ceiling.
func (c SatCounter) Saturated() bool { return c.value == c.max }

// TwoBit returns a 2-bit prediction counter (states 0..3) initialised to
// the given state. State >= 2 predicts taken; the paper initialises
// predictor tables to "weakly taken" (state 2).
func TwoBit(init uint8) SatCounter { return NewSatCounter(3, init) }

// WeaklyTaken is the canonical initial state for 2-bit predictor counters.
const WeaklyTaken = 2

// PredictTaken interprets a 2-bit (or wider) counter as a taken/not-taken
// prediction: the upper half of the range predicts taken.
func (c SatCounter) PredictTaken() bool { return uint16(c.value)*2 > uint16(c.max) }

// ResettingCounter implements the paper's Section 5.1 resetting counter:
// it increments (saturating at max) on every correct prediction and resets
// to zero on any misprediction. It tracks only the distance to the most
// recent misprediction, which the paper found captures most of the
// information in a full CIR at logarithmic storage cost.
type ResettingCounter struct {
	value uint8
	max   uint8
}

// NewResettingCounter returns a resetting counter saturating at max,
// initialised to init. The paper's configuration counts 0..16 so that its
// buckets align with the 17 possible ones-counts of a 16-bit CIR.
func NewResettingCounter(max, init uint8) ResettingCounter {
	if init > max {
		panic(fmt.Sprintf("bitvec: resetting counter init %d exceeds max %d", init, max))
	}
	return ResettingCounter{value: init, max: max}
}

// Value returns the current count: the number of consecutive correct
// predictions observed (saturating).
func (c ResettingCounter) Value() uint8 { return c.value }

// Max returns the saturation ceiling.
func (c ResettingCounter) Max() uint8 { return c.max }

// Update records one prediction outcome.
func (c ResettingCounter) Update(incorrect bool) ResettingCounter {
	if incorrect {
		c.value = 0
	} else if c.value < c.max {
		c.value++
	}
	return c
}

// Saturated reports whether the counter has seen at least max consecutive
// correct predictions (the resetting-counter analogue of the zero bucket).
func (c ResettingCounter) Saturated() bool { return c.value == c.max }
