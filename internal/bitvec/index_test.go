package bitvec

import (
	"testing"
	"testing/quick"
)

func TestPCIndexBitsDropsAlignment(t *testing.T) {
	// Word-aligned PCs differing only in bits 0-1 must map identically.
	if PCIndexBits(0x1000, 12) != PCIndexBits(0x1003, 12) {
		t.Fatal("alignment bits leaked into index")
	}
	// Bits 2+ must matter.
	if PCIndexBits(0x1000, 12) == PCIndexBits(0x1004, 12) {
		t.Fatal("adjacent word PCs collided")
	}
}

func TestPCIndexBitsRange(t *testing.T) {
	check := func(pc uint64, bitsSeed uint8) bool {
		b := uint(bitsSeed%24) + 1
		return PCIndexBits(pc, b) < 1<<b
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXORIndex(t *testing.T) {
	if got := XORIndex(8, 0xFF, 0x0F); got != 0xF0 {
		t.Fatalf("XORIndex = %x, want f0", got)
	}
	if got := XORIndex(4, 0xFF, 0x0F); got != 0x0 {
		t.Fatalf("masked XORIndex = %x, want 0", got)
	}
	if got := XORIndex(8); got != 0 {
		t.Fatalf("empty XORIndex = %x, want 0", got)
	}
}

// Property: XOR indexing is self-inverse — xoring a field in twice removes it.
func TestXORIndexSelfInverse(t *testing.T) {
	check := func(a, b uint64, bitsSeed uint8) bool {
		w := uint(bitsSeed%16) + 1
		return XORIndex(w, a, b, b) == XORIndex(w, a)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcatIndex(t *testing.T) {
	// fields [a (4 bits), b (4 bits)] → b:a
	got := ConcatIndex(8, []uint64{0xA, 0xB}, []uint{4, 4})
	if got != 0xBA {
		t.Fatalf("ConcatIndex = %x, want ba", got)
	}
	// Truncation of field values to their widths.
	got = ConcatIndex(8, []uint64{0xFA, 0xFB}, []uint{4, 4})
	if got != 0xBA {
		t.Fatalf("ConcatIndex with wide fields = %x, want ba", got)
	}
	// Table mask drops high bits.
	got = ConcatIndex(4, []uint64{0xA, 0xB}, []uint{4, 4})
	if got != 0xA {
		t.Fatalf("masked ConcatIndex = %x, want a", got)
	}
}

func TestConcatIndexPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"mismatched lengths": func() { ConcatIndex(8, []uint64{1}, []uint{4, 4}) },
		"width overflow":     func() { ConcatIndex(8, []uint64{1, 2}, []uint{40, 40}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFoldIndexRange(t *testing.T) {
	check := func(v uint64, bitsSeed uint8) bool {
		w := uint(bitsSeed%20) + 1
		return FoldIndex(v, w) < 1<<w
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFoldIndexIdentityWhenNarrow(t *testing.T) {
	// Values already within the width fold to themselves.
	check := func(seed uint16) bool {
		v := uint64(seed) & 0xFFF
		return FoldIndex(v, 12) == v
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFoldIndexMixesHighBits(t *testing.T) {
	// A value with only high bits set must still produce a nonzero fold.
	if FoldIndex(0xF000, 4) == 0xF000&0xF {
		// 0xF000 folded into 4 bits: chunks F,0,0,0 → F.
		if FoldIndex(0xF000, 4) != 0xF {
			t.Fatalf("FoldIndex(0xF000,4) = %x, want f", FoldIndex(0xF000, 4))
		}
	}
}

func TestFoldIndexPanics(t *testing.T) {
	for _, w := range []uint{0, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("width %d did not panic", w)
				}
			}()
			FoldIndex(1, w)
		}()
	}
}
