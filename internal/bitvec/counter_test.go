package bitvec

import (
	"testing"
	"testing/quick"
)

func TestSatCounterBounds(t *testing.T) {
	c := NewSatCounter(3, 0)
	for i := 0; i < 10; i++ {
		c = c.Dec()
	}
	if c.Value() != 0 {
		t.Fatalf("Dec past floor: %d", c.Value())
	}
	for i := 0; i < 10; i++ {
		c = c.Inc()
	}
	if c.Value() != 3 {
		t.Fatalf("Inc past ceiling: %d", c.Value())
	}
	if !c.Saturated() {
		t.Fatal("counter at max not Saturated")
	}
}

func TestSatCounterIncDecInverse(t *testing.T) {
	// Away from the rails, Inc then Dec is identity.
	check := func(maxSeed, initSeed uint8) bool {
		max := maxSeed%30 + 2
		init := initSeed % (max - 1)
		if init == 0 {
			init = 1
		}
		c := NewSatCounter(max, init)
		return c.Inc().Dec().Value() == c.Value() && c.Dec().Inc().Value() == c.Value()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSatCounterNeverLeavesRange(t *testing.T) {
	check := func(maxSeed uint8, ops uint64) bool {
		max := maxSeed%31 + 1
		c := NewSatCounter(max, max/2)
		for i := 0; i < 64; i++ {
			if ops>>uint(i)&1 == 1 {
				c = c.Inc()
			} else {
				c = c.Dec()
			}
			if c.Value() > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSatCounterPanicsOnBadInit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("init > max did not panic")
		}
	}()
	NewSatCounter(3, 4)
}

func TestTwoBitPrediction(t *testing.T) {
	// 2-bit counter: states 0,1 predict not-taken; 2,3 predict taken.
	for state, want := range map[uint8]bool{0: false, 1: false, 2: true, 3: true} {
		c := TwoBit(state)
		if c.PredictTaken() != want {
			t.Fatalf("state %d predicts %v, want %v", state, c.PredictTaken(), want)
		}
	}
}

func TestTwoBitHysteresis(t *testing.T) {
	// From strongly-taken, one not-taken outcome must not flip the
	// prediction; two must.
	c := TwoBit(3)
	c = c.Dec()
	if !c.PredictTaken() {
		t.Fatal("single contrary outcome flipped strong counter")
	}
	c = c.Dec()
	if c.PredictTaken() {
		t.Fatal("two contrary outcomes did not flip counter")
	}
}

func TestResettingCounterBasics(t *testing.T) {
	c := NewResettingCounter(16, 0)
	for i := 1; i <= 20; i++ {
		c = c.Update(false)
		want := uint8(i)
		if i > 16 {
			want = 16
		}
		if c.Value() != want {
			t.Fatalf("after %d correct: %d, want %d", i, c.Value(), want)
		}
	}
	if !c.Saturated() {
		t.Fatal("not saturated after 20 correct")
	}
	c = c.Update(true)
	if c.Value() != 0 {
		t.Fatalf("after incorrect: %d, want 0", c.Value())
	}
}

// Property (paper invariant): a resetting counter is exactly 0 immediately
// after any incorrect update, regardless of prior state.
func TestResettingCounterResetInvariant(t *testing.T) {
	check := func(maxSeed, initSeed uint8, ops uint32) bool {
		max := maxSeed%31 + 1
		c := NewResettingCounter(max, initSeed%(max+1))
		for i := 0; i < 32; i++ {
			incorrect := ops>>uint(i)&1 == 1
			c = c.Update(incorrect)
			if incorrect && c.Value() != 0 {
				return false
			}
			if c.Value() > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the resetting counter value equals min(max, number of correct
// updates since the last incorrect update).
func TestResettingCounterTracksRun(t *testing.T) {
	check := func(ops uint64) bool {
		const max = 16
		c := NewResettingCounter(max, 0)
		run := 0
		for i := 0; i < 64; i++ {
			incorrect := ops>>uint(i)&1 == 1
			c = c.Update(incorrect)
			if incorrect {
				run = 0
			} else {
				run++
			}
			want := run
			if want > max {
				want = max
			}
			if int(c.Value()) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResettingCounterPanicsOnBadInit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("init > max did not panic")
		}
	}()
	NewResettingCounter(4, 5)
}
