package heapwatch

import "testing"

func TestDisabledSampleRecordsNothing(t *testing.T) {
	Reset()
	Sample("idle")
	if got := Report(); len(got) != 0 {
		t.Fatalf("disabled sample recorded %v", got)
	}
}

func TestSampleTracksMaxPerStage(t *testing.T) {
	Enable()
	defer func() { enabled.Store(false); Reset() }()
	Reset()
	Sample("annotate")
	first := Report()
	if len(first) != 1 || first[0].Stage != "annotate" || first[0].Peak == 0 {
		t.Fatalf("first sample: %v", first)
	}
	// A second sample never lowers the recorded peak, and new stages sort
	// into place.
	Sample("annotate")
	Sample("tally")
	got := Report()
	if len(got) != 2 || got[0].Stage != "annotate" || got[1].Stage != "tally" {
		t.Fatalf("stages: %v", got)
	}
	if got[0].Peak < first[0].Peak {
		t.Fatalf("peak regressed: %d < %d", got[0].Peak, first[0].Peak)
	}
	Reset()
	if len(Report()) != 0 {
		t.Fatal("Reset left peaks behind")
	}
}
