// Package heapwatch samples the Go heap's high-water mark per engine stage,
// making the streaming engine's flat-memory claim measurable: -cache-stats
// reports one peak-HeapAlloc row per stage label, and the bench harness
// records the peaks in BENCH_streaming.json. Sampling is opt-in and off by
// default — a disabled Sample is one atomic load, so the engine's hot paths
// can call it unconditionally.
package heapwatch

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

var (
	enabled atomic.Bool
	mu      sync.Mutex
	peaks   map[string]uint64
)

// Enable turns sampling on for the process.
func Enable() { enabled.Store(true) }

// Enabled reports whether sampling is on.
func Enabled() bool { return enabled.Load() }

// Sample records the current HeapAlloc against the stage label, keeping the
// maximum seen. It is a no-op (one atomic load) while sampling is disabled.
// ReadMemStats stops the world briefly, so the engine samples at stage
// boundaries — once per segment or unit, never per branch.
func Sample(stage string) {
	if !enabled.Load() {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mu.Lock()
	if peaks == nil {
		peaks = map[string]uint64{}
	}
	if ms.HeapAlloc > peaks[stage] {
		peaks[stage] = ms.HeapAlloc
	}
	mu.Unlock()
}

// StagePeak is one stage's heap high-water mark.
type StagePeak struct {
	Stage string
	Peak  uint64
}

// Report returns the recorded peaks sorted by stage label.
func Report() []StagePeak {
	mu.Lock()
	defer mu.Unlock()
	out := make([]StagePeak, 0, len(peaks))
	for stage, peak := range peaks {
		out = append(out, StagePeak{Stage: stage, Peak: peak})
	}
	slices.SortFunc(out, func(a, b StagePeak) int {
		switch {
		case a.Stage < b.Stage:
			return -1
		case a.Stage > b.Stage:
			return 1
		}
		return 0
	})
	return out
}

// Reset clears the recorded peaks (sampling stays in its current state).
func Reset() {
	mu.Lock()
	peaks = nil
	mu.Unlock()
}
