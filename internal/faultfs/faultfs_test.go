package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"branchconf/internal/artifact"
)

// writeFile plants a real file for the injector to operate on.
func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
}

// TestNthSchedule: an Nth fault fires on exactly that invocation, once, and
// the injected error matches the scheduled errno through errors.Is (the
// property the store's classifier depends on).
func TestNthSchedule(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	writeFile(t, path, []byte("data"))
	f := New(artifact.OSFS())
	f.Inject(Fault{Op: OpReadFile, Nth: 2, Err: syscall.EIO})

	if _, err := f.ReadFile(path); err != nil {
		t.Fatalf("1st read faulted early: %v", err)
	}
	if _, err := f.ReadFile(path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("2nd read error = %v, want EIO", err)
	}
	if _, err := f.ReadFile(path); err != nil {
		t.Fatalf("3rd read faulted after schedule spent: %v", err)
	}
	if got := f.Calls(OpReadFile); got != 3 {
		t.Fatalf("Calls(OpReadFile) = %d, want 3", got)
	}
	if got := f.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
}

// TestEveryInvocation: Nth == 0 fails every call until Clear.
func TestEveryInvocation(t *testing.T) {
	dir := t.TempDir()
	f := New(artifact.OSFS())
	f.Inject(Fault{Op: OpCreateTemp, Err: syscall.ENOSPC})
	for i := 0; i < 3; i++ {
		if _, err := f.CreateTemp(dir, ".tmp-*"); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("CreateTemp %d error = %v, want ENOSPC", i, err)
		}
	}
	f.Clear()
	tmp, err := f.CreateTemp(dir, ".tmp-*")
	if err != nil {
		t.Fatalf("CreateTemp after Clear: %v", err)
	}
	tmp.Close()
}

// TestPartialWrite: half the buffer lands in the inner file before the
// error, matching what a torn write leaves on disk.
func TestPartialWrite(t *testing.T) {
	dir := t.TempDir()
	f := New(artifact.OSFS())
	tmp, err := f.CreateTemp(dir, ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	f.Inject(Fault{Op: OpWrite, Nth: 1, Err: syscall.EIO, Mode: PartialWrite})
	n, err := tmp.Write([]byte("0123456789"))
	if n != 5 || !errors.Is(err, syscall.EIO) {
		t.Fatalf("Write = (%d, %v), want (5, EIO)", n, err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "01234" {
		t.Fatalf("torn file holds %q, want the first half", data)
	}
}

// TestCrashBeforeRename: the rename never happens, the staged file stays
// behind backdated past the store's orphan TTL, and the dead writer's own
// cleanup fails until Clear ends the outage.
func TestCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, ".tmp-crashed")
	dst := filepath.Join(dir, "published.art")
	writeFile(t, src, []byte("staged"))
	f := New(artifact.OSFS())
	f.Inject(Fault{Op: OpRename, Nth: 1, Err: syscall.EIO, Mode: CrashBeforeRename})

	if err := f.Rename(src, dst); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Rename error = %v, want EIO", err)
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatal("crash-before-rename still published the record")
	}
	info, err := os.Stat(src)
	if err != nil {
		t.Fatal("staged file vanished in crash-before-rename")
	}
	if age := time.Since(info.ModTime()); age < 23*time.Hour {
		t.Fatalf("orphan aged only %v; must predate the store's sweep TTL", age)
	}
	if err := f.Remove(src); err == nil {
		t.Fatal("a crashed writer's cleanup Remove succeeded")
	}
	f.Clear()
	if err := f.Remove(src); err != nil {
		t.Fatalf("Remove after Clear: %v", err)
	}
}

// TestCrashAfterRename: the record lands but the caller sees a failure, as
// if the writer died before observing the rename return.
func TestCrashAfterRename(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, ".tmp-late")
	dst := filepath.Join(dir, "published.art")
	writeFile(t, src, []byte("staged"))
	f := New(artifact.OSFS())
	f.Inject(Fault{Op: OpRename, Nth: 1, Err: syscall.EIO, Mode: CrashAfterRename})

	if err := f.Rename(src, dst); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Rename error = %v, want EIO", err)
	}
	if _, err := os.Stat(dst); err != nil {
		t.Fatal("crash-after-rename lost the published record")
	}
	if _, err := os.Stat(src); !os.IsNotExist(err) {
		t.Fatal("crash-after-rename left the source behind")
	}
}

// TestSeededStormDeterministic: the same seed, rate and call sequence
// injects at the same points with the same errnos.
func TestSeededStormDeterministic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	writeFile(t, path, []byte("data"))
	trial := func() []string {
		f := New(artifact.OSFS())
		f.SeedRandom(7, 0.4, syscall.EIO, syscall.ENOSPC, syscall.EACCES)
		var pattern []string
		for i := 0; i < 64; i++ {
			if _, err := f.ReadFile(path); err != nil {
				pattern = append(pattern, err.Error())
			} else {
				pattern = append(pattern, "ok")
			}
		}
		if f.Injected() == 0 {
			t.Fatal("storm at rate 0.4 injected nothing over 64 ops")
		}
		return pattern
	}
	a, b := trial(), trial()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("storms diverge at op %d: %q vs %q", i, a[i], b[i])
		}
	}
}
