// Package faultfs is a deterministic fault-injecting implementation of the
// artifact.FS seam, for exercising the persistent tier's degradation paths
// — classification, retry, the health breaker, orphan recovery — without a
// real failing disk.
//
// An FS wraps an inner filesystem (normally artifact.OSFS) and consults a
// fault plan before delegating each operation. Two plan styles compose:
//
//   - explicit schedules: Inject(Fault{Op, Nth, Err, Mode}) fails the Nth
//     invocation of one operation (or every invocation with Nth == 0) with
//     a chosen errno, exactly reproducibly;
//   - seeded storms: SeedRandom(seed, rate, errs...) fails each operation
//     with probability rate, drawing the errno from errs via a private
//     PRNG — deterministic for a fixed seed and call sequence.
//
// Beyond clean failures, three fault modes model the messier realities of a
// dying disk: PartialWrite lands a prefix of the bytes before erroring
// (matching the io contract: n < len(p) with a non-nil error);
// CrashBeforeRename simulates a writer dying between staging and publish —
// the rename never happens, the staged temp file is left behind (backdated
// past the store's orphan TTL, standing in for a crash in some earlier
// process) and pinned so the "dead" writer's own cleanup Remove fails too;
// CrashAfterRename simulates death just after publish — the record lands
// but the writer never learns it. Clear ends the simulated outage, as a
// process restart would.
//
// Errors are wrapped in *io/fs.PathError around real syscall errnos, so the
// store's errors.Is-based classification sees exactly what the os package
// would produce.
package faultfs

import (
	"errors"
	iofs "io/fs"
	"math/rand"
	"os"
	"sync"
	"time"

	"branchconf/internal/artifact"
)

// Op identifies one operation of the artifact.FS seam.
type Op uint8

const (
	OpMkdirAll Op = iota
	OpReadDir
	OpReadFile
	OpCreateTemp
	OpWrite
	OpClose
	OpRename
	OpRemove
	OpChtimes
	numOps
)

// opNames is indexed by Op, for PathError and String rendering.
var opNames = [numOps]string{
	"mkdirall", "readdir", "readfile", "createtemp",
	"write", "close", "rename", "remove", "chtimes",
}

// String names the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// Mode selects what an injected fault does beyond returning an error.
type Mode uint8

const (
	// FailOp returns the fault's error with no side effect: the operation
	// never reaches the inner filesystem.
	FailOp Mode = iota
	// PartialWrite (OpWrite only) writes the first half of the buffer to
	// the inner file, then returns the short count and the fault's error.
	PartialWrite
	// CrashBeforeRename (OpRename only) simulates the writer dying before
	// publish: the rename does not happen, the staged source file stays on
	// disk backdated past the store's orphan TTL, and the source path is
	// pinned so the crashed writer's cleanup Remove fails until Clear.
	CrashBeforeRename
	// CrashAfterRename (OpRename only) simulates the writer dying after
	// publish: the rename happens on the inner filesystem, but the error
	// is returned as if the writer never saw it complete.
	CrashAfterRename
)

// Fault schedules one injection.
type Fault struct {
	// Op is the operation to fail.
	Op Op
	// Nth fails only the Nth invocation of Op (1-based, counted from the
	// fault's installation); 0 fails every invocation.
	Nth uint64
	// Err is the error to inject, typically a syscall errno such as
	// syscall.ENOSPC; it is wrapped in a *fs.PathError like a real fault.
	Err error
	// Mode is the fault's side-effect shape; the zero value is a clean
	// failure.
	Mode Mode
}

// FS is a fault-injecting artifact.FS. The zero value is not usable; wrap
// an inner filesystem with New.
type FS struct {
	inner artifact.FS

	mu       sync.Mutex
	calls    [numOps]uint64 // invocations since New, per op
	injected uint64         // faults fired
	faults   []fault
	rng      *rand.Rand // non-nil after SeedRandom
	rate     float64
	pool     []error
	pinned   map[string]bool // crash-orphaned paths whose Remove fails
}

// fault is an installed Fault plus the op-call count at installation, so
// Nth counts invocations after Inject rather than process lifetime.
type fault struct {
	Fault
	base  uint64
	spent bool
}

// New wraps inner (artifact.OSFS() for a real directory) with an initially
// fault-free injector.
func New(inner artifact.FS) *FS {
	return &FS{inner: inner, pinned: make(map[string]bool)}
}

// Inject installs explicit fault schedules. Faults accumulate; each
// Nth-scheduled fault fires once, an Nth == 0 fault fires on every
// invocation until Clear.
func (f *FS) Inject(faults ...Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, fl := range faults {
		f.faults = append(f.faults, fault{Fault: fl, base: f.calls[fl.Op]})
	}
}

// SeedRandom arms probabilistic injection: every operation fails with
// probability rate, with the error drawn from pool (syscall errnos).
// Deterministic for a fixed seed and operation sequence. Explicit faults
// installed with Inject are consulted first.
func (f *FS) SeedRandom(seed int64, rate float64, pool ...error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rng = rand.New(rand.NewSource(seed))
	f.rate = rate
	f.pool = pool
}

// Clear ends the outage: all schedules, the random plan, and crash pins are
// dropped, as if the faulty process had restarted on healthy media. Call
// counters are retained.
func (f *FS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = nil
	f.rng = nil
	f.rate = 0
	f.pool = nil
	f.pinned = make(map[string]bool)
}

// Calls reports how many times op has been invoked (faulted or not).
func (f *FS) Calls(op Op) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[op]
}

// Injected reports how many faults have fired.
func (f *FS) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// check advances op's call counter and returns the fault to fire now, if
// any, wrapped as a *fs.PathError on path.
func (f *FS) check(op Op, path string) (Mode, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[op]++
	for i := range f.faults {
		fl := &f.faults[i]
		if fl.spent || fl.Op != op {
			continue
		}
		if fl.Nth != 0 && f.calls[op]-fl.base != fl.Nth {
			continue
		}
		if fl.Nth != 0 {
			fl.spent = true
		}
		f.injected++
		return fl.Mode, &iofs.PathError{Op: op.String(), Path: path, Err: fl.Err}
	}
	if f.rng != nil && len(f.pool) > 0 && f.rng.Float64() < f.rate {
		f.injected++
		return FailOp, &iofs.PathError{Op: op.String(), Path: path, Err: f.pool[f.rng.Intn(len(f.pool))]}
	}
	return FailOp, nil
}

// pin marks path as owned by a crashed writer: its Remove fails until
// Clear, like a file handle nobody alive can clean up.
func (f *FS) pin(path string) {
	f.mu.Lock()
	f.pinned[path] = true
	f.mu.Unlock()
}

func (f *FS) isPinned(path string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pinned[path]
}

// MkdirAll implements artifact.FS.
func (f *FS) MkdirAll(dir string, perm os.FileMode) error {
	if _, err := f.check(OpMkdirAll, dir); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir, perm)
}

// ReadDir implements artifact.FS.
func (f *FS) ReadDir(dir string) ([]iofs.DirEntry, error) {
	if _, err := f.check(OpReadDir, dir); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

// ReadFile implements artifact.FS.
func (f *FS) ReadFile(name string) ([]byte, error) {
	if _, err := f.check(OpReadFile, name); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

// CreateTemp implements artifact.FS; the returned file routes Write and
// Close back through the injector.
func (f *FS) CreateTemp(dir, pattern string) (artifact.File, error) {
	if _, err := f.check(OpCreateTemp, dir); err != nil {
		return nil, err
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

// Rename implements artifact.FS, honoring the crash modes. A source path
// pinned by an earlier simulated crash keeps failing: the writer that
// staged it is dead, so no retry can revive the publish.
func (f *FS) Rename(oldpath, newpath string) error {
	if f.isPinned(oldpath) {
		return f.pinnedErr("rename", oldpath)
	}
	mode, err := f.check(OpRename, oldpath)
	if err == nil {
		return f.inner.Rename(oldpath, newpath)
	}
	switch mode {
	case CrashBeforeRename:
		// The writer died before publish: the staged file stays. Backdate
		// it past the orphan TTL — this crash stands in for one that
		// happened in some long-gone process — and pin it so the dead
		// writer's cleanup fails too.
		old := time.Now().Add(-24 * time.Hour)
		_ = f.inner.Chtimes(oldpath, old, old)
		f.pin(oldpath)
		return err
	case CrashAfterRename:
		// The record landed; only the acknowledgment was lost.
		_ = f.inner.Rename(oldpath, newpath)
		return err
	default:
		return err
	}
}

// Remove implements artifact.FS. Paths pinned by a simulated crash refuse
// deletion until Clear.
func (f *FS) Remove(name string) error {
	if f.isPinned(name) {
		return f.pinnedErr("remove", name)
	}
	if _, err := f.check(OpRemove, name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// pinnedErr counts and returns the unclassified (hence never-retried)
// error every operation on a crash-pinned path yields.
func (f *FS) pinnedErr(op, path string) error {
	f.mu.Lock()
	f.injected++
	f.mu.Unlock()
	return &iofs.PathError{Op: op, Path: path, Err: errors.New("faultfs: path pinned by simulated crash")}
}

// Chtimes implements artifact.FS.
func (f *FS) Chtimes(name string, atime, mtime time.Time) error {
	if _, err := f.check(OpChtimes, name); err != nil {
		return err
	}
	return f.inner.Chtimes(name, atime, mtime)
}

// file wraps an inner artifact.File, routing Write and Close through the
// injector so staging faults (short writes, failed closes) are reachable.
type file struct {
	fs    *FS
	inner artifact.File
}

// Write implements artifact.File. Under PartialWrite, half the buffer
// reaches the inner file before the error — the on-disk state a real torn
// write leaves.
func (w *file) Write(p []byte) (int, error) {
	mode, err := w.fs.check(OpWrite, w.inner.Name())
	if err == nil {
		return w.inner.Write(p)
	}
	if mode == PartialWrite && len(p) > 0 {
		n, _ := w.inner.Write(p[:len(p)/2])
		return n, err
	}
	return 0, err
}

// Close implements artifact.File.
func (w *file) Close() error {
	if _, err := w.fs.check(OpClose, w.inner.Name()); err != nil {
		_ = w.inner.Close() // release the descriptor either way
		return err
	}
	return w.inner.Close()
}

// Name implements artifact.File.
func (w *file) Name() string { return w.inner.Name() }
