package artifact

import (
	"bytes"
	"errors"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := []struct {
		kind    uint16
		key     string
		payload []byte
	}{
		{KindReplayBuffer, "replay|v1|spec|n=100", []byte("hello payload")},
		{KindAnnotatedStream, "ann|v1|x", nil},
		{KindBucketStream, "", bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for _, c := range cases {
		rec := EncodeRecord(c.kind, c.key, c.payload)
		got, err := DecodeRecord(rec, c.kind, c.key)
		if err != nil {
			t.Fatalf("kind=%d key=%q: decode failed: %v", c.kind, c.key, err)
		}
		if !bytes.Equal(got, c.payload) {
			t.Fatalf("kind=%d key=%q: payload mismatch", c.kind, c.key)
		}
	}
}

func TestRecordRejectsMismatchedIdentity(t *testing.T) {
	rec := EncodeRecord(KindReplayBuffer, "the-key", []byte("data"))
	if _, err := DecodeRecord(rec, KindAnnotatedStream, "the-key"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong kind accepted: %v", err)
	}
	if _, err := DecodeRecord(rec, KindReplayBuffer, "other-key"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong key accepted: %v", err)
	}
	// Same length, different content: the embedded key must be compared,
	// not just its length.
	if _, err := DecodeRecord(rec, KindReplayBuffer, "the-keY"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("same-length wrong key accepted: %v", err)
	}
}

// TestRecordTruncation: every proper prefix of a valid record must decode
// to ErrCorrupt — never a panic, never a payload.
func TestRecordTruncation(t *testing.T) {
	rec := EncodeRecord(KindBucketStream, "bucket|k", []byte("0123456789abcdef"))
	for n := 0; n < len(rec); n++ {
		got, err := DecodeRecord(rec[:n], KindBucketStream, "bucket|k")
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: err=%v", n, err)
		}
		if got != nil {
			t.Fatalf("truncation to %d bytes returned a payload", n)
		}
	}
}

// TestRecordBitFlips: flipping any single bit anywhere in the record must
// yield ErrCorrupt. This is the fail-closed property the warm-start path
// depends on: corruption costs regeneration time, never correctness.
func TestRecordBitFlips(t *testing.T) {
	rec := EncodeRecord(KindAnnotatedStream, "ann|key", []byte("payload bytes under test"))
	for i := range rec {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(rec)
			mut[i] ^= 1 << bit
			got, err := DecodeRecord(mut, KindAnnotatedStream, "ann|key")
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip byte %d bit %d: err=%v", i, bit, err)
			}
			if got != nil {
				t.Fatalf("flip byte %d bit %d returned a payload", i, bit)
			}
		}
	}
}

// TestRecordAppendedGarbage: trailing bytes shift the checksum window and
// must be rejected.
func TestRecordAppendedGarbage(t *testing.T) {
	rec := EncodeRecord(KindReplayBuffer, "k", []byte("p"))
	rec = append(rec, 0x00)
	if _, err := DecodeRecord(rec, KindReplayBuffer, "k"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("record with trailing garbage accepted: %v", err)
	}
}

// FuzzDecodeRecord drives arbitrary bytes through the decoder: it must
// never panic, and anything it accepts must re-encode to the same bytes —
// i.e. the only accepted inputs are genuine records for (kind, key).
func FuzzDecodeRecord(f *testing.F) {
	f.Add(EncodeRecord(KindReplayBuffer, "seed-key", []byte("seed payload")))
	f.Add(EncodeRecord(KindReplayBuffer, "seed-key", nil))
	f.Add([]byte{})
	f.Add([]byte("BCA1 not a real record but starts with the magic....."))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodeRecord(data, KindReplayBuffer, "seed-key")
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt error: %v", err)
			}
			return
		}
		if !bytes.Equal(EncodeRecord(KindReplayBuffer, "seed-key", payload), data) {
			t.Fatalf("accepted record does not round-trip")
		}
	})
}

// TestDecodeRecordCheapPathStaysClosed: the checksum-skipping decode still
// rejects every structural mismatch — wrong kind, wrong key, truncation —
// so the store's cheap repeat-read path can never alias across entries.
func TestDecodeRecordCheapPathStaysClosed(t *testing.T) {
	rec := EncodeRecord(KindBucketStream, "the-key", []byte("payload"))
	if got, err := decodeRecord(rec, KindBucketStream, "the-key", false); err != nil || string(got) != "payload" {
		t.Fatalf("cheap decode of a good record: %q, %v", got, err)
	}
	if _, err := decodeRecord(rec, KindAnnotatedStream, "the-key", false); err == nil {
		t.Fatal("cheap decode accepted a wrong kind")
	}
	if _, err := decodeRecord(rec, KindBucketStream, "other-key", false); err == nil {
		t.Fatal("cheap decode accepted a wrong key")
	}
	if _, err := decodeRecord(rec[:len(rec)-3], KindBucketStream, "the-key", false); err == nil {
		t.Fatal("cheap decode accepted a truncated record")
	}
	// The one check the cheap path gives up: a payload bit flip passes.
	flipped := append([]byte(nil), rec...)
	flipped[recordHeaderLen+len("the-key")+2] ^= 0x04
	if _, err := decodeRecord(flipped, KindBucketStream, "the-key", false); err != nil {
		t.Fatalf("cheap path unexpectedly ran the checksum: %v", err)
	}
	if _, err := decodeRecord(flipped, KindBucketStream, "the-key", true); err == nil {
		t.Fatal("full verify missed the payload flip")
	}
}
