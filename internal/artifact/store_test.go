package artifact

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestStoreGetPut(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindReplayBuffer, "k1"); ok {
		t.Fatal("hit on an empty store")
	}
	if err := s.Put(KindReplayBuffer, "k1", []byte("payload-1")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(KindReplayBuffer, "k1")
	if !ok || !bytes.Equal(got, []byte("payload-1")) {
		t.Fatalf("Get after Put: ok=%v payload=%q", ok, got)
	}
	// Same key under a different kind is a distinct entry.
	if _, ok := s.Get(KindAnnotatedStream, "k1"); ok {
		t.Fatal("kind does not separate the address space")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.VerifyFails != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
	if st.ResidentBytes == 0 {
		t.Fatal("resident bytes not tracked")
	}
}

// TestStoreCorruptRecordDeleted: a record that fails verification is
// removed from disk and counted, and the slot is reusable.
func TestStoreCorruptRecordDeleted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindBucketStream, "key", []byte("good payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fileName(KindBucketStream, "key"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindBucketStream, "key"); ok {
		t.Fatal("corrupt record served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt record not deleted: %v", err)
	}
	st := s.Stats()
	if st.VerifyFails != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 verify fail counted as a miss", st)
	}
	// Regeneration path: Put again, Get serves the fresh bytes.
	if err := s.Put(KindBucketStream, "key", []byte("regenerated")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(KindBucketStream, "key"); !ok || string(got) != "regenerated" {
		t.Fatalf("regenerated record not served: ok=%v %q", ok, got)
	}
}

// TestStoreEvictsLRU: with a budget that holds two records, touching the
// older one flips the eviction order — the untouched record goes first.
func TestStoreEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte{1}, 1000)
	rec := uint64(len(EncodeRecord(KindReplayBuffer, "a", payload)))
	s, err := Open(dir, 2*rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindReplayBuffer, "a", payload); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // order lastUse stamps
	if err := s.Put(KindReplayBuffer, "b", payload); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	if _, ok := s.Get(KindReplayBuffer, "a"); !ok { // refresh a's recency
		t.Fatal("record a missing before eviction")
	}
	time.Sleep(2 * time.Millisecond)
	if err := s.Put(KindReplayBuffer, "c", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindReplayBuffer, "b"); ok {
		t.Fatal("least-recently-used record b survived eviction")
	}
	if _, ok := s.Get(KindReplayBuffer, "a"); !ok {
		t.Fatal("recently-used record a evicted")
	}
	if _, ok := s.Get(KindReplayBuffer, "c"); !ok {
		t.Fatal("newest record c evicted")
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.ResidentBytes > 2*rec {
		t.Fatalf("resident %d exceeds budget %d", st.ResidentBytes, 2*rec)
	}
}

// TestStoreReopenIndex: a fresh Open over an existing directory serves the
// old records and enforces the budget immediately.
func TestStoreReopenIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindAnnotatedStream, "persisted", []byte("across processes")); err != nil {
		t.Fatal(err)
	}
	want := s.Stats().ResidentBytes

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(KindAnnotatedStream, "persisted"); !ok || string(got) != "across processes" {
		t.Fatalf("reopened store lost the record: ok=%v %q", ok, got)
	}
	if got := s2.Stats().ResidentBytes; got != want {
		t.Fatalf("rescanned resident bytes = %d, want %d", got, want)
	}

	// Reopen with a budget of one byte: everything evicts at Open.
	s3, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st := s3.Stats(); st.ResidentBytes != 0 || st.Evictions == 0 {
		t.Fatalf("over-budget reopen kept records: %+v", st)
	}
	if _, ok := s3.Get(KindAnnotatedStream, "persisted"); ok {
		t.Fatal("evicted record still served")
	}
}

func TestStoreDrop(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindReplayBuffer, "k", []byte("p")); err != nil {
		t.Fatal(err)
	}
	s.Drop(KindReplayBuffer, "k")
	if _, ok := s.Get(KindReplayBuffer, "k"); ok {
		t.Fatal("dropped record still served")
	}
	if st := s.Stats(); st.VerifyFails != 1 {
		t.Fatalf("Drop did not count a verify failure: %+v", st)
	}
}

// TestStoreCrossProcessContention models two processes sharing one artifact
// directory: two independent Store instances (separate indexes, one disk)
// doing concurrent Puts and Gets over the same key set. Every record must
// survive (no lost renames), every Get must serve the correct bytes or a
// benign miss, and afterwards each instance's resident accounting — and a
// fresh scan's — must equal the actual bytes on disk, counted once.
// Run under -race in CI's engine shard.
func TestStoreCrossProcessContention(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}

	const keys = 16
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte(i)}, 64+i)
	}
	key := func(i int) string { return fmt.Sprintf("contended-%d", i) }

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		s := a
		if g%2 == 1 {
			s = b
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				for i := 0; i < keys; i++ {
					k := (i*7 + g*3 + round) % keys // jitter the order per goroutine
					if err := s.Put(KindReplayBuffer, key(k), payload(k)); err != nil {
						t.Errorf("Put %d: %v", k, err)
					}
					if got, ok := s.Get(KindReplayBuffer, key(k)); ok && !bytes.Equal(got, payload(k)) {
						t.Errorf("Get %d served wrong bytes", k)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// No lost records: both instances serve every key.
	for i := 0; i < keys; i++ {
		for name, s := range map[string]*Store{"a": a, "b": b} {
			got, ok := s.Get(KindReplayBuffer, key(i))
			if !ok || !bytes.Equal(got, payload(i)) {
				t.Fatalf("store %s lost key %d: ok=%v", name, i, ok)
			}
		}
	}

	// No double-counted resident bytes: each instance indexed every record
	// exactly once, agreeing with the bytes actually on disk.
	var onDisk uint64
	files, err := filepath.Glob(filepath.Join(dir, "*"+artExt))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != keys {
		t.Fatalf("%d record files on disk, want %d", len(files), keys)
	}
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		onDisk += uint64(info.Size())
	}
	for name, s := range map[string]*Store{"a": a, "b": b} {
		if got := s.Stats().ResidentBytes; got != onDisk {
			t.Errorf("store %s resident = %d, want %d (on disk)", name, got, onDisk)
		}
	}
	fresh, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := fresh.Stats().ResidentBytes; got != onDisk {
		t.Errorf("fresh scan resident = %d, want %d", got, onDisk)
	}
	if temps, _ := filepath.Glob(filepath.Join(dir, tmpPrefix+"*")); len(temps) != 0 {
		t.Errorf("contention leaked temp files: %v", temps)
	}
}

// TestStoreContentionWithGC adds cross-process GC to the mix: one writer
// keeps publishing while a second instance under a tiny budget keeps
// evicting the same files. Rename/unlink races must stay benign — Gets
// serve correct bytes or miss, nothing errors, no temp files remain.
func TestStoreContentionWithGC(t *testing.T) {
	dir := t.TempDir()
	writer, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 256)
	rec := uint64(len(EncodeRecord(KindBucketStream, "gc-0", payload)))
	collector, err := Open(dir, 2*rec)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for round := 0; round < 8; round++ {
			for i := 0; i < 8; i++ {
				k := fmt.Sprintf("gc-%d", i)
				if err := writer.Put(KindBucketStream, k, payload); err != nil {
					t.Errorf("writer Put: %v", err)
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for round := 0; round < 8; round++ {
			for i := 0; i < 8; i++ {
				k := fmt.Sprintf("gc-%d", i)
				// The collector adopts records it sees (over budget, evicts)
				// and misses ones GC'd out from under it; both are benign.
				if got, ok := collector.Get(KindBucketStream, k); ok && !bytes.Equal(got, payload) {
					t.Errorf("collector served wrong bytes for %s", k)
				}
			}
		}
	}()
	wg.Wait()

	if temps, _ := filepath.Glob(filepath.Join(dir, tmpPrefix+"*")); len(temps) != 0 {
		t.Errorf("GC contention leaked temp files: %v", temps)
	}
	// Both instances remain healthy: no degraded flags, no op errors from
	// the benign races (losing a file to the other process's GC is a clean
	// miss, not a fault).
	for name, s := range map[string]*Store{"writer": writer, "collector": collector} {
		if st := s.Stats(); st.Degraded || st.OpErrors != 0 {
			t.Errorf("store %s unhealthy after benign races: %+v", name, st)
		}
	}
}

// TestDefaultStore: the package default is a nil-safe indirection — Get
// misses, Put discards, and Report is zero until a store is installed.
func TestDefaultStore(t *testing.T) {
	if Default() != nil {
		t.Fatal("default store unexpectedly set")
	}
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	SetDefault(s)
	defer SetDefault(nil)
	if Default() != s {
		t.Fatal("SetDefault did not install the store")
	}
	if err := Default().Put(KindReplayBuffer, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := Report(); got.Misses != 0 || got.ResidentBytes == 0 {
		t.Fatalf("Report = %+v", got)
	}
}

// TestStoreVerifyFirstReadThenCheap pins the verification-cost contract:
// the first read of a record in a process pays the full checksum sweep and
// marks the entry; repeat reads skip the CRC (a payload bit flipped after
// that first read is deliberately not seen — the documented tradeoff); and
// the first fault of any kind restores full verification for every
// subsequent read, which then catches the flip and deletes the record.
func TestStoreVerifyFirstReadThenCheap(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	const key = "cheap"
	if err := s.Put(KindReplayBuffer, key, []byte("payload under test")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindReplayBuffer, key); !ok {
		t.Fatal("first read missed")
	}
	// Flip one payload bit on disk, past the header and embedded key so only
	// the checksum could catch it.
	path := filepath.Join(dir, fileName(KindReplayBuffer, key))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[recordHeaderLen+len(key)+3] ^= 0x01
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	// Repeat read: the record was verified this process, so the CRC is
	// skipped and the flip is not seen.
	if _, ok := s.Get(KindReplayBuffer, key); !ok {
		t.Fatal("repeat read of a verified record should serve on the cheap path")
	}
	if st := s.Stats(); st.VerifyFails != 0 {
		t.Fatalf("cheap path counted a verify fail: %+v", st)
	}
	// First fault: a fresh record corrupted before its first read. That read
	// full-verifies (first read per process), fails, and trips the store into
	// verify-everything mode.
	if err := s.Put(KindReplayBuffer, "other", []byte("other payload")); err != nil {
		t.Fatal(err)
	}
	opath := filepath.Join(dir, fileName(KindReplayBuffer, "other"))
	odata, err := os.ReadFile(opath)
	if err != nil {
		t.Fatal(err)
	}
	odata[len(odata)-1] ^= 0x80
	if err := os.WriteFile(opath, odata, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindReplayBuffer, "other"); ok {
		t.Fatal("corrupt first read served")
	}
	// With a fault on the books, the previously verified record is swept in
	// full again — the flipped bit is caught now, fail-closed.
	if _, ok := s.Get(KindReplayBuffer, key); ok {
		t.Fatal("post-fault read skipped the checksum")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt record not deleted after post-fault verify: %v", err)
	}
	if st := s.Stats(); st.VerifyFails != 2 {
		t.Fatalf("stats = %+v, want 2 verify fails", st)
	}
}

// TestStoreStrictAlwaysVerifies: a strict store never takes the cheap path,
// so a bit flip after a verified read is still caught on the next read.
func TestStoreStrictAlwaysVerifies(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	const key = "strict"
	if err := s.Put(KindReplayBuffer, key, []byte("strict payload")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindReplayBuffer, key); !ok {
		t.Fatal("first read missed")
	}
	path := filepath.Join(dir, fileName(KindReplayBuffer, key))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[recordHeaderLen+len(key)+1] ^= 0x10
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindReplayBuffer, key); ok {
		t.Fatal("strict store served a corrupt record on a repeat read")
	}
	if st := s.Stats(); st.VerifyFails != 1 {
		t.Fatalf("stats = %+v, want 1 verify fail", st)
	}
	// Corruption is regenerable, not an I/O fault: the strict store stays
	// usable and Err stays nil.
	if err := s.Err(); err != nil {
		t.Fatalf("verify failure pinned as a strict I/O error: %v", err)
	}
}
