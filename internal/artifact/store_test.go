package artifact

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestStoreGetPut(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindReplayBuffer, "k1"); ok {
		t.Fatal("hit on an empty store")
	}
	if err := s.Put(KindReplayBuffer, "k1", []byte("payload-1")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(KindReplayBuffer, "k1")
	if !ok || !bytes.Equal(got, []byte("payload-1")) {
		t.Fatalf("Get after Put: ok=%v payload=%q", ok, got)
	}
	// Same key under a different kind is a distinct entry.
	if _, ok := s.Get(KindAnnotatedStream, "k1"); ok {
		t.Fatal("kind does not separate the address space")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.VerifyFails != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
	if st.ResidentBytes == 0 {
		t.Fatal("resident bytes not tracked")
	}
}

// TestStoreCorruptRecordDeleted: a record that fails verification is
// removed from disk and counted, and the slot is reusable.
func TestStoreCorruptRecordDeleted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindBucketStream, "key", []byte("good payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fileName(KindBucketStream, "key"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindBucketStream, "key"); ok {
		t.Fatal("corrupt record served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt record not deleted: %v", err)
	}
	st := s.Stats()
	if st.VerifyFails != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 verify fail counted as a miss", st)
	}
	// Regeneration path: Put again, Get serves the fresh bytes.
	if err := s.Put(KindBucketStream, "key", []byte("regenerated")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(KindBucketStream, "key"); !ok || string(got) != "regenerated" {
		t.Fatalf("regenerated record not served: ok=%v %q", ok, got)
	}
}

// TestStoreEvictsLRU: with a budget that holds two records, touching the
// older one flips the eviction order — the untouched record goes first.
func TestStoreEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte{1}, 1000)
	rec := uint64(len(EncodeRecord(KindReplayBuffer, "a", payload)))
	s, err := Open(dir, 2*rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindReplayBuffer, "a", payload); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // order lastUse stamps
	if err := s.Put(KindReplayBuffer, "b", payload); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	if _, ok := s.Get(KindReplayBuffer, "a"); !ok { // refresh a's recency
		t.Fatal("record a missing before eviction")
	}
	time.Sleep(2 * time.Millisecond)
	if err := s.Put(KindReplayBuffer, "c", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindReplayBuffer, "b"); ok {
		t.Fatal("least-recently-used record b survived eviction")
	}
	if _, ok := s.Get(KindReplayBuffer, "a"); !ok {
		t.Fatal("recently-used record a evicted")
	}
	if _, ok := s.Get(KindReplayBuffer, "c"); !ok {
		t.Fatal("newest record c evicted")
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.ResidentBytes > 2*rec {
		t.Fatalf("resident %d exceeds budget %d", st.ResidentBytes, 2*rec)
	}
}

// TestStoreReopenIndex: a fresh Open over an existing directory serves the
// old records and enforces the budget immediately.
func TestStoreReopenIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindAnnotatedStream, "persisted", []byte("across processes")); err != nil {
		t.Fatal(err)
	}
	want := s.Stats().ResidentBytes

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(KindAnnotatedStream, "persisted"); !ok || string(got) != "across processes" {
		t.Fatalf("reopened store lost the record: ok=%v %q", ok, got)
	}
	if got := s2.Stats().ResidentBytes; got != want {
		t.Fatalf("rescanned resident bytes = %d, want %d", got, want)
	}

	// Reopen with a budget of one byte: everything evicts at Open.
	s3, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st := s3.Stats(); st.ResidentBytes != 0 || st.Evictions == 0 {
		t.Fatalf("over-budget reopen kept records: %+v", st)
	}
	if _, ok := s3.Get(KindAnnotatedStream, "persisted"); ok {
		t.Fatal("evicted record still served")
	}
}

func TestStoreDrop(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindReplayBuffer, "k", []byte("p")); err != nil {
		t.Fatal(err)
	}
	s.Drop(KindReplayBuffer, "k")
	if _, ok := s.Get(KindReplayBuffer, "k"); ok {
		t.Fatal("dropped record still served")
	}
	if st := s.Stats(); st.VerifyFails != 1 {
		t.Fatalf("Drop did not count a verify failure: %+v", st)
	}
}

// TestDefaultStore: the package default is a nil-safe indirection — Get
// misses, Put discards, and Report is zero until a store is installed.
func TestDefaultStore(t *testing.T) {
	if Default() != nil {
		t.Fatal("default store unexpectedly set")
	}
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	SetDefault(s)
	defer SetDefault(nil)
	if Default() != s {
		t.Fatal("SetDefault did not install the store")
	}
	if err := Default().Put(KindReplayBuffer, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := Report(); got.Misses != 0 || got.ResidentBytes == 0 {
		t.Fatalf("Report = %+v", got)
	}
}
