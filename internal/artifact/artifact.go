// Package artifact is the engine's durable cache tier: a content-addressed,
// disk-backed store that persists the expensive simulation and analysis
// intermediates — materialized replay buffers (internal/trace), annotated
// streams and bucket streams (internal/sim), and sorted confidence curves
// (internal/exp) — across process runs.
//
// The in-memory tiers (the materialize memo in internal/workload and the
// annotated/bucket byteLRUs in internal/sim) make intra-process reuse nearly
// free, but every process invocation still pays the full cold path before
// they help: the synthetic walk per benchmark and one predictor pass per
// (benchmark, predictor config). This package turns that into a warm start:
// each in-memory miss path consults the store before regenerating, and
// publishes what it built afterwards, so a second `paperrepro` run against
// the same artifact directory skips stages 0–2 entirely.
//
// Entries are keyed by a canonical string covering everything the payload is
// a pure function of — the workload spec, the branch budget, the predictor
// key or table geometry key, and the codec format version — and addressed on
// disk by the SHA-256 of (kind, key). Every record embeds the full key and a
// checksum, so a hash collision or a corrupted file can never serve a wrong
// stream: loads verify and, on any mismatch, delete the entry and fall back
// to regeneration. Corruption costs time, never correctness. The checksum
// sweep itself is paid once per record per process — the first read verifies
// in full and marks the index entry; repeat reads re-check only the framing
// and the embedded key — except on a strict store, or once the store has
// seen any fault (a failed op or a failed verify), after which every read
// verifies in full again.
//
// Consistency relies on the usual POSIX building blocks: writes go through a
// temp file in the store directory followed by an atomic rename, so
// concurrent processes racing on one key settle on one complete record
// (both wrote identical bytes anyway — payloads are pure functions of the
// key). In-process, single-flight dedup is inherited from the in-memory
// tiers: the store is only consulted from their owner (miss) paths, so
// concurrent workers under -parallel generate and persist an artifact once.
//
// The tier is fail-soft: it runs on a narrow filesystem seam (FS, production
// implementation OSFS, fault-injecting implementation in internal/faultfs),
// classifies every I/O failure as transient or permanent, retries the
// transient ones, and trips a health breaker into in-memory-only degraded
// mode when the disk keeps failing — a flaky or full disk costs warm starts,
// never correctness and never the run. Crashed writers' temp files are swept
// at the next Open. Strict stores (Options.Strict, paperrepro
// -artifact-strict) instead pin the first classified failure for the caller
// to fail hard on. See health.go.
package artifact

import "sync/atomic"

// Kinds partition the key space per payload codec. The kind is hashed into
// the on-disk address and checked on load, so two artifact types can never
// alias even if their key strings collide.
const (
	// KindReplayBuffer is a materialized trace.ReplayBuffer.
	KindReplayBuffer uint16 = 1
	// KindAnnotatedStream is a sim.AnnotatedStream (mispredict bits plus
	// the optional pre-update predictor-state lane).
	KindAnnotatedStream uint16 = 2
	// KindBucketStream is a sim.BucketStream (packed per-branch bucket lane
	// plus the geometry's base histogram).
	KindBucketStream uint16 = 3
	// KindCurve is a sorted analysis.Curve, keyed by the content hash of
	// the per-run tallies it derives from plus the reduction parameters
	// (internal/exp).
	KindCurve uint16 = 4
	// KindModelStats is a cycle-model count vector (internal/pipeline and
	// internal/apps machines), keyed by the model's full parameterisation
	// and version (internal/exp).
	KindModelStats uint16 = 5
	// KindCheckpoint is a sim.Checkpoint: the serialized predictor or
	// factor-walk state at a streaming segment boundary, keyed by the
	// (spec, budget, predictor[, geometry]) unit and the boundary branch
	// position (internal/sim).
	KindCheckpoint uint16 = 6
	// KindPartial is one fan-out shard's partial report — the rendered
	// sections and scalars for its slice of the (experiment, benchmark)
	// matrix — keyed by the canonical request, the shard coordinates, and
	// the partial codec version (internal/serve). Workers publish partials
	// here (and so into the shared remote tier) for the coordinator's
	// registry-order merge.
	KindPartial uint16 = 7
)

// TierStats is the uniform observability quad every cache tier reports
// (trace memo, annotated LRU, bucket LRU, disk store), plus the disk tier's
// health columns — verify failures, operation errors, and the degraded
// flag — which stay zero for in-memory tiers: they have no payload
// integrity to check and no disk to fail.
type TierStats struct {
	Hits, Misses  uint64
	Evictions     uint64
	ResidentBytes uint64
	VerifyFails   uint64
	// OpErrors counts filesystem operations that failed after retry —
	// the raw signal behind the health breaker.
	OpErrors uint64
	// Degraded reports that the tier has tripped its breaker (or failed a
	// strict open) and is no longer touching its backing disk.
	Degraded bool
}

// defaultStore is the process-wide store consulted by the engine's miss
// paths; nil disables the disk tier.
var defaultStore atomic.Pointer[Store]

// SetDefault installs (or, with nil, removes) the process-wide store.
func SetDefault(s *Store) { defaultStore.Store(s) }

// Default returns the process-wide store, or nil when the disk tier is
// disabled.
func Default() *Store { return defaultStore.Load() }

// Report returns the default store's counters, or a zero quad when the disk
// tier is disabled.
func Report() TierStats {
	if s := Default(); s != nil {
		return s.Stats()
	}
	return TierStats{}
}

// RemoteReport returns the default store's remote-tier counters, or a zero
// quad when no remote tier is configured. In this tier's row the uniform
// quad is remapped where the disk columns have no network meaning:
// ResidentBytes counts record bytes moved over the wire (both directions)
// and Evictions counts write-behind Puts shed by a full queue or a
// degraded tier.
func RemoteReport() TierStats {
	if s := Default(); s != nil {
		return s.RemoteStats()
	}
	return TierStats{}
}
