package artifact

import (
	"errors"
	"fmt"
	"syscall"
)

// Failure handling for the disk tier. Every filesystem operation the store
// performs is classified, retried when that might help, and counted against
// a health breaker, so that an unreliable disk degrades the tier instead of
// wedging or corrupting a run:
//
//   - transient faults (flaky media, interrupted syscalls) get a bounded
//     number of immediate retries;
//   - any operation still failing after retries bumps OpErrors and the
//     breaker's consecutive-failure count;
//   - breakerTrip consecutive failed operations trip the store into
//     degraded mode — every Get is a miss, every Put a no-op, and the disk
//     is never touched again for the life of the store — unless the store
//     was opened Strict, in which case the first failed operation records a
//     sticky classified error for the caller to surface as a hard failure.
//
// The in-memory tiers above the store are complete without it, so degraded
// mode costs warm starts, never correctness.

// errClass partitions store I/O failures by how the store should react.
type errClass int

const (
	// classTransient faults may succeed on an immediate retry: interrupted
	// syscalls, contended files, flaky media reporting EIO.
	classTransient errClass = iota
	// classPermanent faults will keep failing until an operator intervenes:
	// full disks, permission errors, read-only remounts. Never retried.
	classPermanent
)

// String names the class for classified error messages and tests.
func (c errClass) String() string {
	if c == classTransient {
		return "transient"
	}
	return "permanent"
}

// transientErrnos are retried; everything else is permanent. EIO is listed
// deliberately: real disks surface recoverable media hiccups as EIO, and a
// wrong guess only costs retryAttempts-1 extra syscalls before the breaker
// logic takes over anyway.
var transientErrnos = []error{
	syscall.EINTR,
	syscall.EAGAIN,
	syscall.EBUSY,
	syscall.EIO,
	syscall.ETIMEDOUT,
}

// classify maps one store I/O failure to its class. Unknown errors are
// permanent: retrying what we cannot name is how stores wedge.
func classify(err error) errClass {
	for _, t := range transientErrnos {
		if errors.Is(err, t) {
			return classTransient
		}
	}
	return classPermanent
}

const (
	// retryAttempts is the total number of tries a transient fault gets
	// before it counts as a failed operation.
	retryAttempts = 3
	// breakerTrip is the number of consecutive failed operations (post
	// retry) that trips a non-strict store into degraded mode. Any
	// successful disk operation resets the count.
	breakerTrip = 3
)

// ErrDegraded reports that the store has tripped its health breaker and now
// runs in-memory-only: Gets miss, Puts discard. Callers treating the store
// as best effort need not check for it; Put returns it so tests and strict
// tooling can tell a degraded discard from a successful write.
var ErrDegraded = errors.New("artifact: store degraded, disk tier disabled")

// classifiedError wraps a store failure with its class for strict-mode
// surfacing; errors.Is still matches the underlying errno.
func classifiedError(op string, err error) error {
	return fmt.Errorf("artifact: %s store failure (%s): %w", classify(err), op, err)
}
