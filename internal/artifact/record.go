package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
)

// The on-disk record format, version 1. One artifact file is exactly one
// record:
//
//	offset  size  field
//	0       4     magic "BCA1"
//	4       2     format version (little-endian)
//	6       2     kind
//	8       4     key length K
//	12      8     payload length P
//	20      K     key bytes (the full canonical key, not its hash)
//	20+K    P     payload bytes
//	20+K+P  8     CRC-64/ECMA over bytes [0, 20+K+P)
//
// Every field is length-prefixed and the checksum covers header, key and
// payload, so truncation, bit flips and cross-kind or cross-key aliasing all
// fail closed with ErrCorrupt: a decode can return the original payload or
// an error, never a different stream.

// FormatVersion is the artifact codec version. It participates in both the
// record header and (by convention) the callers' key strings; bump it when
// any payload codec or key canonicalization changes shape.
const FormatVersion = 1

var recordMagic = [4]byte{'B', 'C', 'A', '1'}

// recordHeaderLen is the fixed prefix before the key bytes.
const recordHeaderLen = 4 + 2 + 2 + 4 + 8

// recordOverhead is the non-payload cost of a record with a key of length k.
func recordOverhead(k int) int { return recordHeaderLen + k + 8 }

// ErrCorrupt reports that a record failed structural or checksum
// verification. The store treats it as a cache miss: the entry is deleted
// and the artifact regenerated.
var ErrCorrupt = errors.New("artifact: corrupt record")

// crcTable is the ECMA polynomial table shared by encode and decode.
var crcTable = crc64.MakeTable(crc64.ECMA)

// EncodeRecord frames payload as one versioned, checksummed record for
// (kind, key).
func EncodeRecord(kind uint16, key string, payload []byte) []byte {
	buf := make([]byte, 0, recordOverhead(len(key))+len(payload))
	buf = append(buf, recordMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, FormatVersion)
	buf = binary.LittleEndian.AppendUint16(buf, kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, key...)
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint64(buf, crc64.Checksum(buf, crcTable))
}

// DecodeRecord verifies data as a record for (kind, key) and returns its
// payload (aliasing data's backing array). Any mismatch — magic, version,
// kind, key, lengths, or checksum — returns an error wrapping ErrCorrupt.
// Decode and verification are one pass: every header field is checked as it
// is parsed and the checksum is a single CRC sweep over the whole record.
func DecodeRecord(data []byte, kind uint16, key string) ([]byte, error) {
	return decodeRecord(data, kind, key, true)
}

// decodeRecord is DecodeRecord with the checksum sweep made optional. With
// checksum false only the CRC is skipped: magic, version, kind, lengths and
// the full key comparison still run, so cross-kind and cross-key aliasing
// stay fail-closed even on the cheap path. The store uses the cheap path for
// records it has already verified once this process (see Store.get).
func decodeRecord(data []byte, kind uint16, key string, checksum bool) ([]byte, error) {
	gotKind, gotKey, payload, err := decodeRecordAny(data, checksum)
	if err != nil {
		return nil, err
	}
	if gotKind != kind {
		return nil, fmt.Errorf("%w: kind %d, want %d", ErrCorrupt, gotKind, kind)
	}
	if gotKey != key {
		return nil, fmt.Errorf("%w: key mismatch", ErrCorrupt)
	}
	return payload, nil
}

// RecordInfo structurally verifies data as a record — including the full
// checksum sweep — without expecting a particular identity, and returns the
// embedded kind and key. The remote object server uses it to authenticate a
// PUT body: the record carries its own identity, so the server can recompute
// the content address and refuse a record published under the wrong one.
func RecordInfo(data []byte) (kind uint16, key string, err error) {
	kind, key, _, err = decodeRecordAny(data, true)
	return kind, key, err
}

// decodeRecordAny parses and verifies one record's framing (and, when
// checksum is set, its CRC), returning the embedded identity and the payload
// (aliasing data's backing array).
func decodeRecordAny(data []byte, checksum bool) (kind uint16, key string, payload []byte, err error) {
	if len(data) < recordOverhead(0) {
		return 0, "", nil, fmt.Errorf("%w: %d bytes, below minimum record size", ErrCorrupt, len(data))
	}
	if [4]byte(data[0:4]) != recordMagic {
		return 0, "", nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != FormatVersion {
		return 0, "", nil, fmt.Errorf("%w: format version %d, want %d", ErrCorrupt, v, FormatVersion)
	}
	kind = binary.LittleEndian.Uint16(data[6:8])
	keyLen := int(binary.LittleEndian.Uint32(data[8:12]))
	payLen := binary.LittleEndian.Uint64(data[12:20])
	// Check the total length with overflow-safe arithmetic: payLen is
	// attacker- (well, bit-flip-) controlled and must not wrap the sum.
	rest := uint64(len(data) - recordHeaderLen - 8)
	if uint64(keyLen) > rest || payLen != rest-uint64(keyLen) {
		return 0, "", nil, fmt.Errorf("%w: lengths (key %d, payload %d) disagree with record size %d", ErrCorrupt, keyLen, payLen, len(data))
	}
	if checksum {
		body := data[:len(data)-8]
		if got, want := crc64.Checksum(body, crcTable), binary.LittleEndian.Uint64(data[len(data)-8:]); got != want {
			return 0, "", nil, fmt.Errorf("%w: checksum %#x, want %#x", ErrCorrupt, got, want)
		}
	}
	return kind, string(data[recordHeaderLen : recordHeaderLen+keyLen]), data[recordHeaderLen+keyLen : len(data)-8], nil
}
