package artifact

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"
)

// Store is a content-addressed artifact directory. Every entry is one
// record file named by the SHA-256 of (kind, key); an access-time-tracked
// index drives LRU garbage collection against a disk budget.
//
// A Store is safe for concurrent use by any number of goroutines, and the
// directory is safe to share between processes: writes are temp-file +
// atomic-rename, loads verify the record checksum, and a reader that loses
// a race with GC simply sees a miss.
type Store struct {
	dir    string
	budget uint64 // resident-bytes bound; 0 = unbounded

	mu       sync.Mutex
	index    map[string]*storeEntry // file name -> size and last use
	resident uint64

	hits, misses, verifyFails, evictions uint64
}

// bump increments one counter under the store mutex.
func (s *Store) bump(c *uint64) { s.mu.Lock(); *c++; s.mu.Unlock() }

// storeEntry tracks one on-disk record for the LRU index.
type storeEntry struct {
	size    uint64
	lastUse time.Time
}

// Open opens (creating if necessary) the artifact directory and builds the
// LRU index from the records already present, seeding each entry's last-use
// time from the file's modification time — Get refreshes it on every hit,
// both in the index and on disk, so recency survives process restarts. A
// nonzero budget bounds the directory's resident bytes; opening an
// over-budget directory evicts immediately.
func Open(dir string, budgetBytes uint64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("artifact: opening store: %w", err)
	}
	s := &Store{dir: dir, budget: budgetBytes, index: make(map[string]*storeEntry)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("artifact: scanning store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != artExt {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with another process's GC
		}
		s.index[e.Name()] = &storeEntry{size: uint64(info.Size()), lastUse: info.ModTime()}
		s.resident += uint64(info.Size())
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// artExt marks record files; anything else in the directory is ignored.
const artExt = ".art"

// fileName derives the content address for (kind, key).
func fileName(kind uint16, key string) string {
	h := sha256.New()
	var k [2]byte
	binary.LittleEndian.PutUint16(k[:], kind)
	h.Write(k[:])
	h.Write([]byte(key))
	return hex.EncodeToString(h.Sum(nil)) + artExt
}

// Get returns the payload stored for (kind, key), or ok == false on a miss.
// A record that fails verification is deleted and reported as a miss (after
// bumping the verify-fail counter); the caller regenerates and re-Puts.
func (s *Store) Get(kind uint16, key string) (payload []byte, ok bool) {
	pprof.Do(context.Background(), pprof.Labels("stage", "artifact-load"), func(context.Context) {
		payload, ok = s.get(kind, key)
	})
	return payload, ok
}

func (s *Store) get(kind uint16, key string) ([]byte, bool) {
	name := fileName(kind, key)
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		s.bump(&s.misses)
		return nil, false
	}
	payload, err := DecodeRecord(data, kind, key)
	if err != nil {
		s.mu.Lock()
		s.verifyFails++
		s.misses++
		s.mu.Unlock()
		s.remove(name)
		return nil, false
	}
	now := time.Now()
	s.mu.Lock()
	s.hits++
	if e := s.index[name]; e != nil {
		e.lastUse = now
	} else {
		// Another process wrote the record after our Open scan; adopt it.
		s.index[name] = &storeEntry{size: uint64(len(data)), lastUse: now}
		s.resident += uint64(len(data))
	}
	s.mu.Unlock()
	// Persist the access time as the file mtime so a future process's index
	// scan sees today's recency. Best effort: a failure only ages the entry.
	_ = os.Chtimes(filepath.Join(s.dir, name), now, now)
	return payload, true
}

// Put persists payload for (kind, key) through a temp file and an atomic
// rename, then applies the disk budget. Races between processes are benign:
// both writers hold identical bytes (payloads are pure functions of the
// key), and rename makes whichever lands last the single complete record.
func (s *Store) Put(kind uint16, key string, payload []byte) (err error) {
	pprof.Do(context.Background(), pprof.Labels("stage", "artifact-store"), func(context.Context) {
		err = s.put(kind, key, payload)
	})
	return err
}

func (s *Store) put(kind uint16, key string, payload []byte) error {
	record := EncodeRecord(kind, key, payload)
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: staging record: %w", err)
	}
	_, werr := tmp.Write(record)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: staging record: %w", joinErr(werr, cerr))
	}
	name := fileName(kind, key)
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: publishing record: %w", err)
	}
	s.mu.Lock()
	if e := s.index[name]; e != nil {
		s.resident -= e.size
	}
	s.index[name] = &storeEntry{size: uint64(len(record)), lastUse: time.Now()}
	s.resident += uint64(len(record))
	s.evictLocked()
	s.mu.Unlock()
	return nil
}

// joinErr returns the first non-nil error (Put's staging failure detail).
func joinErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// remove deletes one record file and drops it from the index (used for
// verify failures and eviction victims).
func (s *Store) remove(name string) {
	s.mu.Lock()
	if e := s.index[name]; e != nil {
		s.resident -= e.size
		delete(s.index, name)
	}
	s.mu.Unlock()
	_ = os.Remove(filepath.Join(s.dir, name))
}

// evictLocked deletes records least-recently-used first until resident
// bytes fit the budget. Deleting under mu keeps the index and counters
// coherent; an open reader elsewhere keeps its already-opened bytes (POSIX
// unlink), it just misses next time.
func (s *Store) evictLocked() {
	if s.budget == 0 {
		return
	}
	for s.resident > s.budget && len(s.index) > 0 {
		var victim string
		var oldest time.Time
		for name, e := range s.index {
			if victim == "" || e.lastUse.Before(oldest) {
				victim, oldest = name, e.lastUse
			}
		}
		s.resident -= s.index[victim].size
		delete(s.index, victim)
		s.evictions++
		_ = os.Remove(filepath.Join(s.dir, victim))
	}
}

// Drop deletes the record for (kind, key), counting it as a verify failure.
// Callers use it when a payload that passed record verification still fails
// its type-level decode — possible only under a codec bug or an
// astronomically unlikely checksum collision, but fail-closed is cheap.
func (s *Store) Drop(kind uint16, key string) {
	s.bump(&s.verifyFails)
	s.remove(fileName(kind, key))
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the store's observability counters. ResidentBytes counts
// whole record files (payload plus framing), matching what the disk budget
// governs.
func (s *Store) Stats() TierStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return TierStats{
		Hits:          s.hits,
		Misses:        s.misses,
		Evictions:     s.evictions,
		ResidentBytes: s.resident,
		VerifyFails:   s.verifyFails,
	}
}
