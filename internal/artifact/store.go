package artifact

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"time"
)

// Store is a content-addressed artifact directory. Every entry is one
// record file named by the SHA-256 of (kind, key); an access-time-tracked
// index drives LRU garbage collection against a disk budget.
//
// A Store is safe for concurrent use by any number of goroutines, and the
// directory is safe to share between processes: writes are temp-file +
// atomic-rename, loads verify the record checksum (in full on the first read
// per process, framing-and-key-only after — see get), and a reader that
// loses a race with GC simply sees a miss.
//
// A Store is also fail-soft (see health.go): filesystem faults are
// classified and retried, and repeated failures trip a breaker that turns
// the store into an in-memory-only no-op for the rest of the process —
// degradation is observable in Stats, never fatal to the run. Opening with
// Options.Strict inverts that: the first failed operation is recorded as a
// sticky error (Err) for the caller to fail hard on.
type Store struct {
	dir    string
	budget uint64 // resident-bytes bound; 0 = unbounded
	fs     FS
	strict bool

	mu       sync.Mutex
	index    map[string]*storeEntry // file name -> size and last use
	resident uint64

	hits, misses, verifyFails, evictions uint64

	// Health-breaker state (see health.go).
	opErrors    uint64
	consecFails int
	degraded    bool
	fatal       error // strict mode only: first classified failure
}

// bump increments one counter under the store mutex.
func (s *Store) bump(c *uint64) { s.mu.Lock(); *c++; s.mu.Unlock() }

// storeEntry tracks one on-disk record for the LRU index.
type storeEntry struct {
	size    uint64
	lastUse time.Time
	// verified records that this process has already checksummed the record
	// (a full-verify Get passed, or this process wrote it). Later Gets skip
	// the CRC sweep — structural and key checks still run — unless the store
	// is strict or has seen any fault (see Store.get). Entries indexed from
	// Open's directory scan start unverified, so the first read per process
	// always pays the full sweep.
	verified bool
}

// Options configures OpenStore beyond the directory path.
type Options struct {
	// Budget bounds the directory's resident bytes; 0 = unbounded.
	Budget uint64
	// Strict makes any classified filesystem failure sticky (see Err)
	// instead of degrading the store, so callers can fail hard.
	Strict bool
	// FS is the filesystem the store runs on; nil selects OSFS().
	FS FS
}

// Open opens (creating if necessary) the artifact directory on the real
// filesystem with default options. See OpenStore.
func Open(dir string, budgetBytes uint64) (*Store, error) {
	return OpenStore(dir, Options{Budget: budgetBytes})
}

// OpenStore opens (creating if necessary) the artifact directory and builds
// the LRU index from the records already present, seeding each entry's
// last-use time from the file's modification time — Get refreshes it on
// every hit, both in the index and on disk, so recency survives process
// restarts. A nonzero budget bounds the directory's resident bytes; opening
// an over-budget directory evicts immediately.
//
// Open also recovers from crashed writers: temp files older than orphanTTL
// are swept, so an interrupted Put can leak disk only until the next open.
//
// A directory that cannot be created or scanned is not fatal unless
// Options.Strict is set: the store opens already degraded (disk untouched,
// every Get a miss) so the run proceeds on the in-memory tiers alone.
func OpenStore(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS()
	}
	s := &Store{dir: dir, budget: opts.Budget, fs: fsys, strict: opts.Strict, index: make(map[string]*storeEntry)}
	if err := s.do("mkdir", func() error { return fsys.MkdirAll(dir, 0o777) }); err != nil {
		return s.openFailed()
	}
	var entries []fs.DirEntry
	if err := s.do("scan", func() error {
		var serr error
		entries, serr = fsys.ReadDir(dir)
		return serr
	}); err != nil {
		return s.openFailed()
	}
	now := time.Now()
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			// A crashed writer's staging file. Sweep it once it is old
			// enough that no live Put in another process can still own it;
			// younger temps are left for their writer (or the next open).
			info, err := e.Info()
			if err != nil || now.Sub(info.ModTime()) < orphanTTL {
				continue
			}
			_ = s.do("sweep", func() error { return fsys.Remove(filepath.Join(dir, name)) })
			continue
		}
		if filepath.Ext(name) != artExt {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with another process's GC
		}
		s.index[name] = &storeEntry{size: uint64(info.Size()), lastUse: info.ModTime()}
		s.resident += uint64(info.Size())
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// openFailed resolves a failed open (the failed do call already recorded
// the error): strict stores surface the sticky classified error; fail-soft
// stores open pre-degraded with a nil error so the engine runs on its
// in-memory tiers.
func (s *Store) openFailed() (*Store, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fatal != nil {
		return nil, s.fatal
	}
	s.degraded = true
	return s, nil
}

const (
	// artExt marks record files; anything else in the directory is ignored.
	artExt = ".art"
	// tmpPrefix marks staged writes (os.CreateTemp pattern tmpPrefix+"*").
	tmpPrefix = ".tmp-"
	// orphanTTL is how old a temp file must be before Open treats it as a
	// crashed writer's orphan and sweeps it. Generous against clock skew
	// and slow writers; a live Put stages and renames in well under this.
	orphanTTL = time.Hour
)

// diskOff reports whether the store may no longer touch the filesystem
// (breaker tripped, or a strict-mode failure recorded).
func (s *Store) diskOff() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded || s.fatal != nil
}

// do runs one idempotent filesystem operation under the store's failure
// policy: transient faults are retried up to retryAttempts times, a miss
// (fs.ErrNotExist) passes through without counting, and anything still
// failing is recorded against the breaker. Returns ErrDegraded without
// touching the disk once the store is off.
func (s *Store) do(op string, fn func() error) error {
	return s.run(op, retryAttempts, fn)
}

// doOnce is do without retry, for non-idempotent operations (writes on a
// file descriptor whose offset a failed attempt may have advanced).
func (s *Store) doOnce(op string, fn func() error) error {
	return s.run(op, 1, fn)
}

func (s *Store) run(op string, attempts int, fn func() error) error {
	if s.diskOff() {
		return ErrDegraded
	}
	var err error
	for try := 1; ; try++ {
		err = fn()
		if err == nil || errors.Is(err, fs.ErrNotExist) {
			return err
		}
		if try >= attempts || classify(err) != classTransient {
			break
		}
	}
	s.noteFailure(op, err)
	return err
}

// noteSuccess resets the breaker's consecutive-failure count. Called when
// a logical operation completes against the disk — a Get whose read
// returned record bytes, a Put whose record landed — not on every
// successful fs op, and not on a clean ErrNotExist miss: a Put whose
// CreateTemp works but whose Write keeps failing is a failing disk, and
// per-op (or per-miss) resets would let it evade the breaker forever.
func (s *Store) noteSuccess() {
	s.mu.Lock()
	s.consecFails = 0
	s.mu.Unlock()
}

// noteFailure records one failed operation (post retry): it always counts
// in OpErrors; a strict store pins it as the sticky fatal error, a
// fail-soft store trips into degraded mode after breakerTrip consecutive
// failures.
func (s *Store) noteFailure(op string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opErrors++
	s.consecFails++
	if s.strict {
		if s.fatal == nil {
			s.fatal = classifiedError(op, err)
		}
		return
	}
	if s.consecFails >= breakerTrip {
		s.degraded = true
	}
}

// Err returns the sticky classified failure of a store opened with
// Options.Strict, or nil. Fail-soft stores always return nil; their health
// is visible in Stats (Degraded, OpErrors) instead.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fatal
}

// fileName derives the content address for (kind, key).
func fileName(kind uint16, key string) string {
	h := sha256.New()
	var k [2]byte
	binary.LittleEndian.PutUint16(k[:], kind)
	h.Write(k[:])
	h.Write([]byte(key))
	return hex.EncodeToString(h.Sum(nil)) + artExt
}

// Get returns the payload stored for (kind, key), or ok == false on a miss.
// A record that fails verification is deleted and reported as a miss (after
// bumping the verify-fail counter); the caller regenerates and re-Puts. A
// read that fails outright (media fault, degraded store) is also a miss:
// the caller regenerates, and the failure is accounted in OpErrors.
func (s *Store) Get(kind uint16, key string) (payload []byte, ok bool) {
	pprof.Do(context.Background(), pprof.Labels("stage", "artifact-load"), func(context.Context) {
		payload, ok = s.get(kind, key)
	})
	return payload, ok
}

func (s *Store) get(kind uint16, key string) ([]byte, bool) {
	name := fileName(kind, key)
	path := filepath.Join(s.dir, name)
	// Decide up front whether this read owes a checksum sweep. The sweep runs
	// on the first read of each record per process (the index entry is absent
	// or still unverified), and unconditionally on a strict store or once the
	// store has seen any fault — a disk that has produced one bad byte or one
	// failed op has forfeited the benefit of the doubt for the rest of the
	// process. Repeat reads of a record this process already verified (or
	// wrote) skip only the CRC; framing and key checks always run.
	s.mu.Lock()
	checksum := s.strict || s.opErrors > 0 || s.verifyFails > 0
	e := s.index[name]
	if e == nil || !e.verified {
		checksum = true
	}
	s.mu.Unlock()
	var data []byte
	if err := s.do("read", func() error {
		var rerr error
		data, rerr = s.fs.ReadFile(path)
		return rerr
	}); err != nil {
		// A clean ErrNotExist miss is neutral for the breaker: it proves
		// the read path answers, but resetting on it would let a disk that
		// fails every write evade the trip forever (real workloads
		// interleave a miss before each Put).
		s.bump(&s.misses)
		return nil, false
	}
	s.noteSuccess()
	payload, err := decodeRecord(data, kind, key, checksum)
	if err != nil {
		s.mu.Lock()
		s.verifyFails++
		s.misses++
		s.mu.Unlock()
		s.remove(name)
		return nil, false
	}
	now := time.Now()
	s.mu.Lock()
	s.hits++
	if e := s.index[name]; e != nil {
		e.lastUse = now
		if checksum {
			e.verified = true
		}
	} else {
		// Another process wrote the record after our Open scan; adopt it.
		s.index[name] = &storeEntry{size: uint64(len(data)), lastUse: now, verified: checksum}
		s.resident += uint64(len(data))
	}
	s.mu.Unlock()
	// Persist the access time as the file mtime so a future process's index
	// scan sees today's recency. Best effort: a failure only ages the entry
	// (but still counts against the breaker — the disk is misbehaving).
	_ = s.do("touch", func() error { return s.fs.Chtimes(path, now, now) })
	return payload, true
}

// Put persists payload for (kind, key) through a temp file and an atomic
// rename, then applies the disk budget. Races between processes are benign:
// both writers hold identical bytes (payloads are pure functions of the
// key), and rename makes whichever lands last the single complete record.
//
// Put is best effort by contract — its callers ignore the error and carry
// on — but the error is still meaningful: ErrDegraded for a tripped store,
// otherwise the staging or publishing failure, accounted in OpErrors.
func (s *Store) Put(kind uint16, key string, payload []byte) (err error) {
	pprof.Do(context.Background(), pprof.Labels("stage", "artifact-store"), func(context.Context) {
		err = s.put(kind, key, payload)
	})
	return err
}

func (s *Store) put(kind uint16, key string, payload []byte) error {
	record := EncodeRecord(kind, key, payload)
	var tmp File
	if err := s.do("stage", func() error {
		var terr error
		tmp, terr = s.fs.CreateTemp(s.dir, tmpPrefix+"*")
		return terr
	}); err != nil {
		if errors.Is(err, ErrDegraded) {
			return err
		}
		return fmt.Errorf("artifact: staging record: %w", err)
	}
	werr := s.doOnce("write", func() error {
		_, e := tmp.Write(record)
		return e
	})
	cerr := s.doOnce("close", tmp.Close)
	if werr != nil || cerr != nil {
		s.cleanTemp(tmp.Name())
		return fmt.Errorf("artifact: staging record: %w", joinErr(werr, cerr))
	}
	name := fileName(kind, key)
	if err := s.do("publish", func() error {
		return s.fs.Rename(tmp.Name(), filepath.Join(s.dir, name))
	}); err != nil {
		s.cleanTemp(tmp.Name())
		return fmt.Errorf("artifact: publishing record: %w", err)
	}
	s.noteSuccess() // the record landed; the disk is answering
	s.mu.Lock()
	if e := s.index[name]; e != nil {
		s.resident -= e.size
	}
	// Deliberately not verified: even a record this process just wrote pays
	// one checksum sweep on its first read back, so anything that reached the
	// disk between rename and read (partial write, flipped bit) is caught
	// where it matters. In practice the in-memory tiers serve re-reads of
	// fresh writes, so this costs nothing on the warm path.
	s.index[name] = &storeEntry{size: uint64(len(record)), lastUse: time.Now()}
	s.resident += uint64(len(record))
	s.evictLocked()
	s.mu.Unlock()
	return nil
}

// cleanTemp best-effort unlinks a temp file this Put staged and can no
// longer publish. It bypasses the breaker gate deliberately: even a store
// tripping into degraded mode on this very Put owes the directory one last
// unlink attempt, or every trip would strand a fresh orphan until the next
// Open's sweep. A refused unlink (crashed or wedged disk) only counts; the
// orphan is then bounded by the sweep, never silent.
func (s *Store) cleanTemp(name string) {
	if err := s.fs.Remove(name); err != nil && !errors.Is(err, fs.ErrNotExist) {
		s.mu.Lock()
		s.opErrors++
		s.mu.Unlock()
	}
}

// joinErr returns the first non-nil error (Put's staging failure detail).
func joinErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// remove deletes one record file and drops it from the index (used for
// verify failures and eviction victims).
func (s *Store) remove(name string) {
	s.mu.Lock()
	if e := s.index[name]; e != nil {
		s.resident -= e.size
		delete(s.index, name)
	}
	s.mu.Unlock()
	_ = s.do("remove", func() error { return s.fs.Remove(filepath.Join(s.dir, name)) })
}

// evictLocked deletes records least-recently-used first until resident
// bytes fit the budget. Deleting under mu keeps the index and counters
// coherent; an open reader elsewhere keeps its already-opened bytes (POSIX
// unlink), it just misses next time. Called with s.mu held, so disk state
// is checked inline rather than through do; a failed unlink only strands
// the record until a future open re-indexes it.
func (s *Store) evictLocked() {
	if s.budget == 0 {
		return
	}
	for s.resident > s.budget && len(s.index) > 0 {
		var victim string
		var oldest time.Time
		for name, e := range s.index {
			if victim == "" || e.lastUse.Before(oldest) {
				victim, oldest = name, e.lastUse
			}
		}
		s.resident -= s.index[victim].size
		delete(s.index, victim)
		s.evictions++
		if !s.degraded && s.fatal == nil {
			_ = s.fs.Remove(filepath.Join(s.dir, victim))
		}
	}
}

// Drop deletes the record for (kind, key), counting it as a verify failure.
// Callers use it when a payload that passed record verification still fails
// its type-level decode — possible only under a codec bug or an
// astronomically unlikely checksum collision, but fail-closed is cheap.
func (s *Store) Drop(kind uint16, key string) {
	s.bump(&s.verifyFails)
	s.remove(fileName(kind, key))
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the store's observability counters. ResidentBytes counts
// whole record files (payload plus framing), matching what the disk budget
// governs.
func (s *Store) Stats() TierStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return TierStats{
		Hits:          s.hits,
		Misses:        s.misses,
		Evictions:     s.evictions,
		ResidentBytes: s.resident,
		VerifyFails:   s.verifyFails,
		OpErrors:      s.opErrors,
		Degraded:      s.degraded || s.fatal != nil,
	}
}
