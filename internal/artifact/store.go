package artifact

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"time"
)

// Store is a content-addressed artifact directory. Every entry is one
// record file named by the SHA-256 of (kind, key); an access-time-tracked
// index drives LRU garbage collection against a disk budget.
//
// A Store is safe for concurrent use by any number of goroutines, and the
// directory is safe to share between processes: writes are temp-file +
// atomic-rename, loads verify the record checksum (in full on the first read
// per process, framing-and-key-only after — see get), and a reader that
// loses a race with GC simply sees a miss.
//
// A Store is also fail-soft (see health.go): filesystem faults are
// classified and retried, and repeated failures trip a breaker that turns
// the store into an in-memory-only no-op for the rest of the process —
// degradation is observable in Stats, never fatal to the run. Opening with
// Options.Strict inverts that: the first failed operation is recorded as a
// sticky error (Err) for the caller to fail hard on.
type Store struct {
	dir    string
	budget uint64 // resident-bytes bound; 0 = unbounded
	fs     FS
	strict bool
	// remote, when non-nil, layers a shared network store under the local
	// disk tier: Gets read through it on a local miss (populating the local
	// tier), Puts publish to it write-behind. Always fail-soft — remote
	// outages degrade this store to local-only, never fail a run — so the
	// strict flag governs the local disk alone.
	remote *Remote

	mu       sync.Mutex
	index    map[string]*storeEntry // file name -> size and last use
	resident uint64

	hits, misses, verifyFails, evictions uint64

	// Health-breaker state (see health.go).
	opErrors    uint64
	consecFails int
	degraded    bool
	fatal       error // strict mode only: first classified failure
}

// bump increments one counter under the store mutex.
func (s *Store) bump(c *uint64) { s.mu.Lock(); *c++; s.mu.Unlock() }

// storeEntry tracks one on-disk record for the LRU index.
type storeEntry struct {
	size    uint64
	lastUse time.Time
	// verified records that this process has already checksummed the record
	// (a full-verify Get passed, or this process wrote it). Later Gets skip
	// the CRC sweep — structural and key checks still run — unless the store
	// is strict or has seen any fault (see Store.get). Entries indexed from
	// Open's directory scan start unverified, so the first read per process
	// always pays the full sweep.
	verified bool
}

// Options configures OpenStore beyond the directory path.
type Options struct {
	// Budget bounds the directory's resident bytes; 0 = unbounded.
	Budget uint64
	// Strict makes any classified filesystem failure sticky (see Err)
	// instead of degrading the store, so callers can fail hard.
	Strict bool
	// FS is the filesystem the store runs on; nil selects OSFS().
	FS FS
	// Remote layers a shared remote store under the local disk tier
	// (read-through on miss, write-behind on Put); nil disables it. The
	// store owns the Remote from here on: Close releases its worker.
	Remote *Remote
}

// Open opens (creating if necessary) the artifact directory on the real
// filesystem with default options. See OpenStore.
func Open(dir string, budgetBytes uint64) (*Store, error) {
	return OpenStore(dir, Options{Budget: budgetBytes})
}

// OpenStore opens (creating if necessary) the artifact directory and builds
// the LRU index from the records already present, seeding each entry's
// last-use time from the file's modification time — Get refreshes it on
// every hit, both in the index and on disk, so recency survives process
// restarts. A nonzero budget bounds the directory's resident bytes; opening
// an over-budget directory evicts immediately.
//
// Open also recovers from crashed writers: temp files older than orphanTTL
// are swept, so an interrupted Put can leak disk only until the next open.
//
// A directory that cannot be created or scanned is not fatal unless
// Options.Strict is set: the store opens already degraded (disk untouched,
// every Get a miss) so the run proceeds on the in-memory tiers alone.
func OpenStore(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS()
	}
	s := &Store{dir: dir, budget: opts.Budget, fs: fsys, strict: opts.Strict, remote: opts.Remote, index: make(map[string]*storeEntry)}
	if err := s.do("mkdir", func() error { return fsys.MkdirAll(dir, 0o777) }); err != nil {
		return s.openFailed()
	}
	var entries []fs.DirEntry
	if err := s.do("scan", func() error {
		var serr error
		entries, serr = fsys.ReadDir(dir)
		return serr
	}); err != nil {
		return s.openFailed()
	}
	now := time.Now()
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			// A crashed writer's staging file. Sweep it once it is old
			// enough that no live Put in another process can still own it;
			// younger temps are left for their writer (or the next open).
			info, err := e.Info()
			if err != nil || now.Sub(info.ModTime()) < orphanTTL {
				continue
			}
			_ = s.do("sweep", func() error { return fsys.Remove(filepath.Join(dir, name)) })
			continue
		}
		if filepath.Ext(name) != artExt {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with another process's GC
		}
		s.index[name] = &storeEntry{size: uint64(info.Size()), lastUse: info.ModTime()}
		s.resident += uint64(info.Size())
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// openFailed resolves a failed open (the failed do call already recorded
// the error): strict stores surface the sticky classified error; fail-soft
// stores open pre-degraded with a nil error so the engine runs on its
// in-memory tiers.
func (s *Store) openFailed() (*Store, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fatal != nil {
		return nil, s.fatal
	}
	s.degraded = true
	return s, nil
}

const (
	// artExt marks record files; anything else in the directory is ignored.
	artExt = ".art"
	// tmpPrefix marks staged writes (os.CreateTemp pattern tmpPrefix+"*").
	tmpPrefix = ".tmp-"
	// orphanTTL is how old a temp file must be before Open treats it as a
	// crashed writer's orphan and sweeps it. Generous against clock skew
	// and slow writers; a live Put stages and renames in well under this.
	orphanTTL = time.Hour
)

// diskOff reports whether the store may no longer touch the filesystem
// (breaker tripped, or a strict-mode failure recorded).
func (s *Store) diskOff() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded || s.fatal != nil
}

// do runs one idempotent filesystem operation under the store's failure
// policy: transient faults are retried up to retryAttempts times, a miss
// (fs.ErrNotExist) passes through without counting, and anything still
// failing is recorded against the breaker. Returns ErrDegraded without
// touching the disk once the store is off.
func (s *Store) do(op string, fn func() error) error {
	return s.run(op, retryAttempts, fn)
}

// doOnce is do without retry, for non-idempotent operations (writes on a
// file descriptor whose offset a failed attempt may have advanced).
func (s *Store) doOnce(op string, fn func() error) error {
	return s.run(op, 1, fn)
}

func (s *Store) run(op string, attempts int, fn func() error) error {
	if s.diskOff() {
		return ErrDegraded
	}
	var err error
	for try := 1; ; try++ {
		err = fn()
		if err == nil || errors.Is(err, fs.ErrNotExist) {
			return err
		}
		if try >= attempts || classify(err) != classTransient {
			break
		}
	}
	s.noteFailure(op, err)
	return err
}

// noteSuccess resets the breaker's consecutive-failure count. Called when
// a logical operation completes against the disk — a Get whose read
// returned record bytes, a Put whose record landed — not on every
// successful fs op, and not on a clean ErrNotExist miss: a Put whose
// CreateTemp works but whose Write keeps failing is a failing disk, and
// per-op (or per-miss) resets would let it evade the breaker forever.
func (s *Store) noteSuccess() {
	s.mu.Lock()
	s.consecFails = 0
	s.mu.Unlock()
}

// noteFailure records one failed operation (post retry): it always counts
// in OpErrors; a strict store pins it as the sticky fatal error, a
// fail-soft store trips into degraded mode after breakerTrip consecutive
// failures.
func (s *Store) noteFailure(op string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opErrors++
	s.consecFails++
	if s.strict {
		if s.fatal == nil {
			s.fatal = classifiedError(op, err)
		}
		return
	}
	if s.consecFails >= breakerTrip {
		s.degraded = true
	}
}

// Err returns the sticky classified failure of a store opened with
// Options.Strict, or nil. Fail-soft stores always return nil; their health
// is visible in Stats (Degraded, OpErrors) instead.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fatal
}

// Address derives the content address for (kind, key): the lowercase hex
// SHA-256 of the kind (little-endian) followed by the key bytes. It names
// the record on disk (plus the .art extension) and in the remote object
// protocol's URL path.
func Address(kind uint16, key string) string {
	h := sha256.New()
	var k [2]byte
	binary.LittleEndian.PutUint16(k[:], kind)
	h.Write(k[:])
	h.Write([]byte(key))
	return hex.EncodeToString(h.Sum(nil))
}

// addressLen is the length of a hex content address.
const addressLen = sha256.Size * 2

// validAddress reports whether addr is a well-formed content address (the
// remote server must never touch paths it did not derive itself).
func validAddress(addr string) bool {
	if len(addr) != addressLen {
		return false
	}
	for i := 0; i < len(addr); i++ {
		c := addr[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// fileName derives the record file name for (kind, key).
func fileName(kind uint16, key string) string {
	return Address(kind, key) + artExt
}

// Get returns the payload stored for (kind, key), or ok == false on a miss.
// A record that fails verification is deleted and reported as a miss (after
// bumping the verify-fail counter); the caller regenerates and re-Puts. A
// read that fails outright (media fault, degraded store) is also a miss:
// the caller regenerates, and the failure is accounted in OpErrors.
func (s *Store) Get(kind uint16, key string) (payload []byte, ok bool) {
	pprof.Do(context.Background(), pprof.Labels("stage", "artifact-load"), func(context.Context) {
		payload, ok = s.get(kind, key)
	})
	return payload, ok
}

// get serves (kind, key) from the local disk tier, falling back to the
// remote tier on a local miss (or a degraded local disk). A remote hit
// populates the local tier with the verified record — read-through — so
// the next process run on this machine hits disk without the network.
func (s *Store) get(kind uint16, key string) ([]byte, bool) {
	name := fileName(kind, key)
	if payload, ok := s.getLocal(name, kind, key); ok {
		return payload, true
	}
	if s.remote == nil {
		return nil, false
	}
	payload, record, ok := s.remote.Get(kind, key)
	if !ok {
		return nil, false
	}
	s.adopt(name, record)
	return payload, true
}

func (s *Store) getLocal(name string, kind uint16, key string) ([]byte, bool) {
	path := filepath.Join(s.dir, name)
	// Decide up front whether this read owes a checksum sweep. The sweep runs
	// on the first read of each record per process (the index entry is absent
	// or still unverified), and unconditionally on a strict store or once the
	// store has seen any fault — a disk that has produced one bad byte or one
	// failed op has forfeited the benefit of the doubt for the rest of the
	// process. Repeat reads of a record this process already verified (or
	// wrote) skip only the CRC; framing and key checks always run.
	s.mu.Lock()
	checksum := s.strict || s.opErrors > 0 || s.verifyFails > 0
	e := s.index[name]
	if e == nil || !e.verified {
		checksum = true
	}
	s.mu.Unlock()
	var data []byte
	if err := s.do("read", func() error {
		var rerr error
		data, rerr = s.fs.ReadFile(path)
		return rerr
	}); err != nil {
		// A clean ErrNotExist miss is neutral for the breaker: it proves
		// the read path answers, but resetting on it would let a disk that
		// fails every write evade the trip forever (real workloads
		// interleave a miss before each Put).
		s.bump(&s.misses)
		return nil, false
	}
	s.noteSuccess()
	payload, err := decodeRecord(data, kind, key, checksum)
	if err != nil {
		s.mu.Lock()
		s.verifyFails++
		s.misses++
		s.mu.Unlock()
		s.remove(name)
		return nil, false
	}
	s.touch(name, path, uint64(len(data)), checksum)
	return payload, true
}

// Put persists payload for (kind, key) through a temp file and an atomic
// rename, then applies the disk budget. Races between processes are benign:
// both writers hold identical bytes (payloads are pure functions of the
// key), and rename makes whichever lands last the single complete record.
//
// Put is best effort by contract — its callers ignore the error and carry
// on — but the error is still meaningful: ErrDegraded for a tripped store,
// otherwise the staging or publishing failure, accounted in OpErrors.
func (s *Store) Put(kind uint16, key string, payload []byte) (err error) {
	pprof.Do(context.Background(), pprof.Labels("stage", "artifact-store"), func(context.Context) {
		err = s.put(kind, key, payload)
	})
	return err
}

func (s *Store) put(kind uint16, key string, payload []byte) error {
	record := EncodeRecord(kind, key, payload)
	// Write-behind to the remote tier first: the fleet-shared store gets
	// the record even when the local disk is failing, and the bounded
	// asynchronous queue keeps the hot path off the network.
	if s.remote != nil {
		s.remote.PutAsync(record)
	}
	return s.publish(fileName(kind, key), record)
}

// adopt is the read-through half of the remote tier: a record fetched (and
// verified) from the remote store is published into the local disk tier,
// best effort, so the next run on this machine needs no network.
func (s *Store) adopt(name string, record []byte) {
	_ = s.publish(name, record)
}

// publish stages record through a temp file, atomically renames it to
// name, and indexes it (shared by local Puts, remote read-through
// adoption, and the remote object server's PutRecord).
func (s *Store) publish(name string, record []byte) error {
	var tmp File
	if err := s.do("stage", func() error {
		var terr error
		tmp, terr = s.fs.CreateTemp(s.dir, tmpPrefix+"*")
		return terr
	}); err != nil {
		if errors.Is(err, ErrDegraded) {
			return err
		}
		return fmt.Errorf("artifact: staging record: %w", err)
	}
	werr := s.doOnce("write", func() error {
		_, e := tmp.Write(record)
		return e
	})
	cerr := s.doOnce("close", tmp.Close)
	if werr != nil || cerr != nil {
		s.cleanTemp(tmp.Name())
		return fmt.Errorf("artifact: staging record: %w", joinErr(werr, cerr))
	}
	if err := s.do("publish", func() error {
		return s.fs.Rename(tmp.Name(), filepath.Join(s.dir, name))
	}); err != nil {
		s.cleanTemp(tmp.Name())
		return fmt.Errorf("artifact: publishing record: %w", err)
	}
	s.noteSuccess() // the record landed; the disk is answering
	s.mu.Lock()
	if e := s.index[name]; e != nil {
		s.resident -= e.size
	}
	// Deliberately not verified: even a record this process just wrote pays
	// one checksum sweep on its first read back, so anything that reached the
	// disk between rename and read (partial write, flipped bit) is caught
	// where it matters. In practice the in-memory tiers serve re-reads of
	// fresh writes, so this costs nothing on the warm path.
	s.index[name] = &storeEntry{size: uint64(len(record)), lastUse: time.Now()}
	s.resident += uint64(len(record))
	s.evictLocked()
	s.mu.Unlock()
	return nil
}

// cleanTemp best-effort unlinks a temp file this Put staged and can no
// longer publish. It bypasses the breaker gate deliberately: even a store
// tripping into degraded mode on this very Put owes the directory one last
// unlink attempt, or every trip would strand a fresh orphan until the next
// Open's sweep. A refused unlink (crashed or wedged disk) only counts; the
// orphan is then bounded by the sweep, never silent.
func (s *Store) cleanTemp(name string) {
	if err := s.fs.Remove(name); err != nil && !errors.Is(err, fs.ErrNotExist) {
		s.mu.Lock()
		s.opErrors++
		s.mu.Unlock()
	}
}

// joinErr returns the first non-nil error (Put's staging failure detail).
func joinErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// remove deletes one record file and drops it from the index (used for
// verify failures and eviction victims).
func (s *Store) remove(name string) {
	s.mu.Lock()
	if e := s.index[name]; e != nil {
		s.resident -= e.size
		delete(s.index, name)
	}
	s.mu.Unlock()
	_ = s.do("remove", func() error { return s.fs.Remove(filepath.Join(s.dir, name)) })
}

// evictLocked deletes records least-recently-used first until resident
// bytes fit the budget. Deleting under mu keeps the index and counters
// coherent; an open reader elsewhere keeps its already-opened bytes (POSIX
// unlink), it just misses next time. Called with s.mu held, so disk state
// is checked inline rather than through do; a failed unlink only strands
// the record until a future open re-indexes it.
func (s *Store) evictLocked() {
	if s.budget == 0 {
		return
	}
	for s.resident > s.budget && len(s.index) > 0 {
		var victim string
		var oldest time.Time
		for name, e := range s.index {
			if victim == "" || e.lastUse.Before(oldest) {
				victim, oldest = name, e.lastUse
			}
		}
		s.resident -= s.index[victim].size
		delete(s.index, victim)
		s.evictions++
		if !s.degraded && s.fatal == nil {
			_ = s.fs.Remove(filepath.Join(s.dir, victim))
		}
	}
}

// Drop deletes the record for (kind, key), counting it as a verify failure.
// Callers use it when a payload that passed record verification still fails
// its type-level decode — possible only under a codec bug or an
// astronomically unlikely checksum collision, but fail-closed is cheap.
func (s *Store) Drop(kind uint16, key string) {
	s.bump(&s.verifyFails)
	s.remove(fileName(kind, key))
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Remote returns the store's remote tier, or nil.
func (s *Store) Remote() *Remote { return s.remote }

// Flush blocks until every write-behind queued against the remote tier has
// been attempted. Sharded workers call it before exiting so the artifacts
// they produced are actually visible to the rest of the fleet.
func (s *Store) Flush() { s.remote.Flush() }

// Close flushes and releases the remote tier's write-behind worker. The
// local disk tier needs no teardown; a Store without a remote tier has a
// no-op Close.
func (s *Store) Close() { s.remote.Close() }

// RemoteStats returns the remote tier's counters (the zero quad when the
// store has no remote tier). See Remote.Stats for the column remappings.
func (s *Store) RemoteStats() TierStats { return s.remote.Stats() }

// GetRecord returns the raw record bytes stored at a content address — the
// remote object server's GET path, which never learns (kind, key) and so
// cannot decode payloads. The record's framing and embedded identity are
// verified against the address (CRC-swept on the first read per process,
// like Get), so a corrupt or misfiled record is deleted and reported as a
// miss rather than served.
func (s *Store) GetRecord(addr string) ([]byte, bool) {
	if !validAddress(addr) {
		s.bump(&s.misses)
		return nil, false
	}
	name := addr + artExt
	path := filepath.Join(s.dir, name)
	s.mu.Lock()
	checksum := s.strict || s.opErrors > 0 || s.verifyFails > 0
	if e := s.index[name]; e == nil || !e.verified {
		checksum = true
	}
	s.mu.Unlock()
	var data []byte
	if err := s.do("read", func() error {
		var rerr error
		data, rerr = s.fs.ReadFile(path)
		return rerr
	}); err != nil {
		s.bump(&s.misses)
		return nil, false
	}
	s.noteSuccess()
	kind, key, _, err := decodeRecordAny(data, checksum)
	if err == nil && fileName(kind, key) != name {
		err = fmt.Errorf("%w: record identity does not match address %s", ErrCorrupt, addr)
	}
	if err != nil {
		s.mu.Lock()
		s.verifyFails++
		s.misses++
		s.mu.Unlock()
		s.remove(name)
		return nil, false
	}
	s.touch(name, path, uint64(len(data)), checksum)
	return data, true
}

// OpenRecord returns an open handle on the record file at addr, the
// object server's zero-copy GET path: the handler streams it straight to
// the socket (sendfile on the OS filesystem), never pulling the record
// through user space. It answers only for records this process has already
// served through a verifying read, and only while the store is healthy,
// unstrict, and running directly on the real filesystem — everything else
// reports ok == false and the caller falls back to GetRecord's verifying
// path. Concurrent eviction is benign: an unlinked file stays readable
// until closed.
func (s *Store) OpenRecord(addr string) (f *os.File, size int64, ok bool) {
	if !validAddress(addr) {
		return nil, 0, false
	}
	if _, osfs := s.fs.(osFS); !osfs {
		return nil, 0, false
	}
	name := addr + artExt
	path := filepath.Join(s.dir, name)
	s.mu.Lock()
	e := s.index[name]
	streamable := e != nil && e.verified && !s.strict && s.opErrors == 0 && s.verifyFails == 0
	var indexed uint64
	if e != nil {
		indexed = e.size
	}
	s.mu.Unlock()
	if !streamable || s.diskOff() {
		return nil, 0, false
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, false
	}
	st, err := f.Stat()
	if err != nil || st.Size() != int64(indexed) {
		// Raced a rewrite (or the index is stale): let the verifying path
		// decide what the file now holds.
		f.Close()
		return nil, 0, false
	}
	s.touch(name, path, indexed, false)
	return f, st.Size(), true
}

// StatRecord reports whether the store holds a record at addr (the remote
// object server's HEAD path). It trusts the index plus a directory probe
// and performs no verification; a corrupt record answers true here and
// fails closed on the GET that follows.
func (s *Store) StatRecord(addr string) bool {
	if !validAddress(addr) {
		return false
	}
	name := addr + artExt
	s.mu.Lock()
	_, known := s.index[name]
	s.mu.Unlock()
	if known {
		return true
	}
	// Another process may have written it after our Open scan.
	err := s.do("read", func() error {
		_, rerr := s.fs.ReadFile(filepath.Join(s.dir, name))
		return rerr
	})
	return err == nil
}

// PutRecord verifies an already-encoded record — full framing and checksum
// sweep, since the bytes crossed a network — and publishes it atomically
// under its own content address, which must match wantAddr when non-empty.
// This is the remote object server's PUT path: the record authenticates
// itself, so a server can accept writes without ever learning the keyspace.
func (s *Store) PutRecord(record []byte, wantAddr string) (addr string, err error) {
	kind, key, err := RecordInfo(record)
	if err != nil {
		s.bump(&s.verifyFails)
		return "", err
	}
	addr = Address(kind, key)
	if wantAddr != "" && addr != wantAddr {
		s.bump(&s.verifyFails)
		return "", fmt.Errorf("%w: record addresses %s, published as %s", ErrCorrupt, addr, wantAddr)
	}
	return addr, s.publish(addr+artExt, record)
}

// touch refreshes one verified record's index entry and on-disk recency
// after a successful read (shared by Get and GetRecord).
func (s *Store) touch(name, path string, size uint64, checksummed bool) {
	now := time.Now()
	s.mu.Lock()
	s.hits++
	if e := s.index[name]; e != nil {
		e.lastUse = now
		if checksummed {
			e.verified = true
		}
	} else {
		// Another process wrote the record after our Open scan; adopt it.
		s.index[name] = &storeEntry{size: size, lastUse: now, verified: checksummed}
		s.resident += size
	}
	s.mu.Unlock()
	// Persist the access time as the file mtime so a future process's index
	// scan sees today's recency. Best effort: a failure only ages the entry
	// (but still counts against the breaker — the disk is misbehaving).
	_ = s.do("touch", func() error { return s.fs.Chtimes(path, now, now) })
}

// Stats returns the store's observability counters. ResidentBytes counts
// whole record files (payload plus framing), matching what the disk budget
// governs.
func (s *Store) Stats() TierStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return TierStats{
		Hits:          s.hits,
		Misses:        s.misses,
		Evictions:     s.evictions,
		ResidentBytes: s.resident,
		VerifyFails:   s.verifyFails,
		OpErrors:      s.opErrors,
		Degraded:      s.degraded || s.fatal != nil,
	}
}
