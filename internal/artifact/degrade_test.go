// Degradation-path tests live in an external test package so they can
// drive the store through internal/faultfs (which itself imports artifact
// for the FS seam).
package artifact_test

import (
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"branchconf/internal/artifact"
	"branchconf/internal/faultfs"
)

// openFaulty opens a store on dir over a fresh injector.
func openFaulty(t *testing.T, dir string, opts artifact.Options) (*artifact.Store, *faultfs.FS) {
	t.Helper()
	ffs := faultfs.New(artifact.OSFS())
	opts.FS = ffs
	s, err := artifact.OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, ffs
}

// TestStoreRetriesTransient: a one-shot EIO on the record read is absorbed
// by the retry loop — the Get still hits and no operation error is counted.
func TestStoreRetriesTransient(t *testing.T) {
	dir := t.TempDir()
	s, ffs := openFaulty(t, dir, artifact.Options{})
	if err := s.Put(artifact.KindReplayBuffer, "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(faultfs.Fault{Op: faultfs.OpReadFile, Nth: 1, Err: syscall.EIO})
	got, ok := s.Get(artifact.KindReplayBuffer, "k")
	if !ok || string(got) != "payload" {
		t.Fatalf("Get under transient EIO = (%q, %v), want retried hit", got, ok)
	}
	st := s.Stats()
	if st.OpErrors != 0 || st.Degraded {
		t.Fatalf("transient retried fault still counted: %+v", st)
	}
	if calls := ffs.Calls(faultfs.OpReadFile); calls != 2 {
		t.Fatalf("ReadFile called %d times, want 2 (fault + retry)", calls)
	}
}

// TestStorePermanentFaultNotRetried: EACCES is classified permanent — one
// attempt, one counted operation error, and the Get degrades to a miss.
func TestStorePermanentFaultNotRetried(t *testing.T) {
	dir := t.TempDir()
	s, ffs := openFaulty(t, dir, artifact.Options{})
	if err := s.Put(artifact.KindReplayBuffer, "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	base := ffs.Calls(faultfs.OpReadFile)
	ffs.Inject(faultfs.Fault{Op: faultfs.OpReadFile, Nth: 1, Err: syscall.EACCES})
	if _, ok := s.Get(artifact.KindReplayBuffer, "k"); ok {
		t.Fatal("Get hit through a permission error")
	}
	if calls := ffs.Calls(faultfs.OpReadFile) - base; calls != 1 {
		t.Fatalf("permanent fault retried: %d read calls, want 1", calls)
	}
	st := s.Stats()
	if st.OpErrors != 1 || st.Misses != 1 || st.Degraded {
		t.Fatalf("stats after one permanent fault = %+v, want 1 op error, 1 miss, not degraded", st)
	}
}

// TestStoreBreakerTripsOnReads: persistent read faults trip the breaker;
// the store then answers misses without touching the disk at all.
func TestStoreBreakerTripsOnReads(t *testing.T) {
	dir := t.TempDir()
	s, ffs := openFaulty(t, dir, artifact.Options{})
	if err := s.Put(artifact.KindReplayBuffer, "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(faultfs.Fault{Op: faultfs.OpReadFile, Err: syscall.EACCES})
	for i := 0; i < 3; i++ {
		if _, ok := s.Get(artifact.KindReplayBuffer, "k"); ok {
			t.Fatalf("Get %d hit through the fault", i)
		}
	}
	st := s.Stats()
	if !st.Degraded || st.OpErrors != 3 {
		t.Fatalf("breaker did not trip after 3 failures: %+v", st)
	}
	reads := ffs.Calls(faultfs.OpReadFile)
	if _, ok := s.Get(artifact.KindReplayBuffer, "k"); ok {
		t.Fatal("degraded Get hit")
	}
	if err := s.Put(artifact.KindReplayBuffer, "k2", []byte("x")); err == nil {
		t.Fatal("degraded Put reported success")
	}
	if got := ffs.Calls(faultfs.OpReadFile); got != reads {
		t.Fatalf("degraded store still touched the disk (%d -> %d reads)", reads, got)
	}
	if st := s.Stats(); st.Misses != 4 {
		t.Fatalf("degraded Get not counted as a miss: %+v", st)
	}
}

// TestStoreBreakerTripsOnWrites: a disk that fails every write (but happily
// unlinks the staged temp) must still degrade — successful cleanup does not
// reset the breaker — and must leave no temp files behind.
func TestStoreBreakerTripsOnWrites(t *testing.T) {
	dir := t.TempDir()
	s, ffs := openFaulty(t, dir, artifact.Options{})
	ffs.Inject(faultfs.Fault{Op: faultfs.OpWrite, Err: syscall.ENOSPC})
	for i := 0; i < 3; i++ {
		if err := s.Put(artifact.KindReplayBuffer, "k", []byte("payload")); err == nil {
			t.Fatalf("Put %d succeeded with a full disk", i)
		}
	}
	st := s.Stats()
	if !st.Degraded {
		t.Fatalf("write-only faults never tripped the breaker: %+v", st)
	}
	temps, err := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if err != nil || len(temps) != 0 {
		t.Fatalf("failed Puts leaked temp files: %v (err=%v)", temps, err)
	}
}

// TestStoreStrictPinsFirstFailure: under Options.Strict the first
// classified failure becomes the sticky Err, the disk is not touched again,
// and the error names the failure class.
func TestStoreStrictPinsFirstFailure(t *testing.T) {
	dir := t.TempDir()
	s, ffs := openFaulty(t, dir, artifact.Options{Strict: true})
	ffs.Inject(faultfs.Fault{Op: faultfs.OpCreateTemp, Err: syscall.ENOSPC})
	if err := s.Put(artifact.KindReplayBuffer, "k", []byte("payload")); err == nil {
		t.Fatal("strict Put succeeded with a full disk")
	}
	err := s.Err()
	if err == nil {
		t.Fatal("strict store recorded no sticky error")
	}
	if !strings.Contains(err.Error(), "permanent") {
		t.Fatalf("sticky error %q does not name the failure class", err)
	}
	reads := ffs.Calls(faultfs.OpReadFile)
	if _, ok := s.Get(artifact.KindReplayBuffer, "k"); ok {
		t.Fatal("Get hit after a strict failure")
	}
	if got := ffs.Calls(faultfs.OpReadFile); got != reads {
		t.Fatal("strict-failed store still touched the disk")
	}
	if st := s.Stats(); !st.Degraded {
		t.Fatalf("strict failure not visible as Degraded: %+v", st)
	}
}

// TestStoreStrictOpenFails: a strict store surfaces an unusable directory
// as a hard open error; a fail-soft store opens pre-degraded instead and
// the run proceeds on the in-memory tiers.
func TestStoreOpenFailurePolicy(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")

	ffs := faultfs.New(artifact.OSFS())
	ffs.Inject(faultfs.Fault{Op: faultfs.OpMkdirAll, Err: syscall.EACCES})
	if _, err := artifact.OpenStore(dir, artifact.Options{Strict: true, FS: ffs}); err == nil {
		t.Fatal("strict open of an uncreatable directory succeeded")
	}

	ffs = faultfs.New(artifact.OSFS())
	ffs.Inject(faultfs.Fault{Op: faultfs.OpMkdirAll, Err: syscall.EACCES})
	s, err := artifact.OpenStore(dir, artifact.Options{FS: ffs})
	if err != nil {
		t.Fatalf("fail-soft open returned a hard error: %v", err)
	}
	if st := s.Stats(); !st.Degraded || st.OpErrors == 0 {
		t.Fatalf("fail-soft open not pre-degraded: %+v", st)
	}
	if _, ok := s.Get(artifact.KindReplayBuffer, "k"); ok {
		t.Fatal("degraded-from-birth store served a hit")
	}
}

// TestStoreOrphanSweep is the regression test for the unbounded temp-file
// leak: Open must remove stale .tmp-* orphans (crashed writers), keep
// young ones (possibly a live writer in another process), and count
// neither against the resident budget.
func TestStoreOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	s, err := artifact.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(artifact.KindReplayBuffer, "real", []byte("record")); err != nil {
		t.Fatal(err)
	}
	wantResident := s.Stats().ResidentBytes

	stale := time.Now().Add(-2 * time.Hour)
	for _, name := range []string{".tmp-dead1", ".tmp-dead2"} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte("orphaned staging bytes"), 0o666); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(path, stale, stale); err != nil {
			t.Fatal(err)
		}
	}
	live := filepath.Join(dir, ".tmp-live")
	if err := os.WriteFile(live, []byte("in-flight staging bytes"), 0o666); err != nil {
		t.Fatal(err)
	}

	s2, err := artifact.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{".tmp-dead1", ".tmp-dead2"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("stale orphan %s survived the sweep (err=%v)", name, err)
		}
	}
	if _, err := os.Stat(live); err != nil {
		t.Error("young temp file swept out from under a possibly live writer")
	}
	if got := s2.Stats().ResidentBytes; got != wantResident {
		t.Errorf("resident bytes = %d, want %d (temps must not count against the budget)", got, wantResident)
	}
	if got, ok := s2.Get(artifact.KindReplayBuffer, "real"); !ok || string(got) != "record" {
		t.Errorf("real record lost in the sweep: ok=%v %q", ok, got)
	}
}

// TestStoreCrashRecoveryEndToEnd: a writer that "crashes" between staging
// and publish leaks a pinned temp; once the outage clears, the next Open
// sweeps it and the slot is fully reusable.
func TestStoreCrashRecoveryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s, ffs := openFaulty(t, dir, artifact.Options{})
	ffs.Inject(faultfs.Fault{Op: faultfs.OpRename, Nth: 1, Err: syscall.EIO, Mode: faultfs.CrashBeforeRename})
	if err := s.Put(artifact.KindReplayBuffer, "k", []byte("payload")); err == nil {
		t.Fatal("crashed Put reported success")
	}
	temps, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if len(temps) != 1 {
		t.Fatalf("crash left %d temp files, want exactly the orphan", len(temps))
	}
	if _, ok := s.Get(artifact.KindReplayBuffer, "k"); ok {
		t.Fatal("unpublished record served")
	}

	ffs.Clear() // the outage ends; a new process opens the directory
	s2, err := artifact.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	temps, _ = filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if len(temps) != 0 {
		t.Fatalf("orphan survived recovery: %v", temps)
	}
	if err := s2.Put(artifact.KindReplayBuffer, "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(artifact.KindReplayBuffer, "k"); !ok || string(got) != "payload" {
		t.Fatalf("slot unusable after recovery: ok=%v %q", ok, got)
	}
}
