package artifact

import (
	"io/fs"
	"os"
	"time"
)

// FS is the narrow filesystem seam the store runs on: exactly the seven
// operations Open/Get/Put/GC perform, in their os-package shapes. The
// production implementation is OSFS; internal/faultfs provides a
// deterministic fault-injecting implementation for exercising the store's
// degradation paths (retry, breaker, orphan recovery) without a real
// failing disk.
//
// Implementations must preserve the os-package error conventions the store
// classifies on — fs.ErrNotExist from ReadFile/Remove for absent files,
// syscall errnos (wrapped in *fs.PathError or not) for real faults —
// because error identity, via errors.Is, is what separates a benign miss
// from a failure that counts against the health breaker.
type FS interface {
	// MkdirAll creates the store directory as os.MkdirAll does.
	MkdirAll(dir string, perm os.FileMode) error
	// ReadDir lists the store directory as os.ReadDir does.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// ReadFile reads one record as os.ReadFile does.
	ReadFile(name string) ([]byte, error)
	// CreateTemp stages a write as os.CreateTemp does.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically publishes a staged record as os.Rename does.
	Rename(oldpath, newpath string) error
	// Remove deletes one file as os.Remove does.
	Remove(name string) error
	// Chtimes stamps access recency as os.Chtimes does.
	Chtimes(name string, atime, mtime time.Time) error
}

// File is the slice of *os.File the store's staged writes use.
type File interface {
	Write(p []byte) (int, error)
	Close() error
	Name() string
}

// OSFS returns the production FS backed directly by the os package.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}
