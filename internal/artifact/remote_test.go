package artifact

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// newRemoteFixture boots an in-process remote store (RemoteServer over a
// fresh disk store) and returns its base URL plus the server for stats.
func newRemoteFixture(t *testing.T) (string, *RemoteServer) {
	t.Helper()
	backing, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewRemoteServer(backing)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL, srv
}

// openRemoteStore opens a worker store with the remote tier layered under
// a fresh local directory.
func openRemoteStore(t *testing.T, base string) *Store {
	t.Helper()
	s, err := OpenStore(t.TempDir(), Options{Remote: NewRemote(base, nil)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestRemoteWriteBehindThenWarmStart: worker A publishes through the
// write-behind queue; worker B (empty local tier, different machine in
// spirit) warm-starts purely from A's remote artifacts, and the read-through
// populates B's local tier so its second Get never touches the network.
func TestRemoteWriteBehindThenWarmStart(t *testing.T) {
	base, srv := newRemoteFixture(t)

	a := openRemoteStore(t, base)
	if err := a.Put(KindCurve, "shared-key", []byte("curve payload")); err != nil {
		t.Fatal(err)
	}
	a.Flush()
	if got := srv.Stats(); got.Puts != 1 {
		t.Fatalf("server saw %d puts, want 1", got.Puts)
	}

	b := openRemoteStore(t, base)
	got, ok := b.Get(KindCurve, "shared-key")
	if !ok || !bytes.Equal(got, []byte("curve payload")) {
		t.Fatalf("warm start from remote: ok=%v payload=%q", ok, got)
	}
	rs := b.RemoteStats()
	if rs.Hits != 1 || rs.ResidentBytes == 0 {
		t.Fatalf("remote stats after warm start = %+v, want 1 hit and wire bytes", rs)
	}
	// The read-through populated B's local tier: the next Get is a local
	// hit, no new remote traffic.
	if _, ok := b.Get(KindCurve, "shared-key"); !ok {
		t.Fatal("adopted record not readable locally")
	}
	if rs2 := b.RemoteStats(); rs2.Hits != rs.Hits || rs2.Misses != rs.Misses {
		t.Fatalf("second Get went to the network: %+v -> %+v", rs, rs2)
	}
	// And the local miss that preceded the remote hit is visible in the
	// local tier's counters.
	if st := b.Stats(); st.Misses == 0 {
		t.Fatalf("local stats = %+v, want the initial local miss counted", st)
	}
}

// TestRemoteHead: HEAD answers existence without moving the record.
func TestRemoteHead(t *testing.T) {
	base, _ := newRemoteFixture(t)
	a := openRemoteStore(t, base)
	if a.Remote().Head(KindCurve, "k") {
		t.Fatal("HEAD hit on an empty remote store")
	}
	if err := a.Put(KindCurve, "k", []byte("p")); err != nil {
		t.Fatal(err)
	}
	a.Flush()
	if !a.Remote().Head(KindCurve, "k") {
		t.Fatal("HEAD miss after a flushed Put")
	}
}

// TestRemoteServerProtocolEdges: the server fails closed on everything that
// is not a well-formed, self-consistent record at its own address.
func TestRemoteServerProtocolEdges(t *testing.T) {
	base, srv := newRemoteFixture(t)
	client := &http.Client{}
	do := func(method, path string, body []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, base+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	record := EncodeRecord(KindCurve, "k", []byte("payload"))
	addr := Address(KindCurve, "k")
	wrongAddr := Address(KindCurve, "other")

	if resp := do(http.MethodGet, remotePathPrefix+"not-an-address", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed address GET: %s", resp.Status)
	}
	if resp := do(http.MethodGet, remotePathPrefix+addr, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing record GET: %s", resp.Status)
	}
	if resp := do(http.MethodPut, remotePathPrefix+wrongAddr, record); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-address PUT: %s", resp.Status)
	}
	corrupt := append([]byte(nil), record...)
	corrupt[len(corrupt)/2] ^= 0x40
	if resp := do(http.MethodPut, remotePathPrefix+addr, corrupt); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt PUT: %s", resp.Status)
	}
	if resp := do(http.MethodPut, remotePathPrefix+addr, record); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("good PUT: %s", resp.Status)
	}
	if resp := do(http.MethodHead, remotePathPrefix+addr, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD after PUT: %s", resp.Status)
	}
	if resp := do(http.MethodGet, remotePathPrefix+addr, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after PUT: %s", resp.Status)
	}
	if resp := do(http.MethodDelete, remotePathPrefix+addr, nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: %s", resp.Status)
	}
	st := srv.Stats()
	if st.PutRejects != 2 || st.Puts != 3 || st.GetMisses != 1 {
		t.Fatalf("server stats = %+v, want 2 rejects / 3 puts / 1 get miss", st)
	}
}

// failDoer fails every request with a transport error.
type failDoer struct{ calls int }

func (d *failDoer) Do(*http.Request) (*http.Response, error) {
	d.calls++
	return nil, errors.New("stub: connection refused")
}

// TestRemoteBreakerTripsToLocalOnly: consecutive transport failures trip
// the remote tier into degraded mode; the local tier keeps working and the
// network is never touched again.
func TestRemoteBreakerTripsToLocalOnly(t *testing.T) {
	d := &failDoer{}
	s, err := OpenStore(t.TempDir(), Options{Remote: NewRemote("http://remote.invalid", d)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < breakerTrip; i++ {
		if _, ok := s.Get(KindCurve, fmt.Sprintf("k%d", i)); ok {
			t.Fatal("hit against a dead remote")
		}
	}
	rs := s.RemoteStats()
	if !rs.Degraded {
		t.Fatalf("remote stats after %d failed ops = %+v, want degraded", breakerTrip, rs)
	}
	// Each failed logical Get retried the transport.
	if d.calls != breakerTrip*retryAttempts {
		t.Fatalf("transport calls = %d, want %d (retry inside each op)", d.calls, breakerTrip*retryAttempts)
	}
	// Degraded remote, healthy local: the store still round-trips.
	if err := s.Put(KindCurve, "local", []byte("pl")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(KindCurve, "local"); !ok || !bytes.Equal(got, []byte("pl")) {
		t.Fatalf("local tier after remote degradation: ok=%v %q", ok, got)
	}
	calls := d.calls
	s.Flush()
	if d.calls != calls {
		t.Fatalf("degraded tier touched the network: %d -> %d calls", calls, d.calls)
	}
	if rs := s.RemoteStats(); rs.Evictions == 0 {
		t.Fatalf("remote stats = %+v, want the shed write-behind counted", rs)
	}
}

// tamperDoer serves a different valid record than the one addressed — the
// split-brain store.
type tamperDoer struct {
	inner Doer
	body  []byte
}

func (d *tamperDoer) Do(req *http.Request) (*http.Response, error) {
	resp, err := d.inner.Do(req)
	if err != nil || req.Method != http.MethodGet || resp.StatusCode != http.StatusOK {
		return resp, err
	}
	resp.Body.Close()
	resp.Body = io.NopCloser(bytes.NewReader(d.body))
	resp.ContentLength = int64(len(d.body))
	resp.Header.Del("Content-Length")
	return resp, nil
}

// TestRemoteGetFailsClosedOnWrongRecord: a structurally valid record for a
// different key never reaches the caller — the embedded-identity check
// fails closed and the caller regenerates.
func TestRemoteGetFailsClosedOnWrongRecord(t *testing.T) {
	base, _ := newRemoteFixture(t)
	seed := openRemoteStore(t, base)
	if err := seed.Put(KindCurve, "victim", []byte("victim payload")); err != nil {
		t.Fatal(err)
	}
	if err := seed.Put(KindCurve, "other", []byte("other payload")); err != nil {
		t.Fatal(err)
	}
	seed.Flush()

	wrong := EncodeRecord(KindCurve, "other", []byte("other payload"))
	s, err := OpenStore(t.TempDir(), Options{
		Remote: NewRemote(base, &tamperDoer{inner: &http.Client{}, body: wrong}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.Get(KindCurve, "victim"); ok {
		t.Fatal("a record for another key was served as a hit")
	}
	rs := s.RemoteStats()
	if rs.VerifyFails != 1 || rs.Hits != 0 {
		t.Fatalf("remote stats = %+v, want 1 verify fail, 0 hits", rs)
	}
	// The poisoned bytes must not have been adopted locally.
	if _, ok := s.Get(KindCurve, "victim"); ok {
		t.Fatal("poisoned record adopted into the local tier")
	}
}

// TestRemoteCrossWorkerContention: two workers, one remote store, racing
// Put/Get/Head on the same addresses. Last writer wins with byte-identical
// records (payloads are pure functions of the key), nothing corrupts, and
// every landed record round-trips. Run under -race.
func TestRemoteCrossWorkerContention(t *testing.T) {
	base, _ := newRemoteFixture(t)
	a := openRemoteStore(t, base)
	b := openRemoteStore(t, base)

	const keys = 16
	payload := func(i int) []byte { return []byte(fmt.Sprintf("payload-for-%d", i)) }
	var wg sync.WaitGroup
	for _, s := range []*Store{a, b} {
		wg.Add(1)
		go func(s *Store) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("key-%d", i)
				if got, ok := s.Get(KindCurve, key); ok && !bytes.Equal(got, payload(i)) {
					t.Errorf("%s: wrong payload %q", key, got)
				}
				_ = s.Put(KindCurve, key, payload(i))
				s.Remote().Head(KindCurve, key)
				if got, ok := s.Get(KindCurve, key); ok && !bytes.Equal(got, payload(i)) {
					t.Errorf("%s: wrong payload after put %q", key, got)
				}
			}
		}(s)
	}
	wg.Wait()
	a.Flush()
	b.Flush()

	// A third worker with an empty local tier sees every key remotely.
	c := openRemoteStore(t, base)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		got, ok := c.Get(KindCurve, key)
		if !ok || !bytes.Equal(got, payload(i)) {
			t.Fatalf("%s after contention: ok=%v payload=%q", key, ok, got)
		}
	}
	if rs := c.RemoteStats(); rs.Hits != keys || rs.VerifyFails != 0 {
		t.Fatalf("third worker remote stats = %+v, want %d clean hits", rs, keys)
	}
}

// TestRemoteNilIsNoop: a store without a remote tier keeps its old
// behavior, and the nil *Remote methods are all safe.
func TestRemoteNilIsNoop(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Flush()
	s.Close()
	if rs := s.RemoteStats(); rs != (TierStats{}) {
		t.Fatalf("nil remote stats = %+v, want zero", rs)
	}
	var r *Remote
	r.PutAsync([]byte("x"))
	r.Flush()
	r.Close()
	if r.Stats() != (TierStats{}) {
		t.Fatal("nil Remote stats not zero")
	}
	if RemoteReport() != (TierStats{}) && Default() == nil {
		t.Fatal("RemoteReport without a default store not zero")
	}
}
