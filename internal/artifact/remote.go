package artifact

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// The remote artifact tier: a minimal HTTP object protocol that lets N
// worker processes on different machines share one warm content-addressed
// store. The wire unit is the same versioned, CRC-64-checksummed BCA1
// record the disk tier persists, addressed by SHA-256(kind, key):
//
//	GET  /v1/artifact/{addr}  -> 200 + record bytes | 404
//	HEAD /v1/artifact/{addr}  -> 200 | 404
//	PUT  /v1/artifact/{addr}  <- record bytes; the server re-derives the
//	                             address from the record's embedded (kind,
//	                             key), verifies the checksum, and publishes
//	                             atomically (temp file + rename); mismatches
//	                             are rejected with 400
//	GET  /v1/stats            -> server counters (JSON)
//	GET  /healthz             -> 200 "ok"
//
// The client side (Remote, below) layers under the local disk store as a
// read-through/write-behind tier — see Store.get and Store.put — so a
// remote hit populates the local tier and the hot path never blocks on the
// network: Puts ride a bounded asynchronous queue, and every response body
// is fully re-verified (structure, key, CRC) before use, so a corrupt,
// truncated, or split-brain response can cost a regeneration, never
// correctness. Remote failures follow the PR 5 health-breaker policy:
// transient faults retry, breakerTrip consecutive failed logical ops trip
// the tier into degraded (local-only) mode for the rest of the process.

// Doer is the transport seam the remote tier runs on: http.Client
// implements it, and internal/faultnet provides a deterministic
// fault-injecting implementation for exercising the degradation paths
// (timeouts, 5xx storms, truncated bodies, split-brain stores) without a
// real failing network.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// remotePathPrefix is the object endpoint; the content address follows it.
const remotePathPrefix = "/v1/artifact/"

// maxRemoteRecord bounds one record read off the wire (a corrupted
// Content-Length must not balloon memory). Far above any real artifact.
const maxRemoteRecord = 1 << 31

// remoteQueueDepth bounds the write-behind queue; beyond it Puts are
// dropped (counted, best-effort contract) rather than blocking the engine.
const remoteQueueDepth = 256

// DefaultRemoteTimeout bounds one remote round trip when the caller
// supplies no transport of its own.
const DefaultRemoteTimeout = 30 * time.Second

// Remote is the client half of the remote artifact tier. It is safe for
// concurrent use; a nil *Remote is a valid "no remote tier" and every
// method on it is a cheap no-op (miss, drop).
type Remote struct {
	base string
	doer Doer

	queue chan []byte
	quit  chan struct{}
	done  chan struct{}
	// pending tracks enqueued-but-unlanded write-behinds for Flush.
	pending sync.WaitGroup

	mu          sync.Mutex
	hits        uint64
	misses      uint64
	verifyFails uint64
	opErrors    uint64
	wireBytes   uint64 // record bytes moved over the network, both ways
	dropped     uint64 // write-behinds shed by a full queue or a degraded tier
	consecFails int
	degraded    bool
	closed      bool
}

// NewRemote builds the client for a remote store rooted at base (e.g.
// "http://10.0.0.7:8092"). A nil doer selects an http.Client with
// DefaultRemoteTimeout. The returned Remote owns a background write-behind
// worker; Close releases it.
func NewRemote(base string, doer Doer) *Remote {
	if doer == nil {
		doer = &http.Client{Timeout: DefaultRemoteTimeout}
	}
	r := &Remote{
		base:  strings.TrimRight(base, "/"),
		doer:  doer,
		queue: make(chan []byte, remoteQueueDepth),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go r.worker()
	return r
}

// Base returns the remote store's base URL.
func (r *Remote) Base() string { return r.base }

// url builds the object URL for one content address.
func (r *Remote) url(addr string) string { return r.base + remotePathPrefix + addr }

// isOff reports whether the tier may no longer touch the network. Only the
// breaker turns the network off: the closed flag stops new write-behind
// enqueues (see PutAsync), but Close's final drain must still publish what
// was queued before it, and Gets keep answering on the caller's transport.
func (r *Remote) isOff() bool {
	if r == nil {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.degraded
}

// noteSuccess resets the breaker on a definitive server answer (a record,
// a 404, a landed PUT): the remote is reachable and responding.
func (r *Remote) noteSuccess() {
	r.mu.Lock()
	r.consecFails = 0
	r.mu.Unlock()
}

// noteFailure counts one failed logical operation (post retry) and trips
// the breaker after breakerTrip consecutive failures: the tier goes
// local-only for the rest of the process, mirroring the disk store's
// policy in health.go.
func (r *Remote) noteFailure() {
	r.mu.Lock()
	r.opErrors++
	r.consecFails++
	if r.consecFails >= breakerTrip {
		r.degraded = true
	}
	r.mu.Unlock()
}

// roundTrip performs one request with the store's retry policy: transport
// errors and 5xx responses are transient (the request is rebuilt and
// retried up to retryAttempts times), anything else is definitive. The
// response body is fully read (bounded) and the connection released. A
// miss is reported as (nil body, 404, nil error).
func (r *Remote) roundTrip(method, addr string, body []byte) (respBody []byte, status int, err error) {
	for try := 1; ; try++ {
		var req *http.Request
		req, err = http.NewRequest(method, r.url(addr), bytes.NewReader(body))
		if err != nil {
			return nil, 0, err // malformed base URL: permanent, no retry
		}
		if body != nil {
			req.ContentLength = int64(len(body))
		}
		var resp *http.Response
		resp, err = r.doer.Do(req)
		if err == nil {
			declared := resp.ContentLength
			if method == http.MethodHead {
				declared = 0 // no body follows the header
			}
			respBody, err = readBody(resp.Body, declared)
			resp.Body.Close()
			if err == nil && resp.StatusCode < 500 {
				r.mu.Lock()
				r.wireBytes += uint64(len(respBody)) + uint64(len(body))
				r.mu.Unlock()
				return respBody, resp.StatusCode, nil
			}
			if err == nil {
				err = fmt.Errorf("artifact: remote %s %s: server error %s", method, addr, resp.Status)
			}
		}
		if try >= retryAttempts {
			return nil, 0, err
		}
	}
}

// readBody drains one bounded body. A declared Content-Length sizes the
// buffer exactly — one allocation, filled with large reads — instead of
// ReadAll's doubling growth, which costs an extra copy of every record on
// the warm-share path. A body shorter than declared is returned as-is, not
// as an error: record verification judges the bytes, exactly as it judged
// the growing reader's.
func readBody(body io.Reader, declared int64) ([]byte, error) {
	if declared > 0 && declared <= maxRemoteRecord {
		buf := make([]byte, declared)
		n, err := io.ReadFull(body, buf)
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return buf[:n], nil
		}
		return buf[:n], err
	}
	return io.ReadAll(io.LimitReader(body, maxRemoteRecord))
}

// Get fetches and verifies the record for (kind, key), returning the
// payload and the verified raw record (for the caller to populate the
// local tier with). Corrupt or mismatched responses — bit flips,
// truncation, a split-brain store serving another address's bytes — count
// a verify failure and report a miss; the caller regenerates.
func (r *Remote) Get(kind uint16, key string) (payload, record []byte, ok bool) {
	if r.isOff() {
		return nil, nil, false
	}
	data, status, err := r.roundTrip(http.MethodGet, Address(kind, key), nil)
	if err != nil {
		r.noteFailure()
		r.bumpMiss()
		return nil, nil, false
	}
	r.noteSuccess()
	if status == http.StatusNotFound {
		r.bumpMiss()
		return nil, nil, false
	}
	if status != http.StatusOK {
		r.mu.Lock()
		r.opErrors++
		r.misses++
		r.mu.Unlock()
		return nil, nil, false
	}
	payload, err = DecodeRecord(data, kind, key)
	if err != nil {
		r.mu.Lock()
		r.verifyFails++
		r.misses++
		r.mu.Unlock()
		return nil, nil, false
	}
	r.mu.Lock()
	r.hits++
	r.mu.Unlock()
	return payload, data, true
}

func (r *Remote) bumpMiss() {
	r.mu.Lock()
	r.misses++
	r.mu.Unlock()
}

// Head reports whether the remote store holds a record for (kind, key),
// without moving the record.
func (r *Remote) Head(kind uint16, key string) bool {
	if r.isOff() {
		return false
	}
	_, status, err := r.roundTrip(http.MethodHead, Address(kind, key), nil)
	if err != nil {
		r.noteFailure()
		return false
	}
	r.noteSuccess()
	return status == http.StatusOK
}

// PutAsync queues one already-encoded record for write-behind publication.
// It never blocks: a full queue or a degraded tier drops the record
// (counted in the tier's eviction column), matching the store's
// best-effort Put contract. The caller must not mutate record afterwards.
func (r *Remote) PutAsync(record []byte) {
	if r == nil {
		return
	}
	r.mu.Lock()
	off := r.degraded || r.closed
	r.mu.Unlock()
	if off {
		r.drop()
		return
	}
	r.pending.Add(1)
	select {
	case r.queue <- record:
	default:
		r.pending.Done()
		r.drop()
	}
}

func (r *Remote) drop() {
	r.mu.Lock()
	r.dropped++
	r.mu.Unlock()
}

// putRecord publishes one record synchronously (the worker's half of
// PutAsync, and the path tests drive directly).
func (r *Remote) putRecord(record []byte) {
	if r.isOff() {
		r.drop()
		return
	}
	kind, key, err := RecordInfo(record)
	if err != nil {
		// Never ship bytes we cannot vouch for; an encoder bug stays local.
		r.mu.Lock()
		r.verifyFails++
		r.mu.Unlock()
		return
	}
	_, status, err := r.roundTrip(http.MethodPut, Address(kind, key), record)
	if err != nil {
		r.noteFailure()
		return
	}
	r.noteSuccess()
	if status/100 != 2 {
		// A definitive rejection (4xx) is an answered request — the breaker
		// measures reachability, not agreement — but still a failed op.
		r.mu.Lock()
		r.opErrors++
		r.mu.Unlock()
	}
}

// worker drains the write-behind queue until Close.
func (r *Remote) worker() {
	defer close(r.done)
	for {
		select {
		case rec := <-r.queue:
			r.putRecord(rec)
			r.pending.Done()
		case <-r.quit:
			// Drain what was queued before the quit — the tail of a run's
			// publications — then exit. Anything enqueued after this loop
			// observes an empty queue is dropped by the closed flag.
			for {
				select {
				case rec := <-r.queue:
					r.putRecord(rec)
					r.pending.Done()
				default:
					return
				}
			}
		}
	}
}

// Flush blocks until every queued write-behind has been attempted (landed,
// failed, or dropped). Workers call it before exiting so a fleet-shared
// store actually holds what the run produced.
func (r *Remote) Flush() {
	if r == nil {
		return
	}
	r.pending.Wait()
}

// Close flushes and stops the write-behind worker. Subsequent PutAsync
// calls drop; Gets keep answering (the transport is the caller's).
func (r *Remote) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.done
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.quit)
	<-r.done
}

// Stats returns the remote tier's counters on the uniform quad, with two
// documented remappings (the tier has no resident bytes and evicts
// nothing): ResidentBytes counts record bytes moved over the wire in
// either direction, and Evictions counts write-behinds shed by a full
// queue or a degraded tier.
func (r *Remote) Stats() TierStats {
	if r == nil {
		return TierStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return TierStats{
		Hits:          r.hits,
		Misses:        r.misses,
		Evictions:     r.dropped,
		ResidentBytes: r.wireBytes,
		VerifyFails:   r.verifyFails,
		OpErrors:      r.opErrors,
		Degraded:      r.degraded,
	}
}
