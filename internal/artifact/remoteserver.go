package artifact

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
)

// RemoteServer is the server half of the remote artifact tier: a minimal
// HTTP object store over a local content-addressed Store (and so over its
// budget, LRU GC, orphan sweep, and health breaker). One daemon
// (`paperrepro artifactd`) serves a whole fleet of workers; the protocol is
// documented on the Doer seam in remote.go.
//
// The server never learns the keyspace: GETs and HEADs address records by
// content hash, and PUTs carry records that embed and authenticate their
// own identity — the server re-derives the address from the record, rejects
// mismatches, and publishes atomically through the store's temp-file +
// rename path, so a half-written upload can never be served.
type RemoteServer struct {
	store *Store
	mux   *http.ServeMux

	gets, puts, heads     atomic.Uint64
	getMisses, putRejects atomic.Uint64
	bytesIn, bytesOut     atomic.Uint64
}

// NewRemoteServer serves the given store over the remote object protocol.
func NewRemoteServer(store *Store) *RemoteServer {
	s := &RemoteServer{store: store}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc(remotePathPrefix, s.handleObject)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// Handler returns the server's HTTP handler.
func (s *RemoteServer) Handler() http.Handler { return s.mux }

// Store returns the backing store (stats, tests).
func (s *RemoteServer) Store() *Store { return s.store }

func (s *RemoteServer) handleObject(w http.ResponseWriter, r *http.Request) {
	addr := strings.TrimPrefix(r.URL.Path, remotePathPrefix)
	if !validAddress(addr) {
		http.Error(w, "malformed content address", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.gets.Add(1)
		// Zero-copy path for records the store has already verified this
		// process: the ResponseWriter is a ReaderFrom, so on the OS
		// filesystem this Copy is a sendfile — the record never transits
		// user space. First serves (and any store in doubt) take the
		// verifying GetRecord path below.
		if f, size, ok := s.store.OpenRecord(addr); ok {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", fmt.Sprint(size))
			io.Copy(w, f)
			f.Close()
			s.bytesOut.Add(uint64(size))
			return
		}
		record, ok := s.store.GetRecord(addr)
		if !ok {
			s.getMisses.Add(1)
			http.Error(w, "no record at address", http.StatusNotFound)
			return
		}
		s.bytesOut.Add(uint64(len(record)))
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(len(record)))
		w.Write(record)
	case http.MethodHead:
		s.heads.Add(1)
		if !s.store.StatRecord(addr) {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	case http.MethodPut:
		s.puts.Add(1)
		// Presized like the client's readBody: a short upload is judged by
		// record verification below, not treated as a transport error.
		record, err := readBody(r.Body, r.ContentLength)
		if err != nil {
			s.putRejects.Add(1)
			http.Error(w, "reading record body", http.StatusBadRequest)
			return
		}
		s.bytesIn.Add(uint64(len(record)))
		if _, err := s.store.PutRecord(record, addr); err != nil {
			if errors.Is(err, ErrCorrupt) {
				s.putRejects.Add(1)
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			// A store-side failure (full or degraded disk): the record did
			// not land, but the request was well-formed.
			http.Error(w, err.Error(), http.StatusInsufficientStorage)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "GET, HEAD or PUT an artifact record", http.StatusMethodNotAllowed)
	}
}

// RemoteServerStats is the daemon's observability snapshot: its own
// request counters plus the backing store's uniform tier quad.
type RemoteServerStats struct {
	Gets       uint64    `json:"gets"`
	GetMisses  uint64    `json:"get_misses"`
	Puts       uint64    `json:"puts"`
	PutRejects uint64    `json:"put_rejects"`
	Heads      uint64    `json:"heads"`
	BytesIn    uint64    `json:"bytes_in"`
	BytesOut   uint64    `json:"bytes_out"`
	Store      TierStats `json:"store"`
}

// Stats snapshots the server's counters.
func (s *RemoteServer) Stats() RemoteServerStats {
	return RemoteServerStats{
		Gets:       s.gets.Load(),
		GetMisses:  s.getMisses.Load(),
		Puts:       s.puts.Load(),
		PutRejects: s.putRejects.Load(),
		Heads:      s.heads.Load(),
		BytesIn:    s.bytesIn.Load(),
		BytesOut:   s.bytesOut.Load(),
		Store:      s.store.Stats(),
	}
}

func (s *RemoteServer) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}
