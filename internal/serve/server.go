package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"branchconf/internal/artifact"
	"branchconf/internal/exp"
	"branchconf/internal/memo"
)

// Config parameterises a resident confidence server.
type Config struct {
	// Defaults is the engine configuration requests overlay their budget
	// and segmenting onto (the daemon's startup switches: engine bypasses
	// for A/B runs, etc.).
	Defaults exp.Config
	// Parallel bounds concurrent experiments within one report request.
	Parallel int
	// MaxSessions bounds resident sessions (distinct request configs);
	// <=0 uses exp.DefaultMaxSessions.
	MaxSessions int
	// PassCacheBytes bounds each session's resident pass cache
	// (0 = unbounded).
	PassCacheBytes uint64
	// MaxInflight and MaxQueue shape the admission controller: at most
	// MaxInflight report requests execute at once, MaxQueue more wait.
	MaxInflight, MaxQueue int
	// QueueTimeout bounds each queued waiter (<=0: wait until a slot
	// frees, the client gives up, or the server drains).
	QueueTimeout time.Duration
	// MaxBranches caps the per-request branch budget (0 = uncapped).
	MaxBranches uint64
	// ReportCacheBytes bounds the retained deterministic (timing-free)
	// report bytes; 0 uses DefaultReportCacheBytes.
	ReportCacheBytes uint64
	// MemSoftLimitBytes, when non-zero, arms the memory-pressure janitor:
	// when HeapAlloc exceeds it, resident sessions and cached reports are
	// released (the bounded tiers underneath survive, so repopulation is
	// warm).
	MemSoftLimitBytes uint64
	// HeapStats includes per-stage peak-heap rows in stats snapshots
	// (requires heapwatch sampling enabled by the caller).
	HeapStats bool
	// Now is stubbed in tests for stable timing output (nil = time.Now).
	Now func() time.Time
}

// DefaultReportCacheBytes bounds the daemon's rendered-report cache when
// the config leaves it zero.
const DefaultReportCacheBytes = 64 << 20

// Server is the resident confidence engine: one process holding every
// cache tier hot — trace memo, annotated streams, bucket streams, model
// stats, curves, the artifact disk store, stream segments, and a pool of
// per-config session pass caches — behind an HTTP/JSON API serving many
// concurrent clients. Identical concurrent requests coalesce at two
// levels: whole deterministic reports single-flight through a rendered-
// bytes cache, and the underlying suite passes single-flight through the
// shared sessions regardless of how requests differ in rendering.
type Server struct {
	cfg     Config
	pool    *exp.SessionPool
	adm     *Admission
	reports memo.ByteLRU
	mux     *http.ServeMux

	requestsTotal  atomic.Uint64
	requestsOK     atomic.Uint64
	requestsFailed atomic.Uint64
	reportHits     atomic.Uint64
	reportMisses   atomic.Uint64
	pressureEvents atomic.Uint64

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// New builds a Server and arms its memory-pressure janitor if configured.
// Callers own process-wide engine state: cache bounds, sim parallelism,
// and the default artifact store are set once before requests arrive.
func New(cfg Config) *Server {
	if cfg.ReportCacheBytes == 0 {
		cfg.ReportCacheBytes = DefaultReportCacheBytes
	}
	s := &Server{
		cfg:         cfg,
		pool:        exp.NewSessionPool(cfg.MaxSessions, cfg.PassCacheBytes),
		adm:         NewAdmission(cfg.MaxInflight, cfg.MaxQueue, cfg.QueueTimeout),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	s.reports.SetBound(cfg.ReportCacheBytes)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/report", s.handleReport)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if cfg.MemSoftLimitBytes > 0 {
		go s.janitor()
	} else {
		close(s.janitorDone)
	}
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the session pool (stats endpoints, tests).
func (s *Server) Pool() *exp.SessionPool { return s.pool }

// Drain stops admitting report requests (readiness flips to 503, queued
// waiters are released with 503) and waits for in-flight requests to
// finish or ctx to expire. The HTTP listener itself is shut down by the
// caller afterwards, so health stays observable through the drain.
func (s *Server) Drain(ctx context.Context) error {
	s.adm.Drain()
	err := s.adm.Wait(ctx)
	s.Close()
	return err
}

// Close stops the janitor without draining (tests; Drain calls it).
func (s *Server) Close() {
	select {
	case <-s.janitorStop:
	default:
		close(s.janitorStop)
	}
	<-s.janitorDone
}

// janitor samples the heap and relieves pressure by releasing the
// unbounded resident state — sessions and rendered reports — leaving the
// byte-bounded tiers (and the disk store) to serve the warm rebuild.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	t := time.NewTicker(2 * time.Second)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc <= s.cfg.MemSoftLimitBytes {
				continue
			}
			s.pool.Trim()
			s.reports.Reset()
			s.pressureEvents.Add(1)
			runtime.GC()
		}
	}
}

// maxReportBody bounds a report request's JSON body.
const maxReportBody = 1 << 20

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a ReportRequest JSON body", http.StatusMethodNotAllowed)
		return
	}
	s.requestsTotal.Add(1)
	var req ReportRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxReportBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	// The trace identity in report-cache keys is whatever is on the
	// server's disk right now, never a digest the client claims.
	if err := req.ResolveTrace(); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if _, _, err := req.Validate(); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if s.cfg.MaxBranches > 0 && req.Branches > s.cfg.MaxBranches {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("branches %d exceeds the server's per-request cap (%d)", req.Branches, s.cfg.MaxBranches))
		return
	}

	report, cached, err := s.report(r.Context(), req)
	if err != nil {
		switch {
		case errors.Is(err, ErrDraining):
			s.fail(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQueueTimeout):
			w.Header().Set("Retry-After", "1")
			s.fail(w, http.StatusTooManyRequests, err)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			s.fail(w, 499, err) // client went away while queued
		default:
			s.fail(w, http.StatusInternalServerError, err)
		}
		return
	}
	s.requestsOK.Add(1)
	w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
	if cached {
		w.Header().Set("X-Report-Cache", "hit")
	} else {
		w.Header().Set("X-Report-Cache", "miss")
	}
	w.Write(report)
}

// report produces the request's bytes. Timing-free requests single-flight
// through (and are retained in) the rendered-report cache: concurrent
// identical requests coalesce onto one build, and repeats are served from
// memory — without passing admission, so a warm hit is never queued or
// shed. Requests that want wall-time lines render fresh — their bytes are
// intentionally non-deterministic — but still share every tier below the
// renderer, pass cache included. Admission bounds the actual builds.
func (s *Server) report(ctx context.Context, req ReportRequest) (_ []byte, cached bool, err error) {
	if !req.NoTimings {
		b, err := s.build(ctx, req)
		return b, false, err
	}
	e, owner := s.reports.Claim(req.Key())
	if !owner {
		<-e.Done
		if e.Err != nil {
			return nil, false, e.Err
		}
		s.reportHits.Add(1)
		return e.Val.([]byte), true, nil
	}
	s.reportMisses.Add(1)
	b, err := s.build(ctx, req)
	if err != nil {
		e.Err = err
		s.reports.Finish(e, 0)
		return nil, false, err
	}
	e.Val = b
	s.reports.Finish(e, uint64(len(b)))
	return b, false, nil
}

// build renders one report against the pooled session for the request's
// configuration, under the admission controller, surfacing a strict
// artifact store's pinned failure the same way the one-shot CLI does: a
// complete correct report or a clean error, never both.
func (s *Server) build(ctx context.Context, req ReportRequest) ([]byte, error) {
	release, err := s.adm.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	_, segment, err := req.Validate()
	if err != nil {
		return nil, err
	}
	session := s.pool.Get(req.SessionConfig(s.cfg.Defaults, segment))
	b, err := BuildReport(session, req, BuildOptions{Parallel: s.cfg.Parallel, Now: s.cfg.Now})
	if err != nil {
		return nil, err
	}
	if st := artifact.Default(); st != nil {
		if err := st.Err(); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.requestsFailed.Add(1)
	http.Error(w, err.Error(), status)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses, evictions := s.pool.Stats()
	snap := SnapshotCacheStats(hits, misses, s.cfg.HeapStats)
	inflight, queued := s.adm.Gauges()
	full, timeout, draining := s.adm.Rejections()
	snap.Server = &ServerStatsJSON{
		RequestsTotal:     s.requestsTotal.Load(),
		RequestsOK:        s.requestsOK.Load(),
		RequestsFailed:    s.requestsFailed.Load(),
		ReportCacheHits:   s.reportHits.Load(),
		ReportCacheMisses: s.reportMisses.Load(),
		Inflight:          inflight,
		Queued:            queued,
		RejectedFull:      full,
		RejectedTimeout:   timeout,
		RejectedDraining:  draining,
		SessionsResident:  s.pool.Len(),
		SessionEvictions:  evictions,
		PressureEvents:    s.pressureEvents.Load(),
		Draining:          s.adm.Draining(),
	}
	w.Header().Set("Content-Type", "application/json")
	WriteCacheStatsJSON(w, snap)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.adm.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}
