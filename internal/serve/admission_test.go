package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(2, 0, 0)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if inflight, queued := a.Gauges(); inflight != 2 || queued != 0 {
		t.Fatalf("gauges = %d inflight, %d queued; want 2, 0", inflight, queued)
	}
	r1()
	r1() // double release must be a no-op, not a slot leak
	r2()
	if inflight, _ := a.Gauges(); inflight != 0 {
		t.Fatalf("inflight = %d after release, want 0", inflight)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := NewAdmission(1, 1, 0)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// Fill the single waiter seat.
	waiterErr := make(chan error, 1)
	go func() {
		r, err := a.Acquire(context.Background())
		if err == nil {
			r()
		}
		waiterErr <- err
	}()
	// Wait until the waiter is seated, then the next caller must shed.
	for {
		if _, queued := a.Gauges(); queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow acquire: err = %v, want ErrQueueFull", err)
	}
	if full, _, _ := a.Rejections(); full != 1 {
		t.Fatalf("rejectedFull = %d, want 1", full)
	}
	release()
	if err := <-waiterErr; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := NewAdmission(1, 4, 5*time.Millisecond)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if _, timeout, _ := a.Rejections(); timeout != 1 {
		t.Fatalf("rejectedTimeout = %d, want 1", timeout)
	}
}

func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a := NewAdmission(1, 4, 0)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for {
			if _, queued := a.Gauges(); queued == 1 {
				cancel()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	if _, err := a.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAdmissionDrain(t *testing.T) {
	a := NewAdmission(1, 4, 0)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// A queued waiter must be released with ErrDraining.
	waiterErr := make(chan error, 1)
	go func() {
		_, err := a.Acquire(context.Background())
		waiterErr <- err
	}()
	for {
		if _, queued := a.Gauges(); queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	a.Drain()
	a.Drain() // idempotent
	if err := <-waiterErr; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter on drain: err = %v, want ErrDraining", err)
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("new acquire on drain: err = %v, want ErrDraining", err)
	}
	if !a.Draining() {
		t.Fatal("Draining() = false after Drain")
	}

	// Wait must block on the in-flight request and observe its release.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := a.Wait(ctx); err == nil {
		t.Fatal("Wait returned before the in-flight request released")
	}
	release()
	if err := a.Wait(context.Background()); err != nil {
		t.Fatalf("Wait after release: %v", err)
	}
	if _, _, draining := a.Rejections(); draining != 2 {
		t.Fatalf("rejectedDraining = %d, want 2", draining)
	}
}
