package serve

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"branchconf/internal/artifact"
	"branchconf/internal/exp"
)

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"0/1": {0, 1},
		"0/2": {0, 2},
		"1/2": {1, 2},
		"7/8": {7, 8},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", in, got, err, want)
		}
		if got.String() != in {
			t.Errorf("Shard%v.String() = %q, want %q", got, got.String(), in)
		}
	}
	for _, in := range []string{"", "1", "1/", "/2", "2/2", "3/2", "-1/2", "0/0", "0/-1", "a/b", "1/2/3", "1 /2"} {
		if sh, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) = %v, want error", in, sh)
		} else if !strings.Contains(err.Error(), `shard must have the form "i/n"`) {
			t.Errorf("ParseShard(%q) error style: %v", in, err)
		}
	}
}

// TestParseShardCanonicalOnly is the regression test for the
// non-canonical-spelling bug: strconv.Atoi tolerates signs and leading
// zeros, so "+0/2" and "00/2" used to parse to the same Shard as "0/2"
// while keying partial-report artifacts differently at publish time
// (the raw string travels in PartialReport.Shard). Every accepted
// spelling must round-trip through Shard.String() unchanged.
func TestParseShardCanonicalOnly(t *testing.T) {
	for _, in := range []string{
		"+0/2", "00/2", "0/02", "0/+2", "01/2", " 0/2", "0/2 ", "0x0/2",
	} {
		if sh, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) = %v, want error (non-canonical spelling)", in, sh)
		}
	}
	// The canonical spellings still parse, and parse to themselves.
	for _, in := range []string{"0/2", "1/2", "12/34"} {
		sh, err := ParseShard(in)
		if err != nil {
			t.Fatalf("ParseShard(%q): %v", in, err)
		}
		if sh.String() != in {
			t.Errorf("ParseShard(%q).String() = %q, want input back", in, sh.String())
		}
	}
}

// TestFanoutMergeByteIdentity pins the tentpole contract: for every shard
// count, building each shard's partial and merging them reproduces
// BuildReport's bytes exactly — sharding changes where a section is
// computed, never what the report contains.
func TestFanoutMergeByteIdentity(t *testing.T) {
	req := ReportRequest{Branches: 20000, Only: []string{"fig2", "fig5", "table1"}, NoTimings: true}
	session := exp.NewSession(exp.Config{Branches: req.Branches})
	opts := BuildOptions{Parallel: 2}
	want, err := BuildReport(session, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3} {
		partials := make([]*PartialReport, n)
		for i := 0; i < n; i++ {
			p, err := BuildPartial(session, req, opts, Shard{Index: i, Count: n})
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i, n, err)
			}
			// Round-trip the wire codec, as a real worker-to-coordinator
			// hop would.
			p, err = DecodePartial(p.Encode())
			if err != nil {
				t.Fatalf("shard %d/%d codec: %v", i, n, err)
			}
			partials[i] = p
		}
		// Merge order must not matter: partials own disjoint index sets and
		// the renderer walks registry order.
		for rot := 0; rot < n; rot++ {
			rotated := append(append([]*PartialReport{}, partials[rot:]...), partials[:rot]...)
			got, err := MergeReport(req, rotated)
			if err != nil {
				t.Fatalf("merge %d shards (rot %d): %v", n, rot, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("merged report (%d shards, rot %d) differs from BuildReport", n, rot)
			}
		}
	}
}

// TestPartialTimingsZeroedUnderNoTimings: a timing-free request's partial
// is a pure function of the request — elapsed never leaks into the bytes,
// so the KindPartial artifact is content-addressable.
func TestPartialTimingsZeroedUnderNoTimings(t *testing.T) {
	req := ReportRequest{Branches: 15000, Only: []string{"fig2"}, NoTimings: true}
	session := exp.NewSession(exp.Config{Branches: req.Branches})
	p1, err := BuildPartial(session, req, BuildOptions{}, Shard{Index: 0, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := BuildPartial(session, req, BuildOptions{}, Shard{Index: 0, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range p1.Sections {
		if sec.Elapsed != 0 {
			t.Fatalf("section %s carries elapsed %v under NoTimings", sec.ID, sec.Elapsed)
		}
	}
	if !bytes.Equal(p1.Encode(), p2.Encode()) {
		t.Fatal("timing-free partial bytes not reproducible")
	}
}

// TestShardValidation: empty shards are rejected up front, both by the
// shard-count validator and by a worker whose filter starves its slice.
func TestShardValidation(t *testing.T) {
	req := ReportRequest{Branches: 15000, Only: []string{"fig2", "fig5"}, NoTimings: true}
	if n, err := ValidateShards(req, 2); err != nil || n != 2 {
		t.Fatalf("ValidateShards(2 of 2) = %d, %v", n, err)
	}
	_, err := ValidateShards(req, 3)
	if err == nil || !strings.Contains(err.Error(), "leave shard") || !strings.Contains(err.Error(), "only 2 experiments selected") {
		t.Fatalf("ValidateShards(3 of 2) = %v, want empty-shard rejection", err)
	}
	session := exp.NewSession(exp.Config{Branches: req.Branches})
	if _, err := BuildPartial(session, req, BuildOptions{}, Shard{Index: 2, Count: 3}); err == nil || !strings.Contains(err.Error(), "selects no experiments") {
		t.Fatalf("BuildPartial on a starved shard = %v, want error", err)
	}
	if _, err := BuildPartial(session, req, BuildOptions{}, Shard{Index: 3, Count: 2}); err == nil {
		t.Fatal("BuildPartial accepted an out-of-range shard")
	}
}

// TestMergeRejectsSkew: merges fail loudly on anything that could produce
// a silently wrong report — missing shards, overlap, a partial built for a
// different request, or a format-version mismatch.
func TestMergeRejectsSkew(t *testing.T) {
	req := ReportRequest{Branches: 15000, Only: []string{"fig2", "fig5"}, NoTimings: true}
	session := exp.NewSession(exp.Config{Branches: req.Branches})
	build := func(i, n int) *PartialReport {
		t.Helper()
		p, err := BuildPartial(session, req, BuildOptions{}, Shard{Index: i, Count: n})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p0, p1 := build(0, 2), build(1, 2)

	if _, err := MergeReport(req, nil); err == nil {
		t.Fatal("merge of zero partials")
	}
	if _, err := MergeReport(req, []*PartialReport{p0}); err == nil || !strings.Contains(err.Error(), "missing from the merged partials") {
		t.Fatalf("merge with a missing shard = %v", err)
	}
	if _, err := MergeReport(req, []*PartialReport{p0, p0}); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("merge with overlapping shards = %v", err)
	}
	other := ReportRequest{Branches: 17000, Only: []string{"fig2", "fig5"}, NoTimings: true}
	if _, err := MergeReport(other, []*PartialReport{p0, p1}); err == nil || !strings.Contains(err.Error(), "different request") {
		t.Fatalf("merge across requests = %v", err)
	}
	stale := *p0
	stale.Format = PartialFormatVersion + 1
	if _, err := MergeReport(req, []*PartialReport{&stale, p1}); err == nil || !strings.Contains(err.Error(), "format") {
		t.Fatalf("merge with a stale codec = %v", err)
	}
	skew := *p0
	skew.Experiments = 99
	if _, err := MergeReport(req, []*PartialReport{&skew, p1}); err == nil || !strings.Contains(err.Error(), "registry skew") {
		t.Fatalf("merge with selection-size skew = %v", err)
	}
}

// TestPartialStoreRoundTrip: partials travel the artifact store under
// KindPartial and come back intact; a corrupted stored partial is dropped
// fail-closed as a miss.
func TestPartialStoreRoundTrip(t *testing.T) {
	store, err := artifact.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	artifact.SetDefault(store)
	defer artifact.SetDefault(nil)

	req := ReportRequest{Branches: 15000, Only: []string{"fig2", "fig5"}, NoTimings: true}
	session := exp.NewSession(exp.Config{Branches: req.Branches})
	sh := Shard{Index: 0, Count: 2}
	p, err := BuildPartial(session, req, BuildOptions{}, sh)
	if err != nil {
		t.Fatal(err)
	}
	if !PublishPartial(p) {
		t.Fatal("publish with a configured store reported no store")
	}
	got, ok := FetchPartial(req, sh)
	if !ok {
		t.Fatal("published partial not fetchable")
	}
	if !bytes.Equal(got.Encode(), p.Encode()) {
		t.Fatal("partial bytes changed across the store round trip")
	}
	if _, ok := FetchPartial(req, Shard{Index: 1, Count: 2}); ok {
		t.Fatal("phantom partial for an unpublished shard")
	}
	other := ReportRequest{Branches: 17000, Only: []string{"fig2", "fig5"}, NoTimings: true}
	if _, ok := FetchPartial(other, sh); ok {
		t.Fatal("phantom partial for a different request")
	}

	// A decodable-but-wrong payload under the right key is dropped, not
	// served: store a valid partial under the wrong shard's key.
	wrongKey := fmt.Sprintf("partial|fmt=%d|req{%s}|shard=1/2", PartialFormatVersion, req.Key())
	if err := store.Put(artifact.KindPartial, wrongKey, p.Encode()); err != nil {
		t.Fatal(err)
	}
	if _, ok := FetchPartial(req, Shard{Index: 1, Count: 2}); ok {
		t.Fatal("a mislabeled partial was served")
	}
}
