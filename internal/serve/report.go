package serve

import (
	"bytes"
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"branchconf/internal/exp"
)

// BuildOptions controls report execution outside the request itself.
type BuildOptions struct {
	// Parallel bounds concurrent experiments (<=1 = serial). The
	// per-benchmark simulation units below them are bounded separately by
	// sim.SetParallelism, which callers configure once per process.
	Parallel int
	// Progress, when non-nil, is called per completed experiment.
	Progress func(id string, elapsed float64)
	// Now is stubbed in tests for stable timing output (nil = time.Now).
	Now func() time.Time
}

// SelectExperiments applies the standard selection rules: registry order,
// the ablation skip, the id filter, and the opt-in gate (opt-in
// experiments run only when the filter names them explicitly).
func SelectExperiments(filter map[string]bool, skipAblations bool) ([]exp.Experiment, error) {
	var selected []exp.Experiment
	for _, e := range exp.All() {
		if skipAblations && strings.HasPrefix(e.ID, "ablation-") {
			continue
		}
		if filter != nil && !filter[e.ID] {
			continue
		}
		if e.OptIn && (filter == nil || !filter[e.ID]) {
			continue
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no experiments matched the filter")
	}
	return selected, nil
}

// BuildReport runs the selected experiments against the session and
// renders the consolidated markdown report. Experiments execute on a
// bounded worker pool claiming work in registration order; sections are
// assembled in registration order regardless of completion order, so the
// report bytes do not depend on the parallelism level. Both the one-shot
// CLI and the daemon render through this function — and the fan-out
// coordinator's merge renders shard partials through the same renderer —
// which is what makes daemon-served and shard-merged reports
// byte-identical to the one-shot CLI's output for the same request.
func BuildReport(session *exp.Session, req ReportRequest, opts BuildOptions) ([]byte, error) {
	filter, _, err := req.Validate()
	if err != nil {
		return nil, err
	}
	selected, err := SelectExperiments(filter, req.SkipAblations)
	if err != nil {
		return nil, err
	}
	indices := make([]int, len(selected))
	for i := range indices {
		indices[i] = i
	}
	results := runSelected(session, selected, indices, opts)
	return renderReport(req, selected, results)
}

// sectionResult is one experiment's outcome within a report build, indexed
// like the selection it came from.
type sectionResult struct {
	out     *exp.Output
	err     error
	elapsed float64
}

// runSelected executes the experiments at the given selection indices on a
// bounded worker pool claiming work in selection (= registration) order,
// returning a results slice indexed like selected (entries outside indices
// stay zero). The shard fan-out path runs strided subsets through the same
// runner the full build uses.
func runSelected(session *exp.Session, selected []exp.Experiment, indices []int, opts BuildOptions) []sectionResult {
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(indices) {
		workers = len(indices)
	}
	results := make([]sectionResult, len(selected))
	work := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				e := selected[idx]
				start := now()
				var o *exp.Output
				var err error
				// Label the experiment's goroutine (and, via propagation,
				// the simulation units it schedules) for CPU profiles.
				pprof.Do(context.Background(), pprof.Labels("experiment", e.ID), func(context.Context) {
					o, err = e.Run(session)
				})
				elapsed := now().Sub(start).Seconds()
				results[idx] = sectionResult{out: o, err: err, elapsed: elapsed}
				if opts.Progress != nil {
					opts.Progress(e.ID, elapsed)
				}
			}
		}()
	}
	for _, idx := range indices {
		work <- idx
	}
	close(work)
	wg.Wait()
	return results
}

// renderReport assembles the final markdown from per-experiment results in
// registration order — the single renderer behind one-shot, daemon, and
// shard-merged reports.
func renderReport(req ReportRequest, selected []exp.Experiment, results []sectionResult) ([]byte, error) {
	var w bytes.Buffer
	fmt.Fprintf(&w, "# Paper reproduction report\n\n")
	fmt.Fprintf(&w, "Per-benchmark branch budget: %s\n\n", budgetString(req.Branches))
	for i, e := range selected {
		r := results[i]
		if r.err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, r.err)
		}
		fmt.Fprintf(&w, "## %s — %s\n\n", e.ID, e.Title)
		fmt.Fprintf(&w, "Paper: %s\n\n", e.Paper)
		fmt.Fprintf(&w, "```\n%s```\n", ensureNewline(r.out.Text))
		if len(r.out.Scalars) > 0 {
			fmt.Fprintf(&w, "\n| metric | value |\n|---|---|\n")
			for _, k := range sortedKeys(r.out.Scalars) {
				fmt.Fprintf(&w, "| %s | %.3f |\n", k, r.out.Scalars[k])
			}
		}
		if req.NoTimings {
			fmt.Fprintf(&w, "\n")
		} else {
			fmt.Fprintf(&w, "\n_(ran in %.1fs)_\n\n", r.elapsed)
		}
	}
	return w.Bytes(), nil
}

func budgetString(n uint64) string {
	if n == 0 {
		return "benchmark default (1,000,000)"
	}
	return fmt.Sprintf("%d", n)
}

func ensureNewline(s string) string {
	if s == "" || strings.HasSuffix(s, "\n") {
		return s
	}
	return s + "\n"
}

// sortedKeys returns the map's keys sorted.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
