package serve

import (
	"strings"
	"testing"
)

func TestRequestKeyNormalization(t *testing.T) {
	a := ReportRequest{Branches: 1000, Only: []string{"fig5", "fig2"}, NoTimings: true}
	b := ReportRequest{Branches: 1000, Only: []string{"fig2", "fig5", "fig2"}, NoTimings: true}
	if a.Key() != b.Key() {
		t.Fatalf("order/duplicate-insensitive keys differ:\n%s\n%s", a.Key(), b.Key())
	}
	distinct := []ReportRequest{
		{Branches: 2000, Only: []string{"fig5", "fig2"}, NoTimings: true},
		{Branches: 1000, Only: []string{"fig2"}, NoTimings: true},
		{Branches: 1000, Only: []string{"fig5", "fig2"}},
		{Branches: 1000, Only: []string{"fig5", "fig2"}, NoTimings: true, SkipAblations: true},
		{Branches: 1000, Only: []string{"fig5", "fig2"}, NoTimings: true, SegmentBranches: 4096},
	}
	for i, r := range distinct {
		if r.Key() == a.Key() {
			t.Errorf("distinct request %d collides: %s", i, r.Key())
		}
	}
}

// TestRequestTraceIdentity: a trace-bearing request keys on the file's
// resolved content digest, never on the path, and an unresolved trace is
// rejected before it can be keyed or built.
func TestRequestTraceIdentity(t *testing.T) {
	unresolved := ReportRequest{TraceFile: "/tmp/some.champsim"}
	if _, _, err := unresolved.Validate(); err == nil || !strings.Contains(err.Error(), "unresolved") {
		t.Fatalf("unresolved trace accepted: %v", err)
	}
	a := ReportRequest{TraceFile: "/a/t.champsim", TraceDigest: "d1", TraceCount: 42}
	b := ReportRequest{TraceFile: "/elsewhere/copy.champsim", TraceDigest: "d1", TraceCount: 42}
	if a.Key() != b.Key() {
		t.Fatalf("same trace content at different paths keys differently:\n%s\n%s", a.Key(), b.Key())
	}
	if strings.Contains(a.Key(), "t.champsim") {
		t.Fatalf("trace path leaked into the request key: %s", a.Key())
	}
	c := ReportRequest{TraceFile: "/a/t.champsim", TraceDigest: "d2", TraceCount: 42}
	if c.Key() == a.Key() {
		t.Fatal("changed trace content collides with the old key")
	}
	if (ReportRequest{}).Key() == a.Key() {
		t.Fatal("trace-bearing request collides with the trace-free key")
	}
}

func TestRequestValidateUnknownID(t *testing.T) {
	_, _, err := ReportRequest{Only: []string{"fig2", "nope"}}.Validate()
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	if !strings.Contains(err.Error(), `"nope"`) || !strings.Contains(err.Error(), "valid ids:") {
		t.Fatalf("error does not name the offender and the valid ids: %v", err)
	}
}

func TestResolveSegment(t *testing.T) {
	cases := []struct {
		name              string
		branches, segment uint64
		noStream          bool
		want              uint64
		wantErr           string
	}{
		{name: "default-budget-monolithic", branches: 0, want: 0},
		{name: "explicit-segment", branches: 0, segment: 4096, want: 4096},
		{name: "auto-above-ceiling", branches: MaterializeCeiling + 1, want: AutoSegmentBranches},
		{name: "no-stream-small", branches: 10000, noStream: true, want: 0},
		{name: "no-stream-above-ceiling", branches: MaterializeCeiling + 1, noStream: true, wantErr: "materialization ceiling"},
		{name: "no-stream-with-segment", segment: 4096, noStream: true, wantErr: "conflicts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ResolveSegment(tc.branches, tc.segment, tc.noStream)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("segment = %d, want %d", got, tc.want)
			}
		})
	}
}
