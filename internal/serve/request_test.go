package serve

import (
	"strings"
	"testing"
)

func TestRequestKeyNormalization(t *testing.T) {
	a := ReportRequest{Branches: 1000, Only: []string{"fig5", "fig2"}, NoTimings: true}
	b := ReportRequest{Branches: 1000, Only: []string{"fig2", "fig5", "fig2"}, NoTimings: true}
	if a.Key() != b.Key() {
		t.Fatalf("order/duplicate-insensitive keys differ:\n%s\n%s", a.Key(), b.Key())
	}
	distinct := []ReportRequest{
		{Branches: 2000, Only: []string{"fig5", "fig2"}, NoTimings: true},
		{Branches: 1000, Only: []string{"fig2"}, NoTimings: true},
		{Branches: 1000, Only: []string{"fig5", "fig2"}},
		{Branches: 1000, Only: []string{"fig5", "fig2"}, NoTimings: true, SkipAblations: true},
		{Branches: 1000, Only: []string{"fig5", "fig2"}, NoTimings: true, SegmentBranches: 4096},
	}
	for i, r := range distinct {
		if r.Key() == a.Key() {
			t.Errorf("distinct request %d collides: %s", i, r.Key())
		}
	}
}

func TestRequestValidateUnknownID(t *testing.T) {
	_, _, err := ReportRequest{Only: []string{"fig2", "nope"}}.Validate()
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	if !strings.Contains(err.Error(), `"nope"`) || !strings.Contains(err.Error(), "valid ids:") {
		t.Fatalf("error does not name the offender and the valid ids: %v", err)
	}
}

func TestResolveSegment(t *testing.T) {
	cases := []struct {
		name              string
		branches, segment uint64
		noStream          bool
		want              uint64
		wantErr           string
	}{
		{name: "default-budget-monolithic", branches: 0, want: 0},
		{name: "explicit-segment", branches: 0, segment: 4096, want: 4096},
		{name: "auto-above-ceiling", branches: MaterializeCeiling + 1, want: AutoSegmentBranches},
		{name: "no-stream-small", branches: 10000, noStream: true, want: 0},
		{name: "no-stream-above-ceiling", branches: MaterializeCeiling + 1, noStream: true, wantErr: "materialization ceiling"},
		{name: "no-stream-with-segment", segment: 4096, noStream: true, wantErr: "conflicts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ResolveSegment(tc.branches, tc.segment, tc.noStream)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("segment = %d, want %d", got, tc.want)
			}
		})
	}
}
