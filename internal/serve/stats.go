package serve

import (
	"encoding/json"
	"io"

	"branchconf/internal/artifact"
	"branchconf/internal/exp"
	"branchconf/internal/heapwatch"
)

// TierStatsJSON is one cache tier's uniform counter quad plus health
// columns in machine-readable form — the JSON twin of the -cache-stats
// text rows.
type TierStatsJSON struct {
	Name          string `json:"name"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	ResidentBytes uint64 `json:"resident_bytes"`
	VerifyFails   uint64 `json:"verify_fails"`
	OpErrors      uint64 `json:"op_errors"`
	Degraded      bool   `json:"degraded"`
}

func tierJSON(name string, s artifact.TierStats) TierStatsJSON {
	return TierStatsJSON{
		Name:          name,
		Hits:          s.Hits,
		Misses:        s.Misses,
		Evictions:     s.Evictions,
		ResidentBytes: s.ResidentBytes,
		VerifyFails:   s.VerifyFails,
		OpErrors:      s.OpErrors,
		Degraded:      s.Degraded,
	}
}

// HeapStageJSON is one engine stage's peak-heap row (present only when
// heap sampling was enabled for the run).
type HeapStageJSON struct {
	Stage         string `json:"stage"`
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

// CacheStatsJSON is the machine-readable eight-tier stats snapshot: the
// session-pass tier on top, the engine tiers beneath it in consultation
// order, and optional per-stage peak-heap rows. The one-shot CLI's
// -cache-stats-json flag and the daemon's stats endpoint emit the same
// encoding.
type CacheStatsJSON struct {
	SessionPass TierStatsJSON    `json:"session_pass"`
	Tiers       []TierStatsJSON  `json:"tiers"`
	HeapStages  []HeapStageJSON  `json:"heap_stages,omitempty"`
	Server      *ServerStatsJSON `json:"server,omitempty"`
}

// ServerStatsJSON is the daemon's own request-path counters, absent from
// one-shot snapshots.
type ServerStatsJSON struct {
	RequestsTotal     uint64 `json:"requests_total"`
	RequestsOK        uint64 `json:"requests_ok"`
	RequestsFailed    uint64 `json:"requests_failed"`
	ReportCacheHits   uint64 `json:"report_cache_hits"`
	ReportCacheMisses uint64 `json:"report_cache_misses"`
	Inflight          int64  `json:"inflight"`
	Queued            int64  `json:"queued"`
	RejectedFull      uint64 `json:"rejected_queue_full"`
	RejectedTimeout   uint64 `json:"rejected_queue_timeout"`
	RejectedDraining  uint64 `json:"rejected_draining"`
	SessionsResident  int    `json:"sessions_resident"`
	SessionEvictions  uint64 `json:"session_evictions"`
	PressureEvents    uint64 `json:"memory_pressure_events"`
	Draining          bool   `json:"draining"`
}

// SnapshotCacheStats assembles the uniform snapshot from the process-wide
// tiers plus the caller's session-pass counters (a one-shot run reports
// its private session; the daemon aggregates its pool).
func SnapshotCacheStats(passHits, passMisses uint64, heapStages bool) CacheStatsJSON {
	out := CacheStatsJSON{
		SessionPass: tierJSON("session-pass", artifact.TierStats{Hits: passHits, Misses: passMisses}),
	}
	for _, tier := range exp.CacheTiers() {
		out.Tiers = append(out.Tiers, tierJSON(tier.Name, tier.Stats))
	}
	if heapStages {
		for _, sp := range heapwatch.Report() {
			out.HeapStages = append(out.HeapStages, HeapStageJSON{Stage: sp.Stage, PeakHeapBytes: sp.Peak})
		}
	}
	return out
}

// WriteCacheStatsJSON encodes the snapshot as indented JSON with a
// trailing newline — the exact bytes both the CLI flag and the daemon
// endpoint produce.
func WriteCacheStatsJSON(w io.Writer, s CacheStatsJSON) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
