package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"branchconf/internal/exp"
)

// newTestServer builds a server with small bounds suitable for unit tests.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Parallel == 0 {
		cfg.Parallel = 2
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 4
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 16
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postReport(t *testing.T, base string, req ReportRequest) ([]byte, bool, error) {
	t.Helper()
	c := &Client{Base: base}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	return c.Report(ctx, req)
}

// TestServerReportMatchesBuildReport pins the tentpole identity: bytes
// served by the daemon equal serve.BuildReport against a private session —
// the same function the one-shot CLI renders through.
func TestServerReportMatchesBuildReport(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := ReportRequest{Branches: 20000, Only: []string{"fig2", "table1"}, NoTimings: true}

	got, cached, err := postReport(t, ts.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first request reported a report-cache hit")
	}
	want, err := BuildReport(exp.NewSession(exp.Config{Branches: 20000}), req, BuildOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("daemon-served report differs from BuildReport:\ndaemon: %q...\nlocal:  %q...", truncate(got), truncate(want))
	}

	// The repeat must be served from the rendered-report cache, byte-equal.
	again, cached, err := postReport(t, ts.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("repeat request missed the report cache")
	}
	if !bytes.Equal(again, got) {
		t.Fatal("cached report bytes diverged")
	}
}

func truncate(b []byte) []byte {
	if len(b) > 120 {
		return b[:120]
	}
	return b
}

// TestServerCoalescesConcurrentRequests: identical timing-free requests
// arriving together must coalesce onto one build — every response
// byte-identical, exactly one report-cache miss.
func TestServerCoalescesConcurrentRequests(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	req := ReportRequest{Branches: 15000, Only: []string{"fig2"}, NoTimings: true}

	const clients = 8
	responses := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			responses[g], _, errs[g] = postReport(t, ts.URL, req)
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", g, err)
		}
	}
	for g := 1; g < clients; g++ {
		if !bytes.Equal(responses[g], responses[0]) {
			t.Fatalf("client %d got different bytes", g)
		}
	}
	if misses := srv.reportMisses.Load(); misses != 1 {
		t.Fatalf("report-cache misses = %d, want 1 (all clients coalesced)", misses)
	}
}

// TestServerTimingRequestsBypassCache: requests that want wall-time lines
// are never served from the rendered-report cache.
func TestServerTimingRequestsBypassCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	req := ReportRequest{Branches: 15000, Only: []string{"fig2"}}
	for i := 0; i < 2; i++ {
		if _, cached, err := postReport(t, ts.URL, req); err != nil {
			t.Fatal(err)
		} else if cached {
			t.Fatalf("request %d with timings served from the report cache", i)
		}
	}
	if hits := srv.reportHits.Load(); hits != 0 {
		t.Fatalf("report-cache hits = %d for timing requests, want 0", hits)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBranches: 50000})

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/report", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post(`{"only":["nonesuch"]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown id: status %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"branches":100000}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("budget over cap: status %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"branches":`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"nonsense_field":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET report: status %d, want 405", resp.StatusCode)
	}
}

// TestServerStatsEndpoint: the stats snapshot decodes, reports every
// engine tier plus the daemon's own counters, and moves with traffic.
func TestServerStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := ReportRequest{Branches: 15000, Only: []string{"fig2"}, NoTimings: true}
	if _, _, err := postReport(t, ts.URL, req); err != nil {
		t.Fatal(err)
	}
	if _, _, err := postReport(t, ts.URL, req); err != nil {
		t.Fatal(err)
	}

	c := &Client{Base: ts.URL}
	snap, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, tier := range snap.Tiers {
		names[tier.Name] = true
	}
	for _, want := range []string{"trace-memo", "annotated-stream", "bucket-stream", "model-stats", "curve", "artifact-disk", "stream-segment"} {
		if !names[want] {
			t.Errorf("stats missing tier %q", want)
		}
	}
	if snap.Server == nil {
		t.Fatal("stats missing the server section")
	}
	if snap.Server.RequestsTotal != 2 || snap.Server.RequestsOK != 2 {
		t.Errorf("server counters = %+v, want 2 total / 2 ok", snap.Server)
	}
	if snap.Server.ReportCacheHits != 1 || snap.Server.ReportCacheMisses != 1 {
		t.Errorf("report cache counters = %d hits / %d misses, want 1/1",
			snap.Server.ReportCacheHits, snap.Server.ReportCacheMisses)
	}
	if snap.SessionPass.Misses == 0 {
		t.Error("session-pass tier never missed despite a live build")
	}
	if snap.Server.SessionsResident != 1 {
		t.Errorf("sessions resident = %d, want 1", snap.Server.SessionsResident)
	}
}

// TestServerDrainLifecycle: draining flips readiness, sheds new report
// work with 503, keeps liveness and stats observable, and Drain returns
// once in-flight work completes.
func TestServerDrainLifecycle(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after drain: %d, want 200", code)
	}
	if code := get("/v1/stats"); code != http.StatusOK {
		t.Fatalf("stats after drain: %d, want 200", code)
	}
	_, _, err := postReport(t, ts.URL, ReportRequest{Branches: 15000, Only: []string{"fig2"}})
	var se *StatusError
	if err == nil {
		t.Fatal("report accepted while draining")
	} else if !asStatus(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("report while draining: %v, want 503", err)
	}
}

func asStatus(err error, out **StatusError) bool {
	se, ok := err.(*StatusError)
	if ok {
		*out = se
	}
	return ok
}

// TestServerAdmissionSheds: with one slot, no queue, and a long build in
// flight, a second distinct build must shed with 429 while a cached
// report still serves.
func TestServerAdmissionSheds(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 1, MaxQueue: -1, QueueTimeout: time.Millisecond})
	// MaxQueue -1 clamps to 0: no waiting room at all.

	warm := ReportRequest{Branches: 12000, Only: []string{"fig2"}, NoTimings: true}
	if _, _, err := postReport(t, ts.URL, warm); err != nil {
		t.Fatal(err)
	}

	// Occupy the only slot.
	release, err := srv.adm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// A fresh build has nowhere to go: 429.
	_, _, err = postReport(t, ts.URL, ReportRequest{Branches: 13000, Only: []string{"fig2"}, NoTimings: true})
	var se *StatusError
	if err == nil || !asStatus(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("fresh build with a full server: %v, want 429", err)
	}

	// The warm report is served from cache without touching admission.
	if _, cached, err := postReport(t, ts.URL, warm); err != nil || !cached {
		t.Fatalf("warm report during saturation: cached=%t err=%v", cached, err)
	}
}

// TestServerStatsJSONShape guards the satellite contract: the one-shot
// CLI's -cache-stats-json and the daemon's stats endpoint share one
// encoder, so the tier rows decode identically.
func TestServerStatsJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCacheStatsJSON(&buf, SnapshotCacheStats(3, 4, false)); err != nil {
		t.Fatal(err)
	}
	var snap CacheStatsJSON
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if snap.SessionPass.Hits != 3 || snap.SessionPass.Misses != 4 {
		t.Fatalf("session-pass = %+v", snap.SessionPass)
	}
	if len(snap.Tiers) != 8 {
		t.Fatalf("tiers = %d, want 8", len(snap.Tiers))
	}
	if snap.Tiers[7].Name != "remote-artifact" {
		t.Fatalf("tier 8 = %q, want remote-artifact (tiers append, never reorder)", snap.Tiers[7].Name)
	}
	if snap.Server != nil {
		t.Fatal("one-shot snapshot grew a server section")
	}
	if !strings.Contains(buf.String(), `"resident_bytes"`) {
		t.Fatal("snake_case field names missing")
	}
}

// TestServerMemoryPressureJanitor: a tiny soft limit must trigger the
// janitor, releasing resident sessions and cached reports.
func TestServerMemoryPressureJanitor(t *testing.T) {
	srv, ts := newTestServer(t, Config{MemSoftLimitBytes: 1}) // always over
	req := ReportRequest{Branches: 12000, Only: []string{"fig2"}, NoTimings: true}
	if _, _, err := postReport(t, ts.URL, req); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.pressureEvents.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("janitor never fired despite a 1-byte soft limit")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if srv.pool.Len() != 0 {
		// The pool may repopulate if another request lands; none do here.
		t.Fatalf("sessions resident after pressure relief: %d", srv.pool.Len())
	}
}
