package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is the thin HTTP client the CLI's client subcommand and the load
// generator drive the daemon through.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8091".
	Base string
	// HTTP is the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// Report requests one report, returning its bytes and whether the daemon
// served it from its rendered-report cache.
func (c *Client) Report(ctx context.Context, req ReportRequest) (report []byte, cached bool, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, false, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/report"), bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, &StatusError{Code: resp.StatusCode, Body: strings.TrimSpace(string(b))}
	}
	return b, resp.Header.Get("X-Report-Cache") == "hit", nil
}

// Stats fetches the daemon's machine-readable cache-stats snapshot.
func (c *Client) Stats(ctx context.Context) (CacheStatsJSON, error) {
	var snap CacheStatsJSON
	b, err := c.get(ctx, "/v1/stats")
	if err != nil {
		return snap, err
	}
	err = json.Unmarshal(b, &snap)
	return snap, err
}

// Health probes the liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	_, err := c.get(ctx, "/healthz")
	return err
}

// Ready probes the readiness endpoint; a draining daemon returns a
// StatusError with code 503.
func (c *Client) Ready(ctx context.Context) error {
	_, err := c.get(ctx, "/readyz")
	return err
}

func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: resp.StatusCode, Body: strings.TrimSpace(string(b))}
	}
	return b, nil
}

// StatusError is a non-200 daemon response.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("daemon returned %d: %s", e.Code, e.Body)
}
