package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Admission errors, mapped to HTTP statuses by the server (429 for load
// shedding, 503 while draining).
var (
	ErrQueueFull    = errors.New("serve: admission queue full")
	ErrQueueTimeout = errors.New("serve: timed out waiting for an execution slot")
	ErrDraining     = errors.New("serve: server is draining")
)

// Admission is the daemon's request-level admission controller: the
// descendant of the one-shot CLI's -parallel slot pool, lifted to a
// resident process. At most MaxInflight report requests execute at once;
// up to MaxQueue more wait, each bounded by QueueTimeout; anything beyond
// that is shed immediately. Draining closes admission to new work and
// lets Wait observe the last admitted request finish. (Below this layer,
// per-benchmark simulation units are still bounded by the process-wide
// sim slot pool — admission bounds how many *requests* contend for it.)
type Admission struct {
	slots chan struct{} // execution slots (capacity MaxInflight)
	queue chan struct{} // waiter tickets (capacity MaxQueue)

	timeout time.Duration

	drainOnce sync.Once
	draining  chan struct{}
	inflight  sync.WaitGroup

	inflightN atomic.Int64
	queuedN   atomic.Int64

	admitted         atomic.Uint64
	rejectedFull     atomic.Uint64
	rejectedTimeout  atomic.Uint64
	rejectedDraining atomic.Uint64
}

// NewAdmission builds a controller admitting maxInflight concurrent
// requests (<1 clamps to 1) with a waiting room of maxQueue (<0 clamps to
// 0) bounded by queueTimeout per waiter (<=0 means waiters hold on until
// a slot frees or the server drains).
func NewAdmission(maxInflight, maxQueue int, queueTimeout time.Duration) *Admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{
		slots:    make(chan struct{}, maxInflight),
		queue:    make(chan struct{}, maxQueue),
		timeout:  queueTimeout,
		draining: make(chan struct{}),
	}
}

// Acquire admits the caller or sheds it. On success the returned release
// must be called exactly once when the request's work is done.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	select {
	case <-a.draining:
		a.rejectedDraining.Add(1)
		return nil, ErrDraining
	default:
	}

	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		return a.admit(), nil
	default:
	}

	// Claim a waiter ticket or shed.
	select {
	case a.queue <- struct{}{}:
	default:
		a.rejectedFull.Add(1)
		return nil, ErrQueueFull
	}
	a.queuedN.Add(1)
	defer func() {
		a.queuedN.Add(-1)
		<-a.queue
	}()

	var timeoutC <-chan time.Time
	if a.timeout > 0 {
		t := time.NewTimer(a.timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case a.slots <- struct{}{}:
		return a.admit(), nil
	case <-timeoutC:
		a.rejectedTimeout.Add(1)
		return nil, ErrQueueTimeout
	case <-ctx.Done():
		a.rejectedTimeout.Add(1)
		return nil, ctx.Err()
	case <-a.draining:
		a.rejectedDraining.Add(1)
		return nil, ErrDraining
	}
}

func (a *Admission) admit() func() {
	a.admitted.Add(1)
	a.inflightN.Add(1)
	a.inflight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			a.inflightN.Add(-1)
			a.inflight.Done()
			<-a.slots
		})
	}
}

// Drain closes admission to new requests (idempotent). Queued waiters are
// released with ErrDraining; in-flight requests run to completion.
func (a *Admission) Drain() {
	a.drainOnce.Do(func() { close(a.draining) })
}

// Draining reports whether Drain has been called.
func (a *Admission) Draining() bool {
	select {
	case <-a.draining:
		return true
	default:
		return false
	}
}

// Wait blocks until every admitted request has released its slot, or the
// context expires.
func (a *Admission) Wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		a.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Gauges reports the current in-flight and queued request counts.
func (a *Admission) Gauges() (inflight, queued int64) {
	return a.inflightN.Load(), a.queuedN.Load()
}

// Rejections reports the shed counters: queue-full, queue-timeout (which
// also counts callers whose own context expired while queued), and
// rejected-while-draining.
func (a *Admission) Rejections() (full, timeout, draining uint64) {
	return a.rejectedFull.Load(), a.rejectedTimeout.Load(), a.rejectedDraining.Load()
}
