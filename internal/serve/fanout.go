package serve

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"branchconf/internal/artifact"
	"branchconf/internal/exp"
)

// Sharded experiment fan-out. The (experiment, benchmark) unit matrix of a
// report is partitioned deterministically across worker processes: shard
// i of n owns the experiments at selection indices ≡ i (mod n), where the
// selection is the same registry-order list every entry point derives from
// the request. Each worker runs only its slice and emits a PartialReport —
// the rendered section text, scalars, and timings for its experiments —
// which travels either as a file or as a KindPartial artifact through the
// (possibly remote) content-addressed store. The coordinator merges
// partials in registry order through the same renderer BuildReport uses,
// so the merged report is byte-identical to the single-process report by
// construction: sections were already assembled position-wise there, and a
// shard changes where a section is computed, never what it contains.

// Shard names one worker's slice of the experiment selection: Index in
// [0, Count). The zero value (Count == 0) means "no sharding".
type Shard struct {
	Index, Count int
}

// ParseShard parses the CLI's "i/n" shard syntax, strictly: two bare
// decimal integers with 0 <= i < n, nothing else. Partial-report
// artifacts key on the shard's canonical rendering, so any spelling that
// does not round-trip through Shard.String() — "+0/2", "00/2", " 1/2" —
// is rejected outright: accepting it would let two spellings of the same
// shard miss each other in the store.
func ParseShard(s string) (Shard, error) {
	bad := func() (Shard, error) {
		return Shard{}, fmt.Errorf("shard must have the form \"i/n\" with 0 <= i < n, got %q", s)
	}
	idx, count, found := strings.Cut(s, "/")
	if !found {
		return bad()
	}
	i, err := strconv.Atoi(idx)
	if err != nil {
		return bad()
	}
	n, err := strconv.Atoi(count)
	if err != nil {
		return bad()
	}
	if n < 1 || i < 0 || i >= n {
		return bad()
	}
	sh := Shard{Index: i, Count: n}
	if sh.String() != s {
		return bad()
	}
	return sh, nil
}

// String renders the shard in its CLI form.
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// PartialFormatVersion is the partial-report codec version; it participates
// in the artifact key, so a codec change can never deserialize stale
// partials.
const PartialFormatVersion = 1

// PartialReport is one shard's share of a report: enough to merge without
// re-running anything, and enough to verify it belongs to the merge it is
// offered for (the canonical request key and the selection size travel
// with it).
type PartialReport struct {
	Format int `json:"format"`
	// Request is the full request the shard ran; merges verify every
	// partial shares the coordinator's canonical request key.
	Request ReportRequest `json:"request"`
	// Shard is the worker's "i/n" coordinates.
	Shard string `json:"shard"`
	// Experiments is the size of the full selection the shard was cut
	// from, a cheap consistency check against registry skew.
	Experiments int              `json:"experiments"`
	Sections    []PartialSection `json:"sections"`
}

// PartialSection is one experiment's rendered result.
type PartialSection struct {
	// Index is the experiment's position in the full selection.
	Index int `json:"index"`
	// ID is the experiment id at that position, verified on merge.
	ID      string             `json:"id"`
	Text    string             `json:"text"`
	Scalars map[string]float64 `json:"scalars,omitempty"`
	// Elapsed is the shard-measured wall time; zeroed for timing-free
	// requests so the partial's bytes are a pure function of the request.
	Elapsed float64 `json:"elapsed,omitempty"`
}

// Encode renders the partial as its canonical JSON bytes (scalar maps are
// key-sorted by the encoder, so equal partials encode equal bytes).
func (p *PartialReport) Encode() []byte {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		// Only unmarshalable values reach here, and the struct holds none.
		panic(fmt.Sprintf("serve: encoding partial report: %v", err))
	}
	return append(b, '\n')
}

// DecodePartial parses and version-checks one partial report.
func DecodePartial(data []byte) (*PartialReport, error) {
	var p PartialReport
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("decoding partial report: %w", err)
	}
	if p.Format != PartialFormatVersion {
		return nil, fmt.Errorf("partial report format %d, want %d", p.Format, PartialFormatVersion)
	}
	if _, err := ParseShard(p.Shard); err != nil {
		return nil, fmt.Errorf("partial report: %w", err)
	}
	return &p, nil
}

// shardIndices returns the selection indices shard owns, in order.
func shardIndices(sh Shard, selected int) []int {
	var idx []int
	for i := sh.Index; i < selected; i += sh.Count {
		idx = append(idx, i)
	}
	return idx
}

// ValidateShards checks that a shard count leaves no shard empty for the
// request's selection, up front and with the exact selection size in the
// error — the CLI rejects a fan-out that could only produce an
// unmergeable set of partials.
func ValidateShards(req ReportRequest, count int) (selected int, err error) {
	filter, _, err := req.Validate()
	if err != nil {
		return 0, err
	}
	sel, err := SelectExperiments(filter, req.SkipAblations)
	if err != nil {
		return 0, err
	}
	if count > len(sel) {
		return 0, fmt.Errorf("%d shards leave shard %d/%d empty: only %d experiments selected", count, len(sel), count, len(sel))
	}
	return len(sel), nil
}

// BuildPartial runs shard's slice of the request's selection against the
// session and returns the shard's partial report. An empty slice — a
// filter that starves the shard — is an error, caught before any
// simulation runs.
func BuildPartial(session *exp.Session, req ReportRequest, opts BuildOptions, sh Shard) (*PartialReport, error) {
	if sh.Count < 1 || sh.Index < 0 || sh.Index >= sh.Count {
		return nil, fmt.Errorf("shard must have the form \"i/n\" with 0 <= i < n, got %q", sh)
	}
	filter, _, err := req.Validate()
	if err != nil {
		return nil, err
	}
	selected, err := SelectExperiments(filter, req.SkipAblations)
	if err != nil {
		return nil, err
	}
	indices := shardIndices(sh, len(selected))
	if len(indices) == 0 {
		return nil, fmt.Errorf("shard %s selects no experiments: only %d selected", sh, len(selected))
	}
	results := runSelected(session, selected, indices, opts)
	p := &PartialReport{
		Format:      PartialFormatVersion,
		Request:     req,
		Shard:       sh.String(),
		Experiments: len(selected),
	}
	for _, idx := range indices {
		r := results[idx]
		if r.err != nil {
			return nil, fmt.Errorf("%s: %w", selected[idx].ID, r.err)
		}
		sec := PartialSection{
			Index:   idx,
			ID:      selected[idx].ID,
			Text:    r.out.Text,
			Scalars: r.out.Scalars,
		}
		if !req.NoTimings {
			sec.Elapsed = r.elapsed
		}
		p.Sections = append(p.Sections, sec)
	}
	return p, nil
}

// MergeReport assembles partial reports into the final markdown, in
// registry order, through the renderer BuildReport uses. Every partial
// must have been built for the same canonical request, every selected
// experiment must be covered exactly once, and section ids must match the
// selection — version or filter skew between workers is an error, never a
// silently wrong report.
func MergeReport(req ReportRequest, partials []*PartialReport) ([]byte, error) {
	if len(partials) == 0 {
		return nil, fmt.Errorf("merge needs at least one partial report")
	}
	filter, _, err := req.Validate()
	if err != nil {
		return nil, err
	}
	selected, err := SelectExperiments(filter, req.SkipAblations)
	if err != nil {
		return nil, err
	}
	key := req.Key()
	results := make([]sectionResult, len(selected))
	owner := make([]string, len(selected))
	for _, p := range partials {
		if p.Format != PartialFormatVersion {
			return nil, fmt.Errorf("partial from shard %s has format %d, want %d", p.Shard, p.Format, PartialFormatVersion)
		}
		if got := p.Request.Key(); got != key {
			return nil, fmt.Errorf("partial from shard %s was built for a different request (%s, merging %s)", p.Shard, got, key)
		}
		if p.Experiments != len(selected) {
			return nil, fmt.Errorf("partial from shard %s selected %d experiments, this merge selects %d (registry skew?)", p.Shard, p.Experiments, len(selected))
		}
		for _, sec := range p.Sections {
			if sec.Index < 0 || sec.Index >= len(selected) {
				return nil, fmt.Errorf("partial from shard %s has out-of-range section index %d", p.Shard, sec.Index)
			}
			if selected[sec.Index].ID != sec.ID {
				return nil, fmt.Errorf("partial from shard %s names experiment %q at index %d, selection has %q", p.Shard, sec.ID, sec.Index, selected[sec.Index].ID)
			}
			if owner[sec.Index] != "" {
				return nil, fmt.Errorf("experiment %s covered by shards %s and %s: shard sets overlap", sec.ID, owner[sec.Index], p.Shard)
			}
			owner[sec.Index] = p.Shard
			results[sec.Index] = sectionResult{
				out:     &exp.Output{ID: sec.ID, Text: sec.Text, Scalars: sec.Scalars},
				elapsed: sec.Elapsed,
			}
		}
	}
	for i, o := range owner {
		if o == "" {
			return nil, fmt.Errorf("experiment %s (index %d) missing from the merged partials (%d partials offered)", selected[i].ID, i, len(partials))
		}
	}
	return renderReport(req, selected, results)
}

// partialArtifactKey is the canonical store key for one shard's partial.
func partialArtifactKey(req ReportRequest, sh Shard) string {
	return fmt.Sprintf("partial|fmt=%d|req{%s}|shard=%s", PartialFormatVersion, req.Key(), sh)
}

// PublishPartial stores the shard's partial in the default artifact store
// (and so, write-behind, in its remote tier), where a coordinator on any
// machine can collect it. Reports whether a store was configured; the Put
// itself is the store's usual best-effort contract.
func PublishPartial(p *PartialReport) bool {
	store := artifact.Default()
	if store == nil {
		return false
	}
	sh, err := ParseShard(p.Shard)
	if err != nil {
		return false
	}
	_ = store.Put(artifact.KindPartial, partialArtifactKey(p.Request, sh), p.Encode())
	return true
}

// FetchPartial retrieves one shard's partial from the default artifact
// store (consulting the remote tier on a local miss). A stored partial
// that fails to decode or does not match its key is dropped fail-closed
// and reported as a miss, like any corrupt artifact.
func FetchPartial(req ReportRequest, sh Shard) (*PartialReport, bool) {
	store := artifact.Default()
	if store == nil {
		return nil, false
	}
	key := partialArtifactKey(req, sh)
	payload, ok := store.Get(artifact.KindPartial, key)
	if !ok {
		return nil, false
	}
	p, err := DecodePartial(payload)
	if err != nil || p.Shard != sh.String() || p.Request.Key() != req.Key() {
		store.Drop(artifact.KindPartial, key)
		return nil, false
	}
	return p, true
}
