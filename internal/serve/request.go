// Package serve turns the one-shot report run into a resident confidence
// service: it owns the report builder both the CLI and the daemon render
// through (so daemon-served bytes are identical to one-shot bytes by
// construction), the HTTP server that keeps every cache tier hot in one
// process, the admission controller bounding concurrent report work, the
// machine-readable cache-stats encoder, and the thin HTTP client the CLI
// and the load generator drive requests through.
package serve

import (
	"fmt"
	"sort"
	"strings"

	"branchconf/internal/exp"
	"branchconf/internal/workload"
)

// MaterializeCeiling is the largest per-benchmark branch budget the engine
// will hold as a whole materialized trace (~2 bytes/branch in the replay
// buffer, plus the flattened and annotated forms on top). Budgets above it
// stream in segments unless the request overrides the segment size;
// refusing to stream is rejected there, because a monolithic run at such a
// budget would not fit.
const MaterializeCeiling = 8 << 20

// AutoSegmentBranches is the segment size auto-streaming picks: large
// enough that per-segment overhead (checkpoint encode, artifact keys) is
// noise, small enough that a handful of in-flight segments stay around
// tens of megabytes.
const AutoSegmentBranches = 1 << 20

// ReportRequest selects and parameterises one report: the JSON body of the
// daemon's report endpoint, and the struct the one-shot CLI's flags decode
// into. Budgets map onto the familiar -branches/-only semantics.
type ReportRequest struct {
	// Branches is the per-benchmark dynamic branch budget (0 = the
	// benchmark default).
	Branches uint64 `json:"branches,omitempty"`
	// Only restricts the run to these experiment ids (empty = all
	// non-opt-in experiments).
	Only []string `json:"only,omitempty"`
	// SkipAblations drops the ablation-* experiments.
	SkipAblations bool `json:"skip_ablations,omitempty"`
	// NoTimings omits the per-experiment "_(ran in Xs)_" wall-time lines,
	// making the report bytes fully deterministic — the form byte-identity
	// checks compare and the daemon's report cache retains.
	NoTimings bool `json:"no_timings,omitempty"`
	// SegmentBranches streams traces in segments of this many branches
	// (0 = automatic: segment only above the materialization ceiling).
	SegmentBranches uint64 `json:"segment_branches,omitempty"`
	// NoStream refuses streaming: traces materialize whole, and budgets
	// above the materialization ceiling are rejected.
	NoStream bool `json:"no_stream,omitempty"`
	// TraceFile points the realtrace experiment at a recorded ChampSim
	// trace on the serving machine (empty = no recorded trace). The path
	// never enters the request's cache identity — see ResolveTrace.
	TraceFile string `json:"trace_file,omitempty"`
	// TraceDigest and TraceCount are TraceFile's resolved content
	// identity, filled by ResolveTrace. Cache keys use them instead of the
	// path, so identical trace bytes share cached reports wherever the
	// file lives, and a file that changed under the same path misses
	// instead of serving stale bytes. The daemon re-resolves on decode:
	// a client-claimed digest is never trusted for the server's cache.
	TraceDigest string `json:"trace_digest,omitempty"`
	TraceCount  uint64 `json:"trace_count,omitempty"`
}

// ResolveTrace scans TraceFile and pins its content identity into the
// request (a no-op without a trace file). Both report entry points call it
// before keying: the one-shot CLI after flag parsing, the daemon after
// decoding the request body.
func (r *ReportRequest) ResolveTrace() error {
	if r.TraceFile == "" {
		r.TraceDigest, r.TraceCount = "", 0
		return nil
	}
	spec, err := workload.TraceSpec("", r.TraceFile)
	if err != nil {
		return err
	}
	r.TraceDigest, r.TraceCount = spec.TraceDigest, spec.TraceCount
	return nil
}

// Validate checks the request against the experiment registry and the
// streaming rules, returning the experiment filter (nil = all) and the
// resolved segment size.
func (r ReportRequest) Validate() (filter map[string]bool, segment uint64, err error) {
	if r.TraceFile != "" && r.TraceDigest == "" {
		return nil, 0, fmt.Errorf("trace file %q is unresolved: call ResolveTrace before keying or building", r.TraceFile)
	}
	if len(r.Only) > 0 {
		valid := map[string]bool{}
		for _, id := range exp.IDs() {
			valid[id] = true
		}
		filter = map[string]bool{}
		for _, id := range r.Only {
			id = strings.TrimSpace(id)
			if !valid[id] {
				return nil, 0, fmt.Errorf("unknown experiment id %q (valid ids: %s)", id, strings.Join(exp.IDs(), ", "))
			}
			filter[id] = true
		}
	}
	segment, err = ResolveSegment(r.Branches, r.SegmentBranches, r.NoStream)
	if err != nil {
		return nil, 0, err
	}
	return filter, segment, nil
}

// ResolveSegment applies the streaming rules shared by the CLI and the
// daemon: an explicit segment size wins, budgets above the materialization
// ceiling stream automatically, and refusing to stream above the ceiling
// is an error (a monolithic run there would not fit).
func ResolveSegment(branches, segment uint64, noStream bool) (uint64, error) {
	eff := branches
	if eff == 0 {
		eff = workload.DefaultBranches
	}
	switch {
	case noStream && segment > 0:
		return 0, fmt.Errorf("no-stream conflicts with segment-branches %d", segment)
	case noStream:
		if eff > MaterializeCeiling {
			return 0, fmt.Errorf("no-stream: budget %d exceeds the materialization ceiling (%d branches); allow streaming or set a segment size", eff, uint64(MaterializeCeiling))
		}
		return 0, nil
	case segment > 0:
		return segment, nil
	case eff > MaterializeCeiling:
		return AutoSegmentBranches, nil
	}
	return 0, nil
}

// Key returns the request's canonical identity for coalescing and
// caching: requests that must produce identical bytes share a key. The
// Only set is order- and duplicate-insensitive because experiment
// selection runs in registry order regardless of how the filter was
// spelled.
func (r ReportRequest) Key() string {
	only := append([]string(nil), r.Only...)
	for i := range only {
		only[i] = strings.TrimSpace(only[i])
	}
	sort.Strings(only)
	only = uniq(only)
	return fmt.Sprintf("b=%d|only=%s|ablations=%t|timings=%t|seg=%d|nostream=%t|trace=%s:%d",
		r.Branches, strings.Join(only, ","), !r.SkipAblations, !r.NoTimings, r.SegmentBranches, r.NoStream,
		r.TraceDigest, r.TraceCount)
}

func uniq(sorted []string) []string {
	out := sorted[:0]
	for _, s := range sorted {
		if len(out) == 0 || out[len(out)-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// SessionConfig maps the request onto the session configuration it runs
// under, overlaying the per-request budget and segmenting onto the
// process-wide engine defaults (the daemon's startup switches).
func (r ReportRequest) SessionConfig(defaults exp.Config, segment uint64) exp.Config {
	cfg := defaults
	cfg.Branches = r.Branches
	cfg.SegmentBranches = segment
	cfg.TraceFile = r.TraceFile
	return cfg
}
