package sim

import (
	"encoding/binary"
	"fmt"

	"branchconf/internal/artifact"
	"branchconf/internal/workload"
)

// Checkpoint is the resumable walk state at a streaming segment boundary:
// the branch position the walk paused at, the cumulative mispredict count
// up to that position, and the opaque serialized state of the paused
// component — a predictor.Checkpointer's training state on the annotation
// side, a core.FactorState on the tally side. The engine validates Branch
// and Misses against the unit's own running totals before handing State to
// the component codec, so a checkpoint from a different boundary (or a
// stale format) can never be spliced into a walk.
type Checkpoint struct {
	Branch uint64
	Misses uint64
	State  []byte
}

// MarshalCheckpoint serializes a checkpoint: branch position, cumulative
// misses, and the length-prefixed state blob, all little-endian.
func MarshalCheckpoint(ck Checkpoint) []byte {
	out := make([]byte, 0, 24+len(ck.State))
	out = binary.LittleEndian.AppendUint64(out, ck.Branch)
	out = binary.LittleEndian.AppendUint64(out, ck.Misses)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(ck.State)))
	return append(out, ck.State...)
}

// UnmarshalCheckpoint decodes and validates a MarshalCheckpoint payload.
// Like the other stream codecs it fails closed: truncation, a state length
// that disagrees with the payload, trailing bytes, and misses exceeding the
// branch position are all rejected. The inner State blob is validated by
// its owner on restore.
func UnmarshalCheckpoint(data []byte) (Checkpoint, error) {
	if len(data) < 24 {
		return Checkpoint{}, fmt.Errorf("sim: checkpoint truncated at %d bytes", len(data))
	}
	ck := Checkpoint{
		Branch: binary.LittleEndian.Uint64(data),
		Misses: binary.LittleEndian.Uint64(data[8:]),
	}
	stateLen := binary.LittleEndian.Uint64(data[16:])
	rest := data[24:]
	if uint64(len(rest)) != stateLen {
		return Checkpoint{}, fmt.Errorf("sim: checkpoint state length %d disagrees with %d payload bytes", stateLen, len(rest))
	}
	if ck.Misses > ck.Branch {
		return Checkpoint{}, fmt.Errorf("sim: checkpoint misses %d exceed branch position %d", ck.Misses, ck.Branch)
	}
	ck.State = make([]byte, stateLen)
	copy(ck.State, rest)
	return ck, nil
}

// Segment-indexed artifact keys. A streaming unit's per-segment payloads
// reuse the monolithic key grammar with the segment size and index (or the
// boundary branch position, for checkpoints) appended, so a segmented run
// never aliases a monolithic artifact and two segment sizes never alias
// each other.

// annSegKey keys one segment's annotated stream.
func annSegKey(spec workload.Spec, n uint64, predKey string, segSize uint64, seg int) string {
	return fmt.Sprintf("ann|v%d|%s|n=%d|pred=%s|segsz=%d|seg=%d",
		artifact.FormatVersion, spec.CacheKey(), n, predKey, segSize, seg)
}

// bucketSegKey keys one segment's bucket stream for a geometry.
func bucketSegKey(spec workload.Spec, n uint64, predKey, geom string, segSize uint64, seg int) string {
	return fmt.Sprintf("bucket|v%d|%s|n=%d|pred=%s|geom=%s|segsz=%d|seg=%d",
		artifact.FormatVersion, spec.CacheKey(), n, predKey, geom, segSize, seg)
}

// predCkptKey keys the predictor checkpoint at boundary branch position b.
func predCkptKey(spec workload.Spec, n uint64, predKey string, segSize, b uint64) string {
	return fmt.Sprintf("ckpt|v%d|%s|n=%d|pred=%s|segsz=%d|b=%d",
		artifact.FormatVersion, spec.CacheKey(), n, predKey, segSize, b)
}

// geomCkptKey keys a geometry's factor-walk checkpoint at boundary b.
func geomCkptKey(spec workload.Spec, n uint64, predKey, geom string, segSize, b uint64) string {
	return fmt.Sprintf("ckpt|v%d|%s|n=%d|pred=%s|geom=%s|segsz=%d|b=%d",
		artifact.FormatVersion, spec.CacheKey(), n, predKey, geom, segSize, b)
}
