package sim

import (
	"bytes"
	"testing"
)

// TestCheckpointRoundTrip: the codec is exact and the decoded state is a
// private copy, not an alias of the input buffer.
func TestCheckpointRoundTrip(t *testing.T) {
	for _, ck := range []Checkpoint{
		{},
		{Branch: 1, Misses: 1, State: []byte{0xAB}},
		{Branch: 1 << 40, Misses: 77, State: bytes.Repeat([]byte{0x5A}, 4096)},
		{Branch: 9, Misses: 0, State: nil},
	} {
		blob := MarshalCheckpoint(ck)
		got, err := UnmarshalCheckpoint(blob)
		if err != nil {
			t.Fatalf("%+v: %v", ck, err)
		}
		if got.Branch != ck.Branch || got.Misses != ck.Misses || !bytes.Equal(got.State, ck.State) {
			t.Fatalf("round trip: got %+v, want %+v", got, ck)
		}
		if len(got.State) > 0 {
			blob[24] ^= 0xFF
			if got.State[0] == blob[24] {
				t.Fatal("decoded state aliases the input buffer")
			}
		}
	}
}

// TestCheckpointRejects: the codec fails closed on every structural defect.
func TestCheckpointRejects(t *testing.T) {
	blob := MarshalCheckpoint(Checkpoint{Branch: 1000, Misses: 30, State: []byte{1, 2, 3, 4}})
	cases := map[string][]byte{
		"empty":         nil,
		"truncated":     blob[:10],
		"header only":   blob[:24],
		"short state":   blob[:len(blob)-1],
		"trailing byte": append(append([]byte{}, blob...), 0),
	}
	// Misses beyond the branch position are structurally impossible.
	bad := MarshalCheckpoint(Checkpoint{Branch: 10, Misses: 11})
	cases["misses > branch"] = bad
	for what, data := range cases {
		if _, err := UnmarshalCheckpoint(data); err == nil {
			t.Errorf("%s: corrupt checkpoint accepted", what)
		}
	}
}

// FuzzUnmarshalCheckpoint: arbitrary bytes either decode to a checkpoint
// that re-serializes to the identical input, or fail — never panic, never
// lossy acceptance.
func FuzzUnmarshalCheckpoint(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(MarshalCheckpoint(Checkpoint{Branch: 5, Misses: 2, State: []byte{9}}))
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := UnmarshalCheckpoint(data)
		if err != nil {
			return
		}
		if !bytes.Equal(MarshalCheckpoint(ck), data) {
			t.Fatalf("accepted payload does not re-serialize identically")
		}
	})
}
