package sim

import (
	"testing"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

// Stage-kernel benchmarks for the two-stage engine, per pass over a 100k-
// branch materialized trace. The interesting comparison is
// RunBatchInterleaved (what every mechanism-variant pass cost under the
// single-stage engine: varint decode + predictor walk + mechanism) against
// AnnotateStage once plus ReplayStage per variant (flat fetch + mechanism).

const benchBranches = 100_000

func benchBuffer(b *testing.B) *trace.ReplayBuffer {
	b.Helper()
	spec, err := workload.ByName("groff")
	if err != nil {
		b.Fatal(err)
	}
	src, err := spec.FiniteSource(benchBranches)
	if err != nil {
		b.Fatal(err)
	}
	buf, err := trace.Materialize(src, 0)
	if err != nil {
		b.Fatal(err)
	}
	return buf
}

func BenchmarkRunBatchInterleaved(b *testing.B) {
	buf := benchBuffer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunBatch(buf.Source(), predictor.Gshare64K(), []core.Mechanism{core.PaperResetting()}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnnotateStage(b *testing.B) {
	flat := benchBuffer(b).Flatten()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Annotate(flat, predictor.Gshare64K())
	}
}

func BenchmarkFlattenStage(b *testing.B) {
	buf := benchBuffer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Flatten()
	}
}

func BenchmarkReplayStage(b *testing.B) {
	flat := benchBuffer(b).Flatten()
	ann := Annotate(flat, predictor.Gshare64K())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayAnnotated(flat, ann, []core.Mechanism{core.PaperResetting()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayStageCoupled replays the predictor-coupled strength
// mechanism from the captured state lane — the pass that previously forced
// its own interleaved predictor walk.
func BenchmarkReplayStageCoupled(b *testing.B) {
	flat := benchBuffer(b).Flatten()
	ann := Annotate(flat, predictor.Gshare64K())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayAnnotated(flat, ann, []core.Mechanism{core.NewAnnotatedStrength()}); err != nil {
			b.Fatal(err)
		}
	}
}
