package sim

import (
	"testing"

	"branchconf/internal/bitvec"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

// Stage-kernel benchmarks for the two-stage engine, per pass over a 100k-
// branch materialized trace. The interesting comparison is
// RunBatchInterleaved (what every mechanism-variant pass cost under the
// single-stage engine: varint decode + predictor walk + mechanism) against
// AnnotateStage once plus ReplayStage per variant (flat fetch + mechanism).

const benchBranches = 100_000

func benchBuffer(b *testing.B) *trace.ReplayBuffer {
	b.Helper()
	spec, err := workload.ByName("groff")
	if err != nil {
		b.Fatal(err)
	}
	src, err := spec.FiniteSource(benchBranches)
	if err != nil {
		b.Fatal(err)
	}
	buf, err := trace.Materialize(src, 0)
	if err != nil {
		b.Fatal(err)
	}
	return buf
}

func BenchmarkRunBatchInterleaved(b *testing.B) {
	buf := benchBuffer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunBatch(buf.Source(), predictor.Gshare64K(), []core.Mechanism{core.PaperResetting()}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnnotateStage(b *testing.B) {
	flat := benchBuffer(b).Flatten()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Annotate(flat, predictor.Gshare64K())
	}
}

func BenchmarkFlattenStage(b *testing.B) {
	buf := benchBuffer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Flatten()
	}
}

func BenchmarkReplayStage(b *testing.B) {
	flat := benchBuffer(b).Flatten()
	ann := Annotate(flat, predictor.Gshare64K())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayAnnotated(flat, ann, []core.Mechanism{core.PaperResetting()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayStageCoupled replays the predictor-coupled strength
// mechanism from the captured state lane — the pass that previously forced
// its own interleaved predictor walk.
func BenchmarkReplayStageCoupled(b *testing.B) {
	flat := benchBuffer(b).Flatten()
	ann := Annotate(flat, predictor.Gshare64K())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayAnnotated(flat, ann, []core.Mechanism{core.NewAnnotatedStrength()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayStageOneLevel is the stage-2 cost of one CIR-table
// variant — the per-variant pass the stage-3 tally engine replaces.
func BenchmarkReplayStageOneLevel(b *testing.B) {
	flat := benchBuffer(b).Flatten()
	ann := Annotate(flat, predictor.Gshare64K())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayAnnotated(flat, ann, []core.Mechanism{core.PaperOneLevel(core.IndexPCxorBHR)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBucketStreamBuild is the stage-3 once-per-geometry cost: the
// fused monomorphic kernel filling the packed lane and the base histogram
// in one walk. Compare against BenchmarkReplayStageOneLevel — the same
// walk through the interface-dispatched replay path.
func BenchmarkBucketStreamBuild(b *testing.B) {
	flat := benchBuffer(b).Flatten()
	ann := Annotate(flat, predictor.Gshare64K())
	fm := core.PaperOneLevel(core.IndexPCxorBHR)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lane := bitvec.NewDense(fm.BucketWidth(), flat.Len())
		counts := countsPool.Get().([]uint32)
		used := counts[:2<<fm.BucketWidth()]
		clear(used)
		fm.FillBucketLane(flat.Records(), ann.MissWords(), lane, used)
		s := countsToStats(used)
		countsPool.Put(counts)
		if len(s) == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// BenchmarkTallyLaneKernel is the standalone word-parallel tally kernel —
// the fallback for lanes too wide for a fused dense histogram.
func BenchmarkTallyLaneKernel(b *testing.B) {
	flat := benchBuffer(b).Flatten()
	ann := Annotate(flat, predictor.Gshare64K())
	fm := core.PaperOneLevel(core.IndexPCxorBHR)
	lane := bitvec.NewDense(fm.BucketWidth(), flat.Len())
	fm.FillBucketLane(flat.Records(), ann.MissWords(), lane, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := tallyLane(lane, ann.MissWords(), ann.Len()); len(s) == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// BenchmarkTallyVariant is the stage-3 marginal cost of one extra variant
// over an already-built bucket stream: sharing the immutable base
// histogram, O(1) — this is what collapses the per-variant O(branches)
// replay.
func BenchmarkTallyVariant(b *testing.B) {
	flat := benchBuffer(b).Flatten()
	ann := Annotate(flat, predictor.Gshare64K())
	fm := core.PaperOneLevel(core.IndexPCxorBHR)
	lane := bitvec.NewDense(fm.BucketWidth(), flat.Len())
	fm.FillBucketLane(flat.Records(), ann.MissWords(), lane, nil)
	bs := &BucketStream{lane: lane, n: ann.Len(), misses: ann.Misses(),
		stats: tallyLane(lane, ann.MissWords(), ann.Len())}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := bs.Stats(); len(s) == 0 {
			b.Fatal("empty histogram")
		}
	}
}
