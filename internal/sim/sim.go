// Package sim wires the pieces together: it replays branch traces through
// a predictor and a confidence mechanism, accumulating the per-bucket
// statistics the analysis layer turns into the paper's curves and tables.
package sim

import (
	"fmt"
	"io"

	"branchconf/internal/analysis"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

// Result summarises one mechanism run over one trace.
type Result struct {
	// Benchmark names the workload (empty for ad hoc traces).
	Benchmark string
	// Branches and Misses count dynamic branches and mispredictions.
	Branches, Misses uint64
	// Buckets holds per-bucket confidence statistics.
	Buckets analysis.BucketStats
}

// MissRate returns the run's misprediction rate.
func (r Result) MissRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Branches)
}

// Run replays src through pred and mech following the paper's per-branch
// protocol: predict, read the confidence bucket, resolve, then train both
// structures with the outcome.
func Run(src trace.Source, pred predictor.Predictor, mech core.Mechanism) (Result, error) {
	var res Result
	acc := newBucketAccum()
	for {
		r, err := src.Next()
		if err == io.EOF {
			res.Buckets = acc.stats()
			return res, nil
		}
		if err != nil {
			res.Buckets = acc.stats()
			return res, fmt.Errorf("sim: reading trace: %w", err)
		}
		incorrect := pred.Predict(r) != r.Taken
		acc.add(mech.Bucket(r), incorrect)
		pred.Update(r)
		mech.Update(r, incorrect)
		res.Branches++
		if incorrect {
			res.Misses++
		}
	}
}

// PredictOnly measures a predictor's misprediction rate without any
// confidence mechanism.
func PredictOnly(src trace.Source, pred predictor.Predictor) (Result, error) {
	return Run(src, pred, nullMech{})
}

// nullMech is a single-bucket mechanism used when only predictor accuracy
// is of interest.
type nullMech struct{}

func (nullMech) Bucket(trace.Record) uint64 { return 0 }
func (nullMech) Update(trace.Record, bool)  {}
func (nullMech) Reset()                     {}
func (nullMech) Name() string               { return "null" }

// EstimatorResult is the joint confusion summary of an online estimator
// run: how branches and mispredictions split across the high- and
// low-confidence sets.
type EstimatorResult struct {
	Benchmark string
	Branches  uint64
	Misses    uint64
	Low       uint64 // branches classified low confidence
	LowMisses uint64 // mispredictions among them
}

// High returns the number of high-confidence branches.
func (e EstimatorResult) High() uint64 { return e.Branches - e.Low }

// HighMisses returns the mispredictions escaping into the high set.
func (e EstimatorResult) HighMisses() uint64 { return e.Misses - e.LowMisses }

// LowFrac returns the fraction of branches classified low confidence.
func (e EstimatorResult) LowFrac() float64 {
	if e.Branches == 0 {
		return 0
	}
	return float64(e.Low) / float64(e.Branches)
}

// Coverage returns the fraction of all mispredictions captured by the low
// set — the paper's headline metric for a confidence configuration.
func (e EstimatorResult) Coverage() float64 {
	if e.Misses == 0 {
		return 0
	}
	return float64(e.LowMisses) / float64(e.Misses)
}

// PVN returns the predictive value of a negative (low-confidence) signal:
// the misprediction rate inside the low set.
func (e EstimatorResult) PVN() float64 {
	if e.Low == 0 {
		return 0
	}
	return float64(e.LowMisses) / float64(e.Low)
}

// Confusion returns the full 2x2 quadrant with the standard
// SENS/SPEC/PVP/PVN metrics of the follow-on literature.
func (e EstimatorResult) Confusion() analysis.Confusion {
	return analysis.Confusion{
		HighCorrect:   e.High() - e.HighMisses(),
		HighIncorrect: e.HighMisses(),
		LowCorrect:    e.Low - e.LowMisses,
		LowIncorrect:  e.LowMisses,
	}
}

// RunEstimator replays src through pred and the online estimator,
// recording the confusion summary.
func RunEstimator(src trace.Source, pred predictor.Predictor, est *core.Estimator) (EstimatorResult, error) {
	var res EstimatorResult
	for {
		r, err := src.Next()
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return res, fmt.Errorf("sim: reading trace: %w", err)
		}
		confident := est.Confident(r)
		incorrect := pred.Predict(r) != r.Taken
		pred.Update(r)
		est.Update(r, incorrect)
		res.Branches++
		if !confident {
			res.Low++
		}
		if incorrect {
			res.Misses++
			if !confident {
				res.LowMisses++
			}
		}
	}
}

// SuiteConfig controls a whole-suite run.
type SuiteConfig struct {
	// Branches is the per-benchmark dynamic branch budget; 0 uses each
	// benchmark's default.
	Branches uint64
	// Specs selects the benchmarks (default: the standard suite).
	Specs []workload.Spec
	// Source, when non-nil, supplies the trace for each benchmark instead
	// of spec.FiniteSource — typically a materialized-trace cache. It must
	// produce a stream identical to the streaming walk for the same
	// (spec, branches) and be safe for concurrent calls.
	Source func(spec workload.Spec, branches uint64) (trace.Source, error)
	// Buffer, when non-nil, supplies the materialized replay buffer the
	// two-stage engine (RunSuiteAnnotated) annotates and flattens. Nil
	// falls back to the process-wide workload.Materialize cache. It must be
	// deterministic per (spec, branches) and safe for concurrent calls.
	Buffer func(spec workload.Spec, branches uint64) (*trace.ReplayBuffer, error)
	// NoTally disables the stage-3 tally engine: factorable mechanisms are
	// replayed per-variant on the stage-2 path instead of being served from
	// geometry-keyed bucket streams. Results are byte-identical either way;
	// the switch exists for A/B benchmarking and fault isolation.
	NoTally bool
	// SegmentBranches, when non-zero, switches RunSuiteAnnotated to the
	// segmented streaming engine: each benchmark's trace is walked in
	// segments of this many branches with annotation of the next segment
	// overlapping tallying of the current one, keeping resident memory flat
	// at any horizon. Results are byte-identical to the monolithic engine.
	// Zero (the default) keeps the monolithic materialize-whole path.
	SegmentBranches uint64
}

func (c SuiteConfig) specs() []workload.Spec {
	if c.Specs != nil {
		return c.Specs
	}
	return workload.Suite()
}

func (c SuiteConfig) source(spec workload.Spec) (trace.Source, error) {
	if c.Source != nil {
		return c.Source(spec, c.Branches)
	}
	return spec.FiniteSource(c.Branches)
}

func (c SuiteConfig) buffer(spec workload.Spec) (*trace.ReplayBuffer, error) {
	if c.Buffer != nil {
		return c.Buffer(spec, c.Branches)
	}
	return workload.Materialize(spec, c.Branches)
}

// SuiteResult aggregates per-benchmark results in suite order.
type SuiteResult struct {
	Runs []Result
}

// Stats returns the per-benchmark bucket statistics in suite order, ready
// for analysis compositing.
func (s SuiteResult) Stats() []analysis.BucketStats {
	out := make([]analysis.BucketStats, len(s.Runs))
	for i, r := range s.Runs {
		out[i] = r.Buckets
	}
	return out
}

// CompositeMissRate returns the equal-weight average misprediction rate,
// the paper's composite accuracy metric (§1.2).
func (s SuiteResult) CompositeMissRate() float64 {
	if len(s.Runs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range s.Runs {
		sum += r.MissRate()
	}
	return sum / float64(len(s.Runs))
}

// ByName returns the named benchmark's run.
func (s SuiteResult) ByName(name string) (Result, error) {
	for _, r := range s.Runs {
		if r.Benchmark == name {
			return r, nil
		}
	}
	return Result{}, fmt.Errorf("sim: no run for benchmark %q", name)
}

// RunSuite replays every benchmark through fresh predictor and mechanism
// instances (tables are rebuilt per benchmark, as in the paper's per-trace
// simulations) and collects per-benchmark results in suite order.
//
// Benchmarks run concurrently: each run owns its source, predictor and
// mechanism, so parallelism cannot perturb results — the output is
// byte-identical to a serial sweep, just several times faster on the
// multi-run experiments. newPred and newMech are invoked from multiple
// goroutines and must be safe for concurrent calls (pure constructors
// returning fresh instances are; closures over shared mutable state are
// not). Per-benchmark failures are aggregated with errors.Join.
func RunSuite(cfg SuiteConfig, newPred func() predictor.Predictor, newMech func() core.Mechanism) (SuiteResult, error) {
	res, err := RunSuiteBatch(cfg, newPred, []func() core.Mechanism{newMech})
	if err != nil {
		return SuiteResult{}, err
	}
	return res[0], nil
}
