package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"

	"branchconf/internal/bitvec"
	"branchconf/internal/core"
	"branchconf/internal/heapwatch"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

// Two-stage simulation: the predictor stage walks a materialized trace
// through the predictor exactly once per (benchmark, predictor-config) and
// records everything mechanisms can observe — the mispredict bit and the
// few bits of pre-update predictor state that predictor-coupled mechanisms
// read — into a compact AnnotatedStream. The mechanism stage then replays
// that stream into any number of confidence mechanisms with no predictor in
// the loop: no counter-table lookups, no history shifts, no varint decode
// (records come from a decoded trace.FlatView), just bucket-and-train per
// mechanism.
//
// The split is exact because mechanisms are passive observers: every
// Mechanism reads only the record and the mispredict outcome, and the only
// predictor-coupled mechanism protocol (core.StateCoupled) reads state the
// annotation lane captured before the predictor trained — precisely what a
// live interleaved pass would have seen. Replay is therefore byte-identical
// to Run/RunBatch under any chunking or parallelism.

// AnnotatedStream is the predictor stage's output for one (benchmark,
// predictor-config) pair: one mispredict bit per branch, plus an optional
// packed lane of pre-update predictor state for StateCoupled mechanisms.
// At 2 state bits (gshare) the stream costs 3/8 byte per branch — small
// enough to memoize per predictor config (see SetAnnotatedCacheBound).
//
// A fully built stream is immutable and safe for concurrent replays.
type AnnotatedStream struct {
	miss   bitvec.Vector // mispredict bit per branch
	state  *bitvec.Dense // pre-update predictor state lane; nil if the predictor exposes none
	n      int
	misses uint64
}

// Len returns the number of annotated branches.
func (a *AnnotatedStream) Len() int { return a.n }

// Misses returns the total mispredictions in the stream.
func (a *AnnotatedStream) Misses() uint64 { return a.misses }

// HasState reports whether the stream carries a predictor-state lane.
func (a *AnnotatedStream) HasState() bool { return a.state != nil }

// MissWords returns the packed mispredict bits, bit i of word i/64, least
// significant first. The slice is the live backing store and must not be
// mutated — it feeds the monomorphic bucket-lane kernels (core.Factorable)
// and the stage-3 tally kernel.
func (a *AnnotatedStream) MissWords() []uint64 { return a.miss.Words() }

// Footprint returns the stream's payload bytes (mispredict bits plus the
// state lane).
func (a *AnnotatedStream) Footprint() uint64 {
	b := a.miss.Bytes()
	if a.state != nil {
		b += a.state.Bytes()
	}
	return b
}

// Annotate runs the predictor stage: it replays flat through pred once,
// recording the mispredict bit per branch and, when pred implements
// predictor.StateAnnotator, the pre-update state lane. pred is consumed
// (trained) by the walk and must be fresh. The flat view hands out
// complete decoded records — predictors like BTFN and agree read the
// branch target, not just PC and direction — with no varint work.
func Annotate(flat *trace.FlatView, pred predictor.Predictor) *AnnotatedStream {
	a := &AnnotatedStream{}
	annPred, _ := pred.(predictor.StateAnnotator)
	if annPred != nil {
		a.state = bitvec.NewDense(annPred.AnnotationBits(), flat.Len())
	}
	n := flat.Len()
	for i := 0; i < n; i++ {
		r := flat.Record(i)
		incorrect := pred.Predict(r) != r.Taken
		if annPred != nil {
			a.state.Append(uint64(annPred.AnnotationState(r)))
		}
		pred.Update(r)
		a.miss.Append(incorrect)
		a.n++
		if incorrect {
			a.misses++
		}
	}
	return a
}

// AnnotateBuffer is Annotate off a replay buffer's varint stream, without
// flattening it first. The streaming producer uses it so a segment in
// flight costs the buffer's ~5 bytes per branch rather than a flat view's
// 24: the predictor walk absorbs the one varint decode, and the consumer
// flattens into its reusable scratch view only when the tally and replay
// kernels — which stream the record lane many times — need it.
func AnnotateBuffer(buf *trace.ReplayBuffer, pred predictor.Predictor) *AnnotatedStream {
	return annotateBufferInto(buf, pred, nil)
}

// annotateBufferInto is AnnotateBuffer reusing spare's bit storage (nil for
// a fresh stream). The streaming producer cycles consumed streams back
// through here, so a long walk keeps a couple of annotated segments'
// storage alive instead of allocating one per segment. spare must be dead:
// reuse restarts the immutable-once-built contract.
func annotateBufferInto(buf *trace.ReplayBuffer, pred predictor.Predictor, spare *AnnotatedStream) *AnnotatedStream {
	a := spare
	annPred, _ := pred.(predictor.StateAnnotator)
	n := buf.Len()
	if a == nil {
		a = &AnnotatedStream{}
	} else {
		a.miss.Reset()
		a.n = 0
		a.misses = 0
	}
	switch {
	case annPred == nil:
		a.state = nil
	case a.state != nil && a.state.Width() == annPred.AnnotationBits():
		a.state.Reset()
	default:
		a.state = bitvec.NewDense(annPred.AnnotationBits(), n)
	}
	src := buf.Source()
	for i := 0; i < n; i++ {
		r, err := src.Next()
		if err != nil {
			// A fully built buffer replays exactly n records (see Flatten).
			panic("sim: replay buffer shorter than its length")
		}
		incorrect := pred.Predict(r) != r.Taken
		if annPred != nil {
			a.state.Append(uint64(annPred.AnnotationState(r)))
		}
		pred.Update(r)
		a.miss.Append(incorrect)
		a.n++
		if incorrect {
			a.misses++
		}
	}
	return a
}

// ReplayAnnotated runs the mechanism stage serially: it feeds every branch
// of the annotated stream to each mechanism and returns per-mechanism
// results index-aligned with mechs, byte-identical to RunBatch over the
// original trace with the predictor that produced the stream. It fails if a
// mechanism requires predictor state (core.StateCoupled) the stream does
// not carry.
func ReplayAnnotated(flat *trace.FlatView, ann *AnnotatedStream, mechs []core.Mechanism) ([]Result, error) {
	if flat.Len() != ann.Len() {
		return nil, fmt.Errorf("sim: flat view has %d branches, annotated stream %d", flat.Len(), ann.Len())
	}
	for _, m := range mechs {
		if _, sc := m.(core.StateCoupled); sc && !ann.HasState() {
			return nil, fmt.Errorf("sim: mechanism %s needs predictor state but the annotated stream carries none", m.Name())
		}
	}
	accums := make([]*bucketAccum, len(mechs))
	for i := range accums {
		accums[i] = newBucketAccum()
	}
	replayAnnotated(flat, ann, mechs, accums)
	results := make([]Result, len(mechs))
	for i := range results {
		results[i] = Result{
			Branches: uint64(ann.n),
			Misses:   ann.misses,
			Buckets:  accums[i].stats(),
		}
	}
	return results, nil
}

// replayAnnotated is the mechanism-stage kernel. Unlike the interleaved
// engine — which must keep mechanisms in the inner loop because the
// predictor walks the trace once — replay has no shared state across
// mechanisms, so the loop nests mechanism-outer: each mechanism streams the
// flat PC lane and the packed outcome/mispredict words sequentially with its
// accumulator, coupled-dispatch decision, and devirtualization target all
// loop-invariant. Each mechanism still observes every branch in trace order,
// so results are byte-identical to the interleaved nesting. Mechanisms
// receive the complete decoded record, exactly as RunBatch feeds them.
func replayAnnotated(flat *trace.FlatView, ann *AnnotatedStream, mechs []core.Mechanism, accums []*bucketAccum) {
	n := flat.Len()
	for j, m := range mechs {
		acc := accums[j]
		var sc core.StateCoupled
		if ann.state != nil {
			sc, _ = m.(core.StateCoupled)
		}
		fm, fused := m.(core.Fused)
		var missWd uint64
		for i := 0; i < n; i++ {
			sh := uint(i) & 63
			if sh == 0 {
				missWd = ann.miss.Word(i >> 6)
			}
			r := flat.Record(i)
			incorrect := missWd>>sh&1 == 1
			switch {
			case sc != nil:
				acc.add(sc.BucketWithState(r, uint8(ann.state.At(i))), incorrect)
				m.Update(r, incorrect)
			case fused:
				acc.add(fm.BucketUpdate(r, incorrect), incorrect)
			default:
				acc.add(m.Bucket(r), incorrect)
				m.Update(r, incorrect)
			}
		}
	}
}

// RunSuiteAnnotated is the two-stage form of RunSuiteBatch: per benchmark it
// obtains the (flat view, annotated stream) pair from the process-wide
// annotated cache — walking the predictor only on a cache miss — and then
// trains every mechanism by replaying the stream. The fan-out is
// mechanism-major: mechanisms are partitioned into up to parallelism
// chunks, and each chunk builds its mechanism instances once and walks
// every benchmark sequentially, resetting them between benchmarks. That
// reuse matters — CIR-table mechanisms carry megabyte tables, and building
// them per (benchmark, mechanism) dominated the engine's allocation
// profile. Reset restores exactly the constructed state, and the replayed
// streams are immutable, so results are index-aligned with newMechs and
// byte-identical to RunSuiteBatch (and hence to per-mechanism RunSuite
// calls) for the same configuration.
//
// predKey must uniquely identify the predictor configuration built by
// newPred; it keys the annotated cache. An empty predKey disables caching
// and falls back to the interleaved single-pass engine. Benchmarks whose
// mechanisms need predictor state the predictor cannot annotate also fall
// back, per benchmark, to the interleaved engine.
func RunSuiteAnnotated(cfg SuiteConfig, predKey string, newPred func() predictor.Predictor, newMechs []func() core.Mechanism) ([]SuiteResult, error) {
	if predKey == "" {
		return RunSuiteBatch(cfg, newPred, newMechs)
	}
	if cfg.SegmentBranches > 0 {
		return runSuiteStreaming(cfg, predKey, newPred, newMechs)
	}
	specs := cfg.specs()
	perSpec := make([][]Result, len(specs))
	for i := range perSpec {
		perSpec[i] = make([]Result, len(newMechs))
	}
	chunks := chunkIndices(len(newMechs), currentParallelism())
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for c, chunk := range chunks {
		c, chunk := c, chunk
		wg.Add(1)
		go func() {
			defer wg.Done()
			release := acquireSlot()
			defer release()
			errs[c] = runMechChunk(cfg, specs, predKey, newPred, newMechs, chunk, perSpec)
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	out := make([]SuiteResult, len(newMechs))
	for j := range newMechs {
		runs := make([]Result, len(specs))
		for i := range specs {
			runs[i] = perSpec[i][j]
		}
		out[j] = SuiteResult{Runs: runs}
	}
	return out, nil
}

// runMechChunk replays every benchmark through one chunk of mechanisms,
// writing results into perSpec[spec][mech]. The chunk's mechanism instances
// are built once and Reset between benchmarks. Stage labels "annotate",
// "tally" and "replay" mark the work for CPU profiles; the first chunk to
// claim a benchmark's cache entry pays the annotation walk, later chunks
// wait on the entry and go straight to tally/replay.
//
// Factorable mechanisms (unless cfg.NoTally, or the mechanism also reads
// predictor state) are served by the stage-3 bucket-stream cache: their
// result shares the geometry's immutable base histogram, and the per-branch
// walk happens at most once per geometry process-wide. The rest replay on
// the stage-2 path.
func runMechChunk(cfg SuiteConfig, specs []workload.Spec, predKey string, newPred func() predictor.Predictor, newMechs []func() core.Mechanism, chunk []int, perSpec [][]Result) error {
	mechs := make([]core.Mechanism, len(chunk))
	for k, j := range chunk {
		mechs[k] = newMechs[j]()
	}
	accums := make([]*bucketAccum, len(chunk))
	for i, spec := range specs {
		var flat *trace.FlatView
		var ann *AnnotatedStream
		var err error
		pprof.Do(context.Background(), pprof.Labels("benchmark", spec.Name, "stage", "annotate"), func(context.Context) {
			flat, ann, err = annotatedFor(cfg, spec, predKey, newPred)
		})
		heapwatch.Sample("annotate")
		if err != nil {
			return fmt.Errorf("sim: annotating %s: %w", spec.Name, err)
		}

		for _, m := range mechs {
			m.Reset()
		}
		if !ann.HasState() {
			needsState := false
			for _, m := range mechs {
				if _, sc := m.(core.StateCoupled); sc {
					needsState = true
					break
				}
			}
			if needsState {
				// The predictor cannot annotate the state a mechanism in
				// this chunk reads; run this benchmark interleaved instead.
				rs, err := runInterleavedUnit(cfg, spec, newPred, mechs)
				if err != nil {
					return err
				}
				for k, j := range chunk {
					perSpec[i][j] = rs[k]
				}
				continue
			}
		}

		// Stage 3: serve factorable mechanisms from geometry-keyed bucket
		// streams. StateCoupled mechanisms stay on the replay path even if
		// they claim factorability — their bucket reads predictor state the
		// geometry alone cannot reproduce.
		tallied := make([]bool, len(chunk))
		if !cfg.NoTally {
			var terr error
			pprof.Do(context.Background(), pprof.Labels("benchmark", spec.Name, "stage", "tally"), func(context.Context) {
				for k, j := range chunk {
					fm, ok := mechs[k].(core.Factorable)
					if !ok {
						continue
					}
					if _, sc := mechs[k].(core.StateCoupled); sc {
						continue
					}
					bs, err := bucketStreamFor(cfg, spec, predKey, flat, ann, fm)
					if err != nil {
						terr = fmt.Errorf("sim: tallying %s: %w", spec.Name, err)
						return
					}
					perSpec[i][j] = Result{
						Benchmark: spec.Name,
						Branches:  uint64(bs.n),
						Misses:    bs.misses,
						Buckets:   bs.Stats(),
					}
					tallied[k] = true
				}
			})
			heapwatch.Sample("tally")
			if terr != nil {
				return terr
			}
		}

		var replayMechs []core.Mechanism
		var replayAt []int // chunk-local indices of replayMechs
		for k := range mechs {
			if !tallied[k] {
				replayMechs = append(replayMechs, mechs[k])
				replayAt = append(replayAt, k)
			}
		}
		if len(replayMechs) == 0 {
			continue
		}
		accums = accums[:len(replayMechs)]
		for k := range accums {
			accums[k] = newBucketAccum()
		}
		pprof.Do(context.Background(), pprof.Labels("benchmark", spec.Name, "stage", "replay"), func(context.Context) {
			replayAnnotated(flat, ann, replayMechs, accums)
		})
		heapwatch.Sample("replay")
		for x, k := range replayAt {
			perSpec[i][chunk[k]] = Result{
				Benchmark: spec.Name,
				Branches:  uint64(ann.n),
				Misses:    ann.misses,
				Buckets:   accums[x].stats(),
			}
		}
	}
	return nil
}

// chunkIndices partitions [0,n) into at most k contiguous chunks of
// near-equal size; chunk 0 is never empty for n > 0.
func chunkIndices(n, k int) [][]int {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if k < 1 {
		return [][]int{{}}
	}
	chunks := make([][]int, k)
	for c := 0; c < k; c++ {
		lo, hi := c*n/k, (c+1)*n/k
		idx := make([]int, 0, hi-lo)
		for j := lo; j < hi; j++ {
			idx = append(idx, j)
		}
		chunks[c] = idx
	}
	return chunks
}

// runInterleavedUnit is the per-benchmark fallback to the single-pass
// interleaved engine, for mechanisms the annotated stream cannot serve.
func runInterleavedUnit(cfg SuiteConfig, spec workload.Spec, newPred func() predictor.Predictor, mechs []core.Mechanism) ([]Result, error) {
	src, err := cfg.source(spec)
	if err != nil {
		return nil, fmt.Errorf("sim: building %s: %w", spec.Name, err)
	}
	rs, err := RunBatch(src, newPred(), mechs)
	if err != nil {
		return nil, fmt.Errorf("sim: running %s: %w", spec.Name, err)
	}
	for j := range rs {
		rs[j].Benchmark = spec.Name
	}
	return rs, nil
}
