package sim

import (
	"reflect"
	"testing"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

func annotateBuffer(t *testing.T, n uint64) *trace.ReplayBuffer {
	t.Helper()
	spec, err := workload.ByName("groff")
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.FiniteSource(n)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := trace.Materialize(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestReplayAnnotatedMatchesRun is the two-stage equivalence check: one
// predictor walk (Annotate) followed by a predictor-free replay must
// reproduce independent interleaved Run passes exactly — including the
// predictor-coupled counter-strength mechanism, which under replay reads
// the captured state lane instead of live counters.
func TestReplayAnnotatedMatchesRun(t *testing.T) {
	buf := annotateBuffer(t, 30000)
	newMechs := []func(pred *predictor.Gshare) core.Mechanism{
		func(*predictor.Gshare) core.Mechanism { return core.PaperResetting() },
		func(*predictor.Gshare) core.Mechanism {
			return core.NewCounterTable(core.CounterConfig{Kind: core.Saturating, Scheme: core.IndexPCxorBHR})
		},
		func(*predictor.Gshare) core.Mechanism { return core.PaperOneLevel(core.IndexPCxorBHR) },
		func(*predictor.Gshare) core.Mechanism { return core.NewStaticProfile() },
		// Annotated form: no live predictor reference at all.
		func(*predictor.Gshare) core.Mechanism { return core.NewAnnotatedStrength() },
	}

	flat := buf.Flatten()
	ann := Annotate(flat, predictor.Gshare64K())
	if !ann.HasState() {
		t.Fatal("gshare annotation must carry a state lane")
	}
	mechs := make([]core.Mechanism, len(newMechs))
	for i, nm := range newMechs {
		mechs[i] = nm(nil)
	}
	got, err := ReplayAnnotated(flat, ann, mechs)
	if err != nil {
		t.Fatal(err)
	}
	for i, nm := range newMechs {
		solo := predictor.Gshare64K().(*predictor.Gshare)
		m := nm(solo)
		// The annotated strength mechanism cannot run interleaved; compare
		// against the live-coupled equivalent.
		if _, sc := m.(core.StateCoupled); sc && i == len(newMechs)-1 {
			m = core.NewCounterStrength(solo)
		}
		want, err := Run(buf.Source(), solo, m)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("mechanism %d (%s): annotated replay diverges from Run\n got %+v\nwant %+v",
				i, mechs[i].Name(), got[i], want)
		}
	}
}

// TestAnnotateTargetReadingPredictor pins a regression: the annotate walk
// must hand predictors the complete record. BTFN (and the agree
// predictors' bias heuristic) classify branches by Target < PC, so a
// stream annotated from a PC-and-direction-only view records wrong
// mispredict bits for them.
func TestAnnotateTargetReadingPredictor(t *testing.T) {
	buf := annotateBuffer(t, 30000)
	for _, name := range []string{"btfn", "agree-4K"} {
		pred, err := predictor.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		ann := Annotate(buf.Flatten(), pred)
		soloPred, err := predictor.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(buf.Source(), soloPred, core.NewStaticProfile())
		if err != nil {
			t.Fatal(err)
		}
		if ann.Misses() != want.Misses {
			t.Errorf("%s: annotated stream records %d misses, interleaved run %d",
				name, ann.Misses(), want.Misses)
		}
	}
}

// TestAnnotateWithoutStateLane: a predictor with no annotation hook yields
// a miss-bits-only stream; replay still works for uncoupled mechanisms and
// refuses coupled ones.
func TestAnnotateWithoutStateLane(t *testing.T) {
	buf := annotateBuffer(t, 10000)
	pred, err := predictor.Build("gselect-64K")
	if err != nil {
		t.Fatal(err)
	}
	flat := buf.Flatten()
	ann := Annotate(flat, pred)
	if ann.HasState() {
		t.Fatal("gselect has no annotation hook; stream must not carry state")
	}
	got, err := ReplayAnnotated(flat, ann, []core.Mechanism{core.PaperResetting()})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := predictor.Build("gselect-64K")
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(buf.Source(), solo, core.PaperResetting())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], want) {
		t.Errorf("annotated replay diverges from Run\n got %+v\nwant %+v", got[0], want)
	}
	if _, err := ReplayAnnotated(flat, ann, []core.Mechanism{core.NewAnnotatedStrength()}); err == nil {
		t.Fatal("replaying a coupled mechanism without a state lane must fail")
	}
}

// TestRunSuiteAnnotatedMatchesBatch: the full two-stage suite engine must
// be byte-identical to the interleaved suite engine, and a second run must
// be served from the annotated cache.
func TestRunSuiteAnnotatedMatchesBatch(t *testing.T) {
	defer ResetAnnotatedCache()
	defer workload.ResetMaterializeCache()
	ResetAnnotatedCache()
	cfg := SuiteConfig{Branches: 8000}
	newPred := func() predictor.Predictor { return predictor.Gshare64K() }
	newMechs := []func() core.Mechanism{
		func() core.Mechanism { return core.PaperResetting() },
		func() core.Mechanism { return core.PaperOneLevel(core.IndexPCxorBHR) },
		func() core.Mechanism { return core.NewAnnotatedStrength() },
	}
	want, err := RunSuiteBatch(cfg, newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSuiteAnnotated(cfg, "gshare-64K", newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("annotated suite diverges from batched suite")
	}
	rep := AnnotatedCacheReport()
	hits, misses, resident := rep.Hits, rep.Misses, rep.ResidentBytes
	if hits != 0 {
		t.Fatalf("first annotated run: want 0 hits, got %d", hits)
	}
	if misses == 0 || resident == 0 {
		t.Fatalf("first annotated run: want misses and resident bytes, got %d / %d", misses, resident)
	}
	again, err := RunSuiteAnnotated(cfg, "gshare-64K", newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatal("cached annotated suite diverges")
	}
	rep2 := AnnotatedCacheReport()
	hits2, misses2 := rep2.Hits, rep2.Misses
	if hits2 == 0 {
		t.Fatal("second annotated run took no cache hits")
	}
	if misses2 != misses {
		t.Fatalf("second annotated run re-annotated: misses %d -> %d", misses, misses2)
	}
}

// TestRunSuiteAnnotatedUncoupledNonAnnotatingPredictor: a predictor with
// no annotation hook still runs through the two-stage engine (miss bits
// only) as long as no mechanism needs predictor state, matching the
// interleaved engine exactly.
func TestRunSuiteAnnotatedUncoupledNonAnnotatingPredictor(t *testing.T) {
	defer ResetAnnotatedCache()
	defer workload.ResetMaterializeCache()
	ResetAnnotatedCache()
	cfg := SuiteConfig{Branches: 6000, Specs: workload.Suite()[:3]}
	newPred := func() predictor.Predictor {
		p, err := predictor.Build("gselect-64K")
		if err != nil {
			panic(err)
		}
		return p
	}
	newMechs := []func() core.Mechanism{
		func() core.Mechanism { return core.PaperResetting() },
	}
	want, err := RunSuiteBatch(cfg, newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSuiteAnnotated(cfg, "gselect-64K", newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("annotated suite under gselect diverges from batched suite")
	}
}

// TestAnnotatedCacheBound: a tight bound evicts LRU entries; results stay
// correct because replays hold their own pointers.
func TestAnnotatedCacheBound(t *testing.T) {
	defer ResetAnnotatedCache()
	defer workload.ResetMaterializeCache()
	defer SetAnnotatedCacheBound(0)
	ResetAnnotatedCache()
	SetAnnotatedCacheBound(1) // evict everything on completion
	cfg := SuiteConfig{Branches: 4000, Specs: workload.Suite()[:2]}
	newPred := func() predictor.Predictor { return predictor.Gshare64K() }
	newMechs := []func() core.Mechanism{
		func() core.Mechanism { return core.PaperResetting() },
	}
	want, err := RunSuiteBatch(cfg, newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSuiteAnnotated(cfg, "gshare-64K", newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("bounded annotated suite diverges from batched suite")
	}
	if resident := AnnotatedCacheReport().ResidentBytes; resident > 1 {
		t.Fatalf("bound 1 byte: resident %d bytes after run", resident)
	}
	// A rerun must still be correct (all misses, no stale state).
	again, err := RunSuiteAnnotated(cfg, "gshare-64K", newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatal("post-eviction annotated suite diverges")
	}
}

// TestRunBatchAnnotatedStrength: the interleaved batch engine feeds
// captured annotation state to coupled mechanisms, so the reference-free
// strength mechanism matches the live-coupled one exactly.
func TestRunBatchAnnotatedStrength(t *testing.T) {
	buf := annotateBuffer(t, 20000)
	pred := predictor.Gshare64K().(*predictor.Gshare)
	got, err := RunBatch(buf.Source(), pred, []core.Mechanism{core.NewAnnotatedStrength()})
	if err != nil {
		t.Fatal(err)
	}
	live := predictor.Gshare64K().(*predictor.Gshare)
	want, err := Run(buf.Source(), live, core.NewCounterStrength(live))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], want) {
		t.Errorf("annotated strength under RunBatch diverges from live coupling\n got %+v\nwant %+v", got[0], want)
	}
}
