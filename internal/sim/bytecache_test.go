package sim

import (
	"errors"
	"testing"
)

// TestByteLRUErroredEntryDropped is the regression test for the negative-
// caching bug: an owner whose build fails must not leave the errored entry
// in the map, or every later claim of that key replays the stale error for
// the life of the process. Waiters parked on the failing build still see
// the error; the next claim owns a fresh build.
func TestByteLRUErroredEntryDropped(t *testing.T) {
	var c byteLRU
	boom := errors.New("transient build failure")

	e, owner := c.claim("k")
	if !owner {
		t.Fatal("first claim not owner")
	}
	waiter, waiterOwner := c.claim("k") // parked before the failure publishes
	if waiterOwner {
		t.Fatal("second claim stole ownership")
	}
	e.err = boom
	c.finish(e, 0)
	<-waiter.done
	if waiter.err != boom {
		t.Fatalf("parked waiter saw err=%v, want the owner's failure", waiter.err)
	}

	e2, owner2 := c.claim("k")
	if !owner2 {
		t.Fatalf("claim after failed build not owner: stale err=%v negatively cached", e2.err)
	}
	e2.val = "rebuilt"
	c.finish(e2, 8)

	e3, owner3 := c.claim("k")
	if owner3 || e3.err != nil || e3.val != "rebuilt" {
		t.Fatalf("rebuild not cached: owner=%v err=%v val=%v", owner3, e3.err, e3.val)
	}
	if resident, _ := c.usage(); resident != 8 {
		t.Fatalf("resident = %d, want 8 (failed build must not count)", resident)
	}
}

// TestByteLRUZeroByteEntryEvictable is the regression test for the
// in-flight/empty ambiguity: a successfully built zero-byte payload (an
// empty stream is a legitimate artifact) must be evictable like any other
// completed entry, not mistaken for an in-flight build and pinned forever.
func TestByteLRUZeroByteEntryEvictable(t *testing.T) {
	var c byteLRU
	c.setBound(1)

	empty, owner := c.claim("empty")
	if !owner {
		t.Fatal("claim not owner")
	}
	empty.val = []byte{}
	c.finish(empty, 0) // built, legitimately zero bytes

	big, owner := c.claim("big")
	if !owner {
		t.Fatal("claim not owner")
	}
	big.val = "bb"
	c.finish(big, 2) // resident 2 > bound 1: eviction runs LRU-first

	if _, owner := c.claim("empty"); !owner {
		t.Fatal("zero-byte built entry survived eviction: mistaken for in-flight")
	}
	if _, evictions := c.usage(); evictions != 2 {
		t.Fatalf("evictions = %d, want 2 (empty then big)", evictions)
	}
}

// TestByteLRUInFlightNeverEvicted pins the guard the zero-byte fix must not
// break: an entry whose build is still running is skipped by eviction even
// when the cache is over budget.
func TestByteLRUInFlightNeverEvicted(t *testing.T) {
	var c byteLRU
	c.setBound(1)

	inflight, owner := c.claim("inflight")
	if !owner {
		t.Fatal("claim not owner")
	}

	done, owner := c.claim("done")
	if !owner {
		t.Fatal("claim not owner")
	}
	done.val = "dd"
	c.finish(done, 2) // over budget; only "done" is evictable

	if _, owner := c.claim("inflight"); owner {
		t.Fatal("in-flight entry evicted out from under its waiters")
	}
	inflight.val = "v"
	c.finish(inflight, 1)
}
