package sim

import "branchconf/internal/analysis"

// denseBuckets bounds the dense fast path of bucketAccum. Counter values
// (≤ CounterMax), ones counts, and CIR patterns up to 16 bits land in a
// flat array — one indexed add per branch instead of a map probe, which
// profiling shows dominating the simulation loop otherwise. Wider CIR
// patterns and static branch addresses spill to the map.
const denseBuckets = 1 << 16

// bucketAccum accumulates per-bucket tallies with a dense fast path. It
// produces exactly the integer counts BucketStats.Add would, so swapping it
// into a simulation loop cannot perturb any artefact.
type bucketAccum struct {
	dense  []analysis.Tally // lazily allocated on the first small bucket
	sparse analysis.BucketStats
}

func newBucketAccum() *bucketAccum {
	return &bucketAccum{sparse: make(analysis.BucketStats)}
}

func (a *bucketAccum) add(bucket uint64, incorrect bool) {
	if bucket < denseBuckets {
		if a.dense == nil {
			a.dense = make([]analysis.Tally, denseBuckets)
		}
		t := &a.dense[bucket]
		t.Events++
		if incorrect {
			t.Misses++
		}
		return
	}
	a.sparse.Add(bucket, incorrect)
}

// stats folds the dense array into the sparse map and returns it. The
// accumulator must not be used afterwards.
func (a *bucketAccum) stats() analysis.BucketStats {
	bs := a.sparse
	for b := range a.dense {
		if t := a.dense[b]; t.Events != 0 {
			bs[uint64(b)] = &analysis.Tally{Events: t.Events, Misses: t.Misses}
		}
	}
	a.dense, a.sparse = nil, nil
	return bs
}
