package sim

import (
	"sync"

	"branchconf/internal/analysis"
)

// denseBuckets bounds the dense fast path of bucketAccum. Counter values
// (≤ CounterMax), ones counts, and CIR patterns up to 16 bits land in a
// flat array — one indexed add per branch instead of a map probe, which
// profiling shows dominating the simulation loop otherwise. Wider CIR
// patterns and static branch addresses spill to the map.
const denseBuckets = 1 << 16

// bucketAccum accumulates per-bucket tallies with a dense fast path. It
// produces exactly the integer counts BucketStats.Add would, so swapping it
// into a simulation loop cannot perturb any artefact.
type bucketAccum struct {
	dense  []analysis.Tally // lazily allocated on the first small bucket
	sparse analysis.BucketStats
}

func newBucketAccum() *bucketAccum {
	return &bucketAccum{sparse: make(analysis.BucketStats)}
}

// densePool recycles the 1 MiB dense arrays between passes. A report run
// makes hundreds of passes; without the pool each one allocates and zeroes
// its own array, and the churn shows up as both GC time and memclr. Arrays
// are re-zeroed (only at occupied slots) before being returned to the pool.
var densePool = sync.Pool{
	New: func() any { return make([]analysis.Tally, denseBuckets) },
}

func (a *bucketAccum) add(bucket uint64, incorrect bool) {
	if bucket < denseBuckets {
		if a.dense == nil {
			a.dense = densePool.Get().([]analysis.Tally)
		}
		t := &a.dense[bucket]
		t.Events++
		if incorrect {
			t.Misses++
		}
		return
	}
	a.sparse.Add(bucket, incorrect)
}

// stats folds the dense array into the sparse map and returns it. The
// accumulator must not be used afterwards. Occupied dense buckets share one
// backing block instead of one heap object each; a wide CIR accumulator has
// tens of thousands of them per (benchmark, mechanism) pass.
func (a *bucketAccum) stats() analysis.BucketStats {
	bs := a.sparse
	occupied := 0
	for b := range a.dense {
		if a.dense[b].Events != 0 {
			occupied++
		}
	}
	if occupied > 0 {
		block := make([]analysis.Tally, 0, occupied)
		for b := range a.dense {
			if t := a.dense[b]; t.Events != 0 {
				block = append(block, t)
				bs[uint64(b)] = &block[len(block)-1]
				a.dense[b] = analysis.Tally{}
			}
		}
	}
	if a.dense != nil {
		densePool.Put(a.dense)
	}
	a.dense, a.sparse = nil, nil
	return bs
}
