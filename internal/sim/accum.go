package sim

import (
	"sync"

	"branchconf/internal/analysis"
)

// denseBuckets bounds the dense fast path of bucketAccum. Counter values
// (≤ CounterMax), ones counts, and CIR patterns up to 16 bits land in a
// flat array — one indexed add per branch instead of a map probe, which
// profiling shows dominating the simulation loop otherwise. Wider CIR
// patterns and static branch addresses spill to the map.
const denseBuckets = 1 << 16

// bucketAccum accumulates per-bucket tallies with a dense fast path. It
// produces exactly the integer counts BucketStats.Add would, so swapping it
// into a simulation loop cannot perturb any artefact.
type bucketAccum struct {
	dense   []analysis.Tally // lazily allocated on the first small bucket
	touched []uint32         // dense buckets hit at least once, in first-hit order
	sparse  analysis.BucketStats
}

func newBucketAccum() *bucketAccum {
	return &bucketAccum{sparse: make(analysis.BucketStats)}
}

// denseState is one pooled dense accumulator: the 1 MiB tally array plus
// its touched-bucket list, recycled together so stats only ever walks (and
// re-zeroes) the slots a pass actually occupied instead of all 2^16.
type denseState struct {
	tallies []analysis.Tally
	touched []uint32
}

// densePool recycles the dense arrays between passes. A report run makes
// hundreds of passes; without the pool each one allocates and zeroes its
// own array, and the churn shows up as both GC time and memclr.
var densePool = sync.Pool{
	New: func() any {
		return &denseState{tallies: make([]analysis.Tally, denseBuckets)}
	},
}

func (a *bucketAccum) add(bucket uint64, incorrect bool) {
	if bucket < denseBuckets {
		if a.dense == nil {
			st := densePool.Get().(*denseState)
			a.dense, a.touched = st.tallies, st.touched[:0]
		}
		t := &a.dense[bucket]
		if t.Events == 0 {
			a.touched = append(a.touched, uint32(bucket))
		}
		t.Events++
		if incorrect {
			t.Misses++
		}
		return
	}
	a.sparse.Add(bucket, incorrect)
}

// stats folds the dense array into the sparse map and returns it. The
// accumulator must not be used afterwards. Occupied dense buckets share one
// backing block instead of one heap object each; a wide CIR accumulator has
// tens of thousands of them per (benchmark, mechanism) pass.
func (a *bucketAccum) stats() analysis.BucketStats {
	bs := a.sparse
	if len(a.touched) > 0 {
		block := make([]analysis.Tally, 0, len(a.touched))
		for _, b := range a.touched {
			block = append(block, a.dense[b])
			bs[uint64(b)] = &block[len(block)-1]
			a.dense[b] = analysis.Tally{}
		}
	}
	if a.dense != nil {
		densePool.Put(&denseState{tallies: a.dense, touched: a.touched})
	}
	a.dense, a.touched, a.sparse = nil, nil, nil
	return bs
}
