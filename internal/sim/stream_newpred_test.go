package sim

import (
	"reflect"
	"testing"

	"branchconf/internal/artifact"
	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/workload"
)

// TestStreamingCheckpointResumeTagePerceptron pins the satellite contract
// for the new predictors: a kill/resume at a segment boundary — modeled by
// dropping a mid-run segment's annotated stream so the next run must
// revive the predictor from its boundary checkpoint — reproduces the
// monolithic results byte-identically, and does it through the checkpoint
// codec, NOT through the silent forceLive fallback (VerifyFails == 0). A
// codec bug in MarshalState/RestoreState would otherwise hide as a perf
// regression here instead of a failure.
func TestStreamingCheckpointResumeTagePerceptron(t *testing.T) {
	for _, predKey := range []string{"tage", "perceptron"} {
		t.Run(predKey, func(t *testing.T) {
			defer ResetAnnotatedCache()
			defer workload.ResetMaterializeCache()
			ResetAnnotatedCache()
			workload.ResetMaterializeCache()
			s, err := artifact.Open(t.TempDir(), 256<<20)
			if err != nil {
				t.Fatal(err)
			}
			artifact.SetDefault(s)
			defer artifact.SetDefault(nil)

			const (
				n       = 5000
				segSize = 997
			)
			spec := workload.Suite()[0]
			newPred := func() predictor.Predictor {
				p, err := predictor.Build(predKey)
				if err != nil {
					panic(err)
				}
				return p
			}
			mechs := []func() core.Mechanism{
				func() core.Mechanism { return core.PaperResetting() },
				// State-coupled: consumes the predictor's native-confidence
				// annotation lane through segmented replay.
				func() core.Mechanism { return core.NewAnnotatedConfidence() },
			}

			// Monolithic reference, then a cold streaming run that plants
			// segment payloads and boundary checkpoints.
			mono, err := RunSuiteAnnotated(SuiteConfig{Branches: n, Specs: []workload.Spec{spec}}, predKey, newPred, mechs)
			if err != nil {
				t.Fatal(err)
			}
			cfg := SuiteConfig{Branches: n, Specs: []workload.Spec{spec}, SegmentBranches: segSize}
			want, err := RunSuiteAnnotated(cfg, predKey, newPred, mechs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, mono) {
				t.Fatal("streaming run diverges from monolithic")
			}

			// Kill/resume: segment 2's annotated stream is gone, so the run
			// must restore the predictor checkpoint taken at branch 2*segSize
			// and re-annotate only that segment.
			s.Drop(artifact.KindAnnotatedStream, annSegKey(spec, n, predKey, segSize, 2))
			ResetStreamStats()
			streamCkptRestores.Store(0)
			resumed, err := RunSuiteAnnotated(cfg, predKey, newPred, mechs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(resumed, want) {
				t.Fatal("checkpoint-resumed run diverges from the uninterrupted run")
			}
			if restores := streamCkptRestores.Load(); restores == 0 {
				t.Fatal("resume did not restore any checkpoint")
			}
			if rep := StreamReport(); rep.VerifyFails != 0 {
				t.Fatalf("resume fell back to forceLive %d times: checkpoint codec rejected its own state", rep.VerifyFails)
			}
		})
	}
}
