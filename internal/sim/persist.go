package sim

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"slices"

	"branchconf/internal/analysis"
	"branchconf/internal/bitvec"
)

// Persistence codecs for the engine's stage-1 and stage-2 artifacts, the
// payloads behind artifact.KindAnnotatedStream and
// artifact.KindBucketStream. Layouts are the in-memory representations,
// length-prefixed; histograms are serialized bucket-sorted so equal streams
// always encode to equal bytes (content-addressed stores deduplicate on
// payload identity, and the warm-start tests byte-compare whole runs).
// Integrity against corruption is the artifact record checksum's job; the
// decoders still validate structure exhaustively — lane shapes against the
// branch count, mispredict popcounts, histogram totals — so a payload
// either revives the exact stream that was stored or fails to decode. A
// decode failure is never fatal: the caller drops the record and rebuilds
// (the same fail-soft contract the store applies to disk faults), so these
// codecs are exercised under injected I/O faults by the fault matrix in
// cmd/paperrepro without any failure path of their own.

// appendUint64s appends a length-prefixed little-endian word slice.
func appendUint64s(out []byte, words []uint64) []byte {
	out = binary.LittleEndian.AppendUint64(out, uint64(len(words)))
	for _, w := range words {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return out
}

// readUint64s consumes a length-prefixed word slice, returning the rest.
func readUint64s(rd []byte, what string) ([]uint64, []byte, error) {
	if len(rd) < 8 {
		return nil, nil, fmt.Errorf("sim: payload truncated before %s length", what)
	}
	count := binary.LittleEndian.Uint64(rd)
	rd = rd[8:]
	if count > uint64(len(rd))/8 {
		return nil, nil, fmt.Errorf("sim: payload %s length %d exceeds remaining %d bytes", what, count, len(rd))
	}
	words := make([]uint64, count)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(rd[8*i:])
	}
	return words, rd[8*count:], nil
}

// marshalAnnotatedStream encodes one annotated stream:
//
//	u64 branch count n
//	u64 misprediction count
//	u8  state-lane width (0 = no state lane)
//	u64 mispredict word count + words
//	u64 state word count + words (present only with a state lane)
func marshalAnnotatedStream(a *AnnotatedStream) []byte {
	var stateWidth uint8
	if a.state != nil {
		stateWidth = uint8(a.state.Width())
	}
	out := make([]byte, 0, 8+8+1+8+a.Footprint()+8)
	out = binary.LittleEndian.AppendUint64(out, uint64(a.n))
	out = binary.LittleEndian.AppendUint64(out, a.misses)
	out = append(out, stateWidth)
	out = appendUint64s(out, a.miss.Words())
	if a.state != nil {
		out = appendUint64s(out, a.state.Words())
	}
	return out
}

// unmarshalAnnotatedStream decodes a marshalAnnotatedStream payload.
func unmarshalAnnotatedStream(payload []byte) (*AnnotatedStream, error) {
	rd := payload
	if len(rd) < 17 {
		return nil, fmt.Errorf("sim: annotated payload truncated at header")
	}
	n := binary.LittleEndian.Uint64(rd)
	misses := binary.LittleEndian.Uint64(rd[8:])
	stateWidth := rd[16]
	rd = rd[17:]
	if n > uint64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("sim: annotated payload branch count %d overflows int", n)
	}
	missWords, rd, err := readUint64s(rd, "mispredict lane")
	if err != nil {
		return nil, err
	}
	miss, err := bitvec.MakeVector(missWords, int(n))
	if err != nil {
		return nil, fmt.Errorf("sim: annotated payload: %w", err)
	}
	var pop uint64
	for _, w := range missWords {
		pop += uint64(bits.OnesCount64(w))
	}
	if pop != misses {
		return nil, fmt.Errorf("sim: annotated payload claims %d misses, lane holds %d", misses, pop)
	}
	a := &AnnotatedStream{miss: miss, n: int(n), misses: misses}
	if stateWidth != 0 {
		stateWords, rest, err := readUint64s(rd, "state lane")
		if err != nil {
			return nil, err
		}
		rd = rest
		a.state, err = bitvec.DenseFromWords(uint(stateWidth), stateWords, int(n))
		if err != nil {
			return nil, fmt.Errorf("sim: annotated payload: %w", err)
		}
	}
	if len(rd) != 0 {
		return nil, fmt.Errorf("sim: annotated payload has %d trailing bytes", len(rd))
	}
	return a, nil
}

// marshalBucketStream encodes one bucket stream:
//
//	u64 branch count n
//	u64 misprediction count
//	u8  bucket-lane width
//	u64 lane word count + words
//	u64 histogram entry count, then (bucket, events, misses) u64 triples in
//	    ascending bucket order
func marshalBucketStream(b *BucketStream) []byte {
	out := make([]byte, 0, 8+8+1+8+b.Footprint()+8)
	out = binary.LittleEndian.AppendUint64(out, uint64(b.n))
	out = binary.LittleEndian.AppendUint64(out, b.misses)
	out = append(out, uint8(b.lane.Width()))
	out = appendUint64s(out, b.lane.Words())
	buckets := make([]uint64, 0, len(b.stats))
	for bucket := range b.stats {
		buckets = append(buckets, bucket)
	}
	slices.Sort(buckets)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(buckets)))
	for _, bucket := range buckets {
		t := b.stats[bucket]
		out = binary.LittleEndian.AppendUint64(out, bucket)
		out = binary.LittleEndian.AppendUint64(out, t.Events)
		out = binary.LittleEndian.AppendUint64(out, t.Misses)
	}
	return out
}

// unmarshalBucketStream decodes a marshalBucketStream payload. The decoded
// histogram's totals must tie out against the branch and miss counts —
// every branch lands in exactly one bucket — backed, like Clone, by one
// contiguous tally block.
func unmarshalBucketStream(payload []byte) (*BucketStream, error) {
	rd := payload
	if len(rd) < 17 {
		return nil, fmt.Errorf("sim: bucket payload truncated at header")
	}
	n := binary.LittleEndian.Uint64(rd)
	misses := binary.LittleEndian.Uint64(rd[8:])
	width := rd[16]
	rd = rd[17:]
	if n > uint64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("sim: bucket payload branch count %d overflows int", n)
	}
	laneWords, rd, err := readUint64s(rd, "bucket lane")
	if err != nil {
		return nil, err
	}
	lane, err := bitvec.DenseFromWords(uint(width), laneWords, int(n))
	if err != nil {
		return nil, fmt.Errorf("sim: bucket payload: %w", err)
	}
	if len(rd) < 8 {
		return nil, fmt.Errorf("sim: bucket payload truncated before histogram")
	}
	count := binary.LittleEndian.Uint64(rd)
	rd = rd[8:]
	if count > uint64(len(rd))/24 {
		return nil, fmt.Errorf("sim: bucket payload histogram count %d exceeds remaining %d bytes", count, len(rd))
	}
	stats := make(analysis.BucketStats, count)
	block := make([]analysis.Tally, count)
	var events, missTotal uint64
	var prev uint64
	for i := uint64(0); i < count; i++ {
		bucket := binary.LittleEndian.Uint64(rd)
		block[i] = analysis.Tally{
			Events: binary.LittleEndian.Uint64(rd[8:]),
			Misses: binary.LittleEndian.Uint64(rd[16:]),
		}
		rd = rd[24:]
		if i > 0 && bucket <= prev {
			return nil, fmt.Errorf("sim: bucket payload histogram not in ascending bucket order")
		}
		prev = bucket
		if block[i].Misses > block[i].Events {
			return nil, fmt.Errorf("sim: bucket payload bucket %d has %d misses for %d events", bucket, block[i].Misses, block[i].Events)
		}
		stats[bucket] = &block[i]
		events += block[i].Events
		missTotal += block[i].Misses
	}
	if len(rd) != 0 {
		return nil, fmt.Errorf("sim: bucket payload has %d trailing bytes", len(rd))
	}
	if events != n || missTotal != misses {
		return nil, fmt.Errorf("sim: bucket payload histogram totals (%d events, %d misses) disagree with stream (%d, %d)", events, missTotal, n, misses)
	}
	return &BucketStream{lane: lane, stats: stats, n: int(n), misses: misses}, nil
}
