package sim

import (
	"reflect"
	"testing"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/workload"
)

// factorablePaperMechs is every factorable mechanism family the paper's
// figures instantiate: the one-level index-scheme sweep (fig5), the
// one-level init-policy sweep (fig11), the two-level variants (fig6), and
// the §5.1 counter tables (fig8, table1) in both kinds plus the §5.3
// small-table variant.
func factorablePaperMechs() []func() core.Mechanism {
	var out []func() core.Mechanism
	for _, scheme := range []core.IndexScheme{core.IndexPC, core.IndexBHR, core.IndexPCxorBHR,
		core.IndexGCIR, core.IndexPCxorGCIR, core.IndexPCconcatBHR} {
		scheme := scheme
		out = append(out, func() core.Mechanism { return core.PaperOneLevel(scheme) })
	}
	for _, init := range []core.InitPolicy{core.InitOnes, core.InitZeros, core.InitLastBit, core.InitRandom} {
		init := init
		out = append(out, func() core.Mechanism {
			return core.NewOneLevel(core.OneLevelConfig{Scheme: core.IndexPCxorBHR, Init: init})
		})
	}
	for _, v := range []struct {
		s1 core.IndexScheme
		s2 core.SecondIndex
	}{
		{core.IndexPC, core.L2CIR},
		{core.IndexPCxorBHR, core.L2CIR},
		{core.IndexPCxorBHR, core.L2CIRxorPCxorBHR},
	} {
		v := v
		out = append(out, func() core.Mechanism {
			return core.NewTwoLevel(core.TwoLevelConfig{Scheme1: v.s1, Scheme2: v.s2})
		})
	}
	out = append(out,
		func() core.Mechanism { return core.PaperResetting() },
		func() core.Mechanism {
			return core.NewCounterTable(core.CounterConfig{Kind: core.Saturating, Scheme: core.IndexPCxorBHR})
		},
		func() core.Mechanism { return core.SmallResetting(10) },
	)
	return out
}

// resetEngineCaches clears every process-wide memo the tally tests touch.
func resetEngineCaches(t *testing.T) {
	t.Helper()
	reset := func() {
		ResetAnnotatedCache()
		ResetBucketCache()
		workload.ResetMaterializeCache()
	}
	reset()
	t.Cleanup(reset)
}

// TestTallyMatchesReplay is the stage-3 property test: for every factorable
// paper geometry, the suite results served from geometry-keyed bucket
// streams must equal — integer for integer — the stage-2 replay results on
// the same seeded workload prefix. The non-factorable mechanisms ride along
// to check the partition leaves the replay path untouched.
func TestTallyMatchesReplay(t *testing.T) {
	resetEngineCaches(t)
	cfg := SuiteConfig{Branches: 8000, Specs: workload.Suite()[:4]}
	newPred := func() predictor.Predictor { return predictor.Gshare64K() }
	newMechs := append(factorablePaperMechs(),
		func() core.Mechanism { return core.NewStaticProfile() },
	)

	replayCfg := cfg
	replayCfg.NoTally = true
	want, err := RunSuiteAnnotated(replayCfg, "gshare-64K", newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}
	if rep := BucketCacheReport(); rep.Hits != 0 || rep.Misses != 0 {
		t.Fatalf("NoTally run touched the bucket cache: %d hits, %d misses", rep.Hits, rep.Misses)
	}

	got, err := RunSuiteAnnotated(cfg, "gshare-64K", newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("mechanism %d (%s): tally path diverges from replay path",
				i, newMechs[i]().Name())
		}
	}

	rep := BucketCacheReport()
	misses, resident := rep.Misses, rep.ResidentBytes
	if misses == 0 || resident == 0 {
		t.Fatalf("tally run built no bucket streams: %d misses, %d resident bytes", misses, resident)
	}
	// 16 factorable mechanisms collapse to 15 distinct geometries (the
	// IndexPCxorBHR scheme sweep entry and the InitOnes init sweep entry are
	// the same configuration), so per benchmark the cache must build one
	// stream per geometry and serve the duplicate from a hit.
	if wantMisses := uint64(len(cfg.Specs)) * 15; misses != wantMisses {
		t.Errorf("bucket cache built %d streams, want %d (one per benchmark per distinct geometry)", misses, wantMisses)
	}

	// A rerun is served entirely from the cache: hits move, misses do not.
	rep1 := BucketCacheReport()
	hits1, misses1 := rep1.Hits, rep1.Misses
	again, err := RunSuiteAnnotated(cfg, "gshare-64K", newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Error("cached tally rerun diverges from replay path")
	}
	rep2 := BucketCacheReport()
	hits2, misses2 := rep2.Hits, rep2.Misses
	if hits2 <= hits1 {
		t.Errorf("tally rerun took no bucket-cache hits (%d -> %d)", hits1, hits2)
	}
	if misses2 != misses1 {
		t.Errorf("tally rerun rebuilt streams: misses %d -> %d", misses1, misses2)
	}
}

// TestTallyMatchesReplayParallel reruns the equality property with the
// engine fanned out over 8 simulation slots — under -race this is the
// stage's concurrency check: parallel chunks claiming overlapping bucket
// streams must share builds without data races or divergence.
func TestTallyMatchesReplayParallel(t *testing.T) {
	resetEngineCaches(t)
	defer SetParallelism(0)
	cfg := SuiteConfig{Branches: 6000, Specs: workload.Suite()[:3]}
	newPred := func() predictor.Predictor { return predictor.Gshare64K() }
	newMechs := factorablePaperMechs()

	SetParallelism(1)
	replayCfg := cfg
	replayCfg.NoTally = true
	want, err := RunSuiteAnnotated(replayCfg, "gshare-64K", newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}

	SetParallelism(8)
	got, err := RunSuiteAnnotated(cfg, "gshare-64K", newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("parallel tally run diverges from serial replay run")
	}
}

// TestBucketCacheBound: a starvation bound forces eviction after every
// build; results stay correct (builders hold their own pointers) and the
// eviction counter moves.
func TestBucketCacheBound(t *testing.T) {
	resetEngineCaches(t)
	defer SetBucketCacheBound(0)
	SetBucketCacheBound(1)
	cfg := SuiteConfig{Branches: 4000, Specs: workload.Suite()[:2]}
	newPred := func() predictor.Predictor { return predictor.Gshare64K() }
	newMechs := []func() core.Mechanism{
		func() core.Mechanism { return core.PaperOneLevel(core.IndexPCxorBHR) },
		func() core.Mechanism { return core.PaperOneLevel(core.IndexPC) },
	}
	replayCfg := cfg
	replayCfg.NoTally = true
	want, err := RunSuiteAnnotated(replayCfg, "gshare-64K", newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSuiteAnnotated(cfg, "gshare-64K", newPred, newMechs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("bound-starved tally run diverges from replay run")
	}
	rep := BucketCacheReport()
	if rep.Evictions == 0 {
		t.Fatalf("1-byte bound evicted nothing: %+v", rep)
	}
	if rep.ResidentBytes > 1 {
		t.Fatalf("1-byte bound left %d bytes resident", rep.ResidentBytes)
	}
}
