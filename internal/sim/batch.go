package sim

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
)

// Single-pass batched simulation. Confidence mechanisms are passive
// observers of the (PC, history, predicted, outcome) stream: they never
// influence the predictor or each other. RunBatch exploits that to walk one
// trace through one predictor instance while training any number of
// mechanisms, so N mechanism studies over the same predictor configuration
// cost one predictor simulation instead of N.

// RunBatch replays src through pred once, feeding every per-branch event to
// each mechanism. The returned results are index-aligned with mechs and
// byte-identical to len(mechs) separate Run calls over the same trace: each
// mechanism observes exactly the Run protocol (Bucket before any update,
// then Update with the outcome).
func RunBatch(src trace.Source, pred predictor.Predictor, mechs []core.Mechanism) ([]Result, error) {
	results := make([]Result, len(mechs))
	accums := make([]*bucketAccum, len(mechs))
	for i := range accums {
		accums[i] = newBucketAccum()
	}
	// Predictor-coupled mechanisms (core.StateCoupled) are fed the captured
	// pre-update annotation state instead of reading the predictor live.
	// For a live-coupled mechanism the two are the same value by the
	// StateAnnotator contract; for an annotated mechanism with no predictor
	// reference this is the only way to answer.
	annPred, _ := pred.(predictor.StateAnnotator)
	coupled := make([]core.StateCoupled, len(mechs))
	anyCoupled := false
	if annPred != nil {
		for i, m := range mechs {
			if sc, ok := m.(core.StateCoupled); ok {
				coupled[i] = sc
				anyCoupled = true
			}
		}
	}
	finish := func() {
		for i := range results {
			results[i].Buckets = accums[i].stats()
		}
	}
	for {
		r, err := src.Next()
		if err == io.EOF {
			finish()
			return results, nil
		}
		if err != nil {
			finish()
			return results, fmt.Errorf("sim: reading trace: %w", err)
		}
		incorrect := pred.Predict(r) != r.Taken
		var st uint8
		if anyCoupled {
			st = annPred.AnnotationState(r)
		}
		// Buckets are read before the predictor trains, exactly as in Run,
		// so predictor-coupled mechanisms (e.g. counter strength) see the
		// same pre-update state.
		for i, m := range mechs {
			if coupled[i] != nil {
				accums[i].add(coupled[i].BucketWithState(r, st), incorrect)
			} else {
				accums[i].add(m.Bucket(r), incorrect)
			}
		}
		pred.Update(r)
		for i, m := range mechs {
			m.Update(r, incorrect)
			results[i].Branches++
			if incorrect {
				results[i].Misses++
			}
		}
	}
}

// parallelism bounds concurrently running per-benchmark simulation units
// across all suite runs in the process (the scheduler's work unit is one
// benchmark × predictor-pass). The default tracks the machine.
var (
	parallelismMu sync.Mutex
	parallelism   = runtime.NumCPU()
	simSlots      chan struct{}
)

// SetParallelism bounds the number of benchmark-level simulation units
// running at once across every RunSuite/RunSuiteBatch call. n < 1 resets to
// runtime.NumCPU(). Parallelism never affects results — each unit owns its
// source, predictor and mechanisms — only wall-clock time.
//
// Resizing is safe mid-suite: the channel is rebuilt eagerly under the lock,
// so units acquired before the resize release into the channel they drew
// from (each acquire closes over its channel) while new acquisitions see the
// new width immediately. Momentarily the two pools coexist, so in-flight
// work may briefly exceed the smaller of the two bounds — never the sum
// growing unboundedly — and the race detector sees only channel operations.
func SetParallelism(n int) {
	if n < 1 {
		n = runtime.NumCPU()
	}
	parallelismMu.Lock()
	parallelism = n
	simSlots = make(chan struct{}, n)
	parallelismMu.Unlock()
}

// slotChan returns the current slot channel, building it on first use.
func slotChan() chan struct{} {
	parallelismMu.Lock()
	if simSlots == nil {
		simSlots = make(chan struct{}, parallelism)
	}
	slots := simSlots
	parallelismMu.Unlock()
	return slots
}

// currentParallelism reports the configured bound, for schedulers sizing
// their fan-out.
func currentParallelism() int {
	parallelismMu.Lock()
	defer parallelismMu.Unlock()
	return parallelism
}

// acquireSlot blocks until a simulation slot is free.
func acquireSlot() func() {
	slots := slotChan()
	slots <- struct{}{}
	return func() { <-slots }
}

// RunSuiteBatch replays every benchmark through a fresh predictor and a
// fresh instance of each mechanism constructor, in one predictor pass per
// benchmark. It returns one SuiteResult per mechanism constructor,
// index-aligned with newMechs, each holding per-benchmark runs in suite
// order — exactly what len(newMechs) RunSuite calls would produce, for one
// predictor simulation per benchmark.
//
// Benchmarks run concurrently under the process-wide parallelism bound (see
// SetParallelism); determinism is unaffected. Per-benchmark failures are
// aggregated with errors.Join so a multi-benchmark failure reports every
// cause. newPred and newMechs are invoked from multiple goroutines and must
// be pure constructors.
func RunSuiteBatch(cfg SuiteConfig, newPred func() predictor.Predictor, newMechs []func() core.Mechanism) ([]SuiteResult, error) {
	specs := cfg.specs()
	perSpec := make([][]Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		i, spec := i, spec
		wg.Add(1)
		go func() {
			defer wg.Done()
			release := acquireSlot()
			defer release()
			src, err := cfg.source(spec)
			if err != nil {
				errs[i] = fmt.Errorf("sim: building %s: %w", spec.Name, err)
				return
			}
			mechs := make([]core.Mechanism, len(newMechs))
			for j, nm := range newMechs {
				mechs[j] = nm()
			}
			rs, err := RunBatch(src, newPred(), mechs)
			if err != nil {
				errs[i] = fmt.Errorf("sim: running %s: %w", spec.Name, err)
				return
			}
			for j := range rs {
				rs[j].Benchmark = spec.Name
			}
			perSpec[i] = rs
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	out := make([]SuiteResult, len(newMechs))
	for j := range newMechs {
		runs := make([]Result, len(specs))
		for i := range specs {
			runs[i] = perSpec[i][j]
		}
		out[j] = SuiteResult{Runs: runs}
	}
	return out, nil
}

// DeriveEstimator reconstructs the confusion summary an online RunEstimator
// pass would have produced, from a mechanism run's per-bucket statistics.
// The equivalence is exact: an estimator's confidence signal is a pure
// function of the bucket read before update, which is precisely what the
// bucket statistics tally, so the low/high split is a partition of the
// bucket tallies.
func DeriveEstimator(res Result, reduce core.Reducer) EstimatorResult {
	out := EstimatorResult{
		Benchmark: res.Benchmark,
		Branches:  res.Branches,
		Misses:    res.Misses,
	}
	for b, t := range res.Buckets {
		if !reduce.Confident(b) {
			out.Low += t.Events
			out.LowMisses += t.Misses
		}
	}
	return out
}

// DeriveMulti reconstructs a multi-level estimator run from a
// counter-mechanism run, partitioning bucket tallies by the ascending
// threshold ladder exactly as core.MultiEstimator.Level does online.
func DeriveMulti(res Result, thresholds []uint64) MultiResult {
	out := MultiResult{Benchmark: res.Benchmark, Levels: make([]LevelTally, len(thresholds)+1)}
	for b, t := range res.Buckets {
		level := sort.Search(len(thresholds), func(i int) bool { return b < thresholds[i] })
		out.Levels[level].Branches += t.Events
		out.Levels[level].Misses += t.Misses
	}
	return out
}
