package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"branchconf/internal/analysis"
	"branchconf/internal/artifact"
	"branchconf/internal/bitvec"
	"branchconf/internal/core"
	"branchconf/internal/memo"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

// Stage 3 of the simulation engine: geometry-keyed bucket streams. For a
// factorable mechanism (core.Factorable — one- and two-level CIR tables)
// the per-branch bucket sequence is a pure function of the annotated
// (PC, Taken, mispredict) stream and the table geometry, never of the
// reduction function, threshold, or counter policy layered on top. So the
// engine replays each annotated stream through each geometry exactly once,
// into a BucketStream: a packed per-branch bucket lane plus the base
// histogram of pattern → {events, misses} tallies. Every variant over the
// same geometry is then served by sharing the immutable histogram at O(1)
// marginal cost — no O(branches) replay — and the build itself runs a monomorphic
// raw-table kernel (core.Factorable.FillBucketLane) that is several times
// faster per branch than the interface-dispatched stage-2 replay.
//
// The factoring is exact: the lane records precisely the buckets the
// stage-2 replay would feed its accumulator, so the histogram has
// identical integer counts and every downstream artefact is byte-identical
// (asserted by TestBucketStreamMatchesReplay and the tally twins of the
// engine determinism tests). SuiteConfig.NoTally disables the stage for
// A/B benchmarking.

// BucketStream is the stage-3 artifact for one (benchmark, predictor
// config, geometry) triple: the packed per-branch bucket lane and the base
// histogram tallied from it. A fully built stream is immutable and safe
// for concurrent use.
type BucketStream struct {
	lane   *bitvec.Dense
	stats  analysis.BucketStats // base histogram: bucket → {events, misses}
	n      int
	misses uint64
}

// Len returns the number of branches in the stream.
func (b *BucketStream) Len() int { return b.n }

// Bucket returns the i-th per-branch bucket (test and inspection access;
// bulk consumers use the histogram).
func (b *BucketStream) Bucket(i int) uint64 { return b.lane.At(i) }

// Stats returns the base histogram for use as a Result's bucket
// statistics. The map is shared by every variant served from this stream
// (and by the stream cache) and must be treated as read-only — which every
// consumer already is: Result.Buckets only ever feeds the read-only
// analysis composites and the Derive* partitions. Sharing makes the
// per-variant marginal cost O(1); a caller that genuinely needs a private
// mutable copy takes Stats().Clone().
func (b *BucketStream) Stats() analysis.BucketStats { return b.stats }

// Footprint returns the stream's payload bytes: the packed lane plus the
// base histogram's tally storage.
func (b *BucketStream) Footprint() uint64 {
	// Each histogram entry costs one Tally plus a map slot; 32 bytes is the
	// amortised cost on 64-bit platforms and keeps the bound honest.
	return b.lane.Bytes() + uint64(len(b.stats))*32
}

// fusedTallyLimit bounds the fused dense-histogram build path: for bucket
// widths up to 16 bits (every paper geometry) FillBucketLane counts into a
// flat 2<<width uint32 array while the bucket value is still in a register,
// and the separate lane pass (tallyLane) is skipped entirely. Wider lanes
// fall back to the word-parallel tally kernel over the finished lane.
const fusedTallyLimit = 16

// countsPool recycles the fused histogram arrays (512 KB at the width cap)
// between builds; only the 2<<width prefix in use is zeroed per build.
var countsPool = sync.Pool{
	New: func() any { return make([]uint32, 2<<fusedTallyLimit) },
}

// countsToStats converts a fused histogram into the map form the analysis
// layer consumes, walking buckets in ascending order and backing all
// tallies with one contiguous block. The integer counts are exactly what
// the stage-2 replay accumulator would produce.
func countsToStats(counts []uint32) analysis.BucketStats {
	occupied := 0
	for b := 0; b < len(counts); b += 2 {
		if counts[b] != 0 {
			occupied++
		}
	}
	bs := make(analysis.BucketStats, occupied)
	block := make([]analysis.Tally, 0, occupied)
	for b := 0; b < len(counts); b += 2 {
		if counts[b] != 0 {
			block = append(block, analysis.Tally{Events: uint64(counts[b]), Misses: uint64(counts[b+1])})
			bs[uint64(b>>1)] = &block[len(block)-1]
		}
	}
	return bs
}

// countsToStats64 is countsToStats for the streaming engine's per-geometry
// running histogram, which accumulates across segments in uint64 so no
// horizon can overflow it.
func countsToStats64(counts []uint64) analysis.BucketStats {
	occupied := 0
	for b := 0; b < len(counts); b += 2 {
		if counts[b] != 0 {
			occupied++
		}
	}
	bs := make(analysis.BucketStats, occupied)
	block := make([]analysis.Tally, 0, occupied)
	for b := 0; b < len(counts); b += 2 {
		if counts[b] != 0 {
			block = append(block, analysis.Tally{Events: counts[b], Misses: counts[b+1]})
			bs[uint64(b>>1)] = &block[len(block)-1]
		}
	}
	return bs
}

// tallyLane is the word-parallel tally kernel: it folds the packed bucket
// lane against the packed mispredict bits into per-bucket tallies, loading
// one lane word per PerWord() branches and one miss word per 64. The
// result has exactly the integer counts the stage-2 replay accumulator
// would produce for the same stream.
func tallyLane(lane *bitvec.Dense, miss []uint64, n int) analysis.BucketStats {
	acc := newBucketAccum()
	var (
		words   = lane.Words()
		width   = lane.Width()
		perWord = lane.PerWord()
		mask    = uint64(1)<<width - 1
		wi      int
		shift   uint
		slot    uint
		laneWd  uint64
		missWd  uint64
	)
	if width == 64 {
		mask = ^uint64(0)
	}
	for i := 0; i < n; i++ {
		if uint(i)&63 == 0 {
			missWd = miss[i>>6]
		}
		if slot == 0 {
			laneWd = words[wi]
		}
		acc.add(laneWd>>shift&mask, missWd>>(uint(i)&63)&1 == 1)
		slot++
		shift += width
		if slot == perWord {
			slot, shift, wi = 0, 0, wi+1
		}
	}
	return acc.stats()
}

// bucketKey identifies one bucket stream: the benchmark and budget fix the
// branch stream, the predictor key fixes the mispredict bits, and the
// geometry key fixes the tables the stream walks.
type bucketKey struct {
	spec    workload.Spec
	n       uint64
	predKey string
	geom    string
}

// bucketCache memoizes bucket streams geometry-keyed, as a sibling
// instance of the annotated cache's memo.ByteLRU. Its resident bound follows
// -annotate-cache-mb unless -bucket-cache-mb overrides it
// (SetBucketCacheBound).
var bucketCache memo.ByteLRU

var bucketHits, bucketMisses atomic.Uint64

// bucketBoundOverridden records an explicit SetBucketCacheBound call, after
// which SetTallyCacheDefaultBound no longer tracks the annotated bound.
var bucketBoundOverridden atomic.Bool

// SetBucketCacheBound bounds the resident payload bytes of the
// bucket-stream cache, overriding the default of following the annotated
// cache's bound. 0 removes the bound.
func SetBucketCacheBound(bytes uint64) {
	bucketBoundOverridden.Store(true)
	bucketCache.SetBound(bytes)
}

// SetTallyCacheDefaultBound points the bucket-stream cache at the shared
// -annotate-cache-mb budget figure; an explicit SetBucketCacheBound wins.
func SetTallyCacheDefaultBound(bytes uint64) {
	if !bucketBoundOverridden.Load() {
		bucketCache.SetBound(bytes)
	}
}

// BucketCacheReport returns the bucket-stream cache's observability quad.
func BucketCacheReport() CacheStats {
	r, e := bucketCache.Usage()
	return CacheStats{Hits: bucketHits.Load(), Misses: bucketMisses.Load(), Evictions: e, ResidentBytes: r}
}

// ResetBucketCache drops every cached bucket stream and zeroes the
// counters. The bound (and whether it was overridden) is retained.
func ResetBucketCache() {
	bucketCache.Reset()
	bucketHits.Store(0)
	bucketMisses.Store(0)
}

// bucketStreamFor returns the memoized bucket stream for one (benchmark,
// predictor config, geometry) triple, building lane and histogram on a
// cache miss. The caller supplies the benchmark's (flat view, annotated
// stream) pair it already holds, so the bucket claim never touches the
// annotated cache. Concurrent claimants of the same key share one build.
// fm is only read (FillBucketLane replays a private copy of its initial
// state), so chunk-local mechanism instances are safe to pass from
// parallel goroutines.
func bucketStreamFor(cfg SuiteConfig, spec workload.Spec, predKey string, flat *trace.FlatView, ann *AnnotatedStream, fm core.Factorable) (*BucketStream, error) {
	n := cfg.Branches
	if n == 0 {
		n = spec.DefaultBranches
	}
	e, owner := bucketCache.Claim(bucketKey{spec: spec, n: n, predKey: predKey, geom: fm.GeometryKey()})
	if !owner {
		bucketHits.Add(1)
		<-e.Done
		bs, _ := e.Val.(*BucketStream)
		return bs, e.Err
	}
	bucketMisses.Add(1)
	bs := bucketStreamFromDisk(spec, n, predKey, fm.GeometryKey(), ann)
	if bs == nil {
		width := fm.BucketWidth()
		lane := bitvec.NewDense(width, flat.Len())
		var stats analysis.BucketStats
		if width <= fusedTallyLimit {
			counts := countsPool.Get().([]uint32)
			used := counts[:2<<width]
			clear(used)
			fm.FillBucketLane(flat.Records(), ann.MissWords(), lane, used)
			stats = countsToStats(used)
			countsPool.Put(counts)
		} else {
			fm.FillBucketLane(flat.Records(), ann.MissWords(), lane, nil)
			stats = tallyLane(lane, ann.MissWords(), ann.n)
		}
		bs = &BucketStream{
			lane:   lane,
			n:      ann.n,
			misses: ann.misses,
			stats:  stats,
		}
		bucketStreamToDisk(spec, n, predKey, fm.GeometryKey(), bs)
	}
	e.Val = bs
	bucketCache.Finish(e, bs.Footprint())
	return bs, nil
}

// bucketArtifactKey is the canonical disk-store key for one bucket stream:
// codec version, full spec identity, resolved budget, predictor config,
// and table geometry.
func bucketArtifactKey(spec workload.Spec, n uint64, predKey, geom string) string {
	return fmt.Sprintf("bucket|v%d|%s|n=%d|pred=%s|geom=%s", artifact.FormatVersion, spec.CacheKey(), n, predKey, geom)
}

// bucketStreamFromDisk consults the persistent artifact tier on an
// in-memory miss, returning nil when the tier is disabled, cold, or fails
// verification (the fill kernel then runs as usual). The decoded stream
// must agree with the annotated stream on branch and miss counts; anything
// else is treated as corruption and dropped.
func bucketStreamFromDisk(spec workload.Spec, n uint64, predKey, geom string, ann *AnnotatedStream) *BucketStream {
	s := artifact.Default()
	if s == nil {
		return nil
	}
	key := bucketArtifactKey(spec, n, predKey, geom)
	payload, ok := s.Get(artifact.KindBucketStream, key)
	if !ok {
		return nil
	}
	bs, err := unmarshalBucketStream(payload)
	if err != nil || bs.n != ann.n || bs.misses != ann.misses {
		s.Drop(artifact.KindBucketStream, key)
		return nil
	}
	return bs
}

// bucketStreamToDisk publishes a freshly built bucket stream to the
// persistent tier, best effort; the store owns retry and degradation, so
// its error is deliberately ignored.
func bucketStreamToDisk(spec workload.Spec, n uint64, predKey, geom string, bs *BucketStream) {
	if s := artifact.Default(); s != nil {
		_ = s.Put(artifact.KindBucketStream, bucketArtifactKey(spec, n, predKey, geom), marshalBucketStream(bs))
	}
}
