package sim

import (
	"testing"

	"branchconf/internal/core"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

func smallTrace(n int) trace.Trace {
	tr := make(trace.Trace, n)
	for i := range tr {
		pc := uint64(0x1000 + 8*(i%16))
		tr[i] = trace.Record{PC: pc, Target: pc + 64, Taken: i%3 != 0}
	}
	return tr
}

func TestRunCountsConsistent(t *testing.T) {
	tr := smallTrace(1000)
	res, err := Run(tr.Source(), predictor.NewBimodal(10), core.PaperResetting())
	if err != nil {
		t.Fatal(err)
	}
	if res.Branches != 1000 {
		t.Fatalf("branches %d", res.Branches)
	}
	e, m := res.Buckets.Totals()
	if e != res.Branches || m != res.Misses {
		t.Fatalf("bucket totals %d/%d vs run %d/%d", e, m, res.Branches, res.Misses)
	}
	if res.MissRate() <= 0 || res.MissRate() >= 1 {
		t.Fatalf("miss rate %v", res.MissRate())
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := smallTrace(2000)
	a, err := Run(tr.Source(), predictor.Gshare4K(), core.PaperOneLevel(core.IndexPCxorBHR))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr.Source(), predictor.Gshare4K(), core.PaperOneLevel(core.IndexPCxorBHR))
	if err != nil {
		t.Fatal(err)
	}
	if a.Misses != b.Misses || len(a.Buckets) != len(b.Buckets) {
		t.Fatalf("nondeterministic run: %d/%d vs %d/%d", a.Misses, len(a.Buckets), b.Misses, len(b.Buckets))
	}
}

func TestPredictOnly(t *testing.T) {
	tr := smallTrace(500)
	res, err := PredictOnly(tr.Source(), predictor.AlwaysTaken{})
	if err != nil {
		t.Fatal(err)
	}
	// i%3 != 0 taken: not-taken on 0,3,6... → ~1/3 of 500 mispredictions.
	if res.Misses < 150 || res.Misses > 180 {
		t.Fatalf("always-taken misses %d, want ~167", res.Misses)
	}
	if len(res.Buckets) != 1 {
		t.Fatalf("null mechanism produced %d buckets", len(res.Buckets))
	}
}

func TestRunEstimatorConfusionConsistent(t *testing.T) {
	tr := smallTrace(2000)
	res, err := RunEstimator(tr.Source(), predictor.NewBimodal(10), core.PaperEstimator(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Branches != 2000 {
		t.Fatalf("branches %d", res.Branches)
	}
	if res.Low > res.Branches || res.LowMisses > res.Misses || res.LowMisses > res.Low {
		t.Fatalf("inconsistent confusion %+v", res)
	}
	if res.High()+res.Low != res.Branches {
		t.Fatal("high+low != branches")
	}
	if res.HighMisses()+res.LowMisses != res.Misses {
		t.Fatal("high+low misses != misses")
	}
	if res.LowFrac() < 0 || res.LowFrac() > 1 || res.Coverage() < 0 || res.Coverage() > 1 {
		t.Fatalf("fractions out of range %+v", res)
	}
}

func TestEstimatorThresholdMonotone(t *testing.T) {
	// Raising the resetting threshold can only enlarge the low set and its
	// misprediction coverage.
	tr := smallTrace(5000)
	var prevLow, prevCov float64
	for _, thr := range []uint64{1, 4, 8, 16} {
		res, err := RunEstimator(tr.Source(), predictor.NewBimodal(10), core.PaperEstimator(thr))
		if err != nil {
			t.Fatal(err)
		}
		if res.LowFrac() < prevLow-1e-12 || res.Coverage() < prevCov-1e-12 {
			t.Fatalf("threshold %d shrank low set: %v/%v after %v/%v",
				thr, res.LowFrac(), res.Coverage(), prevLow, prevCov)
		}
		prevLow, prevCov = res.LowFrac(), res.Coverage()
	}
}

func TestEstimatorPVNExceedsBaseRate(t *testing.T) {
	// The low-confidence set must be enriched in mispredictions: that is
	// the whole point of the mechanism.
	spec, err := workload.ByName("groff")
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.FiniteSource(200000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunEstimator(src, predictor.Gshare64K(), core.PaperEstimator(16))
	if err != nil {
		t.Fatal(err)
	}
	base := float64(res.Misses) / float64(res.Branches)
	if res.PVN() < 2*base {
		t.Fatalf("PVN %.3f not enriched over base rate %.3f", res.PVN(), base)
	}
	if res.Coverage() < 0.70 {
		t.Fatalf("threshold-16 coverage %.2f, expected > 0.70", res.Coverage())
	}
}

func TestEstimatorConfusionQuadrant(t *testing.T) {
	tr := smallTrace(3000)
	res, err := RunEstimator(tr.Source(), predictor.NewBimodal(10), core.PaperEstimator(8))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Confusion()
	if c.Total() != res.Branches {
		t.Fatalf("quadrant total %d vs branches %d", c.Total(), res.Branches)
	}
	if c.Misses() != res.Misses {
		t.Fatalf("quadrant misses %d vs %d", c.Misses(), res.Misses)
	}
	if got, want := c.Sens(), res.Coverage(); got != want {
		t.Fatalf("Sens %v vs Coverage %v", got, want)
	}
	if got, want := c.PVN(), res.PVN(); got != want {
		t.Fatalf("Confusion.PVN %v vs result PVN %v", got, want)
	}
	if got, want := c.LowFrac(), res.LowFrac(); got != want {
		t.Fatalf("LowFrac %v vs %v", got, want)
	}
}

func TestRunSuite(t *testing.T) {
	cfg := SuiteConfig{Branches: 20000}
	sr, err := RunSuite(cfg,
		func() predictor.Predictor { return predictor.Gshare4K() },
		func() core.Mechanism { return core.SmallResetting(12) })
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Runs) != 9 {
		t.Fatalf("%d runs", len(sr.Runs))
	}
	for _, r := range sr.Runs {
		if r.Branches != 20000 {
			t.Fatalf("%s: %d branches", r.Benchmark, r.Branches)
		}
	}
	if rate := sr.CompositeMissRate(); rate <= 0 || rate > 0.5 {
		t.Fatalf("composite rate %v", rate)
	}
	if _, err := sr.ByName("real_gcc"); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.ByName("nonesuch"); err == nil {
		t.Fatal("found nonexistent benchmark")
	}
	if len(sr.Stats()) != 9 {
		t.Fatal("stats length")
	}
}

func TestRunSuiteSubset(t *testing.T) {
	spec, err := workload.ByName("jpeg_play")
	if err != nil {
		t.Fatal(err)
	}
	cfg := SuiteConfig{Branches: 5000, Specs: []workload.Spec{spec}}
	sr, err := RunSuite(cfg,
		func() predictor.Predictor { return predictor.NewBimodal(10) },
		func() core.Mechanism { return core.NewStaticProfile() })
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Runs) != 1 || sr.Runs[0].Benchmark != "jpeg_play" {
		t.Fatalf("runs %+v", sr.Runs)
	}
}

func TestRunSuiteParallelMatchesSerial(t *testing.T) {
	// RunSuite executes benchmarks concurrently; results must be identical
	// to independent serial runs (each run is self-contained).
	cfg := SuiteConfig{Branches: 15000}
	sr, err := RunSuite(cfg,
		func() predictor.Predictor { return predictor.Gshare4K() },
		func() core.Mechanism { return core.SmallResetting(12) })
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range workload.Suite() {
		src, err := spec.FiniteSource(cfg.Branches)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := Run(src, predictor.Gshare4K(), core.SmallResetting(12))
		if err != nil {
			t.Fatal(err)
		}
		got := sr.Runs[i]
		if got.Benchmark != spec.Name {
			t.Fatalf("run %d is %s, want %s (order broken)", i, got.Benchmark, spec.Name)
		}
		if got.Misses != serial.Misses || got.Branches != serial.Branches {
			t.Fatalf("%s: parallel %d/%d vs serial %d/%d",
				spec.Name, got.Misses, got.Branches, serial.Misses, serial.Branches)
		}
		if len(got.Buckets) != len(serial.Buckets) {
			t.Fatalf("%s: bucket count differs", spec.Name)
		}
	}
}
