package sim

import (
	"fmt"
	"sync/atomic"

	"branchconf/internal/artifact"
	"branchconf/internal/memo"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

// Process-wide annotated-stream cache. The predictor stage of the engine is
// a pure function of (benchmark spec, branch budget, predictor config), so
// its outputs are memoized exactly like materialized traces:
//
//   - flat views (fully decoded records, 24 B/branch) are keyed by (spec,
//     budget) and shared across every predictor config, and
//   - annotated streams (mispredict + state bits, ~3/8 B/branch for gshare)
//     are keyed by (spec, budget, predictor key).
//
// Both kinds live in one memo.ByteLRU instance, so they share a single
// resident-bytes budget (SetAnnotatedCacheBound); the claim-or-wait and
// LRU-eviction mechanics are the cache's. The stage-3 bucket-stream cache
// (tally.go) is a sibling instance over the same machinery.

type flatKey struct {
	spec workload.Spec
	n    uint64
}

type annKey struct {
	spec    workload.Spec
	n       uint64
	predKey string
}

var annCache memo.ByteLRU

// Cache observability counters. Hits and misses count annotated-stream
// claims (the expensive artifact); flat views piggyback on the same keys
// one level up.
var annHits, annMisses atomic.Uint64

// CacheStats is one cache's observability snapshot, as printed under the
// paperrepro -cache-stats flag — the uniform hit/miss/eviction/resident
// quad shared by every tier (the disk tier additionally moves the
// verify-fail counter; in-memory tiers leave it zero).
type CacheStats = artifact.TierStats

// SetAnnotatedCacheBound bounds the resident payload bytes of the annotated
// cache (flat views plus annotated streams). 0 removes the bound. When an
// insertion pushes the cache over the bound, completed entries are evicted
// least-recently-used first; a single entry larger than the bound is still
// admitted (and becomes the next eviction candidate).
func SetAnnotatedCacheBound(bytes uint64) {
	annCache.SetBound(bytes)
}

// AnnotatedCacheReport returns the annotated cache's observability quad
// (claims of annotated streams; resident bytes include the flat views
// sharing the budget).
func AnnotatedCacheReport() CacheStats {
	r, e := annCache.Usage()
	return CacheStats{Hits: annHits.Load(), Misses: annMisses.Load(), Evictions: e, ResidentBytes: r}
}

// ResetAnnotatedCache drops every cached entry and zeroes the counters. The
// bound is retained. Intended for tests and batch boundaries.
func ResetAnnotatedCache() {
	annCache.Reset()
	annHits.Store(0)
	annMisses.Store(0)
}

// flatFor returns the shared flat view for (spec, budget), building it from
// the suite's replay buffer on first use.
func flatFor(cfg SuiteConfig, spec workload.Spec, n uint64) (*trace.FlatView, error) {
	e, owner := annCache.Claim(flatKey{spec: spec, n: n})
	if !owner {
		<-e.Done
		flat, _ := e.Val.(*trace.FlatView)
		return flat, e.Err
	}
	var flat *trace.FlatView
	buf, err := cfg.buffer(spec)
	if err != nil {
		e.Err = err
	} else {
		flat = buf.Flatten()
		e.Val = flat
	}
	var bytes uint64
	if flat != nil {
		bytes = flat.Footprint()
	}
	annCache.Finish(e, bytes)
	return flat, e.Err
}

// annotatedFor returns the (flat view, annotated stream) pair for one
// benchmark under one predictor config, running the predictor stage only on
// a cache miss. Concurrent claimants of the same key share one build.
func annotatedFor(cfg SuiteConfig, spec workload.Spec, predKey string, newPred func() predictor.Predictor) (*trace.FlatView, *AnnotatedStream, error) {
	n := cfg.Branches
	if n == 0 {
		n = spec.DefaultBranches
	}
	flat, err := flatFor(cfg, spec, n)
	if err != nil {
		return nil, nil, err
	}

	e, owner := annCache.Claim(annKey{spec: spec, n: n, predKey: predKey})
	if !owner {
		annHits.Add(1)
		<-e.Done
		ann, _ := e.Val.(*AnnotatedStream)
		return flat, ann, e.Err
	}
	annMisses.Add(1)
	ann := annotatedFromDisk(spec, n, predKey, flat)
	if ann == nil {
		ann = Annotate(flat, newPred())
		annotatedToDisk(spec, n, predKey, ann)
	}
	e.Val = ann
	annCache.Finish(e, ann.Footprint())
	return flat, ann, e.Err
}

// annArtifactKey is the canonical disk-store key for one annotated stream:
// codec version, full spec identity, resolved budget, and predictor config.
func annArtifactKey(spec workload.Spec, n uint64, predKey string) string {
	return fmt.Sprintf("ann|v%d|%s|n=%d|pred=%s", artifact.FormatVersion, spec.CacheKey(), n, predKey)
}

// annotatedFromDisk consults the persistent artifact tier on an in-memory
// miss, returning nil when the tier is disabled, cold, or fails
// verification (the predictor stage then runs as usual). The decoded
// stream must cover exactly the flat view's branches; anything else is
// treated as corruption and dropped.
func annotatedFromDisk(spec workload.Spec, n uint64, predKey string, flat *trace.FlatView) *AnnotatedStream {
	s := artifact.Default()
	if s == nil {
		return nil
	}
	key := annArtifactKey(spec, n, predKey)
	payload, ok := s.Get(artifact.KindAnnotatedStream, key)
	if !ok {
		return nil
	}
	ann, err := unmarshalAnnotatedStream(payload)
	if err != nil || ann.n != flat.Len() {
		s.Drop(artifact.KindAnnotatedStream, key)
		return nil
	}
	return ann
}

// annotatedToDisk publishes a freshly annotated stream to the persistent
// tier, best effort: write failures only cost the next process a cold
// start. The store retries transient faults and degrades itself after
// repeated ones (artifact.TierStats.Degraded), so the error is deliberately
// ignored here — failure policy lives in one place, the store.
func annotatedToDisk(spec workload.Spec, n uint64, predKey string, ann *AnnotatedStream) {
	if s := artifact.Default(); s != nil {
		_ = s.Put(artifact.KindAnnotatedStream, annArtifactKey(spec, n, predKey), marshalAnnotatedStream(ann))
	}
}
