package sim

import (
	"sync"
	"sync/atomic"

	"branchconf/internal/predictor"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

// Process-wide annotated-stream cache. The predictor stage of the two-stage
// engine is a pure function of (benchmark spec, branch budget, predictor
// config), so its outputs are memoized exactly like materialized traces:
//
//   - flat views (fully decoded records, 24 B/branch) are keyed by (spec,
//     budget) and shared across every predictor config, and
//   - annotated streams (mispredict + state bits, ~3/8 B/branch for gshare)
//     are keyed by (spec, budget, predictor key).
//
// Entries follow the claim-or-wait protocol of the exp pass cache: the
// first claimant builds, later claimants block on the entry's done channel
// and share the result. A resident-bytes bound (SetAnnotatedCacheBound)
// evicts completed entries in least-recently-used order; in-flight entries
// are never evicted, and eviction never invalidates a replay already
// holding the stream — the pointer keeps the payload alive.

type flatKey struct {
	spec workload.Spec
	n    uint64
}

type annKey struct {
	spec    workload.Spec
	n       uint64
	predKey string
}

type cacheEntry struct {
	done chan struct{}

	// Exactly one of flat/ann is set per entry kind; err covers both.
	flat *trace.FlatView
	ann  *AnnotatedStream
	err  error

	bytes   uint64 // payload size once built; 0 while in flight or on error
	lastUse uint64 // LRU clock tick of the most recent claim
}

var annCache struct {
	mu       sync.Mutex
	flats    map[flatKey]*cacheEntry
	anns     map[annKey]*cacheEntry
	bound    uint64 // resident-bytes bound; 0 = unbounded
	clock    uint64
	resident uint64
}

// Cache observability counters, for progress lines and benchmark reports.
// Hits and misses count annotated-stream claims (the expensive artifact);
// flat views piggyback on the same keys one level up.
var annHits, annMisses atomic.Uint64

// SetAnnotatedCacheBound bounds the resident payload bytes of the annotated
// cache (flat views plus annotated streams). 0 removes the bound. When an
// insertion pushes the cache over the bound, completed entries are evicted
// least-recently-used first; a single entry larger than the bound is still
// admitted (and becomes the next eviction candidate).
func SetAnnotatedCacheBound(bytes uint64) {
	annCache.mu.Lock()
	annCache.bound = bytes
	evictLocked()
	annCache.mu.Unlock()
}

// AnnotatedCacheStats reports annotated-stream cache hits and misses since
// process start (or the last ResetAnnotatedCache), and the resident payload
// bytes currently held.
func AnnotatedCacheStats() (hits, misses, residentBytes uint64) {
	annCache.mu.Lock()
	r := annCache.resident
	annCache.mu.Unlock()
	return annHits.Load(), annMisses.Load(), r
}

// ResetAnnotatedCache drops every cached entry and zeroes the counters. The
// bound is retained. Intended for tests and batch boundaries.
func ResetAnnotatedCache() {
	annCache.mu.Lock()
	annCache.flats = nil
	annCache.anns = nil
	annCache.resident = 0
	annCache.mu.Unlock()
	annHits.Store(0)
	annMisses.Store(0)
}

// tickLocked advances the LRU clock.
func tickLocked() uint64 {
	annCache.clock++
	return annCache.clock
}

// evictLocked drops completed entries, least recently used first, until the
// resident bytes fit the bound. In-flight entries (done not yet closed) are
// skipped: their size is unknown and a waiter may be parked on them.
func evictLocked() {
	if annCache.bound == 0 {
		return
	}
	for annCache.resident > annCache.bound {
		var (
			oldest     uint64
			victimFlat *flatKey
			victimAnn  *annKey
		)
		for k, e := range annCache.flats {
			if e.bytes == 0 {
				continue // in flight or errored; nothing resident
			}
			if victimFlat == nil && victimAnn == nil || e.lastUse < oldest {
				k := k
				oldest, victimFlat, victimAnn = e.lastUse, &k, nil
			}
		}
		for k, e := range annCache.anns {
			if e.bytes == 0 {
				continue
			}
			if victimFlat == nil && victimAnn == nil || e.lastUse < oldest {
				k := k
				oldest, victimFlat, victimAnn = e.lastUse, nil, &k
			}
		}
		switch {
		case victimFlat != nil:
			annCache.resident -= annCache.flats[*victimFlat].bytes
			delete(annCache.flats, *victimFlat)
		case victimAnn != nil:
			annCache.resident -= annCache.anns[*victimAnn].bytes
			delete(annCache.anns, *victimAnn)
		default:
			return // everything resident is in flight; nothing to evict
		}
	}
}

// finishEntry publishes a built entry: records its payload size, closes the
// done channel, and applies the bound.
func finishEntry(e *cacheEntry, bytes uint64) {
	annCache.mu.Lock()
	if e.err == nil {
		e.bytes = bytes
		annCache.resident += bytes
	}
	annCache.mu.Unlock()
	close(e.done)
	annCache.mu.Lock()
	evictLocked()
	annCache.mu.Unlock()
}

// flatFor returns the shared flat view for (spec, budget), building it from
// the suite's replay buffer on first use.
func flatFor(cfg SuiteConfig, spec workload.Spec, n uint64) (*trace.FlatView, error) {
	key := flatKey{spec: spec, n: n}
	annCache.mu.Lock()
	e := annCache.flats[key]
	if e != nil {
		e.lastUse = tickLocked()
		annCache.mu.Unlock()
		<-e.done
		return e.flat, e.err
	}
	e = &cacheEntry{done: make(chan struct{})}
	if annCache.flats == nil {
		annCache.flats = make(map[flatKey]*cacheEntry)
	}
	annCache.flats[key] = e
	e.lastUse = tickLocked()
	annCache.mu.Unlock()

	buf, err := cfg.buffer(spec)
	if err != nil {
		e.err = err
	} else {
		e.flat = buf.Flatten()
	}
	var bytes uint64
	if e.flat != nil {
		bytes = e.flat.Footprint()
	}
	finishEntry(e, bytes)
	return e.flat, e.err
}

// annotatedFor returns the (flat view, annotated stream) pair for one
// benchmark under one predictor config, running the predictor stage only on
// a cache miss. Concurrent claimants of the same key share one build.
func annotatedFor(cfg SuiteConfig, spec workload.Spec, predKey string, newPred func() predictor.Predictor) (*trace.FlatView, *AnnotatedStream, error) {
	n := cfg.Branches
	if n == 0 {
		n = spec.DefaultBranches
	}
	flat, err := flatFor(cfg, spec, n)
	if err != nil {
		return nil, nil, err
	}

	key := annKey{spec: spec, n: n, predKey: predKey}
	annCache.mu.Lock()
	e := annCache.anns[key]
	if e != nil {
		e.lastUse = tickLocked()
		annCache.mu.Unlock()
		annHits.Add(1)
		<-e.done
		return flat, e.ann, e.err
	}
	e = &cacheEntry{done: make(chan struct{})}
	if annCache.anns == nil {
		annCache.anns = make(map[annKey]*cacheEntry)
	}
	annCache.anns[key] = e
	e.lastUse = tickLocked()
	annCache.mu.Unlock()
	annMisses.Add(1)

	e.ann = Annotate(flat, newPred())
	finishEntry(e, e.ann.Footprint())
	return flat, e.ann, e.err
}
