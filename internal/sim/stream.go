package sim

import (
	"context"
	"errors"
	"io"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"branchconf/internal/analysis"
	"branchconf/internal/artifact"
	"branchconf/internal/bitvec"
	"branchconf/internal/core"
	"branchconf/internal/heapwatch"
	"branchconf/internal/predictor"
	"branchconf/internal/trace"
	"branchconf/internal/workload"
)

// Segmented streaming engine: the bounded-memory form of the three-stage
// pipeline for horizons no whole-trace buffer can hold. Instead of
// materialize-whole → annotate-whole → tally-whole, a unit (one benchmark ×
// one predictor config × all mechanisms) walks fixed-size trace segments:
//
//	producer: materialize segment k+1 → annotate it (predictor carried
//	          across segments) → hand it over a bounded channel
//	consumer: tally segment k through each geometry's resumable factor
//	          state (core.Resumable) → replay it into the rest
//
// so annotation of segment k+1 overlaps tallying of segment k, and at most
// streamInflightSegments+2 segments are resident per unit at any horizon.
// Per-branch work is byte-identical to the monolithic engine: segments
// decode to exactly the monolithic records (trace.Segmenter), the carried
// predictor observes every branch in order, resumable factor states emit
// the monolithic bucket sequence (core.FactorState), and per-segment
// histograms merge exactly (analysis.TallyMerger). Pinned by
// TestStreamingMatchesMonolithic across segment sizes including 1.
//
// Warm starts carry over via segment-indexed artifacts: each segment's
// annotated stream and bucket streams persist under keys carrying the
// segment size and index, and compact predictor/factor-state checkpoints
// (Checkpoint) persist at segment boundaries, so a later process can serve
// some segments from disk and resume the walk at the first cold one. A warm
// segment leaves the walk state stale; if the following cold segment finds
// no valid boundary checkpoint to revive it, the unit retries once with
// every disk read skipped (forceLive), rebuilding — and re-publishing —
// everything from the start of the trace.

// streamInflightSegments is the bounded channel capacity between the
// annotate producer and the tally/replay consumer. With the segment the
// producer is preparing and the one the consumer holds, a unit keeps at
// most this+2 segments resident.
const streamInflightSegments = 2

// errStaleState aborts a streaming pass when a warm segment left the walk
// state stale and the next cold segment has no usable boundary checkpoint.
// The unit then reruns forceLive.
var errStaleState = errors.New("sim: stale streaming state: no usable checkpoint after warm segment")

// Streaming observability: warm vs live segment payloads, forceLive
// retries, checkpoint restores, and the in-flight segment-bytes high-water
// mark (the quantity the bounded pipeline keeps flat at any horizon).
var (
	streamSegWarm       atomic.Uint64
	streamSegLive       atomic.Uint64
	streamRetries       atomic.Uint64
	streamCkptRestores  atomic.Uint64
	streamInflightBytes atomic.Int64
	streamPeakBytes     atomic.Int64
)

// StreamReport returns the streaming engine's observability quad: Hits are
// segment payloads (annotated or bucket) served from the artifact tier,
// Misses are segment payloads built live, VerifyFails are forceLive unit
// retries after stale-state aborts, and ResidentBytes is the peak bytes of
// in-flight segments across all concurrent units.
func StreamReport() CacheStats {
	return CacheStats{
		Hits:          streamSegWarm.Load(),
		Misses:        streamSegLive.Load(),
		VerifyFails:   streamRetries.Load(),
		ResidentBytes: uint64(streamPeakBytes.Load()),
	}
}

// ResetStreamStats zeroes the streaming counters (tests and batch
// boundaries).
func ResetStreamStats() {
	streamSegWarm.Store(0)
	streamSegLive.Store(0)
	streamRetries.Store(0)
	streamCkptRestores.Store(0)
	streamInflightBytes.Store(0)
	streamPeakBytes.Store(0)
}

// trackInflight adds one segment's payload bytes to the in-flight gauge and
// advances the high-water mark.
func trackInflight(b int64) {
	cur := streamInflightBytes.Add(b)
	for {
		p := streamPeakBytes.Load()
		if cur <= p || streamPeakBytes.CompareAndSwap(p, cur) {
			return
		}
	}
}

func untrackInflight(b int64) { streamInflightBytes.Add(-b) }

// segMsg is one annotated segment in flight from producer to consumer. The
// trace rides as the compact varint replay buffer (~5 bytes per branch),
// not a flat view: the consumer flattens it into the unit's one reusable
// scratch view, so queued segments stay cheap and the 24-bytes-per-branch
// decode buffer exists once per unit, not once per queued segment.
type segMsg struct {
	err   error
	idx   int    // segment index
	start uint64 // branch position of the segment's first record
	buf   *trace.ReplayBuffer
	ann   *AnnotatedStream
	bytes int64 // tracked in-flight footprint
}

// runSuiteStreaming is the segmented form of RunSuiteAnnotated, dispatched
// when cfg.SegmentBranches > 0. Fan-out is unit-major — one slot-bounded
// goroutine per benchmark, each running its own producer/consumer pipeline —
// rather than the monolithic engine's mechanism-major chunking: a streaming
// unit's stages are already overlapped internally, and unit-major keeps
// every unit's resident segments independently bounded.
func runSuiteStreaming(cfg SuiteConfig, predKey string, newPred func() predictor.Predictor, newMechs []func() core.Mechanism) ([]SuiteResult, error) {
	specs := cfg.specs()
	perSpec := make([][]Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		i, spec := i, spec
		wg.Add(1)
		go func() {
			defer wg.Done()
			release := acquireSlot()
			defer release()
			perSpec[i], errs[i] = runStreamUnit(cfg, spec, predKey, newPred, newMechs)
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	out := make([]SuiteResult, len(newMechs))
	for j := range newMechs {
		runs := make([]Result, len(specs))
		for i := range specs {
			runs[i] = perSpec[i][j]
		}
		out[j] = SuiteResult{Runs: runs}
	}
	return out, nil
}

// runStreamUnit runs one streaming unit, retrying once with all disk reads
// skipped when partially warm artifacts leave the walk unresumable.
func runStreamUnit(cfg SuiteConfig, spec workload.Spec, predKey string, newPred func() predictor.Predictor, newMechs []func() core.Mechanism) ([]Result, error) {
	rs, err := streamUnitOnce(cfg, spec, predKey, newPred, newMechs, false)
	if errors.Is(err, errStaleState) {
		streamRetries.Add(1)
		rs, err = streamUnitOnce(cfg, spec, predKey, newPred, newMechs, true)
	}
	return rs, err
}

// geomLane is one geometry's rolling tally state within a streaming unit:
// the resumable mechanism serving the geometry, the factor state positioned
// at stAt (nil after a warm segment leaves it stale), and the merger
// folding per-segment histograms into the unit's base histogram.
type geomLane struct {
	fm     core.Resumable
	geom   string
	width  uint
	st     core.FactorState
	stAt   uint64
	merger *analysis.TallyMerger
	lane   *bitvec.Dense // scratch bucket lane, reset and refilled per segment
	counts []uint64      // running fused histogram across live segments (nil until first)
}

// streamUnitOnce runs one benchmark's bounded pipeline. forceLive skips
// every artifact read — walks rebuild from the start of the trace — while
// still publishing fresh payloads, healing whatever gap aborted the first
// pass.
func streamUnitOnce(cfg SuiteConfig, spec workload.Spec, predKey string, newPred func() predictor.Predictor, newMechs []func() core.Mechanism, forceLive bool) ([]Result, error) {
	budget := cfg.Branches
	if budget == 0 {
		budget = spec.DefaultBranches
	}
	segSize := cfg.SegmentBranches

	mechs := make([]core.Mechanism, len(newMechs))
	for j := range newMechs {
		mechs[j] = newMechs[j]()
	}
	pred := newPred()
	_, wantState := pred.(predictor.StateAnnotator)
	needsState := false
	for _, m := range mechs {
		if _, sc := m.(core.StateCoupled); sc {
			needsState = true
			break
		}
	}
	if needsState && !wantState {
		// The predictor cannot annotate the state a mechanism reads; the
		// whole unit falls back to the interleaved single-pass engine, which
		// streams record-by-record and is bounded-memory by construction.
		return runInterleavedUnit(cfg, spec, newPred, mechs)
	}

	// Partition mechanisms: resumable factorable geometries tally per
	// segment through a shared lane walk; everything else (StateCoupled,
	// non-factorable, or all of them under NoTally) replays per segment
	// with accumulators persisting across segments.
	var lanes []*geomLane
	laneByGeom := map[string]*geomLane{}
	laneOf := make([]*geomLane, len(mechs))
	var replayMechs []core.Mechanism
	var replayAt []int
	for j, m := range mechs {
		fm, resumable := m.(core.Resumable)
		_, sc := m.(core.StateCoupled)
		if !cfg.NoTally && resumable && !sc {
			key := fm.GeometryKey()
			g := laneByGeom[key]
			if g == nil {
				g = &geomLane{fm: fm, geom: key, width: fm.BucketWidth(), merger: analysis.NewTallyMerger()}
				laneByGeom[key] = g
				lanes = append(lanes, g)
			}
			laneOf[j] = g
		} else {
			replayMechs = append(replayMechs, m)
			replayAt = append(replayAt, j)
		}
	}
	accums := make([]*bucketAccum, len(replayMechs))
	for k := range accums {
		accums[k] = newBucketAccum()
	}

	ch := make(chan segMsg, streamInflightSegments)
	stop := make(chan struct{})
	// Consumed segments cycle back to the producer for storage reuse: a
	// long walk keeps a handful of segment buffers and annotated streams
	// alive instead of allocating — and garbage-collecting — one pair per
	// segment, which is what keeps peak heap flat at any horizon rather
	// than merely the tracked in-flight bytes.
	freeBufs := make(chan *trace.ReplayBuffer, streamInflightSegments+2)
	freeAnns := make(chan *AnnotatedStream, streamInflightSegments+2)
	var prodWG sync.WaitGroup
	prodWG.Add(1)
	go func() {
		defer prodWG.Done()
		defer close(ch)
		streamProduce(cfg, spec, predKey, pred, budget, segSize, wantState, forceLive, ch, stop, freeBufs, freeAnns)
	}()

	var err error
	var pos, cum uint64
	var scratch *trace.FlatView // one decode buffer for every segment
consume:
	for msg := range ch {
		if msg.err != nil {
			err = msg.err
			break
		}
		flat := msg.buf.FlattenInto(scratch)
		scratch = flat
		segN := uint64(flat.Len())
		for _, g := range lanes {
			if e := consumeSegGeom(g, spec, predKey, budget, segSize, flat, msg, cum, forceLive); e != nil {
				err = e
				untrackInflight(msg.bytes)
				break consume
			}
		}
		if len(lanes) > 0 {
			heapwatch.Sample("stream-tally")
		}
		if len(replayMechs) > 0 {
			pprof.Do(context.Background(), pprof.Labels("benchmark", spec.Name, "stage", "stream-replay"), func(context.Context) {
				replayAnnotated(flat, msg.ann, replayMechs, accums)
			})
			heapwatch.Sample("stream-replay")
		}
		cum += msg.ann.misses
		pos += segN
		untrackInflight(msg.bytes)
		select {
		case freeBufs <- msg.buf:
		default:
		}
		select {
		case freeAnns <- msg.ann:
		default:
		}
	}
	close(stop)
	prodWG.Wait()
	if err != nil {
		return nil, err
	}

	// Fold each geometry's running fused histogram into its merger (exact
	// integer sums, so deferring past the warm segments' merges is order-
	// independent).
	for _, g := range lanes {
		if g.counts != nil {
			g.merger.Merge(countsToStats64(g.counts))
			g.counts = nil
		}
	}
	results := make([]Result, len(mechs))
	for j := range mechs {
		if g := laneOf[j]; g != nil {
			results[j] = Result{
				Benchmark: spec.Name,
				Branches:  pos,
				Misses:    cum,
				Buckets:   g.merger.Stats(),
			}
		}
	}
	for x, j := range replayAt {
		results[j] = Result{
			Benchmark: spec.Name,
			Branches:  pos,
			Misses:    cum,
			Buckets:   accums[x].stats(),
		}
	}
	return results, nil
}

// streamProduce is the producer half of a unit's pipeline: it materializes
// and annotates segments in trace order, serving warm annotated segments
// from the artifact tier when possible and reviving the predictor from a
// boundary checkpoint when a warm segment left it stale. Each prepared
// segment is handed over ch; a closed stop channel (consumer error) ends
// production.
func streamProduce(cfg SuiteConfig, spec workload.Spec, predKey string, pred predictor.Predictor, budget, segSize uint64, wantState, forceLive bool, ch chan<- segMsg, stop <-chan struct{}, freeBufs chan *trace.ReplayBuffer, freeAnns chan *AnnotatedStream) {
	fail := func(err error) {
		select {
		case ch <- segMsg{err: err}:
		case <-stop:
		}
	}
	src, err := cfg.source(spec)
	if err != nil {
		fail(err)
		return
	}
	segr := trace.NewSegmenter(src, int(segSize))
	ckpred, canCkpt := pred.(predictor.Checkpointer)
	predValid := true // pred is trained exactly through the current boundary
	var pos, cum uint64
	for idx := 0; ; idx++ {
		select {
		case b := <-freeBufs:
			segr.Recycle(b)
		default:
		}
		buf, err := segr.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			fail(err)
			return
		}
		heapwatch.Sample("stream-materialize")
		var ann *AnnotatedStream
		if !forceLive {
			ann = annSegFromDisk(spec, budget, predKey, segSize, idx, buf.Len(), wantState)
		}
		if ann != nil {
			// The predictor did not observe this segment; it can only
			// continue from a boundary checkpoint.
			predValid = false
			streamSegWarm.Add(1)
		} else {
			if !predValid {
				if !canCkpt || !restorePredCkpt(ckpred, spec, budget, predKey, segSize, pos, cum) {
					fail(errStaleState)
					return
				}
				streamCkptRestores.Add(1)
				predValid = true
			}
			var spare *AnnotatedStream
			select {
			case spare = <-freeAnns:
			default:
			}
			pprof.Do(context.Background(), pprof.Labels("benchmark", spec.Name, "stage", "stream-annotate"), func(context.Context) {
				ann = annotateBufferInto(buf, pred, spare)
			})
			heapwatch.Sample("stream-annotate")
			putArtifact(artifact.KindAnnotatedStream, annSegKey(spec, budget, predKey, segSize, idx), func() []byte { return marshalAnnotatedStream(ann) })
			streamSegLive.Add(1)
		}
		cum += ann.misses
		pos += uint64(buf.Len())
		if predValid && canCkpt && pos < budget {
			putArtifact(artifact.KindCheckpoint, predCkptKey(spec, budget, predKey, segSize, pos), func() []byte {
				return MarshalCheckpoint(Checkpoint{Branch: pos, Misses: cum, State: ckpred.MarshalState()})
			})
		}
		bytes := int64(buf.Footprint() + ann.Footprint())
		trackInflight(bytes)
		select {
		case ch <- segMsg{idx: idx, start: pos - uint64(buf.Len()), buf: buf, ann: ann, bytes: bytes}:
		case <-stop:
			untrackInflight(bytes)
			return
		}
	}
}

// consumeSegGeom advances one geometry lane through one segment: serve the
// segment's bucket stream warm from the artifact tier, or walk it live from
// the geometry's factor state — reviving the state from a boundary
// checkpoint if a warm segment left it stale. cumStart is the unit's
// cumulative miss count at the segment's first branch, cross-checked
// against checkpoints and folded into the one written at the exit boundary.
func consumeSegGeom(g *geomLane, spec workload.Spec, predKey string, budget, segSize uint64, flat *trace.FlatView, msg segMsg, cumStart uint64, forceLive bool) error {
	segN := flat.Len()
	if !forceLive {
		if bs := bucketSegFromDisk(spec, budget, predKey, g.geom, segSize, msg.idx, msg.ann); bs != nil {
			g.merger.Merge(bs.Stats())
			g.st = nil // the walk state did not observe this segment
			streamSegWarm.Add(1)
			return nil
		}
	}
	if g.st == nil || g.stAt != msg.start {
		if msg.start == 0 {
			g.st = g.fm.NewFactorState()
		} else {
			st, ok := restoreGeomCkpt(g.fm, spec, budget, predKey, g.geom, segSize, msg.start, cumStart)
			if !ok {
				return errStaleState
			}
			g.st = st
			streamCkptRestores.Add(1)
		}
		g.stAt = msg.start
	}
	if g.lane == nil {
		g.lane = bitvec.NewDense(g.width, segN)
	} else {
		g.lane.Reset()
	}
	lane := g.lane
	// Live fused segments fold straight into the geometry's running uint64
	// histogram — no per-segment map. The per-segment BucketStats form is
	// built only when the artifact tier needs it for the segment payload.
	// Folding the running histogram into the merger at unit exit instead of
	// per segment changes nothing: tallies are exact integer sums, so the
	// merge is commutative with the warm segments' merges.
	var stats analysis.BucketStats
	if g.width <= fusedTallyLimit {
		counts := countsPool.Get().([]uint32)
		used := counts[:2<<g.width]
		clear(used)
		g.fm.FillBucketLaneResume(g.st, flat.Records(), msg.ann.MissWords(), lane, used)
		if g.counts == nil {
			g.counts = make([]uint64, 2<<g.width)
		}
		for i, c := range used {
			g.counts[i] += uint64(c)
		}
		if artifact.Default() != nil {
			stats = countsToStats(used)
		}
		countsPool.Put(counts)
	} else {
		g.fm.FillBucketLaneResume(g.st, flat.Records(), msg.ann.MissWords(), lane, nil)
		stats = tallyLane(lane, msg.ann.MissWords(), segN)
		g.merger.Merge(stats)
	}
	end := msg.start + uint64(segN)
	g.stAt = end
	putArtifact(artifact.KindBucketStream, bucketSegKey(spec, budget, predKey, g.geom, segSize, msg.idx), func() []byte {
		bs := &BucketStream{lane: lane, n: segN, misses: msg.ann.misses, stats: stats}
		return marshalBucketStream(bs)
	})
	if end < budget {
		putArtifact(artifact.KindCheckpoint, geomCkptKey(spec, budget, predKey, g.geom, segSize, end), func() []byte {
			return MarshalCheckpoint(Checkpoint{Branch: end, Misses: cumStart + msg.ann.misses, State: g.st.MarshalState()})
		})
	}
	streamSegLive.Add(1)
	return nil
}

// putArtifact publishes one payload to the persistent tier, best effort,
// building the payload only when a store is present.
func putArtifact(kind uint16, key string, payload func() []byte) {
	if s := artifact.Default(); s != nil {
		_ = s.Put(kind, key, payload())
	}
}

// annSegFromDisk loads and validates one segment's annotated stream from
// the artifact tier: exact segment length and the same state-lane presence
// the live walk would produce. Anything else is dropped as corruption.
func annSegFromDisk(spec workload.Spec, budget uint64, predKey string, segSize uint64, idx, segN int, wantState bool) *AnnotatedStream {
	s := artifact.Default()
	if s == nil {
		return nil
	}
	key := annSegKey(spec, budget, predKey, segSize, idx)
	payload, ok := s.Get(artifact.KindAnnotatedStream, key)
	if !ok {
		return nil
	}
	ann, err := unmarshalAnnotatedStream(payload)
	if err != nil || ann.n != segN || ann.HasState() != wantState {
		s.Drop(artifact.KindAnnotatedStream, key)
		return nil
	}
	return ann
}

// bucketSegFromDisk loads and validates one segment's bucket stream for a
// geometry, cross-checked against the segment's annotated stream exactly
// like the monolithic disk path.
func bucketSegFromDisk(spec workload.Spec, budget uint64, predKey, geom string, segSize uint64, idx int, ann *AnnotatedStream) *BucketStream {
	s := artifact.Default()
	if s == nil {
		return nil
	}
	key := bucketSegKey(spec, budget, predKey, geom, segSize, idx)
	payload, ok := s.Get(artifact.KindBucketStream, key)
	if !ok {
		return nil
	}
	bs, err := unmarshalBucketStream(payload)
	if err != nil || bs.n != ann.n || bs.misses != ann.misses {
		s.Drop(artifact.KindBucketStream, key)
		return nil
	}
	return bs
}

// restorePredCkpt revives the predictor from the boundary checkpoint at
// branch position pos, validating the checkpoint's position and cumulative
// miss count against the unit's own running totals before handing the state
// to the predictor codec. Any mismatch drops the checkpoint.
func restorePredCkpt(ck predictor.Checkpointer, spec workload.Spec, budget uint64, predKey string, segSize, pos, cum uint64) bool {
	s := artifact.Default()
	if s == nil {
		return false
	}
	key := predCkptKey(spec, budget, predKey, segSize, pos)
	payload, ok := s.Get(artifact.KindCheckpoint, key)
	if !ok {
		return false
	}
	c, err := UnmarshalCheckpoint(payload)
	if err != nil || c.Branch != pos || c.Misses != cum || ck.RestoreState(c.State) != nil {
		s.Drop(artifact.KindCheckpoint, key)
		return false
	}
	return true
}

// restoreGeomCkpt revives one geometry's factor state from the boundary
// checkpoint at branch position pos, with the same cross-checks.
func restoreGeomCkpt(fm core.Resumable, spec workload.Spec, budget uint64, predKey, geom string, segSize, pos, cum uint64) (core.FactorState, bool) {
	s := artifact.Default()
	if s == nil {
		return nil, false
	}
	key := geomCkptKey(spec, budget, predKey, geom, segSize, pos)
	payload, ok := s.Get(artifact.KindCheckpoint, key)
	if !ok {
		return nil, false
	}
	c, err := UnmarshalCheckpoint(payload)
	if err != nil || c.Branch != pos || c.Misses != cum {
		s.Drop(artifact.KindCheckpoint, key)
		return nil, false
	}
	st, err := fm.RestoreFactorState(c.State)
	if err != nil {
		s.Drop(artifact.KindCheckpoint, key)
		return nil, false
	}
	return st, true
}
